//! Dataset specifications: benchmark presets at several scales.
//!
//! [`DatasetSpec::benchmark`] reproduces the four datasets of Table 1/2 as
//! synthetic stand-ins (see `DESIGN.md`). [`Scale`] selects how large the
//! generated federation is: `Paper` matches the paper's raw client counts,
//! `Default` is a CPU-friendly reduction that keeps the client-count *ratios*
//! and heterogeneity structure, and `Smoke` is a tiny configuration for unit
//! tests.

use crate::dataset::FederatedDataset;
use crate::example::Task;
use crate::generators::{ClassificationConfig, ClassificationWorld, LanguageConfig, LanguageWorld};
use crate::{DataError, Result};
use fedmath::SeedStream;
use rand::Rng;
use serde::{Deserialize, Serialize};

/// The four benchmark datasets of the paper, as synthetic stand-ins.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Benchmark {
    /// CIFAR10 with Dirichlet(0.1) label partition (image classification).
    Cifar10Like,
    /// FEMNIST with its natural writer partition (image classification).
    FemnistLike,
    /// StackOverflow next-token prediction (natural partition, long tail).
    StackOverflowLike,
    /// Reddit next-token prediction (natural partition, many small clients).
    RedditLike,
}

impl Benchmark {
    /// All four benchmarks in the order used by the paper's figures.
    pub const ALL: [Benchmark; 4] = [
        Benchmark::Cifar10Like,
        Benchmark::FemnistLike,
        Benchmark::StackOverflowLike,
        Benchmark::RedditLike,
    ];

    /// Short name used in reports and figures.
    pub fn name(&self) -> &'static str {
        match self {
            Benchmark::Cifar10Like => "cifar10-like",
            Benchmark::FemnistLike => "femnist-like",
            Benchmark::StackOverflowLike => "stackoverflow-like",
            Benchmark::RedditLike => "reddit-like",
        }
    }

    /// The task family of the benchmark.
    pub fn task(&self) -> Task {
        match self {
            Benchmark::Cifar10Like | Benchmark::FemnistLike => Task::DenseClassification,
            Benchmark::StackOverflowLike | Benchmark::RedditLike => Task::NextTokenPrediction,
        }
    }
}

impl std::fmt::Display for Benchmark {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

/// Generation scale: how many clients and examples to synthesise.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize, Default)]
pub enum Scale {
    /// Client counts and example counts matching Table 2 of the paper.
    /// Intended for full reproductions with generous compute budgets.
    Paper,
    /// CPU-friendly reduction used by the bench harness: the client-count
    /// ratios, heterogeneity structure, and long tails are preserved but raw
    /// counts are roughly an order of magnitude smaller.
    #[default]
    Default,
    /// Tiny federation for unit and integration tests.
    Smoke,
}

/// How per-client example counts are drawn.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum ClientSizes {
    /// Sizes drawn uniformly from `[low, high]` (CIFAR10's tight range).
    Uniform {
        /// Smallest client size.
        low: usize,
        /// Largest client size.
        high: usize,
    },
    /// Long-tailed sizes from a clamped log-normal (FEMNIST / text datasets).
    LogNormal {
        /// Target mean client size.
        mean: f64,
        /// Smallest client size.
        min: usize,
        /// Largest client size.
        max: usize,
        /// Log-space standard deviation (larger ⇒ heavier tail).
        sigma: f64,
    },
}

impl ClientSizes {
    /// Validates the distribution parameters.
    ///
    /// # Errors
    ///
    /// Returns [`DataError::InvalidSpec`] for an empty/zero uniform range or
    /// unsatisfiable log-normal constraints.
    pub fn validate(&self) -> Result<()> {
        match *self {
            ClientSizes::Uniform { low, high } => {
                if low == 0 || low > high {
                    return Err(DataError::InvalidSpec {
                        message: format!("invalid uniform size range [{low}, {high}]"),
                    });
                }
                Ok(())
            }
            ClientSizes::LogNormal {
                mean,
                min,
                max,
                sigma,
            } => crate::partition::validate_long_tailed_sizes(mean, min.max(1), max, sigma),
        }
    }

    /// The largest size this distribution can ever produce — an O(1) bound
    /// used by size-weighted cohort sampling over lazy populations.
    pub fn max_size(&self) -> usize {
        match *self {
            ClientSizes::Uniform { high, .. } => high,
            ClientSizes::LogNormal { max, .. } => max.max(1),
        }
    }

    /// Validates once and precompiles the distribution into a [`SizeSampler`]
    /// whose per-client queries are validation-free — the form hot loops
    /// (size-weighted rejection sampling over a lazy population) should hold.
    ///
    /// # Errors
    ///
    /// Returns [`DataError::InvalidSpec`] if the parameters are inconsistent
    /// (see [`validate`](Self::validate)).
    pub fn compile(&self) -> Result<SizeSampler> {
        self.validate()?;
        Ok(match *self {
            ClientSizes::Uniform { low, high } => SizeSampler::Uniform { low, high },
            ClientSizes::LogNormal {
                mean,
                min,
                max,
                sigma,
            } => SizeSampler::LogNormal(crate::partition::LongTailedSizes::new(
                mean,
                min.max(1),
                max,
                sigma,
            )?),
        })
    }

    /// The example count of client `id`, drawn **positionally** from `tree`:
    /// a pure function of `(tree seed, id)`. Every returned size is at least
    /// one — a lazy population can query any client's size in O(1) without
    /// touching its neighbours. Repeated callers should
    /// [`compile`](Self::compile) once instead.
    ///
    /// # Errors
    ///
    /// Returns [`DataError::InvalidSpec`] if the parameters are inconsistent
    /// (see [`validate`](Self::validate)).
    pub fn size_at(&self, tree: &fedmath::SeedTree, id: u64) -> Result<usize> {
        Ok(self.compile()?.size_at(tree, id))
    }

    /// Draws `num_clients` sizes, positionally below a root derived from
    /// `rng` (size `i` comes from [`size_at`](Self::size_at) at id `i`).
    ///
    /// # Errors
    ///
    /// Returns [`DataError::InvalidSpec`] if the parameters are inconsistent
    /// (see [`crate::partition::long_tailed_client_sizes`]).
    pub fn sample(&self, rng: &mut impl Rng, num_clients: usize) -> Result<Vec<usize>> {
        if num_clients == 0 {
            return Err(DataError::InvalidSpec {
                message: "need at least one client".into(),
            });
        }
        let sampler = self.compile()?;
        let tree = fedmath::SeedTree::new(rng.gen());
        Ok((0..num_clients)
            .map(|i| sampler.size_at(&tree, i as u64))
            .collect())
    }
}

/// A validated, precompiled [`ClientSizes`] distribution: per-client size
/// queries skip re-validation and distribution construction, which matters
/// in rejection-sampling loops that query thousands of sizes per cohort.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum SizeSampler {
    /// Sizes uniform in `[low, high]`.
    Uniform {
        /// Smallest client size.
        low: usize,
        /// Largest client size.
        high: usize,
    },
    /// Precompiled clamped log-normal sizes.
    LogNormal(crate::partition::LongTailedSizes),
}

impl SizeSampler {
    /// The example count of client `id`, drawn positionally from `tree` —
    /// identical to [`ClientSizes::size_at`] on the source distribution.
    pub fn size_at(&self, tree: &fedmath::SeedTree, id: u64) -> usize {
        match *self {
            SizeSampler::Uniform { low, high } => tree.child(id).rng().gen_range(low..=high),
            SizeSampler::LogNormal(dist) => dist.size_at(tree, id),
        }
    }
}

/// Task-specific generator parameters.
#[derive(Debug, Clone, PartialEq)]
pub enum TaskConfig {
    /// Dense classification (image-like) parameters.
    Classification(ClassificationConfig),
    /// Next-token prediction (text-like) parameters.
    Language(LanguageConfig),
}

/// A full recipe for generating one federated dataset.
#[derive(Debug, Clone, PartialEq)]
pub struct DatasetSpec {
    /// Dataset name used in reports.
    pub name: String,
    /// Number of training clients (`N_tr`).
    pub num_train_clients: usize,
    /// Number of validation clients (`N_val`).
    pub num_val_clients: usize,
    /// Distribution of per-client example counts.
    pub client_sizes: ClientSizes,
    /// Task-specific generator parameters.
    pub task: TaskConfig,
}

impl DatasetSpec {
    /// Returns the preset spec for one of the paper's four benchmarks at the
    /// given scale.
    pub fn benchmark(benchmark: Benchmark, scale: Scale) -> Self {
        match benchmark {
            Benchmark::Cifar10Like => Self::cifar10_like(scale),
            Benchmark::FemnistLike => Self::femnist_like(scale),
            Benchmark::StackOverflowLike => Self::stackoverflow_like(scale),
            Benchmark::RedditLike => Self::reddit_like(scale),
        }
    }

    fn cifar10_like(scale: Scale) -> Self {
        let (train, val, sizes) = match scale {
            Scale::Paper => (400, 100, ClientSizes::Uniform { low: 83, high: 131 }),
            Scale::Default => (120, 100, ClientSizes::Uniform { low: 30, high: 52 }),
            Scale::Smoke => (16, 10, ClientSizes::Uniform { low: 10, high: 20 }),
        };
        DatasetSpec {
            name: "cifar10-like".into(),
            num_train_clients: train,
            num_val_clients: val,
            client_sizes: sizes,
            task: TaskConfig::Classification(ClassificationConfig {
                num_classes: 10,
                feature_dim: 16,
                class_separation: 1.1,
                feature_noise: 1.8,
                label_noise: 0.02,
                label_alpha: 0.1,
                client_shift_std: 0.35,
            }),
        }
    }

    fn femnist_like(scale: Scale) -> Self {
        let (train, val, sizes) = match scale {
            Scale::Paper => (
                3507,
                360,
                ClientSizes::LogNormal {
                    mean: 203.0,
                    min: 19,
                    max: 393,
                    sigma: 0.5,
                },
            ),
            Scale::Default => (
                300,
                120,
                ClientSizes::LogNormal {
                    mean: 30.0,
                    min: 8,
                    max: 90,
                    sigma: 0.5,
                },
            ),
            Scale::Smoke => (16, 10, ClientSizes::Uniform { low: 8, high: 16 }),
        };
        DatasetSpec {
            name: "femnist-like".into(),
            num_train_clients: train,
            num_val_clients: val,
            client_sizes: sizes,
            task: TaskConfig::Classification(ClassificationConfig {
                num_classes: 20,
                feature_dim: 24,
                class_separation: 1.6,
                feature_noise: 1.3,
                label_noise: 0.02,
                label_alpha: 0.3,
                client_shift_std: 0.5,
            }),
        }
    }

    fn stackoverflow_like(scale: Scale) -> Self {
        let (train, val, sizes) = match scale {
            Scale::Paper => (
                10_815,
                3_678,
                ClientSizes::LogNormal {
                    mean: 391.0,
                    min: 1,
                    max: 20_000,
                    sigma: 1.8,
                },
            ),
            Scale::Default => (
                400,
                360,
                ClientSizes::LogNormal {
                    mean: 40.0,
                    min: 1,
                    max: 2_000,
                    sigma: 1.5,
                },
            ),
            Scale::Smoke => (16, 10, ClientSizes::Uniform { low: 10, high: 25 }),
        };
        DatasetSpec {
            name: "stackoverflow-like".into(),
            num_train_clients: train,
            num_val_clients: val,
            client_sizes: sizes,
            task: TaskConfig::Language(LanguageConfig {
                vocab_size: 64,
                num_topics: 8,
                transition_alpha: 0.05,
                client_topic_alpha: 0.4,
            }),
        }
    }

    fn reddit_like(scale: Scale) -> Self {
        let (train, val, sizes) = match scale {
            Scale::Paper => (
                40_000,
                9_928,
                ClientSizes::LogNormal {
                    mean: 19.0,
                    min: 1,
                    max: 14_440,
                    sigma: 1.6,
                },
            ),
            Scale::Default => (
                600,
                500,
                ClientSizes::LogNormal {
                    mean: 12.0,
                    min: 1,
                    max: 500,
                    sigma: 1.4,
                },
            ),
            Scale::Smoke => (16, 10, ClientSizes::Uniform { low: 5, high: 15 }),
        };
        DatasetSpec {
            name: "reddit-like".into(),
            num_train_clients: train,
            num_val_clients: val,
            client_sizes: sizes,
            task: TaskConfig::Language(LanguageConfig {
                vocab_size: 48,
                num_topics: 12,
                transition_alpha: 0.1,
                client_topic_alpha: 0.2,
            }),
        }
    }

    /// Task family of this spec.
    pub fn task_kind(&self) -> Task {
        match self.task {
            TaskConfig::Classification(_) => Task::DenseClassification,
            TaskConfig::Language(_) => Task::NextTokenPrediction,
        }
    }

    /// Number of output classes (or vocabulary size).
    pub fn num_classes(&self) -> usize {
        match &self.task {
            TaskConfig::Classification(c) => c.num_classes,
            TaskConfig::Language(l) => l.vocab_size,
        }
    }

    /// Input dimensionality (dense feature dim, or vocabulary size for tokens).
    pub fn input_dim(&self) -> usize {
        match &self.task {
            TaskConfig::Classification(c) => c.feature_dim,
            TaskConfig::Language(l) => l.vocab_size,
        }
    }

    /// Generates the federated dataset deterministically from `seed`.
    ///
    /// The same `(spec, seed)` pair always produces the same dataset.
    ///
    /// # Errors
    ///
    /// Returns [`DataError::InvalidSpec`] if any spec parameter is invalid.
    pub fn generate(&self, seed: u64) -> Result<FederatedDataset> {
        if self.num_train_clients == 0 || self.num_val_clients == 0 {
            return Err(DataError::InvalidSpec {
                message: "both client pools must be non-empty".into(),
            });
        }
        let mut seeds = SeedStream::new(seed);
        let mut world_rng = seeds.next_rng();
        let mut size_rng = seeds.next_rng();
        let mut train_rng = seeds.next_rng();
        let mut val_rng = seeds.next_rng();

        let train_sizes = self
            .client_sizes
            .sample(&mut size_rng, self.num_train_clients)?;
        let val_sizes = self
            .client_sizes
            .sample(&mut size_rng, self.num_val_clients)?;

        let (train_clients, val_clients) = match &self.task {
            TaskConfig::Classification(cfg) => {
                let world = ClassificationWorld::generate(&mut world_rng, cfg.clone())?;
                (
                    world.generate_clients(&mut train_rng, &train_sizes)?,
                    world.generate_clients(&mut val_rng, &val_sizes)?,
                )
            }
            TaskConfig::Language(cfg) => {
                let world = LanguageWorld::generate(&mut world_rng, cfg.clone())?;
                (
                    world.generate_clients(&mut train_rng, &train_sizes)?,
                    world.generate_clients(&mut val_rng, &val_sizes)?,
                )
            }
        };

        FederatedDataset::new(
            self.name.clone(),
            self.task_kind(),
            self.num_classes(),
            self.input_dim(),
            train_clients,
            val_clients,
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dataset::Split;

    #[test]
    fn benchmark_names_and_tasks() {
        assert_eq!(Benchmark::Cifar10Like.name(), "cifar10-like");
        assert_eq!(Benchmark::RedditLike.to_string(), "reddit-like");
        assert_eq!(Benchmark::Cifar10Like.task(), Task::DenseClassification);
        assert_eq!(
            Benchmark::StackOverflowLike.task(),
            Task::NextTokenPrediction
        );
        assert_eq!(Benchmark::ALL.len(), 4);
    }

    #[test]
    fn smoke_scale_generates_quickly_for_all_benchmarks() {
        for &b in &Benchmark::ALL {
            let spec = DatasetSpec::benchmark(b, Scale::Smoke);
            let d = spec.generate(7).unwrap();
            assert_eq!(d.num_train_clients(), 16);
            assert_eq!(d.num_val_clients(), 10);
            assert_eq!(d.task(), b.task());
            assert!(d.total_examples(Split::Train) > 0);
            assert_eq!(d.name(), b.name());
        }
    }

    #[test]
    fn default_scale_matches_expected_counts() {
        let spec = DatasetSpec::benchmark(Benchmark::Cifar10Like, Scale::Default);
        assert_eq!(spec.num_train_clients, 120);
        assert_eq!(spec.num_val_clients, 100);
        assert_eq!(spec.num_classes(), 10);
        assert_eq!(spec.input_dim(), 16);

        let spec = DatasetSpec::benchmark(Benchmark::RedditLike, Scale::Default);
        assert_eq!(spec.num_val_clients, 500);
        assert_eq!(spec.num_classes(), 48);
    }

    #[test]
    fn paper_scale_matches_table2_counts() {
        let spec = DatasetSpec::benchmark(Benchmark::FemnistLike, Scale::Paper);
        assert_eq!(spec.num_train_clients, 3507);
        assert_eq!(spec.num_val_clients, 360);
        let spec = DatasetSpec::benchmark(Benchmark::StackOverflowLike, Scale::Paper);
        assert_eq!(spec.num_train_clients, 10_815);
        assert_eq!(spec.num_val_clients, 3_678);
        let spec = DatasetSpec::benchmark(Benchmark::RedditLike, Scale::Paper);
        assert_eq!(spec.num_train_clients, 40_000);
    }

    #[test]
    fn generation_is_deterministic() {
        let spec = DatasetSpec::benchmark(Benchmark::FemnistLike, Scale::Smoke);
        let d1 = spec.generate(11).unwrap();
        let d2 = spec.generate(11).unwrap();
        assert_eq!(d1, d2);
        let d3 = spec.generate(12).unwrap();
        assert_ne!(d1, d3);
    }

    #[test]
    fn client_sizes_uniform_sampling() {
        let mut rng = fedmath::rng::rng_for(0, 0);
        let sizes = ClientSizes::Uniform { low: 5, high: 10 }
            .sample(&mut rng, 50)
            .unwrap();
        assert_eq!(sizes.len(), 50);
        assert!(sizes.iter().all(|&s| (5..=10).contains(&s)));
        assert!(ClientSizes::Uniform { low: 0, high: 3 }
            .sample(&mut rng, 5)
            .is_err());
        assert!(ClientSizes::Uniform { low: 5, high: 3 }
            .sample(&mut rng, 5)
            .is_err());
        assert!(ClientSizes::Uniform { low: 1, high: 3 }
            .sample(&mut rng, 0)
            .is_err());
    }

    #[test]
    fn client_sizes_lognormal_sampling() {
        let mut rng = fedmath::rng::rng_for(0, 1);
        let sizes = ClientSizes::LogNormal {
            mean: 20.0,
            min: 1,
            max: 200,
            sigma: 1.0,
        }
        .sample(&mut rng, 100)
        .unwrap();
        assert!(sizes.iter().all(|&s| (1..=200).contains(&s)));
    }

    #[test]
    fn scale_default_trait() {
        assert_eq!(Scale::default(), Scale::Default);
    }

    #[test]
    fn long_tail_present_in_default_text_dataset() {
        let spec = DatasetSpec::benchmark(Benchmark::StackOverflowLike, Scale::Default);
        let d = spec.generate(3).unwrap();
        let stats = d.statistics();
        // The generated text dataset must preserve the long-tail property:
        // max client size far above the mean.
        assert!(stats.examples.max as f64 > 4.0 * stats.examples.mean);
    }

    #[test]
    fn spec_rejects_zero_clients() {
        let mut spec = DatasetSpec::benchmark(Benchmark::Cifar10Like, Scale::Smoke);
        spec.num_train_clients = 0;
        assert!(spec.generate(0).is_err());
        let mut spec = DatasetSpec::benchmark(Benchmark::Cifar10Like, Scale::Smoke);
        spec.num_val_clients = 0;
        assert!(spec.generate(0).is_err());
    }
}
