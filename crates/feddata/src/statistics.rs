//! Dataset summary statistics (Tables 1 and 2 of the paper).

use crate::dataset::{FederatedDataset, Split};
use serde::{Deserialize, Serialize};

/// Summary of per-client example counts: mean / min / max / total.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ClientSizeSummary {
    /// Mean number of examples per client.
    pub mean: f64,
    /// Minimum number of examples on any client.
    pub min: usize,
    /// Maximum number of examples on any client.
    pub max: usize,
    /// Total number of examples across all clients.
    pub total: usize,
}

impl ClientSizeSummary {
    /// Builds the summary from a list of per-client example counts.
    ///
    /// Returns an all-zero summary for an empty list.
    pub fn from_counts(counts: &[usize]) -> Self {
        if counts.is_empty() {
            return ClientSizeSummary {
                mean: 0.0,
                min: 0,
                max: 0,
                total: 0,
            };
        }
        let total: usize = counts.iter().sum();
        ClientSizeSummary {
            mean: total as f64 / counts.len() as f64,
            min: *counts.iter().min().expect("non-empty"),
            max: *counts.iter().max().expect("non-empty"),
            total,
        }
    }
}

/// One row of Table 1/2: dataset name, task, client counts, and example-count
/// summary over *all* clients (train + validation), as reported in the paper.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct DatasetStatistics {
    /// Dataset name.
    pub name: String,
    /// Task family name.
    pub task: String,
    /// Number of training clients.
    pub train_clients: usize,
    /// Number of validation (evaluation) clients.
    pub val_clients: usize,
    /// Per-client example counts summarised over both pools.
    pub examples: ClientSizeSummary,
}

impl DatasetStatistics {
    /// Computes the statistics row for a dataset.
    pub fn from_dataset(dataset: &FederatedDataset) -> Self {
        let mut counts: Vec<usize> = dataset
            .clients(Split::Train)
            .iter()
            .map(|c| c.num_examples())
            .collect();
        counts.extend(
            dataset
                .clients(Split::Validation)
                .iter()
                .map(|c| c.num_examples()),
        );
        DatasetStatistics {
            name: dataset.name().to_string(),
            task: dataset.task().name().to_string(),
            train_clients: dataset.num_train_clients(),
            val_clients: dataset.num_val_clients(),
            examples: ClientSizeSummary::from_counts(&counts),
        }
    }

    /// Formats the row in the layout of Table 2
    /// (`name, task, #train, #eval, mean, min, max, total`).
    pub fn to_table_row(&self) -> String {
        format!(
            "{:<20} {:<24} {:>8} {:>8} {:>9.1} {:>7} {:>9} {:>10}",
            self.name,
            self.task,
            self.train_clients,
            self.val_clients,
            self.examples.mean,
            self.examples.min,
            self.examples.max,
            self.examples.total
        )
    }

    /// Header matching [`DatasetStatistics::to_table_row`].
    pub fn table_header() -> String {
        format!(
            "{:<20} {:<24} {:>8} {:>8} {:>9} {:>7} {:>9} {:>10}",
            "Dataset", "Task", "Train", "Eval", "Mean", "Min", "Max", "Total"
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::client::ClientData;
    use crate::example::{Example, Task};

    #[test]
    fn client_size_summary_from_counts() {
        let s = ClientSizeSummary::from_counts(&[2, 4, 6]);
        assert_eq!(s.mean, 4.0);
        assert_eq!(s.min, 2);
        assert_eq!(s.max, 6);
        assert_eq!(s.total, 12);
        let empty = ClientSizeSummary::from_counts(&[]);
        assert_eq!(empty.total, 0);
        assert_eq!(empty.mean, 0.0);
    }

    #[test]
    fn dataset_statistics_cover_both_pools() {
        let train = vec![ClientData::new(0, vec![Example::dense(vec![0.0], 0); 5])];
        let val = vec![
            ClientData::new(0, vec![Example::dense(vec![0.0], 1); 1]),
            ClientData::new(1, vec![Example::dense(vec![0.0], 1); 9]),
        ];
        let d = FederatedDataset::new("stats-test", Task::DenseClassification, 2, 1, train, val)
            .unwrap();
        let s = d.statistics();
        assert_eq!(s.train_clients, 1);
        assert_eq!(s.val_clients, 2);
        assert_eq!(s.examples.total, 15);
        assert_eq!(s.examples.min, 1);
        assert_eq!(s.examples.max, 9);
        assert!((s.examples.mean - 5.0).abs() < 1e-12);
        assert_eq!(s.name, "stats-test");
        assert_eq!(s.task, "image-classification");
    }

    #[test]
    fn table_row_formatting_contains_fields() {
        let train = vec![ClientData::new(0, vec![Example::token(0, 1); 3])];
        let val = vec![ClientData::new(0, vec![Example::token(1, 0); 2])];
        let d = FederatedDataset::new("fmt", Task::NextTokenPrediction, 2, 2, train, val).unwrap();
        let row = d.statistics().to_table_row();
        assert!(row.contains("fmt"));
        assert!(row.contains("next-token-prediction"));
        let header = DatasetStatistics::table_header();
        assert!(header.contains("Train"));
        assert!(header.contains("Total"));
    }
}
