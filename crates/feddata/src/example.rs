//! Individual training/validation examples and task kinds.

use serde::{Deserialize, Serialize};

/// The two task families studied in the paper.
///
/// CIFAR10 and FEMNIST are image-classification tasks trained with a small
/// CNN; StackOverflow and Reddit are next-token-prediction tasks trained with
/// a small LSTM. In this reproduction the first family maps to dense-feature
/// classification and the second to token-context next-token prediction
/// (see `DESIGN.md` for the substitution argument).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Task {
    /// Classify a dense feature vector into one of `num_classes` classes
    /// (stands in for image classification).
    DenseClassification,
    /// Predict the next token given the current token id (stands in for
    /// next-token prediction with a sequence model).
    NextTokenPrediction,
}

impl Task {
    /// Short human-readable name used in reports.
    pub fn name(&self) -> &'static str {
        match self {
            Task::DenseClassification => "image-classification",
            Task::NextTokenPrediction => "next-token-prediction",
        }
    }
}

impl std::fmt::Display for Task {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

/// Model input for a single example.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum Input {
    /// A dense feature vector (image-classification family).
    Dense(Vec<f64>),
    /// A context token id (next-token-prediction family).
    Token(usize),
}

impl Input {
    /// Dimensionality of a dense input, or `None` for token inputs.
    pub fn dense_dim(&self) -> Option<usize> {
        match self {
            Input::Dense(v) => Some(v.len()),
            Input::Token(_) => None,
        }
    }

    /// The token id of a token input, or `None` for dense inputs.
    pub fn token_id(&self) -> Option<usize> {
        match self {
            Input::Dense(_) => None,
            Input::Token(t) => Some(*t),
        }
    }
}

/// A single supervised example: an input and an integer label.
///
/// For the classification family the label is the class index; for the
/// language-modelling family it is the id of the next token.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Example {
    /// Model input.
    pub input: Input,
    /// Target class or next-token id.
    pub label: usize,
}

impl Example {
    /// Creates a dense-classification example.
    pub fn dense(features: Vec<f64>, label: usize) -> Self {
        Example {
            input: Input::Dense(features),
            label,
        }
    }

    /// Creates a next-token-prediction example.
    pub fn token(context: usize, target: usize) -> Self {
        Example {
            input: Input::Token(context),
            label: target,
        }
    }

    /// Returns the task family this example belongs to.
    pub fn task(&self) -> Task {
        match self.input {
            Input::Dense(_) => Task::DenseClassification,
            Input::Token(_) => Task::NextTokenPrediction,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dense_example_accessors() {
        let e = Example::dense(vec![1.0, 2.0, 3.0], 4);
        assert_eq!(e.label, 4);
        assert_eq!(e.input.dense_dim(), Some(3));
        assert_eq!(e.input.token_id(), None);
        assert_eq!(e.task(), Task::DenseClassification);
    }

    #[test]
    fn token_example_accessors() {
        let e = Example::token(7, 9);
        assert_eq!(e.label, 9);
        assert_eq!(e.input.token_id(), Some(7));
        assert_eq!(e.input.dense_dim(), None);
        assert_eq!(e.task(), Task::NextTokenPrediction);
    }

    #[test]
    fn task_names() {
        assert_eq!(Task::DenseClassification.name(), "image-classification");
        assert_eq!(
            Task::NextTokenPrediction.to_string(),
            "next-token-prediction"
        );
    }
}
