//! Synthetic data generators for the two task families.
//!
//! These generators replace the raw CIFAR10 / FEMNIST / StackOverflow /
//! Reddit data (unavailable in this environment) with synthetic federated
//! datasets whose *structure* matches what the paper's study depends on:
//! heterogeneous clients, realistic client-count and client-size statistics,
//! and HP-sensitive learning problems. See `DESIGN.md` §1 for the full
//! substitution argument.

use crate::client::ClientData;
use crate::example::Example;
use crate::partition::sample_dirichlet;
use crate::{DataError, Result};
use rand::Rng;
use rand_distr::{Distribution, Normal};

/// Parameters for the dense-classification generator (the stand-in for the
/// CIFAR10/FEMNIST image-classification family).
///
/// Each class `c` has a prototype mean vector; each client has a label
/// distribution (drawn from a symmetric Dirichlet with concentration
/// [`label_alpha`](Self::label_alpha)) and a private feature-shift vector
/// ("writer style") with standard deviation
/// [`client_shift_std`](Self::client_shift_std). An example for class `c` on
/// client `k` is `prototype_c + shift_k + N(0, feature_noise²)`, with the
/// label flipped to a uniformly random class with probability
/// [`label_noise`](Self::label_noise).
#[derive(Debug, Clone, PartialEq)]
pub struct ClassificationConfig {
    /// Number of classes.
    pub num_classes: usize,
    /// Dense feature dimensionality.
    pub feature_dim: usize,
    /// Distance scale between class prototype means.
    pub class_separation: f64,
    /// Standard deviation of per-example feature noise.
    pub feature_noise: f64,
    /// Probability of replacing a label with a uniformly random one.
    pub label_noise: f64,
    /// Dirichlet concentration of per-client label distributions
    /// (smaller ⇒ more label skew; the paper uses 0.1 for CIFAR10).
    pub label_alpha: f64,
    /// Standard deviation of the per-client feature shift.
    pub client_shift_std: f64,
}

impl ClassificationConfig {
    fn validate(&self) -> Result<()> {
        if self.num_classes < 2 {
            return Err(DataError::InvalidSpec {
                message: "classification needs at least 2 classes".into(),
            });
        }
        if self.feature_dim == 0 {
            return Err(DataError::InvalidSpec {
                message: "feature dimension must be positive".into(),
            });
        }
        if !(0.0..=1.0).contains(&self.label_noise) {
            return Err(DataError::InvalidSpec {
                message: format!("label noise must be in [0,1], got {}", self.label_noise),
            });
        }
        if self.label_alpha <= 0.0 {
            return Err(DataError::InvalidSpec {
                message: "label alpha must be positive".into(),
            });
        }
        if self.feature_noise < 0.0 || self.client_shift_std < 0.0 || self.class_separation < 0.0 {
            return Err(DataError::InvalidSpec {
                message: "noise/shift/separation parameters must be non-negative".into(),
            });
        }
        Ok(())
    }
}

/// Parameters for the next-token-prediction generator (the stand-in for the
/// StackOverflow/Reddit language-modelling family).
///
/// The generator builds `num_topics` bigram transition tables (each row drawn
/// from a Dirichlet with concentration [`transition_alpha`](Self::transition_alpha));
/// each client mixes the topics according to a Dirichlet draw with
/// concentration [`client_topic_alpha`](Self::client_topic_alpha) (smaller ⇒
/// more topical heterogeneity between clients). An example is a
/// `(context, next)` token pair sampled from the client's mixed bigram table.
#[derive(Debug, Clone, PartialEq)]
pub struct LanguageConfig {
    /// Vocabulary size.
    pub vocab_size: usize,
    /// Number of latent topics shared across the population.
    pub num_topics: usize,
    /// Dirichlet concentration for each topic's transition rows
    /// (smaller ⇒ more predictable next tokens ⇒ lower best-possible error).
    pub transition_alpha: f64,
    /// Dirichlet concentration for per-client topic mixtures
    /// (smaller ⇒ more heterogeneous clients).
    pub client_topic_alpha: f64,
}

impl LanguageConfig {
    fn validate(&self) -> Result<()> {
        if self.vocab_size < 2 {
            return Err(DataError::InvalidSpec {
                message: "vocabulary must have at least 2 tokens".into(),
            });
        }
        if self.num_topics == 0 {
            return Err(DataError::InvalidSpec {
                message: "need at least one topic".into(),
            });
        }
        if self.transition_alpha <= 0.0 || self.client_topic_alpha <= 0.0 {
            return Err(DataError::InvalidSpec {
                message: "Dirichlet concentrations must be positive".into(),
            });
        }
        Ok(())
    }
}

/// Population-level parameters shared by all clients of a classification
/// dataset: the class prototypes. Generating them once and reusing them for
/// both the training and validation pools keeps the two pools drawn from the
/// same underlying task.
#[derive(Debug, Clone)]
pub struct ClassificationWorld {
    prototypes: Vec<Vec<f64>>,
    config: ClassificationConfig,
}

impl ClassificationWorld {
    /// Samples the class prototypes for a classification task.
    ///
    /// # Errors
    ///
    /// Returns [`DataError::InvalidSpec`] if the configuration is invalid.
    pub fn generate(rng: &mut impl Rng, config: ClassificationConfig) -> Result<Self> {
        config.validate()?;
        let normal = Normal::new(0.0, 1.0).expect("valid std");
        let prototypes = (0..config.num_classes)
            .map(|_| {
                (0..config.feature_dim)
                    .map(|_| normal.sample(rng) * config.class_separation)
                    .collect()
            })
            .collect();
        Ok(ClassificationWorld { prototypes, config })
    }

    /// The generator configuration.
    pub fn config(&self) -> &ClassificationConfig {
        &self.config
    }

    /// Class prototype mean vectors (`num_classes` × `feature_dim`).
    pub fn prototypes(&self) -> &[Vec<f64>] {
        &self.prototypes
    }

    /// Materializes the shard of a single client **positionally**: the
    /// result is a pure function of `(tree seed, id, size)` — it never
    /// depends on which other clients were generated, or in what order. This
    /// is the primitive behind lazy million-client populations: any one
    /// client of a virtual pool can be synthesized on demand in O(size).
    ///
    /// The client draws its own label distribution (Dirichlet
    /// `label_alpha`) and private feature shift from the RNG at
    /// `tree.child(id)`, then samples `size` examples.
    ///
    /// # Errors
    ///
    /// Returns [`DataError::InvalidSpec`] if `size == 0`.
    pub fn client_at(&self, tree: &fedmath::SeedTree, id: u64, size: usize) -> Result<ClientData> {
        if size == 0 {
            return Err(DataError::InvalidSpec {
                message: "every client must have at least one example".into(),
            });
        }
        let cfg = &self.config;
        let normal = Normal::new(0.0, 1.0).expect("valid std");
        let mut rng = tree.child(id).rng();
        let label_dist = sample_dirichlet(&mut rng, cfg.num_classes, cfg.label_alpha)?;
        let shift: Vec<f64> = (0..cfg.feature_dim)
            .map(|_| normal.sample(&mut rng) * cfg.client_shift_std)
            .collect();
        let mut examples = Vec::with_capacity(size);
        for _ in 0..size {
            let true_class = fedmath::rng::sample_categorical(&mut rng, &label_dist);
            let features: Vec<f64> = (0..cfg.feature_dim)
                .map(|d| {
                    self.prototypes[true_class][d]
                        + shift[d]
                        + normal.sample(&mut rng) * cfg.feature_noise
                })
                .collect();
            let label = if rng.gen::<f64>() < cfg.label_noise {
                rng.gen_range(0..cfg.num_classes)
            } else {
                true_class
            };
            examples.push(Example::dense(features, label));
        }
        Ok(ClientData::new(id as usize, examples))
    }

    /// Generates one client pool with the given per-client example counts.
    ///
    /// Each client draws its own label distribution and feature shift, so the
    /// resulting pool is naturally non-iid; the degree of label skew is
    /// controlled by `label_alpha` in the configuration. Clients are
    /// materialized positionally via [`client_at`](Self::client_at) below a
    /// root derived from `rng`, so an eagerly generated pool is exactly what
    /// a lazy population would materialize client by client.
    ///
    /// # Errors
    ///
    /// Returns [`DataError::InvalidSpec`] if `sizes` is empty or contains zero.
    pub fn generate_clients(&self, rng: &mut impl Rng, sizes: &[usize]) -> Result<Vec<ClientData>> {
        if sizes.is_empty() {
            return Err(DataError::InvalidSpec {
                message: "need at least one client size".into(),
            });
        }
        let tree = fedmath::SeedTree::new(rng.gen());
        sizes
            .iter()
            .enumerate()
            .map(|(id, &n)| self.client_at(&tree, id as u64, n))
            .collect()
    }
}

/// Population-level parameters shared by all clients of a language dataset:
/// the per-topic bigram transition tables and the global context-token
/// distribution.
#[derive(Debug, Clone)]
pub struct LanguageWorld {
    /// `num_topics` tables, each `vocab_size` rows of `vocab_size` probabilities.
    topic_transitions: Vec<Vec<Vec<f64>>>,
    context_distribution: Vec<f64>,
    config: LanguageConfig,
}

impl LanguageWorld {
    /// Samples the shared topic structure for a language-modelling task.
    ///
    /// # Errors
    ///
    /// Returns [`DataError::InvalidSpec`] if the configuration is invalid.
    pub fn generate(rng: &mut impl Rng, config: LanguageConfig) -> Result<Self> {
        config.validate()?;
        let mut topic_transitions = Vec::with_capacity(config.num_topics);
        for _ in 0..config.num_topics {
            let mut rows = Vec::with_capacity(config.vocab_size);
            for _ in 0..config.vocab_size {
                rows.push(sample_dirichlet(
                    rng,
                    config.vocab_size,
                    config.transition_alpha,
                )?);
            }
            topic_transitions.push(rows);
        }
        // Context tokens follow a mildly skewed (Zipf-like) global distribution.
        let weights: Vec<f64> = (0..config.vocab_size)
            .map(|i| 1.0 / (i as f64 + 1.0).sqrt())
            .collect();
        let context_distribution = fedmath::rng::normalize_probabilities(&weights)?;
        Ok(LanguageWorld {
            topic_transitions,
            context_distribution,
            config,
        })
    }

    /// The generator configuration.
    pub fn config(&self) -> &LanguageConfig {
        &self.config
    }

    /// Materializes the shard of a single client **positionally** — a pure
    /// function of `(tree seed, id, size)`, independent of every other
    /// client. See [`ClassificationWorld::client_at`] for the contract.
    ///
    /// The client draws its private topic mixture from the RNG at
    /// `tree.child(id)`, then samples `size` `(context, next)` pairs from
    /// its mixed bigram table.
    ///
    /// # Errors
    ///
    /// Returns [`DataError::InvalidSpec`] if `size == 0`.
    pub fn client_at(&self, tree: &fedmath::SeedTree, id: u64, size: usize) -> Result<ClientData> {
        if size == 0 {
            return Err(DataError::InvalidSpec {
                message: "every client must have at least one example".into(),
            });
        }
        let cfg = &self.config;
        let mut rng = tree.child(id).rng();
        let topic_mixture = sample_dirichlet(&mut rng, cfg.num_topics, cfg.client_topic_alpha)?;
        let mut examples = Vec::with_capacity(size);
        for _ in 0..size {
            let context = fedmath::rng::sample_categorical(&mut rng, &self.context_distribution);
            let topic = fedmath::rng::sample_categorical(&mut rng, &topic_mixture);
            let next =
                fedmath::rng::sample_categorical(&mut rng, &self.topic_transitions[topic][context]);
            examples.push(Example::token(context, next));
        }
        Ok(ClientData::new(id as usize, examples))
    }

    /// Generates one client pool with the given per-client example counts,
    /// materialized positionally via [`client_at`](Self::client_at) below a
    /// root derived from `rng` (see [`ClassificationWorld::generate_clients`]).
    ///
    /// # Errors
    ///
    /// Returns [`DataError::InvalidSpec`] if `sizes` is empty or contains zero.
    pub fn generate_clients(&self, rng: &mut impl Rng, sizes: &[usize]) -> Result<Vec<ClientData>> {
        if sizes.is_empty() {
            return Err(DataError::InvalidSpec {
                message: "need at least one client size".into(),
            });
        }
        let tree = fedmath::SeedTree::new(rng.gen());
        sizes
            .iter()
            .enumerate()
            .map(|(id, &n)| self.client_at(&tree, id as u64, n))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::partition::label_heterogeneity;
    use fedmath::rng::rng_for;

    fn classification_config() -> ClassificationConfig {
        ClassificationConfig {
            num_classes: 5,
            feature_dim: 8,
            class_separation: 2.0,
            feature_noise: 1.0,
            label_noise: 0.05,
            label_alpha: 0.1,
            client_shift_std: 0.3,
        }
    }

    fn language_config() -> LanguageConfig {
        LanguageConfig {
            vocab_size: 16,
            num_topics: 4,
            transition_alpha: 0.2,
            client_topic_alpha: 0.3,
        }
    }

    #[test]
    fn classification_world_shapes() {
        let mut rng = rng_for(0, 0);
        let world = ClassificationWorld::generate(&mut rng, classification_config()).unwrap();
        assert_eq!(world.prototypes().len(), 5);
        assert_eq!(world.prototypes()[0].len(), 8);
        assert_eq!(world.config().num_classes, 5);
    }

    #[test]
    fn classification_clients_have_requested_sizes() {
        let mut rng = rng_for(0, 1);
        let world = ClassificationWorld::generate(&mut rng, classification_config()).unwrap();
        let sizes = vec![3, 7, 11];
        let clients = world.generate_clients(&mut rng, &sizes).unwrap();
        assert_eq!(clients.len(), 3);
        for (c, &s) in clients.iter().zip(sizes.iter()) {
            assert_eq!(c.num_examples(), s);
            for e in c.examples() {
                assert_eq!(e.input.dense_dim(), Some(8));
                assert!(e.label < 5);
            }
        }
    }

    #[test]
    fn small_label_alpha_gives_heterogeneous_clients() {
        let mut rng = rng_for(0, 2);
        let mut skewed_cfg = classification_config();
        skewed_cfg.label_alpha = 0.05;
        skewed_cfg.label_noise = 0.0;
        let mut iid_cfg = classification_config();
        iid_cfg.label_alpha = 100.0;
        iid_cfg.label_noise = 0.0;

        let world_skewed = ClassificationWorld::generate(&mut rng, skewed_cfg).unwrap();
        let world_iid = ClassificationWorld::generate(&mut rng, iid_cfg).unwrap();
        let sizes = vec![60; 25];
        let skewed = world_skewed.generate_clients(&mut rng, &sizes).unwrap();
        let iid = world_iid.generate_clients(&mut rng, &sizes).unwrap();
        let h_skewed = label_heterogeneity(&skewed, 5);
        let h_iid = label_heterogeneity(&iid, 5);
        assert!(
            h_skewed > h_iid + 0.15,
            "expected skewed ({h_skewed}) >> iid ({h_iid})"
        );
    }

    #[test]
    fn classification_validation() {
        let mut rng = rng_for(0, 3);
        let mut bad = classification_config();
        bad.num_classes = 1;
        assert!(ClassificationWorld::generate(&mut rng, bad).is_err());
        let mut bad = classification_config();
        bad.feature_dim = 0;
        assert!(ClassificationWorld::generate(&mut rng, bad).is_err());
        let mut bad = classification_config();
        bad.label_noise = 1.5;
        assert!(ClassificationWorld::generate(&mut rng, bad).is_err());
        let mut bad = classification_config();
        bad.label_alpha = 0.0;
        assert!(ClassificationWorld::generate(&mut rng, bad).is_err());
        let mut bad = classification_config();
        bad.feature_noise = -1.0;
        assert!(ClassificationWorld::generate(&mut rng, bad).is_err());

        let world = ClassificationWorld::generate(&mut rng, classification_config()).unwrap();
        assert!(world.generate_clients(&mut rng, &[]).is_err());
        assert!(world.generate_clients(&mut rng, &[3, 0]).is_err());
    }

    #[test]
    fn language_world_generates_valid_token_pairs() {
        let mut rng = rng_for(1, 0);
        let world = LanguageWorld::generate(&mut rng, language_config()).unwrap();
        let clients = world.generate_clients(&mut rng, &[20, 5]).unwrap();
        assert_eq!(clients.len(), 2);
        for c in &clients {
            for e in c.examples() {
                let context = e.input.token_id().expect("token input");
                assert!(context < 16);
                assert!(e.label < 16);
            }
        }
    }

    #[test]
    fn language_validation() {
        let mut rng = rng_for(1, 1);
        let mut bad = language_config();
        bad.vocab_size = 1;
        assert!(LanguageWorld::generate(&mut rng, bad).is_err());
        let mut bad = language_config();
        bad.num_topics = 0;
        assert!(LanguageWorld::generate(&mut rng, bad).is_err());
        let mut bad = language_config();
        bad.transition_alpha = 0.0;
        assert!(LanguageWorld::generate(&mut rng, bad).is_err());
        let mut bad = language_config();
        bad.client_topic_alpha = -1.0;
        assert!(LanguageWorld::generate(&mut rng, bad).is_err());

        let world = LanguageWorld::generate(&mut rng, language_config()).unwrap();
        assert!(world.generate_clients(&mut rng, &[]).is_err());
        assert!(world.generate_clients(&mut rng, &[0]).is_err());
    }

    #[test]
    fn language_clients_differ_in_topic_usage() {
        // With a small client_topic_alpha two clients should have visibly
        // different next-token histograms for the same context.
        let mut rng = rng_for(1, 2);
        let mut cfg = language_config();
        cfg.client_topic_alpha = 0.05;
        cfg.transition_alpha = 0.05;
        let world = LanguageWorld::generate(&mut rng, cfg).unwrap();
        let clients = world.generate_clients(&mut rng, &[400, 400]).unwrap();
        let hist = |c: &ClientData| {
            let mut h = vec![0usize; 16];
            for e in c.examples() {
                h[e.label] += 1;
            }
            h
        };
        let h0 = hist(&clients[0]);
        let h1 = hist(&clients[1]);
        let tv: f64 = h0
            .iter()
            .zip(h1.iter())
            .map(|(&a, &b)| (a as f64 / 400.0 - b as f64 / 400.0).abs())
            .sum::<f64>()
            / 2.0;
        assert!(
            tv > 0.05,
            "expected clients to differ, TV distance was {tv}"
        );
    }

    #[test]
    fn client_at_is_positional_and_order_invariant() {
        let mut rng = rng_for(12, 0);
        let world = ClassificationWorld::generate(&mut rng, classification_config()).unwrap();
        let tree = fedmath::SeedTree::new(999);
        // Materializing id 7 directly, after its neighbours, or twice gives
        // bit-identical shards.
        let direct = world.client_at(&tree, 7, 15).unwrap();
        let _ = world.client_at(&tree, 0, 5).unwrap();
        let _ = world.client_at(&tree, 31, 9).unwrap();
        let again = world.client_at(&tree, 7, 15).unwrap();
        assert_eq!(direct, again);
        assert_eq!(direct.id(), 7);
        assert_eq!(direct.num_examples(), 15);
        assert!(world.client_at(&tree, 3, 0).is_err());

        let mut rng = rng_for(12, 1);
        let lang = LanguageWorld::generate(&mut rng, language_config()).unwrap();
        let direct = lang.client_at(&tree, 11, 8).unwrap();
        let _ = lang.client_at(&tree, 2, 3).unwrap();
        let again = lang.client_at(&tree, 11, 8).unwrap();
        assert_eq!(direct, again);
        assert!(lang.client_at(&tree, 11, 0).is_err());
    }

    #[test]
    fn eager_pool_matches_lazy_per_client_materialization() {
        // generate_clients must produce exactly what client-by-client
        // materialization below the same root would: the eager path is the
        // lazy path, fused.
        let mut rng = rng_for(13, 0);
        let world = ClassificationWorld::generate(&mut rng, classification_config()).unwrap();
        let sizes = vec![4, 9, 2, 7];
        let mut pool_rng = rng_for(13, 1);
        let pool = world.generate_clients(&mut pool_rng, &sizes).unwrap();
        let mut root_rng = rng_for(13, 1);
        let tree = fedmath::SeedTree::new(rand::Rng::gen::<u64>(&mut root_rng));
        for (id, &n) in sizes.iter().enumerate() {
            let lazy = world.client_at(&tree, id as u64, n).unwrap();
            assert_eq!(pool[id], lazy, "client {id} diverged between paths");
        }
    }

    #[test]
    fn worlds_are_reproducible_for_same_seed() {
        let cfg = classification_config();
        let mut rng1 = rng_for(9, 0);
        let mut rng2 = rng_for(9, 0);
        let w1 = ClassificationWorld::generate(&mut rng1, cfg.clone()).unwrap();
        let w2 = ClassificationWorld::generate(&mut rng2, cfg).unwrap();
        assert_eq!(w1.prototypes(), w2.prototypes());
        let c1 = w1.generate_clients(&mut rng1, &[5, 5]).unwrap();
        let c2 = w2.generate_clients(&mut rng2, &[5, 5]).unwrap();
        assert_eq!(c1, c2);
    }
}
