//! The federated dataset: disjoint training and validation client pools.

use crate::client::ClientData;
use crate::example::{Example, Task};
use crate::statistics::DatasetStatistics;
use crate::{DataError, Result};
use serde::{Deserialize, Serialize};

/// Which client pool an operation refers to.
///
/// Following the paper (§2.1), data is split *by client* into two disjoint
/// pools: `N_tr` training clients and `N_val` validation clients. There is no
/// separate test pool; the full validation pool plays the role of "testing"
/// (§3, Evaluation).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Split {
    /// The training client pool (`D_tr`).
    Train,
    /// The validation client pool (`D_val`).
    Validation,
}

impl std::fmt::Display for Split {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Split::Train => f.write_str("train"),
            Split::Validation => f.write_str("validation"),
        }
    }
}

/// A cross-device federated dataset: a task definition plus disjoint pools of
/// training and validation clients, each holding private local examples.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct FederatedDataset {
    name: String,
    task: Task,
    num_classes: usize,
    input_dim: usize,
    train_clients: Vec<ClientData>,
    val_clients: Vec<ClientData>,
}

impl FederatedDataset {
    /// Creates a dataset from its parts.
    ///
    /// `num_classes` is the number of output classes (or the vocabulary size
    /// for next-token prediction). `input_dim` is the dense feature dimension
    /// for [`Task::DenseClassification`] and the vocabulary size for
    /// [`Task::NextTokenPrediction`].
    ///
    /// # Errors
    ///
    /// Returns [`DataError::InvalidSpec`] if either pool is empty, if
    /// `num_classes < 2`, or if `input_dim == 0`.
    pub fn new(
        name: impl Into<String>,
        task: Task,
        num_classes: usize,
        input_dim: usize,
        train_clients: Vec<ClientData>,
        val_clients: Vec<ClientData>,
    ) -> Result<Self> {
        if train_clients.is_empty() || val_clients.is_empty() {
            return Err(DataError::InvalidSpec {
                message: "both client pools must be non-empty".into(),
            });
        }
        if num_classes < 2 {
            return Err(DataError::InvalidSpec {
                message: format!("need at least 2 classes, got {num_classes}"),
            });
        }
        if input_dim == 0 {
            return Err(DataError::InvalidSpec {
                message: "input dimension must be positive".into(),
            });
        }
        Ok(FederatedDataset {
            name: name.into(),
            task,
            num_classes,
            input_dim,
            train_clients,
            val_clients,
        })
    }

    /// Human-readable dataset name (e.g. `"cifar10-like"`).
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Task family of this dataset.
    pub fn task(&self) -> Task {
        self.task
    }

    /// Number of output classes (vocabulary size for next-token prediction).
    pub fn num_classes(&self) -> usize {
        self.num_classes
    }

    /// Dense feature dimension, or vocabulary size for token inputs.
    pub fn input_dim(&self) -> usize {
        self.input_dim
    }

    /// Number of clients in the training pool (`N_tr`).
    pub fn num_train_clients(&self) -> usize {
        self.train_clients.len()
    }

    /// Number of clients in the validation pool (`N_val`).
    pub fn num_val_clients(&self) -> usize {
        self.val_clients.len()
    }

    /// Number of clients in the given pool.
    pub fn num_clients(&self, split: Split) -> usize {
        self.clients(split).len()
    }

    /// Borrows the clients of the given pool.
    pub fn clients(&self, split: Split) -> &[ClientData] {
        match split {
            Split::Train => &self.train_clients,
            Split::Validation => &self.val_clients,
        }
    }

    /// Mutably borrows the clients of the given pool.
    pub fn clients_mut(&mut self, split: Split) -> &mut Vec<ClientData> {
        match split {
            Split::Train => &mut self.train_clients,
            Split::Validation => &mut self.val_clients,
        }
    }

    /// Borrows one client by index.
    ///
    /// # Errors
    ///
    /// Returns [`DataError::ClientOutOfRange`] if `index` is out of range.
    pub fn client(&self, split: Split, index: usize) -> Result<&ClientData> {
        let pool = self.clients(split);
        pool.get(index).ok_or(DataError::ClientOutOfRange {
            index,
            len: pool.len(),
        })
    }

    /// Per-client example counts for the given pool, used as the weights
    /// `p_{val,k}` of the *weighted* evaluation objective (Eq. 2).
    pub fn client_weights_by_examples(&self, split: Split) -> Vec<f64> {
        self.clients(split)
            .iter()
            .map(|c| c.num_examples() as f64)
            .collect()
    }

    /// All-ones weights for the *uniform* evaluation objective
    /// (`p_{val,k} = 1` for every client), used by the paper whenever
    /// differential privacy is applied.
    pub fn uniform_client_weights(&self, split: Split) -> Vec<f64> {
        vec![1.0; self.num_clients(split)]
    }

    /// Total number of examples in the given pool.
    pub fn total_examples(&self, split: Split) -> usize {
        self.clients(split).iter().map(|c| c.num_examples()).sum()
    }

    /// Flattens every example of the given pool into one vector (cloned).
    ///
    /// This is the "pool all of the eval data" step used by the paper's
    /// iid repartitioning protocol (§3.2) and by centralized baselines.
    pub fn pooled_examples(&self, split: Split) -> Vec<Example> {
        self.clients(split)
            .iter()
            .flat_map(|c| c.examples().iter().cloned())
            .collect()
    }

    /// Summary statistics in the format of Table 1/2 of the paper.
    pub fn statistics(&self) -> DatasetStatistics {
        DatasetStatistics::from_dataset(self)
    }

    /// Returns a copy of the dataset with the validation pool replaced.
    ///
    /// Used by the heterogeneity experiments, which repartition only the
    /// evaluation clients and leave the training pool untouched (§3.2).
    ///
    /// # Errors
    ///
    /// Returns [`DataError::InvalidSpec`] if `val_clients` is empty.
    pub fn with_validation_pool(&self, val_clients: Vec<ClientData>) -> Result<Self> {
        if val_clients.is_empty() {
            return Err(DataError::InvalidSpec {
                message: "validation pool must be non-empty".into(),
            });
        }
        let mut out = self.clone();
        out.val_clients = val_clients;
        Ok(out)
    }

    /// Global label histogram over a pool (length `num_classes`).
    pub fn label_histogram(&self, split: Split) -> Vec<usize> {
        let mut hist = vec![0usize; self.num_classes];
        for c in self.clients(split) {
            for (i, count) in c.label_histogram(self.num_classes).into_iter().enumerate() {
                hist[i] += count;
            }
        }
        hist
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::example::Example;

    fn tiny_dataset() -> FederatedDataset {
        let train = vec![
            ClientData::new(0, vec![Example::dense(vec![0.0, 0.0], 0); 4]),
            ClientData::new(1, vec![Example::dense(vec![1.0, 1.0], 1); 6]),
        ];
        let val = vec![
            ClientData::new(0, vec![Example::dense(vec![0.5, 0.5], 0); 2]),
            ClientData::new(1, vec![Example::dense(vec![0.2, 0.8], 1); 3]),
            ClientData::new(2, vec![Example::dense(vec![0.9, 0.1], 1); 5]),
        ];
        FederatedDataset::new("tiny", Task::DenseClassification, 2, 2, train, val).unwrap()
    }

    #[test]
    fn constructor_validation() {
        let c = ClientData::new(0, vec![Example::dense(vec![0.0], 0)]);
        assert!(FederatedDataset::new(
            "x",
            Task::DenseClassification,
            2,
            1,
            vec![],
            vec![c.clone()]
        )
        .is_err());
        assert!(FederatedDataset::new(
            "x",
            Task::DenseClassification,
            2,
            1,
            vec![c.clone()],
            vec![]
        )
        .is_err());
        assert!(FederatedDataset::new(
            "x",
            Task::DenseClassification,
            1,
            1,
            vec![c.clone()],
            vec![c.clone()]
        )
        .is_err());
        assert!(FederatedDataset::new(
            "x",
            Task::DenseClassification,
            2,
            0,
            vec![c.clone()],
            vec![c.clone()]
        )
        .is_err());
        assert!(FederatedDataset::new(
            "x",
            Task::DenseClassification,
            2,
            1,
            vec![c.clone()],
            vec![c]
        )
        .is_ok());
    }

    #[test]
    fn pool_accessors() {
        let d = tiny_dataset();
        assert_eq!(d.name(), "tiny");
        assert_eq!(d.task(), Task::DenseClassification);
        assert_eq!(d.num_classes(), 2);
        assert_eq!(d.input_dim(), 2);
        assert_eq!(d.num_train_clients(), 2);
        assert_eq!(d.num_val_clients(), 3);
        assert_eq!(d.num_clients(Split::Train), 2);
        assert_eq!(d.total_examples(Split::Train), 10);
        assert_eq!(d.total_examples(Split::Validation), 10);
    }

    #[test]
    fn client_lookup_and_errors() {
        let d = tiny_dataset();
        assert_eq!(d.client(Split::Validation, 2).unwrap().num_examples(), 5);
        assert!(matches!(
            d.client(Split::Validation, 3),
            Err(DataError::ClientOutOfRange { index: 3, len: 3 })
        ));
    }

    #[test]
    fn weights() {
        let d = tiny_dataset();
        assert_eq!(
            d.client_weights_by_examples(Split::Validation),
            vec![2.0, 3.0, 5.0]
        );
        assert_eq!(
            d.uniform_client_weights(Split::Validation),
            vec![1.0, 1.0, 1.0]
        );
    }

    #[test]
    fn pooled_examples_flattens_everything() {
        let d = tiny_dataset();
        let pooled = d.pooled_examples(Split::Validation);
        assert_eq!(pooled.len(), 10);
    }

    #[test]
    fn with_validation_pool_swaps_only_val() {
        let d = tiny_dataset();
        let new_val = vec![ClientData::new(0, vec![Example::dense(vec![0.0, 0.0], 1)])];
        let d2 = d.with_validation_pool(new_val).unwrap();
        assert_eq!(d2.num_val_clients(), 1);
        assert_eq!(d2.num_train_clients(), 2);
        assert!(d.with_validation_pool(vec![]).is_err());
    }

    #[test]
    fn label_histogram_sums_to_total() {
        let d = tiny_dataset();
        let hist = d.label_histogram(Split::Validation);
        assert_eq!(hist.iter().sum::<usize>(), 10);
        assert_eq!(hist, vec![2, 8]);
    }

    #[test]
    fn clients_mut_allows_repartition() {
        let mut d = tiny_dataset();
        d.clients_mut(Split::Validation).pop();
        assert_eq!(d.num_val_clients(), 2);
    }

    #[test]
    fn split_display() {
        assert_eq!(Split::Train.to_string(), "train");
        assert_eq!(Split::Validation.to_string(), "validation");
    }
}
