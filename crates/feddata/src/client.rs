//! Per-client local datasets.

use crate::example::Example;
use serde::{Deserialize, Serialize};

/// The local dataset of one client in the federated network.
///
/// In cross-device FL the client is the unit of participation: training and
/// evaluation rounds sample whole clients, and the federated evaluation
/// objective (Eq. 2 in the paper) is a weighted sum over per-client error
/// rates. A `ClientData` therefore carries a stable id plus its private
/// examples.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ClientData {
    id: usize,
    examples: Vec<Example>,
}

impl ClientData {
    /// Creates a client from its id and local examples.
    pub fn new(id: usize, examples: Vec<Example>) -> Self {
        ClientData { id, examples }
    }

    /// Stable client identifier within its pool.
    pub fn id(&self) -> usize {
        self.id
    }

    /// Borrows the client's local examples.
    pub fn examples(&self) -> &[Example] {
        &self.examples
    }

    /// Mutably borrows the client's local examples.
    pub fn examples_mut(&mut self) -> &mut Vec<Example> {
        &mut self.examples
    }

    /// Number of local examples.
    pub fn num_examples(&self) -> usize {
        self.examples.len()
    }

    /// Returns `true` if the client has no local data.
    pub fn is_empty(&self) -> bool {
        self.examples.is_empty()
    }

    /// Histogram of labels over the client's examples, with `num_labels` bins.
    ///
    /// Used to measure label heterogeneity across clients.
    pub fn label_histogram(&self, num_labels: usize) -> Vec<usize> {
        let mut hist = vec![0usize; num_labels];
        for e in &self.examples {
            if e.label < num_labels {
                hist[e.label] += 1;
            }
        }
        hist
    }

    /// Replaces the client's examples, keeping the id.
    pub fn with_examples(mut self, examples: Vec<Example>) -> Self {
        self.examples = examples;
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_client() -> ClientData {
        ClientData::new(
            3,
            vec![
                Example::dense(vec![0.0], 1),
                Example::dense(vec![1.0], 1),
                Example::dense(vec![2.0], 0),
            ],
        )
    }

    #[test]
    fn accessors() {
        let c = sample_client();
        assert_eq!(c.id(), 3);
        assert_eq!(c.num_examples(), 3);
        assert!(!c.is_empty());
        assert_eq!(c.examples()[2].label, 0);
    }

    #[test]
    fn label_histogram_counts() {
        let c = sample_client();
        assert_eq!(c.label_histogram(3), vec![1, 2, 0]);
        // Labels outside the bin range are ignored rather than panicking.
        assert_eq!(c.label_histogram(1), vec![1]);
    }

    #[test]
    fn with_examples_replaces_data() {
        let c = sample_client().with_examples(vec![Example::token(0, 1)]);
        assert_eq!(c.id(), 3);
        assert_eq!(c.num_examples(), 1);
    }

    #[test]
    fn examples_mut_allows_editing() {
        let mut c = sample_client();
        c.examples_mut().push(Example::dense(vec![5.0], 2));
        assert_eq!(c.num_examples(), 4);
    }

    #[test]
    fn empty_client() {
        let c = ClientData::new(0, vec![]);
        assert!(c.is_empty());
        assert_eq!(c.label_histogram(4), vec![0, 0, 0, 0]);
    }
}
