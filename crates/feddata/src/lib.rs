//! Synthetic federated datasets and partitioning utilities.
//!
//! The paper evaluates federated hyperparameter tuning on four cross-device
//! benchmarks — CIFAR10, FEMNIST, StackOverflow and Reddit — whose raw data
//! and GPU-scale training are unavailable in this environment. This crate
//! implements the substitution described in `DESIGN.md`: synthetic federated
//! datasets that preserve the properties the paper's study actually depends
//! on:
//!
//! 1. **Scale statistics** (Table 1/2): number of training/validation
//!    clients, per-client example counts (including the long tails of the
//!    text datasets).
//! 2. **Data heterogeneity**: Dirichlet label partitioning (Hsu et al. 2019,
//!    exactly the paper's CIFAR10 protocol) and client-specific feature or
//!    topic shifts for the naturally-partitioned datasets, plus the
//!    iid-refraction knob `p` used in §3.2 to interpolate between non-iid
//!    (`p = 0`) and iid (`p = 1`) validation pools.
//! 3. **Task-family structure**: two image-classification-like datasets and
//!    two next-token-prediction-like datasets so that HP transfer is easy
//!    within a family and hard across families (§4, Fig. 10/11).
//!
//! The main entry point is [`FederatedDataset`], typically built from a
//! [`DatasetSpec`] preset via [`DatasetSpec::generate`].
//!
//! # Example
//!
//! ```
//! use feddata::{Benchmark, DatasetSpec, Scale};
//!
//! let spec = DatasetSpec::benchmark(Benchmark::Cifar10Like, Scale::Smoke);
//! let dataset = spec.generate(42).unwrap();
//! assert!(dataset.num_train_clients() > 0);
//! assert!(dataset.num_val_clients() > 0);
//! ```

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod client;
pub mod dataset;
pub mod example;
pub mod generators;
pub mod partition;
pub mod spec;
pub mod statistics;

pub use client::ClientData;
pub use dataset::{FederatedDataset, Split};
pub use example::{Example, Input, Task};
pub use partition::{dirichlet_label_partition, repartition_iid_fraction};
pub use spec::{Benchmark, DatasetSpec, Scale};
pub use statistics::{ClientSizeSummary, DatasetStatistics};

use std::fmt;

/// Errors produced when constructing or manipulating federated datasets.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum DataError {
    /// A dataset parameter was invalid (e.g. zero clients or classes).
    InvalidSpec {
        /// Human-readable description of the violation.
        message: String,
    },
    /// An operation referenced a client index that does not exist.
    ClientOutOfRange {
        /// The offending index.
        index: usize,
        /// Number of clients in the referenced pool.
        len: usize,
    },
    /// An underlying numerical routine failed.
    Math(fedmath::MathError),
}

impl fmt::Display for DataError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DataError::InvalidSpec { message } => write!(f, "invalid dataset spec: {message}"),
            DataError::ClientOutOfRange { index, len } => {
                write!(f, "client index {index} out of range for pool of {len}")
            }
            DataError::Math(e) => write!(f, "math error: {e}"),
        }
    }
}

impl std::error::Error for DataError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            DataError::Math(e) => Some(e),
            _ => None,
        }
    }
}

impl From<fedmath::MathError> for DataError {
    fn from(e: fedmath::MathError) -> Self {
        DataError::Math(e)
    }
}

/// Convenience alias for results returned by this crate.
pub type Result<T> = std::result::Result<T, DataError>;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn error_display() {
        let e = DataError::InvalidSpec {
            message: "zero clients".into(),
        };
        assert!(e.to_string().contains("zero clients"));
        let e = DataError::ClientOutOfRange { index: 5, len: 3 };
        assert!(e.to_string().contains('5'));
        let e: DataError = fedmath::MathError::EmptyInput { what: "mean" }.into();
        assert!(e.to_string().contains("mean"));
    }

    #[test]
    fn error_implements_std_error_with_source() {
        use std::error::Error;
        let e: DataError = fedmath::MathError::EmptyInput { what: "x" }.into();
        assert!(e.source().is_some());
        let e = DataError::ClientOutOfRange { index: 0, len: 0 };
        assert!(e.source().is_none());
    }
}
