//! Client partitioning: Dirichlet label skew, long-tailed client sizes, and
//! the iid-refraction repartitioning used in the heterogeneity experiments.

use crate::client::ClientData;
use crate::example::Example;
use crate::{DataError, Result};
use rand::seq::SliceRandom;
use rand::Rng;
use rand_distr::{Distribution, Gamma, LogNormal};

/// Samples a probability vector from a symmetric Dirichlet distribution with
/// concentration `alpha` over `dim` categories.
///
/// Implemented via normalised Gamma draws so that very small `alpha`
/// (e.g. the paper's `alpha = 0.1`) is handled robustly.
///
/// # Errors
///
/// Returns [`DataError::InvalidSpec`] if `dim == 0` or `alpha <= 0`.
pub fn sample_dirichlet(rng: &mut impl Rng, dim: usize, alpha: f64) -> Result<Vec<f64>> {
    if dim == 0 {
        return Err(DataError::InvalidSpec {
            message: "dirichlet dimension must be positive".into(),
        });
    }
    if alpha <= 0.0 || !alpha.is_finite() {
        return Err(DataError::InvalidSpec {
            message: format!("dirichlet alpha must be positive, got {alpha}"),
        });
    }
    let gamma = Gamma::new(alpha, 1.0).map_err(|e| DataError::InvalidSpec {
        message: format!("invalid gamma parameters: {e}"),
    })?;
    let mut draws: Vec<f64> = (0..dim).map(|_| gamma.sample(rng)).collect();
    let mut total: f64 = draws.iter().sum();
    if total <= 0.0 || !total.is_finite() {
        // For extremely small alpha every draw can underflow to zero; fall
        // back to a one-hot vector on a random coordinate, which is the
        // correct limiting behaviour of Dirichlet(alpha -> 0).
        let hot = rng.gen_range(0..dim);
        draws = vec![0.0; dim];
        draws[hot] = 1.0;
        total = 1.0;
    }
    Ok(draws.into_iter().map(|d| d / total).collect())
}

/// Partitions `examples` across `num_clients` clients with Dirichlet label
/// skew (Hsu et al. 2019), the protocol the paper uses to synthesise
/// imbalanced client labels for CIFAR10 (`alpha = 0.1`).
///
/// For every class, a proportion vector over clients is drawn from
/// `Dirichlet(alpha)` and the class's examples are dealt out according to
/// those proportions. Smaller `alpha` means more skew (each client sees fewer
/// classes); large `alpha` approaches an iid split.
///
/// Every example is assigned to exactly one client; clients that end up empty
/// receive one example stolen from the largest client so that every client
/// participates in evaluation.
///
/// # Errors
///
/// Returns [`DataError::InvalidSpec`] if `examples` is empty, `num_clients`
/// is zero, `num_classes` is zero, or `alpha <= 0`.
pub fn dirichlet_label_partition(
    rng: &mut impl Rng,
    examples: Vec<Example>,
    num_clients: usize,
    num_classes: usize,
    alpha: f64,
) -> Result<Vec<ClientData>> {
    if examples.is_empty() {
        return Err(DataError::InvalidSpec {
            message: "cannot partition zero examples".into(),
        });
    }
    if num_clients == 0 {
        return Err(DataError::InvalidSpec {
            message: "cannot partition across zero clients".into(),
        });
    }
    if num_classes == 0 {
        return Err(DataError::InvalidSpec {
            message: "number of classes must be positive".into(),
        });
    }
    // Group example indices by label.
    let mut by_class: Vec<Vec<Example>> = (0..num_classes).map(|_| Vec::new()).collect();
    for e in examples {
        let label = e.label.min(num_classes - 1);
        by_class[label].push(e);
    }
    let mut buckets: Vec<Vec<Example>> = (0..num_clients).map(|_| Vec::new()).collect();
    for mut class_examples in by_class {
        if class_examples.is_empty() {
            continue;
        }
        class_examples.shuffle(rng);
        let proportions = sample_dirichlet(rng, num_clients, alpha)?;
        // Convert proportions into integer counts that sum to the class size.
        let n = class_examples.len();
        let mut counts: Vec<usize> = proportions
            .iter()
            .map(|p| (p * n as f64).floor() as usize)
            .collect();
        let mut assigned: usize = counts.iter().sum();
        // Distribute the remainder to the clients with the largest fractional parts.
        let mut fracs: Vec<(f64, usize)> = proportions
            .iter()
            .enumerate()
            .map(|(i, p)| (p * n as f64 - counts[i] as f64, i))
            .collect();
        fracs.sort_by(|a, b| b.0.partial_cmp(&a.0).expect("finite"));
        let mut fi = 0;
        while assigned < n {
            counts[fracs[fi % fracs.len()].1] += 1;
            assigned += 1;
            fi += 1;
        }
        let mut iter = class_examples.into_iter();
        for (client, &count) in counts.iter().enumerate() {
            for _ in 0..count {
                if let Some(e) = iter.next() {
                    buckets[client].push(e);
                }
            }
        }
    }
    rebalance_empty_clients(&mut buckets);
    Ok(buckets
        .into_iter()
        .enumerate()
        .map(|(id, examples)| ClientData::new(id, examples))
        .collect())
}

/// Moves single examples from the largest buckets into empty ones so that no
/// client ends up with zero examples.
fn rebalance_empty_clients(buckets: &mut [Vec<Example>]) {
    loop {
        let Some(empty_idx) = buckets.iter().position(|b| b.is_empty()) else {
            return;
        };
        let largest_idx = buckets
            .iter()
            .enumerate()
            .max_by_key(|(_, b)| b.len())
            .map(|(i, _)| i)
            .expect("non-empty slice");
        if buckets[largest_idx].len() <= 1 {
            // Not enough examples to give every client one; leave remaining empty.
            return;
        }
        let moved = buckets[largest_idx]
            .pop()
            .expect("largest bucket is non-empty");
        buckets[empty_idx].push(moved);
    }
}

/// Partitions `examples` across `num_clients` clients uniformly at random
/// (an iid split), preserving only the target per-client sizes if provided.
///
/// # Errors
///
/// Returns [`DataError::InvalidSpec`] if `examples` is empty or
/// `num_clients == 0`.
pub fn iid_partition(
    rng: &mut impl Rng,
    mut examples: Vec<Example>,
    num_clients: usize,
) -> Result<Vec<ClientData>> {
    if examples.is_empty() {
        return Err(DataError::InvalidSpec {
            message: "cannot partition zero examples".into(),
        });
    }
    if num_clients == 0 {
        return Err(DataError::InvalidSpec {
            message: "cannot partition across zero clients".into(),
        });
    }
    examples.shuffle(rng);
    let mut buckets: Vec<Vec<Example>> = (0..num_clients).map(|_| Vec::new()).collect();
    for (i, e) in examples.into_iter().enumerate() {
        buckets[i % num_clients].push(e);
    }
    rebalance_empty_clients(&mut buckets);
    Ok(buckets
        .into_iter()
        .enumerate()
        .map(|(id, ex)| ClientData::new(id, ex))
        .collect())
}

/// Repartitions a client pool towards iid-ness by the fraction `p ∈ [0, 1]`,
/// reproducing the protocol of §3.2:
///
/// > "we pool all of the eval data and let each eval client resample the data
/// > in an iid manner [...] We extend this method by resampling only a
/// > fraction `p` of the validation data."
///
/// Each client keeps `(1 - p)` of its own examples (chosen at random) and
/// replaces the remaining fraction with draws from the pooled data (with
/// replacement, i.e. a shared global distribution), so `p = 0` leaves the
/// natural non-iid partition untouched and `p = 1` yields a fully iid pool.
/// Per-client example counts are preserved exactly.
///
/// # Errors
///
/// Returns [`DataError::InvalidSpec`] if `p` is outside `[0, 1]` or the pool
/// has no examples.
pub fn repartition_iid_fraction(
    rng: &mut impl Rng,
    clients: &[ClientData],
    p: f64,
) -> Result<Vec<ClientData>> {
    if !(0.0..=1.0).contains(&p) || !p.is_finite() {
        return Err(DataError::InvalidSpec {
            message: format!("iid fraction p must be in [0, 1], got {p}"),
        });
    }
    let pooled: Vec<&Example> = clients.iter().flat_map(|c| c.examples().iter()).collect();
    if pooled.is_empty() {
        return Err(DataError::InvalidSpec {
            message: "cannot repartition an empty client pool".into(),
        });
    }
    let mut out = Vec::with_capacity(clients.len());
    for client in clients {
        let n = client.num_examples();
        let replace = ((n as f64) * p).round() as usize;
        let keep = n - replace;
        // Randomly choose which local examples survive.
        let mut local: Vec<Example> = client.examples().to_vec();
        local.shuffle(rng);
        local.truncate(keep);
        for _ in 0..replace {
            let idx = rng.gen_range(0..pooled.len());
            local.push(pooled[idx].clone());
        }
        out.push(ClientData::new(client.id(), local));
    }
    Ok(out)
}

/// Validates the parameters of a long-tailed size distribution.
///
/// # Errors
///
/// Returns [`DataError::InvalidSpec`] if the constraints are unsatisfiable
/// (`min > max`, non-positive mean, mean outside `[min, max]`, or a
/// non-positive `sigma`).
pub fn validate_long_tailed_sizes(mean: f64, min: usize, max: usize, sigma: f64) -> Result<()> {
    if min > max {
        return Err(DataError::InvalidSpec {
            message: format!("min {min} exceeds max {max}"),
        });
    }
    if mean <= 0.0 || mean < min as f64 || mean > max as f64 {
        return Err(DataError::InvalidSpec {
            message: format!("mean {mean} must lie within [{min}, {max}]"),
        });
    }
    if sigma <= 0.0 || !sigma.is_finite() {
        return Err(DataError::InvalidSpec {
            message: format!("sigma must be positive, got {sigma}"),
        });
    }
    Ok(())
}

/// The long-tailed example count of client `id`, drawn **positionally** from
/// `tree`: a pure function of `(tree seed, id)` that never looks at any other
/// client. This is what lets a virtual population of millions of clients
/// materialize one shard at a time — sizes come from a clamped log-normal
/// with `mu = ln(mean) - sigma²/2` (so the analytic pre-clamp mean is
/// `mean`), rounded to an integer in `[max(min, 1), max]`.
///
/// Every client is guaranteed **at least one example** regardless of how the
/// float draw rounds: the lower clamp bound is `max(min, 1)`, never 0.
///
/// # Errors
///
/// See [`validate_long_tailed_sizes`].
pub fn long_tailed_size_at(
    tree: &fedmath::SeedTree,
    id: u64,
    mean: f64,
    min: usize,
    max: usize,
    sigma: f64,
) -> Result<usize> {
    Ok(LongTailedSizes::new(mean, min, max, sigma)?.size_at(tree, id))
}

/// A validated, precompiled long-tailed size distribution: the form of
/// [`long_tailed_size_at`] for hot loops (e.g. size-weighted rejection
/// sampling over a lazy population), where validating the parameters and
/// rebuilding the log-normal on every per-client query would dominate.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LongTailedSizes {
    dist: LogNormal,
    lo: f64,
    hi: f64,
}

impl LongTailedSizes {
    /// Validates the parameters once and precomputes the distribution.
    ///
    /// # Errors
    ///
    /// See [`validate_long_tailed_sizes`].
    pub fn new(mean: f64, min: usize, max: usize, sigma: f64) -> Result<Self> {
        validate_long_tailed_sizes(mean, min, max, sigma)?;
        let mu = mean.ln() - sigma * sigma / 2.0;
        let dist = LogNormal::new(mu, sigma).map_err(|e| DataError::InvalidSpec {
            message: format!("invalid log-normal parameters: {e}"),
        })?;
        Ok(LongTailedSizes {
            dist,
            // The lower bound saturates at 1: a client with zero examples
            // cannot participate in training or evaluation, so degenerate
            // tiny-shard draws round *up*.
            lo: min.max(1) as f64,
            hi: max.max(1) as f64,
        })
    }

    /// The size of client `id` below `tree` — identical to
    /// [`long_tailed_size_at`] with this distribution's parameters.
    pub fn size_at(&self, tree: &fedmath::SeedTree, id: u64) -> usize {
        let draw = self.dist.sample(&mut tree.child(id).rng());
        // Clamp in float space first (both bounds are integers, so rounding
        // a clamped value cannot escape the bounds), then round.
        draw.clamp(self.lo, self.hi).round() as usize
    }
}

/// Draws `num_clients` long-tailed per-client example counts targeting the
/// given mean, minimum, and maximum, mimicking the client-size distributions
/// of the text datasets in Table 2 (min 1, max five orders of magnitude
/// larger).
///
/// Counts are drawn positionally via [`long_tailed_size_at`] below a root
/// derived from `rng`: client `i`'s size depends only on that root and `i`,
/// never on a sequential pass over the whole population. This keeps eager
/// generation ([`crate::DatasetSpec::generate`]) consistent with lazy
/// per-client materialization at population scale, and guarantees every
/// client at least one example.
///
/// `mean` is the **analytic pre-clamp mean** of the log-normal
/// (`mu = ln(mean) - sigma²/2`). Clamping to `[max(min, 1), max]` truncates
/// the heavy upper tail, so the realized empirical mean undershoots `mean`
/// for aggressive `(mean, sigma, max)` combinations — a deliberate trade:
/// an exact empirical correction would need a global pass over all clients,
/// which positional per-client materialization rules out.
///
/// # Errors
///
/// Returns [`DataError::InvalidSpec`] if `num_clients == 0` or the
/// distribution parameters are invalid (see [`validate_long_tailed_sizes`]).
pub fn long_tailed_client_sizes(
    rng: &mut impl Rng,
    num_clients: usize,
    mean: f64,
    min: usize,
    max: usize,
    sigma: f64,
) -> Result<Vec<usize>> {
    if num_clients == 0 {
        return Err(DataError::InvalidSpec {
            message: "need at least one client".into(),
        });
    }
    let dist = LongTailedSizes::new(mean, min, max, sigma)?;
    let tree = fedmath::SeedTree::new(rng.gen());
    Ok((0..num_clients)
        .map(|i| dist.size_at(&tree, i as u64))
        .collect())
}

/// Computes a simple scalar measure of label heterogeneity across clients:
/// the mean total-variation distance between each client's label distribution
/// and the global label distribution. 0 means perfectly iid; values near 1
/// mean clients see nearly disjoint label sets.
pub fn label_heterogeneity(clients: &[ClientData], num_classes: usize) -> f64 {
    if clients.is_empty() || num_classes == 0 {
        return 0.0;
    }
    let mut global = vec![0.0f64; num_classes];
    let mut total = 0.0;
    for c in clients {
        for (i, count) in c.label_histogram(num_classes).into_iter().enumerate() {
            global[i] += count as f64;
            total += count as f64;
        }
    }
    if total == 0.0 {
        return 0.0;
    }
    for g in &mut global {
        *g /= total;
    }
    let mut tv_sum = 0.0;
    let mut counted = 0usize;
    for c in clients {
        let hist = c.label_histogram(num_classes);
        let n: usize = hist.iter().sum();
        if n == 0 {
            continue;
        }
        let tv: f64 = hist
            .iter()
            .enumerate()
            .map(|(i, &h)| (h as f64 / n as f64 - global[i]).abs())
            .sum::<f64>()
            / 2.0;
        tv_sum += tv;
        counted += 1;
    }
    if counted == 0 {
        0.0
    } else {
        tv_sum / counted as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fedmath::rng::rng_for;

    fn labelled_examples(per_class: usize, num_classes: usize) -> Vec<Example> {
        let mut out = Vec::new();
        for class in 0..num_classes {
            for _ in 0..per_class {
                out.push(Example::dense(vec![class as f64], class));
            }
        }
        out
    }

    #[test]
    fn dirichlet_probabilities_sum_to_one() {
        let mut rng = rng_for(0, 0);
        for &alpha in &[0.05, 0.1, 1.0, 10.0] {
            let p = sample_dirichlet(&mut rng, 8, alpha).unwrap();
            assert_eq!(p.len(), 8);
            assert!((p.iter().sum::<f64>() - 1.0).abs() < 1e-9);
            assert!(p.iter().all(|&x| x >= 0.0));
        }
    }

    #[test]
    fn dirichlet_validation() {
        let mut rng = rng_for(0, 1);
        assert!(sample_dirichlet(&mut rng, 0, 1.0).is_err());
        assert!(sample_dirichlet(&mut rng, 3, 0.0).is_err());
        assert!(sample_dirichlet(&mut rng, 3, -1.0).is_err());
    }

    #[test]
    fn dirichlet_partition_preserves_examples() {
        let mut rng = rng_for(1, 0);
        let examples = labelled_examples(50, 10);
        let clients = dirichlet_label_partition(&mut rng, examples.clone(), 20, 10, 0.1).unwrap();
        assert_eq!(clients.len(), 20);
        let total: usize = clients.iter().map(|c| c.num_examples()).sum();
        assert_eq!(total, examples.len());
        // With this many examples per client-slot, rebalancing guarantees
        // non-empty clients.
        assert!(clients.iter().all(|c| !c.is_empty()));
        // Ids are assigned sequentially.
        for (i, c) in clients.iter().enumerate() {
            assert_eq!(c.id(), i);
        }
    }

    #[test]
    fn small_alpha_is_more_heterogeneous_than_large_alpha() {
        let mut rng = rng_for(2, 0);
        let examples = labelled_examples(100, 10);
        let skewed = dirichlet_label_partition(&mut rng, examples.clone(), 20, 10, 0.05).unwrap();
        let uniform = dirichlet_label_partition(&mut rng, examples, 20, 10, 100.0).unwrap();
        let h_skewed = label_heterogeneity(&skewed, 10);
        let h_uniform = label_heterogeneity(&uniform, 10);
        assert!(
            h_skewed > h_uniform + 0.1,
            "expected skewed ({h_skewed}) >> uniform ({h_uniform})"
        );
    }

    #[test]
    fn dirichlet_partition_validation() {
        let mut rng = rng_for(2, 1);
        assert!(dirichlet_label_partition(&mut rng, vec![], 5, 2, 1.0).is_err());
        let ex = labelled_examples(2, 2);
        assert!(dirichlet_label_partition(&mut rng, ex.clone(), 0, 2, 1.0).is_err());
        assert!(dirichlet_label_partition(&mut rng, ex.clone(), 5, 0, 1.0).is_err());
        assert!(dirichlet_label_partition(&mut rng, ex, 5, 2, 0.0).is_err());
    }

    #[test]
    fn iid_partition_balances_sizes() {
        let mut rng = rng_for(3, 0);
        let examples = labelled_examples(30, 4);
        let clients = iid_partition(&mut rng, examples, 12).unwrap();
        assert_eq!(clients.len(), 12);
        let sizes: Vec<usize> = clients.iter().map(|c| c.num_examples()).collect();
        assert_eq!(sizes.iter().sum::<usize>(), 120);
        assert!(sizes.iter().all(|&s| s == 10));
    }

    #[test]
    fn iid_partition_validation() {
        let mut rng = rng_for(3, 1);
        assert!(iid_partition(&mut rng, vec![], 2).is_err());
        assert!(iid_partition(&mut rng, labelled_examples(1, 2), 0).is_err());
    }

    #[test]
    fn repartition_p_zero_is_identity_up_to_order() {
        let mut rng = rng_for(4, 0);
        let examples = labelled_examples(20, 4);
        let clients = dirichlet_label_partition(&mut rng, examples, 8, 4, 0.1).unwrap();
        let repartitioned = repartition_iid_fraction(&mut rng, &clients, 0.0).unwrap();
        for (before, after) in clients.iter().zip(repartitioned.iter()) {
            assert_eq!(before.num_examples(), after.num_examples());
            // p = 0 keeps exactly the client's own examples (order may differ).
            let mut b = before.label_histogram(4);
            let mut a = after.label_histogram(4);
            b.sort_unstable();
            a.sort_unstable();
            assert_eq!(a, b);
        }
    }

    #[test]
    fn repartition_p_one_reduces_heterogeneity() {
        let mut rng = rng_for(4, 1);
        let examples = labelled_examples(100, 10);
        let clients = dirichlet_label_partition(&mut rng, examples, 20, 10, 0.05).unwrap();
        let h_before = label_heterogeneity(&clients, 10);
        let iid = repartition_iid_fraction(&mut rng, &clients, 1.0).unwrap();
        let h_after = label_heterogeneity(&iid, 10);
        assert!(
            h_after < h_before * 0.5,
            "expected heterogeneity to drop substantially: before={h_before}, after={h_after}"
        );
        // Sizes preserved.
        for (b, a) in clients.iter().zip(iid.iter()) {
            assert_eq!(b.num_examples(), a.num_examples());
        }
    }

    #[test]
    fn repartition_validation() {
        let mut rng = rng_for(4, 2);
        let clients = vec![ClientData::new(0, labelled_examples(2, 2))];
        assert!(repartition_iid_fraction(&mut rng, &clients, -0.1).is_err());
        assert!(repartition_iid_fraction(&mut rng, &clients, 1.1).is_err());
        let empty = vec![ClientData::new(0, vec![])];
        assert!(repartition_iid_fraction(&mut rng, &empty, 0.5).is_err());
    }

    #[test]
    fn long_tailed_sizes_respect_bounds() {
        let mut rng = rng_for(5, 0);
        let sizes = long_tailed_client_sizes(&mut rng, 500, 40.0, 1, 5000, 1.5).unwrap();
        assert_eq!(sizes.len(), 500);
        assert!(sizes.iter().all(|&s| (1..=5000).contains(&s)));
        let mean = sizes.iter().sum::<usize>() as f64 / 500.0;
        assert!(
            (mean - 40.0).abs() < 25.0,
            "mean {mean} too far from target 40"
        );
        // Long tail: max should be several times the mean.
        let max = *sizes.iter().max().unwrap();
        assert!(
            max as f64 > 2.0 * mean,
            "max {max} not long-tailed vs mean {mean}"
        );
    }

    #[test]
    fn long_tailed_sizes_guarantee_at_least_one_example() {
        // Regression: with min = 0 and a heavy tail centred below one
        // example, float rounding used to be the only thing standing between
        // a client and an empty shard. The lower clamp bound now saturates
        // at 1 for every client at any population size.
        let tree = fedmath::SeedTree::new(123);
        for id in 0..5_000u64 {
            let s = long_tailed_size_at(&tree, id, 2.0, 0, 10_000, 2.5).unwrap();
            assert!(s >= 1, "client {id} drew a zero-sized shard");
        }
        let mut rng = rng_for(5, 7);
        let sizes = long_tailed_client_sizes(&mut rng, 2_000, 2.0, 0, 50, 2.0).unwrap();
        assert!(sizes.iter().all(|&s| (1..=50).contains(&s)));
    }

    #[test]
    fn long_tailed_size_is_positional() {
        // Client id's size is a pure function of (tree, id): deriving other
        // ids first, or none at all, changes nothing.
        let tree = fedmath::SeedTree::new(77);
        let direct = long_tailed_size_at(&tree, 9_999_999, 40.0, 1, 5_000, 1.5).unwrap();
        let mut scattered = Vec::new();
        for id in [123u64, 9_999_999, 0, 42] {
            scattered.push((
                id,
                long_tailed_size_at(&tree, id, 40.0, 1, 5_000, 1.5).unwrap(),
            ));
        }
        assert_eq!(scattered[1], (9_999_999, direct));
        // And the whole-population draw agrees with itself across calls.
        let a = long_tailed_client_sizes(&mut rng_for(6, 0), 100, 40.0, 1, 5_000, 1.5).unwrap();
        let b = long_tailed_client_sizes(&mut rng_for(6, 0), 100, 40.0, 1, 5_000, 1.5).unwrap();
        assert_eq!(a, b);
    }

    #[test]
    fn long_tailed_sizes_validation() {
        let mut rng = rng_for(5, 1);
        assert!(long_tailed_client_sizes(&mut rng, 0, 10.0, 1, 100, 1.0).is_err());
        assert!(long_tailed_client_sizes(&mut rng, 5, 10.0, 100, 1, 1.0).is_err());
        assert!(long_tailed_client_sizes(&mut rng, 5, 0.0, 1, 100, 1.0).is_err());
        assert!(long_tailed_client_sizes(&mut rng, 5, 1000.0, 1, 100, 1.0).is_err());
        assert!(long_tailed_client_sizes(&mut rng, 5, 10.0, 1, 100, 0.0).is_err());
    }

    #[test]
    fn heterogeneity_of_identical_clients_is_zero() {
        let clients = vec![
            ClientData::new(0, labelled_examples(5, 4)),
            ClientData::new(1, labelled_examples(5, 4)),
        ];
        assert!(label_heterogeneity(&clients, 4) < 1e-12);
        assert_eq!(label_heterogeneity(&[], 4), 0.0);
    }

    #[test]
    fn heterogeneity_of_disjoint_clients_is_high() {
        let c0 = ClientData::new(0, vec![Example::dense(vec![0.0], 0); 10]);
        let c1 = ClientData::new(1, vec![Example::dense(vec![1.0], 1); 10]);
        let h = label_heterogeneity(&[c0, c1], 2);
        assert!(h > 0.45, "expected near-maximal heterogeneity, got {h}");
    }
}

#[cfg(test)]
mod proptests {
    use super::*;
    use fedmath::rng::rng_for;
    use proptest::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        #[test]
        fn prop_dirichlet_partition_preserves_count(
            seed in any::<u64>(),
            per_class in 5usize..30,
            num_classes in 2usize..8,
            num_clients in 1usize..20,
            alpha in 0.05f64..10.0,
        ) {
            let mut rng = rng_for(seed, 0);
            let mut examples = Vec::new();
            for class in 0..num_classes {
                for _ in 0..per_class {
                    examples.push(Example::dense(vec![class as f64], class));
                }
            }
            let n = examples.len();
            let clients = dirichlet_label_partition(&mut rng, examples, num_clients, num_classes, alpha).unwrap();
            prop_assert_eq!(clients.len(), num_clients);
            let total: usize = clients.iter().map(|c| c.num_examples()).sum();
            prop_assert_eq!(total, n);
        }

        #[test]
        fn prop_repartition_preserves_sizes(
            seed in any::<u64>(),
            p in 0.0f64..1.0,
        ) {
            let mut rng = rng_for(seed, 1);
            let mut examples = Vec::new();
            for class in 0..5usize {
                for _ in 0..40 {
                    examples.push(Example::dense(vec![class as f64], class));
                }
            }
            let clients = dirichlet_label_partition(&mut rng, examples, 10, 5, 0.2).unwrap();
            let re = repartition_iid_fraction(&mut rng, &clients, p).unwrap();
            prop_assert_eq!(re.len(), clients.len());
            for (b, a) in clients.iter().zip(re.iter()) {
                prop_assert_eq!(b.num_examples(), a.num_examples());
                prop_assert_eq!(b.id(), a.id());
            }
        }

        #[test]
        fn prop_long_tailed_sizes_within_bounds(
            seed in any::<u64>(),
            num_clients in 1usize..100,
        ) {
            let mut rng = rng_for(seed, 2);
            let sizes = long_tailed_client_sizes(&mut rng, num_clients, 30.0, 2, 400, 1.2).unwrap();
            prop_assert_eq!(sizes.len(), num_clients);
            prop_assert!(sizes.iter().all(|&s| (2..=400).contains(&s)));
        }
    }
}
