//! Client partitioning: Dirichlet label skew, long-tailed client sizes, and
//! the iid-refraction repartitioning used in the heterogeneity experiments.

use crate::client::ClientData;
use crate::example::Example;
use crate::{DataError, Result};
use rand::seq::SliceRandom;
use rand::Rng;
use rand_distr::{Distribution, Gamma, LogNormal};

/// Samples a probability vector from a symmetric Dirichlet distribution with
/// concentration `alpha` over `dim` categories.
///
/// Implemented via normalised Gamma draws so that very small `alpha`
/// (e.g. the paper's `alpha = 0.1`) is handled robustly.
///
/// # Errors
///
/// Returns [`DataError::InvalidSpec`] if `dim == 0` or `alpha <= 0`.
pub fn sample_dirichlet(rng: &mut impl Rng, dim: usize, alpha: f64) -> Result<Vec<f64>> {
    if dim == 0 {
        return Err(DataError::InvalidSpec {
            message: "dirichlet dimension must be positive".into(),
        });
    }
    if alpha <= 0.0 || !alpha.is_finite() {
        return Err(DataError::InvalidSpec {
            message: format!("dirichlet alpha must be positive, got {alpha}"),
        });
    }
    let gamma = Gamma::new(alpha, 1.0).map_err(|e| DataError::InvalidSpec {
        message: format!("invalid gamma parameters: {e}"),
    })?;
    let mut draws: Vec<f64> = (0..dim).map(|_| gamma.sample(rng)).collect();
    let mut total: f64 = draws.iter().sum();
    if total <= 0.0 || !total.is_finite() {
        // For extremely small alpha every draw can underflow to zero; fall
        // back to a one-hot vector on a random coordinate, which is the
        // correct limiting behaviour of Dirichlet(alpha -> 0).
        let hot = rng.gen_range(0..dim);
        draws = vec![0.0; dim];
        draws[hot] = 1.0;
        total = 1.0;
    }
    Ok(draws.into_iter().map(|d| d / total).collect())
}

/// Partitions `examples` across `num_clients` clients with Dirichlet label
/// skew (Hsu et al. 2019), the protocol the paper uses to synthesise
/// imbalanced client labels for CIFAR10 (`alpha = 0.1`).
///
/// For every class, a proportion vector over clients is drawn from
/// `Dirichlet(alpha)` and the class's examples are dealt out according to
/// those proportions. Smaller `alpha` means more skew (each client sees fewer
/// classes); large `alpha` approaches an iid split.
///
/// Every example is assigned to exactly one client; clients that end up empty
/// receive one example stolen from the largest client so that every client
/// participates in evaluation.
///
/// # Errors
///
/// Returns [`DataError::InvalidSpec`] if `examples` is empty, `num_clients`
/// is zero, `num_classes` is zero, or `alpha <= 0`.
pub fn dirichlet_label_partition(
    rng: &mut impl Rng,
    examples: Vec<Example>,
    num_clients: usize,
    num_classes: usize,
    alpha: f64,
) -> Result<Vec<ClientData>> {
    if examples.is_empty() {
        return Err(DataError::InvalidSpec {
            message: "cannot partition zero examples".into(),
        });
    }
    if num_clients == 0 {
        return Err(DataError::InvalidSpec {
            message: "cannot partition across zero clients".into(),
        });
    }
    if num_classes == 0 {
        return Err(DataError::InvalidSpec {
            message: "number of classes must be positive".into(),
        });
    }
    // Group example indices by label.
    let mut by_class: Vec<Vec<Example>> = (0..num_classes).map(|_| Vec::new()).collect();
    for e in examples {
        let label = e.label.min(num_classes - 1);
        by_class[label].push(e);
    }
    let mut buckets: Vec<Vec<Example>> = (0..num_clients).map(|_| Vec::new()).collect();
    for mut class_examples in by_class {
        if class_examples.is_empty() {
            continue;
        }
        class_examples.shuffle(rng);
        let proportions = sample_dirichlet(rng, num_clients, alpha)?;
        // Convert proportions into integer counts that sum to the class size.
        let n = class_examples.len();
        let mut counts: Vec<usize> = proportions
            .iter()
            .map(|p| (p * n as f64).floor() as usize)
            .collect();
        let mut assigned: usize = counts.iter().sum();
        // Distribute the remainder to the clients with the largest fractional parts.
        let mut fracs: Vec<(f64, usize)> = proportions
            .iter()
            .enumerate()
            .map(|(i, p)| (p * n as f64 - counts[i] as f64, i))
            .collect();
        fracs.sort_by(|a, b| b.0.partial_cmp(&a.0).expect("finite"));
        let mut fi = 0;
        while assigned < n {
            counts[fracs[fi % fracs.len()].1] += 1;
            assigned += 1;
            fi += 1;
        }
        let mut iter = class_examples.into_iter();
        for (client, &count) in counts.iter().enumerate() {
            for _ in 0..count {
                if let Some(e) = iter.next() {
                    buckets[client].push(e);
                }
            }
        }
    }
    rebalance_empty_clients(&mut buckets);
    Ok(buckets
        .into_iter()
        .enumerate()
        .map(|(id, examples)| ClientData::new(id, examples))
        .collect())
}

/// Moves single examples from the largest buckets into empty ones so that no
/// client ends up with zero examples.
fn rebalance_empty_clients(buckets: &mut [Vec<Example>]) {
    loop {
        let Some(empty_idx) = buckets.iter().position(|b| b.is_empty()) else {
            return;
        };
        let largest_idx = buckets
            .iter()
            .enumerate()
            .max_by_key(|(_, b)| b.len())
            .map(|(i, _)| i)
            .expect("non-empty slice");
        if buckets[largest_idx].len() <= 1 {
            // Not enough examples to give every client one; leave remaining empty.
            return;
        }
        let moved = buckets[largest_idx]
            .pop()
            .expect("largest bucket is non-empty");
        buckets[empty_idx].push(moved);
    }
}

/// Partitions `examples` across `num_clients` clients uniformly at random
/// (an iid split), preserving only the target per-client sizes if provided.
///
/// # Errors
///
/// Returns [`DataError::InvalidSpec`] if `examples` is empty or
/// `num_clients == 0`.
pub fn iid_partition(
    rng: &mut impl Rng,
    mut examples: Vec<Example>,
    num_clients: usize,
) -> Result<Vec<ClientData>> {
    if examples.is_empty() {
        return Err(DataError::InvalidSpec {
            message: "cannot partition zero examples".into(),
        });
    }
    if num_clients == 0 {
        return Err(DataError::InvalidSpec {
            message: "cannot partition across zero clients".into(),
        });
    }
    examples.shuffle(rng);
    let mut buckets: Vec<Vec<Example>> = (0..num_clients).map(|_| Vec::new()).collect();
    for (i, e) in examples.into_iter().enumerate() {
        buckets[i % num_clients].push(e);
    }
    rebalance_empty_clients(&mut buckets);
    Ok(buckets
        .into_iter()
        .enumerate()
        .map(|(id, ex)| ClientData::new(id, ex))
        .collect())
}

/// Repartitions a client pool towards iid-ness by the fraction `p ∈ [0, 1]`,
/// reproducing the protocol of §3.2:
///
/// > "we pool all of the eval data and let each eval client resample the data
/// > in an iid manner [...] We extend this method by resampling only a
/// > fraction `p` of the validation data."
///
/// Each client keeps `(1 - p)` of its own examples (chosen at random) and
/// replaces the remaining fraction with draws from the pooled data (with
/// replacement, i.e. a shared global distribution), so `p = 0` leaves the
/// natural non-iid partition untouched and `p = 1` yields a fully iid pool.
/// Per-client example counts are preserved exactly.
///
/// # Errors
///
/// Returns [`DataError::InvalidSpec`] if `p` is outside `[0, 1]` or the pool
/// has no examples.
pub fn repartition_iid_fraction(
    rng: &mut impl Rng,
    clients: &[ClientData],
    p: f64,
) -> Result<Vec<ClientData>> {
    if !(0.0..=1.0).contains(&p) || !p.is_finite() {
        return Err(DataError::InvalidSpec {
            message: format!("iid fraction p must be in [0, 1], got {p}"),
        });
    }
    let pooled: Vec<&Example> = clients.iter().flat_map(|c| c.examples().iter()).collect();
    if pooled.is_empty() {
        return Err(DataError::InvalidSpec {
            message: "cannot repartition an empty client pool".into(),
        });
    }
    let mut out = Vec::with_capacity(clients.len());
    for client in clients {
        let n = client.num_examples();
        let replace = ((n as f64) * p).round() as usize;
        let keep = n - replace;
        // Randomly choose which local examples survive.
        let mut local: Vec<Example> = client.examples().to_vec();
        local.shuffle(rng);
        local.truncate(keep);
        for _ in 0..replace {
            let idx = rng.gen_range(0..pooled.len());
            local.push(pooled[idx].clone());
        }
        out.push(ClientData::new(client.id(), local));
    }
    Ok(out)
}

/// Draws `num_clients` long-tailed per-client example counts with the given
/// mean, minimum, and maximum, mimicking the client-size distributions of the
/// text datasets in Table 2 (min 1, max five orders of magnitude larger).
///
/// Counts are drawn from a log-normal distribution and clamped to
/// `[min, max]`; the result is then rescaled (by repeated proportional
/// adjustment) so the empirical mean is close to `mean`.
///
/// # Errors
///
/// Returns [`DataError::InvalidSpec`] if the constraints are unsatisfiable
/// (`min > max`, zero clients, non-positive mean, or mean outside `[min, max]`).
pub fn long_tailed_client_sizes(
    rng: &mut impl Rng,
    num_clients: usize,
    mean: f64,
    min: usize,
    max: usize,
    sigma: f64,
) -> Result<Vec<usize>> {
    if num_clients == 0 {
        return Err(DataError::InvalidSpec {
            message: "need at least one client".into(),
        });
    }
    if min > max {
        return Err(DataError::InvalidSpec {
            message: format!("min {min} exceeds max {max}"),
        });
    }
    if mean <= 0.0 || mean < min as f64 || mean > max as f64 {
        return Err(DataError::InvalidSpec {
            message: format!("mean {mean} must lie within [{min}, {max}]"),
        });
    }
    if sigma <= 0.0 || !sigma.is_finite() {
        return Err(DataError::InvalidSpec {
            message: format!("sigma must be positive, got {sigma}"),
        });
    }
    // Log-normal with median exp(mu); choose mu so the mean is roughly right,
    // then correct the empirical mean by scaling.
    let mu = mean.ln() - sigma * sigma / 2.0;
    let dist = LogNormal::new(mu, sigma).map_err(|e| DataError::InvalidSpec {
        message: format!("invalid log-normal parameters: {e}"),
    })?;
    let mut sizes: Vec<f64> = (0..num_clients).map(|_| dist.sample(rng)).collect();
    // Two rounds of mean correction keep the empirical mean near the target
    // while respecting the clamp bounds.
    for _ in 0..2 {
        let emp_mean = sizes.iter().sum::<f64>() / num_clients as f64;
        if emp_mean > 0.0 {
            let scale = mean / emp_mean;
            for s in &mut sizes {
                *s = (*s * scale).clamp(min as f64, max as f64);
            }
        }
    }
    Ok(sizes
        .into_iter()
        .map(|s| s.round().max(min as f64) as usize)
        .collect())
}

/// Computes a simple scalar measure of label heterogeneity across clients:
/// the mean total-variation distance between each client's label distribution
/// and the global label distribution. 0 means perfectly iid; values near 1
/// mean clients see nearly disjoint label sets.
pub fn label_heterogeneity(clients: &[ClientData], num_classes: usize) -> f64 {
    if clients.is_empty() || num_classes == 0 {
        return 0.0;
    }
    let mut global = vec![0.0f64; num_classes];
    let mut total = 0.0;
    for c in clients {
        for (i, count) in c.label_histogram(num_classes).into_iter().enumerate() {
            global[i] += count as f64;
            total += count as f64;
        }
    }
    if total == 0.0 {
        return 0.0;
    }
    for g in &mut global {
        *g /= total;
    }
    let mut tv_sum = 0.0;
    let mut counted = 0usize;
    for c in clients {
        let hist = c.label_histogram(num_classes);
        let n: usize = hist.iter().sum();
        if n == 0 {
            continue;
        }
        let tv: f64 = hist
            .iter()
            .enumerate()
            .map(|(i, &h)| (h as f64 / n as f64 - global[i]).abs())
            .sum::<f64>()
            / 2.0;
        tv_sum += tv;
        counted += 1;
    }
    if counted == 0 {
        0.0
    } else {
        tv_sum / counted as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fedmath::rng::rng_for;

    fn labelled_examples(per_class: usize, num_classes: usize) -> Vec<Example> {
        let mut out = Vec::new();
        for class in 0..num_classes {
            for _ in 0..per_class {
                out.push(Example::dense(vec![class as f64], class));
            }
        }
        out
    }

    #[test]
    fn dirichlet_probabilities_sum_to_one() {
        let mut rng = rng_for(0, 0);
        for &alpha in &[0.05, 0.1, 1.0, 10.0] {
            let p = sample_dirichlet(&mut rng, 8, alpha).unwrap();
            assert_eq!(p.len(), 8);
            assert!((p.iter().sum::<f64>() - 1.0).abs() < 1e-9);
            assert!(p.iter().all(|&x| x >= 0.0));
        }
    }

    #[test]
    fn dirichlet_validation() {
        let mut rng = rng_for(0, 1);
        assert!(sample_dirichlet(&mut rng, 0, 1.0).is_err());
        assert!(sample_dirichlet(&mut rng, 3, 0.0).is_err());
        assert!(sample_dirichlet(&mut rng, 3, -1.0).is_err());
    }

    #[test]
    fn dirichlet_partition_preserves_examples() {
        let mut rng = rng_for(1, 0);
        let examples = labelled_examples(50, 10);
        let clients = dirichlet_label_partition(&mut rng, examples.clone(), 20, 10, 0.1).unwrap();
        assert_eq!(clients.len(), 20);
        let total: usize = clients.iter().map(|c| c.num_examples()).sum();
        assert_eq!(total, examples.len());
        // With this many examples per client-slot, rebalancing guarantees
        // non-empty clients.
        assert!(clients.iter().all(|c| !c.is_empty()));
        // Ids are assigned sequentially.
        for (i, c) in clients.iter().enumerate() {
            assert_eq!(c.id(), i);
        }
    }

    #[test]
    fn small_alpha_is_more_heterogeneous_than_large_alpha() {
        let mut rng = rng_for(2, 0);
        let examples = labelled_examples(100, 10);
        let skewed = dirichlet_label_partition(&mut rng, examples.clone(), 20, 10, 0.05).unwrap();
        let uniform = dirichlet_label_partition(&mut rng, examples, 20, 10, 100.0).unwrap();
        let h_skewed = label_heterogeneity(&skewed, 10);
        let h_uniform = label_heterogeneity(&uniform, 10);
        assert!(
            h_skewed > h_uniform + 0.1,
            "expected skewed ({h_skewed}) >> uniform ({h_uniform})"
        );
    }

    #[test]
    fn dirichlet_partition_validation() {
        let mut rng = rng_for(2, 1);
        assert!(dirichlet_label_partition(&mut rng, vec![], 5, 2, 1.0).is_err());
        let ex = labelled_examples(2, 2);
        assert!(dirichlet_label_partition(&mut rng, ex.clone(), 0, 2, 1.0).is_err());
        assert!(dirichlet_label_partition(&mut rng, ex.clone(), 5, 0, 1.0).is_err());
        assert!(dirichlet_label_partition(&mut rng, ex, 5, 2, 0.0).is_err());
    }

    #[test]
    fn iid_partition_balances_sizes() {
        let mut rng = rng_for(3, 0);
        let examples = labelled_examples(30, 4);
        let clients = iid_partition(&mut rng, examples, 12).unwrap();
        assert_eq!(clients.len(), 12);
        let sizes: Vec<usize> = clients.iter().map(|c| c.num_examples()).collect();
        assert_eq!(sizes.iter().sum::<usize>(), 120);
        assert!(sizes.iter().all(|&s| s == 10));
    }

    #[test]
    fn iid_partition_validation() {
        let mut rng = rng_for(3, 1);
        assert!(iid_partition(&mut rng, vec![], 2).is_err());
        assert!(iid_partition(&mut rng, labelled_examples(1, 2), 0).is_err());
    }

    #[test]
    fn repartition_p_zero_is_identity_up_to_order() {
        let mut rng = rng_for(4, 0);
        let examples = labelled_examples(20, 4);
        let clients = dirichlet_label_partition(&mut rng, examples, 8, 4, 0.1).unwrap();
        let repartitioned = repartition_iid_fraction(&mut rng, &clients, 0.0).unwrap();
        for (before, after) in clients.iter().zip(repartitioned.iter()) {
            assert_eq!(before.num_examples(), after.num_examples());
            // p = 0 keeps exactly the client's own examples (order may differ).
            let mut b = before.label_histogram(4);
            let mut a = after.label_histogram(4);
            b.sort_unstable();
            a.sort_unstable();
            assert_eq!(a, b);
        }
    }

    #[test]
    fn repartition_p_one_reduces_heterogeneity() {
        let mut rng = rng_for(4, 1);
        let examples = labelled_examples(100, 10);
        let clients = dirichlet_label_partition(&mut rng, examples, 20, 10, 0.05).unwrap();
        let h_before = label_heterogeneity(&clients, 10);
        let iid = repartition_iid_fraction(&mut rng, &clients, 1.0).unwrap();
        let h_after = label_heterogeneity(&iid, 10);
        assert!(
            h_after < h_before * 0.5,
            "expected heterogeneity to drop substantially: before={h_before}, after={h_after}"
        );
        // Sizes preserved.
        for (b, a) in clients.iter().zip(iid.iter()) {
            assert_eq!(b.num_examples(), a.num_examples());
        }
    }

    #[test]
    fn repartition_validation() {
        let mut rng = rng_for(4, 2);
        let clients = vec![ClientData::new(0, labelled_examples(2, 2))];
        assert!(repartition_iid_fraction(&mut rng, &clients, -0.1).is_err());
        assert!(repartition_iid_fraction(&mut rng, &clients, 1.1).is_err());
        let empty = vec![ClientData::new(0, vec![])];
        assert!(repartition_iid_fraction(&mut rng, &empty, 0.5).is_err());
    }

    #[test]
    fn long_tailed_sizes_respect_bounds() {
        let mut rng = rng_for(5, 0);
        let sizes = long_tailed_client_sizes(&mut rng, 500, 40.0, 1, 5000, 1.5).unwrap();
        assert_eq!(sizes.len(), 500);
        assert!(sizes.iter().all(|&s| (1..=5000).contains(&s)));
        let mean = sizes.iter().sum::<usize>() as f64 / 500.0;
        assert!(
            (mean - 40.0).abs() < 25.0,
            "mean {mean} too far from target 40"
        );
        // Long tail: max should be several times the mean.
        let max = *sizes.iter().max().unwrap();
        assert!(
            max as f64 > 2.0 * mean,
            "max {max} not long-tailed vs mean {mean}"
        );
    }

    #[test]
    fn long_tailed_sizes_validation() {
        let mut rng = rng_for(5, 1);
        assert!(long_tailed_client_sizes(&mut rng, 0, 10.0, 1, 100, 1.0).is_err());
        assert!(long_tailed_client_sizes(&mut rng, 5, 10.0, 100, 1, 1.0).is_err());
        assert!(long_tailed_client_sizes(&mut rng, 5, 0.0, 1, 100, 1.0).is_err());
        assert!(long_tailed_client_sizes(&mut rng, 5, 1000.0, 1, 100, 1.0).is_err());
        assert!(long_tailed_client_sizes(&mut rng, 5, 10.0, 1, 100, 0.0).is_err());
    }

    #[test]
    fn heterogeneity_of_identical_clients_is_zero() {
        let clients = vec![
            ClientData::new(0, labelled_examples(5, 4)),
            ClientData::new(1, labelled_examples(5, 4)),
        ];
        assert!(label_heterogeneity(&clients, 4) < 1e-12);
        assert_eq!(label_heterogeneity(&[], 4), 0.0);
    }

    #[test]
    fn heterogeneity_of_disjoint_clients_is_high() {
        let c0 = ClientData::new(0, vec![Example::dense(vec![0.0], 0); 10]);
        let c1 = ClientData::new(1, vec![Example::dense(vec![1.0], 1); 10]);
        let h = label_heterogeneity(&[c0, c1], 2);
        assert!(h > 0.45, "expected near-maximal heterogeneity, got {h}");
    }
}

#[cfg(test)]
mod proptests {
    use super::*;
    use fedmath::rng::rng_for;
    use proptest::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        #[test]
        fn prop_dirichlet_partition_preserves_count(
            seed in any::<u64>(),
            per_class in 5usize..30,
            num_classes in 2usize..8,
            num_clients in 1usize..20,
            alpha in 0.05f64..10.0,
        ) {
            let mut rng = rng_for(seed, 0);
            let mut examples = Vec::new();
            for class in 0..num_classes {
                for _ in 0..per_class {
                    examples.push(Example::dense(vec![class as f64], class));
                }
            }
            let n = examples.len();
            let clients = dirichlet_label_partition(&mut rng, examples, num_clients, num_classes, alpha).unwrap();
            prop_assert_eq!(clients.len(), num_clients);
            let total: usize = clients.iter().map(|c| c.num_examples()).sum();
            prop_assert_eq!(total, n);
        }

        #[test]
        fn prop_repartition_preserves_sizes(
            seed in any::<u64>(),
            p in 0.0f64..1.0,
        ) {
            let mut rng = rng_for(seed, 1);
            let mut examples = Vec::new();
            for class in 0..5usize {
                for _ in 0..40 {
                    examples.push(Example::dense(vec![class as f64], class));
                }
            }
            let clients = dirichlet_label_partition(&mut rng, examples, 10, 5, 0.2).unwrap();
            let re = repartition_iid_fraction(&mut rng, &clients, p).unwrap();
            prop_assert_eq!(re.len(), clients.len());
            for (b, a) in clients.iter().zip(re.iter()) {
                prop_assert_eq!(b.num_examples(), a.num_examples());
                prop_assert_eq!(b.id(), a.id());
            }
        }

        #[test]
        fn prop_long_tailed_sizes_within_bounds(
            seed in any::<u64>(),
            num_clients in 1usize..100,
        ) {
            let mut rng = rng_for(seed, 2);
            let sizes = long_tailed_client_sizes(&mut rng, num_clients, 30.0, 2, 400, 1.2).unwrap();
            prop_assert_eq!(sizes.len(), num_clients);
            prop_assert!(sizes.iter().all(|&s| (2..=400).contains(&s)));
        }
    }
}
