//! Chrome `trace_event` JSON exporters.
//!
//! Both exporters emit the `{"traceEvents":[…]}` object format consumed by
//! Perfetto and `chrome://tracing`: metadata (`ph:"M"`) events name the
//! process/thread tracks, and complete (`ph:"X"`) events draw one slice per
//! span with microsecond `ts`/`dur`.
//!
//! [`virtual_timeline_json`] renders the **sim domain**: one process per
//! campaign track, one thread lane per virtual worker, one slice per trial
//! evaluation. Timestamps derive from the executor's bit-deterministic
//! virtual clock and floats print through `serde_json`'s shortest
//! round-trip formatter, so identical timelines (e.g. a recorded campaign
//! and its ledger replay) export **byte-identical** JSON.
//!
//! [`WallProfile`] renders the **wall domain**: real elapsed time of named
//! phases, for performance work only.

use crate::span::TrialSpan;
use std::sync::Mutex;
use std::time::Instant;

fn push_u64(out: &mut String, v: u64) {
    out.push_str(&v.to_string());
}

fn push_micros(out: &mut String, seconds: f64) {
    // Microseconds as f64: deterministic arithmetic on deterministic inputs,
    // printed in shortest round-trip form.
    serde_json::write_f64(out, seconds * 1e6).expect("trace times are finite");
}

fn push_metadata(out: &mut String, what: &str, pid: usize, tid: u64, name: &str) {
    out.push_str("{\"ph\":\"M\",\"name\":\"");
    out.push_str(what);
    out.push_str("\",\"pid\":");
    push_u64(out, pid as u64);
    out.push_str(",\"tid\":");
    push_u64(out, tid);
    out.push_str(",\"args\":{\"name\":");
    serde_json::write_escaped(out, name);
    out.push_str("}}");
}

/// One named campaign track of the virtual timeline (rendered as one
/// process in the trace viewer).
#[derive(Debug, Clone)]
pub struct TimelineTrack {
    /// Track name shown on the process lane (e.g. `"ASHA-ASYNC @ 8 workers"`).
    pub name: String,
    /// The campaign's trial spans in dispatch order.
    pub spans: Vec<TrialSpan>,
}

impl TimelineTrack {
    /// Builds a track.
    pub fn new(name: impl Into<String>, spans: Vec<TrialSpan>) -> Self {
        TimelineTrack {
            name: name.into(),
            spans,
        }
    }
}

/// Renders virtual-time executor timelines as Chrome `trace_event` JSON:
/// per track one process, per virtual worker one thread lane, per
/// [`TrialSpan`] one complete slice carrying `trial`/`resource`/`rep` args.
///
/// The output is a pure function of the span bits, so bit-identical
/// timelines export byte-identical JSON.
pub fn virtual_timeline_json(tracks: &[TimelineTrack]) -> String {
    let total: usize = tracks.iter().map(|t| t.spans.len()).sum();
    let mut out = String::with_capacity(256 + 160 * total);
    out.push_str("{\"displayTimeUnit\":\"ms\",\"traceEvents\":[");
    let mut first = true;
    let mut push_sep = |out: &mut String| {
        if first {
            first = false;
        } else {
            out.push(',');
        }
    };
    for (pid, track) in tracks.iter().enumerate() {
        push_sep(&mut out);
        push_metadata(&mut out, "process_name", pid, 0, &track.name);
        let mut workers: Vec<u64> = track.spans.iter().map(|s| s.worker).collect();
        workers.sort_unstable();
        workers.dedup();
        for &worker in &workers {
            push_sep(&mut out);
            push_metadata(
                &mut out,
                "thread_name",
                pid,
                worker,
                &format!("virtual worker {worker}"),
            );
        }
        for span in &track.spans {
            push_sep(&mut out);
            out.push_str("{\"name\":\"trial ");
            push_u64(&mut out, span.trial);
            out.push_str(" r");
            push_u64(&mut out, span.resource);
            out.push_str("\",\"cat\":\"sim\",\"ph\":\"X\",\"ts\":");
            push_micros(&mut out, span.start);
            out.push_str(",\"dur\":");
            push_micros(&mut out, span.duration());
            out.push_str(",\"pid\":");
            push_u64(&mut out, pid as u64);
            out.push_str(",\"tid\":");
            push_u64(&mut out, span.worker);
            out.push_str(",\"args\":{\"trial\":");
            push_u64(&mut out, span.trial);
            out.push_str(",\"resource\":");
            push_u64(&mut out, span.resource);
            out.push_str(",\"rep\":");
            push_u64(&mut out, span.rep);
            out.push_str("}}");
        }
    }
    out.push_str("]}");
    out
}

#[derive(Debug, Clone)]
struct WallSlice {
    name: String,
    start_seconds: f64,
    duration_seconds: f64,
}

/// A wall-clock phase profile: named real-time slices relative to the
/// profile's creation, exported as a single-lane Chrome trace.
///
/// Wall times are performance accounting only — nothing semantic may read
/// them, and two runs of the same campaign will not produce identical wall
/// profiles.
#[derive(Debug)]
pub struct WallProfile {
    origin: Instant,
    slices: Mutex<Vec<WallSlice>>,
}

impl WallProfile {
    /// Starts an empty profile; slice timestamps are relative to now.
    pub fn new() -> Self {
        WallProfile {
            origin: Instant::now(),
            slices: Mutex::new(Vec::new()),
        }
    }

    /// Runs `work`, recording its wall-clock extent as a named slice.
    pub fn time<T>(&self, name: &str, work: impl FnOnce() -> T) -> T {
        let start = self.now_seconds();
        let out = work();
        self.record_since(name, start);
        out
    }

    /// Seconds elapsed since the profile's origin — the timestamp domain of
    /// every slice. Pair with [`record_since`](Self::record_since) to time a
    /// region that cannot be expressed as a closure (for example a phase
    /// spanning several `&mut self` calls on another object).
    pub fn now_seconds(&self) -> f64 {
        self.origin.elapsed().as_secs_f64()
    }

    /// Records a named slice from `start_seconds` (a value previously read
    /// from [`now_seconds`](Self::now_seconds)) to now.
    pub fn record_since(&self, name: &str, start_seconds: f64) {
        let end = self.now_seconds();
        self.slices
            .lock()
            .expect("profile lock poisoned")
            .push(WallSlice {
                name: name.to_string(),
                start_seconds,
                duration_seconds: end - start_seconds,
            });
    }

    /// Number of recorded slices.
    pub fn len(&self) -> usize {
        self.slices.lock().expect("profile lock poisoned").len()
    }

    /// Whether no slice has been recorded.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Chrome `trace_event` JSON of the recorded slices (`cat:"wall"`, one
    /// process, one lane).
    pub fn to_chrome_json(&self) -> String {
        let slices = self.slices.lock().expect("profile lock poisoned");
        let mut out = String::with_capacity(256 + 128 * slices.len());
        out.push_str("{\"displayTimeUnit\":\"ms\",\"traceEvents\":[");
        push_metadata(&mut out, "process_name", 0, 0, "wall clock");
        for slice in slices.iter() {
            out.push_str(",{\"name\":");
            serde_json::write_escaped(&mut out, &slice.name);
            out.push_str(",\"cat\":\"wall\",\"ph\":\"X\",\"ts\":");
            push_micros(&mut out, slice.start_seconds);
            out.push_str(",\"dur\":");
            push_micros(&mut out, slice.duration_seconds);
            out.push_str(",\"pid\":0,\"tid\":0,\"args\":{}}");
        }
        out.push_str("]}");
        out
    }
}

impl Default for WallProfile {
    fn default() -> Self {
        WallProfile::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn spans() -> Vec<TrialSpan> {
        vec![
            TrialSpan {
                trial: 0,
                resource: 1,
                rep: 0,
                worker: 0,
                start: 0.0,
                end: 1.5,
            },
            TrialSpan {
                trial: 1,
                resource: 1,
                rep: 0,
                worker: 1,
                start: 0.0,
                end: 0.75,
            },
            TrialSpan {
                trial: 1,
                resource: 3,
                rep: 0,
                worker: 1,
                start: 0.75,
                end: 2.25,
            },
        ]
    }

    #[test]
    fn virtual_timeline_is_valid_chrome_json() {
        let json = virtual_timeline_json(&[TimelineTrack::new("async @ 2", spans())]);
        let value = serde_json::parse_str(&json).unwrap();
        let serde::Value::Map(fields) = &value else {
            panic!("trace export is an object");
        };
        let events = fields
            .iter()
            .find(|(k, _)| k == "traceEvents")
            .map(|(_, v)| v)
            .unwrap();
        let serde::Value::Seq(events) = events else {
            panic!("traceEvents is an array");
        };
        // 1 process_name + 2 thread_name metadata + 3 slices.
        assert_eq!(events.len(), 6);
        assert!(json.contains("\"ph\":\"M\""));
        assert!(json.contains("virtual worker 1"));
        assert!(json.contains("\"name\":\"trial 1 r3\""));
        // 0.75 s → 750000 µs on the slice that starts mid-timeline.
        assert!(json.contains("\"ts\":750000"));
    }

    #[test]
    fn byte_identity_follows_span_bit_identity() {
        let a = virtual_timeline_json(&[TimelineTrack::new("t", spans())]);
        let b = virtual_timeline_json(&[TimelineTrack::new("t", spans())]);
        assert_eq!(a, b);
        let mut changed = spans();
        changed[2].end = f64::from_bits(changed[2].end.to_bits() + 1);
        let c = virtual_timeline_json(&[TimelineTrack::new("t", changed)]);
        assert_ne!(a, c, "a single flipped bit must change the export");
    }

    #[test]
    fn empty_tracks_export_cleanly() {
        let json = virtual_timeline_json(&[]);
        assert_eq!(json, "{\"displayTimeUnit\":\"ms\",\"traceEvents\":[]}");
        let json = virtual_timeline_json(&[TimelineTrack::new("empty", Vec::new())]);
        assert!(serde_json::parse_str(&json).is_ok());
    }

    #[test]
    fn wall_profile_records_and_exports() {
        let profile = WallProfile::new();
        assert!(profile.is_empty());
        let answer = profile.time("phase one", || 42);
        assert_eq!(answer, 42);
        profile.time("phase \"two\"", || ());
        assert_eq!(profile.len(), 2);
        let json = profile.to_chrome_json();
        assert!(serde_json::parse_str(&json).is_ok());
        assert!(json.contains("\"cat\":\"wall\""));
        assert!(json.contains("phase one"));
        assert!(json.contains("\\\"two\\\""));
    }
}
