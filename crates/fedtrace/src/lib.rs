//! Deterministic observability for the tuning stack: a metrics registry, a
//! bounded event journal, and Chrome `trace_event` exporters over the
//! virtual-time executor timeline.
//!
//! # The contract: accounting, never semantics
//!
//! Every handle in this crate is **write-only from the instrumented code's
//! point of view**: nothing in the tuning stack ever branches on a counter,
//! gauge, histogram, or journal state. Turning tracing on or off, swapping
//! exporters, or changing the real thread count must not move a single
//! result bit — the same contract `fedpop`'s `ClientCache` established for
//! caching, enforced end to end in `tests/determinism.rs`.
//!
//! # Two clock domains
//!
//! - **`sim`** — virtual time from the event-driven executor's
//!   `VirtualClock`. Sim-domain data (the [`TrialSpan`] timeline, sim-stamped
//!   journal events) is bit-deterministic and replay-identical: a recorded
//!   campaign and its ledger replay export byte-identical Chrome traces.
//! - **`wall`** — real time from [`std::time::Instant`]. Wall-domain data
//!   (sync-latency histograms, [`WallProfile`] slices) is for performance
//!   work only and is **never observed by any semantic path**.
//!
//! # Hot-path cost
//!
//! Counter increments are a thread-local shard lookup plus one relaxed
//! atomic add — no locks, no allocation. Handles are registered once (a
//! mutex-guarded name lookup) and then cloned freely; clones share storage.
//!
//! # Export formats
//!
//! - [`MetricsSnapshot`] — typed, serde-round-trippable JSON of every
//!   registered metric, sorted by name (deterministic output).
//! - [`Journal::to_json`] — the bounded ring-buffer event journal.
//! - [`chrome::virtual_timeline_json`] / [`WallProfile::to_chrome_json`] —
//!   Chrome `trace_event` JSON (the `traceEvents` array format), loadable in
//!   Perfetto or `chrome://tracing`.

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod chrome;
pub mod journal;
pub mod metrics;
pub mod span;

pub use chrome::{virtual_timeline_json, TimelineTrack, WallProfile};
pub use journal::{EventKind, Journal, SpanEvent};
pub use metrics::{
    Counter, CounterSnapshot, Gauge, GaugeSnapshot, Histogram, HistogramBucket, HistogramSnapshot,
    MetricsSnapshot, Registry,
};
pub use span::{ClockDomain, TrialSpan};

use std::sync::OnceLock;

/// Default capacity of a [`Trace`]'s event journal.
pub const DEFAULT_JOURNAL_CAPACITY: usize = 1 << 16;

/// One observability scope: a metrics [`Registry`] plus a bounded event
/// [`Journal`]. Instrumented drivers take an `Option<&Trace>`; `None` means
/// fully untraced (and must be bit-identical to `Some` — the determinism
/// contract).
#[derive(Debug)]
pub struct Trace {
    registry: Registry,
    journal: Journal,
    wall: WallProfile,
}

impl Trace {
    /// A fresh trace with an empty registry and the default journal bound.
    pub fn new() -> Self {
        Trace::with_journal_capacity(DEFAULT_JOURNAL_CAPACITY)
    }

    /// A fresh trace whose journal retains at most `capacity` events.
    pub fn with_journal_capacity(capacity: usize) -> Self {
        Trace {
            registry: Registry::new(),
            journal: Journal::new(capacity),
            wall: WallProfile::new(),
        }
    }

    /// The metrics registry of this scope.
    pub fn registry(&self) -> &Registry {
        &self.registry
    }

    /// The event journal of this scope.
    pub fn journal(&self) -> &Journal {
        &self.journal
    }

    /// The wall-clock phase profile of this scope: real-time slices (driver
    /// time in suggest vs evaluate vs deliver, and similar) recorded by
    /// instrumented code. Wall-domain accounting only — nothing semantic may
    /// ever read it back.
    pub fn wall_profile(&self) -> &WallProfile {
        &self.wall
    }

    /// Snapshot of every registered metric, sorted by name.
    pub fn snapshot(&self) -> MetricsSnapshot {
        self.registry.snapshot()
    }
}

impl Default for Trace {
    fn default() -> Self {
        Trace::new()
    }
}

/// The process-global trace: the accounting spine shared by subsystems that
/// have no campaign-scoped trace to hand (kernel FLOP counters, ledger sync
/// accounting, cache statistics, engine progress).
pub fn global() -> &'static Trace {
    static GLOBAL: OnceLock<Trace> = OnceLock::new();
    GLOBAL.get_or_init(Trace::new)
}

/// Whether `FEDTUNE_TRACE=1` was set when first queried (cached for the
/// process lifetime).
pub fn env_enabled() -> bool {
    static ENABLED: OnceLock<bool> = OnceLock::new();
    *ENABLED.get_or_init(|| std::env::var("FEDTUNE_TRACE").as_deref() == Ok("1"))
}

/// The [`global`] trace when `FEDTUNE_TRACE=1`, else `None`. Drivers use
/// this as their default trace argument so one environment variable turns
/// tracing on across a whole example or bench run — without moving a bit.
pub fn global_if_enabled() -> Option<&'static Trace> {
    env_enabled().then(global)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn trace_scopes_registry_and_journal() {
        let trace = Trace::new();
        trace.registry().counter("a").add(2);
        trace.registry().counter("a").add(3);
        trace
            .journal()
            .record_instant(ClockDomain::Sim, "evt", 1.5, 7, 9);
        let snap = trace.snapshot();
        assert_eq!(snap.counters.len(), 1);
        assert_eq!(snap.counters[0].name, "a");
        assert_eq!(snap.counters[0].value, 5);
        assert_eq!(trace.journal().len(), 1);
        // A second trace is fully independent.
        let other = Trace::default();
        assert!(other.snapshot().counters.is_empty());
        assert_eq!(other.journal().len(), 0);
    }

    #[test]
    fn global_trace_is_a_singleton() {
        let a = global();
        let b = global();
        assert!(std::ptr::eq(a, b));
        a.registry().counter("lib_test.global").add(1);
        assert!(b
            .snapshot()
            .counters
            .iter()
            .any(|c| c.name == "lib_test.global"));
    }

    #[test]
    fn env_gate_is_consistent() {
        // Whatever the environment says, the two accessors agree.
        assert_eq!(global_if_enabled().is_some(), env_enabled());
    }
}
