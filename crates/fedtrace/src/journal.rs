//! A bounded ring-buffer event journal.
//!
//! The journal retains the most recent `capacity` events and counts what it
//! dropped — memory stays bounded no matter how long a campaign runs. Event
//! names are `&'static str` so recording never allocates; the only cost on
//! the hot path is a short mutex-guarded `VecDeque` push.

use crate::span::ClockDomain;
use std::collections::VecDeque;
use std::sync::Mutex;

/// What a journal entry marks.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum EventKind {
    /// A span opened.
    Begin,
    /// A span closed.
    End,
    /// A point event.
    Instant,
}

impl EventKind {
    fn label(self) -> &'static str {
        match self {
            EventKind::Begin => "begin",
            EventKind::End => "end",
            EventKind::Instant => "instant",
        }
    }
}

/// One journal entry: a named event at `time` in its clock domain, with two
/// free `u64` arguments (trial id and resource by convention).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SpanEvent {
    /// The clock that stamped `time`.
    pub domain: ClockDomain,
    /// What the entry marks.
    pub kind: EventKind,
    /// Static event name (no allocation on record).
    pub name: &'static str,
    /// Timestamp in the domain's seconds.
    pub time: f64,
    /// First argument (trial id by convention).
    pub a: u64,
    /// Second argument (resource by convention).
    pub b: u64,
}

#[derive(Debug, Default)]
struct JournalState {
    events: VecDeque<SpanEvent>,
    dropped: u64,
}

/// A bounded ring buffer of [`SpanEvent`]s.
#[derive(Debug)]
pub struct Journal {
    capacity: usize,
    state: Mutex<JournalState>,
}

impl Journal {
    /// A journal retaining at most `capacity` events (0 records nothing and
    /// counts everything as dropped).
    pub fn new(capacity: usize) -> Self {
        Journal {
            capacity,
            state: Mutex::new(JournalState::default()),
        }
    }

    /// The retention bound.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Records one event, evicting the oldest entry when full.
    pub fn record(&self, event: SpanEvent) {
        let mut state = self.state.lock().expect("journal lock poisoned");
        if self.capacity == 0 {
            state.dropped += 1;
            return;
        }
        if state.events.len() >= self.capacity {
            state.events.pop_front();
            state.dropped += 1;
        }
        state.events.push_back(event);
    }

    /// Records an [`EventKind::Instant`] event.
    pub fn record_instant(
        &self,
        domain: ClockDomain,
        name: &'static str,
        time: f64,
        a: u64,
        b: u64,
    ) {
        self.record(SpanEvent {
            domain,
            kind: EventKind::Instant,
            name,
            time,
            a,
            b,
        });
    }

    /// Records an [`EventKind::Begin`] / [`EventKind::End`] pair boundary.
    pub fn record_boundary(
        &self,
        domain: ClockDomain,
        kind: EventKind,
        name: &'static str,
        time: f64,
    ) {
        self.record(SpanEvent {
            domain,
            kind,
            name,
            time,
            a: 0,
            b: 0,
        });
    }

    /// Number of retained events.
    pub fn len(&self) -> usize {
        self.state
            .lock()
            .expect("journal lock poisoned")
            .events
            .len()
    }

    /// Whether the journal holds no events.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Number of events dropped to respect the bound.
    pub fn dropped(&self) -> u64 {
        self.state.lock().expect("journal lock poisoned").dropped
    }

    /// The retained events, oldest first.
    pub fn events(&self) -> Vec<SpanEvent> {
        self.state
            .lock()
            .expect("journal lock poisoned")
            .events
            .iter()
            .copied()
            .collect()
    }

    /// Deterministic JSON export:
    /// `{"capacity":…,"dropped":…,"events":[{…}]}` with events oldest first.
    pub fn to_json(&self) -> String {
        let state = self.state.lock().expect("journal lock poisoned");
        let mut out = String::with_capacity(64 + 96 * state.events.len());
        out.push_str("{\"capacity\":");
        out.push_str(&self.capacity.to_string());
        out.push_str(",\"dropped\":");
        out.push_str(&state.dropped.to_string());
        out.push_str(",\"events\":[");
        for (i, event) in state.events.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str("{\"domain\":\"");
            out.push_str(event.domain.label());
            out.push_str("\",\"kind\":\"");
            out.push_str(event.kind.label());
            out.push_str("\",\"name\":");
            serde_json::write_escaped(&mut out, event.name);
            out.push_str(",\"time\":");
            serde_json::write_f64(&mut out, event.time).expect("journal times are finite");
            out.push_str(",\"a\":");
            out.push_str(&event.a.to_string());
            out.push_str(",\"b\":");
            out.push_str(&event.b.to_string());
            out.push('}');
        }
        out.push_str("]}");
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn journal_retains_the_newest_events() {
        let j = Journal::new(3);
        assert!(j.is_empty());
        for i in 0..5u64 {
            j.record_instant(ClockDomain::Sim, "tick", i as f64, i, 0);
        }
        assert_eq!(j.capacity(), 3);
        assert_eq!(j.len(), 3);
        assert_eq!(j.dropped(), 2);
        let kept: Vec<u64> = j.events().iter().map(|e| e.a).collect();
        assert_eq!(kept, vec![2, 3, 4]);
    }

    #[test]
    fn zero_capacity_drops_everything() {
        let j = Journal::new(0);
        j.record_boundary(ClockDomain::Wall, EventKind::Begin, "x", 0.0);
        assert!(j.is_empty());
        assert_eq!(j.dropped(), 1);
        assert_eq!(j.to_json(), "{\"capacity\":0,\"dropped\":1,\"events\":[]}");
    }

    #[test]
    fn json_export_is_deterministic_and_parseable() {
        let j = Journal::new(8);
        j.record_boundary(ClockDomain::Sim, EventKind::Begin, "campaign", 0.0);
        j.record_instant(ClockDomain::Sim, "trial.complete", 1.25, 3, 9);
        j.record_boundary(ClockDomain::Sim, EventKind::End, "campaign", 1.25);
        let json = j.to_json();
        assert_eq!(json, j.to_json(), "export must be deterministic");
        let value = serde_json::parse_str(&json).unwrap();
        let serde::Value::Map(fields) = &value else {
            panic!("journal export is an object");
        };
        assert!(fields.iter().any(|(k, _)| k == "events"));
        assert!(json.contains("\"trial.complete\""));
        assert!(json.contains("\"kind\":\"instant\""));
        assert!(json.contains("\"a\":3"));
    }
}
