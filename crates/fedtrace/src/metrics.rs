//! The metrics registry: monotonic counters, gauges, and fixed-bucket
//! log-scale histograms with a lock-free hot path.
//!
//! # Determinism
//!
//! Counter and histogram updates land in per-thread **shards** (a
//! thread-local slot index into a fixed array of cache-line-padded atomics)
//! and reads merge the shards **in slot order**. Because `u64` addition is
//! commutative and associative, the merged value is a pure function of the
//! multiset of updates — independent of which thread performed which update
//! and of any interleaving. The same argument covers histogram buckets
//! (per-bucket sums), `count`/`sum`, and `min`/`max` (idempotent lattice
//! joins). Gauges are last-write-wins and deterministic whenever the writer
//! is (all in-tree writers publish from single-threaded summary code).
//!
//! Registration (name → handle) takes a mutex; updates through a handle
//! never do.

use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Mutex};

/// Number of counter/histogram shards. A power of two so the thread-slot
/// assignment wraps cheaply; more shards than typical worker counts keeps
/// contention negligible without bloating snapshots.
pub const SHARDS: usize = 16;

/// One cache-line-padded atomic cell, so shards on different threads never
/// false-share.
#[derive(Debug, Default)]
#[repr(align(64))]
struct PaddedU64(AtomicU64);

fn shard_slots() -> [PaddedU64; SHARDS] {
    std::array::from_fn(|_| PaddedU64::default())
}

/// The calling thread's shard slot: assigned round-robin on first use and
/// cached in a thread-local, so the hot path is one `Cell` read.
fn thread_shard() -> usize {
    use std::cell::Cell;
    static NEXT: AtomicUsize = AtomicUsize::new(0);
    thread_local! {
        static SHARD: Cell<usize> = const { Cell::new(usize::MAX) };
    }
    SHARD.with(|slot| {
        let mut index = slot.get();
        if index == usize::MAX {
            index = NEXT.fetch_add(1, Ordering::Relaxed) % SHARDS;
            slot.set(index);
        }
        index
    })
}

/// A monotonic counter. Cloning shares storage; increments are one relaxed
/// atomic add into the calling thread's shard.
#[derive(Debug, Clone)]
pub struct Counter {
    shards: Arc<[PaddedU64; SHARDS]>,
}

impl Counter {
    /// A standalone counter (not registered anywhere).
    pub fn new() -> Self {
        Counter {
            shards: Arc::new(shard_slots()),
        }
    }

    /// Adds `n` to the counter.
    pub fn add(&self, n: u64) {
        self.add_in_shard(thread_shard(), n);
    }

    /// Increments the counter by one.
    pub fn incr(&self) {
        self.add(1);
    }

    /// Adds `n` directly into shard `slot % SHARDS`. The merge-determinism
    /// test surface: any assignment of updates to shards must read back the
    /// same total.
    pub fn add_in_shard(&self, slot: usize, n: u64) {
        self.shards[slot % SHARDS].0.fetch_add(n, Ordering::Relaxed);
    }

    /// The current value: shard sums merged in slot order.
    pub fn value(&self) -> u64 {
        self.shards
            .iter()
            .map(|s| s.0.load(Ordering::Relaxed))
            .fold(0u64, u64::wrapping_add)
    }
}

impl Default for Counter {
    fn default() -> Self {
        Counter::new()
    }
}

#[derive(Debug, Default)]
struct GaugeInner {
    /// Current value as `f64` bits.
    value: AtomicU64,
    /// Peak value as `f64` bits (monotone under `set`).
    peak: AtomicU64,
}

/// A last-write-wins gauge over non-negative `f64` values, with a monotone
/// peak. Cloning shares storage.
#[derive(Debug, Clone, Default)]
pub struct Gauge {
    inner: Arc<GaugeInner>,
}

impl Gauge {
    /// A standalone gauge (not registered anywhere), reading 0 until set.
    pub fn new() -> Self {
        Gauge::default()
    }

    /// Sets the gauge, raising the peak if `value` exceeds it. Negative or
    /// non-finite values are clamped to 0 — gauges model sizes and rates.
    pub fn set(&self, value: f64) {
        let value = if value.is_finite() && value > 0.0 {
            value
        } else {
            0.0
        };
        self.inner.value.store(value.to_bits(), Ordering::Relaxed);
        let mut seen = self.inner.peak.load(Ordering::Relaxed);
        while value > f64::from_bits(seen) {
            match self.inner.peak.compare_exchange_weak(
                seen,
                value.to_bits(),
                Ordering::Relaxed,
                Ordering::Relaxed,
            ) {
                Ok(_) => break,
                Err(now) => seen = now,
            }
        }
    }

    /// The current value.
    pub fn value(&self) -> f64 {
        f64::from_bits(self.inner.value.load(Ordering::Relaxed))
    }

    /// The largest value ever set.
    pub fn peak(&self) -> f64 {
        f64::from_bits(self.inner.peak.load(Ordering::Relaxed))
    }
}

/// Histogram buckets: index 0 holds the value 0; index `k >= 1` holds
/// values in `[2^(k-1), 2^k)`. 65 buckets cover the whole `u64` range.
const BUCKETS: usize = 65;

fn bucket_index(value: u64) -> usize {
    if value == 0 {
        0
    } else {
        64 - value.leading_zeros() as usize
    }
}

/// Inclusive upper bound of bucket `index`.
fn bucket_le(index: usize) -> u64 {
    if index == 0 {
        0
    } else if index >= 64 {
        u64::MAX
    } else {
        (1u64 << index) - 1
    }
}

#[derive(Debug)]
struct HistogramInner {
    buckets: [AtomicU64; BUCKETS],
    count: AtomicU64,
    sum: AtomicU64,
    min: AtomicU64,
    max: AtomicU64,
}

/// A fixed-bucket log2-scale histogram of `u64` observations. All updates
/// are commutative relaxed atomics, so the merged snapshot is deterministic
/// regardless of thread interleaving. Cloning shares storage.
#[derive(Debug, Clone)]
pub struct Histogram {
    inner: Arc<HistogramInner>,
}

impl Histogram {
    /// A standalone histogram (not registered anywhere).
    pub fn new() -> Self {
        Histogram {
            inner: Arc::new(HistogramInner {
                buckets: std::array::from_fn(|_| AtomicU64::new(0)),
                count: AtomicU64::new(0),
                sum: AtomicU64::new(0),
                min: AtomicU64::new(u64::MAX),
                max: AtomicU64::new(0),
            }),
        }
    }

    /// Records one observation.
    pub fn observe(&self, value: u64) {
        let inner = &self.inner;
        inner.buckets[bucket_index(value)].fetch_add(1, Ordering::Relaxed);
        inner.count.fetch_add(1, Ordering::Relaxed);
        inner.sum.fetch_add(value, Ordering::Relaxed);
        inner.min.fetch_min(value, Ordering::Relaxed);
        inner.max.fetch_max(value, Ordering::Relaxed);
    }

    /// Number of observations so far.
    pub fn count(&self) -> u64 {
        self.inner.count.load(Ordering::Relaxed)
    }

    fn snapshot_into(&self, name: &str) -> HistogramSnapshot {
        let inner = &self.inner;
        let count = inner.count.load(Ordering::Relaxed);
        let buckets = inner
            .buckets
            .iter()
            .enumerate()
            .filter_map(|(i, b)| {
                let c = b.load(Ordering::Relaxed);
                (c > 0).then(|| HistogramBucket {
                    le: bucket_le(i),
                    count: c,
                })
            })
            .collect();
        HistogramSnapshot {
            name: name.to_string(),
            count,
            sum: inner.sum.load(Ordering::Relaxed),
            min: if count == 0 {
                0
            } else {
                inner.min.load(Ordering::Relaxed)
            },
            max: inner.max.load(Ordering::Relaxed),
            buckets,
        }
    }
}

impl Default for Histogram {
    fn default() -> Self {
        Histogram::new()
    }
}

/// Point-in-time value of one counter.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CounterSnapshot {
    /// Registered metric name.
    pub name: String,
    /// Merged shard total.
    pub value: u64,
}

/// Point-in-time value of one gauge.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct GaugeSnapshot {
    /// Registered metric name.
    pub name: String,
    /// Last value set.
    pub value: f64,
    /// Largest value ever set.
    pub peak: f64,
}

/// One non-empty log2 bucket of a histogram snapshot.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct HistogramBucket {
    /// Inclusive upper bound of the bucket's value range.
    pub le: u64,
    /// Observations that landed in the bucket.
    pub count: u64,
}

/// Point-in-time state of one histogram.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct HistogramSnapshot {
    /// Registered metric name.
    pub name: String,
    /// Total observations.
    pub count: u64,
    /// Sum of all observed values (wrapping at `u64::MAX`).
    pub sum: u64,
    /// Smallest observation (0 when empty).
    pub min: u64,
    /// Largest observation (0 when empty).
    pub max: u64,
    /// Non-empty buckets, ascending by `le`.
    pub buckets: Vec<HistogramBucket>,
}

impl HistogramSnapshot {
    /// Mean observation (0 when empty).
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum as f64 / self.count as f64
        }
    }
}

/// A deterministic point-in-time export of a whole [`Registry`], sorted by
/// metric name in every section. Serializes through the vendored serde, so
/// it can ride inside `BENCH_*.json` summaries and stand alone as
/// `metrics-*.json`.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct MetricsSnapshot {
    /// All registered counters.
    pub counters: Vec<CounterSnapshot>,
    /// All registered gauges.
    pub gauges: Vec<GaugeSnapshot>,
    /// All registered histograms.
    pub histograms: Vec<HistogramSnapshot>,
}

impl MetricsSnapshot {
    /// An empty snapshot.
    pub fn empty() -> Self {
        MetricsSnapshot {
            counters: Vec::new(),
            gauges: Vec::new(),
            histograms: Vec::new(),
        }
    }

    /// The value of the named counter, if registered.
    pub fn counter(&self, name: &str) -> Option<u64> {
        self.counters
            .iter()
            .find(|c| c.name == name)
            .map(|c| c.value)
    }

    /// The named gauge, if registered.
    pub fn gauge(&self, name: &str) -> Option<&GaugeSnapshot> {
        self.gauges.iter().find(|g| g.name == name)
    }

    /// The named histogram, if registered.
    pub fn histogram(&self, name: &str) -> Option<&HistogramSnapshot> {
        self.histograms.iter().find(|h| h.name == name)
    }

    /// Merges `other` into this snapshot, metric by metric, keeping every
    /// section sorted by name: counter values add, gauges join as
    /// last-write-wins on `value` with a max-merged `peak`, and histograms
    /// merge per bucket with lattice-joined `min`/`max`. The service daemon
    /// uses this to aggregate per-campaign registries into one service-level
    /// view; like every fedtrace read, it is accounting, never semantics.
    pub fn merge(&mut self, other: &MetricsSnapshot) {
        for counter in &other.counters {
            match self.counters.iter_mut().find(|c| c.name == counter.name) {
                Some(mine) => mine.value = mine.value.wrapping_add(counter.value),
                None => self.counters.push(counter.clone()),
            }
        }
        self.counters.sort_by(|a, b| a.name.cmp(&b.name));
        for gauge in &other.gauges {
            match self.gauges.iter_mut().find(|g| g.name == gauge.name) {
                Some(mine) => {
                    mine.value = gauge.value;
                    mine.peak = mine.peak.max(gauge.peak);
                }
                None => self.gauges.push(gauge.clone()),
            }
        }
        self.gauges.sort_by(|a, b| a.name.cmp(&b.name));
        for histogram in &other.histograms {
            match self
                .histograms
                .iter_mut()
                .find(|h| h.name == histogram.name)
            {
                Some(mine) => {
                    let both_nonempty = mine.count > 0 && histogram.count > 0;
                    mine.min = if both_nonempty {
                        mine.min.min(histogram.min)
                    } else {
                        mine.min.max(histogram.min)
                    };
                    mine.max = mine.max.max(histogram.max);
                    mine.count = mine.count.wrapping_add(histogram.count);
                    mine.sum = mine.sum.wrapping_add(histogram.sum);
                    for bucket in &histogram.buckets {
                        match mine.buckets.iter_mut().find(|b| b.le == bucket.le) {
                            Some(b) => b.count = b.count.wrapping_add(bucket.count),
                            None => mine.buckets.push(bucket.clone()),
                        }
                    }
                    mine.buckets.sort_by_key(|b| b.le);
                }
                None => self.histograms.push(histogram.clone()),
            }
        }
        self.histograms.sort_by(|a, b| a.name.cmp(&b.name));
    }
}

#[derive(Debug, Default)]
struct RegistryInner {
    counters: BTreeMap<String, Counter>,
    gauges: BTreeMap<String, Gauge>,
    histograms: BTreeMap<String, Histogram>,
}

/// A named collection of metrics. Registration is get-or-create by name
/// (mutex-guarded, intended for setup paths); the returned handles update
/// lock-free. Snapshots list metrics in name order — a deterministic export.
#[derive(Debug, Default)]
pub struct Registry {
    inner: Mutex<RegistryInner>,
}

impl Registry {
    /// An empty registry.
    pub fn new() -> Self {
        Registry::default()
    }

    /// The counter registered under `name`, creating it on first use.
    pub fn counter(&self, name: &str) -> Counter {
        let mut inner = self.inner.lock().expect("registry lock poisoned");
        inner.counters.entry(name.to_string()).or_default().clone()
    }

    /// The gauge registered under `name`, creating it on first use.
    pub fn gauge(&self, name: &str) -> Gauge {
        let mut inner = self.inner.lock().expect("registry lock poisoned");
        inner.gauges.entry(name.to_string()).or_default().clone()
    }

    /// The histogram registered under `name`, creating it on first use.
    pub fn histogram(&self, name: &str) -> Histogram {
        let mut inner = self.inner.lock().expect("registry lock poisoned");
        inner
            .histograms
            .entry(name.to_string())
            .or_default()
            .clone()
    }

    /// Snapshot of every registered metric, sorted by name.
    pub fn snapshot(&self) -> MetricsSnapshot {
        let inner = self.inner.lock().expect("registry lock poisoned");
        MetricsSnapshot {
            counters: inner
                .counters
                .iter()
                .map(|(name, c)| CounterSnapshot {
                    name: name.clone(),
                    value: c.value(),
                })
                .collect(),
            gauges: inner
                .gauges
                .iter()
                .map(|(name, g)| GaugeSnapshot {
                    name: name.clone(),
                    value: g.value(),
                    peak: g.peak(),
                })
                .collect(),
            histograms: inner
                .histograms
                .iter()
                .map(|(name, h)| h.snapshot_into(name))
                .collect(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn snapshot_merge_aggregates_registries() {
        let a = Registry::new();
        a.counter("serve.commits").add(5);
        a.gauge("depth").set(2.0);
        a.gauge("depth").set(1.0); // peak 2.0, value 1.0
        a.histogram("latency").observe(3);
        let b = Registry::new();
        b.counter("serve.commits").add(7);
        b.counter("serve.only_b").add(1);
        b.gauge("depth").set(1.5);
        b.histogram("latency").observe(300);
        b.histogram("only_b").observe(1);

        let mut merged = a.snapshot();
        merged.merge(&b.snapshot());
        assert_eq!(merged.counter("serve.commits"), Some(12));
        assert_eq!(merged.counter("serve.only_b"), Some(1));
        let depth = merged.gauge("depth").unwrap();
        assert_eq!(depth.value, 1.5);
        assert_eq!(depth.peak, 2.0);
        let latency = merged.histogram("latency").unwrap();
        assert_eq!(latency.count, 2);
        assert_eq!(latency.sum, 303);
        assert_eq!(latency.min, 3);
        assert_eq!(latency.max, 300);
        assert!(latency.buckets.windows(2).all(|w| w[0].le < w[1].le));
        assert_eq!(merged.histogram("only_b").unwrap().count, 1);
        // Sections stay name-sorted so merged exports remain deterministic.
        assert!(merged.counters.windows(2).all(|w| w[0].name <= w[1].name));
        // Merging an empty snapshot is the identity.
        let before = merged.clone();
        merged.merge(&MetricsSnapshot::empty());
        assert_eq!(before, merged);
    }

    #[test]
    fn counter_merges_shards_in_slot_order() {
        let c = Counter::new();
        c.add(3);
        c.incr();
        for slot in 0..(2 * SHARDS) {
            c.add_in_shard(slot, 2);
        }
        assert_eq!(c.value(), 4 + 2 * 2 * SHARDS as u64);
        // Clones share storage.
        let clone = c.clone();
        clone.add(1);
        assert_eq!(c.value(), clone.value());
    }

    #[test]
    fn counter_is_thread_safe_and_exact() {
        let c = Counter::new();
        std::thread::scope(|scope| {
            for _ in 0..8 {
                let c = c.clone();
                scope.spawn(move || {
                    for _ in 0..10_000 {
                        c.incr();
                    }
                });
            }
        });
        assert_eq!(c.value(), 80_000);
    }

    #[test]
    fn gauge_tracks_value_and_peak() {
        let g = Gauge::new();
        assert_eq!(g.value(), 0.0);
        g.set(2.5);
        g.set(9.0);
        g.set(4.0);
        assert_eq!(g.value(), 4.0);
        assert_eq!(g.peak(), 9.0);
        // Negative and non-finite inputs clamp to zero without poisoning
        // the peak.
        g.set(-3.0);
        assert_eq!(g.value(), 0.0);
        g.set(f64::NAN);
        assert_eq!(g.value(), 0.0);
        assert_eq!(g.peak(), 9.0);
    }

    #[test]
    fn histogram_buckets_are_log2_with_exact_bounds() {
        assert_eq!(bucket_index(0), 0);
        assert_eq!(bucket_index(1), 1);
        assert_eq!(bucket_index(2), 2);
        assert_eq!(bucket_index(3), 2);
        assert_eq!(bucket_index(4), 3);
        assert_eq!(bucket_index(u64::MAX), 64);
        assert_eq!(bucket_le(0), 0);
        assert_eq!(bucket_le(1), 1);
        assert_eq!(bucket_le(2), 3);
        assert_eq!(bucket_le(64), u64::MAX);
        // Every value falls in the bucket whose bound brackets it.
        for v in [0u64, 1, 2, 3, 7, 8, 1023, 1024, u64::MAX] {
            let i = bucket_index(v);
            assert!(v <= bucket_le(i), "{v}");
            if i > 0 {
                assert!(v > bucket_le(i - 1), "{v}");
            }
        }
    }

    #[test]
    fn histogram_snapshot_summarises() {
        let h = Histogram::new();
        let snap_empty = h.snapshot_into("h");
        assert_eq!(snap_empty.count, 0);
        assert_eq!(snap_empty.min, 0);
        assert_eq!(snap_empty.mean(), 0.0);
        for v in [0u64, 1, 5, 5, 900] {
            h.observe(v);
        }
        assert_eq!(h.count(), 5);
        let snap = h.snapshot_into("h");
        assert_eq!(snap.count, 5);
        assert_eq!(snap.sum, 911);
        assert_eq!(snap.min, 0);
        assert_eq!(snap.max, 900);
        assert_eq!(snap.mean(), 911.0 / 5.0);
        // Buckets: 0 → le 0; 1 → le 1; 5,5 → le 7; 900 → le 1023.
        let les: Vec<(u64, u64)> = snap.buckets.iter().map(|b| (b.le, b.count)).collect();
        assert_eq!(les, vec![(0, 1), (1, 1), (7, 2), (1023, 1)]);
    }

    #[test]
    fn registry_get_or_creates_and_snapshots_sorted() {
        let r = Registry::new();
        r.counter("z.last").add(1);
        r.counter("a.first").add(2);
        r.counter("a.first").add(3); // same handle storage
        r.gauge("m.gauge").set(1.5);
        r.histogram("h.hist").observe(4);
        let snap = r.snapshot();
        let names: Vec<&str> = snap.counters.iter().map(|c| c.name.as_str()).collect();
        assert_eq!(names, vec!["a.first", "z.last"]);
        assert_eq!(snap.counter("a.first"), Some(5));
        assert_eq!(snap.counter("missing"), None);
        assert_eq!(snap.gauge("m.gauge").unwrap().value, 1.5);
        assert_eq!(snap.histogram("h.hist").unwrap().count, 1);
        assert!(MetricsSnapshot::empty().counters.is_empty());
    }

    #[test]
    fn snapshot_serde_round_trips() {
        let r = Registry::new();
        r.counter("c").add(7);
        r.gauge("g").set(0.25);
        let h = r.histogram("h");
        h.observe(3);
        h.observe(300);
        let snap = r.snapshot();
        let json = serde_json::to_string_pretty(&snap).unwrap();
        assert!(json.contains("\"counters\""));
        assert!(json.contains("\"histograms\""));
        let back: MetricsSnapshot = serde_json::from_str(&json).unwrap();
        assert_eq!(back, snap);
    }

    #[test]
    fn identical_update_multisets_snapshot_identically() {
        // The registry-level determinism statement: two registries receiving
        // the same multiset of updates from different thread interleavings
        // produce byte-identical snapshots.
        let build = |threads: usize| {
            let r = Registry::new();
            let c = r.counter("c");
            let h = r.histogram("h");
            std::thread::scope(|scope| {
                for t in 0..threads {
                    let c = c.clone();
                    let h = h.clone();
                    scope.spawn(move || {
                        for i in 0..1000u64 {
                            if i % threads as u64 == t as u64 {
                                c.add(i);
                                h.observe(i);
                            }
                        }
                    });
                }
            });
            serde_json::to_string(&r.snapshot()).unwrap()
        };
        let reference = build(1);
        for threads in [2usize, 3, 8] {
            assert_eq!(reference, build(threads), "{threads} threads");
        }
    }
}

#[cfg(test)]
mod proptests {
    use super::*;
    use proptest::prelude::*;

    proptest! {
        /// The satellite contract: merging per-thread shards in slot order
        /// makes the counter value a pure function of the update multiset —
        /// any assignment of the same updates to shards, in any order, reads
        /// back the same total.
        #[test]
        fn prop_shard_merge_is_insertion_order_invariant(
            raw in proptest::collection::vec(0u64..100_000, 0..64),
        ) {
            // Decode each draw into (shard slot, increment).
            let updates: Vec<(usize, u64)> = raw
                .iter()
                .map(|&v| ((v % SHARDS as u64) as usize, v / SHARDS as u64 + 1))
                .collect();
            let forward = Counter::new();
            for &(slot, n) in &updates {
                forward.add_in_shard(slot, n);
            }
            // Reversed insertion order, and every update displaced to a
            // different shard.
            let scrambled = Counter::new();
            for &(slot, n) in updates.iter().rev() {
                scrambled.add_in_shard(slot + 7, n);
            }
            let expected: u64 = updates.iter().map(|&(_, n)| n).sum();
            prop_assert_eq!(forward.value(), expected);
            prop_assert_eq!(scrambled.value(), expected);
        }

        /// Histogram state is likewise insertion-order-invariant.
        #[test]
        fn prop_histogram_is_order_invariant(
            values in proptest::collection::vec(0u64..100_000, 0..64),
        ) {
            let forward = Histogram::new();
            for &v in &values {
                forward.observe(v);
            }
            let reversed = Histogram::new();
            for &v in values.iter().rev() {
                reversed.observe(v);
            }
            prop_assert_eq!(
                forward.snapshot_into("h"),
                reversed.snapshot_into("h")
            );
        }
    }
}
