//! Structured spans with explicit clock domains.

use serde::{Deserialize, Serialize};

/// Which clock stamped a time value.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum ClockDomain {
    /// Virtual time from the event-driven executor's `VirtualClock`:
    /// bit-deterministic, replay-identical, safe to compare across runs.
    Sim,
    /// Real time from `std::time::Instant`: performance accounting only,
    /// never observed by any semantic path and never compared across runs.
    Wall,
}

impl ClockDomain {
    /// The Chrome trace `cat` label of the domain.
    pub fn label(self) -> &'static str {
        match self {
            ClockDomain::Sim => "sim",
            ClockDomain::Wall => "wall",
        }
    }
}

/// One evaluation slice of the virtual-time executor timeline: trial
/// `trial` trained to rung `resource` on virtual worker `worker`, occupying
/// the sim-time interval `[start, end]`.
///
/// The executor collects these **unconditionally** — the timeline is part of
/// the campaign result, not an observability side effect — so tracing on or
/// off cannot move its bits, and a recorded campaign's timeline replays
/// bit-identically from the ledger (`tests/determinism.rs`).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct TrialSpan {
    /// Trial identifier within its campaign.
    pub trial: u64,
    /// The rung/resource level the evaluation reported at.
    pub resource: u64,
    /// Noise repetition index of the evaluation.
    pub rep: u64,
    /// Index of the virtual worker that executed the slice.
    pub worker: u64,
    /// Sim-time the slice started, in virtual seconds.
    pub start: f64,
    /// Sim-time the slice completed, in virtual seconds.
    pub end: f64,
}

impl TrialSpan {
    /// Duration of the slice in virtual seconds.
    pub fn duration(&self) -> f64 {
        self.end - self.start
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn clock_domains_label_and_serialize() {
        assert_eq!(ClockDomain::Sim.label(), "sim");
        assert_eq!(ClockDomain::Wall.label(), "wall");
        let json = serde_json::to_string(&ClockDomain::Sim).unwrap();
        let back: ClockDomain = serde_json::from_str(&json).unwrap();
        assert_eq!(back, ClockDomain::Sim);
    }

    #[test]
    fn trial_span_round_trips_with_exact_bits() {
        let span = TrialSpan {
            trial: 3,
            resource: 9,
            rep: 0,
            worker: 2,
            start: 1.5,
            end: 0.1 + 0.2, // a value without a short decimal form
        };
        assert!((span.duration() - (span.end - 1.5)).abs() < 1e-15);
        let json = serde_json::to_string(&span).unwrap();
        let back: TrialSpan = serde_json::from_str(&json).unwrap();
        assert_eq!(back.end.to_bits(), span.end.to_bits());
        assert_eq!(back, span);
    }
}
