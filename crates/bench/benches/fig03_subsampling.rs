//! Regenerates Fig. 3: random search vs. evaluation-client subsampling on all four benchmarks.

use criterion::{criterion_group, criterion_main, Criterion};
use feddata::Benchmark;
use fedtune_core::experiments::subsampling::{run_subsampling_sweep, subsampling_report};

fn regenerate() {
    let scale = fedbench::report_scale();
    let mut sweeps = Vec::new();
    for &b in &Benchmark::ALL {
        sweeps.push(run_subsampling_sweep(b, &scale, 0).expect("subsampling sweep"));
    }
    fedbench::print_report(&subsampling_report(&sweeps));
}

fn bench(c: &mut Criterion) {
    regenerate();
    let scale = fedbench::measurement_scale();
    let mut group = c.benchmark_group("fig03_subsampling");
    group.sample_size(10);
    group.bench_function("cifar10_like_sweep", |b| {
        b.iter(|| {
            run_subsampling_sweep(Benchmark::Cifar10Like, &scale, 0).expect("subsampling sweep")
        })
    });
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
