//! The record→replay smoke of the `fedstore` subsystem: records the fig08
//! method comparison once (live federated training), replays it against the
//! resulting table, asserts the replayed selection matches the live run
//! bit-for-bit, and reports the live-vs-replay speedup.

use criterion::{criterion_group, criterion_main, Criterion};
use feddata::Benchmark;
use fedstore::{record_method_comparison, replay_method_comparison, TrialStore};
use fedtune_core::experiments::methods::{paper_noise_settings, TuningMethod};
use fedtune_core::ExecutionPolicy;

fn regenerate() {
    let scale = fedbench::report_scale();
    let mut summary = fedbench::BenchSummary::new("surrogate_replay");
    let settings = paper_noise_settings();
    let campaigns = (TuningMethod::EXTENDED.len() * 2 * scale.method_trials) as u64;
    let mut store = TrialStore::in_memory();
    let live = summary.time("record_live", campaigns, || {
        record_method_comparison(
            ExecutionPolicy::from_env(),
            Benchmark::Cifar10Like,
            &scale,
            &TuningMethod::EXTENDED,
            &settings,
            0,
            &mut store,
        )
        .expect("recorded method comparison")
    });
    let replayed = summary.time("replay_table", campaigns, || {
        replay_method_comparison(
            &store,
            Benchmark::Cifar10Like,
            &scale,
            &TuningMethod::EXTENDED,
            &settings,
            0,
        )
        .expect("replayed method comparison")
    });
    assert_eq!(
        live, replayed,
        "tabular replay must match the live campaigns bit-for-bit"
    );
    let speedup = match (summary.entries.first(), summary.entries.get(1)) {
        (Some(record), Some(replay)) if replay.wall_seconds > 0.0 => {
            record.wall_seconds / replay.wall_seconds
        }
        _ => 0.0,
    };
    println!(
        "\nrecorded {} evaluations; replayed selection matches live; replay speedup ~{speedup:.0}x",
        store.len()
    );
    summary.write_if_enabled();
    fedbench::print_report(
        &replayed
            .to_bars_report("fig16_replay", scale.total_budget)
            .expect("bars report"),
    );
}

fn bench(c: &mut Criterion) {
    regenerate();
    let scale = fedbench::measurement_scale();
    let settings = paper_noise_settings();
    let mut store = TrialStore::in_memory();
    record_method_comparison(
        ExecutionPolicy::from_env(),
        Benchmark::Cifar10Like,
        &scale,
        &TuningMethod::EXTENDED,
        &settings,
        0,
        &mut store,
    )
    .expect("recorded method comparison");
    let mut group = c.benchmark_group("surrogate_replay");
    group.sample_size(20);
    group.bench_function("replay_extended_methods", |b| {
        b.iter(|| {
            replay_method_comparison(
                &store,
                Benchmark::Cifar10Like,
                &scale,
                &TuningMethod::EXTENDED,
                &settings,
                0,
            )
            .expect("replayed method comparison")
        })
    });
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
