//! Population-substrate throughput: clients materialized per second from a
//! million-client lazy population, cohort-sampling cost, and the peak
//! resident-client footprint of a population-backed training campaign.
//!
//! The one-off summary reports cold/warm materialization throughput and the
//! campaign's peak residency; the Criterion measurements track the hot
//! paths (single-client materialization, cohort sampling, one cohort
//! round).

use criterion::{criterion_group, criterion_main, Criterion};
use feddata::Benchmark;
use fedmodels::ModelSpec;
use fedpop::{
    train_on_population, CachedPopulation, ClientCache, CohortSampler, Population, PopulationSpec,
    SyntheticPopulation,
};
use fedsim::clock::VirtualClock;
use fedsim::{FederatedTrainer, TrainerConfig};
use std::time::Instant;

const POPULATION: u64 = 1_000_000;
const COHORT: usize = 32;
const CACHE_CAPACITY: usize = 256;

fn population() -> SyntheticPopulation {
    SyntheticPopulation::new(
        PopulationSpec::benchmark(Benchmark::RedditLike, POPULATION),
        0,
    )
    .expect("valid population spec")
}

fn print_summary(population: &SyntheticPopulation) {
    let mut summary = fedbench::BenchSummary::new("population_scale");
    println!(
        "\npopulation_scale: {POPULATION} lazy clients, cohort {COHORT}, cache {CACHE_CAPACITY}"
    );

    // Cold materialization: distinct ids, nothing cached.
    let probe = 4_000usize;
    let mut rng = fedmath::rng::rng_for(1, 0);
    let ids = fedmath::rng::sample_ids_without_replacement(&mut rng, POPULATION, probe)
        .expect("probe sample");
    let start = Instant::now();
    let mut examples = 0usize;
    for &id in &ids {
        examples += population
            .materialize(id)
            .expect("materialize")
            .num_examples();
    }
    let cold = start.elapsed().as_secs_f64();
    summary.push("materialize_cold", cold, probe as u64);
    println!(
        "  cold materialization: {:.0} clients/s ({examples} examples over {probe} clients)",
        probe as f64 / cold
    );

    // Warm materialization: the same ids through a cache that fits them.
    let cache = ClientCache::new(probe);
    for &id in &ids {
        cache
            .get_or_materialize(id, || population.materialize(id))
            .expect("fill");
    }
    let start = Instant::now();
    for &id in &ids {
        cache
            .get_or_materialize(id, || population.materialize(id))
            .expect("hit");
    }
    let warm = start.elapsed().as_secs_f64();
    summary.push("materialize_warm", warm, probe as u64);
    println!(
        "  warm (cached) fetch:  {:.0} clients/s, hit rate {:.1}%",
        probe as f64 / warm,
        cache.stats().hit_rate() * 100.0
    );

    // One population-backed training campaign; report its peak residency.
    let campaign_cache = ClientCache::new(CACHE_CAPACITY);
    let source = CachedPopulation::new(population, &campaign_cache);
    let trainer = FederatedTrainer::new(TrainerConfig {
        clients_per_round: COHORT,
        ..Default::default()
    })
    .expect("trainer");
    let mut run = trainer
        .start_with_dims(
            population.input_dim(),
            population.num_classes(),
            ModelSpec::for_task(population.task()),
            3,
        )
        .expect("run");
    let mut clock = VirtualClock::new();
    let rounds = 20;
    let start = Instant::now();
    let report = train_on_population(
        &mut run,
        &source,
        CohortSampler::Uniform,
        COHORT,
        rounds,
        60.0,
        &mut clock,
    )
    .expect("campaign");
    let campaign = start.elapsed().as_secs_f64();
    summary.push("cohort_rounds", campaign, report.total_participants as u64);
    let stats = campaign_cache.stats();
    let peak = report.peak_resident_clients(stats.peak_resident);
    println!(
        "  campaign: {rounds} rounds x {COHORT} clients in {campaign:.3}s, \
         peak resident {peak} clients ({:.4}% of the population)",
        100.0 * peak as f64 / POPULATION as f64
    );
    // Assert each measured residency component against its configured cap
    // (the combined `cohort + cache` bound follows from the two).
    assert!(
        report.max_cohort <= COHORT,
        "a sampler returned more ids than the requested cohort: {}",
        report.max_cohort
    );
    assert!(
        stats.peak_resident <= CACHE_CAPACITY,
        "cache exceeded its capacity: {}",
        stats.peak_resident
    );
    summary.record_population(peak as u64, stats.hit_rate());
    summary.record_sim(report.sim_elapsed, rounds as u64);
    summary.write_if_enabled();
}

fn bench(c: &mut Criterion) {
    let population = population();
    print_summary(&population);
    let mut group = c.benchmark_group("population_scale");
    group.sample_size(20);
    group.bench_function("materialize_one_client", |b| {
        let mut id = 0u64;
        b.iter(|| {
            id = (id + 7_919) % POPULATION;
            population.materialize(id).expect("materialize")
        });
    });
    group.bench_function(format!("sample_cohort_{COHORT}_of_1m"), |b| {
        let mut rng = fedmath::rng::rng_for(2, 0);
        b.iter(|| {
            CohortSampler::Uniform
                .sample(&population, &mut rng, COHORT, 0.0)
                .expect("cohort")
        });
    });
    group.bench_function("cohort_round_32_clients", |b| {
        let cache = ClientCache::new(CACHE_CAPACITY);
        let source = CachedPopulation::new(&population, &cache);
        let trainer = FederatedTrainer::new(TrainerConfig {
            clients_per_round: COHORT,
            ..Default::default()
        })
        .expect("trainer");
        let mut run = trainer
            .start_with_dims(
                population.input_dim(),
                population.num_classes(),
                ModelSpec::for_task(population.task()),
                5,
            )
            .expect("run");
        let mut clock = VirtualClock::new();
        b.iter(|| {
            train_on_population(
                &mut run,
                &source,
                CohortSampler::Uniform,
                COHORT,
                1,
                60.0,
                &mut clock,
            )
            .expect("round")
        });
    });
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
