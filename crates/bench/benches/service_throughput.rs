//! Wall-clock throughput of the multi-tenant tuning service: four
//! latency-backed campaigns run back-to-back standalone versus concurrently
//! through one [`fedserve::Service`] over a shared 8-thread pool.
//!
//! Like `executor_throughput`, every evaluation *sleeps* for its virtual
//! duration scaled to a real latency (`latency_scale` in the objective
//! spec), so the measured speedup is latency hiding — the service parks all
//! four campaigns' in-flight evaluations on real threads at once — and
//! holds on any host, including single-core CI containers. Each campaign
//! keeps two virtual trials in flight; standalone they overlap only within
//! a campaign, while the service overlaps across campaigns too.
//!
//! Before comparing clocks the bench asserts the service-run campaigns'
//! selections and `sim_elapsed` are **bit-identical** to their standalone
//! runs — multi-tenancy may move wall time, never a result bit.
//!
//! With `FEDTUNE_BENCH_JSON=1` the summary lands in
//! `BENCH_service_throughput.json`, gated in CI by `perf_compare`.

use criterion::{criterion_group, criterion_main, Criterion};
use fedserve::campaign::{run_campaign, CampaignFlags};
use fedserve::{
    CampaignLimits, CampaignOutcome, CampaignSpec, CostSpec, DimSpec, FairGate, ObjectiveSpec,
    SchedulerSpec, Service, ServiceConfig,
};
use fedsim::SharedPool;
use fedstore::TrialStore;
use std::time::Instant;

/// Concurrent campaigns, each with this many virtual workers.
const CAMPAIGNS: u64 = 4;
const WORKERS_PER_CAMPAIGN: usize = 2;

/// Real threads (and gate slots) in the shared service pool: enough to park
/// every campaign's full virtual in-flight set simultaneously.
const SERVICE_THREADS: usize = CAMPAIGNS as usize * WORKERS_PER_CAMPAIGN;

/// Target total evaluation latency across all campaigns, in real seconds.
/// The sequential baseline pays roughly `1/WORKERS_PER_CAMPAIGN` of it in
/// wall clock; the service overlaps across campaigns as well.
const TARGET_TOTAL_SLEEP: f64 = 6.0;

/// Committed floor on the service-vs-sequential speedup.
const SPEEDUP_FLOOR: f64 = 2.0;

fn spec(index: u64, latency_scale: f64) -> CampaignSpec {
    CampaignSpec {
        name: format!("bench-{index}"),
        seed: 40 + index,
        space: vec![DimSpec::Uniform {
            name: "x".to_string(),
            low: 0.0,
            high: 1.0,
        }],
        scheduler: SchedulerSpec::AsyncAsha {
            trials: 12,
            eta: 3,
            min_resource: 1,
            max_resource: 9,
        },
        objective: ObjectiveSpec::Analytic {
            target: 0.3,
            noise_sd: 0.1,
            latency_scale,
            fail_trial: None,
            panic_trial: None,
        },
        cost: CostSpec::HeavyTailedClients {
            clients: 60,
            per_round: 6,
            seed: 17 + index,
        },
        workers: WORKERS_PER_CAMPAIGN,
        sim_budget: None,
        limits: CampaignLimits::default(),
    }
}

/// One standalone campaign on its own pool sized to its virtual workers.
fn standalone(spec: &CampaignSpec) -> CampaignOutcome {
    let pool = SharedPool::new(spec.workers);
    let gate = FairGate::new(spec.workers);
    let flags = CampaignFlags::default();
    run_campaign(
        spec,
        TrialStore::in_memory(),
        &pool,
        &gate,
        &flags,
        None,
        &mut |_| {},
    )
    .expect("standalone campaign")
}

fn regenerate() {
    let mut summary = fedbench::BenchSummary::new("service_throughput");

    // Calibrate a *per-campaign* virtual→real latency scale from dry
    // standalone runs (zero latency): each campaign's virtual busy time is
    // a pure function of its own virtual state, identical however the
    // campaign is hosted. Per-campaign calibration gives every tenant an
    // equal share of the target sleep — heavy-tailed cost seeds otherwise
    // skew one campaign's critical path until it dominates both sides of
    // the comparison and hides the overlap being measured.
    let dry: Vec<CampaignOutcome> = (0..CAMPAIGNS).map(|i| standalone(&spec(i, 0.0))).collect();
    let scales: Vec<f64> = dry
        .iter()
        .map(|out| {
            let virtual_busy: f64 = out.outcome.timeline.iter().map(|s| s.end - s.start).sum();
            assert!(virtual_busy > 0.0);
            TARGET_TOTAL_SLEEP / CAMPAIGNS as f64 / virtual_busy
        })
        .collect();
    let evals: u64 = dry.iter().map(|out| out.evaluations).sum();
    println!("{CAMPAIGNS} campaigns: {evals} evaluations, {TARGET_TOTAL_SLEEP:.1}s target sleep");

    // Sequential baseline: each campaign standalone, one after another.
    let start = Instant::now();
    let sequential: Vec<CampaignOutcome> = (0..CAMPAIGNS)
        .map(|i| standalone(&spec(i, scales[i as usize])))
        .collect();
    let sequential_wall = start.elapsed().as_secs_f64();
    for (out, dry_out) in sequential.iter().zip(&dry) {
        assert_eq!(out.outcome, dry_out.outcome, "sleeping must not move a bit");
    }
    summary.push("standalone_sequential_4", sequential_wall, evals);

    // The service: all four campaigns submitted at once, sharing one pool.
    let root = std::env::temp_dir().join(format!("fedserve_bench_{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&root);
    let start = Instant::now();
    let service = Service::open(
        &root,
        ServiceConfig {
            threads: SERVICE_THREADS,
            global_in_flight: SERVICE_THREADS,
        },
    )
    .expect("open service");
    for i in 0..CAMPAIGNS {
        service.submit(spec(i, scales[i as usize])).expect("submit");
    }
    let statuses: Vec<_> = (0..CAMPAIGNS)
        .map(|i| {
            service
                .wait(&format!("bench-{i}"), std::time::Duration::from_secs(300))
                .expect("campaign settles")
        })
        .collect();
    let service_wall = start.elapsed().as_secs_f64();
    service.shutdown();

    // Multi-tenancy must not move a result bit.
    for (status, standalone_out) in statuses.iter().zip(&sequential) {
        assert_eq!(status.state, fedserve::CampaignState::Completed);
        assert_eq!(
            status.sim_elapsed.to_bits(),
            standalone_out.outcome.sim_elapsed.to_bits(),
            "{}: sim_elapsed diverged under multi-tenancy",
            status.name
        );
        let best = standalone_out.outcome.outcome.best().expect("has best");
        let selection = status.selection.as_ref().expect("has selection");
        assert_eq!(selection.trial_id, best.trial_id, "{}", status.name);
        assert_eq!(
            selection.score.to_bits(),
            best.score.to_bits(),
            "{}: selection score diverged",
            status.name
        );
    }
    let _ = std::fs::remove_dir_all(&root);
    summary.push("service_concurrent_4", service_wall, evals);

    let speedup = sequential_wall / service_wall;
    println!(
        "service: {service_wall:.2}s wall vs sequential {sequential_wall:.2}s — {speedup:.2}x"
    );
    assert!(
        speedup >= SPEEDUP_FLOOR,
        "the service must overlap campaigns at least {SPEEDUP_FLOOR}x \
         over sequential standalone runs, got {speedup:.2}x"
    );
    summary.push("speedup_service_x1000", 1.0, (speedup * 1000.0) as u64);
    summary.record_sim(
        sequential.iter().map(|o| o.outcome.sim_elapsed).sum(),
        evals,
    );
    summary.write_if_enabled();
}

fn bench(c: &mut Criterion) {
    regenerate();

    // Micro: service machinery overhead — the same four campaigns with zero
    // latency, measuring registry + gate + driver cost per evaluation.
    let mut group = c.benchmark_group("service_throughput");
    group.sample_size(10);
    group.bench_function("four_campaigns_no_latency", |b| {
        b.iter(|| {
            let root =
                std::env::temp_dir().join(format!("fedserve_bench_micro_{}", std::process::id()));
            let _ = std::fs::remove_dir_all(&root);
            let service = Service::open(
                &root,
                ServiceConfig {
                    threads: SERVICE_THREADS,
                    global_in_flight: SERVICE_THREADS,
                },
            )
            .expect("open service");
            for i in 0..CAMPAIGNS {
                service.submit(spec(i, 0.0)).expect("submit");
            }
            for i in 0..CAMPAIGNS {
                service
                    .wait(&format!("bench-{i}"), std::time::Duration::from_secs(60))
                    .expect("settles");
            }
            service.shutdown();
            let _ = std::fs::remove_dir_all(&root);
        })
    });
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
