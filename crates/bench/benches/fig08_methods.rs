//! Regenerates Fig. 8: online performance of RS/TPE/HB/BOHB, noiseless vs. noisy.

use criterion::{criterion_group, criterion_main, Criterion};
use feddata::Benchmark;
use fedtune_core::experiments::methods::{paper_noise_settings, run_method_comparison};

fn regenerate() {
    let scale = fedbench::report_scale();
    let comparison =
        run_method_comparison(Benchmark::Cifar10Like, &scale, &paper_noise_settings(), 0)
            .expect("method comparison");
    fedbench::print_report(&comparison.to_online_report().expect("online report"));
}

fn bench(c: &mut Criterion) {
    regenerate();
    let scale = fedbench::measurement_scale();
    let mut group = c.benchmark_group("fig08_methods");
    group.sample_size(10);
    group.bench_function("cifar10_like_all_methods", |b| {
        b.iter(|| {
            run_method_comparison(Benchmark::Cifar10Like, &scale, &paper_noise_settings(), 0)
                .expect("method comparison")
        })
    });
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
