//! Regenerates Fig. 8: online performance of the tuning methods, noiseless
//! vs. noisy — now through the batched ask/tell scheduler, including the
//! ASHA and re-evaluation extensions.

use criterion::{criterion_group, criterion_main, Criterion};
use feddata::Benchmark;
use fedtune_core::experiments::methods::{
    paper_noise_settings, run_method_comparison, run_method_comparison_scheduled, TuningMethod,
};
use fedtune_core::ExecutionPolicy;

fn regenerate() {
    let scale = fedbench::report_scale();
    let mut summary = fedbench::BenchSummary::new("fig08_methods");
    let campaigns = (TuningMethod::EXTENDED.len() * 2 * scale.method_trials) as u64;
    // The scheduled path is the production one: batches fan out across
    // threads. Time the sequential policy too so the JSON tracks the speedup.
    let comparison = summary.time("scheduled_extended_parallel", campaigns, || {
        run_method_comparison_scheduled(
            ExecutionPolicy::from_env(),
            Benchmark::Cifar10Like,
            &scale,
            &TuningMethod::EXTENDED,
            &paper_noise_settings(),
            0,
        )
        .expect("scheduled method comparison")
    });
    summary.time("scheduled_extended_sequential", campaigns, || {
        run_method_comparison_scheduled(
            ExecutionPolicy::Sequential,
            Benchmark::Cifar10Like,
            &scale,
            &TuningMethod::EXTENDED,
            &paper_noise_settings(),
            0,
        )
        .expect("scheduled method comparison")
    });
    summary.write_if_enabled();
    fedbench::print_report(&comparison.to_online_report().expect("online report"));
}

fn bench(c: &mut Criterion) {
    regenerate();
    let scale = fedbench::measurement_scale();
    let mut group = c.benchmark_group("fig08_methods");
    group.sample_size(10);
    group.bench_function("cifar10_like_all_methods", |b| {
        b.iter(|| {
            run_method_comparison(Benchmark::Cifar10Like, &scale, &paper_noise_settings(), 0)
                .expect("method comparison")
        })
    });
    group.bench_function("cifar10_like_scheduled_extended", |b| {
        b.iter(|| {
            run_method_comparison_scheduled(
                ExecutionPolicy::from_env(),
                Benchmark::Cifar10Like,
                &scale,
                &TuningMethod::EXTENDED,
                &paper_noise_settings(),
                0,
            )
            .expect("scheduled method comparison")
        })
    });
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
