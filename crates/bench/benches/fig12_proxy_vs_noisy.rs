//! Regenerates Fig. 12: noisy-evaluation RS vs. one-shot proxy tuning over the budget.

use criterion::{criterion_group, criterion_main, Criterion};
use feddata::Benchmark;
use fedtune_core::experiments::proxy::run_proxy_vs_noisy;

fn regenerate() {
    let scale = fedbench::report_scale();
    for &b in &Benchmark::ALL {
        let result = run_proxy_vs_noisy(b, &scale, 0).expect("proxy vs noisy");
        fedbench::print_report(&result.to_report());
    }
}

fn bench(c: &mut Criterion) {
    regenerate();
    let scale = fedbench::measurement_scale();
    let mut group = c.benchmark_group("fig12_proxy_vs_noisy");
    group.sample_size(10);
    group.bench_function("cifar10_like", |b| {
        b.iter(|| run_proxy_vs_noisy(Benchmark::Cifar10Like, &scale, 0).expect("proxy vs noisy"))
    });
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
