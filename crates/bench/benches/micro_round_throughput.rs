//! Sequential vs. parallel `run_round` throughput at 10/50/100 clients per
//! round — the perf trajectory of the deterministic execution engine.
//!
//! On multi-core hardware the parallel policy should show a measurable
//! speedup from 50 clients per round upward (client training dominates and
//! fans out across cores); on a single core it degrades gracefully to the
//! sequential path. The one-off summary printed before the Criterion
//! measurements reports the observed speedup per client count.

use criterion::{criterion_group, criterion_main, Criterion};
use feddata::{Benchmark, DatasetSpec, FederatedDataset, Scale};
use fedmodels::ModelSpec;
use fedsim::{ExecutionPolicy, FederatedTrainer, TrainerConfig};
use std::time::Instant;

const CLIENT_COUNTS: [usize; 3] = [10, 50, 100];

fn dataset() -> FederatedDataset {
    // Default scale has 120 training clients, enough for 100 clients/round.
    DatasetSpec::benchmark(Benchmark::Cifar10Like, Scale::Default)
        .generate(0)
        .expect("dataset generation")
}

fn trainer(clients_per_round: usize, execution: ExecutionPolicy) -> FederatedTrainer {
    let config = TrainerConfig {
        clients_per_round,
        execution,
        ..Default::default()
    };
    FederatedTrainer::new(config).expect("valid trainer config")
}

fn time_rounds(dataset: &FederatedDataset, clients: usize, execution: ExecutionPolicy) -> f64 {
    let mut run = trainer(clients, execution)
        .start(dataset, ModelSpec::Mlp { hidden_dim: 32 }, 7)
        .expect("training start");
    // One warm-up round, then time a fixed batch.
    run.run_round(dataset).expect("warm-up round");
    let rounds = 5;
    let start = Instant::now();
    run.run_rounds(dataset, rounds).expect("timed rounds");
    start.elapsed().as_secs_f64() / rounds as f64
}

fn print_speedup_summary(dataset: &FederatedDataset) {
    let cores = std::thread::available_parallelism().map_or(1, |n| n.get());
    println!("\nmicro_round_throughput: sequential vs parallel run_round ({cores} cores)");
    let mut summary = fedbench::BenchSummary::new("micro_round_throughput");
    for &clients in &CLIENT_COUNTS {
        let sequential = time_rounds(dataset, clients, ExecutionPolicy::Sequential);
        let parallel = time_rounds(dataset, clients, ExecutionPolicy::from_env());
        summary.push(&format!("sequential_{clients}_clients"), sequential, 1);
        summary.push(&format!("parallel_{clients}_clients"), parallel, 1);
        println!(
            "  {clients:>3} clients/round: sequential {:8.2} ms, parallel {:8.2} ms, speedup {:.2}x",
            sequential * 1e3,
            parallel * 1e3,
            sequential / parallel
        );
    }
    summary.write_if_enabled();
}

fn bench(c: &mut Criterion) {
    let dataset = dataset();
    print_speedup_summary(&dataset);
    let mut group = c.benchmark_group("micro_round_throughput");
    group.sample_size(10);
    for &clients in &CLIENT_COUNTS {
        for (label, execution) in [
            ("sequential", ExecutionPolicy::Sequential),
            ("parallel", ExecutionPolicy::from_env()),
        ] {
            let trainer = trainer(clients, execution);
            group.bench_function(format!("{label}_{clients}_clients"), |b| {
                let mut run = trainer
                    .start(&dataset, ModelSpec::Mlp { hidden_dim: 32 }, 7)
                    .expect("training start");
                b.iter(|| run.run_round(&dataset).expect("benchmarked round"));
            });
        }
    }
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
