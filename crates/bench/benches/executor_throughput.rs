//! Wall-clock throughput of the event-driven executor: the blocking driver
//! versus cross-trial concurrent evaluation on the persistent real thread
//! pool.
//!
//! The campaign is async ASHA under heavy-tailed virtual stragglers — the
//! workload the concurrent driver exists for: up to eight virtual trials in
//! flight at every instant. Each evaluation *sleeps* for its virtual
//! duration scaled down to a real latency, modeling what federated
//! hyperparameter tuning actually waits on — remote clients training between
//! server rounds — rather than local CPU work. That makes the benchmark
//! honest on any host, **including a single-core container**: the speedup
//! comes from latency hiding (eight sleeps overlapped on eight real
//! threads), not from multiplying CPU throughput, so it holds wherever
//! `std::thread` can park eight sleepers at once.
//!
//! The blocking driver serializes every sleep (its wall clock is the sum of
//! all evaluation latencies); the concurrent driver overlaps all in-flight
//! trials, so its wall clock tracks the virtual critical path instead. The
//! bench asserts the outcomes are **bit-identical** before comparing clocks,
//! and asserts the 8-thread speedup is at least [`SPEEDUP_FLOOR`].
//!
//! With `FEDTUNE_BENCH_JSON=1` the summary lands in
//! `BENCH_executor_throughput.json`, which CI's `executor-smoke` job gates
//! against the committed baseline via `perf_compare` (a >30% throughput drop
//! fails). Sleep-backed entries are stable under CI noise because the
//! measured time is parked, not scheduled.

use criterion::{criterion_group, criterion_main, Criterion};
use fedhpo::{AsyncAsha, IntoScheduler, Scheduler, SearchSpace, TrialRequest, TrialResult};
use fedsim::clock::{ClientRuntimeModel, CostModel};
use fedtune_core::{
    run_event_driven, run_event_driven_concurrent, BatchObjective, ConcurrentEval,
    ConcurrentObjective, ConcurrentSink, EvalOutput, EventDrivenOutcome, Result as CoreResult,
    VirtualExecution,
};
use std::collections::HashMap;
use std::time::{Duration, Instant};

/// Virtual workers, and the real thread count the headline entry uses: the
/// concurrent driver can only overlap as many evaluations as the virtual
/// service keeps in flight.
const VIRTUAL_WORKERS: usize = 8;

/// Target total evaluation latency of the whole campaign, in real seconds.
/// The blocking driver pays roughly this much wall clock; the concurrent
/// driver overlaps it across threads.
const TARGET_TOTAL_SLEEP: f64 = 6.0;

/// The committed floor on the 8-thread speedup over the blocking driver.
const SPEEDUP_FLOOR: f64 = 3.0;

fn ladder() -> fedhpo::Asha {
    fedhpo::Asha::new(24, 3, 1, 9)
}

fn straggler_sim() -> VirtualExecution {
    let cost = CostModel::HeterogeneousClients(ClientRuntimeModel::heavy_tailed(80, 8, 23));
    VirtualExecution::new(VIRTUAL_WORKERS, cost)
}

fn space_1d() -> SearchSpace {
    SearchSpace::new().with_uniform("x", 0.0, 1.0).unwrap()
}

fn analytic_score(request: &TrialRequest) -> f64 {
    let x = request.config.values()[0];
    (x - 0.3).abs() + 1.0 / (request.resource as f64 + 1.0)
}

/// The `Sync` half: scores analytically and sleeps for the evaluation's
/// virtual duration scaled into real seconds — the remote-client latency the
/// tuning service waits on. Purity contract: both the score and the sleep
/// are functions of `(request coordinates, trained rounds so far)` only.
struct LatencyEval {
    space: SearchSpace,
    cost: CostModel,
    time_scale: f64,
}

impl LatencyEval {
    fn run(&self, trained: &mut usize, request: &TrialRequest) -> CoreResult<EvalOutput> {
        let fingerprint = self.space.canonical_fingerprint(&request.config)?;
        let already = *trained;
        let reached = already.max(request.resource);
        let virtual_seconds = self.cost.evaluation_seconds(fingerprint, already, reached);
        if self.time_scale > 0.0 {
            std::thread::sleep(Duration::from_secs_f64(virtual_seconds * self.time_scale));
        }
        let delta = reached - already;
        *trained = reached;
        Ok(EvalOutput {
            noisy_score: analytic_score(request),
            true_error: analytic_score(request),
            rounds_delta: delta,
            resource_completed: reached,
        })
    }
}

impl ConcurrentEval for LatencyEval {
    type State = usize;

    fn evaluate(&self, state: &mut usize, request: &TrialRequest) -> CoreResult<EvalOutput> {
        self.run(state, request)
    }
}

/// Driver-thread half: parks each trial's trained-rounds mirror between
/// dispatches and counts committed rounds.
#[derive(Default)]
struct LatencySink {
    trained: HashMap<usize, usize>,
    committed_rounds: usize,
}

impl ConcurrentSink for LatencySink {
    type State = usize;

    fn take_state(&mut self, trial_id: usize) -> usize {
        self.trained.remove(&trial_id).unwrap_or(0)
    }

    fn put_state(&mut self, trial_id: usize, state: usize) {
        self.trained.insert(trial_id, state);
    }

    fn commit(&mut self, _request: &TrialRequest, output: &EvalOutput, _sim_time: f64) {
        self.committed_rounds += output.rounds_delta;
    }
}

struct LatencyObjective {
    eval: LatencyEval,
    sink: LatencySink,
}

impl LatencyObjective {
    fn new(time_scale: f64) -> Self {
        LatencyObjective {
            eval: LatencyEval {
                space: space_1d(),
                cost: straggler_sim().cost,
                time_scale,
            },
            sink: LatencySink::default(),
        }
    }
}

impl ConcurrentObjective for LatencyObjective {
    type State = usize;
    type Eval = LatencyEval;
    type Sink = LatencySink;

    fn split(&mut self) -> (&LatencyEval, &mut LatencySink) {
        (&self.eval, &mut self.sink)
    }
}

/// The same objective through the blocking driver: every sleep serialized.
impl BatchObjective for LatencyObjective {
    fn evaluate_batch(&mut self, requests: &[TrialRequest]) -> CoreResult<Vec<TrialResult>> {
        requests
            .iter()
            .map(|request| {
                let mut state = self.sink.take_state(request.trial_id);
                let output = self.eval.run(&mut state, request)?;
                self.sink.put_state(request.trial_id, state);
                self.sink.committed_rounds += output.rounds_delta;
                Ok(TrialResult::of(request, output.noisy_score))
            })
            .collect()
    }
}

enum Driver {
    Blocking,
    Concurrent(usize),
}

/// One full campaign under the given driver, returning the outcome and its
/// wall clock.
fn campaign(driver: &Driver, time_scale: f64) -> (EventDrivenOutcome, f64, usize) {
    let mut scheduler = AsyncAsha::from_ladder(ladder()).scheduler().unwrap();
    let scheduler: &mut dyn Scheduler = &mut scheduler;
    let mut objective = LatencyObjective::new(time_scale);
    let space = space_1d();
    let mut rng = fedmath::rng::rng_for(9, 0);
    let sim = straggler_sim();
    let start = Instant::now();
    let outcome = match driver {
        Driver::Blocking => {
            run_event_driven(scheduler, &space, &mut objective, &mut rng, &sim).unwrap()
        }
        Driver::Concurrent(threads) => {
            run_event_driven_concurrent(scheduler, &space, &mut objective, &mut rng, &sim, *threads)
                .unwrap()
        }
    };
    let wall = start.elapsed().as_secs_f64();
    assert!(outcome.finished);
    (outcome, wall, objective.sink.committed_rounds)
}

fn regenerate() {
    let mut summary = fedbench::BenchSummary::new("executor_throughput");

    // Calibrate the virtual→real latency scale from a dry run (no sleeps):
    // total virtual busy time comes from the timeline, which is identical
    // for every driver and thread count.
    let (dry, _, _) = campaign(&Driver::Blocking, 0.0);
    let total_virtual: f64 = dry.timeline.iter().map(|s| s.end - s.start).sum();
    assert!(total_virtual > 0.0);
    let time_scale = TARGET_TOTAL_SLEEP / total_virtual;
    let evals = dry.outcome.num_evaluations() as u64;
    println!(
        "campaign: {evals} evaluations, {:.1} virtual busy seconds, \
         time scale {time_scale:.6} real s per virtual s",
        total_virtual
    );

    // The blocking reference: every evaluation latency paid in sequence.
    let (blocking, blocking_wall, blocking_rounds) = campaign(&Driver::Blocking, time_scale);
    assert_eq!(blocking, dry, "sleeping must not move a bit");
    summary.push("campaign_blocking_1thread", blocking_wall, evals);

    // The concurrent driver at 4 and 8 real threads: same bits, less wall.
    let mut speedup_8 = 0.0;
    for threads in [4usize, 8] {
        let (concurrent, wall, rounds) = campaign(&Driver::Concurrent(threads), time_scale);
        assert_eq!(
            concurrent, blocking,
            "{threads} threads: concurrent outcome diverged from blocking"
        );
        assert_eq!(rounds, blocking_rounds, "{threads} threads");
        summary.push(
            &format!("campaign_concurrent_{threads}threads"),
            wall,
            evals,
        );
        let speedup = blocking_wall / wall;
        println!(
            "{threads} threads: {wall:.2}s wall vs blocking {blocking_wall:.2}s \
             — {speedup:.2}x"
        );
        if threads == 8 {
            speedup_8 = speedup;
        }
    }
    assert!(
        speedup_8 >= SPEEDUP_FLOOR,
        "8-thread concurrent evaluation must be at least {SPEEDUP_FLOOR}x \
         the blocking driver, got {speedup_8:.2}x"
    );
    // Gate the ratio itself: throughput_per_second of this entry is the
    // speedup ×1000, so perf_compare's 30% window tracks it directly.
    summary.push("speedup_8threads_x1000", 1.0, (speedup_8 * 1000.0) as u64);
    summary.record_sim(blocking.sim_elapsed, evals);
    summary.write_if_enabled();
}

fn bench(c: &mut Criterion) {
    regenerate();

    // Micro: pure executor machinery — the same campaign with zero latency,
    // measuring sans-io poll/dispatch/deliver overhead per evaluation.
    let mut group = c.benchmark_group("executor_throughput");
    group.sample_size(10);
    group.bench_function("campaign_overhead_no_latency", |b| {
        b.iter(|| campaign(&Driver::Blocking, 0.0))
    });
    group.bench_function("campaign_overhead_concurrent_8threads", |b| {
        b.iter(|| campaign(&Driver::Concurrent(8), 0.0))
    });
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
