//! Ablation: one-shot Laplace top-k selection (Qiao et al. 2021, used by the
//! paper) vs. a naive per-candidate Laplace release under the same total
//! privacy budget.
//!
//! Both mechanisms satisfy the same ε, but the one-shot mechanism perturbs
//! each score once with a larger scale, whereas the naive baseline splits the
//! budget across candidates. The ablation reports how often each mechanism
//! identifies the truly best configuration.

use criterion::{criterion_group, criterion_main, Criterion};
use feddp::laplace::{sample_laplace, PrivacyBudget};
use feddp::topk::{one_shot_noise_scale, one_shot_top_k};

/// Synthetic candidate accuracies: a clear winner ahead by 5 points.
fn candidate_accuracies() -> Vec<f64> {
    let mut scores: Vec<f64> = (0..16).map(|i| 0.55 + 0.002 * i as f64).collect();
    scores[7] = 0.65;
    scores
}

fn one_shot_hit_rate(epsilon: f64, sample_size: usize, trials: u64) -> f64 {
    let scores = candidate_accuracies();
    let scale = one_shot_noise_scale(PrivacyBudget::Finite(epsilon), 1, 1, sample_size)
        .expect("noise scale");
    let mut hits = 0;
    for t in 0..trials {
        let mut rng = fedmath::rng::rng_for(1, t);
        let top = one_shot_top_k(&scores, 1, scale, &mut rng).expect("top-k");
        if top[0] == 7 {
            hits += 1;
        }
    }
    hits as f64 / trials as f64
}

fn naive_hit_rate(epsilon: f64, sample_size: usize, trials: u64) -> f64 {
    let scores = candidate_accuracies();
    // The naive mechanism answers one query per candidate, so the per-query
    // budget is epsilon / n and the Laplace scale is n / (epsilon * |S|).
    let scale = scores.len() as f64 / (epsilon * sample_size as f64);
    let mut hits = 0;
    for t in 0..trials {
        let mut rng = fedmath::rng::rng_for(2, t);
        let noisy: Vec<f64> = scores
            .iter()
            .map(|&s| s + sample_laplace(&mut rng, scale))
            .collect();
        if fedmath::stats::argmax(&noisy).expect("argmax") == 7 {
            hits += 1;
        }
    }
    hits as f64 / trials as f64
}

fn regenerate() {
    println!("\n== ablation: one-shot Laplace top-k vs naive per-candidate release ==");
    println!("(16 candidates, winner ahead by 5 accuracy points, |S| = 10 clients)");
    for &epsilon in &[0.1, 1.0, 10.0, 100.0] {
        let one_shot = one_shot_hit_rate(epsilon, 10, 2000);
        let naive = naive_hit_rate(epsilon, 10, 2000);
        println!(
            "epsilon = {epsilon:>6}: one-shot selects the true best {:>5.1}% of the time, naive {:>5.1}%",
            one_shot * 100.0,
            naive * 100.0
        );
    }
}

fn bench(c: &mut Criterion) {
    regenerate();
    let mut group = c.benchmark_group("abl_topk");
    group.sample_size(20);
    group.bench_function("one_shot_selection", |b| {
        let scores = candidate_accuracies();
        let mut rng = fedmath::rng::rng_for(3, 0);
        b.iter(|| one_shot_top_k(&scores, 4, 0.5, &mut rng).expect("top-k"))
    });
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
