//! Regenerates Fig. 5: RS performance vs. training budget at several subsampling rates.

use criterion::{criterion_group, criterion_main, Criterion};
use feddata::Benchmark;
use fedtune_core::experiments::subsampling::{budget_report, run_budget_curves};

fn regenerate() {
    let scale = fedbench::report_scale();
    let mut curves = Vec::new();
    for &b in &Benchmark::ALL {
        curves.push(run_budget_curves(b, &scale, 0).expect("budget curves"));
    }
    fedbench::print_report(&budget_report(&curves));
}

fn bench(c: &mut Criterion) {
    regenerate();
    let scale = fedbench::measurement_scale();
    let mut group = c.benchmark_group("fig05_budget");
    group.sample_size(10);
    group.bench_function("cifar10_like_curves", |b| {
        b.iter(|| run_budget_curves(Benchmark::Cifar10Like, &scale, 0).expect("budget curves"))
    });
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
