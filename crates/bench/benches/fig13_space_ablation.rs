//! Regenerates Fig. 13: search-space size under noisy evaluation.

use criterion::{criterion_group, criterion_main, Criterion};
use feddata::Benchmark;
use fedtune_core::experiments::space_ablation::run_space_ablation;

fn regenerate() {
    let scale = fedbench::report_scale();
    for &b in &[Benchmark::Cifar10Like, Benchmark::FemnistLike] {
        let ablation = run_space_ablation(b, &scale, 0).expect("space ablation");
        fedbench::print_report(&ablation.to_report());
    }
}

fn bench(c: &mut Criterion) {
    regenerate();
    let scale = fedbench::measurement_scale();
    let mut group = c.benchmark_group("fig13_space_ablation");
    group.sample_size(10);
    group.bench_function("cifar10_like", |b| {
        b.iter(|| run_space_ablation(Benchmark::Cifar10Like, &scale, 0).expect("space ablation"))
    });
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
