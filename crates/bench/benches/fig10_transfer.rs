//! Regenerates Fig. 10/14: hyperparameter transfer between dataset pairs.

use criterion::{criterion_group, criterion_main, Criterion};
use fedtune_core::experiments::proxy::{run_transfer_pairs, transfer_report};

fn regenerate() {
    let scale = fedbench::report_scale();
    let analyses = run_transfer_pairs(&scale, 0).expect("transfer analysis");
    fedbench::print_report(&transfer_report(&analyses));
}

fn bench(c: &mut Criterion) {
    regenerate();
    let scale = fedbench::measurement_scale();
    let mut group = c.benchmark_group("fig10_transfer");
    group.sample_size(10);
    group.bench_function("all_pairs", |b| {
        b.iter(|| run_transfer_pairs(&scale, 0).expect("transfer analysis"))
    });
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
