//! Trial-ledger storage-engine throughput, plus the 10M-trial
//! record→replay cycle with bounded memory asserted.
//!
//! The one-off summary measures, at `FEDTUNE_LEDGER_TRIALS` scale (default
//! four million):
//!
//! - **group-commit ingest** — raw [`fedstore::SegmentWriter`] appends with
//!   one `sync_data` per 64Ki-record batch, the bounded-memory bulk path;
//! - **streaming replay** — [`fedstore::segment::for_each_record`] back over
//!   every frame, CRC-verified, never holding the ledger in memory;
//! - **indexed ingest** — `TrialStore::insert_many` at one tenth the scale,
//!   paying content-addressed dedup and index maintenance;
//! - **JSONL ingest** — the interchange backend at one hundredth the scale,
//!   for the binary-vs-text narrative.
//!
//! A separate scale phase then runs the full record→replay cycle at
//! `FEDTUNE_LEDGER_SCALE_TRIALS` (default ten million). Peak RSS is read
//! before and after: the delta must stay under a fixed cap whatever the
//! trial count, asserting the cycle streams in bounded memory. The scale
//! phase is deliberately *not* a gated summary entry — at half-gigabyte
//! ledger sizes its wall time measures the host's page provisioning and
//! writeback, not the engine, and would flake a relative gate.
//!
//! With `FEDTUNE_BENCH_JSON=1` the summary lands in
//! `BENCH_ledger_throughput.json`, which CI gates against the committed
//! baseline via `perf_compare` (a >30% throughput drop fails).

use criterion::{criterion_group, criterion_main, Criterion};
use fedstore::segment::for_each_record;
use fedstore::{
    ConfigKey, Durability, Provenance, SegmentConfig, SegmentWriter, TrialRecord, TrialStore,
};
use std::path::PathBuf;

/// Group-commit batch: one `sync_data` per this many appended records.
const COMMIT_EVERY: u64 = 1 << 16;

/// The bounded-memory cap on the whole record→replay cycle's RSS growth.
/// The 10M-trial ledger is ~700 MB on disk; the cycle must not scale with
/// it.
const RSS_CAP_KB: u64 = 256 * 1024;

/// Absolute ingest floor (trials/s): the engine must sustain a million
/// group-committed trials per second, with `perf_compare` handling the
/// finer-grained 30% relative gate on top.
const INGEST_FLOOR: f64 = 1_000_000.0;

fn env_trials(var: &str, default: u64) -> u64 {
    std::env::var(var)
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(default)
}

fn provenance() -> Provenance {
    Provenance {
        benchmark: "cifar10-like".into(),
        scale: "bench".into(),
        seed: 42,
        noise: "noisy".into(),
    }
}

/// The i-th synthetic trial: unique key, deterministic scores.
fn trial(i: u64, provenance: &Provenance) -> TrialRecord {
    let x = (i % 1_000_000) as f64 * 1e-6;
    TrialRecord {
        config: ConfigKey::from_canonical_values(&[x, (i / 1_000_000) as f64])
            .expect("finite values"),
        resource: 1 + (i % 50) as usize,
        rep: 0,
        noisy_score: x * 0.5 + 0.1,
        true_error: x * 0.5,
        sim_time: x,
        provenance: provenance.clone(),
    }
}

/// Scratch root for bench ledgers. The bench measures the storage engine
/// (framing, CRC, syscall overhead), not the host's disk, so it prefers
/// tmpfs when available; `FEDTUNE_LEDGER_DIR` overrides (set it to a real
/// mount to measure end-to-end disk throughput instead).
fn scratch_root() -> PathBuf {
    if let Ok(dir) = std::env::var("FEDTUNE_LEDGER_DIR") {
        return PathBuf::from(dir);
    }
    let shm = PathBuf::from("/dev/shm");
    if shm.is_dir() {
        return shm;
    }
    std::env::temp_dir()
}

fn bench_dir(tag: &str) -> PathBuf {
    let dir = scratch_root().join(format!("fedtune_ledger_bench_{tag}"));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

/// Records `n` trials with group commit and streams them all back,
/// returning (ledger bytes, ingest seconds, replay seconds). The shared
/// engine cycle behind both the gated entries and the 10M scale phase.
fn record_replay_cycle(dir: &PathBuf, n: u64, p: &Provenance) -> (u64, f64, f64) {
    let config = SegmentConfig {
        segment_bytes: 64 << 20,
        durability: Durability::EveryN(COMMIT_EVERY),
    };
    let start = std::time::Instant::now();
    let mut writer = SegmentWriter::open(dir, config).expect("open writer");
    for i in 0..n {
        writer.append_unsynced(&trial(i, p)).expect("append");
        if writer.unsynced() >= COMMIT_EVERY {
            writer.group_commit().expect("group commit");
        }
    }
    writer.flush().expect("flush");
    let bytes = writer.bytes_appended();
    drop(writer);
    let ingest_seconds = start.elapsed().as_secs_f64();

    let start = std::time::Instant::now();
    let mut replayed = 0u64;
    let mut checksum = 0u64;
    for_each_record(dir, |r| {
        replayed += 1;
        checksum ^= r.noisy_score.to_bits().rotate_left((replayed % 63) as u32);
        Ok(())
    })
    .expect("replay");
    let replay_seconds = start.elapsed().as_secs_f64();
    assert_eq!(replayed, n, "replay must stream back every recorded trial");
    assert_ne!(checksum, 0, "scores must round-trip");
    (bytes, ingest_seconds, replay_seconds)
}

fn regenerate() {
    let mut summary = fedbench::BenchSummary::new("ledger_throughput");
    let n = env_trials("FEDTUNE_LEDGER_TRIALS", 4_000_000);
    let p = provenance();

    // 1 + 2. Group-commit ingest and streaming replay: the engine numbers,
    // measured at a working-set size that stays in memory so the gate tracks
    // the storage engine rather than the host's paging behaviour.
    let dir = bench_dir("ingest");
    let (bytes, ingest_seconds, replay_seconds) = record_replay_cycle(&dir, n, &p);
    summary.push("segment_group_commit_ingest", ingest_seconds, n);
    summary.push("segment_stream_replay", replay_seconds, n);
    let _ = std::fs::remove_dir_all(&dir);

    // 3. Indexed ingest through the store (dedup + index maintenance).
    let indexed_n = (n / 10).max(1);
    let dir = bench_dir("indexed");
    summary.time("store_insert_many_indexed", indexed_n, || {
        let mut store = TrialStore::open_segments_with(
            &dir,
            SegmentConfig {
                durability: Durability::OnFlush,
                ..SegmentConfig::default()
            },
        )
        .expect("open store");
        let mut batch = Vec::with_capacity(4096);
        for i in 0..indexed_n {
            batch.push(trial(i, &p));
            if batch.len() == 4096 {
                store.insert_many(batch.drain(..)).expect("insert batch");
            }
        }
        store.insert_many(batch.drain(..)).expect("insert tail");
        store.flush().expect("flush");
        assert_eq!(store.len() as u64, indexed_n);
    });
    let _ = std::fs::remove_dir_all(&dir);

    // 4. The JSONL interchange backend, for the binary-vs-text narrative.
    let jsonl_n = (n / 100).max(1);
    let dir = bench_dir("jsonl");
    std::fs::create_dir_all(&dir).expect("create dir");
    summary.time("jsonl_buffered_ingest", jsonl_n, || {
        let mut store = TrialStore::open(dir.join("ledger.jsonl")).expect("open jsonl");
        store.set_durability(Durability::OnFlush);
        let mut batch = Vec::with_capacity(4096);
        for i in 0..jsonl_n {
            batch.push(trial(i, &p));
            if batch.len() == 4096 {
                store.insert_many(batch.drain(..)).expect("insert batch");
            }
        }
        store.insert_many(batch.drain(..)).expect("insert tail");
        store.flush().expect("flush");
    });
    let _ = std::fs::remove_dir_all(&dir);

    // 5. The scale phase: the full record→replay cycle at ten million
    // trials, gated on *memory*, not time — its wall clock is dominated by
    // how fast the host provisions and writes back half a gigabyte of pages.
    let scale_n = env_trials("FEDTUNE_LEDGER_SCALE_TRIALS", 10_000_000);
    let dir = bench_dir("scale");
    let rss_before = fedbench::peak_rss_kb();
    let (scale_bytes, scale_ingest_s, scale_replay_s) = record_replay_cycle(&dir, scale_n, &p);
    if let (Some(before), Some(after)) = (rss_before, fedbench::peak_rss_kb()) {
        let grew = after.saturating_sub(before);
        assert!(
            grew < RSS_CAP_KB,
            "record→replay of {scale_n} trials grew peak RSS by {grew} KiB (cap {RSS_CAP_KB} KiB)"
        );
        println!(
            "scale cycle: {scale_n} trials recorded in {scale_ingest_s:.1}s, \
             replayed in {scale_replay_s:.1}s, peak RSS growth {grew} KiB"
        );
    }
    let _ = std::fs::remove_dir_all(&dir);

    let ingest = summary.entries[0].throughput_per_second;
    let replay = summary.entries[1].throughput_per_second;
    let bytes_per_trial = scale_bytes as f64 / scale_n as f64;
    assert!((bytes as f64 / n as f64 - bytes_per_trial).abs() < 1.0);
    summary.record_ledger(ingest, replay, bytes_per_trial);
    assert!(
        ingest >= INGEST_FLOOR,
        "group-commit ingest collapsed: {ingest:.0} trials/s < {INGEST_FLOOR:.0}"
    );
    println!(
        "\nledger throughput over {n} trials: ingest {:.2}M/s, replay {:.2}M/s, {bytes_per_trial:.1} B/trial",
        ingest / 1e6,
        replay / 1e6,
    );
    summary.write_if_enabled();
}

fn bench(c: &mut Criterion) {
    regenerate();
    let p = provenance();

    let mut group = c.benchmark_group("ledger_throughput");
    group.sample_size(10);

    // Micro: appending 10k records (group-committed once per iteration).
    let dir = bench_dir("criterion_append");
    let mut writer = SegmentWriter::open(
        &dir,
        SegmentConfig {
            segment_bytes: 64 << 20,
            durability: Durability::OnFlush,
        },
    )
    .expect("open writer");
    let mut next = 0u64;
    group.bench_function("append_10k_group_commit", |b| {
        b.iter(|| {
            for _ in 0..10_000 {
                writer.append_unsynced(&trial(next, &p)).expect("append");
                next += 1;
            }
            writer.flush().expect("flush");
        })
    });
    drop(writer);
    let _ = std::fs::remove_dir_all(&dir);

    // Micro: streaming 100k records back.
    let dir = bench_dir("criterion_replay");
    let mut writer = SegmentWriter::open(&dir, SegmentConfig::group_commit()).expect("open");
    for i in 0..100_000 {
        writer.append_unsynced(&trial(i, &p)).expect("append");
    }
    writer.flush().expect("flush");
    drop(writer);
    group.bench_function("replay_100k", |b| {
        b.iter(|| {
            let mut count = 0u64;
            for_each_record(&dir, |_| {
                count += 1;
                Ok(())
            })
            .expect("replay");
            assert_eq!(count, 100_000);
        })
    });
    let _ = std::fs::remove_dir_all(&dir);
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
