//! Regenerates Fig. 15/16: method comparison bars at one-third and full budget.

use criterion::{criterion_group, criterion_main, Criterion};
use feddata::Benchmark;
use fedtune_core::experiments::methods::{paper_noise_settings, run_method_comparison};

fn regenerate() {
    let scale = fedbench::report_scale();
    let comparison =
        run_method_comparison(Benchmark::Cifar10Like, &scale, &paper_noise_settings(), 0)
            .expect("method comparison");
    let third = (scale.total_budget / 3).max(1);
    fedbench::print_report(
        &comparison
            .to_bars_report("fig15", third)
            .expect("fig15 bars"),
    );
    fedbench::print_report(
        &comparison
            .to_bars_report("fig16", scale.total_budget)
            .expect("fig16 bars"),
    );
}

fn bench(c: &mut Criterion) {
    regenerate();
    let scale = fedbench::measurement_scale();
    let mut group = c.benchmark_group("fig15_16_method_bars");
    group.sample_size(10);
    group.bench_function("cifar10_like_bars", |b| {
        b.iter(|| {
            let comparison =
                run_method_comparison(Benchmark::Cifar10Like, &scale, &paper_noise_settings(), 0)
                    .expect("method comparison");
            comparison
                .to_bars_report("fig16", scale.total_budget)
                .expect("fig16 bars")
        })
    });
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
