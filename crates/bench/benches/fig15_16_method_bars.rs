//! Regenerates Fig. 15/16: method comparison bars at one-third and full
//! budget, through the batched ask/tell scheduler with the ASHA and
//! re-evaluation extensions alongside the paper's four methods.

use criterion::{criterion_group, criterion_main, Criterion};
use feddata::Benchmark;
use fedtune_core::experiments::methods::{
    paper_noise_settings, run_method_comparison_scheduled, TuningMethod,
};
use fedtune_core::ExecutionPolicy;

fn regenerate() {
    let scale = fedbench::report_scale();
    let mut summary = fedbench::BenchSummary::new("fig15_16_method_bars");
    let campaigns = (TuningMethod::EXTENDED.len() * 2 * scale.method_trials) as u64;
    let comparison = summary.time("scheduled_extended_parallel", campaigns, || {
        run_method_comparison_scheduled(
            ExecutionPolicy::from_env(),
            Benchmark::Cifar10Like,
            &scale,
            &TuningMethod::EXTENDED,
            &paper_noise_settings(),
            0,
        )
        .expect("scheduled method comparison")
    });
    summary.write_if_enabled();
    let third = (scale.total_budget / 3).max(1);
    fedbench::print_report(
        &comparison
            .to_bars_report("fig15", third)
            .expect("fig15 bars"),
    );
    fedbench::print_report(
        &comparison
            .to_bars_report("fig16", scale.total_budget)
            .expect("fig16 bars"),
    );
}

fn bench(c: &mut Criterion) {
    regenerate();
    let scale = fedbench::measurement_scale();
    let mut group = c.benchmark_group("fig15_16_method_bars");
    group.sample_size(10);
    group.bench_function("cifar10_like_bars", |b| {
        b.iter(|| {
            let comparison = run_method_comparison_scheduled(
                ExecutionPolicy::from_env(),
                Benchmark::Cifar10Like,
                &scale,
                &TuningMethod::EXTENDED,
                &paper_noise_settings(),
                0,
            )
            .expect("scheduled method comparison");
            comparison
                .to_bars_report("fig16", scale.total_budget)
                .expect("fig16 bars")
        })
    });
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
