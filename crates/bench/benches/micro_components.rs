//! Component micro-benchmarks: the numerical kernels and simulator steps the
//! experiment harness is built from.

use criterion::{criterion_group, criterion_main, Criterion};
use feddata::{Benchmark, DatasetSpec, Scale};
use fedmath::Matrix;
use fedmodels::{Model, ModelSpec};
use fedsim::{FederatedTrainer, TrainerConfig};

fn bench(c: &mut Criterion) {
    let mut group = c.benchmark_group("micro_components");

    // Matrix multiply at model-sized dimensions.
    let a = Matrix::from_fn(32, 32, |i, j| (i * 7 + j) as f64 * 0.01);
    let b = Matrix::from_fn(32, 32, |i, j| (i + j * 3) as f64 * 0.02);
    group.bench_function("matmul_32x32", |bch| {
        bch.iter(|| a.matmul(&b).expect("matmul"))
    });

    // Softmax over a vocabulary-sized logit vector.
    let logits: Vec<f64> = (0..64).map(|i| (i as f64).sin()).collect();
    group.bench_function("softmax_64", |bch| {
        bch.iter(|| fedmath::ops::softmax(&logits))
    });

    // Laplace sampling (the DP hot path).
    group.bench_function("laplace_sample", |bch| {
        let mut rng = fedmath::rng::rng_for(0, 0);
        bch.iter(|| feddp::laplace::sample_laplace(&mut rng, 0.5))
    });

    // Client sampling without replacement from a large population.
    group.bench_function("sample_100_of_10000", |bch| {
        let mut rng = fedmath::rng::rng_for(0, 1);
        bch.iter(|| {
            fedmath::rng::sample_without_replacement(&mut rng, 10_000, 100).expect("sample")
        })
    });

    // One federated training round and one full evaluation on a smoke dataset.
    let dataset = DatasetSpec::benchmark(Benchmark::Cifar10Like, Scale::Smoke)
        .generate(0)
        .expect("dataset");
    let trainer = FederatedTrainer::new(TrainerConfig::default()).expect("trainer");
    group.bench_function("federated_training_round", |bch| {
        let mut run = trainer
            .start(&dataset, ModelSpec::Mlp { hidden_dim: 16 }, 1)
            .expect("run");
        bch.iter(|| run.run_round(&dataset).expect("round"))
    });
    let run = trainer
        .train(&dataset, ModelSpec::Mlp { hidden_dim: 16 }, 3, 1)
        .expect("trained run");
    group.bench_function("full_validation_evaluation", |bch| {
        bch.iter(|| {
            fedsim::evaluation::evaluate_full(
                run.model(),
                &dataset,
                feddata::Split::Validation,
                fedsim::WeightingScheme::ByExamples,
            )
            .expect("evaluation")
        })
    });
    // Per-example gradient of the MLP (the innermost hot loop).
    let client = &dataset.clients(feddata::Split::Train)[0];
    group.bench_function("mlp_gradient_one_client", |bch| {
        bch.iter(|| run.model().gradient(client.examples()).expect("gradient"))
    });

    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
