//! Regenerates Fig. 6: systems heterogeneity (accuracy-biased client sampling).

use criterion::{criterion_group, criterion_main, Criterion};
use feddata::Benchmark;
use fedtune_core::experiments::heterogeneity::{
    run_systems_heterogeneity, systems_heterogeneity_report,
};

fn regenerate() {
    let scale = fedbench::report_scale();
    let mut sweeps = Vec::new();
    for &b in &Benchmark::ALL {
        sweeps.push(run_systems_heterogeneity(b, &scale, 0).expect("systems heterogeneity sweep"));
    }
    fedbench::print_report(&systems_heterogeneity_report(&sweeps));
}

fn bench(c: &mut Criterion) {
    regenerate();
    let scale = fedbench::measurement_scale();
    let mut group = c.benchmark_group("fig06_systems_heterogeneity");
    group.sample_size(10);
    group.bench_function("cifar10_like_sweep", |b| {
        b.iter(|| {
            run_systems_heterogeneity(Benchmark::Cifar10Like, &scale, 0)
                .expect("systems heterogeneity sweep")
        })
    });
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
