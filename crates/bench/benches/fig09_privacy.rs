//! Regenerates Fig. 9: random search under differentially-private evaluation.

use criterion::{criterion_group, criterion_main, Criterion};
use feddata::Benchmark;
use fedtune_core::experiments::privacy::{privacy_report, run_privacy_sweep};

fn regenerate() {
    let scale = fedbench::report_scale();
    let mut sweeps = Vec::new();
    for &b in &Benchmark::ALL {
        sweeps.push(run_privacy_sweep(b, &scale, 0).expect("privacy sweep"));
    }
    fedbench::print_report(&privacy_report(&sweeps));
}

fn bench(c: &mut Criterion) {
    regenerate();
    let scale = fedbench::measurement_scale();
    let mut group = c.benchmark_group("fig09_privacy");
    group.sample_size(10);
    group.bench_function("cifar10_like_sweep", |b| {
        b.iter(|| run_privacy_sweep(Benchmark::Cifar10Like, &scale, 0).expect("privacy sweep"))
    });
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
