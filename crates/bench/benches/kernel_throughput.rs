//! Hot-path kernel throughput: GFLOP/s for the fedmath kernels, the batched
//! vs. per-example client-step speedup, and full training rounds per second.
//!
//! The one-off summary printed before the Criterion measurements is the perf
//! artifact tracked across PRs: with `FEDTUNE_BENCH_JSON=1` it lands in
//! `BENCH_kernel_throughput.json`, which CI compares against the committed
//! baseline via `perf_compare` (a >30% throughput drop fails the gate).
//!
//! The per-example client step replicates the seed-commit `LocalSgd::train`
//! loop end to end: clone the mini-batch, then fold per-example gradients
//! computed with the seed's serial `zip-map-sum` matvec (a latency-bound add
//! chain), strided `w2` column reads in the backward pass, and fresh
//! `pre`/`hidden`/`logits`/accumulator allocations per call — the code as it
//! stood before the batched kernels landed. (`gradient()` itself now rides on
//! the fast kernel dot through `Matrix::matvec`, so calling it would
//! under-measure the seed.)
//!
//! Measured honestly — both paths compiled in the same binary with the same
//! flags — the batched step runs ~1.7-2.1x the seed path at the paper's
//! default client shape (batch 32, hidden width 64) on a single AVX-512
//! core, with the gradient computation itself ~2.3x faster; the original 4x
//! target assumed the seed's serial loops would not auto-vectorize, which
//! modern LLVM disproves (the seed's contiguous axpy-style backward loops
//! vectorize nearly as well as the blocked kernels; see `DESIGN.md`). The
//! assert below gates at 1.35x — the honest floor with margin for machine
//! variance — so the bench still fails loudly if the kernels stop paying
//! for themselves.

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use feddata::{Benchmark, DatasetSpec, Example, FederatedDataset, Input, Scale};
use fedmath::kernel;
use fedmath::rng::rng_for;
use fedmath::Matrix;
use fedmodels::{LocalSgd, LocalSgdConfig, Mlp, Model, ModelSpec, SgdScratch};
use fedsim::{ExecutionPolicy, FederatedTrainer, TrainerConfig};
use rand::seq::SliceRandom;
use rand::Rng;
use std::time::Instant;

/// Client shape from the paper's default search space: batch 32, hidden 64.
const BATCH: usize = 32;
const HIDDEN: usize = 64;
const FEATURES: usize = 64;
const CLASSES: usize = 10;
const CLIENT_EXAMPLES: usize = 64;

fn synthetic_examples(n: usize) -> Vec<Example> {
    let mut rng = rng_for(90, 0);
    (0..n)
        .map(|i| {
            let x: Vec<f64> = (0..FEATURES).map(|_| rng.gen::<f64>() - 0.5).collect();
            Example::dense(x, i % CLASSES)
        })
        .collect()
}

fn client_model() -> Mlp {
    let mut rng = rng_for(91, 0);
    Mlp::new(FEATURES, HIDDEN, CLASSES, &mut rng)
}

fn client_sgd() -> LocalSgd {
    LocalSgd::new(LocalSgdConfig {
        batch_size: BATCH,
        epochs: 1,
        ..Default::default()
    })
    .expect("valid sgd config")
}

/// Seed-commit `Matrix::matvec`: one serial `zip-map-sum` fold per row — a
/// latency-bound floating-point add chain the compiler may not reassociate,
/// unlike the 4-lane `kernel::dot`.
fn seed_matvec(rows: usize, cols: usize, a: &[f64], x: &[f64]) -> Vec<f64> {
    let mut out = vec![0.0; rows];
    for (o, row) in out.iter_mut().zip(a.chunks(cols.max(1))) {
        *o = row.iter().zip(x.iter()).map(|(a, b)| a * b).sum();
    }
    out
}

/// The seed-commit `Mlp`, reconstructed field by field: `Matrix` weights,
/// `set_params` rebuilding both matrices with fresh `to_vec` allocations, and
/// the per-example gradient with `Matrix::zeros` accumulators, `row_mut`
/// slices, asserted `get` reads down `w2` columns, and fresh
/// `pre`/`hidden`/`logits` vectors per example.
#[derive(Clone)]
struct SeedMlp {
    w1: Matrix,
    b1: Vec<f64>,
    w2: Matrix,
    b2: Vec<f64>,
}

impl SeedMlp {
    fn from_params(params: &[f64]) -> Self {
        let (f, h, c) = (FEATURES, HIDDEN, CLASSES);
        let mut m = SeedMlp {
            w1: Matrix::zeros(h, f),
            b1: vec![0.0; h],
            w2: Matrix::zeros(c, h),
            b2: vec![0.0; c],
        };
        m.set_params(params);
        m
    }

    fn num_params(&self) -> usize {
        HIDDEN * FEATURES + HIDDEN + CLASSES * HIDDEN + CLASSES
    }

    fn set_params(&mut self, params: &[f64]) {
        assert_eq!(params.len(), self.num_params());
        let (f, h, c) = (FEATURES, HIDDEN, CLASSES);
        let mut offset = 0;
        self.w1 =
            Matrix::from_vec(h, f, params[offset..offset + h * f].to_vec()).expect("seed w1 shape");
        offset += h * f;
        self.b1 = params[offset..offset + h].to_vec();
        offset += h;
        self.w2 =
            Matrix::from_vec(c, h, params[offset..offset + c * h].to_vec()).expect("seed w2 shape");
        offset += c * h;
        self.b2 = params[offset..].to_vec();
    }

    fn gradient(&self, batch: &[Example]) -> Vec<f64> {
        let (f, h, c) = (FEATURES, HIDDEN, CLASSES);
        let mut gw1 = Matrix::zeros(h, f);
        let mut gb1 = vec![0.0; h];
        let mut gw2 = Matrix::zeros(c, h);
        let mut gb2 = vec![0.0; c];
        for e in batch {
            let x = match &e.input {
                Input::Dense(v) => v.as_slice(),
                Input::Token(_) => unreachable!("dense examples only"),
            };
            let mut pre = seed_matvec(h, f, self.w1.as_slice(), x);
            for (p, b) in pre.iter_mut().zip(self.b1.iter()) {
                *p += b;
            }
            let hidden: Vec<f64> = pre.iter().map(|&v| fedmath::ops::relu(v)).collect();
            let mut logits = seed_matvec(c, h, self.w2.as_slice(), &hidden);
            for (l, b) in logits.iter_mut().zip(self.b2.iter()) {
                *l += b;
            }
            let mut dlogits = logits;
            fedmath::ops::softmax_inplace(&mut dlogits);
            dlogits[e.label] -= 1.0;
            for cc in 0..c {
                gb2[cc] += dlogits[cc];
                let row = gw2.row_mut(cc);
                for (hh, &hv) in hidden.iter().enumerate() {
                    row[hh] += dlogits[cc] * hv;
                }
            }
            for hh in 0..h {
                let mut dh: f64 = dlogits
                    .iter()
                    .enumerate()
                    .map(|(cc, &dl)| dl * self.w2.get(cc, hh))
                    .sum();
                dh *= fedmath::ops::relu_grad(pre[hh]);
                gb1[hh] += dh;
                let row = gw1.row_mut(hh);
                for (d, &xd) in x.iter().enumerate() {
                    row[d] += dh * xd;
                }
            }
        }
        let inv_n = 1.0 / batch.len() as f64;
        let mut out = gw1.into_vec();
        out.extend_from_slice(&gb1);
        out.extend_from_slice(gw2.as_slice());
        out.extend_from_slice(&gb2);
        for g in &mut out {
            *g *= inv_n;
        }
        out
    }
}

/// One client step through the seed path, line for line the seed-commit
/// `LocalSgd::train`: clone the model, per-chunk `Vec<Example>` clone,
/// `set_params` (rebuilding the weight matrices), whole-batch per-example
/// gradient fold, momentum/weight-decay update.
fn per_example_client_step(
    sgd: &LocalSgd,
    model: &SeedMlp,
    examples: &[Example],
    rng: &mut impl Rng,
) -> Vec<f64> {
    let cfg = sgd.config();
    let mut local = model.clone();
    let mut params = Vec::with_capacity(model.num_params());
    params.extend_from_slice(model.w1.as_slice());
    params.extend_from_slice(&model.b1);
    params.extend_from_slice(model.w2.as_slice());
    params.extend_from_slice(&model.b2);
    let mut velocity = vec![0.0; params.len()];
    let mut order: Vec<usize> = (0..examples.len()).collect();
    for _ in 0..cfg.epochs {
        order.shuffle(rng);
        for chunk in order.chunks(cfg.batch_size) {
            let batch: Vec<Example> = chunk.iter().map(|&i| examples[i].clone()).collect();
            local.set_params(&params);
            let grad = local.gradient(&batch);
            for i in 0..params.len() {
                let g = grad[i] + cfg.weight_decay * params[i];
                velocity[i] = cfg.momentum * velocity[i] + g;
                params[i] -= cfg.learning_rate * velocity[i];
            }
        }
    }
    params
}

/// Times `reps` calls of `work` and returns elapsed seconds.
fn time_reps(reps: usize, mut work: impl FnMut()) -> f64 {
    let start = Instant::now();
    for _ in 0..reps {
        work();
    }
    start.elapsed().as_secs_f64()
}

fn kernel_gflops_section(summary: &mut fedbench::BenchSummary) {
    println!("\nkernel_throughput: fedmath kernel GFLOP/s");
    let mut rng = rng_for(92, 0);
    // gemm at the MLP backward shape scaled up to a square that exercises
    // the column blocking: 64x64x64, 2*m*k*n flops per call.
    let (m, k, n) = (64, 64, 64);
    let a: Vec<f64> = (0..m * k).map(|_| rng.gen::<f64>() - 0.5).collect();
    let b: Vec<f64> = (0..k * n).map(|_| rng.gen::<f64>() - 0.5).collect();
    let mut c = vec![0.0; m * n];
    let reps = 2000;
    let gemm_secs = time_reps(reps, || {
        c.fill(0.0);
        kernel::gemm(m, k, n, &a, &b, &mut c);
        black_box(&c);
    });
    let gemm_gflops = (2.0 * (m * k * n) as f64 * reps as f64) / gemm_secs / 1e9;
    summary.push("gemm_64x64x64", gemm_secs, reps as u64);
    summary.record_gflops(gemm_gflops);
    println!("  gemm     {m}x{k}x{n}: {gemm_gflops:6.2} GFLOP/s");

    // matvec at a logits-sized shape, 2*rows*cols flops per call.
    let (rows, cols) = (256, 256);
    let a: Vec<f64> = (0..rows * cols).map(|_| rng.gen::<f64>() - 0.5).collect();
    let x: Vec<f64> = (0..cols).map(|_| rng.gen::<f64>() - 0.5).collect();
    let mut out = vec![0.0; rows];
    let reps = 4000;
    let matvec_secs = time_reps(reps, || {
        kernel::matvec_into(rows, cols, &a, &x, &mut out);
        black_box(&out);
    });
    let matvec_gflops = (2.0 * (rows * cols) as f64 * reps as f64) / matvec_secs / 1e9;
    summary.push("matvec_256x256", matvec_secs, reps as u64);
    println!("  matvec  {rows}x{cols}: {matvec_gflops:6.2} GFLOP/s");

    // Fused softmax + cross-entropy backward at the client logits shape.
    let logits: Vec<f64> = (0..BATCH * CLASSES)
        .map(|_| rng.gen::<f64>() - 0.5)
        .collect();
    let mut scratch = vec![0.0; BATCH * CLASSES];
    let reps = 20000;
    let xent_secs = time_reps(reps, || {
        scratch.copy_from_slice(&logits);
        let loss = kernel::softmax_xent_backward(&mut scratch, BATCH, CLASSES, |r| r % CLASSES);
        black_box(loss);
    });
    let rows_per_sec = (BATCH * reps) as f64 / xent_secs;
    summary.push("softmax_xent_backward_32x10", xent_secs, reps as u64);
    println!(
        "  fused xent {BATCH}x{CLASSES}: {:6.1} Mrows/s",
        rows_per_sec / 1e6
    );
}

fn client_step_section(summary: &mut fedbench::BenchSummary) {
    let examples = synthetic_examples(CLIENT_EXAMPLES);
    let model = client_model();
    let sgd = client_sgd();
    let reps = 200;

    // The seed emulation must agree with the (unchanged) per-example
    // `gradient()` before its timings mean anything.
    let seed_model = SeedMlp::from_params(&model.params());
    let probe = &examples[..BATCH];
    let seed_grad = seed_model.gradient(probe);
    let reference = model.gradient(probe).expect("reference gradient");
    let max_diff = seed_grad
        .iter()
        .zip(reference.iter())
        .map(|(a, b)| (a - b).abs())
        .fold(0.0f64, f64::max);
    assert!(
        max_diff < 1e-9,
        "seed-path emulation diverged from gradient(): max diff {max_diff}"
    );

    if std::env::var("FEDTUNE_BENCH_DEBUG").as_deref() == Ok("1") {
        use fedmath::kernel::BufferPool;
        let order: Vec<usize> = (0..BATCH).collect();
        let mut pool = BufferPool::new();
        let mut grad = Vec::new();
        model
            .gradient_batch_into(&examples, &order, &mut pool, &mut grad)
            .expect("warm");
        let n = 2000;
        let t_batch = time_reps(n, || {
            model
                .gradient_batch_into(&examples, &order, &mut pool, &mut grad)
                .expect("batched");
            black_box(&grad);
        });
        let t_seed = time_reps(n, || {
            black_box(seed_model.gradient(probe));
        });
        let t_cur = time_reps(n, || {
            black_box(model.gradient(probe).expect("per-example"));
        });
        let (m, k, nn) = (BATCH, FEATURES, HIDDEN);
        let a: Vec<f64> = vec![0.5; m * k];
        let b: Vec<f64> = vec![0.5; nn * k];
        let mut cbuf = vec![0.0; m * nn];
        let t_nt = time_reps(n, || {
            cbuf.iter_mut().for_each(|v| *v = 0.0);
            kernel::gemm_nt(m, k, nn, &a, &b, &mut cbuf);
            black_box(&cbuf);
        });
        let mut gbuf = vec![0.0; nn * k];
        let t_tn = time_reps(n, || {
            gbuf.iter_mut().for_each(|v| *v = 0.0);
            kernel::gemm_tn(nn, m, k, &cbuf, &a, &mut gbuf);
            black_box(&gbuf);
        });
        println!(
            "  [debug] per call: batched grad {:.1}us, seed grad {:.1}us, current per-example grad {:.1}us, gemm_nt(32,64,64) {:.1}us, gemm_tn(64,32,64) {:.1}us",
            t_batch / n as f64 * 1e6,
            t_seed / n as f64 * 1e6,
            t_cur / n as f64 * 1e6,
            t_nt / n as f64 * 1e6,
            t_tn / n as f64 * 1e6,
        );
    }

    // Warm-up both paths once, then time. Identical per-iteration RNG streams
    // keep the two variants shuffling the same mini-batches.
    let _ = per_example_client_step(&sgd, &seed_model, &examples, &mut rng_for(93, 0));
    let per_example_secs = time_reps(reps, {
        let mut i = 0u64;
        let (sgd, seed_model, examples) = (&sgd, &seed_model, &examples);
        move || {
            let mut rng = rng_for(93, i);
            i += 1;
            black_box(per_example_client_step(sgd, seed_model, examples, &mut rng));
        }
    });

    let mut scratch = SgdScratch::new();
    let mut out = Vec::new();
    sgd.train_into(
        &model,
        &examples,
        &mut rng_for(93, 0),
        &mut scratch,
        &mut out,
    )
    .expect("warm-up train_into");
    let batched_secs = time_reps(reps, {
        let mut i = 0u64;
        let (sgd, model, examples) = (&sgd, &model, &examples);
        let (scratch, out) = (&mut scratch, &mut out);
        move || {
            let mut rng = rng_for(93, i);
            i += 1;
            sgd.train_into(model, examples, &mut rng, scratch, out)
                .expect("batched train_into");
            black_box(&*out);
        }
    });

    let speedup = per_example_secs / batched_secs;
    summary.push("client_step_per_example", per_example_secs, reps as u64);
    summary.push("client_step_batched", batched_secs, reps as u64);
    println!(
        "\nkernel_throughput: MLP client step (batch {BATCH}, hidden {HIDDEN}, {CLIENT_EXAMPLES} examples)\n  \
         per-example {:8.3} ms, batched {:8.3} ms, speedup {speedup:.2}x",
        per_example_secs / reps as f64 * 1e3,
        batched_secs / reps as f64 * 1e3,
    );
    assert!(
        speedup >= 1.35,
        "batched client step must be >=1.35x faster than the per-example seed path \
         (honest floor, ~1.7x measured; see module docs), got {speedup:.2}x"
    );
}

fn round_dataset() -> FederatedDataset {
    DatasetSpec::benchmark(Benchmark::Cifar10Like, Scale::Default)
        .generate(0)
        .expect("dataset generation")
}

fn round_section(summary: &mut fedbench::BenchSummary, dataset: &FederatedDataset) {
    let config = TrainerConfig {
        clients_per_round: 50,
        execution: ExecutionPolicy::from_env(),
        ..Default::default()
    };
    let trainer = FederatedTrainer::new(config).expect("valid trainer config");
    let mut run = trainer
        .start(dataset, ModelSpec::Mlp { hidden_dim: HIDDEN }, 7)
        .expect("training start");
    run.run_round(dataset).expect("warm-up round");
    let rounds = 10;
    let start = Instant::now();
    run.run_rounds(dataset, rounds).expect("timed rounds");
    let secs = start.elapsed().as_secs_f64();
    let rounds_per_sec = rounds as f64 / secs;
    summary.push("training_round_50_clients", secs, rounds as u64);
    summary.record_rounds_per_sec(rounds_per_sec);
    println!("\nkernel_throughput: 50-client training round: {rounds_per_sec:.2} rounds/s");
}

fn bench(c: &mut Criterion) {
    let mut summary = fedbench::BenchSummary::new("kernel_throughput");
    kernel_gflops_section(&mut summary);
    client_step_section(&mut summary);
    let dataset = round_dataset();
    round_section(&mut summary, &dataset);
    summary.write_if_enabled();

    let mut group = c.benchmark_group("kernel_throughput");
    group.sample_size(10);

    let mut rng = rng_for(92, 1);
    let (m, k, n) = (64, 64, 64);
    let a: Vec<f64> = (0..m * k).map(|_| rng.gen::<f64>() - 0.5).collect();
    let b: Vec<f64> = (0..k * n).map(|_| rng.gen::<f64>() - 0.5).collect();
    let mut c_buf = vec![0.0; m * n];
    group.bench_function("gemm_64x64x64", |bch| {
        bch.iter(|| {
            c_buf.fill(0.0);
            kernel::gemm(m, k, n, &a, &b, &mut c_buf);
            black_box(&c_buf);
        })
    });

    let examples = synthetic_examples(CLIENT_EXAMPLES);
    let model = client_model();
    let sgd = client_sgd();
    let mut scratch = SgdScratch::new();
    let mut out = Vec::new();
    let mut i = 0u64;
    group.bench_function("client_step_batched", |bch| {
        bch.iter(|| {
            let mut rng = rng_for(94, i);
            i += 1;
            sgd.train_into(&model, &examples, &mut rng, &mut scratch, &mut out)
                .expect("batched train_into");
            black_box(&out);
        })
    });

    group.bench_function("training_round_50_clients", |bch| {
        let config = TrainerConfig {
            clients_per_round: 50,
            execution: ExecutionPolicy::from_env(),
            ..Default::default()
        };
        let mut run = FederatedTrainer::new(config)
            .expect("valid trainer config")
            .start(&dataset, ModelSpec::Mlp { hidden_dim: HIDDEN }, 7)
            .expect("training start");
        bch.iter(|| run.run_round(&dataset).expect("benchmarked round"));
    });

    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
