//! Regenerates Fig. 1: headline comparison of tuning methods under noise vs. proxy RS.

use criterion::{criterion_group, criterion_main, Criterion};
use fedtune_core::experiments::methods::run_headline;

fn regenerate() {
    let scale = fedbench::report_scale();
    let headline = run_headline(&scale, 0).expect("headline experiment");
    fedbench::print_report(&headline.to_report());
}

fn bench(c: &mut Criterion) {
    regenerate();
    let scale = fedbench::measurement_scale();
    let mut group = c.benchmark_group("fig01_headline");
    group.sample_size(10);
    group.bench_function("headline_cifar10_like", |b| {
        b.iter(|| run_headline(&scale, 0).expect("headline experiment"))
    });
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
