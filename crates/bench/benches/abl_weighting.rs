//! Ablation: uniform vs. example-weighted evaluation aggregation
//! (footnote 1 of §2.2).
//!
//! The paper evaluates with the example-weighted objective by default and
//! switches to uniform weighting under differential privacy. This ablation
//! measures how much the two objectives disagree on the *ranking* of
//! configurations, which bounds how much the switch itself (rather than the
//! DP noise) can change tuning outcomes.

use criterion::{criterion_group, criterion_main, Criterion};
use feddata::Benchmark;
use fedsim::WeightingScheme;
use fedtune_core::{BenchmarkContext, ConfigPool};

fn pool() -> (BenchmarkContext, ConfigPool) {
    let scale = fedbench::measurement_scale();
    let ctx = BenchmarkContext::new(Benchmark::RedditLike, &scale, 0).expect("context");
    let pool = ConfigPool::train(&ctx, 1).expect("pool");
    (ctx, pool)
}

fn regenerate() {
    let (_ctx, pool) = pool();
    let weighted: Vec<f64> = pool.true_errors();
    let uniform: Vec<f64> = pool
        .entries()
        .iter()
        .map(|e| {
            let errors: Vec<f64> = e
                .evaluation
                .per_client()
                .iter()
                .map(|c| c.error_rate)
                .collect();
            fedmath::stats::mean(&errors)
        })
        .collect();
    let spearman = fedmath::stats::spearman_correlation(&weighted, &uniform).ok();
    println!("\n== ablation: evaluation weighting (reddit-like, long-tailed clients) ==");
    for (i, (w, u)) in weighted.iter().zip(uniform.iter()).enumerate() {
        println!(
            "config {i:>3}: weighted = {:>6.2}%  uniform = {:>6.2}%",
            w * 100.0,
            u * 100.0
        );
    }
    println!("rank correlation between the two objectives: {spearman:?}");
    let _ = WeightingScheme::Uniform;
}

fn bench(c: &mut Criterion) {
    regenerate();
    let (_ctx, pool) = pool();
    let mut group = c.benchmark_group("abl_weighting");
    group.sample_size(10);
    group.bench_function("uniform_reaggregation", |b| {
        b.iter(|| {
            pool.entries()
                .iter()
                .map(|e| {
                    let errors: Vec<f64> = e
                        .evaluation
                        .per_client()
                        .iter()
                        .map(|c| c.error_rate)
                        .collect();
                    fedmath::stats::mean(&errors)
                })
                .sum::<f64>()
        })
    });
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
