//! Time-to-accuracy under the event-driven virtual-time executor: the same
//! ASHA ladder run rung-synchronously (SHA) vs asynchronously
//! (promote-on-completion) under heavy-tailed client runtimes, at 10/50/100
//! virtual workers. Asserts that async ASHA's **simulated throughput**
//! (trials per simulated hour) never falls below sync SHA's at any worker
//! count — the CI smoke gate for the straggler scenario.

use criterion::{criterion_group, criterion_main, Criterion};
use feddata::Benchmark;
use fedtune_core::experiments::stragglers::{run_straggler_comparison, StragglerRun};
use fedtune_core::ExecutionPolicy;

const WORKER_GRID: [usize; 3] = [10, 50, 100];

/// The scale for one worker count: the ASHA ladder is widened to about twice
/// the virtual worker pool, so workers are always scarce and the comparison
/// measures scheduling, not idle hardware. (With more workers than ladder
/// slots both drivers trivially run everything in parallel and the barrier
/// costs nothing.)
fn scale_for(workers: usize) -> fedtune_core::ExperimentScale {
    let mut scale = fedbench::report_scale();
    let ladder_width = scale.num_configs * scale.eta;
    if ladder_width < 2 * workers {
        scale.num_configs = (2 * workers).div_ceil(scale.eta.max(1));
    }
    scale
}

fn regenerate() {
    // FEDTUNE_THREADS governs the real-compute fan-out; virtual timelines
    // are independent of it by construction.
    let policy = ExecutionPolicy::from_env();
    let mut summary = fedbench::BenchSummary::new("time_to_accuracy");
    let mut total_evaluations = 0u64;
    let mut total_sim = 0.0f64;
    let mut last_report = None;
    for &workers in &WORKER_GRID {
        let scale = scale_for(workers);
        let comparison = summary.time(&format!("straggler_{workers}_workers"), 2, || {
            run_straggler_comparison(policy, Benchmark::Cifar10Like, &scale, &[workers], 0)
                .expect("straggler comparison")
        });
        for run in &comparison.runs {
            summary.push(
                &format!("{}_{}workers_sim", run.method, run.workers),
                run.sim_elapsed,
                run.evaluations as u64,
            );
            total_evaluations += run.evaluations as u64;
            total_sim += run.sim_elapsed;
        }
        let throughput = |method: &str| {
            comparison
                .runs
                .iter()
                .find(|r| r.method == method && r.workers == workers)
                .map(StragglerRun::trials_per_sim_hour)
                .expect("run present")
        };
        let sync = throughput("ASHA");
        let asynchronous = throughput("ASHA-ASYNC");
        assert!(
            asynchronous >= sync,
            "{workers} workers: async ASHA simulated throughput \
             ({asynchronous:.1}/sim-h) fell below sync SHA ({sync:.1}/sim-h)"
        );
        println!(
            "{workers:>3} workers (ladder {:>3}): sync SHA {sync:>8.1} trials/sim-h, \
             async ASHA {asynchronous:>8.1} trials/sim-h ({:.2}x)",
            scale.num_configs * scale.eta,
            asynchronous / sync.max(f64::MIN_POSITIVE)
        );
        last_report = Some(comparison.to_report().expect("straggler report"));
    }
    summary.record_sim(total_sim, total_evaluations);
    summary.write_if_enabled();
    if let Some(report) = last_report {
        fedbench::print_report(&report);
    }
}

fn bench(c: &mut Criterion) {
    regenerate();
    let scale = fedbench::measurement_scale();
    let mut group = c.benchmark_group("time_to_accuracy");
    group.sample_size(10);
    group.bench_function("straggler_comparison_10_workers", |b| {
        b.iter(|| {
            run_straggler_comparison(
                ExecutionPolicy::from_env(),
                Benchmark::Cifar10Like,
                &scale,
                &[10],
                0,
            )
            .expect("straggler comparison")
        })
    });
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
