//! Ablation: server optimizer choice (FedAdam vs. FedAvg vs. FedSgd with
//! momentum) for the same client hyperparameters.
//!
//! The paper tunes Adam-specific server hyperparameters because adaptive
//! server optimization "has been shown to yield significant improvements in
//! practice" (Reddi et al. 2020). This ablation checks that the substrate
//! reproduces that motivation: FedAdam should reach a lower full-validation
//! error than plain FedAvg within the same round budget.

use criterion::{criterion_group, criterion_main, Criterion};
use feddata::{Benchmark, DatasetSpec, Split};
use fedmodels::{LocalSgd, LocalSgdConfig, Model, ModelSpec};
use fedsim::evaluation::{evaluate_full, WeightingScheme};
use fedsim::{FedAdam, FedAdamConfig, FedAvg, FedSgd, ServerOptimizer};

/// Runs a bare federated training loop with an arbitrary server optimizer and
/// returns the full-validation error after `rounds` rounds.
fn train_with(
    server: &mut dyn ServerOptimizer,
    dataset: &feddata::FederatedDataset,
    rounds: usize,
    seed: u64,
) -> f64 {
    let mut seeds = fedmath::SeedStream::new(seed);
    let mut init_rng = seeds.next_rng();
    let mut round_rng = seeds.next_rng();
    let mut model = ModelSpec::for_dataset(dataset).build(dataset, &mut init_rng);
    let client_opt = LocalSgd::new(LocalSgdConfig {
        learning_rate: 0.05,
        momentum: 0.5,
        weight_decay: 5e-5,
        batch_size: 32,
        epochs: 1,
    })
    .expect("valid client config");

    for _ in 0..rounds {
        let population = dataset.num_train_clients();
        let count = 10.min(population);
        let indices = fedmath::rng::sample_without_replacement(&mut round_rng, population, count)
            .expect("sampling");
        let base = model.params();
        let mut aggregate = vec![0.0; base.len()];
        let mut total_weight = 0.0;
        for idx in indices {
            let client = &dataset.clients(Split::Train)[idx];
            if client.is_empty() {
                continue;
            }
            let new_params = client_opt
                .train(&model, client.examples(), &mut round_rng)
                .expect("local training");
            let w = client.num_examples() as f64;
            for (a, (&n, &o)) in aggregate.iter_mut().zip(new_params.iter().zip(base.iter())) {
                *a += w * (n - o);
            }
            total_weight += w;
        }
        if total_weight > 0.0 {
            for a in &mut aggregate {
                *a /= total_weight;
            }
            let mut params = base;
            server
                .apply(&mut params, &aggregate)
                .expect("server update");
            model.set_params(&params).expect("param update");
        }
    }
    evaluate_full(
        &model,
        dataset,
        Split::Validation,
        WeightingScheme::ByExamples,
    )
    .expect("evaluation")
    .weighted_error()
    .expect("aggregation")
}

fn regenerate() {
    let dataset = DatasetSpec::benchmark(Benchmark::Cifar10Like, feddata::Scale::Smoke)
        .generate(3)
        .expect("dataset");
    let rounds = 30;
    let mut fedavg = FedAvg::new();
    let mut fedsgd = FedSgd::new(0.5, 0.9).expect("fedsgd");
    let mut fedadam = FedAdam::new(FedAdamConfig {
        learning_rate: 0.05,
        ..Default::default()
    })
    .expect("fedadam");
    println!("\n== ablation: server optimizers (same client SGD, {rounds} rounds) ==");
    for (name, opt) in [
        ("fedavg", &mut fedavg as &mut dyn ServerOptimizer),
        (
            "fedsgd(lr=0.5, m=0.9)",
            &mut fedsgd as &mut dyn ServerOptimizer,
        ),
        ("fedadam(lr=0.05)", &mut fedadam as &mut dyn ServerOptimizer),
    ] {
        let error = train_with(opt, &dataset, rounds, 7);
        println!("{name:<24} full validation error = {:.2}%", error * 100.0);
    }
}

fn bench(c: &mut Criterion) {
    regenerate();
    let dataset = DatasetSpec::benchmark(Benchmark::Cifar10Like, feddata::Scale::Smoke)
        .generate(3)
        .expect("dataset");
    let mut group = c.benchmark_group("abl_server_optimizers");
    group.sample_size(10);
    group.bench_function("fedadam_10_rounds", |b| {
        b.iter(|| {
            let mut opt = FedAdam::new(FedAdamConfig::default()).expect("fedadam");
            train_with(&mut opt, &dataset, 10, 7)
        })
    });
    group.bench_function("fedavg_10_rounds", |b| {
        b.iter(|| {
            let mut opt = FedAvg::new();
            train_with(&mut opt, &dataset, 10, 7)
        })
    });
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
