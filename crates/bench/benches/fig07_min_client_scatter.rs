//! Regenerates Fig. 7: global error vs. minimum client error per configuration.

use criterion::{criterion_group, criterion_main, Criterion};
use feddata::Benchmark;
use fedtune_core::experiments::heterogeneity::{min_client_report, run_min_client_scatter};

fn regenerate() {
    let scale = fedbench::report_scale();
    let mut scatters = Vec::new();
    for &b in &Benchmark::ALL {
        scatters.push(run_min_client_scatter(b, &scale, 0).expect("min client scatter"));
    }
    fedbench::print_report(&min_client_report(&scatters));
}

fn bench(c: &mut Criterion) {
    regenerate();
    let scale = fedbench::measurement_scale();
    let mut group = c.benchmark_group("fig07_min_client_scatter");
    group.sample_size(10);
    group.bench_function("cifar10_like_scatter", |b| {
        b.iter(|| {
            run_min_client_scatter(Benchmark::Cifar10Like, &scale, 0).expect("min client scatter")
        })
    });
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
