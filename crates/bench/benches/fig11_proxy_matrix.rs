//! Regenerates Fig. 11: one-shot proxy RS for every (proxy, client) dataset pair.

use criterion::{criterion_group, criterion_main, Criterion};
use fedtune_core::experiments::proxy::run_proxy_matrix;

fn regenerate() {
    let scale = fedbench::report_scale();
    let matrix = run_proxy_matrix(&scale, 0).expect("proxy matrix");
    fedbench::print_report(&matrix.to_report());
}

fn bench(c: &mut Criterion) {
    regenerate();
    let scale = fedbench::measurement_scale();
    let mut group = c.benchmark_group("fig11_proxy_matrix");
    group.sample_size(10);
    group.bench_function("full_matrix", |b| {
        b.iter(|| run_proxy_matrix(&scale, 0).expect("proxy matrix"))
    });
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
