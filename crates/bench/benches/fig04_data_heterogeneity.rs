//! Regenerates Fig. 4: data heterogeneity (iid fraction p) under subsampling.

use criterion::{criterion_group, criterion_main, Criterion};
use feddata::Benchmark;
use fedtune_core::experiments::heterogeneity::{data_heterogeneity_report, run_data_heterogeneity};

fn regenerate() {
    let scale = fedbench::report_scale();
    let mut sweeps = Vec::new();
    for &b in &Benchmark::ALL {
        sweeps.push(run_data_heterogeneity(b, &scale, 0).expect("data heterogeneity sweep"));
    }
    fedbench::print_report(&data_heterogeneity_report(&sweeps));
}

fn bench(c: &mut Criterion) {
    regenerate();
    let scale = fedbench::measurement_scale();
    let mut group = c.benchmark_group("fig04_data_heterogeneity");
    group.sample_size(10);
    group.bench_function("cifar10_like_sweep", |b| {
        b.iter(|| {
            run_data_heterogeneity(Benchmark::Cifar10Like, &scale, 0)
                .expect("data heterogeneity sweep")
        })
    });
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
