//! Regenerates Tables 1-2 (dataset statistics) and measures dataset generation.

use criterion::{criterion_group, criterion_main, Criterion};
use fedtune_core::experiments::table1::DatasetTable;

fn regenerate() {
    let scale = fedbench::report_scale();
    let table = DatasetTable::generate(&scale, 42).expect("table generation");
    println!("\n{}", table.to_text());
    fedbench::print_report(&table.to_report());
}

fn bench(c: &mut Criterion) {
    regenerate();
    let scale = fedbench::measurement_scale();
    let mut group = c.benchmark_group("table1_datasets");
    group.sample_size(10);
    group.bench_function("generate_all_benchmarks", |b| {
        b.iter(|| DatasetTable::generate(&scale, 42).expect("table generation"))
    });
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
