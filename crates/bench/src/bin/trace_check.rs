//! Schema checker for observability exports, used by the CI `trace-smoke`
//! job: validates Chrome `trace_event` JSON files and `fedtrace` metrics
//! snapshots emitted by a traced example run.
//!
//! Usage: `trace_check <file.json>...`
//!
//! Files whose JSON top level carries a `traceEvents` key are validated as
//! Chrome traces; everything else is validated as a typed
//! [`fedtrace::MetricsSnapshot`]. Exits non-zero on the first invalid file.

use fedbench::trace;

fn check_file(path: &str) -> Result<String, String> {
    let json = std::fs::read_to_string(path).map_err(|e| format!("unreadable: {e}"))?;
    if json.contains("\"traceEvents\"") {
        let events = trace::validate_chrome_trace(&json)?;
        Ok(format!("valid Chrome trace ({events} events)"))
    } else {
        let snapshot = trace::validate_metrics_snapshot(&json)?;
        Ok(format!(
            "valid metrics snapshot ({} counters, {} gauges, {} histograms)",
            snapshot.counters.len(),
            snapshot.gauges.len(),
            snapshot.histograms.len()
        ))
    }
}

fn main() {
    let paths: Vec<String> = std::env::args().skip(1).collect();
    if paths.is_empty() {
        eprintln!("usage: trace_check <file.json>...");
        std::process::exit(2);
    }
    let mut failed = false;
    for path in &paths {
        match check_file(path) {
            Ok(summary) => println!("{path}: {summary}"),
            Err(reason) => {
                eprintln!("{path}: INVALID — {reason}");
                failed = true;
            }
        }
    }
    if failed {
        std::process::exit(1);
    }
}
