//! CI perf gate: compares a freshly-measured `BENCH_<name>.json` against a
//! committed baseline and exits non-zero when any measurement regressed past
//! the threshold (or silently disappeared).
//!
//! Usage:
//!
//! ```text
//! perf_compare <baseline.json> <candidate.json> [threshold]
//! ```
//!
//! `threshold` is the fractional throughput drop that fails the gate
//! (default `0.3`, i.e. a >30% slowdown fails).

use fedbench::{regression, BenchSummary};
use std::process::ExitCode;

fn load(path: &str) -> Result<BenchSummary, String> {
    let text = std::fs::read_to_string(path).map_err(|e| format!("failed to read {path}: {e}"))?;
    serde_json::from_str(&text).map_err(|e| format!("failed to parse {path}: {e}"))
}

fn run(args: &[String]) -> Result<bool, String> {
    let (baseline_path, candidate_path) = match args {
        [b, c] | [b, c, _] => (b, c),
        _ => {
            return Err("usage: perf_compare <baseline.json> <candidate.json> [threshold]".into());
        }
    };
    let threshold = match args.get(2) {
        None => 0.3,
        Some(raw) => {
            let t: f64 = raw
                .parse()
                .map_err(|e| format!("invalid threshold {raw:?}: {e}"))?;
            if !(0.0..1.0).contains(&t) {
                return Err(format!("threshold {t} must be in [0, 1)"));
            }
            t
        }
    };
    let baseline = load(baseline_path)?;
    let candidate = load(candidate_path)?;
    if baseline.name != candidate.name {
        return Err(format!(
            "bench name mismatch: baseline {:?} vs candidate {:?}",
            baseline.name, candidate.name
        ));
    }
    let report = regression::compare(&baseline, &candidate, threshold);
    print!("{}", report.to_table());
    if report.passed() {
        println!(
            "PASS: no measurement dropped more than {:.0}%",
            threshold * 100.0
        );
    } else {
        println!(
            "FAIL: {} regression(s), {} missing measurement(s)",
            report.regressions().len(),
            report.missing.len()
        );
    }
    Ok(report.passed())
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match run(&args) {
        Ok(true) => ExitCode::SUCCESS,
        Ok(false) => ExitCode::FAILURE,
        Err(message) => {
            eprintln!("{message}");
            ExitCode::from(2)
        }
    }
}
