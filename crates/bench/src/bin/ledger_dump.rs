//! Streams a trial ledger to stdout as JSONL, one record per line.
//!
//! ```text
//! ledger_dump <PATH> [--limit N]
//! ```
//!
//! `PATH` may be a segment-ledger directory (the binary format written by
//! `TrialStore::open_segments`, e.g. a fedserve campaign's `ledger/` dir)
//! or a JSONL ledger file; both stream in bounded memory, so a
//! multi-million-record ledger dumps without loading it whole. The output
//! is the store's own canonical JSONL encoding — `ledger_dump` on a JSONL
//! file is a validating round trip, and on a segment directory it is the
//! human-readable escape hatch for the binary format.

use fedstore::record::TrialRecord;
use fedstore::segment;
use std::io::{BufRead, Write};
use std::process::ExitCode;

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match run(&args) {
        Ok(()) => ExitCode::SUCCESS,
        Err(message) => {
            eprintln!("ledger_dump: {message}");
            ExitCode::FAILURE
        }
    }
}

fn run(args: &[String]) -> Result<(), String> {
    let mut path: Option<&str> = None;
    let mut limit: Option<u64> = None;
    let mut iter = args.iter();
    while let Some(arg) = iter.next() {
        match arg.as_str() {
            "--limit" => {
                let value = iter.next().ok_or("--limit needs a number")?;
                limit = Some(
                    value
                        .parse()
                        .map_err(|_| format!("bad --limit value {value:?}"))?,
                );
            }
            "--help" | "-h" => {
                println!("usage: ledger_dump <PATH> [--limit N]");
                return Ok(());
            }
            other if path.is_none() => path = Some(other),
            other => return Err(format!("unexpected argument {other:?}")),
        }
    }
    let path = path.ok_or("usage: ledger_dump <PATH> [--limit N]")?;
    let target = std::path::Path::new(path);

    let stdout = std::io::stdout();
    let mut out = std::io::BufWriter::new(stdout.lock());
    let mut emitted: u64 = 0;
    let mut emit = |record: &TrialRecord| -> Result<bool, String> {
        if limit.is_some_and(|cap| emitted >= cap) {
            return Ok(false);
        }
        let line = record
            .to_line()
            .map_err(|e| format!("encoding record: {e}"))?;
        writeln!(out, "{line}").map_err(|e| format!("writing stdout: {e}"))?;
        emitted += 1;
        Ok(true)
    };

    if target.is_dir() {
        // Binary segment ledger: stream records in ledger order. A `limit`
        // stops early via a sentinel error so we never scan past the cap.
        let mut done = false;
        let result = segment::for_each_record(target, |record| {
            if done {
                return Ok(());
            }
            match emit(&record) {
                Ok(true) => Ok(()),
                Ok(false) => {
                    done = true;
                    Ok(())
                }
                Err(message) => Err(fedstore::StoreError::Io {
                    path: target.display().to_string(),
                    message,
                }),
            }
        });
        result.map_err(|e| e.to_string())?;
    } else {
        // JSONL ledger: validate every line through the canonical decoder.
        let file = std::fs::File::open(target)
            .map_err(|e| format!("opening {}: {e}", target.display()))?;
        let reader = std::io::BufReader::new(file);
        for (index, line) in reader.lines().enumerate() {
            let line = line.map_err(|e| format!("reading {}: {e}", target.display()))?;
            if line.trim().is_empty() {
                continue;
            }
            let record = TrialRecord::from_line(&line, index + 1)
                .map_err(|e| format!("{}:{}: {e}", target.display(), index + 1))?;
            if !emit(&record)? {
                break;
            }
        }
    }
    out.flush().map_err(|e| format!("flushing stdout: {e}"))?;
    Ok(())
}
