//! Support library for the benchmark harness.
//!
//! Every bench target in `benches/` regenerates one table or figure of the
//! paper: it prints the regenerated rows once (so `cargo bench` output can be
//! compared against the paper and recorded in `EXPERIMENTS.md`) and then
//! measures the cost of the underlying experiment at a reduced scale with
//! Criterion.

#![warn(missing_docs)]
#![forbid(unsafe_code)]

use fedtune_core::ExperimentScale;

/// The scale used inside Criterion measurement loops: small enough that every
/// benchmark iteration completes in well under a second.
pub fn measurement_scale() -> ExperimentScale {
    ExperimentScale::smoke()
}

/// The scale used for the one-off regeneration printout at the top of each
/// bench target. Controlled by the `FEDTUNE_BENCH_SCALE` environment variable
/// (`smoke`, `default`, or `paper`); defaults to `smoke` so `cargo bench`
/// stays fast.
pub fn report_scale() -> ExperimentScale {
    match std::env::var("FEDTUNE_BENCH_SCALE").as_deref() {
        Ok("paper") => ExperimentScale::paper(),
        Ok("default") => ExperimentScale::default_scale(),
        _ => ExperimentScale::smoke(),
    }
}

/// Prints a regenerated report with a consistent banner.
pub fn print_report(report: &fedtune_core::ExperimentReport) {
    println!("\n{}", report.to_table());
}

/// One timed measurement inside a [`BenchSummary`].
#[derive(Debug, Clone, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct BenchEntry {
    /// What was measured (e.g. `"scheduled_extended_parallel"`).
    pub label: String,
    /// Wall-clock seconds of the measured run.
    pub wall_seconds: f64,
    /// Work items completed (trials, evaluations, rounds — per the label).
    pub items: u64,
    /// `items / wall_seconds` (0 when nothing was measured).
    pub throughput_per_second: f64,
}

/// Machine-readable summary of one bench target, written to
/// `BENCH_<name>.json` so the perf trajectory can be tracked across PRs.
#[derive(Debug, Clone, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct BenchSummary {
    /// The bench target (e.g. `"fig08_methods"`).
    pub name: String,
    /// The `FEDTUNE_BENCH_SCALE` the summary was produced at.
    pub scale: String,
    /// Simulated wall-clock of the bench's virtual-time campaigns, in
    /// virtual seconds (`0.0` for benches that only measure real time).
    pub sim_elapsed: f64,
    /// Simulated throughput: trials completed per simulated hour (`0.0`
    /// when no virtual-time campaign ran).
    pub trials_per_sim_hour: f64,
    /// Peak clients resident at once during a population-backed run:
    /// in-flight cohort plus cache residents (`0` for benches that do not
    /// touch a lazy population).
    pub peak_resident_clients: u64,
    /// Client-cache hit rate over the run, in `[0, 1]` (`0.0` when no cache
    /// was involved).
    pub cache_hit_rate: f64,
    /// The measurements.
    pub entries: Vec<BenchEntry>,
}

impl BenchSummary {
    /// Creates an empty summary for the named bench target, stamped with the
    /// active report scale.
    pub fn new(name: &str) -> Self {
        BenchSummary {
            name: name.to_string(),
            scale: std::env::var("FEDTUNE_BENCH_SCALE").unwrap_or_else(|_| "smoke".into()),
            sim_elapsed: 0.0,
            trials_per_sim_hour: 0.0,
            peak_resident_clients: 0,
            cache_hit_rate: 0.0,
            entries: Vec::new(),
        }
    }

    /// Records the memory/cache outcome of a population-backed run: the peak
    /// number of simultaneously-resident clients and the cache hit rate.
    pub fn record_population(&mut self, peak_resident_clients: u64, cache_hit_rate: f64) {
        self.peak_resident_clients = peak_resident_clients;
        self.cache_hit_rate = cache_hit_rate;
    }

    /// Records the virtual-time outcome of the bench: total simulated
    /// seconds and the trials completed in them (converted to trials per
    /// simulated hour).
    pub fn record_sim(&mut self, sim_elapsed: f64, trials: u64) {
        self.sim_elapsed = sim_elapsed;
        self.trials_per_sim_hour = if sim_elapsed > 0.0 {
            trials as f64 / (sim_elapsed / 3600.0)
        } else {
            0.0
        };
    }

    /// Records one measurement.
    pub fn push(&mut self, label: &str, wall_seconds: f64, items: u64) {
        let throughput_per_second = if wall_seconds > 0.0 {
            items as f64 / wall_seconds
        } else {
            0.0
        };
        self.entries.push(BenchEntry {
            label: label.to_string(),
            wall_seconds,
            items,
            throughput_per_second,
        });
    }

    /// Runs `work`, records its wall-clock under `label` (with `items` work
    /// units), and returns its output.
    pub fn time<T>(&mut self, label: &str, items: u64, work: impl FnOnce() -> T) -> T {
        let start = std::time::Instant::now();
        let out = work();
        self.push(label, start.elapsed().as_secs_f64(), items);
        out
    }

    /// Writes `BENCH_<name>.json` when `FEDTUNE_BENCH_JSON=1`; a silent
    /// no-op otherwise. The file lands in `FEDTUNE_BENCH_JSON_DIR` if set,
    /// else the process working directory. Failures to write are reported on
    /// stderr but never fail the bench.
    pub fn write_if_enabled(&self) {
        if std::env::var("FEDTUNE_BENCH_JSON").as_deref() != Ok("1") {
            return;
        }
        let dir = std::env::var("FEDTUNE_BENCH_JSON_DIR").unwrap_or_else(|_| ".".into());
        let path = format!("{dir}/BENCH_{}.json", self.name);
        match serde_json::to_string_pretty(self) {
            Ok(json) => {
                if let Err(e) = std::fs::write(&path, json) {
                    eprintln!("failed to write {path}: {e}");
                } else {
                    println!("wrote {path}");
                }
            }
            Err(e) => eprintln!("failed to serialize bench summary {}: {e}", self.name),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scales_resolve() {
        assert!(measurement_scale().validate().is_ok());
        assert!(report_scale().validate().is_ok());
    }

    #[test]
    fn bench_summary_records_and_serializes() {
        let mut summary = BenchSummary::new("unit_test");
        let value = summary.time("timed_block", 10, || 42);
        assert_eq!(value, 42);
        summary.push("manual", 2.0, 8);
        assert_eq!(summary.entries.len(), 2);
        assert_eq!(summary.entries[1].throughput_per_second, 4.0);
        // Zero wall-clock never divides by zero.
        summary.push("instant", 0.0, 5);
        assert_eq!(summary.entries[2].throughput_per_second, 0.0);
        // Virtual-time accounting: 30 trials in half a simulated hour.
        assert_eq!(summary.sim_elapsed, 0.0);
        summary.record_sim(1800.0, 30);
        assert_eq!(summary.sim_elapsed, 1800.0);
        assert_eq!(summary.trials_per_sim_hour, 60.0);
        // A zero-length virtual campaign never divides by zero.
        let mut idle = BenchSummary::new("idle");
        idle.record_sim(0.0, 5);
        assert_eq!(idle.trials_per_sim_hour, 0.0);
        // Population accounting fields round-trip into the JSON.
        summary.record_population(72, 0.85);
        assert_eq!(summary.peak_resident_clients, 72);
        assert_eq!(summary.cache_hit_rate, 0.85);
        let json = serde_json::to_string_pretty(&summary).unwrap();
        assert!(json.contains("timed_block"));
        assert!(json.contains("unit_test"));
        assert!(json.contains("trials_per_sim_hour"));
        assert!(json.contains("peak_resident_clients"));
        assert!(json.contains("cache_hit_rate"));
        // Disabled by default: no file side effects.
        if std::env::var("FEDTUNE_BENCH_JSON").as_deref() != Ok("1") {
            summary.write_if_enabled();
            assert!(!std::path::Path::new("BENCH_unit_test.json").exists());
        }
    }
}
