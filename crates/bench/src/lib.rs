//! Support library for the benchmark harness.
//!
//! Every bench target in `benches/` regenerates one table or figure of the
//! paper: it prints the regenerated rows once (so `cargo bench` output can be
//! compared against the paper and recorded in `EXPERIMENTS.md`) and then
//! measures the cost of the underlying experiment at a reduced scale with
//! Criterion.

#![warn(missing_docs)]
#![forbid(unsafe_code)]

use fedtune_core::ExperimentScale;

/// The scale used inside Criterion measurement loops: small enough that every
/// benchmark iteration completes in well under a second.
pub fn measurement_scale() -> ExperimentScale {
    ExperimentScale::smoke()
}

/// The scale used for the one-off regeneration printout at the top of each
/// bench target. Controlled by the `FEDTUNE_BENCH_SCALE` environment variable
/// (`smoke`, `default`, or `paper`); defaults to `smoke` so `cargo bench`
/// stays fast.
pub fn report_scale() -> ExperimentScale {
    match std::env::var("FEDTUNE_BENCH_SCALE").as_deref() {
        Ok("paper") => ExperimentScale::paper(),
        Ok("default") => ExperimentScale::default_scale(),
        _ => ExperimentScale::smoke(),
    }
}

/// Prints a regenerated report with a consistent banner.
pub fn print_report(report: &fedtune_core::ExperimentReport) {
    println!("\n{}", report.to_table());
}

/// One timed measurement inside a [`BenchSummary`].
#[derive(Debug, Clone, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct BenchEntry {
    /// What was measured (e.g. `"scheduled_extended_parallel"`).
    pub label: String,
    /// Wall-clock seconds of the measured run.
    pub wall_seconds: f64,
    /// Work items completed (trials, evaluations, rounds — per the label).
    pub items: u64,
    /// `items / wall_seconds` (0 when nothing was measured).
    pub throughput_per_second: f64,
}

/// Machine-readable summary of one bench target, written to
/// `BENCH_<name>.json` so the perf trajectory can be tracked across PRs.
#[derive(Debug, Clone, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct BenchSummary {
    /// The bench target (e.g. `"fig08_methods"`).
    pub name: String,
    /// The `FEDTUNE_BENCH_SCALE` the summary was produced at.
    pub scale: String,
    /// Simulated wall-clock of the bench's virtual-time campaigns, in
    /// virtual seconds (`0.0` for benches that only measure real time).
    pub sim_elapsed: f64,
    /// Simulated throughput: trials completed per simulated hour (`0.0`
    /// when no virtual-time campaign ran).
    pub trials_per_sim_hour: f64,
    /// Peak clients resident at once during a population-backed run:
    /// in-flight cohort plus cache residents (`0` for benches that do not
    /// touch a lazy population).
    pub peak_resident_clients: u64,
    /// Client-cache hit rate over the run, in `[0, 1]` (`0.0` when no cache
    /// was involved).
    pub cache_hit_rate: f64,
    /// Full federated training rounds completed per wall-clock second
    /// (`0.0` for benches that do not time training rounds).
    pub rounds_per_sec: f64,
    /// Headline kernel throughput in GFLOP/s (`0.0` for benches that do not
    /// measure math kernels).
    pub gflops: f64,
    /// Headline ledger ingest throughput: trials recorded per wall-clock
    /// second (`0.0` for benches that do not touch the trial ledger).
    pub trials_ingested_per_sec: f64,
    /// Headline ledger replay throughput: recorded trials streamed back per
    /// wall-clock second (`0.0` when no replay was measured).
    pub replay_trials_per_sec: f64,
    /// On-disk ledger footprint per recorded trial, in bytes (`0.0` when no
    /// ledger was written).
    pub ledger_bytes_per_trial: f64,
    /// The measurements.
    pub entries: Vec<BenchEntry>,
    /// A full [`fedtrace`] metrics snapshot taken at the end of the run
    /// (cache hit rates, ledger sync counts, queue-depth histograms, …).
    /// `None` when the bench did not capture one — including every baseline
    /// written before this field existed, which still deserializes.
    /// [`regression::compare`] iterates only `entries`, so the block can
    /// never cause a false perf regression.
    pub metrics: Option<fedtrace::MetricsSnapshot>,
}

impl BenchSummary {
    /// Creates an empty summary for the named bench target, stamped with the
    /// active report scale.
    pub fn new(name: &str) -> Self {
        BenchSummary {
            name: name.to_string(),
            scale: std::env::var("FEDTUNE_BENCH_SCALE").unwrap_or_else(|_| "smoke".into()),
            sim_elapsed: 0.0,
            trials_per_sim_hour: 0.0,
            peak_resident_clients: 0,
            cache_hit_rate: 0.0,
            rounds_per_sec: 0.0,
            gflops: 0.0,
            trials_ingested_per_sec: 0.0,
            replay_trials_per_sec: 0.0,
            ledger_bytes_per_trial: 0.0,
            entries: Vec::new(),
            metrics: None,
        }
    }

    /// Attaches a [`fedtrace`] metrics snapshot to the summary, so every
    /// `BENCH_<name>.json` carries the run's full registry state.
    pub fn record_metrics(&mut self, metrics: fedtrace::MetricsSnapshot) {
        self.metrics = Some(metrics);
    }

    /// Records the headline training-round throughput (rounds per second).
    pub fn record_rounds_per_sec(&mut self, rounds_per_sec: f64) {
        self.rounds_per_sec = rounds_per_sec;
    }

    /// Records the headline kernel throughput in GFLOP/s.
    pub fn record_gflops(&mut self, gflops: f64) {
        self.gflops = gflops;
    }

    /// Records the headline trial-ledger outcome: ingest and replay
    /// throughput (trials per wall-clock second) and the on-disk bytes the
    /// ledger spends per trial.
    pub fn record_ledger(
        &mut self,
        trials_ingested_per_sec: f64,
        replay_trials_per_sec: f64,
        ledger_bytes_per_trial: f64,
    ) {
        self.trials_ingested_per_sec = trials_ingested_per_sec;
        self.replay_trials_per_sec = replay_trials_per_sec;
        self.ledger_bytes_per_trial = ledger_bytes_per_trial;
    }

    /// Records the memory/cache outcome of a population-backed run: the peak
    /// number of simultaneously-resident clients and the cache hit rate.
    pub fn record_population(&mut self, peak_resident_clients: u64, cache_hit_rate: f64) {
        self.peak_resident_clients = peak_resident_clients;
        self.cache_hit_rate = cache_hit_rate;
    }

    /// Records the virtual-time outcome of the bench: total simulated
    /// seconds and the trials completed in them (converted to trials per
    /// simulated hour).
    pub fn record_sim(&mut self, sim_elapsed: f64, trials: u64) {
        self.sim_elapsed = sim_elapsed;
        self.trials_per_sim_hour = if sim_elapsed > 0.0 {
            trials as f64 / (sim_elapsed / 3600.0)
        } else {
            0.0
        };
    }

    /// Records one measurement.
    pub fn push(&mut self, label: &str, wall_seconds: f64, items: u64) {
        let throughput_per_second = if wall_seconds > 0.0 {
            items as f64 / wall_seconds
        } else {
            0.0
        };
        self.entries.push(BenchEntry {
            label: label.to_string(),
            wall_seconds,
            items,
            throughput_per_second,
        });
    }

    /// Runs `work`, records its wall-clock under `label` (with `items` work
    /// units), and returns its output.
    pub fn time<T>(&mut self, label: &str, items: u64, work: impl FnOnce() -> T) -> T {
        let start = std::time::Instant::now();
        let out = work();
        self.push(label, start.elapsed().as_secs_f64(), items);
        out
    }

    /// Writes `BENCH_<name>.json` when `FEDTUNE_BENCH_JSON=1`; a silent
    /// no-op otherwise. The file lands in `FEDTUNE_BENCH_JSON_DIR` if set,
    /// else the process working directory. Failures to write are reported on
    /// stderr but never fail the bench.
    pub fn write_if_enabled(&self) {
        if std::env::var("FEDTUNE_BENCH_JSON").as_deref() != Ok("1") {
            return;
        }
        let dir = std::env::var("FEDTUNE_BENCH_JSON_DIR").unwrap_or_else(|_| ".".into());
        let path = format!("{dir}/BENCH_{}.json", self.name);
        match serde_json::to_string_pretty(self) {
            Ok(json) => {
                if let Err(e) = std::fs::write(&path, json) {
                    eprintln!("failed to write {path}: {e}");
                } else {
                    println!("wrote {path}");
                }
            }
            Err(e) => eprintln!("failed to serialize bench summary {}: {e}", self.name),
        }
    }
}

/// Peak resident set size of this process so far, in kilobytes, read from
/// `/proc/self/status` (`VmHWM`). Returns `None` where procfs is
/// unavailable. Bounded-memory assertions compare this before and after a
/// large streaming pass: the delta must not scale with the data.
pub fn peak_rss_kb() -> Option<u64> {
    let status = std::fs::read_to_string("/proc/self/status").ok()?;
    let line = status.lines().find(|l| l.starts_with("VmHWM:"))?;
    line.split_whitespace().nth(1)?.parse().ok()
}

/// Throughput-regression gating: compares a freshly-measured [`BenchSummary`]
/// against a committed baseline and flags entries whose throughput fell by
/// more than a threshold. Used by the CI perf-smoke job via the
/// `perf_compare` binary.
pub mod regression {
    use super::BenchSummary;

    /// The comparison of one measurement label across baseline and candidate.
    #[derive(Debug, Clone, PartialEq)]
    pub struct EntryComparison {
        /// The measurement label.
        pub label: String,
        /// Baseline throughput (items per second).
        pub baseline: f64,
        /// Candidate throughput (items per second).
        pub candidate: f64,
        /// `candidate / baseline` (`inf` when the baseline was zero).
        pub ratio: f64,
        /// Whether the candidate regressed past the threshold.
        pub regressed: bool,
    }

    /// Outcome of comparing a candidate summary against a baseline.
    #[derive(Debug, Clone, PartialEq)]
    pub struct ComparisonReport {
        /// The bench name under comparison.
        pub bench: String,
        /// Per-label comparisons, in baseline order.
        pub entries: Vec<EntryComparison>,
        /// Baseline labels with no matching candidate measurement — treated
        /// as failures (a silently dropped measurement must not pass CI).
        pub missing: Vec<String>,
    }

    impl ComparisonReport {
        /// Entries that regressed past the threshold.
        pub fn regressions(&self) -> Vec<&EntryComparison> {
            self.entries.iter().filter(|e| e.regressed).collect()
        }

        /// `true` when no entry regressed and no baseline label is missing.
        pub fn passed(&self) -> bool {
            self.missing.is_empty() && self.entries.iter().all(|e| !e.regressed)
        }

        /// Human-readable multi-line report.
        pub fn to_table(&self) -> String {
            let mut out = format!("perf comparison for {}\n", self.bench);
            for e in &self.entries {
                out.push_str(&format!(
                    "  {:<40} baseline {:>12.2}/s candidate {:>12.2}/s ratio {:.2} {}\n",
                    e.label,
                    e.baseline,
                    e.candidate,
                    e.ratio,
                    if e.regressed { "REGRESSED" } else { "ok" }
                ));
            }
            for label in &self.missing {
                out.push_str(&format!("  {label:<40} MISSING from candidate\n"));
            }
            out
        }
    }

    /// Compares `candidate` against `baseline`: an entry regresses when its
    /// throughput drops below `baseline * (1 - threshold)` (e.g.
    /// `threshold = 0.3` fails on a >30% drop). Labels present only in the
    /// candidate are new measurements and are ignored; labels present only
    /// in the baseline are reported as missing. Zero-throughput baseline
    /// entries (nothing was measured) never gate.
    pub fn compare(
        baseline: &BenchSummary,
        candidate: &BenchSummary,
        threshold: f64,
    ) -> ComparisonReport {
        let mut entries = Vec::new();
        let mut missing = Vec::new();
        for b in &baseline.entries {
            match candidate.entries.iter().find(|c| c.label == b.label) {
                None => missing.push(b.label.clone()),
                Some(c) => {
                    let ratio = if b.throughput_per_second > 0.0 {
                        c.throughput_per_second / b.throughput_per_second
                    } else {
                        f64::INFINITY
                    };
                    entries.push(EntryComparison {
                        label: b.label.clone(),
                        baseline: b.throughput_per_second,
                        candidate: c.throughput_per_second,
                        ratio,
                        regressed: b.throughput_per_second > 0.0
                            && c.throughput_per_second
                                < b.throughput_per_second * (1.0 - threshold),
                    });
                }
            }
        }
        ComparisonReport {
            bench: baseline.name.clone(),
            entries,
            missing,
        }
    }
}

/// Schema checks for the observability exports: Chrome `trace_event` JSON
/// and [`fedtrace::MetricsSnapshot`] files. Used by the CI `trace-smoke` job
/// through the `trace_check` binary to validate what a traced example run
/// actually emitted.
pub mod trace {
    /// Validates a Chrome `trace_event` export: a JSON object whose
    /// `traceEvents` is an array of objects, each carrying a string `ph` and
    /// integer `pid`/`tid`, with every complete (`ph:"X"`) slice also
    /// carrying a string `name` and numeric `ts`/`dur`. Returns the event
    /// count.
    ///
    /// # Errors
    ///
    /// Returns a description of the first schema violation.
    pub fn validate_chrome_trace(json: &str) -> Result<usize, String> {
        let value = serde_json::parse_str(json).map_err(|e| format!("not valid JSON: {e}"))?;
        let serde::Value::Map(fields) = &value else {
            return Err("top level is not an object".into());
        };
        let events = fields
            .iter()
            .find(|(k, _)| k == "traceEvents")
            .map(|(_, v)| v)
            .ok_or("missing \"traceEvents\"")?;
        let serde::Value::Seq(events) = events else {
            return Err("\"traceEvents\" is not an array".into());
        };
        for (i, event) in events.iter().enumerate() {
            let serde::Value::Map(event) = event else {
                return Err(format!("event {i} is not an object"));
            };
            let field = |name: &str| event.iter().find(|(k, _)| k == name).map(|(_, v)| v);
            let Some(serde::Value::Str(ph)) = field("ph") else {
                return Err(format!("event {i} has no string \"ph\""));
            };
            for id in ["pid", "tid"] {
                match field(id) {
                    Some(serde::Value::U64(_)) | Some(serde::Value::I64(_)) => {}
                    _ => return Err(format!("event {i} has no integer \"{id}\"")),
                }
            }
            if ph == "X" {
                if !matches!(field("name"), Some(serde::Value::Str(_))) {
                    return Err(format!("slice {i} has no string \"name\""));
                }
                for t in ["ts", "dur"] {
                    match field(t) {
                        Some(serde::Value::F64(_))
                        | Some(serde::Value::U64(_))
                        | Some(serde::Value::I64(_)) => {}
                        _ => return Err(format!("slice {i} has no numeric \"{t}\"")),
                    }
                }
            }
        }
        Ok(events.len())
    }

    /// Validates a metrics-snapshot export by round-tripping it through the
    /// typed [`fedtrace::MetricsSnapshot`], returning the parsed snapshot.
    ///
    /// # Errors
    ///
    /// Returns a description of the parse failure.
    pub fn validate_metrics_snapshot(json: &str) -> Result<fedtrace::MetricsSnapshot, String> {
        serde_json::from_str(json).map_err(|e| format!("not a metrics snapshot: {e}"))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scales_resolve() {
        assert!(measurement_scale().validate().is_ok());
        assert!(report_scale().validate().is_ok());
    }

    #[test]
    fn bench_summary_records_and_serializes() {
        let mut summary = BenchSummary::new("unit_test");
        let value = summary.time("timed_block", 10, || 42);
        assert_eq!(value, 42);
        summary.push("manual", 2.0, 8);
        assert_eq!(summary.entries.len(), 2);
        assert_eq!(summary.entries[1].throughput_per_second, 4.0);
        // Zero wall-clock never divides by zero.
        summary.push("instant", 0.0, 5);
        assert_eq!(summary.entries[2].throughput_per_second, 0.0);
        // Virtual-time accounting: 30 trials in half a simulated hour.
        assert_eq!(summary.sim_elapsed, 0.0);
        summary.record_sim(1800.0, 30);
        assert_eq!(summary.sim_elapsed, 1800.0);
        assert_eq!(summary.trials_per_sim_hour, 60.0);
        // A zero-length virtual campaign never divides by zero.
        let mut idle = BenchSummary::new("idle");
        idle.record_sim(0.0, 5);
        assert_eq!(idle.trials_per_sim_hour, 0.0);
        // Population accounting fields round-trip into the JSON.
        summary.record_population(72, 0.85);
        assert_eq!(summary.peak_resident_clients, 72);
        assert_eq!(summary.cache_hit_rate, 0.85);
        let json = serde_json::to_string_pretty(&summary).unwrap();
        assert!(json.contains("timed_block"));
        assert!(json.contains("unit_test"));
        assert!(json.contains("trials_per_sim_hour"));
        assert!(json.contains("peak_resident_clients"));
        assert!(json.contains("cache_hit_rate"));
        // Disabled by default: no file side effects.
        if std::env::var("FEDTUNE_BENCH_JSON").as_deref() != Ok("1") {
            summary.write_if_enabled();
            assert!(!std::path::Path::new("BENCH_unit_test.json").exists());
        }
    }

    #[test]
    fn summary_records_headline_throughput_fields() {
        let mut summary = BenchSummary::new("headline");
        assert_eq!(summary.rounds_per_sec, 0.0);
        assert_eq!(summary.gflops, 0.0);
        summary.record_rounds_per_sec(12.5);
        summary.record_gflops(3.75);
        assert_eq!(summary.trials_ingested_per_sec, 0.0);
        summary.record_ledger(1.5e6, 4.0e6, 70.5);
        let json = serde_json::to_string(&summary).unwrap();
        assert!(json.contains("rounds_per_sec"));
        assert!(json.contains("gflops"));
        assert!(json.contains("trials_ingested_per_sec"));
        assert!(json.contains("replay_trials_per_sec"));
        assert!(json.contains("ledger_bytes_per_trial"));
        let back: BenchSummary = serde_json::from_str(&json).unwrap();
        assert_eq!(back.rounds_per_sec, 12.5);
        assert_eq!(back.gflops, 3.75);
        assert_eq!(back.trials_ingested_per_sec, 1.5e6);
        assert_eq!(back.replay_trials_per_sec, 4.0e6);
        assert_eq!(back.ledger_bytes_per_trial, 70.5);
    }

    #[test]
    fn peak_rss_is_readable_on_linux() {
        if std::path::Path::new("/proc/self/status").exists() {
            assert!(peak_rss_kb().unwrap() > 0);
        }
    }

    fn summary_with(name: &str, entries: &[(&str, f64)]) -> BenchSummary {
        let mut s = BenchSummary::new(name);
        for (label, throughput) in entries {
            // push computes throughput = items / wall_seconds; feed it 1s.
            s.push(label, 1.0, *throughput as u64);
        }
        s
    }

    #[test]
    fn regression_compare_flags_slowdowns_and_missing_labels() {
        let baseline = summary_with("k", &[("gemm", 1000.0), ("dot", 500.0), ("xent", 100.0)]);
        let candidate = summary_with("k", &[("gemm", 900.0), ("dot", 200.0)]);
        let report = regression::compare(&baseline, &candidate, 0.3);
        assert!(!report.passed());
        // gemm dropped 10% — inside the 30% threshold.
        assert!(!report.entries[0].regressed);
        // dot dropped 60% — regression.
        assert!(report.entries[1].regressed);
        assert_eq!(report.regressions().len(), 1);
        // xent disappeared — missing.
        assert_eq!(report.missing, vec!["xent".to_string()]);
        let table = report.to_table();
        assert!(table.contains("REGRESSED"));
        assert!(table.contains("MISSING"));
    }

    #[test]
    fn regression_compare_passes_on_equal_or_faster() {
        let baseline = summary_with("k", &[("gemm", 1000.0), ("idle", 0.0)]);
        let candidate = summary_with("k", &[("gemm", 1500.0), ("idle", 0.0), ("extra", 5.0)]);
        let report = regression::compare(&baseline, &candidate, 0.3);
        assert!(report.passed(), "{}", report.to_table());
        // Zero-throughput baselines never gate; extra candidate labels are
        // new measurements, not failures.
        assert_eq!(report.entries.len(), 2);
        assert!(report.missing.is_empty());
    }

    #[test]
    fn metrics_block_is_optional_and_ignored_by_compare() {
        // A candidate measured with tracing on carries the metrics block…
        let mut candidate = summary_with("k", &[("gemm", 1000.0)]);
        let trace = fedtrace::Trace::new();
        trace.registry().counter("kernel.flops").add(123);
        candidate.record_metrics(trace.snapshot());
        let json = serde_json::to_string_pretty(&candidate).unwrap();
        assert!(json.contains("kernel.flops"));
        let back: BenchSummary = serde_json::from_str(&json).unwrap();
        assert_eq!(
            back.metrics.as_ref().unwrap().counter("kernel.flops"),
            Some(123)
        );
        // …while a baseline written before the field existed still parses…
        let legacy = serde_json::to_string(&summary_with("k", &[("gemm", 1000.0)]))
            .unwrap()
            .replace(",\"metrics\":null", "");
        assert!(!legacy.contains("metrics"));
        let baseline: BenchSummary = serde_json::from_str(&legacy).unwrap();
        assert!(baseline.metrics.is_none());
        // …and the comparison gates only on entries, in both directions.
        assert!(regression::compare(&baseline, &candidate, 0.3).passed());
        assert!(regression::compare(&candidate, &baseline, 0.3).passed());
    }

    #[test]
    fn chrome_trace_schema_check_accepts_real_exports_and_rejects_junk() {
        let spans = vec![fedtrace::TrialSpan {
            trial: 0,
            resource: 1,
            rep: 0,
            worker: 0,
            start: 0.0,
            end: 1.5,
        }];
        let json = fedtrace::virtual_timeline_json(&[fedtrace::TimelineTrack::new("t", spans)]);
        assert_eq!(trace::validate_chrome_trace(&json).unwrap(), 3);
        let profile = fedtrace::WallProfile::new();
        profile.time("phase", || ());
        assert_eq!(
            trace::validate_chrome_trace(&profile.to_chrome_json()).unwrap(),
            2
        );
        assert!(trace::validate_chrome_trace("not json").is_err());
        assert!(trace::validate_chrome_trace("[]").is_err());
        assert!(trace::validate_chrome_trace("{\"traceEvents\":1}").is_err());
        assert!(trace::validate_chrome_trace("{\"traceEvents\":[{\"ph\":\"X\"}]}").is_err());
        assert!(
            trace::validate_chrome_trace(
                "{\"traceEvents\":[{\"ph\":\"X\",\"pid\":0,\"tid\":0,\"name\":\"n\",\"ts\":0}]}"
            )
            .is_err(),
            "a slice without dur must fail"
        );
    }

    #[test]
    fn metrics_snapshot_schema_check_round_trips() {
        let trace = fedtrace::Trace::new();
        trace.registry().counter("a").add(7);
        trace.registry().histogram("h").observe(3);
        let json = serde_json::to_string_pretty(&trace.snapshot()).unwrap();
        let snap = trace::validate_metrics_snapshot(&json).unwrap();
        assert_eq!(snap.counter("a"), Some(7));
        assert_eq!(snap.histogram("h").unwrap().count, 1);
        assert!(trace::validate_metrics_snapshot("{\"nope\":1}").is_err());
    }

    #[test]
    fn regression_threshold_brackets() {
        // Just inside the 30% threshold passes; just past it fails.
        let baseline = summary_with("k", &[("op", 1000.0)]);
        let inside = summary_with("k", &[("op", 710.0)]);
        assert!(regression::compare(&baseline, &inside, 0.3).passed());
        let outside = summary_with("k", &[("op", 690.0)]);
        assert!(!regression::compare(&baseline, &outside, 0.3).passed());
    }
}
