//! Support library for the benchmark harness.
//!
//! Every bench target in `benches/` regenerates one table or figure of the
//! paper: it prints the regenerated rows once (so `cargo bench` output can be
//! compared against the paper and recorded in `EXPERIMENTS.md`) and then
//! measures the cost of the underlying experiment at a reduced scale with
//! Criterion.

#![warn(missing_docs)]
#![forbid(unsafe_code)]

use fedtune_core::ExperimentScale;

/// The scale used inside Criterion measurement loops: small enough that every
/// benchmark iteration completes in well under a second.
pub fn measurement_scale() -> ExperimentScale {
    ExperimentScale::smoke()
}

/// The scale used for the one-off regeneration printout at the top of each
/// bench target. Controlled by the `FEDTUNE_BENCH_SCALE` environment variable
/// (`smoke`, `default`, or `paper`); defaults to `smoke` so `cargo bench`
/// stays fast.
pub fn report_scale() -> ExperimentScale {
    match std::env::var("FEDTUNE_BENCH_SCALE").as_deref() {
        Ok("paper") => ExperimentScale::paper(),
        Ok("default") => ExperimentScale::default_scale(),
        _ => ExperimentScale::smoke(),
    }
}

/// Prints a regenerated report with a consistent banner.
pub fn print_report(report: &fedtune_core::ExperimentReport) {
    println!("\n{}", report.to_table());
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scales_resolve() {
        assert!(measurement_scale().validate().is_ok());
        assert!(report_scale().validate().is_ok());
    }
}
