//! Batched, cache-blocked math kernels for the training hot path.
//!
//! Every experiment in this reproduction bottoms out in the same few dense
//! operations: matrix products against the model weights, bias adds, the
//! softmax/cross-entropy backward pass, and scaled accumulations. This module
//! provides those operations as explicit kernels over flat row-major slices,
//! written so that the auto-vectorizer can do its job (contiguous inner
//! loops, no data-dependent branches, register-resident accumulator tiles
//! that expose independent addition chains) while keeping a **documented,
//! deterministic accumulation order** per kernel.
//!
//! # Determinism contract
//!
//! Floating-point addition is not associative, so "the" result of a reduction
//! depends on the order of its additions. Each kernel in this module commits
//! to exactly one summation order, stated in its doc comment, and never
//! changes it based on block sizes, thread counts, or input values.
//!
//! Every product term is folded in with [`f64::mul_add`] — one IEEE 754
//! correctly-rounded fused multiply-add per term, a *defined operation* that
//! produces the same bits on every platform (hardware FMA where available, a
//! correctly-rounded software sequence otherwise). Compared to separate
//! multiply-then-add this removes one rounding per term, halves the
//! instruction count on FMA hardware, and stays fully deterministic; the
//! per-example model code mirrors the same `mul_add` calls so batched and
//! per-example paths still agree bitwise. The committed orders:
//!
//! - [`gemm`] and [`gemm_tn`] accumulate every output element strictly in
//!   ascending `k` order (a single addition chain per element). Cache
//!   blocking only reorders *which elements* are touched when, never the
//!   per-element chain, so the result is bit-identical to the naive triple
//!   loop.
//! - [`dot`] (and everything built on it: [`matvec_into`], [`gemm_nt`]) uses
//!   a fixed 4-lane split: element `i` joins lane `i mod 4`, lanes combine as
//!   `(l0 + l1) + (l2 + l3)`, and the length-dependent tail is added in
//!   ascending order afterwards. This reorders sums relative to a naive
//!   sequential fold (that is what buys instruction-level parallelism), but
//!   the order is a pure function of the slice length — the same inputs give
//!   the same bits on every call, policy, and thread count.
//! - [`softmax_xent_backward`] performs, per row, the exact operation
//!   sequence of [`crate::ops::softmax_inplace`] followed by the label
//!   subtraction, so fusing is bit-identical to the unfused per-example path.
//!
//! Kernels validate shapes with assertions (they sit below the error-typed
//! [`crate::Matrix`] API, which has already checked shapes) and are wired
//! into [`crate::Matrix::matmul`] / [`crate::Matrix::matvec`] so the whole
//! stack shares one accumulation order per operation.
//!
//! # Buffer pool
//!
//! [`BufferPool`] recycles `Vec<f64>` scratch buffers so steady-state
//! training performs no per-example or per-round heap allocations: the first
//! round warms the pool, subsequent rounds reuse its buffers. Pooling is
//! accounting, never semantics — buffers are zeroed on [`BufferPool::take`].

use std::sync::OnceLock;

/// FLOP and pool accounting on the global [`fedtrace`] registry. Counters
/// are write-only from the kernels' point of view — nothing here ever reads
/// them back, so instrumentation cannot move a result bit (the
/// accounting-never-semantics contract). Handles are registered once and
/// cached for the process; each update is one relaxed atomic add.
struct KernelMetrics {
    flops: fedtrace::Counter,
    pool_reuses: fedtrace::Counter,
    pool_fresh: fedtrace::Counter,
}

fn metrics() -> &'static KernelMetrics {
    static METRICS: OnceLock<KernelMetrics> = OnceLock::new();
    METRICS.get_or_init(|| {
        let registry = fedtrace::global().registry();
        KernelMetrics {
            flops: registry.counter("kernel.flops"),
            pool_reuses: registry.counter("kernel.pool_reuses"),
            pool_fresh: registry.counter("kernel.pool_fresh_allocations"),
        }
    })
}

/// Columns of `b`/`c` processed per cache tile in [`gemm`] and [`gemm_tn`].
///
/// 128 columns × 8 bytes = 1 KiB per row tile: small enough that a `b` row
/// tile and a `c` row tile stay resident in L1 across the unrolled `k` loop.
/// Tiling never changes results (see the module-level determinism contract).
const BLOCK_J: usize = 128;

/// Output columns held in a register accumulator tile by [`gemm`] and
/// [`gemm_tn`]: each element's full ascending-`k` addition chain runs in a
/// register, with one `c` load before the chain and one store after, instead
/// of a load/store round trip per `k` step. 16 `f64` accumulators give the
/// out-of-order core enough independent chains to hide FP-add latency while
/// still fitting the vector register file.
const REG_J: usize = 16;

/// `B` rows (output columns) processed together by [`gemm_nt`]: each keeps
/// its own 4-lane [`dot`] accumulator in registers, giving independent
/// addition chains across columns without touching the per-element lane
/// order.
const REG_NT: usize = 4;

/// Dot product of two equal-length slices.
///
/// # Accumulation order
///
/// Element `i` is accumulated into lane `i mod 4` via one fused multiply-add
/// (4 independent chains, which is what lets the CPU overlap the FMAs); the
/// final value is `(l0 + l1) + (l2 + l3)` plus the `len % 4` tail elements
/// folded in ascending order. The order depends only on `len`.
///
/// # Panics
///
/// Panics if the slices have different lengths.
pub fn dot(a: &[f64], b: &[f64]) -> f64 {
    assert_eq!(a.len(), b.len(), "dot: length mismatch");
    let split = a.len() - a.len() % 4;
    let (a4, a_tail) = a.split_at(split);
    let (b4, b_tail) = b.split_at(split);
    let mut l0 = 0.0;
    let mut l1 = 0.0;
    let mut l2 = 0.0;
    let mut l3 = 0.0;
    for (ca, cb) in a4.chunks_exact(4).zip(b4.chunks_exact(4)) {
        l0 = ca[0].mul_add(cb[0], l0);
        l1 = ca[1].mul_add(cb[1], l1);
        l2 = ca[2].mul_add(cb[2], l2);
        l3 = ca[3].mul_add(cb[3], l3);
    }
    let mut acc = (l0 + l1) + (l2 + l3);
    for (&x, &y) in a_tail.iter().zip(b_tail.iter()) {
        acc = x.mul_add(y, acc);
    }
    acc
}

/// In-place scaled addition `y[i] = fma(alpha, x[i], y[i])` (BLAS `axpy`,
/// one fused multiply-add per element).
///
/// Elementwise — no reduction, so there is no order to document.
///
/// # Panics
///
/// Panics if the slices have different lengths.
pub fn axpy(alpha: f64, x: &[f64], y: &mut [f64]) {
    assert_eq!(x.len(), y.len(), "axpy: length mismatch");
    for (yi, &xi) in y.iter_mut().zip(x.iter()) {
        *yi = alpha.mul_add(xi, *yi);
    }
}

/// In-place scaling `y[i] *= alpha`.
pub fn scale(alpha: f64, y: &mut [f64]) {
    for yi in y.iter_mut() {
        *yi *= alpha;
    }
}

/// Matrix product accumulation `C += A · B` over flat row-major storage:
/// `A` is `m×k`, `B` is `k×n`, `C` is `m×n`.
///
/// # Accumulation order
///
/// `C[i][j]` accumulates products strictly in ascending `k` order, one fused
/// multiply-add per product term, one chain per element — the same order as
/// a naive `i/k/j` triple loop over `mul_add`, so blocking
/// (`BLOCK_J`-column cache tiles, `REG_J`-column register tiles) is
/// bit-transparent. Each register tile loads its `c` values once, runs the
/// full `k` chain in registers (the auto-vectorizer turns the independent
/// per-column chains into SIMD FMAs), and stores once.
///
/// # Panics
///
/// Panics if a slice length does not match its `m`/`k`/`n` shape.
pub fn gemm(m: usize, k: usize, n: usize, a: &[f64], b: &[f64], c: &mut [f64]) {
    assert_eq!(a.len(), m * k, "gemm: A shape mismatch");
    assert_eq!(b.len(), k * n, "gemm: B shape mismatch");
    assert_eq!(c.len(), m * n, "gemm: C shape mismatch");
    metrics().flops.add(2 * (m * k * n) as u64);
    for jb in (0..n).step_by(BLOCK_J) {
        let je = (jb + BLOCK_J).min(n);
        for i in 0..m {
            let a_row = &a[i * k..(i + 1) * k];
            let c_row = &mut c[i * n..(i + 1) * n];
            let mut j = jb;
            while j + REG_J <= je {
                let mut acc = [0.0f64; REG_J];
                acc.copy_from_slice(&c_row[j..j + REG_J]);
                for (kk, &av) in a_row.iter().enumerate() {
                    let b_tile = &b[kk * n + j..kk * n + j + REG_J];
                    for r in 0..REG_J {
                        acc[r] = av.mul_add(b_tile[r], acc[r]);
                    }
                }
                c_row[j..j + REG_J].copy_from_slice(&acc);
                j += REG_J;
            }
            // Remainder columns: the same ascending-k chain per element.
            while j < je {
                let mut v = c_row[j];
                for (kk, &av) in a_row.iter().enumerate() {
                    v = av.mul_add(b[kk * n + j], v);
                }
                c_row[j] = v;
                j += 1;
            }
        }
    }
}

/// Transposed-B matrix product accumulation `C += A · Bᵀ`:
/// `A` is `m×k`, `B` is `n×k` (row-major, so `Bᵀ` is `k×n`), `C` is `m×n`.
///
/// This is the natural layout for the model forward passes: weights are
/// stored `[outputs × inputs]`, activations `[batch × inputs]`, and every
/// output element is a dot product of two contiguous rows.
///
/// # Accumulation order
///
/// `C[i][j] += dot(A.row(i), B.row(j))` using [`dot`]'s 4-lane order.
/// `REG_NT` `B` rows are processed together so their lane accumulators
/// form independent addition chains, but each element's lane assignment and
/// combine order are exactly [`dot`]'s — the bits match a per-row `dot` loop.
///
/// # Panics
///
/// Panics if a slice length does not match its `m`/`k`/`n` shape.
pub fn gemm_nt(m: usize, k: usize, n: usize, a: &[f64], b: &[f64], c: &mut [f64]) {
    assert_eq!(a.len(), m * k, "gemm_nt: A shape mismatch");
    assert_eq!(b.len(), n * k, "gemm_nt: B shape mismatch");
    assert_eq!(c.len(), m * n, "gemm_nt: C shape mismatch");
    metrics().flops.add(2 * (m * k * n) as u64);
    let split = k - k % 4;
    for i in 0..m {
        let a_row = &a[i * k..(i + 1) * k];
        let c_row = &mut c[i * n..(i + 1) * n];
        let mut j = 0;
        while j + REG_NT <= n {
            let b0 = &b[j * k..(j + 1) * k];
            let b1 = &b[(j + 1) * k..(j + 2) * k];
            let b2 = &b[(j + 2) * k..(j + 3) * k];
            let b3 = &b[(j + 3) * k..(j + 4) * k];
            let mut lanes = [[0.0f64; 4]; REG_NT];
            let mut t = 0;
            while t + 4 <= split {
                let ac = &a_row[t..t + 4];
                for (lane, b_row) in lanes.iter_mut().zip([b0, b1, b2, b3]) {
                    let bc = &b_row[t..t + 4];
                    lane[0] = ac[0].mul_add(bc[0], lane[0]);
                    lane[1] = ac[1].mul_add(bc[1], lane[1]);
                    lane[2] = ac[2].mul_add(bc[2], lane[2]);
                    lane[3] = ac[3].mul_add(bc[3], lane[3]);
                }
                t += 4;
            }
            for (r, (lane, b_row)) in lanes.iter().zip([b0, b1, b2, b3]).enumerate() {
                let mut acc = (lane[0] + lane[1]) + (lane[2] + lane[3]);
                for tt in split..k {
                    acc = a_row[tt].mul_add(b_row[tt], acc);
                }
                c_row[j + r] += acc;
            }
            j += REG_NT;
        }
        while j < n {
            c_row[j] += dot(a_row, &b[j * k..(j + 1) * k]);
            j += 1;
        }
    }
}

/// Transposed-A matrix product accumulation `C += Aᵀ · B`:
/// `A` is `k×m`, `B` is `k×n`, `C` is `m×n`.
///
/// This is the gradient-accumulation shape: `A` and `B` are both
/// `[batch × features]` activations and `k` is the batch dimension, so the
/// per-element order below is exactly "fold examples in batch order" — the
/// same order as a per-example gradient loop.
///
/// # Accumulation order
///
/// `C[i][j]` accumulates strictly in ascending `k` order, one fused
/// multiply-add per product term, one chain per element, run to completion
/// inside a `REG_J`-column register tile (`BLOCK_J`-column cache tiles
/// over `j`). Tiling reorders only which elements are computed when — every
/// element's chain is the `k → i → j` fold order, so the bits match the
/// untiled loop.
///
/// # Panics
///
/// Panics if a slice length does not match its `m`/`k`/`n` shape.
pub fn gemm_tn(m: usize, k: usize, n: usize, a: &[f64], b: &[f64], c: &mut [f64]) {
    assert_eq!(a.len(), k * m, "gemm_tn: A shape mismatch");
    assert_eq!(b.len(), k * n, "gemm_tn: B shape mismatch");
    assert_eq!(c.len(), m * n, "gemm_tn: C shape mismatch");
    metrics().flops.add(2 * (m * k * n) as u64);
    for jb in (0..n).step_by(BLOCK_J) {
        let je = (jb + BLOCK_J).min(n);
        for i in 0..m {
            let c_row = &mut c[i * n..(i + 1) * n];
            let mut j = jb;
            while j + REG_J <= je {
                let mut acc = [0.0f64; REG_J];
                acc.copy_from_slice(&c_row[j..j + REG_J]);
                for kk in 0..k {
                    let av = a[kk * m + i];
                    let b_tile = &b[kk * n + j..kk * n + j + REG_J];
                    for r in 0..REG_J {
                        acc[r] = av.mul_add(b_tile[r], acc[r]);
                    }
                }
                c_row[j..j + REG_J].copy_from_slice(&acc);
                j += REG_J;
            }
            while j < je {
                let mut v = c_row[j];
                for kk in 0..k {
                    v = a[kk * m + i].mul_add(b[kk * n + j], v);
                }
                c_row[j] = v;
                j += 1;
            }
        }
    }
}

/// Matrix-vector product `out[i] = dot(A.row(i), x)` for a row-major
/// `rows×cols` matrix (assignment, not accumulation).
///
/// # Accumulation order
///
/// Each output element uses [`dot`]'s 4-lane order.
///
/// # Panics
///
/// Panics if a slice length does not match the `rows`/`cols` shape.
pub fn matvec_into(rows: usize, cols: usize, a: &[f64], x: &[f64], out: &mut [f64]) {
    assert_eq!(a.len(), rows * cols, "matvec_into: A shape mismatch");
    assert_eq!(x.len(), cols, "matvec_into: x length mismatch");
    assert_eq!(out.len(), rows, "matvec_into: out length mismatch");
    for (o, row) in out.iter_mut().zip(a.chunks_exact(cols.max(1))) {
        *o = dot(row, x);
    }
}

/// Adds `bias` to every row of the row-major `rows×cols` matrix `c`.
///
/// Elementwise — no reduction order to document.
///
/// # Panics
///
/// Panics if a slice length does not match the `rows`/`cols` shape.
pub fn bias_add_rows(c: &mut [f64], rows: usize, cols: usize, bias: &[f64]) {
    assert_eq!(c.len(), rows * cols, "bias_add_rows: shape mismatch");
    assert_eq!(bias.len(), cols, "bias_add_rows: bias length mismatch");
    for row in c.chunks_exact_mut(cols.max(1)) {
        for (v, &b) in row.iter_mut().zip(bias.iter()) {
            *v += b;
        }
    }
}

/// Applies ReLU elementwise in place, exactly as [`crate::ops::relu`] does.
pub fn relu_rows(c: &mut [f64]) {
    for v in c.iter_mut() {
        *v = crate::ops::relu(*v);
    }
}

/// Backward ReLU mask: `dh[i] *= relu'(pre[i])`, i.e. multiplication by
/// `1.0` or `0.0` exactly as the per-example path multiplies by
/// [`crate::ops::relu_grad`].
///
/// # Panics
///
/// Panics if the slices have different lengths.
pub fn relu_backward_rows(dh: &mut [f64], pre: &[f64]) {
    assert_eq!(dh.len(), pre.len(), "relu_backward_rows: length mismatch");
    for (d, &p) in dh.iter_mut().zip(pre.iter()) {
        *d *= crate::ops::relu_grad(p);
    }
}

/// Adds the column sums of the row-major `rows×cols` matrix `a` into `out`:
/// `out[j] += Σ_r a[r][j]`.
///
/// # Accumulation order
///
/// Rows are folded in ascending order (one addition chain per column) — the
/// per-example bias-gradient order.
///
/// # Panics
///
/// Panics if a slice length does not match the `rows`/`cols` shape.
pub fn col_sum_add(rows: usize, cols: usize, a: &[f64], out: &mut [f64]) {
    assert_eq!(a.len(), rows * cols, "col_sum_add: shape mismatch");
    assert_eq!(out.len(), cols, "col_sum_add: out length mismatch");
    for row in a.chunks_exact(cols.max(1)) {
        for (o, &v) in out.iter_mut().zip(row.iter()) {
            *o += v;
        }
    }
}

/// Fused softmax + cross-entropy backward over a batch of logit rows.
///
/// Transforms each row of the row-major `rows×cols` matrix `logits` in
/// place from logits to `softmax(row) - onehot(label)` — the cross-entropy
/// gradient with respect to the logits — and returns the **total** (not
/// mean) cross-entropy loss `Σ_r (logsumexp(row_r) - row_r[label_r])`.
///
/// `label_of(r)` supplies the target class of row `r`; it is called once
/// per row in ascending order.
///
/// # Accumulation order
///
/// Per row, the operation sequence is exactly
/// [`crate::ops::softmax_inplace`] (max by sequential fold, exponentiate and
/// sum in ascending order, divide) followed by `row[label] -= 1.0`, so the
/// fused kernel is bit-identical to the unfused per-example path. The loss
/// terms are summed over rows in ascending order.
///
/// # Panics
///
/// Panics if `logits.len() != rows * cols` or a label is `>= cols`.
pub fn softmax_xent_backward(
    logits: &mut [f64],
    rows: usize,
    cols: usize,
    label_of: impl Fn(usize) -> usize,
) -> f64 {
    assert_eq!(
        logits.len(),
        rows * cols,
        "softmax_xent_backward: shape mismatch"
    );
    let mut total_loss = 0.0;
    for (r, row) in logits.chunks_exact_mut(cols.max(1)).enumerate() {
        let label = label_of(r);
        assert!(label < cols, "softmax_xent_backward: label out of range");
        let label_logit = row[label];
        // The exact softmax_inplace sequence: shared max, exp, running sum,
        // then one divide per element.
        let max = row.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
        let mut total = 0.0;
        for v in row.iter_mut() {
            *v = (*v - max).exp();
            total += *v;
        }
        for v in row.iter_mut() {
            *v /= total;
        }
        row[label] -= 1.0;
        // Stable cross-entropy from the quantities already on hand:
        // logsumexp = max + ln(Σ exp(v - max)).
        total_loss += max + total.ln() - label_logit;
    }
    total_loss
}

/// Upper bound on buffers retained by a [`BufferPool`]; beyond it, released
/// buffers are dropped instead of pooled (a safety valve, not a tuning knob —
/// the training loop holds at most a handful of live buffers).
const POOL_CAP: usize = 32;

/// A recycling pool of `Vec<f64>` scratch buffers.
///
/// The training hot path acquires all of its temporaries — minibatch
/// matrices, activations, logit/gradient buffers — from a pool instead of
/// the global allocator. After a warm-up pass the pool's buffers cover every
/// request and steady-state training performs **zero** per-example and
/// per-round heap allocations (asserted by [`BufferPool::fresh_allocations`]
/// in tests and tracked by the `kernel_throughput` bench).
///
/// Buffers handed out by [`take`](Self::take) are zero-filled, so pooling is
/// invisible to the numerics.
#[derive(Debug, Default)]
pub struct BufferPool {
    free: Vec<Vec<f64>>,
    fresh_allocations: usize,
}

impl BufferPool {
    /// Creates an empty pool.
    pub fn new() -> Self {
        BufferPool::default()
    }

    /// Returns a zero-filled buffer of exactly `len` elements, reusing the
    /// best-fitting (smallest sufficient capacity) free buffer if one exists.
    pub fn take(&mut self, len: usize) -> Vec<f64> {
        let mut best: Option<usize> = None;
        for (i, b) in self.free.iter().enumerate() {
            if b.capacity() >= len && best.is_none_or(|j| self.free[j].capacity() > b.capacity()) {
                best = Some(i);
            }
        }
        let mut buf = match best {
            Some(i) => {
                metrics().pool_reuses.incr();
                self.free.swap_remove(i)
            }
            None => {
                self.fresh_allocations += 1;
                metrics().pool_fresh.incr();
                Vec::with_capacity(len)
            }
        };
        buf.clear();
        buf.resize(len, 0.0);
        buf
    }

    /// Returns a buffer to the pool for reuse. Buffers beyond `POOL_CAP`
    /// (or with zero capacity) are dropped.
    pub fn put(&mut self, buf: Vec<f64>) {
        if buf.capacity() > 0 && self.free.len() < POOL_CAP {
            self.free.push(buf);
        }
    }

    /// Number of times [`take`](Self::take) had to allocate a fresh buffer
    /// instead of recycling one. Stops growing once the pool is warm — the
    /// zero-steady-state-allocation contract.
    pub fn fresh_allocations(&self) -> usize {
        self.fresh_allocations
    }

    /// Number of buffers currently available for reuse.
    pub fn pooled(&self) -> usize {
        self.free.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Naive reference: sequential-fold dot product.
    fn naive_dot(a: &[f64], b: &[f64]) -> f64 {
        a.iter().zip(b.iter()).map(|(x, y)| x * y).sum()
    }

    /// Naive reference: unblocked i/k/j matmul (ascending-k accumulation,
    /// one fused multiply-add per term, matching the kernel contract).
    fn naive_gemm(m: usize, k: usize, n: usize, a: &[f64], b: &[f64], c: &mut [f64]) {
        for i in 0..m {
            for kk in 0..k {
                let av = a[i * k + kk];
                for j in 0..n {
                    c[i * n + j] = av.mul_add(b[kk * n + j], c[i * n + j]);
                }
            }
        }
    }

    fn seq(len: usize, scale: f64) -> Vec<f64> {
        (0..len)
            .map(|i| ((i as f64) * 0.37 - 1.1) * scale)
            .collect()
    }

    #[test]
    fn dot_matches_naive_within_epsilon() {
        for len in [0, 1, 3, 4, 7, 8, 64, 129] {
            let a = seq(len, 0.5);
            let b = seq(len, -0.25);
            let got = dot(&a, &b);
            let want = naive_dot(&a, &b);
            let tol = 1e-12 * want.abs().max(1.0);
            assert!((got - want).abs() <= tol, "len {len}: {got} vs {want}");
        }
    }

    #[test]
    fn dot_order_is_a_pure_function_of_length() {
        let a = seq(37, 1.0);
        let b = seq(37, 2.0);
        assert_eq!(dot(&a, &b).to_bits(), dot(&a, &b).to_bits());
        // Commutativity holds bitwise: products are commutative per element
        // and the lane structure depends only on the length.
        assert_eq!(dot(&a, &b).to_bits(), dot(&b, &a).to_bits());
    }

    #[test]
    fn gemm_is_bit_identical_to_naive_triple_loop() {
        // Shapes straddling the block and unroll boundaries.
        for (m, k, n) in [(1, 1, 1), (3, 5, 2), (8, 4, 8), (5, 9, 131), (2, 130, 140)] {
            let a = seq(m * k, 0.3);
            let b = seq(k * n, -0.2);
            let mut c = seq(m * n, 0.01);
            let mut c_ref = c.clone();
            gemm(m, k, n, &a, &b, &mut c);
            naive_gemm(m, k, n, &a, &b, &mut c_ref);
            for (i, (x, y)) in c.iter().zip(c_ref.iter()).enumerate() {
                assert_eq!(x.to_bits(), y.to_bits(), "element {i} ({m}x{k}x{n})");
            }
        }
    }

    #[test]
    fn gemm_nt_matches_explicit_transpose() {
        let (m, k, n) = (4, 7, 5);
        let a = seq(m * k, 0.4);
        let b = seq(n * k, -0.6);
        // Transpose b into k×n and multiply with plain gemm.
        let mut bt = vec![0.0; k * n];
        for j in 0..n {
            for kk in 0..k {
                bt[kk * n + j] = b[j * k + kk];
            }
        }
        let mut c_nt = vec![0.0; m * n];
        let mut c_ref = vec![0.0; m * n];
        gemm_nt(m, k, n, &a, &b, &mut c_nt);
        gemm(m, k, n, &a, &bt, &mut c_ref);
        for (x, y) in c_nt.iter().zip(c_ref.iter()) {
            let tol = 1e-12 * y.abs().max(1.0);
            assert!((x - y).abs() <= tol, "{x} vs {y}");
        }
    }

    #[test]
    fn gemm_tn_is_bit_identical_to_per_example_fold() {
        // gemm_tn's contract: ascending-k accumulation == folding examples
        // in batch order, the per-example gradient order.
        let (m, k, n) = (3, 6, 4);
        let a = seq(k * m, 0.7);
        let b = seq(k * n, -0.3);
        let mut c = vec![0.0; m * n];
        gemm_tn(m, k, n, &a, &b, &mut c);
        let mut c_ref = vec![0.0; m * n];
        for kk in 0..k {
            for i in 0..m {
                for j in 0..n {
                    c_ref[i * n + j] = a[kk * m + i].mul_add(b[kk * n + j], c_ref[i * n + j]);
                }
            }
        }
        for (x, y) in c.iter().zip(c_ref.iter()) {
            assert_eq!(x.to_bits(), y.to_bits());
        }
    }

    #[test]
    fn matvec_into_matches_dot_per_row() {
        let (rows, cols) = (5, 11);
        let a = seq(rows * cols, 0.9);
        let x = seq(cols, -1.3);
        let mut out = vec![f64::NAN; rows];
        matvec_into(rows, cols, &a, &x, &mut out);
        for (r, o) in out.iter().enumerate() {
            assert_eq!(o.to_bits(), dot(&a[r * cols..(r + 1) * cols], &x).to_bits());
        }
    }

    #[test]
    fn axpy_scale_bias_colsum() {
        let x = vec![1.0, 2.0, 3.0];
        let mut y = vec![10.0, 20.0, 30.0];
        axpy(0.5, &x, &mut y);
        assert_eq!(y, vec![10.5, 21.0, 31.5]);
        scale(2.0, &mut y);
        assert_eq!(y, vec![21.0, 42.0, 63.0]);

        let mut c = vec![0.0, 1.0, 2.0, 3.0];
        bias_add_rows(&mut c, 2, 2, &[10.0, 20.0]);
        assert_eq!(c, vec![10.0, 21.0, 12.0, 23.0]);

        let mut sums = vec![0.0, 100.0];
        col_sum_add(2, 2, &c, &mut sums);
        assert_eq!(sums, vec![22.0, 144.0]);
    }

    #[test]
    fn relu_kernels_match_scalar_ops() {
        let mut h = vec![-1.0, 0.0, 2.5];
        relu_rows(&mut h);
        assert_eq!(h, vec![0.0, 0.0, 2.5]);
        let mut dh = vec![3.0, -4.0, 5.0];
        relu_backward_rows(&mut dh, &[-1.0, 2.0, 0.0]);
        assert_eq!(dh, vec![0.0, -4.0, 0.0]);
    }

    #[test]
    fn fused_xent_backward_matches_unfused_sequence() {
        let rows = 3;
        let cols = 4;
        let logits = seq(rows * cols, 1.7);
        let labels = [2usize, 0, 3];
        let mut fused = logits.clone();
        let loss = softmax_xent_backward(&mut fused, rows, cols, |r| labels[r]);

        let mut expected_loss = 0.0;
        for r in 0..rows {
            let mut row = logits[r * cols..(r + 1) * cols].to_vec();
            expected_loss += crate::ops::cross_entropy_from_logits(&row, labels[r]).unwrap();
            crate::ops::softmax_inplace(&mut row);
            row[labels[r]] -= 1.0;
            for (j, v) in row.iter().enumerate() {
                assert_eq!(
                    v.to_bits(),
                    fused[r * cols + j].to_bits(),
                    "row {r} col {j}"
                );
            }
        }
        assert!((loss - expected_loss).abs() <= 1e-12 * expected_loss.abs().max(1.0));
    }

    #[test]
    fn fused_xent_backward_rows_sum_to_zero_gradient() {
        let mut logits = seq(8, 0.8);
        let total = softmax_xent_backward(&mut logits, 2, 4, |_| 1);
        assert!(total > 0.0);
        for row in logits.chunks(4) {
            let s: f64 = row.iter().sum();
            assert!(s.abs() < 1e-12, "gradient rows sum to ~0, got {s}");
        }
    }

    #[test]
    #[should_panic(expected = "label out of range")]
    fn fused_xent_backward_rejects_bad_label() {
        let mut logits = vec![0.0; 4];
        softmax_xent_backward(&mut logits, 1, 4, |_| 4);
    }

    #[test]
    fn buffer_pool_reuses_capacity() {
        let mut pool = BufferPool::new();
        let a = pool.take(64);
        assert_eq!(a.len(), 64);
        assert_eq!(pool.fresh_allocations(), 1);
        pool.put(a);
        assert_eq!(pool.pooled(), 1);
        // Steady state: repeated take/put cycles of mixed sizes allocate
        // nothing new once the pool is warm.
        let b = pool.take(32);
        assert_eq!(b.len(), 32);
        assert!(b.iter().all(|&v| v == 0.0));
        pool.put(b);
        for _ in 0..100 {
            let x = pool.take(64);
            let y = pool.take(32);
            pool.put(x);
            pool.put(y);
        }
        assert_eq!(pool.fresh_allocations(), 2);
    }

    #[test]
    fn buffer_pool_prefers_best_fit() {
        let mut pool = BufferPool::new();
        let small = pool.take(8);
        let large = pool.take(1024);
        pool.put(large);
        pool.put(small);
        // A request for 8 must take the 8-capacity buffer, leaving the large
        // one free for a large request (no churn).
        let got = pool.take(8);
        assert!(got.capacity() < 1024);
        let big = pool.take(1024);
        assert!(big.capacity() >= 1024);
        assert_eq!(pool.fresh_allocations(), 2);
    }

    #[test]
    fn buffer_pool_zero_len_and_cap() {
        let mut pool = BufferPool::new();
        let empty = pool.take(0);
        assert!(empty.is_empty());
        pool.put(empty);
        // Zero-capacity buffers are not pooled.
        assert_eq!(pool.pooled(), 0);
        for _ in 0..(POOL_CAP + 10) {
            pool.put(vec![0.0; 4]);
        }
        assert!(pool.pooled() <= POOL_CAP);
    }
}

#[cfg(test)]
mod proptests {
    use super::*;
    use proptest::prelude::*;

    fn vec_of(len: usize) -> impl Strategy<Value = Vec<f64>> {
        proptest::collection::vec(-10.0f64..10.0, len..len + 1)
    }

    proptest! {
        #[test]
        fn prop_gemm_bitwise_matches_naive(
            m in 1usize..6, k in 1usize..12, n in 1usize..9,
            seed in 0u64..1000,
        ) {
            let gen = |off: u64, len: usize| -> Vec<f64> {
                (0..len)
                    .map(|i| (((seed + off) as f64 + i as f64) * 0.61).sin())
                    .collect()
            };
            let a = gen(1, m * k);
            let b = gen(2, k * n);
            let mut c = gen(3, m * n);
            let mut c_ref = c.clone();
            gemm(m, k, n, &a, &b, &mut c);
            for i in 0..m {
                for kk in 0..k {
                    let av = a[i * k + kk];
                    for j in 0..n {
                        c_ref[i * n + j] = av.mul_add(b[kk * n + j], c_ref[i * n + j]);
                    }
                }
            }
            for (x, y) in c.iter().zip(c_ref.iter()) {
                prop_assert_eq!(x.to_bits(), y.to_bits());
            }
        }

        #[test]
        fn prop_dot_within_relative_epsilon_of_naive(
            len in 0usize..64, seed in 0u64..1000,
        ) {
            let a: Vec<f64> = (0..len).map(|i| ((seed as f64 + i as f64) * 0.3).cos()).collect();
            let b: Vec<f64> = (0..len).map(|i| ((seed as f64 - i as f64) * 0.7).sin()).collect();
            let got = dot(&a, &b);
            let want: f64 = a.iter().zip(b.iter()).map(|(x, y)| x * y).sum();
            let tol = 1e-12 * want.abs().max(1.0);
            prop_assert!((got - want).abs() <= tol, "{} vs {}", got, want);
        }

        #[test]
        fn prop_matvec_within_epsilon_of_naive(
            rows in 1usize..8, cols in 1usize..24, seed in 0u64..500,
        ) {
            let a: Vec<f64> = (0..rows * cols)
                .map(|i| ((seed as f64 + i as f64) * 0.17).sin())
                .collect();
            let x: Vec<f64> = (0..cols).map(|i| ((seed as f64 + i as f64) * 0.5).cos()).collect();
            let mut out = vec![0.0; rows];
            matvec_into(rows, cols, &a, &x, &mut out);
            for (r, o) in out.iter().enumerate() {
                let want: f64 = a[r * cols..(r + 1) * cols]
                    .iter()
                    .zip(x.iter())
                    .map(|(p, q)| p * q)
                    .sum();
                let tol = 1e-12 * want.abs().max(1.0);
                prop_assert!((o - want).abs() <= tol);
            }
        }

        #[test]
        fn prop_fused_xent_bitwise_matches_unfused(
            logits in vec_of(12), label_raw in any::<usize>(),
        ) {
            let (rows, cols) = (3, 4);
            let labels: Vec<usize> = (0..rows).map(|r| (label_raw + r) % cols).collect();
            let mut fused = logits.clone();
            let loss = softmax_xent_backward(&mut fused, rows, cols, |r| labels[r]);
            let mut expected_loss = 0.0;
            for r in 0..rows {
                let mut row = logits[r * cols..(r + 1) * cols].to_vec();
                expected_loss +=
                    crate::ops::cross_entropy_from_logits(&row, labels[r]).unwrap();
                crate::ops::softmax_inplace(&mut row);
                row[labels[r]] -= 1.0;
                for (j, v) in row.iter().enumerate() {
                    prop_assert_eq!(v.to_bits(), fused[r * cols + j].to_bits());
                }
            }
            let tol = 1e-12 * expected_loss.abs().max(1.0);
            prop_assert!((loss - expected_loss).abs() <= tol);
        }
    }
}
