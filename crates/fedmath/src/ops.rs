//! Numerically stable kernels shared by the models in `fedmodels`.
//!
//! These are the standard softmax / log-sum-exp / cross-entropy primitives
//! needed to implement multinomial logistic regression, MLP classifiers, and
//! the bigram language model with hand-written gradients.

use crate::{MathError, Result};

/// Numerically stable log-sum-exp of `values`.
///
/// Returns negative infinity for an empty slice (the sum over an empty set).
pub fn log_sum_exp(values: &[f64]) -> f64 {
    if values.is_empty() {
        return f64::NEG_INFINITY;
    }
    let max = values.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
    if !max.is_finite() {
        return max;
    }
    let sum: f64 = values.iter().map(|&v| (v - max).exp()).sum();
    max + sum.ln()
}

/// Numerically stable softmax.
///
/// Returns an empty vector for empty input. The output sums to 1.
pub fn softmax(logits: &[f64]) -> Vec<f64> {
    if logits.is_empty() {
        return Vec::new();
    }
    let max = logits.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
    let exps: Vec<f64> = logits.iter().map(|&v| (v - max).exp()).collect();
    let total: f64 = exps.iter().sum();
    exps.into_iter().map(|e| e / total).collect()
}

/// Softmax applied in place.
pub fn softmax_inplace(logits: &mut [f64]) {
    if logits.is_empty() {
        return;
    }
    let max = logits.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
    let mut total = 0.0;
    for v in logits.iter_mut() {
        *v = (*v - max).exp();
        total += *v;
    }
    for v in logits.iter_mut() {
        *v /= total;
    }
}

/// Log-softmax (stable log of [`softmax`]).
pub fn log_softmax(logits: &[f64]) -> Vec<f64> {
    if logits.is_empty() {
        return Vec::new();
    }
    let lse = log_sum_exp(logits);
    logits.iter().map(|&v| v - lse).collect()
}

/// Cross-entropy loss `-log p(target)` for a logit vector and integer target.
///
/// # Errors
///
/// Returns [`MathError::InvalidArgument`] if `target >= logits.len()` or the
/// logits are empty.
pub fn cross_entropy_from_logits(logits: &[f64], target: usize) -> Result<f64> {
    if logits.is_empty() {
        return Err(MathError::EmptyInput {
            what: "cross_entropy_from_logits",
        });
    }
    if target >= logits.len() {
        return Err(MathError::InvalidArgument {
            message: format!(
                "target class {target} out of range for {} logits",
                logits.len()
            ),
        });
    }
    Ok(log_sum_exp(logits) - logits[target])
}

/// Rectified linear unit.
pub fn relu(x: f64) -> f64 {
    if x > 0.0 {
        x
    } else {
        0.0
    }
}

/// Derivative of [`relu`] (0 at the kink).
pub fn relu_grad(x: f64) -> f64 {
    if x > 0.0 {
        1.0
    } else {
        0.0
    }
}

/// Hyperbolic tangent activation.
pub fn tanh(x: f64) -> f64 {
    x.tanh()
}

/// Derivative of tanh given the *activation value* `y = tanh(x)`.
pub fn tanh_grad_from_output(y: f64) -> f64 {
    1.0 - y * y
}

/// One-hot encodes `class` into a vector of length `num_classes`.
///
/// # Errors
///
/// Returns [`MathError::InvalidArgument`] if `class >= num_classes`.
pub fn one_hot(class: usize, num_classes: usize) -> Result<Vec<f64>> {
    if class >= num_classes {
        return Err(MathError::InvalidArgument {
            message: format!("class {class} out of range for {num_classes} classes"),
        });
    }
    let mut v = vec![0.0; num_classes];
    v[class] = 1.0;
    Ok(v)
}

/// Clamps `x` into `[lo, hi]`.
///
/// # Panics
///
/// Panics if `lo > hi`.
pub fn clip(x: f64, lo: f64, hi: f64) -> f64 {
    assert!(lo <= hi, "clip bounds inverted: lo={lo} > hi={hi}");
    x.max(lo).min(hi)
}

/// Index of the largest logit (prediction). Ties resolve to the first index.
///
/// # Errors
///
/// Returns [`MathError::EmptyInput`] for an empty slice.
pub fn predict_class(logits: &[f64]) -> Result<usize> {
    crate::stats::argmax(logits)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn log_sum_exp_stability() {
        // Large values must not overflow.
        let v = [1000.0, 1000.0];
        assert!((log_sum_exp(&v) - (1000.0 + 2.0f64.ln())).abs() < 1e-9);
        // Small values must not underflow to -inf.
        let v = [-1000.0, -1000.0];
        assert!((log_sum_exp(&v) - (-1000.0 + 2.0f64.ln())).abs() < 1e-9);
        assert_eq!(log_sum_exp(&[]), f64::NEG_INFINITY);
    }

    #[test]
    fn softmax_sums_to_one_and_orders() {
        let p = softmax(&[1.0, 2.0, 3.0]);
        assert!((p.iter().sum::<f64>() - 1.0).abs() < 1e-12);
        assert!(p[2] > p[1] && p[1] > p[0]);
        assert!(softmax(&[]).is_empty());
    }

    #[test]
    fn softmax_handles_large_logits() {
        let p = softmax(&[1e4, 0.0]);
        assert!(p[0] > 0.999);
        assert!(p.iter().all(|x| x.is_finite()));
    }

    #[test]
    fn softmax_inplace_matches_softmax() {
        let logits = vec![0.5, -1.0, 2.0];
        let expected = softmax(&logits);
        let mut inplace = logits.clone();
        softmax_inplace(&mut inplace);
        for (a, b) in expected.iter().zip(inplace.iter()) {
            assert!((a - b).abs() < 1e-12);
        }
        let mut empty: Vec<f64> = vec![];
        softmax_inplace(&mut empty);
        assert!(empty.is_empty());
    }

    #[test]
    fn log_softmax_is_log_of_softmax() {
        let logits = [0.1, 0.2, 0.7];
        let ls = log_softmax(&logits);
        let s = softmax(&logits);
        for (a, b) in ls.iter().zip(s.iter()) {
            assert!((a.exp() - b).abs() < 1e-12);
        }
    }

    #[test]
    fn cross_entropy_matches_direct_computation() {
        let logits = [1.0, 2.0, 3.0];
        let loss = cross_entropy_from_logits(&logits, 2).unwrap();
        let p = softmax(&logits);
        assert!((loss + p[2].ln()).abs() < 1e-12);
        // Uniform logits => loss = ln(num_classes).
        let loss = cross_entropy_from_logits(&[0.0; 4], 1).unwrap();
        assert!((loss - 4.0f64.ln()).abs() < 1e-12);
    }

    #[test]
    fn cross_entropy_validation() {
        assert!(cross_entropy_from_logits(&[], 0).is_err());
        assert!(cross_entropy_from_logits(&[0.0, 1.0], 2).is_err());
    }

    #[test]
    fn relu_and_grad() {
        assert_eq!(relu(-1.0), 0.0);
        assert_eq!(relu(2.5), 2.5);
        assert_eq!(relu_grad(-1.0), 0.0);
        assert_eq!(relu_grad(3.0), 1.0);
    }

    #[test]
    fn tanh_and_grad() {
        assert!((tanh(0.0)).abs() < 1e-12);
        let y = tanh(0.5);
        assert!((tanh_grad_from_output(y) - (1.0 - y * y)).abs() < 1e-12);
    }

    #[test]
    fn one_hot_encoding() {
        let v = one_hot(2, 4).unwrap();
        assert_eq!(v, vec![0.0, 0.0, 1.0, 0.0]);
        assert!(one_hot(4, 4).is_err());
    }

    #[test]
    fn clip_bounds() {
        assert_eq!(clip(5.0, 0.0, 1.0), 1.0);
        assert_eq!(clip(-5.0, 0.0, 1.0), 0.0);
        assert_eq!(clip(0.5, 0.0, 1.0), 0.5);
    }

    #[test]
    #[should_panic(expected = "clip bounds inverted")]
    fn clip_panics_on_inverted_bounds() {
        clip(0.0, 1.0, 0.0);
    }

    #[test]
    fn predict_class_takes_argmax() {
        assert_eq!(predict_class(&[0.1, 0.9, 0.3]).unwrap(), 1);
        assert!(predict_class(&[]).is_err());
    }
}

#[cfg(test)]
mod proptests {
    use super::*;
    use proptest::prelude::*;

    proptest! {
        #[test]
        fn prop_softmax_is_probability_vector(
            logits in proptest::collection::vec(-50.0f64..50.0, 1..32),
        ) {
            let p = softmax(&logits);
            prop_assert_eq!(p.len(), logits.len());
            let total: f64 = p.iter().sum();
            prop_assert!((total - 1.0).abs() < 1e-9);
            prop_assert!(p.iter().all(|&x| (0.0..=1.0).contains(&x)));
        }

        #[test]
        fn prop_softmax_invariant_to_shift(
            logits in proptest::collection::vec(-10.0f64..10.0, 2..16),
            shift in -100.0f64..100.0,
        ) {
            let p1 = softmax(&logits);
            let shifted: Vec<f64> = logits.iter().map(|&v| v + shift).collect();
            let p2 = softmax(&shifted);
            for (a, b) in p1.iter().zip(p2.iter()) {
                prop_assert!((a - b).abs() < 1e-9);
            }
        }

        #[test]
        fn prop_cross_entropy_non_negative(
            logits in proptest::collection::vec(-30.0f64..30.0, 1..16),
            target_raw in any::<usize>(),
        ) {
            let target = target_raw % logits.len();
            let loss = cross_entropy_from_logits(&logits, target).unwrap();
            prop_assert!(loss >= -1e-12);
        }

        #[test]
        fn prop_log_sum_exp_at_least_max(
            values in proptest::collection::vec(-100.0f64..100.0, 1..32),
        ) {
            let lse = log_sum_exp(&values);
            let max = values.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
            prop_assert!(lse >= max - 1e-12);
            prop_assert!(lse <= max + (values.len() as f64).ln() + 1e-12);
        }
    }
}
