//! Numerical substrate for the `fedtune` workspace.
//!
//! This crate provides the small set of numerical primitives that the rest of
//! the reproduction of *"On Noisy Evaluation in Federated Hyperparameter
//! Tuning"* (MLSys 2023) is built on:
//!
//! - [`Matrix`]: a dense, row-major `f64` matrix with the linear-algebra
//!   operations needed by hand-written model gradients (matmul, transpose,
//!   elementwise maps, axpy-style updates).
//! - [`stats`]: descriptive statistics used throughout the experiment
//!   harness (weighted means, medians, quartiles, summaries over trials).
//! - [`rng`]: deterministic, splittable random-number utilities plus the
//!   sampling-without-replacement routines used for client subsampling.
//! - [`ops`]: numerically stable softmax / log-sum-exp / cross-entropy
//!   kernels shared by the models.
//! - [`kernel`]: cache-blocked, batched math kernels (GEMM variants, fused
//!   softmax/cross-entropy backward) and the [`kernel::BufferPool`] scratch
//!   arena used by the training hot path; each kernel documents one fixed
//!   accumulation order.
//!
//! # Example
//!
//! ```
//! use fedmath::{Matrix, stats};
//!
//! let a = Matrix::from_rows(&[vec![1.0, 2.0], vec![3.0, 4.0]]).unwrap();
//! let b = Matrix::identity(2);
//! let c = a.matmul(&b).unwrap();
//! assert_eq!(c.get(1, 0), 3.0);
//! assert_eq!(stats::mean(&[1.0, 2.0, 3.0]), 2.0);
//! ```

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod kernel;
pub mod matrix;
pub mod ops;
pub mod rng;
pub mod stats;

pub use matrix::Matrix;
pub use rng::{SeedStream, SeedTree};

use std::fmt;

/// Errors produced by numerical routines in this crate.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum MathError {
    /// Two operands had incompatible shapes.
    ShapeMismatch {
        /// Shape of the left operand, `(rows, cols)`.
        left: (usize, usize),
        /// Shape of the right operand, `(rows, cols)`.
        right: (usize, usize),
        /// Operation that was attempted.
        op: &'static str,
    },
    /// A routine received an empty slice where at least one element is required.
    EmptyInput {
        /// Routine that rejected the input.
        what: &'static str,
    },
    /// A parameter was outside its valid range.
    InvalidArgument {
        /// Human-readable description of the violation.
        message: String,
    },
}

impl fmt::Display for MathError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            MathError::ShapeMismatch { left, right, op } => write!(
                f,
                "shape mismatch in {op}: left is {}x{}, right is {}x{}",
                left.0, left.1, right.0, right.1
            ),
            MathError::EmptyInput { what } => write!(f, "empty input to {what}"),
            MathError::InvalidArgument { message } => write!(f, "invalid argument: {message}"),
        }
    }
}

impl std::error::Error for MathError {}

/// Convenience alias for results returned by this crate.
pub type Result<T> = std::result::Result<T, MathError>;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn error_display_is_informative() {
        let e = MathError::ShapeMismatch {
            left: (2, 3),
            right: (4, 5),
            op: "matmul",
        };
        let msg = e.to_string();
        assert!(msg.contains("matmul"));
        assert!(msg.contains("2x3"));
        assert!(msg.contains("4x5"));

        let e = MathError::EmptyInput { what: "mean" };
        assert!(e.to_string().contains("mean"));

        let e = MathError::InvalidArgument {
            message: "alpha must be positive".into(),
        };
        assert!(e.to_string().contains("alpha"));
    }

    #[test]
    fn error_implements_std_error() {
        fn assert_error<E: std::error::Error + Send + Sync + 'static>() {}
        assert_error::<MathError>();
    }
}
