//! Deterministic, splittable randomness and client-sampling utilities.
//!
//! Every stochastic component of the reproduction (data generation, client
//! subsampling, DP noise, HPO sampling) draws from a seeded
//! [`rand::rngs::StdRng`]. [`SeedStream`] derives independent child seeds from
//! a root seed so that, e.g., trial 17 of an experiment is reproducible
//! regardless of how many random draws trial 16 consumed.
//!
//! The sampling-without-replacement helpers implement the client-selection
//! step of Algorithm 2 in the paper: both the uniform variant used for
//! training/evaluation rounds and the weighted variant used to model systems
//! heterogeneity (§3.2, bias `(a + δ)^b`).

use crate::{MathError, Result};
use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::{Rng, SeedableRng};

/// Derives independent child seeds (and RNGs) from a root seed.
///
/// # Example
///
/// ```
/// use fedmath::SeedStream;
///
/// let mut stream = SeedStream::new(42);
/// let a = stream.next_seed();
/// let b = stream.next_seed();
/// assert_ne!(a, b);
///
/// // The same root seed always yields the same children.
/// let mut again = SeedStream::new(42);
/// assert_eq!(again.next_seed(), a);
/// assert_eq!(again.next_seed(), b);
/// ```
#[derive(Debug, Clone)]
pub struct SeedStream {
    root: u64,
    counter: u64,
}

impl SeedStream {
    /// Creates a stream rooted at `seed`.
    pub fn new(seed: u64) -> Self {
        SeedStream {
            root: seed,
            counter: 0,
        }
    }

    /// Returns the next derived seed.
    pub fn next_seed(&mut self) -> u64 {
        let seed = derive_seed(self.root, self.counter);
        self.counter += 1;
        seed
    }

    /// Returns an RNG seeded with the next derived seed.
    pub fn next_rng(&mut self) -> StdRng {
        StdRng::seed_from_u64(self.next_seed())
    }

    /// Returns a child stream rooted at the next derived seed.
    pub fn child(&mut self) -> SeedStream {
        SeedStream::new(self.next_seed())
    }

    /// The root seed this stream was created with.
    pub fn root(&self) -> u64 {
        self.root
    }
}

/// A node in a hierarchical seed tree.
///
/// Where [`SeedStream`] hands out seeds in *consumption order* (seed `n`
/// depends on how many seeds were drawn before it), a `SeedTree` derives
/// seeds purely from *position*: the seed of `tree.child(a).child(b)` depends
/// only on the root and the path `[a, b]`, never on what else was derived or
/// in which order. This is the property that makes parallel execution
/// bit-identical to sequential execution — every entity (round, client slot,
/// trial, noise draw) gets an RNG keyed by its coordinates, so iteration
/// order cannot leak into the randomness.
///
/// # Example
///
/// ```
/// use fedmath::SeedTree;
///
/// let tree = SeedTree::new(42);
/// // Deriving in any order yields the same seeds.
/// let a_then_b = (tree.child(0).seed(), tree.child(1).seed());
/// let b_then_a = (tree.child(1).seed(), tree.child(0).seed());
/// assert_eq!(a_then_b.0, b_then_a.1);
/// assert_eq!(a_then_b.1, b_then_a.0);
/// // Paths address nested entities: round 3, client slot 7.
/// assert_eq!(tree.derive(&[3, 7]).seed(), tree.child(3).child(7).seed());
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SeedTree {
    seed: u64,
}

impl SeedTree {
    /// Creates a tree rooted at `seed`.
    pub fn new(seed: u64) -> Self {
        SeedTree { seed }
    }

    /// The seed at this node.
    pub fn seed(&self) -> u64 {
        self.seed
    }

    /// The child node at `index`.
    #[must_use]
    pub fn child(&self, index: u64) -> SeedTree {
        SeedTree {
            seed: derive_seed(self.seed, index),
        }
    }

    /// The descendant node addressed by `path` (successive child indices).
    #[must_use]
    pub fn derive(&self, path: &[u64]) -> SeedTree {
        path.iter().fold(*self, |node, &index| node.child(index))
    }

    /// An RNG seeded at this node.
    pub fn rng(&self) -> StdRng {
        StdRng::seed_from_u64(self.seed)
    }

    /// A [`SeedStream`] rooted at this node, for call sites that still want
    /// consumption-order seeds below a positional prefix.
    pub fn stream(&self) -> SeedStream {
        SeedStream::new(self.seed)
    }
}

/// Derives a child seed from `(root, index)` using the SplitMix64 finalizer.
///
/// Deterministic and stable across platforms; used so that experiment
/// components (dataset, trial, round) can be keyed by integer indices.
pub fn derive_seed(root: u64, index: u64) -> u64 {
    let mut z = root
        .wrapping_mul(0x9E37_79B9_7F4A_7C15)
        .wrapping_add(index.wrapping_mul(0xBF58_476D_1CE4_E5B9))
        .wrapping_add(0x94D0_49BB_1331_11EB);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Creates an RNG from a root seed and an index, via [`derive_seed`].
pub fn rng_for(root: u64, index: u64) -> StdRng {
    StdRng::seed_from_u64(derive_seed(root, index))
}

/// Samples `count` distinct indices uniformly at random from `0..population`,
/// without replacement (Algorithm 2's client-selection step).
///
/// The returned indices are in random order.
///
/// # Errors
///
/// Returns [`MathError::InvalidArgument`] if `count > population` or
/// `count == 0`.
pub fn sample_without_replacement(
    rng: &mut impl Rng,
    population: usize,
    count: usize,
) -> Result<Vec<usize>> {
    if count == 0 {
        return Err(MathError::InvalidArgument {
            message: "cannot sample 0 elements".into(),
        });
    }
    if count > population {
        return Err(MathError::InvalidArgument {
            message: format!("cannot sample {count} from population of {population}"),
        });
    }
    // For small sample fractions a partial Fisher-Yates over an index vector
    // is both simple and O(population); population sizes here are at most a
    // few tens of thousands of clients so this is never a bottleneck.
    let mut indices: Vec<usize> = (0..population).collect();
    let (sampled, _) = indices.partial_shuffle(rng, count);
    Ok(sampled.to_vec())
}

/// Samples `count` distinct ids uniformly at random from `0..population`
/// without replacement in **O(count)** time and memory, independent of the
/// population size.
///
/// Where [`sample_without_replacement`] shuffles an index vector (O(population),
/// fine for a few thousand clients), this uses Robert Floyd's algorithm so a
/// cohort can be drawn from a population of millions of virtual clients
/// without ever allocating population-sized state. The returned ids are in
/// the order Floyd's algorithm emits them — deterministic in the RNG, but not
/// uniform over permutations; callers that need a random *order* should
/// shuffle the result.
///
/// # Errors
///
/// Returns [`MathError::InvalidArgument`] if `count == 0` or
/// `count > population`.
pub fn sample_ids_without_replacement(
    rng: &mut impl Rng,
    population: u64,
    count: usize,
) -> Result<Vec<u64>> {
    if count == 0 {
        return Err(MathError::InvalidArgument {
            message: "cannot sample 0 elements".into(),
        });
    }
    if count as u64 > population {
        return Err(MathError::InvalidArgument {
            message: format!("cannot sample {count} from population of {population}"),
        });
    }
    // Floyd's algorithm: for j = population - count .. population, draw
    // t ∈ [0, j]; insert t unless already chosen, else insert j. Every
    // count-subset is equally likely and exactly `count` draws are consumed.
    let mut chosen: std::collections::HashSet<u64> =
        std::collections::HashSet::with_capacity(count);
    let mut out = Vec::with_capacity(count);
    for j in (population - count as u64)..population {
        let t = rng.gen_range(0..=j);
        let id = if chosen.insert(t) { t } else { j };
        if id != t {
            chosen.insert(id);
        }
        out.push(id);
    }
    Ok(out)
}

/// Samples `count` distinct indices without replacement with probability
/// proportional to `weights` (successive draws renormalise over the remaining
/// items). This models systems heterogeneity: clients with larger weights
/// (better accuracy under the paper's `(a + δ)^b` scheme) participate more
/// often.
///
/// # Errors
///
/// Returns [`MathError::InvalidArgument`] if `count` is zero or larger than
/// the number of strictly-positive weights, or if any weight is negative or
/// non-finite.
pub fn weighted_sample_without_replacement(
    rng: &mut impl Rng,
    weights: &[f64],
    count: usize,
) -> Result<Vec<usize>> {
    if count == 0 {
        return Err(MathError::InvalidArgument {
            message: "cannot sample 0 elements".into(),
        });
    }
    if weights.iter().any(|&w| w < 0.0 || !w.is_finite()) {
        return Err(MathError::InvalidArgument {
            message: "weights must be finite and non-negative".into(),
        });
    }
    let positive = weights.iter().filter(|&&w| w > 0.0).count();
    if count > positive {
        return Err(MathError::InvalidArgument {
            message: format!("cannot sample {count} items: only {positive} have positive weight"),
        });
    }
    // Efraimidis-Spirakis reservoir-style keys: item i gets key u^(1/w_i); the
    // `count` largest keys form a without-replacement sample proportional to
    // the weights. Using log-keys avoids underflow for tiny weights.
    let mut keyed: Vec<(f64, usize)> = weights
        .iter()
        .enumerate()
        .filter(|(_, &w)| w > 0.0)
        .map(|(i, &w)| {
            let u: f64 = rng.gen_range(f64::MIN_POSITIVE..1.0);
            (u.ln() / w, i)
        })
        .collect();
    keyed.sort_by(|a, b| b.0.partial_cmp(&a.0).expect("keys are finite"));
    Ok(keyed.into_iter().take(count).map(|(_, i)| i).collect())
}

/// Normalises `weights` into a probability vector.
///
/// # Errors
///
/// Returns [`MathError::EmptyInput`] for an empty slice and
/// [`MathError::InvalidArgument`] if any weight is negative or all are zero.
pub fn normalize_probabilities(weights: &[f64]) -> Result<Vec<f64>> {
    if weights.is_empty() {
        return Err(MathError::EmptyInput {
            what: "normalize_probabilities",
        });
    }
    if weights.iter().any(|&w| w < 0.0 || !w.is_finite()) {
        return Err(MathError::InvalidArgument {
            message: "weights must be finite and non-negative".into(),
        });
    }
    let total: f64 = weights.iter().sum();
    if total <= 0.0 {
        return Err(MathError::InvalidArgument {
            message: "weights must not all be zero".into(),
        });
    }
    Ok(weights.iter().map(|&w| w / total).collect())
}

/// Draws a single index from the categorical distribution given by
/// `probabilities` (assumed to sum to 1; the last index absorbs rounding).
pub fn sample_categorical(rng: &mut impl Rng, probabilities: &[f64]) -> usize {
    let u: f64 = rng.gen();
    let mut acc = 0.0;
    for (i, &p) in probabilities.iter().enumerate() {
        acc += p;
        if u < acc {
            return i;
        }
    }
    probabilities.len().saturating_sub(1)
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashSet;

    #[test]
    fn seed_stream_is_deterministic_and_distinct() {
        let mut a = SeedStream::new(7);
        let mut b = SeedStream::new(7);
        let seeds_a: Vec<u64> = (0..10).map(|_| a.next_seed()).collect();
        let seeds_b: Vec<u64> = (0..10).map(|_| b.next_seed()).collect();
        assert_eq!(seeds_a, seeds_b);
        let unique: HashSet<u64> = seeds_a.iter().copied().collect();
        assert_eq!(unique.len(), 10);
        assert_eq!(a.root(), 7);
    }

    #[test]
    fn different_roots_give_different_streams() {
        let mut a = SeedStream::new(1);
        let mut b = SeedStream::new(2);
        assert_ne!(a.next_seed(), b.next_seed());
    }

    #[test]
    fn child_streams_are_independent() {
        let mut parent = SeedStream::new(99);
        let mut c1 = parent.child();
        let mut c2 = parent.child();
        assert_ne!(c1.next_seed(), c2.next_seed());
    }

    #[test]
    fn seed_tree_is_positional_not_ordered() {
        let tree = SeedTree::new(7);
        // Same position, same seed — regardless of derivation order.
        let forward: Vec<u64> = (0..8).map(|i| tree.child(i).seed()).collect();
        let backward: Vec<u64> = (0..8).rev().map(|i| tree.child(i).seed()).collect();
        assert_eq!(forward, backward.into_iter().rev().collect::<Vec<_>>());
        // Distinct positions give distinct seeds.
        let unique: HashSet<u64> = forward.iter().copied().collect();
        assert_eq!(unique.len(), 8);
    }

    #[test]
    fn seed_tree_paths_compose() {
        let tree = SeedTree::new(123);
        assert_eq!(tree.derive(&[4, 2]).seed(), tree.child(4).child(2).seed());
        assert_eq!(tree.derive(&[]).seed(), tree.seed());
        // Sibling subtrees do not collide on their children.
        assert_ne!(tree.derive(&[0, 1]).seed(), tree.derive(&[1, 0]).seed());
        // The tree agrees with the free-function derivation.
        assert_eq!(tree.child(9).seed(), derive_seed(123, 9));
    }

    #[test]
    fn seed_tree_rng_and_stream_are_deterministic() {
        let tree = SeedTree::new(5);
        let mut r1 = tree.child(3).rng();
        let mut r2 = tree.child(3).rng();
        assert_eq!(r1.gen::<u64>(), r2.gen::<u64>());
        let mut s1 = tree.child(3).stream();
        assert_eq!(s1.root(), tree.child(3).seed());
        assert_ne!(s1.next_seed(), tree.child(3).seed());
    }

    #[test]
    fn derive_seed_depends_on_both_args() {
        assert_ne!(derive_seed(1, 0), derive_seed(1, 1));
        assert_ne!(derive_seed(1, 0), derive_seed(2, 0));
        assert_eq!(derive_seed(5, 5), derive_seed(5, 5));
    }

    #[test]
    fn rng_for_is_reproducible() {
        let mut r1 = rng_for(3, 4);
        let mut r2 = rng_for(3, 4);
        assert_eq!(r1.gen::<u64>(), r2.gen::<u64>());
    }

    #[test]
    fn sample_without_replacement_distinct_and_in_range() {
        let mut rng = rng_for(0, 0);
        let s = sample_without_replacement(&mut rng, 100, 30).unwrap();
        assert_eq!(s.len(), 30);
        let unique: HashSet<usize> = s.iter().copied().collect();
        assert_eq!(unique.len(), 30);
        assert!(s.iter().all(|&i| i < 100));
    }

    #[test]
    fn sample_without_replacement_full_population() {
        let mut rng = rng_for(0, 1);
        let s = sample_without_replacement(&mut rng, 10, 10).unwrap();
        let unique: HashSet<usize> = s.iter().copied().collect();
        assert_eq!(unique.len(), 10);
    }

    #[test]
    fn sample_without_replacement_validation() {
        let mut rng = rng_for(0, 2);
        assert!(sample_without_replacement(&mut rng, 5, 6).is_err());
        assert!(sample_without_replacement(&mut rng, 5, 0).is_err());
    }

    #[test]
    fn floyd_sampling_distinct_in_range_and_o_count() {
        let mut rng = rng_for(8, 0);
        // A population far too large to enumerate: memory stays O(count).
        let s = sample_ids_without_replacement(&mut rng, 1_000_000_000_000, 64).unwrap();
        assert_eq!(s.len(), 64);
        let unique: HashSet<u64> = s.iter().copied().collect();
        assert_eq!(unique.len(), 64);
        assert!(s.iter().all(|&i| i < 1_000_000_000_000));
        // Full-population sample covers everything.
        let all = sample_ids_without_replacement(&mut rng, 12, 12).unwrap();
        let unique: HashSet<u64> = all.iter().copied().collect();
        assert_eq!(unique.len(), 12);
        assert!(all.iter().all(|&i| i < 12));
    }

    #[test]
    fn floyd_sampling_is_deterministic_and_validated() {
        let a = sample_ids_without_replacement(&mut rng_for(9, 0), 1000, 10).unwrap();
        let b = sample_ids_without_replacement(&mut rng_for(9, 0), 1000, 10).unwrap();
        assert_eq!(a, b);
        let mut rng = rng_for(9, 1);
        assert!(sample_ids_without_replacement(&mut rng, 5, 6).is_err());
        assert!(sample_ids_without_replacement(&mut rng, 5, 0).is_err());
    }

    #[test]
    fn floyd_sampling_is_roughly_uniform() {
        // Each of 10 ids should appear in a 2-of-10 sample with frequency
        // 0.2; allow a generous tolerance over 3000 draws.
        let mut rng = rng_for(9, 2);
        let mut counts = [0usize; 10];
        let trials = 3000;
        for _ in 0..trials {
            for id in sample_ids_without_replacement(&mut rng, 10, 2).unwrap() {
                counts[id as usize] += 1;
            }
        }
        for (id, &c) in counts.iter().enumerate() {
            let freq = c as f64 / trials as f64;
            assert!(
                (freq - 0.2).abs() < 0.06,
                "id {id} frequency was {freq}, expected ~0.2"
            );
        }
    }

    #[test]
    fn weighted_sampling_respects_zero_weights() {
        let mut rng = rng_for(1, 0);
        let weights = vec![0.0, 1.0, 0.0, 1.0, 1.0];
        for _ in 0..20 {
            let s = weighted_sample_without_replacement(&mut rng, &weights, 2).unwrap();
            assert!(s.iter().all(|&i| weights[i] > 0.0));
            let unique: HashSet<usize> = s.iter().copied().collect();
            assert_eq!(unique.len(), 2);
        }
    }

    #[test]
    fn weighted_sampling_biases_towards_heavy_items() {
        let mut rng = rng_for(1, 1);
        let weights = vec![10.0, 1.0, 1.0, 1.0];
        let mut count_heavy = 0;
        let trials = 2000;
        for _ in 0..trials {
            let s = weighted_sample_without_replacement(&mut rng, &weights, 1).unwrap();
            if s[0] == 0 {
                count_heavy += 1;
            }
        }
        // Expected frequency 10/13 ~= 0.77; allow wide tolerance.
        let freq = count_heavy as f64 / trials as f64;
        assert!(freq > 0.6, "heavy item frequency was {freq}");
    }

    #[test]
    fn weighted_sampling_validation() {
        let mut rng = rng_for(1, 2);
        assert!(weighted_sample_without_replacement(&mut rng, &[1.0, -1.0], 1).is_err());
        assert!(weighted_sample_without_replacement(&mut rng, &[0.0, 0.0], 1).is_err());
        assert!(weighted_sample_without_replacement(&mut rng, &[1.0], 0).is_err());
        assert!(weighted_sample_without_replacement(&mut rng, &[1.0, f64::NAN], 1).is_err());
    }

    #[test]
    fn normalize_probabilities_sums_to_one() {
        let p = normalize_probabilities(&[2.0, 6.0]).unwrap();
        assert!((p[0] - 0.25).abs() < 1e-12);
        assert!((p.iter().sum::<f64>() - 1.0).abs() < 1e-12);
        assert!(normalize_probabilities(&[]).is_err());
        assert!(normalize_probabilities(&[0.0]).is_err());
        assert!(normalize_probabilities(&[-1.0, 2.0]).is_err());
    }

    #[test]
    fn categorical_sampling_matches_distribution() {
        let mut rng = rng_for(2, 0);
        let p = [0.1, 0.7, 0.2];
        let mut counts = [0usize; 3];
        let n = 5000;
        for _ in 0..n {
            counts[sample_categorical(&mut rng, &p)] += 1;
        }
        let f1 = counts[1] as f64 / n as f64;
        assert!((f1 - 0.7).abs() < 0.05, "frequency of index 1 was {f1}");
    }

    #[test]
    fn categorical_sampling_handles_rounding() {
        let mut rng = rng_for(2, 1);
        // Probabilities that sum slightly below 1 must still return a valid index.
        let p = [0.3, 0.3, 0.3999];
        for _ in 0..100 {
            assert!(sample_categorical(&mut rng, &p) < 3);
        }
    }
}

#[cfg(test)]
mod proptests {
    use super::*;
    use proptest::prelude::*;

    proptest! {
        #[test]
        fn prop_sample_without_replacement_is_a_set(
            seed in any::<u64>(),
            population in 1usize..200,
            frac in 0.01f64..1.0,
        ) {
            let count = ((population as f64 * frac).ceil() as usize).clamp(1, population);
            let mut rng = rng_for(seed, 0);
            let s = sample_without_replacement(&mut rng, population, count).unwrap();
            prop_assert_eq!(s.len(), count);
            let unique: std::collections::HashSet<usize> = s.iter().copied().collect();
            prop_assert_eq!(unique.len(), count);
            prop_assert!(s.iter().all(|&i| i < population));
        }

        #[test]
        fn prop_weighted_sample_unique_and_positive_weight(
            seed in any::<u64>(),
            weights in proptest::collection::vec(0.0f64..10.0, 2..50),
        ) {
            let positive = weights.iter().filter(|&&w| w > 0.0).count();
            prop_assume!(positive >= 1);
            let count = 1 + (seed as usize) % positive;
            let mut rng = rng_for(seed, 1);
            let s = weighted_sample_without_replacement(&mut rng, &weights, count).unwrap();
            prop_assert_eq!(s.len(), count);
            let unique: std::collections::HashSet<usize> = s.iter().copied().collect();
            prop_assert_eq!(unique.len(), count);
            prop_assert!(s.iter().all(|&i| weights[i] > 0.0));
        }

        #[test]
        fn prop_normalized_probabilities_sum_to_one(
            weights in proptest::collection::vec(0.0f64..100.0, 1..64),
        ) {
            prop_assume!(weights.iter().sum::<f64>() > 0.0);
            let p = normalize_probabilities(&weights).unwrap();
            let total: f64 = p.iter().sum();
            prop_assert!((total - 1.0).abs() < 1e-9);
            prop_assert!(p.iter().all(|&x| (0.0..=1.0 + 1e-12).contains(&x)));
        }

        #[test]
        fn prop_derived_seeds_are_deterministic(root in any::<u64>(), index in any::<u64>()) {
            prop_assert_eq!(derive_seed(root, index), derive_seed(root, index));
        }
    }
}
