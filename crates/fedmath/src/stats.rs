//! Descriptive statistics used by the experiment harness.
//!
//! The paper reports the *median* full-validation error over bootstrap trials
//! and fills in the lower/upper *quartiles* (§3, "Evaluation"), evaluates
//! models as a *weighted* average of per-client errors (Eq. 2), and summarises
//! per-client behaviour with minima and spreads (Fig. 7). This module collects
//! those primitives.

use crate::{MathError, Result};
use serde::{Deserialize, Serialize};

/// Arithmetic mean of `values`. Returns 0.0 for an empty slice.
pub fn mean(values: &[f64]) -> f64 {
    if values.is_empty() {
        0.0
    } else {
        values.iter().sum::<f64>() / values.len() as f64
    }
}

/// Population variance of `values`. Returns 0.0 for slices with < 2 elements.
pub fn variance(values: &[f64]) -> f64 {
    if values.len() < 2 {
        return 0.0;
    }
    let m = mean(values);
    values.iter().map(|v| (v - m) * (v - m)).sum::<f64>() / values.len() as f64
}

/// Population standard deviation of `values`.
pub fn std_dev(values: &[f64]) -> f64 {
    variance(values).sqrt()
}

/// Weighted mean `sum(w_k * v_k) / sum(w_k)`.
///
/// This is exactly the federated evaluation objective of Eq. 2 in the paper
/// when `values` are per-client error rates and `weights` are the client
/// weights `p_{val,k}` (all-ones for uniform weighting, local dataset sizes
/// for weighted evaluation).
///
/// # Errors
///
/// Returns [`MathError::ShapeMismatch`] if the slices have different lengths,
/// [`MathError::EmptyInput`] if they are empty, and
/// [`MathError::InvalidArgument`] if any weight is negative or the weights sum
/// to zero.
pub fn weighted_mean(values: &[f64], weights: &[f64]) -> Result<f64> {
    if values.len() != weights.len() {
        return Err(MathError::ShapeMismatch {
            left: (values.len(), 1),
            right: (weights.len(), 1),
            op: "weighted_mean",
        });
    }
    if values.is_empty() {
        return Err(MathError::EmptyInput {
            what: "weighted_mean",
        });
    }
    if weights.iter().any(|&w| w < 0.0) {
        return Err(MathError::InvalidArgument {
            message: "weights must be non-negative".into(),
        });
    }
    let total: f64 = weights.iter().sum();
    if total <= 0.0 {
        return Err(MathError::InvalidArgument {
            message: "weights must not all be zero".into(),
        });
    }
    Ok(values
        .iter()
        .zip(weights.iter())
        .map(|(v, w)| v * w)
        .sum::<f64>()
        / total)
}

/// Linear-interpolation quantile (same convention as `numpy.quantile`).
///
/// # Errors
///
/// Returns [`MathError::EmptyInput`] for an empty slice and
/// [`MathError::InvalidArgument`] if `q` is outside `[0, 1]` or any value is NaN.
pub fn quantile(values: &[f64], q: f64) -> Result<f64> {
    if values.is_empty() {
        return Err(MathError::EmptyInput { what: "quantile" });
    }
    if !(0.0..=1.0).contains(&q) {
        return Err(MathError::InvalidArgument {
            message: format!("quantile {q} outside [0, 1]"),
        });
    }
    if values.iter().any(|v| v.is_nan()) {
        return Err(MathError::InvalidArgument {
            message: "quantile input contains NaN".into(),
        });
    }
    let mut sorted = values.to_vec();
    sorted.sort_by(|a, b| a.partial_cmp(b).expect("NaN filtered above"));
    let pos = q * (sorted.len() - 1) as f64;
    let lower = pos.floor() as usize;
    let upper = pos.ceil() as usize;
    if lower == upper {
        Ok(sorted[lower])
    } else {
        let frac = pos - lower as f64;
        Ok(sorted[lower] * (1.0 - frac) + sorted[upper] * frac)
    }
}

/// Median (0.5 quantile).
///
/// # Errors
///
/// See [`quantile`].
pub fn median(values: &[f64]) -> Result<f64> {
    quantile(values, 0.5)
}

/// Index of the minimum value; ties resolve to the first occurrence.
///
/// # Errors
///
/// Returns [`MathError::EmptyInput`] for an empty slice.
pub fn argmin(values: &[f64]) -> Result<usize> {
    if values.is_empty() {
        return Err(MathError::EmptyInput { what: "argmin" });
    }
    let mut best = 0;
    for (i, &v) in values.iter().enumerate() {
        if v < values[best] {
            best = i;
        }
    }
    Ok(best)
}

/// Index of the maximum value; ties resolve to the first occurrence.
///
/// # Errors
///
/// Returns [`MathError::EmptyInput`] for an empty slice.
pub fn argmax(values: &[f64]) -> Result<usize> {
    if values.is_empty() {
        return Err(MathError::EmptyInput { what: "argmax" });
    }
    let mut best = 0;
    for (i, &v) in values.iter().enumerate() {
        if v > values[best] {
            best = i;
        }
    }
    Ok(best)
}

/// Minimum value of a non-empty slice.
///
/// # Errors
///
/// Returns [`MathError::EmptyInput`] for an empty slice.
pub fn min(values: &[f64]) -> Result<f64> {
    argmin(values).map(|i| values[i])
}

/// Maximum value of a non-empty slice.
///
/// # Errors
///
/// Returns [`MathError::EmptyInput`] for an empty slice.
pub fn max(values: &[f64]) -> Result<f64> {
    argmax(values).map(|i| values[i])
}

/// Median / lower-quartile / upper-quartile summary of a set of trial
/// outcomes, as reported in every figure of the paper.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct QuartileSummary {
    /// 25th percentile.
    pub lower: f64,
    /// 50th percentile (median).
    pub median: f64,
    /// 75th percentile.
    pub upper: f64,
    /// Number of observations summarised.
    pub count: usize,
}

impl QuartileSummary {
    /// Summarises `values` into quartiles.
    ///
    /// # Errors
    ///
    /// Returns [`MathError::EmptyInput`] for an empty slice.
    pub fn from_values(values: &[f64]) -> Result<Self> {
        Ok(QuartileSummary {
            lower: quantile(values, 0.25)?,
            median: quantile(values, 0.5)?,
            upper: quantile(values, 0.75)?,
            count: values.len(),
        })
    }

    /// Interquartile range (`upper - lower`).
    pub fn iqr(&self) -> f64 {
        self.upper - self.lower
    }
}

/// Running summary of scalar observations (count / mean / min / max), used by
/// dataset statistics tables.
#[derive(Debug, Clone, Copy, PartialEq, Default, Serialize, Deserialize)]
pub struct RunningSummary {
    count: usize,
    sum: f64,
    min: f64,
    max: f64,
}

impl RunningSummary {
    /// Creates an empty summary.
    pub fn new() -> Self {
        RunningSummary {
            count: 0,
            sum: 0.0,
            min: f64::INFINITY,
            max: f64::NEG_INFINITY,
        }
    }

    /// Adds one observation.
    pub fn push(&mut self, value: f64) {
        self.count += 1;
        self.sum += value;
        self.min = self.min.min(value);
        self.max = self.max.max(value);
    }

    /// Number of observations.
    pub fn count(&self) -> usize {
        self.count
    }

    /// Sum of observations.
    pub fn sum(&self) -> f64 {
        self.sum
    }

    /// Mean of observations (0.0 when empty).
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum / self.count as f64
        }
    }

    /// Minimum observation (`+inf` when empty).
    pub fn min(&self) -> f64 {
        self.min
    }

    /// Maximum observation (`-inf` when empty).
    pub fn max(&self) -> f64 {
        self.max
    }
}

impl Extend<f64> for RunningSummary {
    fn extend<T: IntoIterator<Item = f64>>(&mut self, iter: T) {
        for v in iter {
            self.push(v);
        }
    }
}

impl FromIterator<f64> for RunningSummary {
    fn from_iter<T: IntoIterator<Item = f64>>(iter: T) -> Self {
        let mut s = RunningSummary::new();
        s.extend(iter);
        s
    }
}

/// Pearson correlation coefficient between two equal-length slices.
///
/// Used to quantify HP transfer between dataset pairs (Fig. 10/14).
///
/// # Errors
///
/// Returns [`MathError::ShapeMismatch`] if lengths differ,
/// [`MathError::EmptyInput`] if fewer than 2 points, and
/// [`MathError::InvalidArgument`] if either slice has zero variance.
pub fn pearson_correlation(x: &[f64], y: &[f64]) -> Result<f64> {
    if x.len() != y.len() {
        return Err(MathError::ShapeMismatch {
            left: (x.len(), 1),
            right: (y.len(), 1),
            op: "pearson_correlation",
        });
    }
    if x.len() < 2 {
        return Err(MathError::EmptyInput {
            what: "pearson_correlation",
        });
    }
    let mx = mean(x);
    let my = mean(y);
    let mut cov = 0.0;
    let mut vx = 0.0;
    let mut vy = 0.0;
    for (&a, &b) in x.iter().zip(y.iter()) {
        cov += (a - mx) * (b - my);
        vx += (a - mx) * (a - mx);
        vy += (b - my) * (b - my);
    }
    if vx == 0.0 || vy == 0.0 {
        return Err(MathError::InvalidArgument {
            message: "pearson correlation undefined for constant input".into(),
        });
    }
    Ok(cov / (vx.sqrt() * vy.sqrt()))
}

/// Spearman rank correlation between two equal-length slices.
///
/// HP tuning only needs the *ranking* of configurations to be preserved, so
/// rank correlation is the natural measure of how much a noise source corrupts
/// evaluation (used by the ablation benches and tests).
///
/// # Errors
///
/// Same conditions as [`pearson_correlation`].
pub fn spearman_correlation(x: &[f64], y: &[f64]) -> Result<f64> {
    let rx = ranks(x);
    let ry = ranks(y);
    pearson_correlation(&rx, &ry)
}

/// Average ranks of `values` (ties receive the mean of the tied ranks).
pub fn ranks(values: &[f64]) -> Vec<f64> {
    let mut idx: Vec<usize> = (0..values.len()).collect();
    idx.sort_by(|&a, &b| {
        values[a]
            .partial_cmp(&values[b])
            .unwrap_or(std::cmp::Ordering::Equal)
    });
    let mut out = vec![0.0; values.len()];
    let mut i = 0;
    while i < idx.len() {
        let mut j = i;
        while j + 1 < idx.len() && values[idx[j + 1]] == values[idx[i]] {
            j += 1;
        }
        // ranks i..=j are tied; assign their average (1-based ranks)
        let avg = (i + j) as f64 / 2.0 + 1.0;
        for &k in &idx[i..=j] {
            out[k] = avg;
        }
        i = j + 1;
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mean_and_variance() {
        assert_eq!(mean(&[]), 0.0);
        assert_eq!(mean(&[2.0, 4.0]), 3.0);
        assert_eq!(variance(&[1.0]), 0.0);
        assert!((variance(&[1.0, 3.0]) - 1.0).abs() < 1e-12);
        assert!((std_dev(&[1.0, 3.0]) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn weighted_mean_matches_eq2() {
        // Eq. 2 with two clients: errors 0.2 and 0.8, weights 3 and 1.
        let v = weighted_mean(&[0.2, 0.8], &[3.0, 1.0]).unwrap();
        assert!((v - 0.35).abs() < 1e-12);
        // Uniform weights reduce to the arithmetic mean.
        let u = weighted_mean(&[0.2, 0.8], &[1.0, 1.0]).unwrap();
        assert!((u - 0.5).abs() < 1e-12);
    }

    #[test]
    fn weighted_mean_validation() {
        assert!(weighted_mean(&[], &[]).is_err());
        assert!(weighted_mean(&[1.0], &[1.0, 2.0]).is_err());
        assert!(weighted_mean(&[1.0], &[-1.0]).is_err());
        assert!(weighted_mean(&[1.0, 2.0], &[0.0, 0.0]).is_err());
    }

    #[test]
    fn quantile_interpolates() {
        let v = [1.0, 2.0, 3.0, 4.0];
        assert_eq!(quantile(&v, 0.0).unwrap(), 1.0);
        assert_eq!(quantile(&v, 1.0).unwrap(), 4.0);
        assert!((quantile(&v, 0.5).unwrap() - 2.5).abs() < 1e-12);
        assert!((quantile(&v, 0.25).unwrap() - 1.75).abs() < 1e-12);
        assert_eq!(median(&[5.0, 1.0, 3.0]).unwrap(), 3.0);
    }

    #[test]
    fn quantile_validation() {
        assert!(quantile(&[], 0.5).is_err());
        assert!(quantile(&[1.0], 1.5).is_err());
        assert!(quantile(&[f64::NAN], 0.5).is_err());
    }

    #[test]
    fn argmin_argmax_min_max() {
        let v = [3.0, 1.0, 2.0, 1.0];
        assert_eq!(argmin(&v).unwrap(), 1);
        assert_eq!(argmax(&v).unwrap(), 0);
        assert_eq!(min(&v).unwrap(), 1.0);
        assert_eq!(max(&v).unwrap(), 3.0);
        assert!(argmin(&[]).is_err());
        assert!(argmax(&[]).is_err());
    }

    #[test]
    fn quartile_summary() {
        let s = QuartileSummary::from_values(&[1.0, 2.0, 3.0, 4.0, 5.0]).unwrap();
        assert_eq!(s.median, 3.0);
        assert_eq!(s.lower, 2.0);
        assert_eq!(s.upper, 4.0);
        assert_eq!(s.iqr(), 2.0);
        assert_eq!(s.count, 5);
        assert!(QuartileSummary::from_values(&[]).is_err());
    }

    #[test]
    fn running_summary_accumulates() {
        let mut s = RunningSummary::new();
        assert_eq!(s.mean(), 0.0);
        s.extend([2.0, 4.0, 6.0]);
        assert_eq!(s.count(), 3);
        assert_eq!(s.mean(), 4.0);
        assert_eq!(s.min(), 2.0);
        assert_eq!(s.max(), 6.0);
        assert_eq!(s.sum(), 12.0);
        let s2: RunningSummary = [1.0, 5.0].into_iter().collect();
        assert_eq!(s2.count(), 2);
    }

    #[test]
    fn pearson_perfect_correlation() {
        let x = [1.0, 2.0, 3.0, 4.0];
        let y = [2.0, 4.0, 6.0, 8.0];
        assert!((pearson_correlation(&x, &y).unwrap() - 1.0).abs() < 1e-12);
        let yneg = [8.0, 6.0, 4.0, 2.0];
        assert!((pearson_correlation(&x, &yneg).unwrap() + 1.0).abs() < 1e-12);
    }

    #[test]
    fn pearson_validation() {
        assert!(pearson_correlation(&[1.0], &[1.0, 2.0]).is_err());
        assert!(pearson_correlation(&[1.0], &[1.0]).is_err());
        assert!(pearson_correlation(&[1.0, 1.0], &[1.0, 2.0]).is_err());
    }

    #[test]
    fn spearman_is_rank_based() {
        // Monotone but nonlinear relationship still has rank correlation 1.
        let x = [1.0, 2.0, 3.0, 4.0];
        let y = [1.0, 10.0, 100.0, 1000.0];
        assert!((spearman_correlation(&x, &y).unwrap() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn ranks_handle_ties() {
        let r = ranks(&[10.0, 20.0, 20.0, 30.0]);
        assert_eq!(r, vec![1.0, 2.5, 2.5, 4.0]);
    }
}
