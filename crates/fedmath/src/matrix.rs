//! Dense, row-major `f64` matrices.
//!
//! [`Matrix`] is deliberately small: it implements exactly the operations
//! needed by the hand-written gradients in `fedmodels` (matrix products,
//! transposes, elementwise maps, scaled in-place updates) and nothing more.
//! All fallible operations return [`MathError`] rather than
//! panicking so that the simulation layers can surface shape bugs as errors.

use crate::{MathError, Result};
use serde::{Deserialize, Serialize};

/// A dense, row-major matrix of `f64` values.
///
/// # Example
///
/// ```
/// use fedmath::Matrix;
///
/// let m = Matrix::zeros(2, 3);
/// assert_eq!(m.shape(), (2, 3));
/// assert_eq!(m.get(1, 2), 0.0);
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Matrix {
    rows: usize,
    cols: usize,
    data: Vec<f64>,
}

impl Matrix {
    /// Creates a matrix of the given shape filled with zeros.
    pub fn zeros(rows: usize, cols: usize) -> Self {
        Matrix {
            rows,
            cols,
            data: vec![0.0; rows * cols],
        }
    }

    /// Creates a matrix of the given shape filled with `value`.
    pub fn filled(rows: usize, cols: usize, value: f64) -> Self {
        Matrix {
            rows,
            cols,
            data: vec![value; rows * cols],
        }
    }

    /// Creates the `n`-by-`n` identity matrix.
    pub fn identity(n: usize) -> Self {
        let mut m = Matrix::zeros(n, n);
        for i in 0..n {
            m.set(i, i, 1.0);
        }
        m
    }

    /// Creates a matrix from row slices.
    ///
    /// # Errors
    ///
    /// Returns [`MathError::EmptyInput`] if `rows` is empty and
    /// [`MathError::ShapeMismatch`] if the rows have differing lengths.
    pub fn from_rows(rows: &[Vec<f64>]) -> Result<Self> {
        if rows.is_empty() {
            return Err(MathError::EmptyInput {
                what: "Matrix::from_rows",
            });
        }
        let cols = rows[0].len();
        for (i, r) in rows.iter().enumerate() {
            if r.len() != cols {
                return Err(MathError::ShapeMismatch {
                    left: (1, cols),
                    right: (1, r.len()),
                    op: "from_rows",
                });
            }
            let _ = i;
        }
        let mut data = Vec::with_capacity(rows.len() * cols);
        for r in rows {
            data.extend_from_slice(r);
        }
        Ok(Matrix {
            rows: rows.len(),
            cols,
            data,
        })
    }

    /// Creates a matrix from a flat row-major vector.
    ///
    /// # Errors
    ///
    /// Returns [`MathError::InvalidArgument`] if `data.len() != rows * cols`.
    pub fn from_vec(rows: usize, cols: usize, data: Vec<f64>) -> Result<Self> {
        if data.len() != rows * cols {
            return Err(MathError::InvalidArgument {
                message: format!(
                    "data length {} does not match shape {}x{}",
                    data.len(),
                    rows,
                    cols
                ),
            });
        }
        Ok(Matrix { rows, cols, data })
    }

    /// Creates a matrix by evaluating `f(row, col)` for every entry.
    pub fn from_fn(rows: usize, cols: usize, mut f: impl FnMut(usize, usize) -> f64) -> Self {
        let mut data = Vec::with_capacity(rows * cols);
        for i in 0..rows {
            for j in 0..cols {
                data.push(f(i, j));
            }
        }
        Matrix { rows, cols, data }
    }

    /// Number of rows.
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// Shape as `(rows, cols)`.
    pub fn shape(&self) -> (usize, usize) {
        (self.rows, self.cols)
    }

    /// Total number of entries.
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// Returns `true` if the matrix has zero entries.
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// Returns the entry at `(row, col)`.
    ///
    /// # Panics
    ///
    /// Panics if `row >= rows` or `col >= cols`.
    pub fn get(&self, row: usize, col: usize) -> f64 {
        assert!(row < self.rows && col < self.cols, "index out of bounds");
        self.data[row * self.cols + col]
    }

    /// Sets the entry at `(row, col)`.
    ///
    /// # Panics
    ///
    /// Panics if `row >= rows` or `col >= cols`.
    pub fn set(&mut self, row: usize, col: usize, value: f64) {
        assert!(row < self.rows && col < self.cols, "index out of bounds");
        self.data[row * self.cols + col] = value;
    }

    /// Borrows the row with index `row` as a slice.
    ///
    /// # Panics
    ///
    /// Panics if `row >= rows`.
    pub fn row(&self, row: usize) -> &[f64] {
        assert!(row < self.rows, "row index out of bounds");
        &self.data[row * self.cols..(row + 1) * self.cols]
    }

    /// Mutably borrows the row with index `row`.
    ///
    /// # Panics
    ///
    /// Panics if `row >= rows`.
    pub fn row_mut(&mut self, row: usize) -> &mut [f64] {
        assert!(row < self.rows, "row index out of bounds");
        &mut self.data[row * self.cols..(row + 1) * self.cols]
    }

    /// Borrows the underlying row-major data.
    pub fn as_slice(&self) -> &[f64] {
        &self.data
    }

    /// Mutably borrows the underlying row-major data.
    pub fn as_mut_slice(&mut self) -> &mut [f64] {
        &mut self.data
    }

    /// Consumes the matrix and returns the underlying row-major data.
    pub fn into_vec(self) -> Vec<f64> {
        self.data
    }

    /// Matrix product `self * other`.
    ///
    /// Delegates to [`crate::kernel::gemm`], whose documented ascending-`k`
    /// accumulation order matches the naive triple loop bit-for-bit. There is
    /// no sparsity shortcut: `0.0 * NaN` and `0.0 * inf` propagate as IEEE
    /// 754 requires.
    ///
    /// # Errors
    ///
    /// Returns [`MathError::ShapeMismatch`] if `self.cols() != other.rows()`.
    pub fn matmul(&self, other: &Matrix) -> Result<Matrix> {
        if self.cols != other.rows {
            return Err(MathError::ShapeMismatch {
                left: self.shape(),
                right: other.shape(),
                op: "matmul",
            });
        }
        let mut out = Matrix::zeros(self.rows, other.cols);
        crate::kernel::gemm(
            self.rows,
            self.cols,
            other.cols,
            &self.data,
            &other.data,
            &mut out.data,
        );
        Ok(out)
    }

    /// Matrix-vector product `self * v`.
    ///
    /// Uses [`crate::kernel::dot`] per row, so the per-example forward pass
    /// and the batched [`crate::kernel::gemm_nt`] forward pass share one
    /// accumulation order and produce bit-identical activations.
    ///
    /// # Errors
    ///
    /// Returns [`MathError::ShapeMismatch`] if `v.len() != self.cols()`.
    pub fn matvec(&self, v: &[f64]) -> Result<Vec<f64>> {
        if v.len() != self.cols {
            return Err(MathError::ShapeMismatch {
                left: self.shape(),
                right: (v.len(), 1),
                op: "matvec",
            });
        }
        let mut out = vec![0.0; self.rows];
        crate::kernel::matvec_into(self.rows, self.cols, &self.data, v, &mut out);
        Ok(out)
    }

    /// Matrix-vector product written into an existing buffer (no allocation).
    ///
    /// Same accumulation order as [`Matrix::matvec`].
    ///
    /// # Errors
    ///
    /// Returns [`MathError::ShapeMismatch`] if `v.len() != self.cols()` or
    /// `out.len() != self.rows()`.
    pub fn matvec_into(&self, v: &[f64], out: &mut [f64]) -> Result<()> {
        if v.len() != self.cols || out.len() != self.rows {
            return Err(MathError::ShapeMismatch {
                left: self.shape(),
                right: (v.len(), 1),
                op: "matvec_into",
            });
        }
        crate::kernel::matvec_into(self.rows, self.cols, &self.data, v, out);
        Ok(())
    }

    /// Copies `params` into the matrix storage in place (no reallocation).
    ///
    /// # Errors
    ///
    /// Returns [`MathError::ShapeMismatch`] if `params.len() != self.len()`.
    pub fn copy_from_slice(&mut self, params: &[f64]) -> Result<()> {
        if params.len() != self.data.len() {
            return Err(MathError::ShapeMismatch {
                left: self.shape(),
                right: (params.len(), 1),
                op: "copy_from_slice",
            });
        }
        self.data.copy_from_slice(params);
        Ok(())
    }

    /// Returns the transpose of the matrix.
    pub fn transpose(&self) -> Matrix {
        let mut out = Matrix::zeros(self.cols, self.rows);
        for i in 0..self.rows {
            for j in 0..self.cols {
                out.data[j * self.rows + i] = self.data[i * self.cols + j];
            }
        }
        out
    }

    /// Elementwise sum `self + other`.
    ///
    /// # Errors
    ///
    /// Returns [`MathError::ShapeMismatch`] if the shapes differ.
    pub fn add(&self, other: &Matrix) -> Result<Matrix> {
        self.zip_with(other, "add", |a, b| a + b)
    }

    /// Elementwise difference `self - other`.
    ///
    /// # Errors
    ///
    /// Returns [`MathError::ShapeMismatch`] if the shapes differ.
    pub fn sub(&self, other: &Matrix) -> Result<Matrix> {
        self.zip_with(other, "sub", |a, b| a - b)
    }

    /// Elementwise (Hadamard) product.
    ///
    /// # Errors
    ///
    /// Returns [`MathError::ShapeMismatch`] if the shapes differ.
    pub fn hadamard(&self, other: &Matrix) -> Result<Matrix> {
        self.zip_with(other, "hadamard", |a, b| a * b)
    }

    fn zip_with(
        &self,
        other: &Matrix,
        op: &'static str,
        f: impl Fn(f64, f64) -> f64,
    ) -> Result<Matrix> {
        if self.shape() != other.shape() {
            return Err(MathError::ShapeMismatch {
                left: self.shape(),
                right: other.shape(),
                op,
            });
        }
        let data = self
            .data
            .iter()
            .zip(other.data.iter())
            .map(|(&a, &b)| f(a, b))
            .collect();
        Ok(Matrix {
            rows: self.rows,
            cols: self.cols,
            data,
        })
    }

    /// Returns a new matrix with every entry multiplied by `scalar`.
    pub fn scale(&self, scalar: f64) -> Matrix {
        Matrix {
            rows: self.rows,
            cols: self.cols,
            data: self.data.iter().map(|&x| x * scalar).collect(),
        }
    }

    /// Returns a new matrix with `f` applied to every entry.
    pub fn map(&self, f: impl Fn(f64) -> f64) -> Matrix {
        Matrix {
            rows: self.rows,
            cols: self.cols,
            data: self.data.iter().map(|&x| f(x)).collect(),
        }
    }

    /// Applies `f` to every entry in place.
    pub fn map_inplace(&mut self, f: impl Fn(f64) -> f64) {
        for x in &mut self.data {
            *x = f(*x);
        }
    }

    /// In-place scaled addition: `self += alpha * other` (BLAS `axpy`).
    ///
    /// # Errors
    ///
    /// Returns [`MathError::ShapeMismatch`] if the shapes differ.
    pub fn axpy(&mut self, alpha: f64, other: &Matrix) -> Result<()> {
        if self.shape() != other.shape() {
            return Err(MathError::ShapeMismatch {
                left: self.shape(),
                right: other.shape(),
                op: "axpy",
            });
        }
        for (a, &b) in self.data.iter_mut().zip(other.data.iter()) {
            *a += alpha * b;
        }
        Ok(())
    }

    /// In-place multiplication of every entry by `scalar`.
    pub fn scale_inplace(&mut self, scalar: f64) {
        for x in &mut self.data {
            *x *= scalar;
        }
    }

    /// Sets every entry to zero.
    pub fn fill_zero(&mut self) {
        for x in &mut self.data {
            *x = 0.0;
        }
    }

    /// Sum of all entries.
    pub fn sum(&self) -> f64 {
        self.data.iter().sum()
    }

    /// Mean of all entries. Returns 0.0 for an empty matrix.
    pub fn mean(&self) -> f64 {
        if self.data.is_empty() {
            0.0
        } else {
            self.sum() / self.data.len() as f64
        }
    }

    /// Frobenius norm (square root of the sum of squared entries).
    pub fn frobenius_norm(&self) -> f64 {
        self.data.iter().map(|x| x * x).sum::<f64>().sqrt()
    }

    /// Squared Frobenius norm.
    pub fn frobenius_norm_sq(&self) -> f64 {
        self.data.iter().map(|x| x * x).sum::<f64>()
    }

    /// Returns `true` if any entry is NaN or infinite.
    pub fn has_non_finite(&self) -> bool {
        self.data.iter().any(|x| !x.is_finite())
    }

    /// Outer product of two vectors: returns a `u.len()` x `v.len()` matrix.
    pub fn outer(u: &[f64], v: &[f64]) -> Matrix {
        let mut m = Matrix::zeros(u.len(), v.len());
        for (i, &ui) in u.iter().enumerate() {
            for (j, &vj) in v.iter().enumerate() {
                m.data[i * v.len() + j] = ui * vj;
            }
        }
        m
    }
}

impl Default for Matrix {
    fn default() -> Self {
        Matrix::zeros(0, 0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zeros_and_filled() {
        let z = Matrix::zeros(3, 4);
        assert_eq!(z.shape(), (3, 4));
        assert_eq!(z.sum(), 0.0);
        let f = Matrix::filled(2, 2, 1.5);
        assert_eq!(f.sum(), 6.0);
        assert_eq!(f.mean(), 1.5);
    }

    #[test]
    fn identity_matmul_is_noop() {
        let a = Matrix::from_rows(&[vec![1.0, 2.0, 3.0], vec![4.0, 5.0, 6.0]]).unwrap();
        let i = Matrix::identity(3);
        let product = a.matmul(&i).unwrap();
        assert_eq!(product, a);
    }

    #[test]
    fn matmul_known_values() {
        let a = Matrix::from_rows(&[vec![1.0, 2.0], vec![3.0, 4.0]]).unwrap();
        let b = Matrix::from_rows(&[vec![5.0, 6.0], vec![7.0, 8.0]]).unwrap();
        let c = a.matmul(&b).unwrap();
        assert_eq!(c.row(0), &[19.0, 22.0]);
        assert_eq!(c.row(1), &[43.0, 50.0]);
    }

    #[test]
    fn matmul_propagates_nan_through_zero_coefficients() {
        // Regression: the seed implementation skipped k-terms where
        // A[i][k] == 0.0, so 0.0 * NaN (which is NaN per IEEE 754) was
        // silently dropped. The kernel-backed matmul must propagate it.
        let a = Matrix::from_rows(&[vec![0.0, 1.0]]).unwrap();
        let b = Matrix::from_rows(&[vec![f64::NAN], vec![2.0]]).unwrap();
        let c = a.matmul(&b).unwrap();
        assert!(c.get(0, 0).is_nan(), "0.0 * NaN must propagate NaN");

        let b_inf = Matrix::from_rows(&[vec![f64::INFINITY], vec![2.0]]).unwrap();
        let c_inf = a.matmul(&b_inf).unwrap();
        assert!(
            c_inf.get(0, 0).is_nan(),
            "0.0 * inf is NaN and must propagate"
        );
    }

    #[test]
    fn matvec_into_matches_matvec() {
        let a = Matrix::from_rows(&[vec![1.0, -1.0], vec![2.0, 0.5]]).unwrap();
        let v = vec![3.0, 4.0];
        let mut out = vec![f64::NAN; 2];
        a.matvec_into(&v, &mut out).unwrap();
        assert_eq!(out, a.matvec(&v).unwrap());
        assert!(a.matvec_into(&v, &mut [0.0]).is_err());
        assert!(a.matvec_into(&[1.0], &mut out).is_err());
    }

    #[test]
    fn copy_from_slice_updates_in_place() {
        let mut m = Matrix::zeros(2, 2);
        m.copy_from_slice(&[1.0, 2.0, 3.0, 4.0]).unwrap();
        assert_eq!(m.row(1), &[3.0, 4.0]);
        assert!(m.copy_from_slice(&[1.0]).is_err());
    }

    #[test]
    fn matmul_shape_mismatch_errors() {
        let a = Matrix::zeros(2, 3);
        let b = Matrix::zeros(2, 3);
        let err = a.matmul(&b).unwrap_err();
        assert!(matches!(err, MathError::ShapeMismatch { op: "matmul", .. }));
    }

    #[test]
    fn matvec_matches_matmul() {
        let a = Matrix::from_rows(&[vec![1.0, -1.0], vec![2.0, 0.5]]).unwrap();
        let v = vec![3.0, 4.0];
        let got = a.matvec(&v).unwrap();
        assert_eq!(got, vec![-1.0, 8.0]);
    }

    #[test]
    fn matvec_rejects_bad_length() {
        let a = Matrix::zeros(2, 2);
        assert!(a.matvec(&[1.0, 2.0, 3.0]).is_err());
    }

    #[test]
    fn transpose_twice_is_identity() {
        let a = Matrix::from_rows(&[vec![1.0, 2.0, 3.0], vec![4.0, 5.0, 6.0]]).unwrap();
        assert_eq!(a.transpose().transpose(), a);
        assert_eq!(a.transpose().shape(), (3, 2));
        assert_eq!(a.transpose().get(2, 1), 6.0);
    }

    #[test]
    fn add_sub_hadamard() {
        let a = Matrix::from_rows(&[vec![1.0, 2.0]]).unwrap();
        let b = Matrix::from_rows(&[vec![3.0, 5.0]]).unwrap();
        assert_eq!(a.add(&b).unwrap().row(0), &[4.0, 7.0]);
        assert_eq!(b.sub(&a).unwrap().row(0), &[2.0, 3.0]);
        assert_eq!(a.hadamard(&b).unwrap().row(0), &[3.0, 10.0]);
        let c = Matrix::zeros(2, 2);
        assert!(a.add(&c).is_err());
    }

    #[test]
    fn axpy_accumulates() {
        let mut a = Matrix::filled(2, 2, 1.0);
        let b = Matrix::filled(2, 2, 2.0);
        a.axpy(0.5, &b).unwrap();
        assert_eq!(a.get(0, 0), 2.0);
        assert!(a.axpy(1.0, &Matrix::zeros(1, 1)).is_err());
    }

    #[test]
    fn scale_and_map() {
        let a = Matrix::from_rows(&[vec![1.0, -2.0]]).unwrap();
        assert_eq!(a.scale(2.0).row(0), &[2.0, -4.0]);
        assert_eq!(a.map(f64::abs).row(0), &[1.0, 2.0]);
        let mut b = a.clone();
        b.map_inplace(|x| x + 1.0);
        assert_eq!(b.row(0), &[2.0, -1.0]);
        b.scale_inplace(0.0);
        assert_eq!(b.sum(), 0.0);
    }

    #[test]
    fn from_vec_validates_length() {
        assert!(Matrix::from_vec(2, 2, vec![1.0; 4]).is_ok());
        assert!(Matrix::from_vec(2, 2, vec![1.0; 3]).is_err());
    }

    #[test]
    fn from_rows_validates() {
        assert!(Matrix::from_rows(&[]).is_err());
        assert!(Matrix::from_rows(&[vec![1.0], vec![1.0, 2.0]]).is_err());
    }

    #[test]
    fn from_fn_builds_expected_entries() {
        let m = Matrix::from_fn(2, 3, |i, j| (i * 10 + j) as f64);
        assert_eq!(m.get(1, 2), 12.0);
        assert_eq!(m.get(0, 0), 0.0);
    }

    #[test]
    fn norms() {
        let a = Matrix::from_rows(&[vec![3.0, 4.0]]).unwrap();
        assert_eq!(a.frobenius_norm(), 5.0);
        assert_eq!(a.frobenius_norm_sq(), 25.0);
    }

    #[test]
    fn non_finite_detection() {
        let mut a = Matrix::zeros(1, 2);
        assert!(!a.has_non_finite());
        a.set(0, 1, f64::NAN);
        assert!(a.has_non_finite());
    }

    #[test]
    fn outer_product() {
        let m = Matrix::outer(&[1.0, 2.0], &[3.0, 4.0, 5.0]);
        assert_eq!(m.shape(), (2, 3));
        assert_eq!(m.get(1, 2), 10.0);
    }

    #[test]
    fn rows_accessors() {
        let mut m = Matrix::from_rows(&[vec![1.0, 2.0], vec![3.0, 4.0]]).unwrap();
        assert_eq!(m.row(1), &[3.0, 4.0]);
        m.row_mut(0)[1] = 9.0;
        assert_eq!(m.get(0, 1), 9.0);
        assert_eq!(m.as_slice().len(), 4);
        assert_eq!(m.clone().into_vec(), vec![1.0, 9.0, 3.0, 4.0]);
    }

    #[test]
    #[should_panic(expected = "index out of bounds")]
    fn get_out_of_bounds_panics() {
        Matrix::zeros(1, 1).get(0, 1);
    }

    #[test]
    fn matrix_is_serializable() {
        fn assert_serde<T: serde::Serialize + serde::de::DeserializeOwned>() {}
        assert_serde::<Matrix>();
    }

    #[test]
    fn default_is_empty() {
        let m = Matrix::default();
        assert!(m.is_empty());
        assert_eq!(m.len(), 0);
    }
}
