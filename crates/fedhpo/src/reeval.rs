//! The noise-aware **re-evaluation** mitigation (§5 of the paper).
//!
//! Under noisy evaluation, selecting the minimum observed score rewards lucky
//! noise draws: the winner is biased low exactly because it was selected. The
//! paper's mitigation is to *re-evaluate the top-k survivors with fresh noise
//! draws* before committing to a winner, and select on the mean of those
//! fresh draws instead.
//!
//! [`ReEvaluation`] wraps any ask/tell tuning method: it passes the inner
//! schedule through untouched and, once the inner schedule finishes, emits
//! one final batch of `top_k × reps` re-evaluation requests (`noise_rep ≥ 1`)
//! at the survivors' reached fidelity. Re-evaluations cost *no* additional
//! training — the survivors' runs already sit at that fidelity — only fresh
//! evaluations. Selection on the resulting history happens through
//! [`TuningOutcome::selected_within_budget`](crate::TuningOutcome::selected_within_budget),
//! which averages the fresh draws per survivor.

use crate::objective::Objective;
use crate::scheduler::{run_scheduler, IntoScheduler, Scheduler, TrialRequest, TrialResult};
use crate::space::{HpConfig, SearchSpace};
use crate::tuner::{Tuner, TuningOutcome};
use crate::{HpoError, Result};
use rand::rngs::StdRng;
use std::collections::{BTreeMap, BTreeSet};

/// Wraps an inner tuning method with the top-k fresh-noise re-evaluation
/// mitigation.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ReEvaluation<C> {
    inner: C,
    top_k: usize,
    reps: usize,
}

impl<C> ReEvaluation<C> {
    /// Wraps `inner`: after its schedule finishes, the `top_k` best
    /// configurations at the highest reached fidelity are each re-evaluated
    /// `reps` times with fresh noise draws.
    pub fn new(inner: C, top_k: usize, reps: usize) -> Self {
        ReEvaluation { inner, top_k, reps }
    }

    /// The wrapped tuning method.
    pub fn inner(&self) -> &C {
        &self.inner
    }

    /// Number of survivors re-evaluated.
    pub fn top_k(&self) -> usize {
        self.top_k
    }

    /// Fresh noise draws per survivor.
    pub fn reps(&self) -> usize {
        self.reps
    }

    fn validate(&self) -> Result<()> {
        if self.top_k == 0 || self.reps == 0 {
            return Err(HpoError::InvalidConfig {
                message: "re-evaluation needs positive top_k and reps".into(),
            });
        }
        Ok(())
    }
}

impl<C: IntoScheduler> IntoScheduler for ReEvaluation<C> {
    type Scheduler = ReEvalScheduler<C::Scheduler>;

    fn scheduler(&self) -> Result<ReEvalScheduler<C::Scheduler>> {
        self.validate()?;
        Ok(ReEvalScheduler {
            inner: self.inner.scheduler()?,
            top_k: self.top_k,
            reps: self.reps,
            incumbents: BTreeMap::new(),
            phase: Phase::Inner,
        })
    }
}

impl<C: IntoScheduler> Tuner for ReEvaluation<C> {
    fn name(&self) -> &'static str {
        "re-eval"
    }

    fn tune(
        &self,
        space: &SearchSpace,
        objective: &mut dyn Objective,
        rng: &mut StdRng,
    ) -> Result<TuningOutcome> {
        run_scheduler(&mut self.scheduler()?, space, objective, rng)
    }
}

#[derive(Debug, Clone, PartialEq)]
enum Phase {
    /// Delegating to the inner schedule.
    Inner,
    /// The re-evaluation batch is out; the `(trial_id, noise_rep)`
    /// coordinates still due.
    ReEvaluating(BTreeSet<(usize, u64)>),
    /// Everything reported.
    Done,
}

/// Ask/tell state of a re-evaluation-wrapped campaign.
#[derive(Debug, Clone)]
pub struct ReEvalScheduler<S> {
    inner: S,
    top_k: usize,
    reps: usize,
    /// Per trial: `(max fidelity reached, last rep-0 score there, config)`.
    incumbents: BTreeMap<usize, (usize, f64, HpConfig)>,
    phase: Phase,
}

impl<S> ReEvalScheduler<S> {
    /// The `top_k` best trials at the overall highest fidelity, ordered by
    /// `(score, trial_id)` — a deterministic function of the inner history.
    fn finalists(&self) -> Vec<(usize, usize, HpConfig)> {
        let max_fidelity = match self.incumbents.values().map(|&(r, _, _)| r).max() {
            Some(max) => max,
            None => return Vec::new(),
        };
        let mut ranked: Vec<(usize, f64, usize, HpConfig)> = self
            .incumbents
            .iter()
            .filter(|(_, &(r, score, _))| r == max_fidelity && score.is_finite())
            .map(|(&id, &(r, score, ref config))| (id, score, r, config.clone()))
            .collect();
        ranked.sort_by(|a, b| a.1.total_cmp(&b.1).then(a.0.cmp(&b.0)));
        ranked
            .into_iter()
            .take(self.top_k)
            .map(|(id, _, resource, config)| (id, resource, config))
            .collect()
    }
}

impl<S: Scheduler> Scheduler for ReEvalScheduler<S> {
    fn name(&self) -> &'static str {
        "re-eval"
    }

    fn suggest(&mut self, space: &SearchSpace, rng: &mut StdRng) -> Result<Vec<TrialRequest>> {
        match &self.phase {
            Phase::Inner => {
                if !self.inner.is_finished() {
                    return self.inner.suggest(space, rng);
                }
                let finalists = self.finalists();
                if finalists.is_empty() {
                    self.phase = Phase::Done;
                    return Ok(Vec::new());
                }
                let mut batch = Vec::with_capacity(finalists.len() * self.reps);
                for (trial_id, resource, config) in finalists {
                    for rep in 1..=self.reps as u64 {
                        batch.push(TrialRequest {
                            trial_id,
                            config: config.clone(),
                            resource,
                            noise_rep: rep,
                        });
                    }
                }
                self.phase =
                    Phase::ReEvaluating(batch.iter().map(|r| (r.trial_id, r.noise_rep)).collect());
                Ok(batch)
            }
            Phase::ReEvaluating(outstanding) => Err(HpoError::InvalidConfig {
                message: format!(
                    "re-eval scheduler asked for a batch with {} results outstanding",
                    outstanding.len()
                ),
            }),
            Phase::Done => Ok(Vec::new()),
        }
    }

    fn report(&mut self, result: &TrialResult) -> Result<()> {
        match &mut self.phase {
            Phase::Inner => {
                self.inner.report(result)?;
                let entry = self
                    .incumbents
                    .entry(result.trial_id)
                    .or_insert_with(|| (result.resource, result.score, result.config.clone()));
                if result.resource >= entry.0 {
                    *entry = (result.resource, result.score, result.config.clone());
                }
                Ok(())
            }
            Phase::ReEvaluating(outstanding) => {
                if !outstanding.remove(&(result.trial_id, result.noise_rep)) {
                    return Err(HpoError::InvalidConfig {
                        message: format!(
                            "re-eval scheduler received an unexpected result for trial {} rep {}",
                            result.trial_id, result.noise_rep
                        ),
                    });
                }
                if outstanding.is_empty() {
                    self.phase = Phase::Done;
                }
                Ok(())
            }
            Phase::Done => Err(HpoError::InvalidConfig {
                message: "re-eval scheduler received a result after completion".into(),
            }),
        }
    }

    fn is_finished(&self) -> bool {
        self.phase == Phase::Done
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::objective::FunctionObjective;
    use crate::random_search::RandomSearch;
    use fedmath::rng::rng_for;

    fn space_1d() -> SearchSpace {
        SearchSpace::new().with_uniform("x", 0.0, 1.0).unwrap()
    }

    #[test]
    fn validation() {
        assert!(ReEvaluation::new(RandomSearch::new(4, 1), 0, 3)
            .scheduler()
            .is_err());
        assert!(ReEvaluation::new(RandomSearch::new(4, 1), 2, 0)
            .scheduler()
            .is_err());
        let policy = ReEvaluation::new(RandomSearch::new(4, 1), 2, 3);
        assert_eq!(policy.name(), "re-eval");
        assert_eq!(policy.top_k(), 2);
        assert_eq!(policy.reps(), 3);
        assert_eq!(policy.inner().num_configs(), 4);
    }

    #[test]
    fn reevaluates_top_k_with_fresh_reps_at_no_training_cost() {
        // A deterministic "noisy" objective: every call adds a different
        // perturbation, so re-evaluations genuinely draw fresh values.
        let mut calls = 0usize;
        let mut objective = FunctionObjective::new(move |config: &HpConfig, _| {
            calls += 1;
            config.values()[0] + 0.01 * (calls as f64 * 7.0).sin()
        });
        let policy = ReEvaluation::new(RandomSearch::new(6, 5), 2, 3);
        let mut rng = rng_for(0, 0);
        let outcome = policy.tune(&space_1d(), &mut objective, &mut rng).unwrap();
        // 6 schedule evaluations + 2 survivors × 3 reps.
        assert_eq!(outcome.num_evaluations(), 6 + 6);
        let reevals: Vec<_> = outcome
            .records()
            .iter()
            .filter(|r| r.noise_rep >= 1)
            .collect();
        assert_eq!(reevals.len(), 6);
        // Exactly two distinct survivors, each with reps 1..=3.
        let mut survivors: Vec<usize> = reevals.iter().map(|r| r.trial_id).collect();
        survivors.dedup();
        assert_eq!(survivors.len(), 2);
        assert!(reevals.iter().all(|r| (1..=3).contains(&r.noise_rep)));
        // Re-evaluations charge no additional training budget.
        assert_eq!(outcome.total_resource(), 6 * 5);
        // Noise-aware selection picks among the re-evaluated survivors.
        let selected = outcome.selected_within_budget(usize::MAX).unwrap();
        assert!(survivors.contains(&selected.trial_id));
        assert!(selected.noise_rep >= 1);
    }

    #[test]
    fn reevaluation_phase_rejects_duplicate_and_unknown_results() {
        use crate::scheduler::{IntoScheduler, Scheduler, TrialResult};
        let policy = ReEvaluation::new(RandomSearch::new(2, 1), 1, 2);
        let mut scheduler = policy.scheduler().unwrap();
        let space = space_1d();
        let mut rng = rng_for(3, 0);
        let inner_batch = scheduler.suggest(&space, &mut rng).unwrap();
        for request in &inner_batch {
            scheduler.report(&TrialResult::of(request, 0.5)).unwrap();
        }
        let reevals = scheduler.suggest(&space, &mut rng).unwrap();
        assert_eq!(reevals.len(), 2);
        // Asking again with results outstanding is a contract violation.
        assert!(scheduler.suggest(&space, &mut rng).is_err());
        scheduler
            .report(&TrialResult::of(&reevals[0], 0.4))
            .unwrap();
        // A duplicate of an already-reported replicate must not consume the
        // remaining slot and end the campaign early.
        assert!(scheduler
            .report(&TrialResult::of(&reevals[0], 0.4))
            .is_err());
        // Nor may a result the scheduler never asked for.
        let mut bogus = reevals[1].clone();
        bogus.noise_rep = 99;
        assert!(scheduler.report(&TrialResult::of(&bogus, 0.4)).is_err());
        assert!(!scheduler.is_finished());
        scheduler
            .report(&TrialResult::of(&reevals[1], 0.6))
            .unwrap();
        assert!(scheduler.is_finished());
        // After completion, any further result is rejected.
        assert!(scheduler
            .report(&TrialResult::of(&reevals[1], 0.6))
            .is_err());
    }

    #[test]
    fn top_k_clamps_to_available_trials() {
        let mut objective = FunctionObjective::new(|config: &HpConfig, _| config.values()[0]);
        let policy = ReEvaluation::new(RandomSearch::new(2, 1), 10, 2);
        let mut rng = rng_for(1, 0);
        let outcome = policy.tune(&space_1d(), &mut objective, &mut rng).unwrap();
        // Only 2 trials exist; both get re-evaluated twice.
        assert_eq!(outcome.num_evaluations(), 2 + 4);
    }

    #[test]
    fn wraps_early_stopping_methods_at_max_fidelity_only() {
        use crate::hyperband::SuccessiveHalving;
        let mut objective = FunctionObjective::new(|config: &HpConfig, resource| {
            config.values()[0] + 1.0 / (resource as f64 + 1.0)
        });
        let policy = ReEvaluation::new(SuccessiveHalving::new(9, 3, 1, 9), 2, 2);
        let mut rng = rng_for(2, 0);
        let outcome = policy.tune(&space_1d(), &mut objective, &mut rng).unwrap();
        let reevals: Vec<_> = outcome
            .records()
            .iter()
            .filter(|r| r.noise_rep >= 1)
            .collect();
        // Only the single max-fidelity survivor qualifies (the other rungs
        // stopped early), so top_k clamps to 1 trial × 2 reps.
        assert_eq!(reevals.len(), 2);
        assert!(reevals.iter().all(|r| r.resource == 9));
        // Same training budget as the unwrapped bracket.
        let mut plain_obj = FunctionObjective::new(|config: &HpConfig, resource| {
            config.values()[0] + 1.0 / (resource as f64 + 1.0)
        });
        let mut rng = rng_for(2, 0);
        let plain = SuccessiveHalving::new(9, 3, 1, 9)
            .tune(&space_1d(), &mut plain_obj, &mut rng)
            .unwrap();
        assert_eq!(outcome.total_resource(), plain.total_resource());
    }
}
