//! Hyperparameter search spaces and sampled configurations.
//!
//! [`SearchSpace::paper_default`] reproduces the search space of Appendix B:
//! three tuned FedAdam server hyperparameters, two tuned client SGD
//! hyperparameters, and the fixed values the paper does not tune.

use crate::{HpoError, Result};
use rand::Rng;
use serde::{Deserialize, Serialize};

/// One dimension of a search space.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum Dimension {
    /// Uniform over `[low, high]`.
    Uniform {
        /// Lower bound (inclusive).
        low: f64,
        /// Upper bound (inclusive).
        high: f64,
    },
    /// Log-uniform over `[low, high]` (both strictly positive): the base-10
    /// logarithm is sampled uniformly.
    LogUniform {
        /// Lower bound (inclusive, > 0).
        low: f64,
        /// Upper bound (inclusive, > 0).
        high: f64,
    },
    /// A finite set of allowed values (e.g. batch sizes).
    Categorical {
        /// The allowed values.
        choices: Vec<f64>,
    },
    /// A hyperparameter held fixed at the given value.
    Fixed {
        /// The fixed value.
        value: f64,
    },
}

impl Dimension {
    /// Samples one value from this dimension.
    pub fn sample(&self, rng: &mut impl Rng) -> f64 {
        match self {
            Dimension::Uniform { low, high } => {
                if low == high {
                    *low
                } else {
                    rng.gen_range(*low..*high)
                }
            }
            Dimension::LogUniform { low, high } => {
                if low == high {
                    *low
                } else {
                    let (l, h) = (low.log10(), high.log10());
                    10f64.powf(rng.gen_range(l..h))
                }
            }
            Dimension::Categorical { choices } => choices[rng.gen_range(0..choices.len())],
            Dimension::Fixed { value } => *value,
        }
    }

    /// Returns `true` if `value` is attainable by this dimension (used to
    /// validate externally-supplied configurations).
    pub fn contains(&self, value: f64) -> bool {
        match self {
            Dimension::Uniform { low, high } => value >= *low && value <= *high,
            Dimension::LogUniform { low, high } => value >= *low && value <= *high,
            Dimension::Categorical { choices } => {
                choices.iter().any(|&c| (c - value).abs() < 1e-12)
            }
            Dimension::Fixed { value: v } => (v - value).abs() < 1e-12,
        }
    }

    /// Returns `true` for dimensions that are actually searched (not fixed).
    pub fn is_searchable(&self) -> bool {
        !matches!(self, Dimension::Fixed { .. })
    }

    fn validate(&self, name: &str) -> Result<()> {
        match self {
            Dimension::Uniform { low, high } => {
                if !(low.is_finite() && high.is_finite()) || low > high {
                    return Err(HpoError::InvalidConfig {
                        message: format!("dimension {name}: invalid uniform range [{low}, {high}]"),
                    });
                }
            }
            Dimension::LogUniform { low, high } => {
                if !(low.is_finite() && high.is_finite()) || *low <= 0.0 || low > high {
                    return Err(HpoError::InvalidConfig {
                        message: format!(
                            "dimension {name}: log-uniform range [{low}, {high}] must be positive and ordered"
                        ),
                    });
                }
            }
            Dimension::Categorical { choices } => {
                if choices.is_empty() {
                    return Err(HpoError::InvalidConfig {
                        message: format!("dimension {name}: categorical choices must be non-empty"),
                    });
                }
            }
            Dimension::Fixed { value } => {
                if !value.is_finite() {
                    return Err(HpoError::InvalidConfig {
                        message: format!("dimension {name}: fixed value must be finite"),
                    });
                }
            }
        }
        Ok(())
    }
}

/// A sampled hyperparameter configuration: one value per search-space
/// dimension, in the space's dimension order.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct HpConfig {
    values: Vec<f64>,
}

impl HpConfig {
    /// Creates a configuration from raw values (use
    /// [`SearchSpace::validate_config`] to check it against a space).
    pub fn new(values: Vec<f64>) -> Self {
        HpConfig { values }
    }

    /// The configuration's values, aligned with the space's dimensions.
    pub fn values(&self) -> &[f64] {
        &self.values
    }

    /// Number of dimensions.
    pub fn len(&self) -> usize {
        self.values.len()
    }

    /// Returns `true` if the configuration has no dimensions.
    pub fn is_empty(&self) -> bool {
        self.values.is_empty()
    }
}

/// An ordered collection of named dimensions.
#[derive(Debug, Clone, PartialEq, Default, Serialize, Deserialize)]
pub struct SearchSpace {
    names: Vec<String>,
    dimensions: Vec<Dimension>,
}

impl SearchSpace {
    /// Names of the hyperparameters in the paper's search space
    /// (Appendix B), in the order used by [`SearchSpace::paper_default`].
    pub const PAPER_DIMENSIONS: [&'static str; 9] = [
        "server_lr",
        "server_beta1",
        "server_beta2",
        "server_lr_decay",
        "client_lr",
        "client_momentum",
        "client_weight_decay",
        "client_batch_size",
        "client_epochs",
    ];

    /// Creates an empty search space.
    pub fn new() -> Self {
        SearchSpace::default()
    }

    /// Adds a dimension.
    ///
    /// # Errors
    ///
    /// Returns [`HpoError::InvalidConfig`] if the dimension is malformed or
    /// the name is a duplicate.
    pub fn with_dimension(mut self, name: impl Into<String>, dim: Dimension) -> Result<Self> {
        let name = name.into();
        if self.names.iter().any(|n| n == &name) {
            return Err(HpoError::InvalidConfig {
                message: format!("duplicate dimension name {name}"),
            });
        }
        dim.validate(&name)?;
        self.names.push(name);
        self.dimensions.push(dim);
        Ok(self)
    }

    /// Adds a uniform dimension.
    ///
    /// # Errors
    ///
    /// See [`with_dimension`](Self::with_dimension).
    pub fn with_uniform(self, name: impl Into<String>, low: f64, high: f64) -> Result<Self> {
        self.with_dimension(name, Dimension::Uniform { low, high })
    }

    /// Adds a log-uniform dimension.
    ///
    /// # Errors
    ///
    /// See [`with_dimension`](Self::with_dimension).
    pub fn with_log_uniform(self, name: impl Into<String>, low: f64, high: f64) -> Result<Self> {
        self.with_dimension(name, Dimension::LogUniform { low, high })
    }

    /// Adds a categorical dimension.
    ///
    /// # Errors
    ///
    /// See [`with_dimension`](Self::with_dimension).
    pub fn with_categorical(self, name: impl Into<String>, choices: Vec<f64>) -> Result<Self> {
        self.with_dimension(name, Dimension::Categorical { choices })
    }

    /// Adds a fixed dimension.
    ///
    /// # Errors
    ///
    /// See [`with_dimension`](Self::with_dimension).
    pub fn with_fixed(self, name: impl Into<String>, value: f64) -> Result<Self> {
        self.with_dimension(name, Dimension::Fixed { value })
    }

    /// The search space of Appendix B:
    ///
    /// | hyperparameter | range |
    /// |---|---|
    /// | server learning rate | log-uniform `[1e-6, 1e-1]` |
    /// | server β₁ | uniform `[0, 0.9]` |
    /// | server β₂ | uniform `[0, 0.999]` |
    /// | server lr decay | fixed `0.9999` |
    /// | client learning rate | log-uniform `[1e-6, 1]` |
    /// | client momentum | uniform `[0, 0.9]` |
    /// | client weight decay | fixed `5e-5` |
    /// | client batch size | categorical `{32, 64, 128}` |
    /// | client epochs | fixed `1` |
    pub fn paper_default() -> Self {
        Self::paper_with_server_lr_range(1e-6, 1e-1)
    }

    /// The paper's search space with a custom server-learning-rate interval,
    /// used by the search-space ablation of Appendix C (Fig. 13) where nested
    /// ranges centred on `1e-3` are compared.
    pub fn paper_with_server_lr_range(low: f64, high: f64) -> Self {
        SearchSpace::new()
            .with_log_uniform("server_lr", low, high)
            .and_then(|s| s.with_uniform("server_beta1", 0.0, 0.9))
            .and_then(|s| s.with_uniform("server_beta2", 0.0, 0.999))
            .and_then(|s| s.with_fixed("server_lr_decay", 0.9999))
            .and_then(|s| s.with_log_uniform("client_lr", 1e-6, 1.0))
            .and_then(|s| s.with_uniform("client_momentum", 0.0, 0.9))
            .and_then(|s| s.with_fixed("client_weight_decay", 5e-5))
            .and_then(|s| s.with_categorical("client_batch_size", vec![32.0, 64.0, 128.0]))
            .and_then(|s| s.with_fixed("client_epochs", 1.0))
            .expect("paper search space is statically valid")
    }

    /// The nested server-lr interval of width `10^width` centred (in log
    /// space) on `1e-3`, as used by Fig. 13 (`width ∈ {1, 2, 3, 4}`).
    ///
    /// # Errors
    ///
    /// Returns [`HpoError::InvalidConfig`] if `width` is not in `1..=4`.
    pub fn paper_nested_lr_space(width: u32) -> Result<Self> {
        if !(1..=4).contains(&width) {
            return Err(HpoError::InvalidConfig {
                message: format!("nested lr width must be in 1..=4, got {width}"),
            });
        }
        let half = width as f64 / 2.0;
        let low = 10f64.powf(-3.0 - half);
        let high = 10f64.powf(-3.0 + half);
        Ok(Self::paper_with_server_lr_range(low, high))
    }

    /// Dimension names, in order.
    pub fn names(&self) -> &[String] {
        &self.names
    }

    /// Dimensions, in order.
    pub fn dimensions(&self) -> &[Dimension] {
        &self.dimensions
    }

    /// Number of dimensions.
    pub fn len(&self) -> usize {
        self.dimensions.len()
    }

    /// Returns `true` if the space has no dimensions.
    pub fn is_empty(&self) -> bool {
        self.dimensions.is_empty()
    }

    /// Index of the dimension with the given name.
    pub fn index_of(&self, name: &str) -> Option<usize> {
        self.names.iter().position(|n| n == name)
    }

    /// Value of the named dimension within a configuration.
    ///
    /// # Errors
    ///
    /// Returns [`HpoError::InvalidConfig`] if the name is unknown or the
    /// configuration has the wrong arity.
    pub fn value(&self, config: &HpConfig, name: &str) -> Result<f64> {
        let idx = self.index_of(name).ok_or_else(|| HpoError::InvalidConfig {
            message: format!("unknown dimension {name}"),
        })?;
        config
            .values()
            .get(idx)
            .copied()
            .ok_or_else(|| HpoError::InvalidConfig {
                message: format!(
                    "configuration has {} values but dimension {name} has index {idx}",
                    config.len()
                ),
            })
    }

    /// Samples one configuration uniformly from the space.
    ///
    /// # Errors
    ///
    /// Returns [`HpoError::InvalidConfig`] if the space is empty.
    pub fn sample(&self, rng: &mut impl Rng) -> Result<HpConfig> {
        if self.is_empty() {
            return Err(HpoError::InvalidConfig {
                message: "cannot sample from an empty search space".into(),
            });
        }
        Ok(HpConfig::new(
            self.dimensions.iter().map(|d| d.sample(rng)).collect(),
        ))
    }

    /// Samples `count` configurations.
    ///
    /// # Errors
    ///
    /// See [`sample`](Self::sample).
    pub fn sample_many(&self, count: usize, rng: &mut impl Rng) -> Result<Vec<HpConfig>> {
        (0..count).map(|_| self.sample(rng)).collect()
    }

    /// Checks that a configuration has the right arity and that every value
    /// lies within its dimension.
    ///
    /// # Errors
    ///
    /// Returns [`HpoError::InvalidConfig`] describing the first violation.
    pub fn validate_config(&self, config: &HpConfig) -> Result<()> {
        if config.len() != self.len() {
            return Err(HpoError::InvalidConfig {
                message: format!(
                    "configuration has {} values but the space has {} dimensions",
                    config.len(),
                    self.len()
                ),
            });
        }
        for ((name, dim), &value) in self
            .names
            .iter()
            .zip(self.dimensions.iter())
            .zip(config.values())
        {
            if !dim.contains(value) {
                return Err(HpoError::InvalidConfig {
                    message: format!("value {value} outside dimension {name}"),
                });
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fedmath::rng::rng_for;

    #[test]
    fn dimension_sampling_respects_bounds() {
        let mut rng = rng_for(0, 0);
        let u = Dimension::Uniform {
            low: -1.0,
            high: 2.0,
        };
        let l = Dimension::LogUniform {
            low: 1e-6,
            high: 1e-1,
        };
        let c = Dimension::Categorical {
            choices: vec![32.0, 64.0, 128.0],
        };
        let f = Dimension::Fixed { value: 0.5 };
        for _ in 0..200 {
            let uv = u.sample(&mut rng);
            assert!((-1.0..=2.0).contains(&uv));
            assert!(u.contains(uv));
            let lv = l.sample(&mut rng);
            assert!((1e-6..=1e-1).contains(&lv));
            assert!(l.contains(lv));
            let cv = c.sample(&mut rng);
            assert!(c.contains(cv));
            assert_eq!(f.sample(&mut rng), 0.5);
        }
        assert!(!c.contains(33.0));
        assert!(!f.contains(0.4));
        assert!(f.contains(0.5));
        assert!(u.is_searchable());
        assert!(!f.is_searchable());
    }

    #[test]
    fn log_uniform_spreads_across_decades() {
        let mut rng = rng_for(0, 1);
        let l = Dimension::LogUniform {
            low: 1e-6,
            high: 1.0,
        };
        let samples: Vec<f64> = (0..2000).map(|_| l.sample(&mut rng).log10()).collect();
        // Uniform in log space over [-6, 0]: mean should be near -3.
        let mean = fedmath::stats::mean(&samples);
        assert!(
            (mean + 3.0).abs() < 0.2,
            "log-space mean {mean} not near -3"
        );
    }

    #[test]
    fn space_builder_and_lookup() {
        let space = SearchSpace::new()
            .with_uniform("a", 0.0, 1.0)
            .unwrap()
            .with_fixed("b", 7.0)
            .unwrap();
        assert_eq!(space.len(), 2);
        assert_eq!(space.names(), &["a".to_string(), "b".to_string()]);
        assert_eq!(space.index_of("b"), Some(1));
        assert_eq!(space.index_of("zzz"), None);
        let mut rng = rng_for(1, 0);
        let config = space.sample(&mut rng).unwrap();
        assert_eq!(space.value(&config, "b").unwrap(), 7.0);
        assert!(space.value(&config, "zzz").is_err());
        assert!(space.validate_config(&config).is_ok());
        assert!(space.validate_config(&HpConfig::new(vec![0.5])).is_err());
        assert!(space
            .validate_config(&HpConfig::new(vec![0.5, 8.0]))
            .is_err());
    }

    #[test]
    fn builder_validation() {
        assert!(SearchSpace::new().with_uniform("a", 1.0, 0.0).is_err());
        assert!(SearchSpace::new().with_log_uniform("a", 0.0, 1.0).is_err());
        assert!(SearchSpace::new().with_log_uniform("a", -1.0, 1.0).is_err());
        assert!(SearchSpace::new().with_categorical("a", vec![]).is_err());
        assert!(SearchSpace::new().with_fixed("a", f64::NAN).is_err());
        assert!(SearchSpace::new()
            .with_uniform("a", 0.0, 1.0)
            .unwrap()
            .with_uniform("a", 0.0, 1.0)
            .is_err());
        assert!(SearchSpace::new().sample(&mut rng_for(0, 0)).is_err());
    }

    #[test]
    fn paper_space_matches_appendix_b() {
        let space = SearchSpace::paper_default();
        assert_eq!(space.len(), 9);
        for name in SearchSpace::PAPER_DIMENSIONS {
            assert!(space.index_of(name).is_some(), "missing dimension {name}");
        }
        let mut rng = rng_for(2, 0);
        for _ in 0..100 {
            let config = space.sample(&mut rng).unwrap();
            let server_lr = space.value(&config, "server_lr").unwrap();
            assert!((1e-6..=1e-1).contains(&server_lr));
            let beta1 = space.value(&config, "server_beta1").unwrap();
            assert!((0.0..=0.9).contains(&beta1));
            let beta2 = space.value(&config, "server_beta2").unwrap();
            assert!((0.0..=0.999).contains(&beta2));
            assert_eq!(space.value(&config, "server_lr_decay").unwrap(), 0.9999);
            let client_lr = space.value(&config, "client_lr").unwrap();
            assert!((1e-6..=1.0).contains(&client_lr));
            assert_eq!(space.value(&config, "client_weight_decay").unwrap(), 5e-5);
            let bs = space.value(&config, "client_batch_size").unwrap();
            assert!([32.0, 64.0, 128.0].contains(&bs));
            assert_eq!(space.value(&config, "client_epochs").unwrap(), 1.0);
        }
    }

    #[test]
    fn nested_lr_spaces_are_nested() {
        let widths: Vec<(f64, f64)> = (1..=4)
            .map(|w| {
                let space = SearchSpace::paper_nested_lr_space(w).unwrap();
                match &space.dimensions()[space.index_of("server_lr").unwrap()] {
                    Dimension::LogUniform { low, high } => (*low, *high),
                    _ => panic!("server_lr should be log-uniform"),
                }
            })
            .collect();
        for i in 1..widths.len() {
            assert!(widths[i].0 < widths[i - 1].0);
            assert!(widths[i].1 > widths[i - 1].1);
        }
        // Width 4 recovers the full paper range.
        assert!((widths[3].0 - 1e-5).abs() < 1e-12 || widths[3].0 < 1e-4);
        assert!(SearchSpace::paper_nested_lr_space(0).is_err());
        assert!(SearchSpace::paper_nested_lr_space(5).is_err());
    }

    #[test]
    fn sample_many_returns_distinct_configs() {
        let space = SearchSpace::paper_default();
        let mut rng = rng_for(3, 0);
        let configs = space.sample_many(16, &mut rng).unwrap();
        assert_eq!(configs.len(), 16);
        let distinct: std::collections::HashSet<String> = configs
            .iter()
            .map(|c| format!("{:?}", c.values()))
            .collect();
        assert!(distinct.len() > 1);
        assert!(!configs[0].is_empty());
        assert_eq!(configs[0].len(), 9);
    }
}

#[cfg(test)]
mod proptests {
    use super::*;
    use fedmath::rng::rng_for;
    use proptest::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]

        #[test]
        fn prop_paper_space_samples_are_always_valid(seed in any::<u64>()) {
            let space = SearchSpace::paper_default();
            let mut rng = rng_for(seed, 0);
            let config = space.sample(&mut rng).unwrap();
            prop_assert!(space.validate_config(&config).is_ok());
        }

        #[test]
        fn prop_uniform_dimension_within_bounds(
            seed in any::<u64>(),
            low in -100.0f64..100.0,
            width in 0.0f64..50.0,
        ) {
            let dim = Dimension::Uniform { low, high: low + width };
            let mut rng = rng_for(seed, 1);
            let v = dim.sample(&mut rng);
            prop_assert!(v >= low && v <= low + width);
            prop_assert!(dim.contains(v));
        }
    }
}
