//! Hyperparameter search spaces and sampled configurations.
//!
//! [`SearchSpace::paper_default`] reproduces the search space of Appendix B:
//! three tuned FedAdam server hyperparameters, two tuned client SGD
//! hyperparameters, and the fixed values the paper does not tune.

use crate::{HpoError, Result};
use rand::Rng;
use serde::{Deserialize, Serialize};

/// One dimension of a search space.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum Dimension {
    /// Uniform over `[low, high]`.
    Uniform {
        /// Lower bound (inclusive).
        low: f64,
        /// Upper bound (inclusive).
        high: f64,
    },
    /// Log-uniform over `[low, high]` (both strictly positive): the base-10
    /// logarithm is sampled uniformly.
    LogUniform {
        /// Lower bound (inclusive, > 0).
        low: f64,
        /// Upper bound (inclusive, > 0).
        high: f64,
    },
    /// A finite set of allowed values (e.g. batch sizes).
    Categorical {
        /// The allowed values.
        choices: Vec<f64>,
    },
    /// A hyperparameter held fixed at the given value.
    Fixed {
        /// The fixed value.
        value: f64,
    },
}

impl Dimension {
    /// Samples one value from this dimension.
    pub fn sample(&self, rng: &mut impl Rng) -> f64 {
        match self {
            Dimension::Uniform { low, high } => {
                if low == high {
                    *low
                } else {
                    rng.gen_range(*low..*high)
                }
            }
            Dimension::LogUniform { low, high } => {
                if low == high {
                    *low
                } else {
                    let (l, h) = (low.log10(), high.log10());
                    10f64.powf(rng.gen_range(l..h))
                }
            }
            Dimension::Categorical { choices } => choices[rng.gen_range(0..choices.len())],
            Dimension::Fixed { value } => *value,
        }
    }

    /// Returns `true` if `value` is attainable by this dimension (used to
    /// validate externally-supplied configurations).
    pub fn contains(&self, value: f64) -> bool {
        match self {
            Dimension::Uniform { low, high } => value >= *low && value <= *high,
            Dimension::LogUniform { low, high } => value >= *low && value <= *high,
            Dimension::Categorical { choices } => {
                choices.iter().any(|&c| (c - value).abs() < 1e-12)
            }
            Dimension::Fixed { value: v } => (v - value).abs() < 1e-12,
        }
    }

    /// Returns `true` for dimensions that are actually searched (not fixed).
    pub fn is_searchable(&self) -> bool {
        !matches!(self, Dimension::Fixed { .. })
    }

    /// The canonical bit-level representative of `value` within this
    /// dimension, or `None` if the value is non-finite or outside the
    /// dimension.
    ///
    /// Canonicalization makes the representative a pure function of the
    /// *point* the value denotes, so `f64::to_bits` of the result is a stable
    /// identity (the foundation of `fedstore`'s trial-ledger keys):
    ///
    /// - `-0.0` normalises to `+0.0` (distinct bits, same point);
    /// - discrete dimensions (categorical choices, fixed values) snap to the
    ///   exact bits of the matching declared value, absorbing the `1e-12`
    ///   tolerance [`contains`](Self::contains) allows;
    /// - continuous in-range values are already canonical.
    pub fn canonical_value(&self, value: f64) -> Option<f64> {
        if !value.is_finite() {
            return None;
        }
        match self {
            Dimension::Uniform { .. } | Dimension::LogUniform { .. } => {
                // `+ 0.0` maps -0.0 to +0.0 and is the identity elsewhere.
                self.contains(value).then_some(value + 0.0)
            }
            Dimension::Categorical { choices } => choices
                .iter()
                .copied()
                .find(|&c| (c - value).abs() < 1e-12)
                .map(|c| c + 0.0),
            Dimension::Fixed { value: declared } => {
                ((declared - value).abs() < 1e-12).then_some(*declared + 0.0)
            }
        }
    }

    fn validate(&self, name: &str) -> Result<()> {
        match self {
            Dimension::Uniform { low, high } => {
                if !(low.is_finite() && high.is_finite()) || low > high {
                    return Err(HpoError::InvalidConfig {
                        message: format!("dimension {name}: invalid uniform range [{low}, {high}]"),
                    });
                }
            }
            Dimension::LogUniform { low, high } => {
                if !(low.is_finite() && high.is_finite()) || *low <= 0.0 || low > high {
                    return Err(HpoError::InvalidConfig {
                        message: format!(
                            "dimension {name}: log-uniform range [{low}, {high}] must be positive and ordered"
                        ),
                    });
                }
            }
            Dimension::Categorical { choices } => {
                // An empty choice set panics at sample time (`gen_range` over
                // `0..0`) and a non-finite choice poisons every downstream
                // consumer (training, selection, trial-ledger keys), so both
                // are rejected here at construction.
                if choices.is_empty() {
                    return Err(HpoError::InvalidConfig {
                        message: format!("dimension {name}: categorical choices must be non-empty"),
                    });
                }
                if let Some(bad) = choices.iter().find(|c| !c.is_finite()) {
                    return Err(HpoError::InvalidConfig {
                        message: format!(
                            "dimension {name}: categorical choice {bad} is not finite"
                        ),
                    });
                }
                // Choices closer together than the 1e-12 equality tolerance
                // of `contains`/`canonical_value` would be indistinguishable
                // (and would collide under canonical snapping).
                for (i, &a) in choices.iter().enumerate() {
                    if choices[i + 1..].iter().any(|&b| (a - b).abs() < 1e-12) {
                        return Err(HpoError::InvalidConfig {
                            message: format!(
                                "dimension {name}: categorical choices within 1e-12 of {a} are indistinguishable"
                            ),
                        });
                    }
                }
            }
            Dimension::Fixed { value } => {
                if !value.is_finite() {
                    return Err(HpoError::InvalidConfig {
                        message: format!("dimension {name}: fixed value must be finite"),
                    });
                }
            }
        }
        Ok(())
    }
}

/// Folds canonical configuration bits into a stable 64-bit digest (the
/// shared definition behind [`SearchSpace::canonical_fingerprint`] and the
/// trial-ledger's config keys): a SplitMix64 chain over the length and every
/// bit pattern, so distinct points get independent digests and the value
/// never depends on process, platform, or trial numbering.
pub fn fingerprint_bits(bits: &[u64]) -> u64 {
    bits.iter().fold(
        fedmath::rng::derive_seed(0x5EED_F00D, bits.len() as u64),
        |acc, &b| fedmath::rng::derive_seed(acc, b),
    )
}

/// A sampled hyperparameter configuration: one value per search-space
/// dimension, in the space's dimension order.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct HpConfig {
    values: Vec<f64>,
}

impl HpConfig {
    /// Creates a configuration from raw values (use
    /// [`SearchSpace::validate_config`] to check it against a space).
    pub fn new(values: Vec<f64>) -> Self {
        HpConfig { values }
    }

    /// The configuration's values, aligned with the space's dimensions.
    pub fn values(&self) -> &[f64] {
        &self.values
    }

    /// Number of dimensions.
    pub fn len(&self) -> usize {
        self.values.len()
    }

    /// Returns `true` if the configuration has no dimensions.
    pub fn is_empty(&self) -> bool {
        self.values.is_empty()
    }
}

/// An ordered collection of named dimensions.
#[derive(Debug, Clone, PartialEq, Default, Serialize, Deserialize)]
pub struct SearchSpace {
    names: Vec<String>,
    dimensions: Vec<Dimension>,
}

impl SearchSpace {
    /// Names of the hyperparameters in the paper's search space
    /// (Appendix B), in the order used by [`SearchSpace::paper_default`].
    pub const PAPER_DIMENSIONS: [&'static str; 9] = [
        "server_lr",
        "server_beta1",
        "server_beta2",
        "server_lr_decay",
        "client_lr",
        "client_momentum",
        "client_weight_decay",
        "client_batch_size",
        "client_epochs",
    ];

    /// Creates an empty search space.
    pub fn new() -> Self {
        SearchSpace::default()
    }

    /// Adds a dimension.
    ///
    /// # Errors
    ///
    /// Returns [`HpoError::InvalidConfig`] if the dimension is malformed or
    /// the name is a duplicate.
    pub fn with_dimension(mut self, name: impl Into<String>, dim: Dimension) -> Result<Self> {
        let name = name.into();
        if self.names.iter().any(|n| n == &name) {
            return Err(HpoError::InvalidConfig {
                message: format!("duplicate dimension name {name}"),
            });
        }
        dim.validate(&name)?;
        self.names.push(name);
        self.dimensions.push(dim);
        Ok(self)
    }

    /// Adds a uniform dimension.
    ///
    /// # Errors
    ///
    /// See [`with_dimension`](Self::with_dimension).
    pub fn with_uniform(self, name: impl Into<String>, low: f64, high: f64) -> Result<Self> {
        self.with_dimension(name, Dimension::Uniform { low, high })
    }

    /// Adds a log-uniform dimension.
    ///
    /// # Errors
    ///
    /// See [`with_dimension`](Self::with_dimension).
    pub fn with_log_uniform(self, name: impl Into<String>, low: f64, high: f64) -> Result<Self> {
        self.with_dimension(name, Dimension::LogUniform { low, high })
    }

    /// Adds a categorical dimension.
    ///
    /// # Errors
    ///
    /// See [`with_dimension`](Self::with_dimension).
    pub fn with_categorical(self, name: impl Into<String>, choices: Vec<f64>) -> Result<Self> {
        self.with_dimension(name, Dimension::Categorical { choices })
    }

    /// Adds a fixed dimension.
    ///
    /// # Errors
    ///
    /// See [`with_dimension`](Self::with_dimension).
    pub fn with_fixed(self, name: impl Into<String>, value: f64) -> Result<Self> {
        self.with_dimension(name, Dimension::Fixed { value })
    }

    /// The search space of Appendix B:
    ///
    /// | hyperparameter | range |
    /// |---|---|
    /// | server learning rate | log-uniform `[1e-6, 1e-1]` |
    /// | server β₁ | uniform `[0, 0.9]` |
    /// | server β₂ | uniform `[0, 0.999]` |
    /// | server lr decay | fixed `0.9999` |
    /// | client learning rate | log-uniform `[1e-6, 1]` |
    /// | client momentum | uniform `[0, 0.9]` |
    /// | client weight decay | fixed `5e-5` |
    /// | client batch size | categorical `{32, 64, 128}` |
    /// | client epochs | fixed `1` |
    pub fn paper_default() -> Self {
        Self::paper_with_server_lr_range(1e-6, 1e-1)
    }

    /// The paper's search space with a custom server-learning-rate interval,
    /// used by the search-space ablation of Appendix C (Fig. 13) where nested
    /// ranges centred on `1e-3` are compared.
    pub fn paper_with_server_lr_range(low: f64, high: f64) -> Self {
        SearchSpace::new()
            .with_log_uniform("server_lr", low, high)
            .and_then(|s| s.with_uniform("server_beta1", 0.0, 0.9))
            .and_then(|s| s.with_uniform("server_beta2", 0.0, 0.999))
            .and_then(|s| s.with_fixed("server_lr_decay", 0.9999))
            .and_then(|s| s.with_log_uniform("client_lr", 1e-6, 1.0))
            .and_then(|s| s.with_uniform("client_momentum", 0.0, 0.9))
            .and_then(|s| s.with_fixed("client_weight_decay", 5e-5))
            .and_then(|s| s.with_categorical("client_batch_size", vec![32.0, 64.0, 128.0]))
            .and_then(|s| s.with_fixed("client_epochs", 1.0))
            .expect("paper search space is statically valid")
    }

    /// The nested server-lr interval of width `10^width` centred (in log
    /// space) on `1e-3`, as used by Fig. 13 (`width ∈ {1, 2, 3, 4}`).
    ///
    /// # Errors
    ///
    /// Returns [`HpoError::InvalidConfig`] if `width` is not in `1..=4`.
    pub fn paper_nested_lr_space(width: u32) -> Result<Self> {
        if !(1..=4).contains(&width) {
            return Err(HpoError::InvalidConfig {
                message: format!("nested lr width must be in 1..=4, got {width}"),
            });
        }
        let half = width as f64 / 2.0;
        let low = 10f64.powf(-3.0 - half);
        let high = 10f64.powf(-3.0 + half);
        Ok(Self::paper_with_server_lr_range(low, high))
    }

    /// Dimension names, in order.
    pub fn names(&self) -> &[String] {
        &self.names
    }

    /// Dimensions, in order.
    pub fn dimensions(&self) -> &[Dimension] {
        &self.dimensions
    }

    /// Number of dimensions.
    pub fn len(&self) -> usize {
        self.dimensions.len()
    }

    /// Returns `true` if the space has no dimensions.
    pub fn is_empty(&self) -> bool {
        self.dimensions.is_empty()
    }

    /// Index of the dimension with the given name.
    pub fn index_of(&self, name: &str) -> Option<usize> {
        self.names.iter().position(|n| n == name)
    }

    /// Value of the named dimension within a configuration.
    ///
    /// # Errors
    ///
    /// Returns [`HpoError::InvalidConfig`] if the name is unknown or the
    /// configuration has the wrong arity.
    pub fn value(&self, config: &HpConfig, name: &str) -> Result<f64> {
        let idx = self.index_of(name).ok_or_else(|| HpoError::InvalidConfig {
            message: format!("unknown dimension {name}"),
        })?;
        config
            .values()
            .get(idx)
            .copied()
            .ok_or_else(|| HpoError::InvalidConfig {
                message: format!(
                    "configuration has {} values but dimension {name} has index {idx}",
                    config.len()
                ),
            })
    }

    /// Samples one configuration uniformly from the space.
    ///
    /// # Errors
    ///
    /// Returns [`HpoError::InvalidConfig`] if the space is empty.
    pub fn sample(&self, rng: &mut impl Rng) -> Result<HpConfig> {
        if self.is_empty() {
            return Err(HpoError::InvalidConfig {
                message: "cannot sample from an empty search space".into(),
            });
        }
        Ok(HpConfig::new(
            self.dimensions.iter().map(|d| d.sample(rng)).collect(),
        ))
    }

    /// Samples `count` configurations.
    ///
    /// # Errors
    ///
    /// See [`sample`](Self::sample).
    pub fn sample_many(&self, count: usize, rng: &mut impl Rng) -> Result<Vec<HpConfig>> {
        (0..count).map(|_| self.sample(rng)).collect()
    }

    /// The canonical representative of `config`: every value replaced by its
    /// dimension's [`Dimension::canonical_value`]. Two configurations that
    /// denote the same point in the space (e.g. `-0.0` vs `0.0`, or a
    /// categorical value within the equality tolerance of a choice)
    /// canonicalize to bit-identical values, so
    /// [`canonical_bits`](Self::canonical_bits) is a stable identity for
    /// content-addressed storage.
    ///
    /// # Errors
    ///
    /// Returns [`HpoError::InvalidConfig`] if the configuration has the wrong
    /// arity or any value is non-finite or outside its dimension.
    pub fn canonicalize(&self, config: &HpConfig) -> Result<HpConfig> {
        if config.len() != self.len() {
            return Err(HpoError::InvalidConfig {
                message: format!(
                    "configuration has {} values but the space has {} dimensions",
                    config.len(),
                    self.len()
                ),
            });
        }
        let values = self
            .names
            .iter()
            .zip(self.dimensions.iter())
            .zip(config.values())
            .map(|((name, dim), &value)| {
                dim.canonical_value(value)
                    .ok_or_else(|| HpoError::InvalidConfig {
                        message: format!(
                            "value {value} cannot be canonicalized within dimension {name}"
                        ),
                    })
            })
            .collect::<Result<Vec<f64>>>()?;
        Ok(HpConfig::new(values))
    }

    /// The bit patterns of the canonicalized configuration — the
    /// content-addressed identity used to key recorded trials.
    ///
    /// # Errors
    ///
    /// See [`canonicalize`](Self::canonicalize).
    pub fn canonical_bits(&self, config: &HpConfig) -> Result<Vec<u64>> {
        Ok(self
            .canonicalize(config)?
            .values()
            .iter()
            .map(|v| v.to_bits())
            .collect())
    }

    /// A stable 64-bit digest of the canonicalized configuration — the
    /// *point* identity used to key positional randomness and
    /// content-addressed storage. Pure function of the canonical bits,
    /// independent of process, platform, or trial numbering.
    ///
    /// # Errors
    ///
    /// See [`canonicalize`](Self::canonicalize).
    pub fn canonical_fingerprint(&self, config: &HpConfig) -> Result<u64> {
        Ok(fingerprint_bits(&self.canonical_bits(config)?))
    }

    /// Checks that a configuration has the right arity and that every value
    /// lies within its dimension.
    ///
    /// # Errors
    ///
    /// Returns [`HpoError::InvalidConfig`] describing the first violation.
    pub fn validate_config(&self, config: &HpConfig) -> Result<()> {
        if config.len() != self.len() {
            return Err(HpoError::InvalidConfig {
                message: format!(
                    "configuration has {} values but the space has {} dimensions",
                    config.len(),
                    self.len()
                ),
            });
        }
        for ((name, dim), &value) in self
            .names
            .iter()
            .zip(self.dimensions.iter())
            .zip(config.values())
        {
            if !dim.contains(value) {
                return Err(HpoError::InvalidConfig {
                    message: format!("value {value} outside dimension {name}"),
                });
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fedmath::rng::rng_for;

    #[test]
    fn dimension_sampling_respects_bounds() {
        let mut rng = rng_for(0, 0);
        let u = Dimension::Uniform {
            low: -1.0,
            high: 2.0,
        };
        let l = Dimension::LogUniform {
            low: 1e-6,
            high: 1e-1,
        };
        let c = Dimension::Categorical {
            choices: vec![32.0, 64.0, 128.0],
        };
        let f = Dimension::Fixed { value: 0.5 };
        for _ in 0..200 {
            let uv = u.sample(&mut rng);
            assert!((-1.0..=2.0).contains(&uv));
            assert!(u.contains(uv));
            let lv = l.sample(&mut rng);
            assert!((1e-6..=1e-1).contains(&lv));
            assert!(l.contains(lv));
            let cv = c.sample(&mut rng);
            assert!(c.contains(cv));
            assert_eq!(f.sample(&mut rng), 0.5);
        }
        assert!(!c.contains(33.0));
        assert!(!f.contains(0.4));
        assert!(f.contains(0.5));
        assert!(u.is_searchable());
        assert!(!f.is_searchable());
    }

    #[test]
    fn log_uniform_spreads_across_decades() {
        let mut rng = rng_for(0, 1);
        let l = Dimension::LogUniform {
            low: 1e-6,
            high: 1.0,
        };
        let samples: Vec<f64> = (0..2000).map(|_| l.sample(&mut rng).log10()).collect();
        // Uniform in log space over [-6, 0]: mean should be near -3.
        let mean = fedmath::stats::mean(&samples);
        assert!(
            (mean + 3.0).abs() < 0.2,
            "log-space mean {mean} not near -3"
        );
    }

    #[test]
    fn space_builder_and_lookup() {
        let space = SearchSpace::new()
            .with_uniform("a", 0.0, 1.0)
            .unwrap()
            .with_fixed("b", 7.0)
            .unwrap();
        assert_eq!(space.len(), 2);
        assert_eq!(space.names(), &["a".to_string(), "b".to_string()]);
        assert_eq!(space.index_of("b"), Some(1));
        assert_eq!(space.index_of("zzz"), None);
        let mut rng = rng_for(1, 0);
        let config = space.sample(&mut rng).unwrap();
        assert_eq!(space.value(&config, "b").unwrap(), 7.0);
        assert!(space.value(&config, "zzz").is_err());
        assert!(space.validate_config(&config).is_ok());
        assert!(space.validate_config(&HpConfig::new(vec![0.5])).is_err());
        assert!(space
            .validate_config(&HpConfig::new(vec![0.5, 8.0]))
            .is_err());
    }

    #[test]
    fn builder_validation() {
        assert!(SearchSpace::new().with_uniform("a", 1.0, 0.0).is_err());
        assert!(SearchSpace::new().with_log_uniform("a", 0.0, 1.0).is_err());
        assert!(SearchSpace::new().with_log_uniform("a", -1.0, 1.0).is_err());
        assert!(SearchSpace::new().with_categorical("a", vec![]).is_err());
        assert!(SearchSpace::new().with_fixed("a", f64::NAN).is_err());
        assert!(SearchSpace::new()
            .with_uniform("a", 0.0, 1.0)
            .unwrap()
            .with_uniform("a", 0.0, 1.0)
            .is_err());
        assert!(SearchSpace::new().sample(&mut rng_for(0, 0)).is_err());
    }

    #[test]
    fn degenerate_discrete_dimensions_are_rejected_at_construction() {
        // Regression: empty or non-finite discrete dimensions used to slip
        // through the builder and only blow up at sample time (`gen_range`
        // over an empty range panics; NaN/inf choices sample as poison).
        assert!(SearchSpace::new().with_categorical("bs", vec![]).is_err());
        assert!(SearchSpace::new()
            .with_categorical("bs", vec![f64::NAN])
            .is_err());
        assert!(SearchSpace::new()
            .with_categorical("bs", vec![32.0, f64::INFINITY])
            .is_err());
        assert!(SearchSpace::new()
            .with_categorical("bs", vec![32.0, f64::NEG_INFINITY, 64.0])
            .is_err());
        assert!(SearchSpace::new().with_fixed("wd", f64::INFINITY).is_err());
        // Choices inside the canonical-snap tolerance are indistinguishable.
        assert!(SearchSpace::new()
            .with_categorical("bs", vec![1.0, 1.0 + 5e-13])
            .is_err());
        assert!(SearchSpace::new()
            .with_categorical("bs", vec![1.0, 1.0])
            .is_err());
        // The same rejections apply through the raw dimension entry point.
        assert!(SearchSpace::new()
            .with_dimension("bs", Dimension::Categorical { choices: vec![] })
            .is_err());
        assert!(SearchSpace::new()
            .with_dimension(
                "bs",
                Dimension::Categorical {
                    choices: vec![f64::NAN, 1.0],
                },
            )
            .is_err());
        // Well-formed discrete dimensions still pass.
        assert!(SearchSpace::new()
            .with_categorical("bs", vec![32.0, 64.0])
            .is_ok());
    }

    #[test]
    fn canonicalization_is_bit_stable() {
        let space = SearchSpace::new()
            .with_uniform("u", -1.0, 1.0)
            .unwrap()
            .with_log_uniform("l", 1e-6, 1.0)
            .unwrap()
            .with_categorical("c", vec![32.0, 64.0])
            .unwrap()
            .with_fixed("f", 5e-5)
            .unwrap();
        // -0.0 normalises to +0.0; near-choice values snap to the exact
        // choice bits; near-fixed values snap to the declared value.
        let canon = space
            .canonicalize(&HpConfig::new(vec![-0.0, 1e-3, 64.0 - 1e-13, 5e-5 + 1e-20]))
            .unwrap();
        assert_eq!(canon.values()[0].to_bits(), 0.0f64.to_bits());
        assert_eq!(canon.values()[1].to_bits(), 1e-3f64.to_bits());
        assert_eq!(canon.values()[2].to_bits(), 64.0f64.to_bits());
        assert_eq!(canon.values()[3].to_bits(), 5e-5f64.to_bits());
        // Idempotent, and equal points give equal bit keys.
        assert_eq!(space.canonicalize(&canon).unwrap(), canon);
        assert_eq!(
            space.canonical_bits(&HpConfig::new(vec![0.0, 1e-3, 64.0, 5e-5])),
            space.canonical_bits(&HpConfig::new(vec![-0.0, 1e-3, 64.0 - 1e-13, 5e-5]))
        );
        // Non-finite, out-of-range, and wrong-arity configurations fail.
        assert!(space
            .canonicalize(&HpConfig::new(vec![f64::NAN, 1e-3, 64.0, 5e-5]))
            .is_err());
        assert!(space
            .canonicalize(&HpConfig::new(vec![2.0, 1e-3, 64.0, 5e-5]))
            .is_err());
        assert!(space
            .canonicalize(&HpConfig::new(vec![0.0, 1e-3, 48.0, 5e-5]))
            .is_err());
        assert!(space.canonicalize(&HpConfig::new(vec![0.0])).is_err());
        // Fingerprints: equal points agree, distinct points differ, and the
        // free function over the canonical bits is the same definition.
        let a = space
            .canonical_fingerprint(&HpConfig::new(vec![-0.0, 1e-3, 64.0 - 1e-13, 5e-5]))
            .unwrap();
        let b = space
            .canonical_fingerprint(&HpConfig::new(vec![0.0, 1e-3, 64.0, 5e-5]))
            .unwrap();
        assert_eq!(a, b);
        assert_eq!(
            a,
            fingerprint_bits(
                &space
                    .canonical_bits(&HpConfig::new(vec![0.0, 1e-3, 64.0, 5e-5]))
                    .unwrap()
            )
        );
        assert_ne!(
            a,
            space
                .canonical_fingerprint(&HpConfig::new(vec![0.5, 1e-3, 64.0, 5e-5]))
                .unwrap()
        );
        assert!(Dimension::Fixed { value: 1.0 }
            .canonical_value(0.9)
            .is_none());
        assert_eq!(
            Dimension::Uniform {
                low: -1.0,
                high: 1.0
            }
            .canonical_value(-0.0)
            .map(f64::to_bits),
            Some(0.0f64.to_bits())
        );
    }

    #[test]
    fn paper_space_samples_canonicalize_to_themselves() {
        let space = SearchSpace::paper_default();
        let mut rng = rng_for(4, 0);
        for _ in 0..100 {
            let config = space.sample(&mut rng).unwrap();
            let canon = space.canonicalize(&config).unwrap();
            let bits: Vec<u64> = config.values().iter().map(|v| v.to_bits()).collect();
            assert_eq!(space.canonical_bits(&config).unwrap(), bits);
            assert_eq!(canon, config);
        }
    }

    #[test]
    fn paper_space_matches_appendix_b() {
        let space = SearchSpace::paper_default();
        assert_eq!(space.len(), 9);
        for name in SearchSpace::PAPER_DIMENSIONS {
            assert!(space.index_of(name).is_some(), "missing dimension {name}");
        }
        let mut rng = rng_for(2, 0);
        for _ in 0..100 {
            let config = space.sample(&mut rng).unwrap();
            let server_lr = space.value(&config, "server_lr").unwrap();
            assert!((1e-6..=1e-1).contains(&server_lr));
            let beta1 = space.value(&config, "server_beta1").unwrap();
            assert!((0.0..=0.9).contains(&beta1));
            let beta2 = space.value(&config, "server_beta2").unwrap();
            assert!((0.0..=0.999).contains(&beta2));
            assert_eq!(space.value(&config, "server_lr_decay").unwrap(), 0.9999);
            let client_lr = space.value(&config, "client_lr").unwrap();
            assert!((1e-6..=1.0).contains(&client_lr));
            assert_eq!(space.value(&config, "client_weight_decay").unwrap(), 5e-5);
            let bs = space.value(&config, "client_batch_size").unwrap();
            assert!([32.0, 64.0, 128.0].contains(&bs));
            assert_eq!(space.value(&config, "client_epochs").unwrap(), 1.0);
        }
    }

    #[test]
    fn nested_lr_spaces_are_nested() {
        let widths: Vec<(f64, f64)> = (1..=4)
            .map(|w| {
                let space = SearchSpace::paper_nested_lr_space(w).unwrap();
                match &space.dimensions()[space.index_of("server_lr").unwrap()] {
                    Dimension::LogUniform { low, high } => (*low, *high),
                    _ => panic!("server_lr should be log-uniform"),
                }
            })
            .collect();
        for i in 1..widths.len() {
            assert!(widths[i].0 < widths[i - 1].0);
            assert!(widths[i].1 > widths[i - 1].1);
        }
        // Width 4 recovers the full paper range.
        assert!((widths[3].0 - 1e-5).abs() < 1e-12 || widths[3].0 < 1e-4);
        assert!(SearchSpace::paper_nested_lr_space(0).is_err());
        assert!(SearchSpace::paper_nested_lr_space(5).is_err());
    }

    #[test]
    fn sample_many_returns_distinct_configs() {
        let space = SearchSpace::paper_default();
        let mut rng = rng_for(3, 0);
        let configs = space.sample_many(16, &mut rng).unwrap();
        assert_eq!(configs.len(), 16);
        let distinct: std::collections::HashSet<String> = configs
            .iter()
            .map(|c| format!("{:?}", c.values()))
            .collect();
        assert!(distinct.len() > 1);
        assert!(!configs[0].is_empty());
        assert_eq!(configs[0].len(), 9);
    }
}

#[cfg(test)]
mod proptests {
    use super::*;
    use fedmath::rng::rng_for;
    use proptest::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]

        #[test]
        fn prop_paper_space_samples_are_always_valid(seed in any::<u64>()) {
            let space = SearchSpace::paper_default();
            let mut rng = rng_for(seed, 0);
            let config = space.sample(&mut rng).unwrap();
            prop_assert!(space.validate_config(&config).is_ok());
        }

        #[test]
        fn prop_uniform_dimension_within_bounds(
            seed in any::<u64>(),
            low in -100.0f64..100.0,
            width in 0.0f64..50.0,
        ) {
            let dim = Dimension::Uniform { low, high: low + width };
            let mut rng = rng_for(seed, 1);
            let v = dim.sample(&mut rng);
            prop_assert!(v >= low && v <= low + width);
            prop_assert!(dim.contains(v));
        }
    }
}
