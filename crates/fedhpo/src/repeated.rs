//! Random search with repeated (averaged) noisy evaluations.
//!
//! §5 of the paper notes that in centralized noisy HPO, "simple tricks such
//! as sampling more or resampling previously seen configurations (Hertel et
//! al., 2020) vary in effectiveness". This tuner implements that baseline in
//! the federated setting: each candidate configuration is evaluated
//! `repeats` times (each evaluation drawing an independent client subsample
//! and independent DP noise) and the tuner ranks configurations by the mean
//! of their noisy scores. Evaluations are free in the paper's budget model
//! (only training rounds count), so repetition trades privacy budget and
//! evaluation traffic — not training rounds — for variance reduction.

use crate::objective::Objective;
use crate::space::SearchSpace;
use crate::tuner::{EvaluationRecord, Tuner, TuningOutcome};
use crate::{HpoError, Result};
use rand::rngs::StdRng;

/// Random search where every configuration's score is the average of several
/// independent noisy evaluations at full fidelity.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RepeatedRandomSearch {
    num_configs: usize,
    rounds_per_config: usize,
    repeats: usize,
}

impl RepeatedRandomSearch {
    /// Creates the tuner. `repeats = 1` reduces to plain random search.
    pub fn new(num_configs: usize, rounds_per_config: usize, repeats: usize) -> Self {
        RepeatedRandomSearch {
            num_configs,
            rounds_per_config,
            repeats,
        }
    }

    /// Number of configurations searched.
    pub fn num_configs(&self) -> usize {
        self.num_configs
    }

    /// Number of independent evaluations averaged per configuration.
    pub fn repeats(&self) -> usize {
        self.repeats
    }

    fn validate(&self) -> Result<()> {
        if self.num_configs == 0 || self.rounds_per_config == 0 || self.repeats == 0 {
            return Err(HpoError::InvalidConfig {
                message: "repeated random search needs positive num_configs, rounds_per_config, and repeats"
                    .into(),
            });
        }
        Ok(())
    }
}

impl Tuner for RepeatedRandomSearch {
    fn name(&self) -> &'static str {
        "rs-repeated"
    }

    fn tune(
        &self,
        space: &SearchSpace,
        objective: &mut dyn Objective,
        rng: &mut StdRng,
    ) -> Result<TuningOutcome> {
        self.validate()?;
        let mut outcome = TuningOutcome::default();
        let mut cumulative = 0usize;
        for trial_id in 0..self.num_configs {
            let config = space.sample(rng)?;
            let mut scores = Vec::with_capacity(self.repeats);
            for _ in 0..self.repeats {
                scores.push(objective.evaluate(trial_id, &config, self.rounds_per_config)?);
            }
            let mean_score = scores.iter().sum::<f64>() / scores.len() as f64;
            // Training rounds are only paid once per configuration; repeated
            // evaluations are evaluation-round traffic, which the paper's
            // budget model does not charge (§3.1).
            cumulative += self.rounds_per_config;
            outcome.push(EvaluationRecord {
                trial_id,
                config,
                resource: self.rounds_per_config,
                score: mean_score,
                cumulative_resource: cumulative,
                noise_rep: 0,
                sim_time: 0.0,
            });
        }
        Ok(outcome)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::objective::FunctionObjective;
    use crate::random_search::RandomSearch;
    use crate::HpConfig;
    use fedmath::rng::rng_for;
    use rand::Rng;

    fn noisy_quadratic(noise_std: f64) -> FunctionObjective<impl FnMut(&HpConfig, usize) -> f64> {
        let mut rng = rng_for(99, 0);
        FunctionObjective::new(move |config: &HpConfig, _| {
            let x = config.values()[0];
            let noise: f64 = rng.gen_range(-1.0..1.0) * noise_std;
            (x - 0.25).powi(2) + noise
        })
    }

    #[test]
    fn validation_and_metadata() {
        let space = SearchSpace::new().with_uniform("x", -1.0, 1.0).unwrap();
        let mut obj = FunctionObjective::new(|_: &HpConfig, _| 0.0);
        let mut rng = rng_for(0, 0);
        assert!(RepeatedRandomSearch::new(0, 1, 1)
            .tune(&space, &mut obj, &mut rng)
            .is_err());
        assert!(RepeatedRandomSearch::new(1, 0, 1)
            .tune(&space, &mut obj, &mut rng)
            .is_err());
        assert!(RepeatedRandomSearch::new(1, 1, 0)
            .tune(&space, &mut obj, &mut rng)
            .is_err());
        let tuner = RepeatedRandomSearch::new(4, 2, 3);
        assert_eq!(tuner.name(), "rs-repeated");
        assert_eq!(tuner.num_configs(), 4);
        assert_eq!(tuner.repeats(), 3);
    }

    #[test]
    fn repeats_do_not_change_training_budget() {
        let space = SearchSpace::new().with_uniform("x", -1.0, 1.0).unwrap();
        let mut obj = FunctionObjective::new(|_: &HpConfig, _| 0.5);
        let mut rng = rng_for(1, 0);
        let outcome = RepeatedRandomSearch::new(5, 7, 4)
            .tune(&space, &mut obj, &mut rng)
            .unwrap();
        assert_eq!(outcome.num_evaluations(), 5);
        assert_eq!(outcome.total_resource(), 35);
        // The objective itself was still queried repeats times per config.
        assert_eq!(obj.calls(), 20);
    }

    #[test]
    fn averaging_reduces_the_effect_of_evaluation_noise() {
        // Under heavy evaluation noise, averaging several evaluations should
        // (usually) select a configuration closer to the optimum than plain
        // random search given the same candidate pool size.
        let space = SearchSpace::new().with_uniform("x", -1.0, 1.0).unwrap();
        let mut wins = 0;
        let trials = 20;
        for seed in 0..trials {
            let mut rng = rng_for(10 + seed, 0);
            let mut obj = noisy_quadratic(0.5);
            let repeated = RepeatedRandomSearch::new(12, 1, 8)
                .tune(&space, &mut obj, &mut rng)
                .unwrap();
            let repeated_x = repeated.best().unwrap().config.values()[0];

            let mut rng = rng_for(10 + seed, 0);
            let mut obj = noisy_quadratic(0.5);
            let plain = RandomSearch::new(12, 1)
                .tune(&space, &mut obj, &mut rng)
                .unwrap();
            let plain_x = plain.best().unwrap().config.values()[0];

            if (repeated_x - 0.25).abs() <= (plain_x - 0.25).abs() {
                wins += 1;
            }
        }
        assert!(
            wins >= trials / 2,
            "averaged evaluations should win at least half the time, won {wins}/{trials}"
        );
    }
}
