//! The objective interface that tuners minimise.

use crate::space::HpConfig;
use crate::Result;

/// The function a tuner minimises.
///
/// An objective evaluates one hyperparameter configuration after it has been
/// trained with a total of `resource` budget units (training rounds in the
/// federated setting). Tuners may call `evaluate` several times for the same
/// `trial_id` with increasing `resource` (early-stopping methods such as
/// Hyperband do); implementations are expected to resume training rather than
/// restart, and the tuner accounts only the *incremental* resource.
///
/// Lower return values are better (the paper minimises validation error).
pub trait Objective {
    /// Evaluates `config` (identified by `trial_id`) at the given cumulative
    /// `resource` and returns the (possibly noisy) score to minimise.
    ///
    /// # Errors
    ///
    /// Returns [`crate::HpoError::Objective`] if the evaluation fails.
    fn evaluate(&mut self, trial_id: usize, config: &HpConfig, resource: usize) -> Result<f64>;

    /// Evaluates with an explicit noise replicate index (`0` = the ordinary
    /// evaluation; `>= 1` = a fresh-noise re-evaluation at the same
    /// fidelity, as issued by the re-evaluation mitigation).
    ///
    /// The default forwards to [`evaluate`](Self::evaluate), which is correct
    /// for objectives whose noise is *stateful* (every call draws fresh).
    /// Objectives that derive their noise positionally must override this so
    /// distinct replicates yield independent draws — otherwise re-evaluation
    /// would silently average `reps` copies of the same draw.
    ///
    /// # Errors
    ///
    /// Returns [`crate::HpoError::Objective`] if the evaluation fails.
    fn evaluate_rep(
        &mut self,
        trial_id: usize,
        config: &HpConfig,
        resource: usize,
        noise_rep: u64,
    ) -> Result<f64> {
        let _ = noise_rep;
        self.evaluate(trial_id, config, resource)
    }
}

/// Wraps a plain function or closure as an [`Objective`], for tests and for
/// tuning analytic benchmark functions.
pub struct FunctionObjective<F>
where
    F: FnMut(&HpConfig, usize) -> f64,
{
    function: F,
    calls: usize,
}

impl<F> FunctionObjective<F>
where
    F: FnMut(&HpConfig, usize) -> f64,
{
    /// Wraps `function(config, resource) -> score`.
    pub fn new(function: F) -> Self {
        FunctionObjective { function, calls: 0 }
    }

    /// Number of evaluations performed so far.
    pub fn calls(&self) -> usize {
        self.calls
    }
}

impl<F> Objective for FunctionObjective<F>
where
    F: FnMut(&HpConfig, usize) -> f64,
{
    fn evaluate(&mut self, _trial_id: usize, config: &HpConfig, resource: usize) -> Result<f64> {
        self.calls += 1;
        Ok((self.function)(config, resource))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn function_objective_counts_calls() {
        let mut obj = FunctionObjective::new(|config: &HpConfig, resource: usize| {
            config.values()[0] + resource as f64
        });
        assert_eq!(obj.calls(), 0);
        let v = obj.evaluate(0, &HpConfig::new(vec![1.5]), 2).unwrap();
        assert_eq!(v, 3.5);
        let v = obj.evaluate(1, &HpConfig::new(vec![-1.0]), 0).unwrap();
        assert_eq!(v, -1.0);
        assert_eq!(obj.calls(), 2);
    }

    #[test]
    fn objective_is_object_safe() {
        let mut obj = FunctionObjective::new(|_: &HpConfig, _| 0.0);
        let dyn_obj: &mut dyn Objective = &mut obj;
        assert_eq!(dyn_obj.evaluate(0, &HpConfig::new(vec![]), 1).unwrap(), 0.0);
    }
}
