//! Hyperparameter-optimization methods with noisy-evaluation support.
//!
//! This crate implements the four HP-tuning methods compared in the paper
//! (§2.3, Appendix A), plus grid search and the bootstrap analysis used for
//! the RS-only figures:
//!
//! - [`RandomSearch`] — the simple baseline (Algorithm 1/2).
//! - [`RepeatedRandomSearch`] — RS with averaged repeated noisy evaluations
//!   (the "sample more" mitigation discussed in §5).
//! - [`GridSearch`] — the classical grid baseline.
//! - [`Tpe`] — the Tree-structured Parzen Estimator (Bergstra et al. 2011),
//!   a Bayesian-optimization method based on kernel-density estimates of the
//!   good and bad configuration distributions.
//! - [`SuccessiveHalving`] / [`Hyperband`] — early-stopping methods
//!   (Li et al. 2017).
//! - [`Bohb`] — the hybrid that replaces Hyperband's random sampling with the
//!   TPE acquisition function (Falkner et al. 2018).
//! - [`Asha`] — asynchronous successive halving (Li et al. 2020): per-rung
//!   promotions computed from whatever results have arrived.
//! - [`AsyncAsha`] — the same ladder run genuinely asynchronously: the
//!   scheduler is [`Scheduler::async_capable`], so event-driven drivers
//!   re-poll it on every completion and promotions fire without rung
//!   barriers.
//! - [`ReEvaluation`] — the paper's §5 mitigation as a wrapper policy:
//!   top-k survivors are re-evaluated with fresh noise draws before
//!   selection.
//!
//! Every method is implemented as a batched ask/tell [`Scheduler`]
//! (`suggest` a batch of [`TrialRequest`]s, `report` each [`TrialResult`]);
//! the classic pull-style [`Tuner`] interface remains as a thin wrapper over
//! the sequential reference driver [`run_scheduler`]. A parallel batch
//! driver that fans suggestions out across threads lives in
//! `fedtune_core::scheduler`.
//!
//! The crate is deliberately **noise-agnostic**: tuners minimise whatever an
//! [`Objective`] reports, and the experiment harness in `fedtune-core`
//! decides how noisy that report is (client subsampling, heterogeneity,
//! differential privacy, proxy data). This mirrors how the tuning methods in
//! the paper operate on whatever validation signal the federated system can
//! provide.
//!
//! # Example
//!
//! ```
//! use fedhpo::{FunctionObjective, Objective, RandomSearch, SearchSpace, Tuner};
//!
//! // Minimise a quadratic over a 1-D space with RS.
//! let space = SearchSpace::new().with_uniform("x", -5.0, 5.0).unwrap();
//! let mut objective = FunctionObjective::new(|config, _resource| {
//!     let x = config.values()[0];
//!     (x - 1.0) * (x - 1.0)
//! });
//! let tuner = RandomSearch::new(32, 1);
//! let mut rng = fedmath::rng::rng_for(0, 0);
//! let outcome = tuner.tune(&space, &mut objective, &mut rng).unwrap();
//! let best = outcome.best().unwrap();
//! assert!(best.score < 0.5);
//! ```

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod asha;
pub mod bohb;
pub mod bootstrap;
pub mod grid_search;
pub mod hyperband;
pub mod objective;
pub mod random_search;
pub mod reeval;
pub mod repeated;
pub mod scheduler;
pub mod space;
pub mod tpe;
pub mod tuner;

pub use asha::{Asha, AshaScheduler, AsyncAsha};
pub use bohb::Bohb;
pub use bootstrap::{bootstrap_selection, BootstrapOutcome};
pub use grid_search::GridSearch;
pub use hyperband::{BracketScheduler, Hyperband, SuccessiveHalving};
pub use objective::{FunctionObjective, Objective};
pub use random_search::{RandomSearch, RandomSearchScheduler};
pub use reeval::{ReEvalScheduler, ReEvaluation};
pub use repeated::RepeatedRandomSearch;
pub use scheduler::{
    run_scheduler, BudgetLedger, IntoScheduler, Scheduler, TrialRequest, TrialResult,
};
pub use space::{Dimension, HpConfig, SearchSpace};
pub use tpe::{Tpe, TpeConfig, TpeScheduler};
pub use tuner::{EvaluationRecord, Tuner, TuningOutcome};

use std::fmt;

/// Errors produced by the HPO library.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum HpoError {
    /// A search-space definition or tuner configuration was invalid.
    InvalidConfig {
        /// Description of the violation.
        message: String,
    },
    /// The objective function reported a failure.
    Objective {
        /// Description of the failure.
        message: String,
    },
    /// An underlying numerical routine failed.
    Math(fedmath::MathError),
}

impl fmt::Display for HpoError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            HpoError::InvalidConfig { message } => write!(f, "invalid configuration: {message}"),
            HpoError::Objective { message } => write!(f, "objective error: {message}"),
            HpoError::Math(e) => write!(f, "math error: {e}"),
        }
    }
}

impl std::error::Error for HpoError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            HpoError::Math(e) => Some(e),
            _ => None,
        }
    }
}

impl From<fedmath::MathError> for HpoError {
    fn from(e: fedmath::MathError) -> Self {
        HpoError::Math(e)
    }
}

/// Convenience alias for results returned by this crate.
pub type Result<T> = std::result::Result<T, HpoError>;

#[cfg(test)]
mod tests {
    use super::*;
    use std::error::Error;

    #[test]
    fn error_display_and_source() {
        let e = HpoError::InvalidConfig {
            message: "k = 0".into(),
        };
        assert!(e.to_string().contains("k = 0"));
        assert!(e.source().is_none());
        let e = HpoError::Objective {
            message: "diverged".into(),
        };
        assert!(e.to_string().contains("diverged"));
        let e: HpoError = fedmath::MathError::EmptyInput { what: "argmin" }.into();
        assert!(e.source().is_some());
    }
}
