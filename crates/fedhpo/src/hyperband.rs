//! Successive Halving and Hyperband (Li et al. 2017).
//!
//! Successive Halving (SHA) trains `n` configurations for a small resource,
//! keeps the best `⌊n/η⌋`, multiplies the resource by `η`, and repeats.
//! Hyperband hedges over the exploration/exploitation trade-off by running
//! several SHA brackets with different initial `n` and resource. The paper
//! runs 5 brackets with elimination factor `η = 3` and a maximum of 405
//! rounds per configuration.

use crate::objective::Objective;
use crate::scheduler::{run_scheduler, IntoScheduler, Scheduler, TrialRequest, TrialResult};
use crate::space::{HpConfig, SearchSpace};
use crate::tpe::TpeSampler;
use crate::tuner::{Tuner, TuningOutcome};
use crate::{HpoError, Result};
use rand::rngs::StdRng;
use std::collections::BTreeMap;

/// How a [`BracketScheduler`] draws the configurations entering a bracket.
#[derive(Debug, Clone)]
pub(crate) enum Proposer {
    /// Uniform random sampling (Successive Halving, Hyperband).
    Uniform,
    /// TPE-model proposals fitted on the highest fidelity with enough
    /// observations (BOHB).
    Tpe {
        /// The shared TPE proposal engine.
        sampler: TpeSampler,
        /// Observations needed at a fidelity before its model is trusted.
        min_observations: usize,
        /// All reported `(config, score)` pairs, keyed by fidelity.
        observations: BTreeMap<usize, Vec<(HpConfig, f64)>>,
    },
}

impl Proposer {
    fn propose(
        &self,
        space: &SearchSpace,
        count: usize,
        rng: &mut StdRng,
    ) -> Result<Vec<HpConfig>> {
        match self {
            Proposer::Uniform => space.sample_many(count, rng),
            Proposer::Tpe {
                sampler,
                min_observations,
                observations,
            } => {
                // Highest fidelity with enough observations, if any.
                let model_obs = observations
                    .iter()
                    .rev()
                    .find(|(_, obs)| obs.len() >= *min_observations)
                    .map(|(_, obs)| obs.as_slice());
                let mut configs = Vec::with_capacity(count);
                for _ in 0..count {
                    let config = match model_obs {
                        Some(obs) => sampler.propose(space, obs, rng)?,
                        None => space.sample(rng)?,
                    };
                    configs.push(config);
                }
                Ok(configs)
            }
        }
    }

    fn observe(&mut self, result: &TrialResult) {
        if let Proposer::Tpe { observations, .. } = self {
            observations
                .entry(result.resource)
                .or_default()
                .push((result.config.clone(), result.score));
        }
    }
}

/// Ask/tell state machine executing a sequence of Successive Halving
/// brackets: every *rung* (all active configurations at one fidelity) is
/// suggested as a single batch, so a parallel batch driver trains an entire
/// rung concurrently. Survivor selection is deterministic — scores are
/// ordered with `f64::total_cmp` and ties (and equal scores) resolve to the
/// earlier trial id, so non-finite scores are eliminated first.
///
/// Shared by [`SuccessiveHalving`] (one bracket), [`Hyperband`] (the bracket
/// ladder), and [`crate::Bohb`] (the ladder with TPE proposals).
#[derive(Debug, Clone)]
pub struct BracketScheduler {
    name: &'static str,
    eta: usize,
    max_resource: usize,
    /// `(num_configs, min_resource)` per bracket, in execution order.
    brackets: Vec<(usize, usize)>,
    bracket_idx: usize,
    started: bool,
    /// Active configurations of the current bracket: `(trial_id, config)`.
    active: Vec<(usize, HpConfig)>,
    /// Fidelity of the current rung.
    resource: usize,
    /// Scores of the current rung, by `active` position.
    scores: Vec<Option<f64>>,
    awaiting: usize,
    next_trial_id: usize,
    proposer: Proposer,
}

impl BracketScheduler {
    pub(crate) fn new(
        name: &'static str,
        eta: usize,
        max_resource: usize,
        brackets: Vec<(usize, usize)>,
        proposer: Proposer,
    ) -> Self {
        BracketScheduler {
            name,
            eta,
            max_resource,
            brackets,
            bracket_idx: 0,
            started: false,
            active: Vec::new(),
            resource: 0,
            scores: Vec::new(),
            awaiting: 0,
            next_trial_id: 0,
            proposer,
        }
    }

    /// Completes the current rung: eliminate, promote, or close the bracket.
    fn advance_rung(&mut self) {
        if self.active.len() < self.eta || self.resource >= self.max_resource {
            self.bracket_idx += 1;
            self.started = false;
            self.active.clear();
            self.scores.clear();
            return;
        }
        // Keep the best ⌊n/η⌋ configurations (at least one).
        let keep = (self.active.len() / self.eta).max(1);
        let mut order: Vec<usize> = (0..self.active.len()).collect();
        order.sort_by(|&a, &b| {
            let (sa, sb) = (
                self.scores[a].unwrap_or(f64::NAN),
                self.scores[b].unwrap_or(f64::NAN),
            );
            sa.total_cmp(&sb)
        });
        let survivors: std::collections::HashSet<usize> = order.into_iter().take(keep).collect();
        self.active = self
            .active
            .iter()
            .enumerate()
            .filter(|(i, _)| survivors.contains(i))
            .map(|(_, x)| x.clone())
            .collect();
        self.resource = (self.resource * self.eta).min(self.max_resource);
    }
}

impl Scheduler for BracketScheduler {
    fn name(&self) -> &'static str {
        self.name
    }

    fn suggest(&mut self, space: &SearchSpace, rng: &mut StdRng) -> Result<Vec<TrialRequest>> {
        if self.is_finished() {
            return Ok(Vec::new());
        }
        if self.awaiting > 0 {
            return Err(HpoError::InvalidConfig {
                message: format!(
                    "{} scheduler asked for a batch with {} rung results outstanding",
                    self.name, self.awaiting
                ),
            });
        }
        if !self.started {
            let (n, min_resource) = self.brackets[self.bracket_idx];
            let configs = self.proposer.propose(space, n, rng)?;
            self.active = configs
                .into_iter()
                .map(|config| {
                    let id = self.next_trial_id;
                    self.next_trial_id += 1;
                    (id, config)
                })
                .collect();
            self.resource = min_resource.min(self.max_resource);
            self.started = true;
        }
        self.scores = vec![None; self.active.len()];
        self.awaiting = self.active.len();
        Ok(self
            .active
            .iter()
            .map(|(trial_id, config)| TrialRequest {
                trial_id: *trial_id,
                config: config.clone(),
                resource: self.resource,
                noise_rep: 0,
            })
            .collect())
    }

    fn report(&mut self, result: &TrialResult) -> Result<()> {
        let position = self
            .active
            .iter()
            .position(|(id, _)| *id == result.trial_id)
            .ok_or_else(|| HpoError::InvalidConfig {
                message: format!(
                    "{} scheduler received a result for unknown trial {}",
                    self.name, result.trial_id
                ),
            })?;
        if self.scores[position].is_some() {
            return Err(HpoError::InvalidConfig {
                message: format!(
                    "{} scheduler received a duplicate result for trial {}",
                    self.name, result.trial_id
                ),
            });
        }
        self.proposer.observe(result);
        self.scores[position] = Some(result.score);
        self.awaiting -= 1;
        if self.awaiting == 0 {
            self.advance_rung();
        }
        Ok(())
    }

    fn is_finished(&self) -> bool {
        self.bracket_idx >= self.brackets.len() && self.awaiting == 0
    }
}

/// One Successive Halving bracket.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SuccessiveHalving {
    num_configs: usize,
    eta: usize,
    min_resource: usize,
    max_resource: usize,
}

impl SuccessiveHalving {
    /// Creates a SHA bracket configuration.
    pub fn new(num_configs: usize, eta: usize, min_resource: usize, max_resource: usize) -> Self {
        SuccessiveHalving {
            num_configs,
            eta,
            min_resource,
            max_resource,
        }
    }

    /// Number of configurations entering the bracket.
    pub fn num_configs(&self) -> usize {
        self.num_configs
    }

    /// Elimination factor `η`.
    pub fn eta(&self) -> usize {
        self.eta
    }

    /// Resource of the first rung.
    pub fn min_resource(&self) -> usize {
        self.min_resource
    }

    /// Maximum resource any configuration may receive.
    pub fn max_resource(&self) -> usize {
        self.max_resource
    }

    fn validate(&self) -> Result<()> {
        if self.num_configs == 0 {
            return Err(HpoError::InvalidConfig {
                message: "successive halving needs at least one configuration".into(),
            });
        }
        if self.eta < 2 {
            return Err(HpoError::InvalidConfig {
                message: format!("eta must be at least 2, got {}", self.eta),
            });
        }
        if self.min_resource == 0 || self.min_resource > self.max_resource {
            return Err(HpoError::InvalidConfig {
                message: format!(
                    "resource range [{}, {}] is invalid",
                    self.min_resource, self.max_resource
                ),
            });
        }
        Ok(())
    }
}

impl Tuner for SuccessiveHalving {
    fn name(&self) -> &'static str {
        "sha"
    }

    fn tune(
        &self,
        space: &SearchSpace,
        objective: &mut dyn Objective,
        rng: &mut StdRng,
    ) -> Result<TuningOutcome> {
        run_scheduler(&mut self.scheduler()?, space, objective, rng)
    }
}

impl IntoScheduler for SuccessiveHalving {
    type Scheduler = BracketScheduler;

    fn scheduler(&self) -> Result<BracketScheduler> {
        self.validate()?;
        Ok(BracketScheduler::new(
            "sha",
            self.eta,
            self.max_resource,
            vec![(self.num_configs, self.min_resource)],
            Proposer::Uniform,
        ))
    }
}

/// Hyperband: a collection of SHA brackets trading off the number of
/// configurations against the resource each receives.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Hyperband {
    max_resource: usize,
    eta: usize,
    num_brackets: usize,
}

impl Hyperband {
    /// Creates a Hyperband tuner. `num_brackets = None` derives the standard
    /// `⌊log_η(max_resource)⌋ + 1` bracket count.
    pub fn new(max_resource: usize, eta: usize, num_brackets: Option<usize>) -> Self {
        let derived = if max_resource > 0 && eta >= 2 {
            ((max_resource as f64).ln() / (eta as f64).ln()).floor() as usize + 1
        } else {
            1
        };
        Hyperband {
            max_resource,
            eta,
            num_brackets: num_brackets.unwrap_or(derived).max(1),
        }
    }

    /// The paper's configuration: `η = 3` and 5 SHA brackets, with the given
    /// maximum rounds per configuration.
    pub fn paper_default(max_rounds: usize) -> Self {
        Hyperband::new(max_rounds, 3, Some(5))
    }

    /// Maximum resource per configuration.
    pub fn max_resource(&self) -> usize {
        self.max_resource
    }

    /// Elimination factor `η`.
    pub fn eta(&self) -> usize {
        self.eta
    }

    /// Number of SHA brackets.
    pub fn num_brackets(&self) -> usize {
        self.num_brackets
    }

    pub(crate) fn validate(&self) -> Result<()> {
        if self.max_resource == 0 {
            return Err(HpoError::InvalidConfig {
                message: "max_resource must be positive".into(),
            });
        }
        if self.eta < 2 {
            return Err(HpoError::InvalidConfig {
                message: format!("eta must be at least 2, got {}", self.eta),
            });
        }
        Ok(())
    }

    /// The `(num_configs, min_resource)` pair for bracket `s`
    /// (`s = num_brackets - 1` is the most exploratory bracket).
    pub fn bracket_plan(&self, s: usize) -> (usize, usize) {
        let s_max = self.num_brackets - 1;
        let eta = self.eta as f64;
        let n = (((s_max + 1) as f64 / (s + 1) as f64) * eta.powi(s as i32)).ceil() as usize;
        let r = ((self.max_resource as f64) / eta.powi(s as i32))
            .round()
            .max(1.0) as usize;
        (n.max(1), r.min(self.max_resource))
    }
}

impl Tuner for Hyperband {
    fn name(&self) -> &'static str {
        "hb"
    }

    fn tune(
        &self,
        space: &SearchSpace,
        objective: &mut dyn Objective,
        rng: &mut StdRng,
    ) -> Result<TuningOutcome> {
        run_scheduler(&mut self.scheduler()?, space, objective, rng)
    }
}

impl Hyperband {
    /// The bracket ladder in execution order (most exploratory first).
    pub(crate) fn bracket_ladder(&self) -> Vec<(usize, usize)> {
        (0..self.num_brackets)
            .rev()
            .map(|s| self.bracket_plan(s))
            .collect()
    }
}

impl IntoScheduler for Hyperband {
    type Scheduler = BracketScheduler;

    fn scheduler(&self) -> Result<BracketScheduler> {
        self.validate()?;
        Ok(BracketScheduler::new(
            "hb",
            self.eta,
            self.max_resource,
            self.bracket_ladder(),
            Proposer::Uniform,
        ))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::objective::FunctionObjective;
    use fedmath::rng::rng_for;
    use std::collections::HashMap;

    fn space_1d() -> SearchSpace {
        SearchSpace::new().with_uniform("x", 0.0, 1.0).unwrap()
    }

    /// Objective where the score improves with resource and depends on |x - 0.3|.
    fn resource_aware_objective() -> FunctionObjective<impl FnMut(&HpConfig, usize) -> f64> {
        FunctionObjective::new(|config: &HpConfig, resource: usize| {
            let x = config.values()[0];
            let quality = (x - 0.3).abs();
            // More resource reveals the true quality (less "bias").
            quality + 1.0 / (resource as f64 + 1.0)
        })
    }

    #[test]
    fn sha_validation() {
        let mut rng = rng_for(0, 0);
        let mut obj = resource_aware_objective();
        assert!(SuccessiveHalving::new(0, 3, 1, 9)
            .tune(&space_1d(), &mut obj, &mut rng)
            .is_err());
        assert!(SuccessiveHalving::new(9, 1, 1, 9)
            .tune(&space_1d(), &mut obj, &mut rng)
            .is_err());
        assert!(SuccessiveHalving::new(9, 3, 0, 9)
            .tune(&space_1d(), &mut obj, &mut rng)
            .is_err());
        assert!(SuccessiveHalving::new(9, 3, 10, 9)
            .tune(&space_1d(), &mut obj, &mut rng)
            .is_err());
        let sha = SuccessiveHalving::new(9, 3, 1, 9);
        assert_eq!(sha.name(), "sha");
        assert_eq!(sha.num_configs(), 9);
        assert_eq!(sha.eta(), 3);
        assert_eq!(sha.min_resource(), 1);
        assert_eq!(sha.max_resource(), 9);
    }

    #[test]
    fn sha_eliminates_configs_and_promotes_survivors() {
        let mut rng = rng_for(1, 0);
        let mut obj = resource_aware_objective();
        let sha = SuccessiveHalving::new(9, 3, 1, 9);
        let outcome = sha.tune(&space_1d(), &mut obj, &mut rng).unwrap();

        // Count evaluations per rung: 9 at r=1, 3 at r=3, 1 at r=9.
        let mut per_rung: HashMap<usize, usize> = HashMap::new();
        for r in outcome.records() {
            *per_rung.entry(r.resource).or_default() += 1;
        }
        assert_eq!(per_rung.get(&1), Some(&9));
        assert_eq!(per_rung.get(&3), Some(&3));
        assert_eq!(per_rung.get(&9), Some(&1));

        // Total budget: 9*1 + 3*(3-1) + 1*(9-3) = 21.
        assert_eq!(outcome.total_resource(), 21);

        // Only configurations that were among the best at the previous rung
        // are promoted.
        let rung1_scores: HashMap<usize, f64> = outcome
            .records()
            .iter()
            .filter(|r| r.resource == 1)
            .map(|r| (r.trial_id, r.score))
            .collect();
        let promoted: Vec<usize> = outcome
            .records()
            .iter()
            .filter(|r| r.resource == 3)
            .map(|r| r.trial_id)
            .collect();
        let mut sorted: Vec<(usize, f64)> = rung1_scores.iter().map(|(&k, &v)| (k, v)).collect();
        sorted.sort_by(|a, b| a.1.partial_cmp(&b.1).unwrap());
        let best3: std::collections::HashSet<usize> =
            sorted.iter().take(3).map(|(k, _)| *k).collect();
        for id in promoted {
            assert!(best3.contains(&id), "promoted a non-top-3 configuration");
        }
    }

    #[test]
    fn hyperband_bracket_plan_matches_paper_shape() {
        // R = 405, eta = 3, 5 brackets reproduces the paper's structure.
        let hb = Hyperband::paper_default(405);
        assert_eq!(hb.num_brackets(), 5);
        assert_eq!(hb.eta(), 3);
        assert_eq!(hb.max_resource(), 405);
        assert_eq!(hb.bracket_plan(4), (81, 5));
        assert_eq!(hb.bracket_plan(3), (34, 15));
        assert_eq!(hb.bracket_plan(2), (15, 45));
        assert_eq!(hb.bracket_plan(1), (8, 135));
        assert_eq!(hb.bracket_plan(0), (5, 405));
    }

    #[test]
    fn hyperband_derives_bracket_count() {
        let hb = Hyperband::new(81, 3, None);
        // log3(81) = 4 -> 5 brackets.
        assert_eq!(hb.num_brackets(), 5);
        let hb = Hyperband::new(1, 3, None);
        assert_eq!(hb.num_brackets(), 1);
    }

    #[test]
    fn hyperband_runs_all_brackets_and_respects_max_resource() {
        let mut rng = rng_for(2, 0);
        let mut obj = resource_aware_objective();
        let hb = Hyperband::new(27, 3, Some(3));
        let outcome = hb.tune(&space_1d(), &mut obj, &mut rng).unwrap();
        assert!(outcome.num_evaluations() > 0);
        assert!(outcome.records().iter().all(|r| r.resource <= 27));
        // The most exploitative bracket evaluates at full resource.
        assert!(outcome.records().iter().any(|r| r.resource == 27));
        assert_eq!(hb.name(), "hb");
        // Cumulative budget is strictly increasing.
        let mut prev = 0;
        for r in outcome.records() {
            assert!(r.cumulative_resource >= prev);
            prev = r.cumulative_resource;
        }
    }

    #[test]
    fn hyperband_finds_good_configs_on_resource_aware_objective() {
        let mut rng = rng_for(3, 0);
        let mut obj = resource_aware_objective();
        let hb = Hyperband::new(27, 3, Some(3));
        let outcome = hb.tune(&space_1d(), &mut obj, &mut rng).unwrap();
        let best = outcome
            .best_at_max_fidelity_within_budget(usize::MAX)
            .unwrap();
        let x = best.config.values()[0];
        assert!((x - 0.3).abs() < 0.2, "best x = {x} should be near 0.3");
    }

    #[test]
    fn hyperband_validation() {
        let mut rng = rng_for(4, 0);
        let mut obj = resource_aware_objective();
        assert!(Hyperband::new(0, 3, Some(2))
            .tune(&space_1d(), &mut obj, &mut rng)
            .is_err());
        assert!(Hyperband::new(9, 1, Some(2))
            .tune(&space_1d(), &mut obj, &mut rng)
            .is_err());
    }

    #[test]
    fn scheduler_suggests_whole_rungs_as_batches() {
        use crate::scheduler::{IntoScheduler, Scheduler, TrialResult};
        let space = space_1d();
        let sha = SuccessiveHalving::new(9, 3, 1, 9);
        let mut scheduler = sha.scheduler().unwrap();
        let mut rng = rng_for(6, 0);
        // Rung 0: 9 configurations at resource 1, one batch.
        let rung0 = scheduler.suggest(&space, &mut rng).unwrap();
        assert_eq!(rung0.len(), 9);
        assert!(rung0.iter().all(|r| r.resource == 1));
        // Suggesting again with results outstanding is a contract violation.
        assert!(scheduler.suggest(&space, &mut rng).is_err());
        // Report in an arbitrary (here: reversed) order; promotions only
        // depend on the scores, not the arrival order.
        for request in rung0.iter().rev() {
            let score = request.trial_id as f64; // trials 0,1,2 are best
            scheduler.report(&TrialResult::of(request, score)).unwrap();
        }
        let rung1 = scheduler.suggest(&space, &mut rng).unwrap();
        assert_eq!(rung1.len(), 3);
        assert!(rung1.iter().all(|r| r.resource == 3));
        let promoted: Vec<usize> = rung1.iter().map(|r| r.trial_id).collect();
        assert_eq!(promoted, vec![0, 1, 2]);
        // Duplicate and unknown results are rejected.
        scheduler.report(&TrialResult::of(&rung1[0], 0.0)).unwrap();
        assert!(scheduler.report(&TrialResult::of(&rung1[0], 0.0)).is_err());
        let mut bogus = rung1[1].clone();
        bogus.trial_id = 999;
        assert!(scheduler.report(&TrialResult::of(&bogus, 0.0)).is_err());
        scheduler.report(&TrialResult::of(&rung1[1], 1.0)).unwrap();
        scheduler.report(&TrialResult::of(&rung1[2], 2.0)).unwrap();
        // Rung 2: the single survivor at max resource, then finished.
        let rung2 = scheduler.suggest(&space, &mut rng).unwrap();
        assert_eq!(rung2.len(), 1);
        assert_eq!(rung2[0].resource, 9);
        scheduler.report(&TrialResult::of(&rung2[0], 0.5)).unwrap();
        assert!(scheduler.is_finished());
        assert!(scheduler.suggest(&space, &mut rng).unwrap().is_empty());
    }

    #[test]
    fn nan_scores_are_eliminated_first() {
        use crate::scheduler::{IntoScheduler, Scheduler, TrialResult};
        let space = space_1d();
        let mut scheduler = SuccessiveHalving::new(3, 3, 1, 9).scheduler().unwrap();
        let mut rng = rng_for(7, 0);
        let rung0 = scheduler.suggest(&space, &mut rng).unwrap();
        scheduler
            .report(&TrialResult::of(&rung0[0], f64::NAN))
            .unwrap();
        scheduler.report(&TrialResult::of(&rung0[1], 0.9)).unwrap();
        scheduler.report(&TrialResult::of(&rung0[2], 0.1)).unwrap();
        let rung1 = scheduler.suggest(&space, &mut rng).unwrap();
        assert_eq!(rung1.len(), 1);
        assert_eq!(rung1[0].trial_id, rung0[2].trial_id);
    }

    #[test]
    fn trial_ids_are_unique_across_brackets() {
        let mut rng = rng_for(5, 0);
        let mut obj = resource_aware_objective();
        let hb = Hyperband::new(9, 3, Some(3));
        let outcome = hb.tune(&space_1d(), &mut obj, &mut rng).unwrap();
        // A trial id must always map to one configuration.
        let mut seen: HashMap<usize, Vec<f64>> = HashMap::new();
        for r in outcome.records() {
            let entry = seen
                .entry(r.trial_id)
                .or_insert_with(|| r.config.values().to_vec());
            assert_eq!(entry, &r.config.values().to_vec());
        }
    }
}
