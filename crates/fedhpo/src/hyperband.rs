//! Successive Halving and Hyperband (Li et al. 2017).
//!
//! Successive Halving (SHA) trains `n` configurations for a small resource,
//! keeps the best `⌊n/η⌋`, multiplies the resource by `η`, and repeats.
//! Hyperband hedges over the exploration/exploitation trade-off by running
//! several SHA brackets with different initial `n` and resource. The paper
//! runs 5 brackets with elimination factor `η = 3` and a maximum of 405
//! rounds per configuration.

use crate::objective::Objective;
use crate::space::{HpConfig, SearchSpace};
use crate::tuner::{EvaluationRecord, Tuner, TuningOutcome};
use crate::{HpoError, Result};
use rand::rngs::StdRng;

/// State shared by bracket execution: the running history and budget counter.
#[derive(Debug, Default)]
pub(crate) struct BracketState {
    pub(crate) outcome: TuningOutcome,
    pub(crate) cumulative: usize,
    pub(crate) next_trial_id: usize,
}

/// One Successive Halving bracket.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SuccessiveHalving {
    num_configs: usize,
    eta: usize,
    min_resource: usize,
    max_resource: usize,
}

impl SuccessiveHalving {
    /// Creates a SHA bracket configuration.
    pub fn new(num_configs: usize, eta: usize, min_resource: usize, max_resource: usize) -> Self {
        SuccessiveHalving {
            num_configs,
            eta,
            min_resource,
            max_resource,
        }
    }

    /// Number of configurations entering the bracket.
    pub fn num_configs(&self) -> usize {
        self.num_configs
    }

    /// Elimination factor `η`.
    pub fn eta(&self) -> usize {
        self.eta
    }

    /// Resource of the first rung.
    pub fn min_resource(&self) -> usize {
        self.min_resource
    }

    /// Maximum resource any configuration may receive.
    pub fn max_resource(&self) -> usize {
        self.max_resource
    }

    fn validate(&self) -> Result<()> {
        if self.num_configs == 0 {
            return Err(HpoError::InvalidConfig {
                message: "successive halving needs at least one configuration".into(),
            });
        }
        if self.eta < 2 {
            return Err(HpoError::InvalidConfig {
                message: format!("eta must be at least 2, got {}", self.eta),
            });
        }
        if self.min_resource == 0 || self.min_resource > self.max_resource {
            return Err(HpoError::InvalidConfig {
                message: format!(
                    "resource range [{}, {}] is invalid",
                    self.min_resource, self.max_resource
                ),
            });
        }
        Ok(())
    }

    /// Runs one bracket over the given configurations, resuming each
    /// configuration's training as its resource grows and recording every
    /// evaluation into `state`.
    pub(crate) fn run_bracket(
        &self,
        configs: Vec<HpConfig>,
        objective: &mut dyn Objective,
        state: &mut BracketState,
    ) -> Result<()> {
        self.validate()?;
        // Assign stable trial ids.
        let mut active: Vec<(usize, HpConfig, usize)> = configs
            .into_iter()
            .map(|c| {
                let id = state.next_trial_id;
                state.next_trial_id += 1;
                (id, c, 0usize) // (trial_id, config, resource consumed so far)
            })
            .collect();

        let mut resource = self.min_resource.min(self.max_resource);
        loop {
            // Evaluate every active configuration at the current rung.
            let mut scores = Vec::with_capacity(active.len());
            for (trial_id, config, consumed) in &mut active {
                let score = objective.evaluate(*trial_id, config, resource)?;
                state.cumulative += resource.saturating_sub(*consumed);
                *consumed = resource;
                state.outcome.push(EvaluationRecord {
                    trial_id: *trial_id,
                    config: config.clone(),
                    resource,
                    score,
                    cumulative_resource: state.cumulative,
                });
                scores.push(score);
            }
            if active.len() < self.eta || resource >= self.max_resource {
                break;
            }
            // Keep the best ⌊n/η⌋ configurations (at least one).
            let keep = (active.len() / self.eta).max(1);
            let mut order: Vec<usize> = (0..active.len()).collect();
            order.sort_by(|&a, &b| {
                scores[a]
                    .partial_cmp(&scores[b])
                    .unwrap_or(std::cmp::Ordering::Equal)
            });
            let survivors: std::collections::HashSet<usize> =
                order.into_iter().take(keep).collect();
            active = active
                .into_iter()
                .enumerate()
                .filter(|(i, _)| survivors.contains(i))
                .map(|(_, x)| x)
                .collect();
            resource = (resource * self.eta).min(self.max_resource);
        }
        Ok(())
    }
}

impl Tuner for SuccessiveHalving {
    fn name(&self) -> &'static str {
        "sha"
    }

    fn tune(
        &self,
        space: &SearchSpace,
        objective: &mut dyn Objective,
        rng: &mut StdRng,
    ) -> Result<TuningOutcome> {
        self.validate()?;
        let configs = space.sample_many(self.num_configs, rng)?;
        let mut state = BracketState::default();
        self.run_bracket(configs, objective, &mut state)?;
        Ok(state.outcome)
    }
}

/// Hyperband: a collection of SHA brackets trading off the number of
/// configurations against the resource each receives.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Hyperband {
    max_resource: usize,
    eta: usize,
    num_brackets: usize,
}

impl Hyperband {
    /// Creates a Hyperband tuner. `num_brackets = None` derives the standard
    /// `⌊log_η(max_resource)⌋ + 1` bracket count.
    pub fn new(max_resource: usize, eta: usize, num_brackets: Option<usize>) -> Self {
        let derived = if max_resource > 0 && eta >= 2 {
            ((max_resource as f64).ln() / (eta as f64).ln()).floor() as usize + 1
        } else {
            1
        };
        Hyperband {
            max_resource,
            eta,
            num_brackets: num_brackets.unwrap_or(derived).max(1),
        }
    }

    /// The paper's configuration: `η = 3` and 5 SHA brackets, with the given
    /// maximum rounds per configuration.
    pub fn paper_default(max_rounds: usize) -> Self {
        Hyperband::new(max_rounds, 3, Some(5))
    }

    /// Maximum resource per configuration.
    pub fn max_resource(&self) -> usize {
        self.max_resource
    }

    /// Elimination factor `η`.
    pub fn eta(&self) -> usize {
        self.eta
    }

    /// Number of SHA brackets.
    pub fn num_brackets(&self) -> usize {
        self.num_brackets
    }

    fn validate(&self) -> Result<()> {
        if self.max_resource == 0 {
            return Err(HpoError::InvalidConfig {
                message: "max_resource must be positive".into(),
            });
        }
        if self.eta < 2 {
            return Err(HpoError::InvalidConfig {
                message: format!("eta must be at least 2, got {}", self.eta),
            });
        }
        Ok(())
    }

    /// The `(num_configs, min_resource)` pair for bracket `s`
    /// (`s = num_brackets - 1` is the most exploratory bracket).
    pub fn bracket_plan(&self, s: usize) -> (usize, usize) {
        let s_max = self.num_brackets - 1;
        let eta = self.eta as f64;
        let n = (((s_max + 1) as f64 / (s + 1) as f64) * eta.powi(s as i32)).ceil() as usize;
        let r = ((self.max_resource as f64) / eta.powi(s as i32))
            .round()
            .max(1.0) as usize;
        (n.max(1), r.min(self.max_resource))
    }
}

impl Tuner for Hyperband {
    fn name(&self) -> &'static str {
        "hb"
    }

    fn tune(
        &self,
        space: &SearchSpace,
        objective: &mut dyn Objective,
        rng: &mut StdRng,
    ) -> Result<TuningOutcome> {
        self.validate()?;
        let mut state = BracketState::default();
        for s in (0..self.num_brackets).rev() {
            let (n, r) = self.bracket_plan(s);
            let configs = space.sample_many(n, rng)?;
            let bracket = SuccessiveHalving::new(n, self.eta, r, self.max_resource);
            bracket.run_bracket(configs, objective, &mut state)?;
        }
        Ok(state.outcome)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::objective::FunctionObjective;
    use fedmath::rng::rng_for;
    use std::collections::HashMap;

    fn space_1d() -> SearchSpace {
        SearchSpace::new().with_uniform("x", 0.0, 1.0).unwrap()
    }

    /// Objective where the score improves with resource and depends on |x - 0.3|.
    fn resource_aware_objective() -> FunctionObjective<impl FnMut(&HpConfig, usize) -> f64> {
        FunctionObjective::new(|config: &HpConfig, resource: usize| {
            let x = config.values()[0];
            let quality = (x - 0.3).abs();
            // More resource reveals the true quality (less "bias").
            quality + 1.0 / (resource as f64 + 1.0)
        })
    }

    #[test]
    fn sha_validation() {
        let mut rng = rng_for(0, 0);
        let mut obj = resource_aware_objective();
        assert!(SuccessiveHalving::new(0, 3, 1, 9)
            .tune(&space_1d(), &mut obj, &mut rng)
            .is_err());
        assert!(SuccessiveHalving::new(9, 1, 1, 9)
            .tune(&space_1d(), &mut obj, &mut rng)
            .is_err());
        assert!(SuccessiveHalving::new(9, 3, 0, 9)
            .tune(&space_1d(), &mut obj, &mut rng)
            .is_err());
        assert!(SuccessiveHalving::new(9, 3, 10, 9)
            .tune(&space_1d(), &mut obj, &mut rng)
            .is_err());
        let sha = SuccessiveHalving::new(9, 3, 1, 9);
        assert_eq!(sha.name(), "sha");
        assert_eq!(sha.num_configs(), 9);
        assert_eq!(sha.eta(), 3);
        assert_eq!(sha.min_resource(), 1);
        assert_eq!(sha.max_resource(), 9);
    }

    #[test]
    fn sha_eliminates_configs_and_promotes_survivors() {
        let mut rng = rng_for(1, 0);
        let mut obj = resource_aware_objective();
        let sha = SuccessiveHalving::new(9, 3, 1, 9);
        let outcome = sha.tune(&space_1d(), &mut obj, &mut rng).unwrap();

        // Count evaluations per rung: 9 at r=1, 3 at r=3, 1 at r=9.
        let mut per_rung: HashMap<usize, usize> = HashMap::new();
        for r in outcome.records() {
            *per_rung.entry(r.resource).or_default() += 1;
        }
        assert_eq!(per_rung.get(&1), Some(&9));
        assert_eq!(per_rung.get(&3), Some(&3));
        assert_eq!(per_rung.get(&9), Some(&1));

        // Total budget: 9*1 + 3*(3-1) + 1*(9-3) = 21.
        assert_eq!(outcome.total_resource(), 21);

        // Only configurations that were among the best at the previous rung
        // are promoted.
        let rung1_scores: HashMap<usize, f64> = outcome
            .records()
            .iter()
            .filter(|r| r.resource == 1)
            .map(|r| (r.trial_id, r.score))
            .collect();
        let promoted: Vec<usize> = outcome
            .records()
            .iter()
            .filter(|r| r.resource == 3)
            .map(|r| r.trial_id)
            .collect();
        let mut sorted: Vec<(usize, f64)> = rung1_scores.iter().map(|(&k, &v)| (k, v)).collect();
        sorted.sort_by(|a, b| a.1.partial_cmp(&b.1).unwrap());
        let best3: std::collections::HashSet<usize> =
            sorted.iter().take(3).map(|(k, _)| *k).collect();
        for id in promoted {
            assert!(best3.contains(&id), "promoted a non-top-3 configuration");
        }
    }

    #[test]
    fn hyperband_bracket_plan_matches_paper_shape() {
        // R = 405, eta = 3, 5 brackets reproduces the paper's structure.
        let hb = Hyperband::paper_default(405);
        assert_eq!(hb.num_brackets(), 5);
        assert_eq!(hb.eta(), 3);
        assert_eq!(hb.max_resource(), 405);
        assert_eq!(hb.bracket_plan(4), (81, 5));
        assert_eq!(hb.bracket_plan(3), (34, 15));
        assert_eq!(hb.bracket_plan(2), (15, 45));
        assert_eq!(hb.bracket_plan(1), (8, 135));
        assert_eq!(hb.bracket_plan(0), (5, 405));
    }

    #[test]
    fn hyperband_derives_bracket_count() {
        let hb = Hyperband::new(81, 3, None);
        // log3(81) = 4 -> 5 brackets.
        assert_eq!(hb.num_brackets(), 5);
        let hb = Hyperband::new(1, 3, None);
        assert_eq!(hb.num_brackets(), 1);
    }

    #[test]
    fn hyperband_runs_all_brackets_and_respects_max_resource() {
        let mut rng = rng_for(2, 0);
        let mut obj = resource_aware_objective();
        let hb = Hyperband::new(27, 3, Some(3));
        let outcome = hb.tune(&space_1d(), &mut obj, &mut rng).unwrap();
        assert!(outcome.num_evaluations() > 0);
        assert!(outcome.records().iter().all(|r| r.resource <= 27));
        // The most exploitative bracket evaluates at full resource.
        assert!(outcome.records().iter().any(|r| r.resource == 27));
        assert_eq!(hb.name(), "hb");
        // Cumulative budget is strictly increasing.
        let mut prev = 0;
        for r in outcome.records() {
            assert!(r.cumulative_resource >= prev);
            prev = r.cumulative_resource;
        }
    }

    #[test]
    fn hyperband_finds_good_configs_on_resource_aware_objective() {
        let mut rng = rng_for(3, 0);
        let mut obj = resource_aware_objective();
        let hb = Hyperband::new(27, 3, Some(3));
        let outcome = hb.tune(&space_1d(), &mut obj, &mut rng).unwrap();
        let best = outcome
            .best_at_max_fidelity_within_budget(usize::MAX)
            .unwrap();
        let x = best.config.values()[0];
        assert!((x - 0.3).abs() < 0.2, "best x = {x} should be near 0.3");
    }

    #[test]
    fn hyperband_validation() {
        let mut rng = rng_for(4, 0);
        let mut obj = resource_aware_objective();
        assert!(Hyperband::new(0, 3, Some(2))
            .tune(&space_1d(), &mut obj, &mut rng)
            .is_err());
        assert!(Hyperband::new(9, 1, Some(2))
            .tune(&space_1d(), &mut obj, &mut rng)
            .is_err());
    }

    #[test]
    fn trial_ids_are_unique_across_brackets() {
        let mut rng = rng_for(5, 0);
        let mut obj = resource_aware_objective();
        let hb = Hyperband::new(9, 3, Some(3));
        let outcome = hb.tune(&space_1d(), &mut obj, &mut rng).unwrap();
        // A trial id must always map to one configuration.
        let mut seen: HashMap<usize, Vec<f64>> = HashMap::new();
        for r in outcome.records() {
            let entry = seen
                .entry(r.trial_id)
                .or_insert_with(|| r.config.values().to_vec());
            assert_eq!(entry, &r.config.values().to_vec());
        }
    }
}
