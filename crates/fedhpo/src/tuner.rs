//! The [`Tuner`] trait and the evaluation history it produces.

use crate::objective::Objective;
use crate::space::{HpConfig, SearchSpace};
use crate::Result;
use rand::rngs::StdRng;
use serde::{Deserialize, Serialize};

/// One evaluation performed during a tuning run.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct EvaluationRecord {
    /// Identifier of the configuration being evaluated (stable across
    /// re-evaluations of the same configuration at higher fidelity).
    pub trial_id: usize,
    /// The configuration.
    pub config: HpConfig,
    /// Cumulative resource (training rounds) this configuration has received
    /// at the time of the evaluation.
    pub resource: usize,
    /// The score reported by the objective (lower is better). This is the
    /// possibly *noisy* signal the tuner acts on.
    pub score: f64,
    /// Total resource spent by the tuner across all configurations up to and
    /// including this evaluation — the x-axis of the paper's online plots.
    pub cumulative_resource: usize,
}

/// The full history of a tuning run.
#[derive(Debug, Clone, PartialEq, Default, Serialize, Deserialize)]
pub struct TuningOutcome {
    records: Vec<EvaluationRecord>,
}

impl TuningOutcome {
    /// Creates an outcome from raw records (mainly for tests).
    pub fn from_records(records: Vec<EvaluationRecord>) -> Self {
        TuningOutcome { records }
    }

    /// All evaluation records in chronological order.
    pub fn records(&self) -> &[EvaluationRecord] {
        &self.records
    }

    /// Number of evaluations performed.
    pub fn num_evaluations(&self) -> usize {
        self.records.len()
    }

    /// Total resource (training rounds) spent by the run.
    pub fn total_resource(&self) -> usize {
        self.records.last().map_or(0, |r| r.cumulative_resource)
    }

    /// The record with the lowest score over the entire run, i.e. the
    /// configuration the tuner would select.
    pub fn best(&self) -> Option<&EvaluationRecord> {
        self.records.iter().min_by(|a, b| {
            a.score
                .partial_cmp(&b.score)
                .unwrap_or(std::cmp::Ordering::Equal)
        })
    }

    /// The best record among evaluations completed within the given resource
    /// budget — used to draw "performance vs. budget" curves (Fig. 5, 8, 12).
    pub fn best_within_budget(&self, budget: usize) -> Option<&EvaluationRecord> {
        self.records
            .iter()
            .filter(|r| r.cumulative_resource <= budget)
            .min_by(|a, b| {
                a.score
                    .partial_cmp(&b.score)
                    .unwrap_or(std::cmp::Ordering::Equal)
            })
    }

    /// The best record restricted to evaluations at the highest fidelity seen
    /// so far within the budget. Early-stopping methods evaluate many
    /// configurations at low fidelity; selecting only among the highest
    /// fidelity mirrors how Hyperband reports its incumbent.
    pub fn best_at_max_fidelity_within_budget(&self, budget: usize) -> Option<&EvaluationRecord> {
        let within: Vec<&EvaluationRecord> = self
            .records
            .iter()
            .filter(|r| r.cumulative_resource <= budget)
            .collect();
        let max_fidelity = within.iter().map(|r| r.resource).max()?;
        within
            .into_iter()
            .filter(|r| r.resource == max_fidelity)
            .min_by(|a, b| {
                a.score
                    .partial_cmp(&b.score)
                    .unwrap_or(std::cmp::Ordering::Equal)
            })
    }

    /// Appends a record (used by tuner implementations).
    pub fn push(&mut self, record: EvaluationRecord) {
        self.records.push(record);
    }
}

/// A hyperparameter-tuning method.
pub trait Tuner {
    /// Short name used in reports (`"rs"`, `"tpe"`, `"hb"`, `"bohb"`, …).
    fn name(&self) -> &'static str;

    /// Runs the tuning method against `objective` over `space`, using `rng`
    /// for all stochastic choices, and returns the evaluation history.
    ///
    /// # Errors
    ///
    /// Propagates objective failures and configuration errors.
    fn tune(
        &self,
        space: &SearchSpace,
        objective: &mut dyn Objective,
        rng: &mut StdRng,
    ) -> Result<TuningOutcome>;
}

#[cfg(test)]
mod tests {
    use super::*;

    fn record(trial: usize, resource: usize, score: f64, cumulative: usize) -> EvaluationRecord {
        EvaluationRecord {
            trial_id: trial,
            config: HpConfig::new(vec![trial as f64]),
            resource,
            score,
            cumulative_resource: cumulative,
        }
    }

    #[test]
    fn outcome_best_and_budget_queries() {
        let outcome = TuningOutcome::from_records(vec![
            record(0, 10, 0.8, 10),
            record(1, 10, 0.5, 20),
            record(2, 10, 0.9, 30),
            record(3, 10, 0.3, 40),
        ]);
        assert_eq!(outcome.num_evaluations(), 4);
        assert_eq!(outcome.total_resource(), 40);
        assert_eq!(outcome.best().unwrap().trial_id, 3);
        assert_eq!(outcome.best_within_budget(25).unwrap().trial_id, 1);
        assert_eq!(outcome.best_within_budget(5), None);
        assert_eq!(outcome.best_within_budget(1000).unwrap().trial_id, 3);
    }

    #[test]
    fn outcome_max_fidelity_selection() {
        // Trial 1 is best at low fidelity but trial 2 is the best among
        // configurations trained to the highest fidelity.
        let outcome = TuningOutcome::from_records(vec![
            record(0, 5, 0.6, 5),
            record(1, 5, 0.1, 10),
            record(2, 15, 0.4, 25),
            record(3, 15, 0.5, 40),
        ]);
        assert_eq!(outcome.best().unwrap().trial_id, 1);
        assert_eq!(
            outcome
                .best_at_max_fidelity_within_budget(40)
                .unwrap()
                .trial_id,
            2
        );
        // Within a smaller budget the max fidelity seen is 5.
        assert_eq!(
            outcome
                .best_at_max_fidelity_within_budget(10)
                .unwrap()
                .trial_id,
            1
        );
        assert!(outcome.best_at_max_fidelity_within_budget(1).is_none());
    }

    #[test]
    fn empty_outcome() {
        let outcome = TuningOutcome::default();
        assert_eq!(outcome.num_evaluations(), 0);
        assert_eq!(outcome.total_resource(), 0);
        assert!(outcome.best().is_none());
        assert!(outcome.best_within_budget(10).is_none());
    }

    #[test]
    fn push_appends() {
        let mut outcome = TuningOutcome::default();
        outcome.push(record(0, 1, 1.0, 1));
        assert_eq!(outcome.num_evaluations(), 1);
    }
}
