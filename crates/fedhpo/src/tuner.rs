//! The [`Tuner`] trait and the evaluation history it produces.

use crate::objective::Objective;
use crate::space::{HpConfig, SearchSpace};
use crate::Result;
use rand::rngs::StdRng;
use serde::{Deserialize, Serialize};

/// One evaluation performed during a tuning run.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct EvaluationRecord {
    /// Identifier of the configuration being evaluated (stable across
    /// re-evaluations of the same configuration at higher fidelity).
    pub trial_id: usize,
    /// The configuration.
    pub config: HpConfig,
    /// Cumulative resource (training rounds) this configuration has received
    /// at the time of the evaluation.
    pub resource: usize,
    /// The score reported by the objective (lower is better). This is the
    /// possibly *noisy* signal the tuner acts on.
    pub score: f64,
    /// Total resource spent by the tuner across all configurations up to and
    /// including this evaluation — the x-axis of the paper's online plots.
    pub cumulative_resource: usize,
    /// Noise replicate index: `0` for the schedule's ordinary evaluations,
    /// `>= 1` for fresh-noise re-evaluations issued by the noise-aware
    /// re-evaluation policy (see [`crate::ReEvaluation`]).
    pub noise_rep: u64,
    /// Simulated completion time of this evaluation in virtual seconds —
    /// the x-axis of wall-clock-budget curves. `0.0` for records produced by
    /// synchronous drivers, which have no virtual clock.
    pub sim_time: f64,
}

/// The full history of a tuning run.
#[derive(Debug, Clone, PartialEq, Default, Serialize, Deserialize)]
pub struct TuningOutcome {
    records: Vec<EvaluationRecord>,
}

impl TuningOutcome {
    /// Creates an outcome from raw records (mainly for tests).
    pub fn from_records(records: Vec<EvaluationRecord>) -> Self {
        TuningOutcome { records }
    }

    /// All evaluation records in chronological order.
    pub fn records(&self) -> &[EvaluationRecord] {
        &self.records
    }

    /// Number of evaluations performed.
    pub fn num_evaluations(&self) -> usize {
        self.records.len()
    }

    /// Total resource (training rounds) spent by the run.
    pub fn total_resource(&self) -> usize {
        self.records.last().map_or(0, |r| r.cumulative_resource)
    }

    /// The record with the lowest score over the entire run, i.e. the
    /// configuration the tuner would select. Records with non-finite scores
    /// (NaN, ±∞ — e.g. from a diverged training run) are never selected.
    pub fn best(&self) -> Option<&EvaluationRecord> {
        self.records
            .iter()
            .filter(|r| r.score.is_finite())
            .min_by(|a, b| a.score.total_cmp(&b.score))
    }

    /// The best finite-score record among evaluations completed within the
    /// given resource budget — used to draw "performance vs. budget" curves
    /// (Fig. 5, 8, 12).
    pub fn best_within_budget(&self, budget: usize) -> Option<&EvaluationRecord> {
        self.records
            .iter()
            .filter(|r| r.cumulative_resource <= budget && r.score.is_finite())
            .min_by(|a, b| a.score.total_cmp(&b.score))
    }

    /// The best record restricted to evaluations at the highest fidelity seen
    /// so far within the budget. Early-stopping methods evaluate many
    /// configurations at low fidelity; selecting only among the highest
    /// fidelity mirrors how Hyperband reports its incumbent. Non-finite
    /// scores are skipped for selection (but still count towards the maximum
    /// fidelity seen).
    pub fn best_at_max_fidelity_within_budget(&self, budget: usize) -> Option<&EvaluationRecord> {
        let within: Vec<&EvaluationRecord> = self
            .records
            .iter()
            .filter(|r| r.cumulative_resource <= budget)
            .collect();
        let max_fidelity = within.iter().map(|r| r.resource).max()?;
        within
            .into_iter()
            .filter(|r| r.resource == max_fidelity && r.score.is_finite())
            .min_by(|a, b| a.score.total_cmp(&b.score))
    }

    /// Noise-aware selection within the budget: if the run contains
    /// fresh-noise re-evaluations (`noise_rep >= 1`, issued by the
    /// re-evaluation mitigation), the winner is the re-evaluated
    /// configuration with the lowest *mean* re-evaluation score — averaging
    /// fresh draws cancels evaluation noise instead of rewarding it the way a
    /// plain minimum does. Without re-evaluations this falls back to
    /// [`best_within_budget`](Self::best_within_budget). The returned record
    /// is the winner's last re-evaluation within the budget.
    pub fn selected_within_budget(&self, budget: usize) -> Option<&EvaluationRecord> {
        // (trial_id, score sum, count) per re-evaluated trial, insertion order.
        let mut means: Vec<(usize, f64, usize)> = Vec::new();
        for r in self
            .records
            .iter()
            .filter(|r| r.cumulative_resource <= budget && r.noise_rep >= 1 && r.score.is_finite())
        {
            match means.iter_mut().find(|(id, _, _)| *id == r.trial_id) {
                Some((_, sum, count)) => {
                    *sum += r.score;
                    *count += 1;
                }
                None => means.push((r.trial_id, r.score, 1)),
            }
        }
        let winner = match means
            .iter()
            .map(|&(id, sum, count)| (id, sum / count as f64))
            .min_by(|a, b| a.1.total_cmp(&b.1).then(a.0.cmp(&b.0)))
        {
            Some((id, _)) => id,
            None => return self.best_within_budget(budget),
        };
        self.records
            .iter()
            .rev()
            .find(|r| r.trial_id == winner && r.noise_rep >= 1 && r.cumulative_resource <= budget)
    }

    /// Appends a record (used by tuner implementations).
    pub fn push(&mut self, record: EvaluationRecord) {
        self.records.push(record);
    }

    /// Simulated seconds the run took: the latest completion time on record.
    /// `0.0` for synchronous campaigns, which carry no virtual timestamps.
    pub fn sim_elapsed(&self) -> f64 {
        self.records.iter().map(|r| r.sim_time).fold(0.0, f64::max)
    }

    /// The best finite-score record among evaluations completed within the
    /// given simulated wall-clock budget — the virtual-time counterpart of
    /// [`best_within_budget`](Self::best_within_budget), used to draw
    /// time-to-accuracy curves for event-driven campaigns.
    pub fn best_within_sim_time(&self, sim_budget: f64) -> Option<&EvaluationRecord> {
        self.records
            .iter()
            .filter(|r| r.sim_time <= sim_budget && r.score.is_finite())
            .min_by(|a, b| a.score.total_cmp(&b.score))
    }
}

/// A hyperparameter-tuning method.
pub trait Tuner {
    /// Short name used in reports (`"rs"`, `"tpe"`, `"hb"`, `"bohb"`, …).
    fn name(&self) -> &'static str;

    /// Runs the tuning method against `objective` over `space`, using `rng`
    /// for all stochastic choices, and returns the evaluation history.
    ///
    /// # Errors
    ///
    /// Propagates objective failures and configuration errors.
    fn tune(
        &self,
        space: &SearchSpace,
        objective: &mut dyn Objective,
        rng: &mut StdRng,
    ) -> Result<TuningOutcome>;
}

#[cfg(test)]
mod tests {
    use super::*;

    fn record(trial: usize, resource: usize, score: f64, cumulative: usize) -> EvaluationRecord {
        EvaluationRecord {
            trial_id: trial,
            config: HpConfig::new(vec![trial as f64]),
            resource,
            score,
            cumulative_resource: cumulative,
            noise_rep: 0,
            sim_time: 0.0,
        }
    }

    fn reeval(trial: usize, resource: usize, score: f64, cumulative: usize) -> EvaluationRecord {
        EvaluationRecord {
            noise_rep: 1,
            ..record(trial, resource, score, cumulative)
        }
    }

    #[test]
    fn outcome_best_and_budget_queries() {
        let outcome = TuningOutcome::from_records(vec![
            record(0, 10, 0.8, 10),
            record(1, 10, 0.5, 20),
            record(2, 10, 0.9, 30),
            record(3, 10, 0.3, 40),
        ]);
        assert_eq!(outcome.num_evaluations(), 4);
        assert_eq!(outcome.total_resource(), 40);
        assert_eq!(outcome.best().unwrap().trial_id, 3);
        assert_eq!(outcome.best_within_budget(25).unwrap().trial_id, 1);
        assert_eq!(outcome.best_within_budget(5), None);
        assert_eq!(outcome.best_within_budget(1000).unwrap().trial_id, 3);
    }

    #[test]
    fn outcome_max_fidelity_selection() {
        // Trial 1 is best at low fidelity but trial 2 is the best among
        // configurations trained to the highest fidelity.
        let outcome = TuningOutcome::from_records(vec![
            record(0, 5, 0.6, 5),
            record(1, 5, 0.1, 10),
            record(2, 15, 0.4, 25),
            record(3, 15, 0.5, 40),
        ]);
        assert_eq!(outcome.best().unwrap().trial_id, 1);
        assert_eq!(
            outcome
                .best_at_max_fidelity_within_budget(40)
                .unwrap()
                .trial_id,
            2
        );
        // Within a smaller budget the max fidelity seen is 5.
        assert_eq!(
            outcome
                .best_at_max_fidelity_within_budget(10)
                .unwrap()
                .trial_id,
            1
        );
        assert!(outcome.best_at_max_fidelity_within_budget(1).is_none());
    }

    #[test]
    fn empty_outcome() {
        let outcome = TuningOutcome::default();
        assert_eq!(outcome.num_evaluations(), 0);
        assert_eq!(outcome.total_resource(), 0);
        assert!(outcome.best().is_none());
        assert!(outcome.best_within_budget(10).is_none());
    }

    #[test]
    fn push_appends() {
        let mut outcome = TuningOutcome::default();
        outcome.push(record(0, 1, 1.0, 1));
        assert_eq!(outcome.num_evaluations(), 1);
    }

    #[test]
    fn nan_scores_never_win_selection() {
        // Regression: `partial_cmp(..).unwrap_or(Equal)` used to let a NaN
        // score (a diverged training run) win `min_by` and poison selection.
        let outcome = TuningOutcome::from_records(vec![
            record(0, 10, f64::NAN, 10),
            record(1, 10, 0.5, 20),
            record(2, 10, f64::NEG_INFINITY, 30),
            record(3, 10, 0.3, 40),
        ]);
        assert_eq!(outcome.best().unwrap().trial_id, 3);
        assert_eq!(outcome.best_within_budget(20).unwrap().trial_id, 1);
        assert_eq!(
            outcome
                .best_at_max_fidelity_within_budget(40)
                .unwrap()
                .trial_id,
            3
        );
        // An all-NaN history selects nothing rather than garbage.
        let poisoned = TuningOutcome::from_records(vec![record(0, 5, f64::NAN, 5)]);
        assert!(poisoned.best().is_none());
        assert!(poisoned.best_within_budget(10).is_none());
        assert!(poisoned.best_at_max_fidelity_within_budget(10).is_none());
    }

    #[test]
    fn reevaluated_selection_averages_fresh_draws() {
        // Trial 1 got a lucky noisy minimum at rep 0, but its fresh-noise
        // re-evaluations average worse than trial 2's.
        let mut records = vec![
            record(1, 10, 0.10, 10),
            record(2, 10, 0.35, 20),
            reeval(1, 10, 0.50, 20),
            reeval(1, 10, 0.60, 20),
            reeval(2, 10, 0.30, 20),
        ];
        records.push(EvaluationRecord {
            noise_rep: 2,
            ..record(2, 10, 0.40, 20)
        });
        let outcome = TuningOutcome::from_records(records);
        // Plain min-selection is fooled by the lucky draw ...
        assert_eq!(outcome.best_within_budget(20).unwrap().trial_id, 1);
        // ... mean-of-re-evaluations selection is not (0.55 vs 0.35).
        let selected = outcome.selected_within_budget(20).unwrap();
        assert_eq!(selected.trial_id, 2);
        assert!(selected.noise_rep >= 1);
        // Without re-evaluations in range, fall back to the plain rule.
        assert_eq!(outcome.selected_within_budget(10).unwrap().trial_id, 1);
        assert!(TuningOutcome::default()
            .selected_within_budget(10)
            .is_none());
    }
}
