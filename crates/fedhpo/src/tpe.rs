//! The Tree-structured Parzen Estimator (Bergstra et al. 2011).
//!
//! TPE models the conditional density of configurations given their score:
//! observations are split at a quantile `y*` of the scores into a "good" set
//! (used to estimate `l(θ)`) and a "bad" set (used to estimate `g(θ)`);
//! maximising expected improvement is equivalent to maximising `l(θ)/g(θ)`,
//! which TPE does by drawing candidates from `l` and ranking them by the
//! density ratio.
//!
//! As discussed in §5 of the paper, TPE's expected-improvement criterion
//! assumes noiseless evaluations — this implementation makes no attempt to
//! model evaluation noise, which is exactly the behaviour the paper studies.

use crate::objective::Objective;
use crate::scheduler::{run_scheduler, IntoScheduler, Scheduler, TrialRequest, TrialResult};
use crate::space::{Dimension, HpConfig, SearchSpace};
use crate::tuner::{Tuner, TuningOutcome};
use crate::{HpoError, Result};
use rand::rngs::StdRng;
use rand::Rng;
use serde::{Deserialize, Serialize};

/// Configuration of the TPE sampler.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct TpeConfig {
    /// Fraction of observations treated as "good" (the `γ` quantile).
    pub gamma: f64,
    /// Number of candidates drawn from `l(θ)` per proposal.
    pub num_candidates: usize,
    /// Number of initial configurations sampled uniformly at random before
    /// the density model is used.
    pub num_startup: usize,
    /// Kernel bandwidth for continuous dimensions, as a fraction of the
    /// dimension's range.
    pub bandwidth: f64,
}

impl Default for TpeConfig {
    fn default() -> Self {
        TpeConfig {
            gamma: 0.25,
            num_candidates: 24,
            num_startup: 4,
            bandwidth: 0.2,
        }
    }
}

impl TpeConfig {
    fn validate(&self) -> Result<()> {
        if !(0.0 < self.gamma && self.gamma < 1.0) {
            return Err(HpoError::InvalidConfig {
                message: format!("gamma must be in (0, 1), got {}", self.gamma),
            });
        }
        if self.num_candidates == 0 {
            return Err(HpoError::InvalidConfig {
                message: "num_candidates must be positive".into(),
            });
        }
        if self.num_startup == 0 {
            return Err(HpoError::InvalidConfig {
                message: "num_startup must be positive".into(),
            });
        }
        if self.bandwidth <= 0.0 || !self.bandwidth.is_finite() {
            return Err(HpoError::InvalidConfig {
                message: format!("bandwidth must be positive, got {}", self.bandwidth),
            });
        }
        Ok(())
    }
}

/// A reusable TPE proposal engine, shared by the [`Tpe`] tuner and
/// [`crate::Bohb`].
#[derive(Debug, Clone, Copy)]
pub struct TpeSampler {
    config: TpeConfig,
}

impl TpeSampler {
    /// Creates a sampler.
    ///
    /// # Errors
    ///
    /// Returns [`HpoError::InvalidConfig`] if the configuration is invalid.
    pub fn new(config: TpeConfig) -> Result<Self> {
        config.validate()?;
        Ok(TpeSampler { config })
    }

    /// The sampler configuration.
    pub fn config(&self) -> &TpeConfig {
        &self.config
    }

    /// Proposes the next configuration to evaluate given the observations
    /// `(config, score)` collected so far (lower scores are better). Falls
    /// back to uniform random sampling while fewer than
    /// [`TpeConfig::num_startup`] (or 2) observations are available.
    ///
    /// # Errors
    ///
    /// Propagates space sampling errors.
    pub fn propose(
        &self,
        space: &SearchSpace,
        observations: &[(HpConfig, f64)],
        rng: &mut StdRng,
    ) -> Result<HpConfig> {
        if observations.len() < self.config.num_startup.max(2) {
            return space.sample(rng);
        }
        // Split observations into good (low score) and bad.
        let mut sorted: Vec<&(HpConfig, f64)> = observations.iter().collect();
        sorted.sort_by(|a, b| a.1.partial_cmp(&b.1).unwrap_or(std::cmp::Ordering::Equal));
        let n_good = ((observations.len() as f64 * self.config.gamma).ceil() as usize)
            .clamp(1, observations.len() - 1);
        let good: Vec<&HpConfig> = sorted[..n_good].iter().map(|(c, _)| c).collect();
        let bad: Vec<&HpConfig> = sorted[n_good..].iter().map(|(c, _)| c).collect();

        // Draw candidates from l(θ) and keep the one maximising l/g.
        let mut best: Option<(f64, HpConfig)> = None;
        for _ in 0..self.config.num_candidates {
            let candidate = self.sample_from_kde(space, &good, rng)?;
            let log_l = self.log_density(space, &good, &candidate);
            let log_g = self.log_density(space, &bad, &candidate);
            let ratio = log_l - log_g;
            if best.as_ref().is_none_or(|(b, _)| ratio > *b) {
                best = Some((ratio, candidate));
            }
        }
        Ok(best.expect("num_candidates >= 1").1)
    }

    /// Samples one configuration from the kernel-density mixture centred on
    /// the given observations.
    fn sample_from_kde(
        &self,
        space: &SearchSpace,
        observations: &[&HpConfig],
        rng: &mut StdRng,
    ) -> Result<HpConfig> {
        if observations.is_empty() {
            return space.sample(rng);
        }
        let center = observations[rng.gen_range(0..observations.len())];
        let mut values = Vec::with_capacity(space.len());
        for (i, dim) in space.dimensions().iter().enumerate() {
            let v = center.values()[i];
            let sampled = match dim {
                Dimension::Uniform { low, high } => {
                    let sigma = (high - low) * self.config.bandwidth;
                    sample_truncated_normal(rng, v, sigma, *low, *high)
                }
                Dimension::LogUniform { low, high } => {
                    let (ll, lh) = (low.log10(), high.log10());
                    let sigma = (lh - ll) * self.config.bandwidth;
                    10f64.powf(sample_truncated_normal(rng, v.log10(), sigma, ll, lh))
                }
                Dimension::Categorical { choices } => {
                    // Keep the centre's value with high probability, otherwise
                    // explore a uniformly random choice.
                    if rng.gen::<f64>() < 0.8 {
                        v
                    } else {
                        choices[rng.gen_range(0..choices.len())]
                    }
                }
                Dimension::Fixed { value } => *value,
            };
            values.push(sampled);
        }
        Ok(HpConfig::new(values))
    }

    /// Log of the mixture kernel density of `config` under the observations.
    fn log_density(
        &self,
        space: &SearchSpace,
        observations: &[&HpConfig],
        config: &HpConfig,
    ) -> f64 {
        if observations.is_empty() {
            return 0.0;
        }
        // Mixture over observations; each component is a product of per-dim
        // kernels. Work with per-component log densities and log-sum-exp.
        let mut component_logs = Vec::with_capacity(observations.len());
        for obs in observations {
            let mut log_p = 0.0;
            for (i, dim) in space.dimensions().iter().enumerate() {
                let x = config.values()[i];
                let mu = obs.values()[i];
                log_p += match dim {
                    Dimension::Uniform { low, high } => {
                        let sigma = ((high - low) * self.config.bandwidth).max(1e-12);
                        log_normal_pdf(x, mu, sigma)
                    }
                    Dimension::LogUniform { low, high } => {
                        let (ll, lh) = (low.log10(), high.log10());
                        let sigma = ((lh - ll) * self.config.bandwidth).max(1e-12);
                        log_normal_pdf(x.log10(), mu.log10(), sigma)
                    }
                    Dimension::Categorical { choices } => {
                        // Smoothed categorical kernel: probability mass 0.8 on
                        // the observed value, spread 0.2 over the rest.
                        let k = choices.len() as f64;
                        if (x - mu).abs() < 1e-12 {
                            (0.8 + 0.2 / k).ln()
                        } else {
                            (0.2 / k).max(1e-12).ln()
                        }
                    }
                    Dimension::Fixed { .. } => 0.0,
                };
            }
            component_logs.push(log_p);
        }
        fedmath::ops::log_sum_exp(&component_logs) - (observations.len() as f64).ln()
    }
}

fn log_normal_pdf(x: f64, mu: f64, sigma: f64) -> f64 {
    let z = (x - mu) / sigma;
    -0.5 * z * z - sigma.ln() - 0.5 * (2.0 * std::f64::consts::PI).ln()
}

fn sample_truncated_normal(rng: &mut StdRng, mu: f64, sigma: f64, low: f64, high: f64) -> f64 {
    if sigma <= 0.0 || low >= high {
        return mu.clamp(low, high);
    }
    // Rejection sampling with a clamp fallback after a bounded number of tries.
    for _ in 0..32 {
        let u1: f64 = rng.gen_range(f64::MIN_POSITIVE..1.0);
        let u2: f64 = rng.gen();
        let z = (-2.0 * u1.ln()).sqrt() * (2.0 * std::f64::consts::PI * u2).cos();
        let x = mu + sigma * z;
        if x >= low && x <= high {
            return x;
        }
    }
    mu.clamp(low, high)
}

/// The TPE tuner: sequentially proposes and evaluates `num_configs`
/// configurations, each trained for `rounds_per_config` rounds, using the
/// density-ratio acquisition to pick each new configuration.
#[derive(Debug, Clone, Copy)]
pub struct Tpe {
    num_configs: usize,
    rounds_per_config: usize,
    sampler_config: TpeConfig,
}

impl Tpe {
    /// Creates a TPE tuner with default sampler settings.
    pub fn new(num_configs: usize, rounds_per_config: usize) -> Self {
        Tpe {
            num_configs,
            rounds_per_config,
            sampler_config: TpeConfig::default(),
        }
    }

    /// Creates a TPE tuner with explicit sampler settings.
    pub fn with_config(num_configs: usize, rounds_per_config: usize, config: TpeConfig) -> Self {
        Tpe {
            num_configs,
            rounds_per_config,
            sampler_config: config,
        }
    }

    /// The paper's configuration: `K = 16` sequential configurations.
    pub fn paper_default(max_rounds: usize) -> Self {
        Tpe::new(16, max_rounds)
    }

    fn validate(&self) -> Result<()> {
        if self.num_configs == 0 || self.rounds_per_config == 0 {
            return Err(HpoError::InvalidConfig {
                message: "tpe needs positive num_configs and rounds_per_config".into(),
            });
        }
        self.sampler_config.validate()
    }
}

impl Tuner for Tpe {
    fn name(&self) -> &'static str {
        "tpe"
    }

    fn tune(
        &self,
        space: &SearchSpace,
        objective: &mut dyn Objective,
        rng: &mut StdRng,
    ) -> Result<TuningOutcome> {
        run_scheduler(&mut self.scheduler()?, space, objective, rng)
    }
}

impl IntoScheduler for Tpe {
    type Scheduler = TpeScheduler;

    fn scheduler(&self) -> Result<TpeScheduler> {
        self.validate()?;
        Ok(TpeScheduler {
            num_configs: self.num_configs,
            rounds_per_config: self.rounds_per_config,
            sampler: TpeSampler::new(self.sampler_config)?,
            observations: Vec::new(),
            suggested: 0,
        })
    }
}

/// Ask/tell state of a TPE campaign. The startup proposals are independent
/// uniform samples, so they form one parallel batch; once the density model
/// takes over, every proposal depends on all previous scores and the
/// schedule degrades to batches of one — exactly the sequential structure of
/// the original method.
#[derive(Debug, Clone)]
pub struct TpeScheduler {
    num_configs: usize,
    rounds_per_config: usize,
    sampler: TpeSampler,
    observations: Vec<(HpConfig, f64)>,
    suggested: usize,
}

impl TpeScheduler {
    /// Number of leading proposals that fall back to uniform sampling (and
    /// can therefore be suggested as one batch).
    fn startup(&self) -> usize {
        self.sampler
            .config()
            .num_startup
            .max(2)
            .min(self.num_configs)
    }

    fn request_for(
        &self,
        trial_id: usize,
        space: &SearchSpace,
        rng: &mut StdRng,
    ) -> Result<TrialRequest> {
        Ok(TrialRequest {
            trial_id,
            config: self.sampler.propose(space, &self.observations, rng)?,
            resource: self.rounds_per_config,
            noise_rep: 0,
        })
    }
}

impl Scheduler for TpeScheduler {
    fn name(&self) -> &'static str {
        "tpe"
    }

    fn suggest(&mut self, space: &SearchSpace, rng: &mut StdRng) -> Result<Vec<TrialRequest>> {
        if self.suggested >= self.num_configs {
            return Ok(Vec::new());
        }
        if self.observations.len() < self.suggested {
            return Err(HpoError::InvalidConfig {
                message: "tpe scheduler asked for a batch with results outstanding".into(),
            });
        }
        let batch_end = if self.suggested == 0 {
            self.startup()
        } else {
            self.suggested + 1
        };
        let batch: Result<Vec<TrialRequest>> = (self.suggested..batch_end)
            .map(|trial_id| self.request_for(trial_id, space, rng))
            .collect();
        self.suggested = batch_end;
        batch
    }

    fn report(&mut self, result: &TrialResult) -> Result<()> {
        self.observations
            .push((result.config.clone(), result.score));
        Ok(())
    }

    fn is_finished(&self) -> bool {
        self.suggested >= self.num_configs && self.observations.len() >= self.num_configs
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::objective::FunctionObjective;
    use crate::random_search::RandomSearch;
    use fedmath::rng::rng_for;

    fn space_2d() -> SearchSpace {
        SearchSpace::new()
            .with_uniform("x", -5.0, 5.0)
            .unwrap()
            .with_uniform("y", -5.0, 5.0)
            .unwrap()
    }

    #[test]
    fn config_validation() {
        assert!(TpeConfig::default().validate().is_ok());
        assert!(TpeConfig {
            gamma: 0.0,
            ..Default::default()
        }
        .validate()
        .is_err());
        assert!(TpeConfig {
            gamma: 1.0,
            ..Default::default()
        }
        .validate()
        .is_err());
        assert!(TpeConfig {
            num_candidates: 0,
            ..Default::default()
        }
        .validate()
        .is_err());
        assert!(TpeConfig {
            num_startup: 0,
            ..Default::default()
        }
        .validate()
        .is_err());
        assert!(TpeConfig {
            bandwidth: 0.0,
            ..Default::default()
        }
        .validate()
        .is_err());
        assert!(TpeSampler::new(TpeConfig {
            bandwidth: -1.0,
            ..Default::default()
        })
        .is_err());
        let mut rng = rng_for(0, 0);
        let mut obj = FunctionObjective::new(|_: &HpConfig, _| 0.0);
        assert!(Tpe::new(0, 1)
            .tune(&space_2d(), &mut obj, &mut rng)
            .is_err());
        assert!(Tpe::new(1, 0)
            .tune(&space_2d(), &mut obj, &mut rng)
            .is_err());
        assert_eq!(Tpe::paper_default(405).name(), "tpe");
    }

    #[test]
    fn proposals_stay_within_the_space() {
        let space = SearchSpace::paper_default();
        let sampler = TpeSampler::new(TpeConfig::default()).unwrap();
        let mut rng = rng_for(1, 0);
        // Build synthetic observations from valid samples.
        let mut observations = Vec::new();
        for i in 0..12 {
            let c = space.sample(&mut rng).unwrap();
            observations.push((c, i as f64 / 12.0));
        }
        for _ in 0..30 {
            let proposal = sampler.propose(&space, &observations, &mut rng).unwrap();
            assert!(space.validate_config(&proposal).is_ok());
        }
        assert_eq!(sampler.config().num_candidates, 24);
    }

    #[test]
    fn startup_phase_is_random() {
        let space = space_2d();
        let sampler = TpeSampler::new(TpeConfig::default()).unwrap();
        let mut rng = rng_for(1, 1);
        // With fewer than num_startup observations, proposals are just
        // uniform samples and must still be valid.
        let proposal = sampler.propose(&space, &[], &mut rng).unwrap();
        assert!(space.validate_config(&proposal).is_ok());
    }

    #[test]
    fn tpe_beats_random_search_on_a_smooth_function() {
        // On a smooth noiseless quadratic with a small budget, TPE's model
        // should (on average) find a better optimum than random search.
        let space = space_2d();
        let f = |c: &HpConfig| {
            let x = c.values()[0];
            let y = c.values()[1];
            (x - 1.5).powi(2) + (y + 2.0).powi(2)
        };
        let mut tpe_wins = 0;
        let trials = 10;
        for seed in 0..trials {
            let mut rng = rng_for(10, seed);
            let mut obj = FunctionObjective::new(|c: &HpConfig, _| f(c));
            let tpe_best = Tpe::new(24, 1)
                .tune(&space, &mut obj, &mut rng)
                .unwrap()
                .best()
                .unwrap()
                .score;

            let mut rng = rng_for(20, seed);
            let mut obj = FunctionObjective::new(|c: &HpConfig, _| f(c));
            let rs_best = RandomSearch::new(24, 1)
                .tune(&space, &mut obj, &mut rng)
                .unwrap()
                .best()
                .unwrap()
                .score;
            if tpe_best <= rs_best {
                tpe_wins += 1;
            }
        }
        assert!(
            tpe_wins >= 6,
            "TPE should usually beat RS on a smooth function, won {tpe_wins}/{trials}"
        );
    }

    #[test]
    fn scheduler_batches_startup_then_goes_sequential() {
        use crate::scheduler::{IntoScheduler, Scheduler, TrialResult};
        let space = space_2d();
        let mut scheduler = Tpe::new(8, 2).scheduler().unwrap();
        let mut rng = rng_for(5, 0);
        // Default num_startup = 4: the first batch holds all uniform startup
        // proposals, every later batch exactly one model-guided proposal.
        let startup = scheduler.suggest(&space, &mut rng).unwrap();
        assert_eq!(startup.len(), 4);
        for request in &startup {
            scheduler.report(&TrialResult::of(request, 1.0)).unwrap();
        }
        let mut next_id = 4;
        while !scheduler.is_finished() {
            let batch = scheduler.suggest(&space, &mut rng).unwrap();
            assert_eq!(batch.len(), 1);
            assert_eq!(batch[0].trial_id, next_id);
            next_id += 1;
            scheduler.report(&TrialResult::of(&batch[0], 1.0)).unwrap();
        }
        assert_eq!(next_id, 8);
        assert!(scheduler.suggest(&space, &mut rng).unwrap().is_empty());
    }

    #[test]
    fn budget_accounting() {
        let space = space_2d();
        let mut obj = FunctionObjective::new(|_: &HpConfig, _| 0.5);
        let mut rng = rng_for(2, 0);
        let outcome = Tpe::new(6, 10).tune(&space, &mut obj, &mut rng).unwrap();
        assert_eq!(outcome.num_evaluations(), 6);
        assert_eq!(outcome.total_resource(), 60);
    }

    #[test]
    fn truncated_normal_respects_bounds() {
        let mut rng = rng_for(3, 0);
        for _ in 0..200 {
            let x = sample_truncated_normal(&mut rng, 0.5, 10.0, 0.0, 1.0);
            assert!((0.0..=1.0).contains(&x));
        }
        // Degenerate sigma falls back to the clamped mean.
        assert_eq!(sample_truncated_normal(&mut rng, 5.0, 0.0, 0.0, 1.0), 1.0);
    }

    #[test]
    fn log_density_prefers_nearby_points() {
        let space = space_2d();
        let sampler = TpeSampler::new(TpeConfig::default()).unwrap();
        let obs_configs = [
            HpConfig::new(vec![0.0, 0.0]),
            HpConfig::new(vec![0.1, -0.1]),
        ];
        let obs: Vec<&HpConfig> = obs_configs.iter().collect();
        let near = sampler.log_density(&space, &obs, &HpConfig::new(vec![0.05, 0.0]));
        let far = sampler.log_density(&space, &obs, &HpConfig::new(vec![4.5, 4.5]));
        assert!(near > far);
    }
}
