//! The batched **ask/tell** tuning interface.
//!
//! The classic [`Tuner`](crate::Tuner) API is *pull*-style: the tuner owns the
//! loop and calls the objective one evaluation at a time, so the hot path of a
//! live tuning campaign is inherently sequential. [`Scheduler`] inverts that
//! control flow: the tuning method *suggests* a batch of [`TrialRequest`]s,
//! the caller evaluates them however it likes (sequentially, fanned out over
//! threads, or on remote workers), and *reports* each [`TrialResult`] back.
//!
//! Determinism contract: a scheduler's suggestions must be a pure function of
//! (its configuration, the RNG passed to [`Scheduler::suggest`], and the
//! multiset of results reported so far). In particular, promotion and
//! proposal decisions must not depend on the *arrival order* of results
//! beyond the batch boundaries the scheduler itself created — this is what
//! lets a batch be evaluated in parallel and reported in any deterministic
//! order while reproducing the sequential run bit for bit.
//!
//! [`run_scheduler`] is the reference sequential driver used by every
//! [`Tuner`](crate::Tuner) implementation in this crate; the parallel batch
//! driver that fans suggestions out through the execution engine lives in
//! `fedtune_core::scheduler`.

use crate::objective::Objective;
use crate::space::{HpConfig, SearchSpace};
use crate::tuner::{EvaluationRecord, TuningOutcome};
use crate::{HpoError, Result};
use rand::rngs::StdRng;
use serde::{Deserialize, Serialize};
use std::collections::HashMap;

/// One unit of work suggested by a [`Scheduler`]: evaluate `config`
/// (identified by `trial_id`) once its training has reached `resource`
/// cumulative budget units.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TrialRequest {
    /// Stable identifier of the configuration (unchanged across fidelities
    /// and re-evaluations).
    pub trial_id: usize,
    /// The configuration to train/evaluate.
    pub config: HpConfig,
    /// Cumulative resource (training rounds) the configuration must have
    /// received before this evaluation.
    pub resource: usize,
    /// Noise replicate index. `0` is the schedule's ordinary evaluation;
    /// values `>= 1` ask the objective for an independent *fresh* noise draw
    /// at the same fidelity (the paper's re-evaluation mitigation). Objectives
    /// that key their noise positionally derive it from the evaluated point's
    /// coordinates `(config, resource, noise_rep)`.
    pub noise_rep: u64,
}

/// The outcome of evaluating one [`TrialRequest`].
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TrialResult {
    /// Identifier of the evaluated configuration.
    pub trial_id: usize,
    /// The evaluated configuration.
    pub config: HpConfig,
    /// Cumulative resource the configuration had received at evaluation time.
    pub resource: usize,
    /// Noise replicate index of the originating request.
    pub noise_rep: u64,
    /// The (possibly noisy) score reported by the objective; lower is better.
    pub score: f64,
}

impl TrialResult {
    /// Builds the result for `request` with the given score.
    pub fn of(request: &TrialRequest, score: f64) -> Self {
        TrialResult {
            trial_id: request.trial_id,
            config: request.config.clone(),
            resource: request.resource,
            noise_rep: request.noise_rep,
            score,
        }
    }
}

/// A batched ask/tell tuning method.
///
/// Drivers interact with a scheduler in rounds: call [`suggest`], evaluate
/// every returned request, [`report`] each result (in the deterministic batch
/// order), and repeat until [`is_finished`]. A scheduler may return a batch of
/// any size; every request in one batch must be independently evaluable
/// (distinct `(trial_id, resource, noise_rep)` triples).
///
/// [`suggest`]: Scheduler::suggest
/// [`report`]: Scheduler::report
/// [`is_finished`]: Scheduler::is_finished
pub trait Scheduler {
    /// Short name used in reports (`"rs"`, `"asha"`, …).
    fn name(&self) -> &'static str;

    /// Proposes the next batch of work. All results of previously suggested
    /// batches must have been reported before calling this again.
    ///
    /// # Errors
    ///
    /// Returns [`HpoError::InvalidConfig`] if called while results are
    /// outstanding, and propagates sampling failures.
    fn suggest(&mut self, space: &SearchSpace, rng: &mut StdRng) -> Result<Vec<TrialRequest>>;

    /// Feeds one evaluation result back into the scheduler.
    ///
    /// # Errors
    ///
    /// Returns [`HpoError::InvalidConfig`] for results the scheduler never
    /// asked for (implementations may choose to accept out-of-band results,
    /// e.g. ASHA tolerates any arrival order).
    fn report(&mut self, result: &TrialResult) -> Result<()>;

    /// `true` once the schedule is exhausted: no further suggestions will be
    /// made and no results are outstanding.
    fn is_finished(&self) -> bool;

    /// `true` if [`suggest`](Self::suggest) may be called while results are
    /// still outstanding. Barrier-style schedulers (the default) are only
    /// polled between batches; asynchronous schedulers (e.g.
    /// [`AsyncAsha`](crate::AsyncAsha)) are re-polled by event-driven
    /// drivers on **every** completion, which is what turns rung-synchronous
    /// successive halving into the paper's actual promote-on-completion
    /// algorithm.
    fn async_capable(&self) -> bool {
        false
    }
}

/// Resource accounting shared by every scheduler driver: converts a stream of
/// [`TrialResult`]s into [`EvaluationRecord`]s, charging each configuration
/// only for the *incremental* resource above what it had already consumed
/// (early-stopping methods resume runs; re-evaluations at an already-reached
/// fidelity are free).
#[derive(Debug, Clone, Default)]
pub struct BudgetLedger {
    consumed: HashMap<usize, usize>,
    cumulative: usize,
}

impl BudgetLedger {
    /// Creates an empty ledger.
    pub fn new() -> Self {
        BudgetLedger::default()
    }

    /// Total resource charged so far across all configurations.
    pub fn cumulative(&self) -> usize {
        self.cumulative
    }

    /// Charges `result`'s incremental resource and produces its record,
    /// stamped at simulated time zero (synchronous drivers have no virtual
    /// clock).
    pub fn record(&mut self, result: &TrialResult) -> EvaluationRecord {
        self.record_at(result, 0.0)
    }

    /// [`record`](Self::record) with an explicit simulated completion time —
    /// the entry point for event-driven drivers, which deliver results in
    /// virtual-time order and stamp each record with its completion instant.
    pub fn record_at(&mut self, result: &TrialResult, sim_time: f64) -> EvaluationRecord {
        let consumed = self.consumed.entry(result.trial_id).or_insert(0);
        self.cumulative += result.resource.saturating_sub(*consumed);
        *consumed = (*consumed).max(result.resource);
        EvaluationRecord {
            trial_id: result.trial_id,
            config: result.config.clone(),
            resource: result.resource,
            score: result.score,
            cumulative_resource: self.cumulative,
            noise_rep: result.noise_rep,
            sim_time,
        }
    }
}

/// Conversion from a tuner configuration into its ask/tell scheduler state.
///
/// Implemented by every tuning method in this crate; the associated scheduler
/// is a fresh state machine, so one configuration can drive many campaigns.
pub trait IntoScheduler {
    /// The scheduler state machine this configuration builds.
    type Scheduler: Scheduler;

    /// Builds a fresh scheduler.
    ///
    /// # Errors
    ///
    /// Returns [`HpoError::InvalidConfig`] if the configuration is invalid.
    fn scheduler(&self) -> Result<Self::Scheduler>;
}

/// The reference sequential driver: repeatedly asks `scheduler` for a batch,
/// evaluates every request through `objective` in batch order, and reports
/// each result before the next evaluation. Every [`Tuner`](crate::Tuner) in
/// this crate is implemented as this driver over its scheduler, so pull-style
/// and ask/tell campaigns produce identical [`TuningOutcome`]s.
///
/// # Errors
///
/// Propagates objective and scheduler errors, and fails if the scheduler
/// stalls (returns an empty batch while unfinished).
pub fn run_scheduler(
    scheduler: &mut dyn Scheduler,
    space: &SearchSpace,
    objective: &mut dyn Objective,
    rng: &mut StdRng,
) -> Result<TuningOutcome> {
    let mut outcome = TuningOutcome::default();
    let mut ledger = BudgetLedger::new();
    while !scheduler.is_finished() {
        let batch = scheduler.suggest(space, rng)?;
        if batch.is_empty() {
            if scheduler.is_finished() {
                break;
            }
            return Err(HpoError::InvalidConfig {
                message: format!(
                    "scheduler {} stalled: empty batch while unfinished",
                    scheduler.name()
                ),
            });
        }
        for request in &batch {
            let score = objective.evaluate_rep(
                request.trial_id,
                &request.config,
                request.resource,
                request.noise_rep,
            )?;
            let result = TrialResult::of(request, score);
            outcome.push(ledger.record(&result));
            scheduler.report(&result)?;
        }
    }
    Ok(outcome)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::objective::FunctionObjective;
    use fedmath::rng::rng_for;

    struct CountingScheduler {
        remaining: usize,
        outstanding: usize,
        stall: bool,
    }

    impl Scheduler for CountingScheduler {
        fn name(&self) -> &'static str {
            "counting"
        }

        fn suggest(&mut self, space: &SearchSpace, rng: &mut StdRng) -> Result<Vec<TrialRequest>> {
            if self.stall || self.remaining == 0 {
                return Ok(Vec::new());
            }
            let trial_id = self.remaining;
            self.remaining -= 1;
            self.outstanding += 1;
            Ok(vec![TrialRequest {
                trial_id,
                config: space.sample(rng)?,
                resource: 2,
                noise_rep: 0,
            }])
        }

        fn report(&mut self, _result: &TrialResult) -> Result<()> {
            self.outstanding -= 1;
            Ok(())
        }

        fn is_finished(&self) -> bool {
            !self.stall && self.remaining == 0 && self.outstanding == 0
        }
    }

    fn space() -> SearchSpace {
        SearchSpace::new().with_uniform("x", 0.0, 1.0).unwrap()
    }

    #[test]
    fn driver_runs_to_completion() {
        let mut scheduler = CountingScheduler {
            remaining: 3,
            outstanding: 0,
            stall: false,
        };
        let mut objective = FunctionObjective::new(|c: &HpConfig, _| c.values()[0]);
        let mut rng = rng_for(0, 0);
        let outcome = run_scheduler(&mut scheduler, &space(), &mut objective, &mut rng).unwrap();
        assert_eq!(outcome.num_evaluations(), 3);
        assert_eq!(outcome.total_resource(), 6);
        assert_eq!(objective.calls(), 3);
    }

    #[test]
    fn driver_rejects_stalled_scheduler() {
        let mut scheduler = CountingScheduler {
            remaining: 3,
            outstanding: 0,
            stall: true,
        };
        let mut objective = FunctionObjective::new(|_: &HpConfig, _| 0.0);
        let mut rng = rng_for(0, 1);
        let err = run_scheduler(&mut scheduler, &space(), &mut objective, &mut rng).unwrap_err();
        assert!(err.to_string().contains("stalled"), "{err}");
    }

    #[test]
    fn ledger_charges_incremental_resource_only() {
        let mut ledger = BudgetLedger::new();
        let config = HpConfig::new(vec![0.0]);
        let result = |trial_id, resource, noise_rep| TrialResult {
            trial_id,
            config: config.clone(),
            resource,
            noise_rep,
            score: 0.5,
        };
        assert_eq!(ledger.record(&result(0, 3, 0)).cumulative_resource, 3);
        // Resuming trial 0 to 9 pays only the 6 extra rounds.
        assert_eq!(ledger.record(&result(0, 9, 0)).cumulative_resource, 9);
        // A fresh-noise re-evaluation at an already-reached fidelity is free.
        let record = ledger.record(&result(0, 9, 1));
        assert_eq!(record.cumulative_resource, 9);
        assert_eq!(record.noise_rep, 1);
        // A second trial pays its own way.
        assert_eq!(ledger.record(&result(1, 4, 0)).cumulative_resource, 13);
        assert_eq!(ledger.cumulative(), 13);
    }

    #[test]
    fn trial_result_of_copies_request_fields() {
        let request = TrialRequest {
            trial_id: 7,
            config: HpConfig::new(vec![1.0]),
            resource: 5,
            noise_rep: 2,
        };
        let result = TrialResult::of(&request, 0.25);
        assert_eq!(result.trial_id, 7);
        assert_eq!(result.resource, 5);
        assert_eq!(result.noise_rep, 2);
        assert_eq!(result.score, 0.25);
        assert_eq!(result.config, request.config);
    }
}
