//! Grid search over the searchable dimensions of a space.

use crate::objective::Objective;
use crate::space::{Dimension, HpConfig, SearchSpace};
use crate::tuner::{EvaluationRecord, Tuner, TuningOutcome};
use crate::{HpoError, Result};
use rand::rngs::StdRng;

/// Classical grid search: discretise every searchable dimension into
/// `resolution` points (categoricals use all their choices, fixed dimensions
/// their single value) and evaluate the full Cartesian product.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct GridSearch {
    resolution: usize,
    rounds_per_config: usize,
}

impl GridSearch {
    /// Creates a grid-search tuner with the given per-dimension resolution.
    pub fn new(resolution: usize, rounds_per_config: usize) -> Self {
        GridSearch {
            resolution,
            rounds_per_config,
        }
    }

    /// Grid resolution for continuous dimensions.
    pub fn resolution(&self) -> usize {
        self.resolution
    }

    fn validate(&self, space: &SearchSpace) -> Result<()> {
        if self.resolution == 0 || self.rounds_per_config == 0 {
            return Err(HpoError::InvalidConfig {
                message: "grid search needs positive resolution and rounds_per_config".into(),
            });
        }
        if space.is_empty() {
            return Err(HpoError::InvalidConfig {
                message: "cannot grid-search an empty space".into(),
            });
        }
        Ok(())
    }

    /// The grid values along one dimension.
    fn dimension_grid(&self, dim: &Dimension) -> Vec<f64> {
        match dim {
            Dimension::Uniform { low, high } => linspace(*low, *high, self.resolution),
            Dimension::LogUniform { low, high } => {
                linspace(low.log10(), high.log10(), self.resolution)
                    .into_iter()
                    .map(|x| 10f64.powf(x))
                    .collect()
            }
            Dimension::Categorical { choices } => choices.clone(),
            Dimension::Fixed { value } => vec![*value],
        }
    }

    /// Enumerates the full grid of configurations.
    pub fn grid(&self, space: &SearchSpace) -> Vec<HpConfig> {
        let axes: Vec<Vec<f64>> = space
            .dimensions()
            .iter()
            .map(|d| self.dimension_grid(d))
            .collect();
        let mut configs = vec![Vec::new()];
        for axis in &axes {
            let mut next = Vec::with_capacity(configs.len() * axis.len());
            for partial in &configs {
                for &v in axis {
                    let mut extended = partial.clone();
                    extended.push(v);
                    next.push(extended);
                }
            }
            configs = next;
        }
        configs.into_iter().map(HpConfig::new).collect()
    }
}

fn linspace(low: f64, high: f64, points: usize) -> Vec<f64> {
    if points == 1 {
        return vec![(low + high) / 2.0];
    }
    (0..points)
        .map(|i| low + (high - low) * i as f64 / (points - 1) as f64)
        .collect()
}

impl Tuner for GridSearch {
    fn name(&self) -> &'static str {
        "grid"
    }

    fn tune(
        &self,
        space: &SearchSpace,
        objective: &mut dyn Objective,
        _rng: &mut StdRng,
    ) -> Result<TuningOutcome> {
        self.validate(space)?;
        let mut outcome = TuningOutcome::default();
        let mut cumulative = 0usize;
        for (trial_id, config) in self.grid(space).into_iter().enumerate() {
            let score = objective.evaluate(trial_id, &config, self.rounds_per_config)?;
            cumulative += self.rounds_per_config;
            outcome.push(EvaluationRecord {
                trial_id,
                config,
                resource: self.rounds_per_config,
                score,
                cumulative_resource: cumulative,
                noise_rep: 0,
                sim_time: 0.0,
            });
        }
        Ok(outcome)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::objective::FunctionObjective;
    use fedmath::rng::rng_for;

    #[test]
    fn linspace_endpoints() {
        assert_eq!(linspace(0.0, 1.0, 3), vec![0.0, 0.5, 1.0]);
        assert_eq!(linspace(0.0, 2.0, 1), vec![1.0]);
    }

    #[test]
    fn grid_enumerates_cartesian_product() {
        let space = SearchSpace::new()
            .with_uniform("x", 0.0, 1.0)
            .unwrap()
            .with_categorical("b", vec![32.0, 64.0])
            .unwrap()
            .with_fixed("f", 3.0)
            .unwrap();
        let grid = GridSearch::new(3, 1).grid(&space);
        assert_eq!(grid.len(), (3 * 2));
        for config in &grid {
            assert!(space.validate_config(config).is_ok());
            assert_eq!(config.values()[2], 3.0);
        }
    }

    #[test]
    fn log_dimension_grid_is_geometric() {
        let space = SearchSpace::new()
            .with_log_uniform("lr", 1e-4, 1e-2)
            .unwrap();
        let grid = GridSearch::new(3, 1).grid(&space);
        let values: Vec<f64> = grid.iter().map(|c| c.values()[0]).collect();
        assert!((values[0] - 1e-4).abs() < 1e-12);
        assert!((values[1] - 1e-3).abs() < 1e-9);
        assert!((values[2] - 1e-2).abs() < 1e-12);
    }

    #[test]
    fn finds_minimum_on_grid() {
        let space = SearchSpace::new().with_uniform("x", -5.0, 5.0).unwrap();
        let mut obj = FunctionObjective::new(|c: &HpConfig, _| (c.values()[0] - 0.0).abs());
        let tuner = GridSearch::new(11, 2);
        let mut rng = rng_for(0, 0);
        let outcome = tuner.tune(&space, &mut obj, &mut rng).unwrap();
        assert_eq!(outcome.num_evaluations(), 11);
        assert_eq!(outcome.total_resource(), 22);
        assert!(outcome.best().unwrap().score < 1e-9);
        assert_eq!(tuner.name(), "grid");
        assert_eq!(tuner.resolution(), 11);
    }

    #[test]
    fn validation() {
        let space = SearchSpace::new().with_uniform("x", 0.0, 1.0).unwrap();
        let mut obj = FunctionObjective::new(|_: &HpConfig, _| 0.0);
        let mut rng = rng_for(0, 1);
        assert!(GridSearch::new(0, 1)
            .tune(&space, &mut obj, &mut rng)
            .is_err());
        assert!(GridSearch::new(1, 0)
            .tune(&space, &mut obj, &mut rng)
            .is_err());
        assert!(GridSearch::new(2, 1)
            .tune(&SearchSpace::new(), &mut obj, &mut rng)
            .is_err());
    }
}
