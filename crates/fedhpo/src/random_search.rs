//! Random search (Algorithm 1/2 of the paper).

use crate::objective::Objective;
use crate::space::SearchSpace;
use crate::tuner::{EvaluationRecord, Tuner, TuningOutcome};
use crate::{HpoError, Result};
use rand::rngs::StdRng;

/// Random search: sample `num_configs` configurations uniformly from the
/// space, train each for `rounds_per_config` budget units, evaluate once, and
/// select the best.
///
/// In the paper RS searches `K = 16` configurations with up to 405 rounds
/// each (6480 rounds total).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RandomSearch {
    num_configs: usize,
    rounds_per_config: usize,
}

impl RandomSearch {
    /// Creates a random-search tuner.
    pub fn new(num_configs: usize, rounds_per_config: usize) -> Self {
        RandomSearch {
            num_configs,
            rounds_per_config,
        }
    }

    /// The paper's configuration: `K = 16` configurations at
    /// `max_rounds` rounds each.
    pub fn paper_default(max_rounds: usize) -> Self {
        RandomSearch::new(16, max_rounds)
    }

    /// Number of configurations searched.
    pub fn num_configs(&self) -> usize {
        self.num_configs
    }

    /// Training rounds allocated to each configuration.
    pub fn rounds_per_config(&self) -> usize {
        self.rounds_per_config
    }

    fn validate(&self) -> Result<()> {
        if self.num_configs == 0 || self.rounds_per_config == 0 {
            return Err(HpoError::InvalidConfig {
                message: "random search needs positive num_configs and rounds_per_config".into(),
            });
        }
        Ok(())
    }
}

impl Tuner for RandomSearch {
    fn name(&self) -> &'static str {
        "rs"
    }

    fn tune(
        &self,
        space: &SearchSpace,
        objective: &mut dyn Objective,
        rng: &mut StdRng,
    ) -> Result<TuningOutcome> {
        self.validate()?;
        let mut outcome = TuningOutcome::default();
        let mut cumulative = 0usize;
        for trial_id in 0..self.num_configs {
            let config = space.sample(rng)?;
            let score = objective.evaluate(trial_id, &config, self.rounds_per_config)?;
            cumulative += self.rounds_per_config;
            outcome.push(EvaluationRecord {
                trial_id,
                config,
                resource: self.rounds_per_config,
                score,
                cumulative_resource: cumulative,
            });
        }
        Ok(outcome)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::objective::FunctionObjective;
    use fedmath::rng::rng_for;

    fn quadratic_space() -> SearchSpace {
        SearchSpace::new()
            .with_uniform("x", -10.0, 10.0)
            .unwrap()
            .with_uniform("y", -10.0, 10.0)
            .unwrap()
    }

    #[test]
    fn validation() {
        let space = quadratic_space();
        let mut obj = FunctionObjective::new(|_: &crate::HpConfig, _| 0.0);
        let mut rng = rng_for(0, 0);
        assert!(RandomSearch::new(0, 1)
            .tune(&space, &mut obj, &mut rng)
            .is_err());
        assert!(RandomSearch::new(1, 0)
            .tune(&space, &mut obj, &mut rng)
            .is_err());
        assert_eq!(RandomSearch::paper_default(405).num_configs(), 16);
        assert_eq!(RandomSearch::paper_default(405).rounds_per_config(), 405);
        assert_eq!(RandomSearch::new(4, 2).name(), "rs");
    }

    #[test]
    fn finds_a_reasonable_minimum_of_a_quadratic() {
        let space = quadratic_space();
        let mut obj = FunctionObjective::new(|config: &crate::HpConfig, _| {
            let x = config.values()[0];
            let y = config.values()[1];
            (x - 2.0).powi(2) + (y + 3.0).powi(2)
        });
        let tuner = RandomSearch::new(200, 1);
        let mut rng = rng_for(1, 0);
        let outcome = tuner.tune(&space, &mut obj, &mut rng).unwrap();
        assert_eq!(outcome.num_evaluations(), 200);
        assert_eq!(obj.calls(), 200);
        let best = outcome.best().unwrap();
        assert!(
            best.score < 2.0,
            "best score {} too far from optimum",
            best.score
        );
    }

    #[test]
    fn budget_accounting_is_linear() {
        let space = quadratic_space();
        let mut obj = FunctionObjective::new(|_: &crate::HpConfig, _| 1.0);
        let tuner = RandomSearch::new(8, 5);
        let mut rng = rng_for(2, 0);
        let outcome = tuner.tune(&space, &mut obj, &mut rng).unwrap();
        assert_eq!(outcome.total_resource(), 40);
        for (i, record) in outcome.records().iter().enumerate() {
            assert_eq!(record.trial_id, i);
            assert_eq!(record.resource, 5);
            assert_eq!(record.cumulative_resource, (i + 1) * 5);
        }
    }

    #[test]
    fn deterministic_given_rng_seed() {
        let space = quadratic_space();
        let tuner = RandomSearch::new(10, 1);
        let run = |seed: u64| {
            let mut obj = FunctionObjective::new(|c: &crate::HpConfig, _| c.values()[0]);
            let mut rng = rng_for(seed, 0);
            tuner.tune(&space, &mut obj, &mut rng).unwrap()
        };
        assert_eq!(run(7), run(7));
        assert_ne!(run(7).best().unwrap().score, run(8).best().unwrap().score);
    }
}
