//! Random search (Algorithm 1/2 of the paper).

use crate::objective::Objective;
use crate::scheduler::{run_scheduler, IntoScheduler, Scheduler, TrialRequest, TrialResult};
use crate::space::SearchSpace;
use crate::tuner::{Tuner, TuningOutcome};
use crate::{HpoError, Result};
use rand::rngs::StdRng;

/// Random search: sample `num_configs` configurations uniformly from the
/// space, train each for `rounds_per_config` budget units, evaluate once, and
/// select the best.
///
/// In the paper RS searches `K = 16` configurations with up to 405 rounds
/// each (6480 rounds total).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RandomSearch {
    num_configs: usize,
    rounds_per_config: usize,
}

impl RandomSearch {
    /// Creates a random-search tuner.
    pub fn new(num_configs: usize, rounds_per_config: usize) -> Self {
        RandomSearch {
            num_configs,
            rounds_per_config,
        }
    }

    /// The paper's configuration: `K = 16` configurations at
    /// `max_rounds` rounds each.
    pub fn paper_default(max_rounds: usize) -> Self {
        RandomSearch::new(16, max_rounds)
    }

    /// Number of configurations searched.
    pub fn num_configs(&self) -> usize {
        self.num_configs
    }

    /// Training rounds allocated to each configuration.
    pub fn rounds_per_config(&self) -> usize {
        self.rounds_per_config
    }

    fn validate(&self) -> Result<()> {
        if self.num_configs == 0 || self.rounds_per_config == 0 {
            return Err(HpoError::InvalidConfig {
                message: "random search needs positive num_configs and rounds_per_config".into(),
            });
        }
        Ok(())
    }
}

impl Tuner for RandomSearch {
    fn name(&self) -> &'static str {
        "rs"
    }

    fn tune(
        &self,
        space: &SearchSpace,
        objective: &mut dyn Objective,
        rng: &mut StdRng,
    ) -> Result<TuningOutcome> {
        run_scheduler(&mut self.scheduler()?, space, objective, rng)
    }
}

impl IntoScheduler for RandomSearch {
    type Scheduler = RandomSearchScheduler;

    fn scheduler(&self) -> Result<RandomSearchScheduler> {
        self.validate()?;
        Ok(RandomSearchScheduler {
            params: *self,
            suggested: false,
            reported: 0,
        })
    }
}

/// Ask/tell state of a random-search campaign. All configurations are
/// independent, so the entire schedule is a *single batch* — under a parallel
/// batch driver every trial trains concurrently.
#[derive(Debug, Clone)]
pub struct RandomSearchScheduler {
    params: RandomSearch,
    suggested: bool,
    reported: usize,
}

impl Scheduler for RandomSearchScheduler {
    fn name(&self) -> &'static str {
        "rs"
    }

    fn suggest(&mut self, space: &SearchSpace, rng: &mut StdRng) -> Result<Vec<TrialRequest>> {
        if self.suggested {
            return Ok(Vec::new());
        }
        self.suggested = true;
        (0..self.params.num_configs)
            .map(|trial_id| {
                Ok(TrialRequest {
                    trial_id,
                    config: space.sample(rng)?,
                    resource: self.params.rounds_per_config,
                    noise_rep: 0,
                })
            })
            .collect()
    }

    fn report(&mut self, _result: &TrialResult) -> Result<()> {
        self.reported += 1;
        Ok(())
    }

    fn is_finished(&self) -> bool {
        self.suggested && self.reported >= self.params.num_configs
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::objective::FunctionObjective;
    use fedmath::rng::rng_for;

    fn quadratic_space() -> SearchSpace {
        SearchSpace::new()
            .with_uniform("x", -10.0, 10.0)
            .unwrap()
            .with_uniform("y", -10.0, 10.0)
            .unwrap()
    }

    #[test]
    fn validation() {
        let space = quadratic_space();
        let mut obj = FunctionObjective::new(|_: &crate::HpConfig, _| 0.0);
        let mut rng = rng_for(0, 0);
        assert!(RandomSearch::new(0, 1)
            .tune(&space, &mut obj, &mut rng)
            .is_err());
        assert!(RandomSearch::new(1, 0)
            .tune(&space, &mut obj, &mut rng)
            .is_err());
        assert_eq!(RandomSearch::paper_default(405).num_configs(), 16);
        assert_eq!(RandomSearch::paper_default(405).rounds_per_config(), 405);
        assert_eq!(RandomSearch::new(4, 2).name(), "rs");
    }

    #[test]
    fn finds_a_reasonable_minimum_of_a_quadratic() {
        let space = quadratic_space();
        let mut obj = FunctionObjective::new(|config: &crate::HpConfig, _| {
            let x = config.values()[0];
            let y = config.values()[1];
            (x - 2.0).powi(2) + (y + 3.0).powi(2)
        });
        let tuner = RandomSearch::new(200, 1);
        let mut rng = rng_for(1, 0);
        let outcome = tuner.tune(&space, &mut obj, &mut rng).unwrap();
        assert_eq!(outcome.num_evaluations(), 200);
        assert_eq!(obj.calls(), 200);
        let best = outcome.best().unwrap();
        assert!(
            best.score < 2.0,
            "best score {} too far from optimum",
            best.score
        );
    }

    #[test]
    fn budget_accounting_is_linear() {
        let space = quadratic_space();
        let mut obj = FunctionObjective::new(|_: &crate::HpConfig, _| 1.0);
        let tuner = RandomSearch::new(8, 5);
        let mut rng = rng_for(2, 0);
        let outcome = tuner.tune(&space, &mut obj, &mut rng).unwrap();
        assert_eq!(outcome.total_resource(), 40);
        for (i, record) in outcome.records().iter().enumerate() {
            assert_eq!(record.trial_id, i);
            assert_eq!(record.resource, 5);
            assert_eq!(record.cumulative_resource, (i + 1) * 5);
        }
    }

    #[test]
    fn scheduler_suggests_one_full_batch() {
        use crate::scheduler::{IntoScheduler, Scheduler, TrialResult};
        let space = quadratic_space();
        let mut scheduler = RandomSearch::new(6, 3).scheduler().unwrap();
        let mut rng = rng_for(4, 0);
        assert!(!scheduler.is_finished());
        let batch = scheduler.suggest(&space, &mut rng).unwrap();
        assert_eq!(batch.len(), 6);
        for (i, request) in batch.iter().enumerate() {
            assert_eq!(request.trial_id, i);
            assert_eq!(request.resource, 3);
            assert_eq!(request.noise_rep, 0);
        }
        // Nothing more to suggest; finishes once everything is reported.
        assert!(scheduler.suggest(&space, &mut rng).unwrap().is_empty());
        for request in &batch {
            assert!(!scheduler.is_finished());
            scheduler.report(&TrialResult::of(request, 1.0)).unwrap();
        }
        assert!(scheduler.is_finished());
        assert!(RandomSearch::new(0, 1).scheduler().is_err());
    }

    #[test]
    fn deterministic_given_rng_seed() {
        let space = quadratic_space();
        let tuner = RandomSearch::new(10, 1);
        let run = |seed: u64| {
            let mut obj = FunctionObjective::new(|c: &crate::HpConfig, _| c.values()[0]);
            let mut rng = rng_for(seed, 0);
            tuner.tune(&space, &mut obj, &mut rng).unwrap()
        };
        assert_eq!(run(7), run(7));
        assert_ne!(run(7).best().unwrap().score, run(8).best().unwrap().score);
    }
}
