//! ASHA — Asynchronous Successive Halving (Li et al. 2020).
//!
//! Synchronous SHA waits for an entire rung before promoting anyone, so one
//! slow trial stalls the whole bracket. ASHA instead promotes *whenever a
//! trial is in the top `1/η` of whatever results its rung has collected so
//! far*, which keeps every worker busy — the natural fit for the batched
//! ask/tell driver and the paper's pointer toward population-style federated
//! tuning at scale.
//!
//! Determinism: promotions are a pure function of the *set* of reported
//! results. Within a rung, candidates are ranked by `(score, trial_id)` with
//! `f64::total_cmp`, so the promotion decision is invariant to the order in
//! which results arrive (asserted by a property test below). Each
//! [`suggest`](Scheduler::suggest) call first emits every promotion the
//! current results justify (highest rung first), then tops the batch up with
//! fresh uniformly-sampled configurations.

use crate::objective::Objective;
use crate::scheduler::{run_scheduler, IntoScheduler, Scheduler, TrialRequest, TrialResult};
use crate::space::{HpConfig, SearchSpace};
use crate::tuner::{Tuner, TuningOutcome};
use crate::{HpoError, Result};
use rand::rngs::StdRng;
use std::collections::{BTreeMap, BTreeSet};

/// Configuration of the ASHA tuner.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Asha {
    num_configs: usize,
    eta: usize,
    min_resource: usize,
    max_resource: usize,
    max_concurrency: usize,
}

impl Asha {
    /// Creates an ASHA tuner: up to `num_configs` configurations, rung
    /// resources `min_resource · η^k` capped at `max_resource`, promoting the
    /// top `1/η` of each rung.
    pub fn new(num_configs: usize, eta: usize, min_resource: usize, max_resource: usize) -> Self {
        Asha {
            num_configs,
            eta,
            min_resource,
            max_resource,
            max_concurrency: num_configs.max(1),
        }
    }

    /// Caps the number of requests suggested per batch (the "worker pool"
    /// width). Defaults to `num_configs` — the whole first rung in one batch.
    #[must_use]
    pub fn with_concurrency(mut self, max_concurrency: usize) -> Self {
        self.max_concurrency = max_concurrency;
        self
    }

    /// Number of fresh configurations the schedule samples.
    pub fn num_configs(&self) -> usize {
        self.num_configs
    }

    /// Elimination factor `η`.
    pub fn eta(&self) -> usize {
        self.eta
    }

    /// Resource of the first rung.
    pub fn min_resource(&self) -> usize {
        self.min_resource
    }

    /// Maximum resource any configuration may receive.
    pub fn max_resource(&self) -> usize {
        self.max_resource
    }

    /// The resource of rung `k`: `min_resource · η^k`, capped at
    /// `max_resource`.
    pub fn rung_resource(&self, rung: usize) -> usize {
        let mut resource = self.min_resource.min(self.max_resource);
        for _ in 0..rung {
            resource = (resource * self.eta).min(self.max_resource);
        }
        resource
    }

    /// Number of rungs in the ladder (the last rung sits at `max_resource`).
    pub fn num_rungs(&self) -> usize {
        let mut rungs = 1;
        let mut resource = self.min_resource.min(self.max_resource);
        while resource < self.max_resource {
            resource = (resource * self.eta).min(self.max_resource);
            rungs += 1;
        }
        rungs
    }

    /// Worst-case number of evaluations the schedule performs (every rung
    /// full, every promotion taken) — the DP composition length `M`.
    pub fn planned_evaluations(&self) -> usize {
        let mut total = 0;
        let mut n = self.num_configs;
        for _ in 0..self.num_rungs() {
            if n == 0 {
                break;
            }
            total += n;
            n /= self.eta;
        }
        total.max(1)
    }

    fn validate(&self) -> Result<()> {
        if self.num_configs == 0 {
            return Err(HpoError::InvalidConfig {
                message: "asha needs at least one configuration".into(),
            });
        }
        if self.eta < 2 {
            return Err(HpoError::InvalidConfig {
                message: format!("eta must be at least 2, got {}", self.eta),
            });
        }
        if self.min_resource == 0 || self.min_resource > self.max_resource {
            return Err(HpoError::InvalidConfig {
                message: format!(
                    "resource range [{}, {}] is invalid",
                    self.min_resource, self.max_resource
                ),
            });
        }
        if self.max_concurrency == 0 {
            return Err(HpoError::InvalidConfig {
                message: "max_concurrency must be positive".into(),
            });
        }
        Ok(())
    }
}

impl Tuner for Asha {
    fn name(&self) -> &'static str {
        "asha"
    }

    fn tune(
        &self,
        space: &SearchSpace,
        objective: &mut dyn Objective,
        rng: &mut StdRng,
    ) -> Result<TuningOutcome> {
        run_scheduler(&mut self.scheduler()?, space, objective, rng)
    }
}

impl IntoScheduler for Asha {
    type Scheduler = AshaScheduler;

    fn scheduler(&self) -> Result<AshaScheduler> {
        self.validate()?;
        Ok(AshaScheduler {
            params: *self,
            configs: BTreeMap::new(),
            rungs: vec![BTreeMap::new(); self.num_rungs()],
            promoted: vec![BTreeSet::new(); self.num_rungs()],
            pending: BTreeSet::new(),
            sampled: 0,
            asynchronous: false,
        })
    }
}

/// ASHA run **asynchronously**: the same ladder and promotion rule as
/// [`Asha`], but the scheduler declares itself
/// [`async_capable`](Scheduler::async_capable), so an event-driven driver
/// (`fedtune_core::run_event_driven`) re-polls it on *every* completion
/// instead of at rung barriers. Promotions then happen the moment a trial
/// enters the top `1/η` of whatever results its rung has — the paper's
/// actual algorithm (Li et al. 2020), where no worker ever idles waiting for
/// a straggler to finish a rung.
///
/// Driven by a barrier-synchronous driver ([`run_scheduler`] or the batch
/// driver), `AsyncAsha` degenerates to [`Asha`] exactly — asynchrony is a
/// property of the driver/scheduler handshake, not of the promotion rule.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct AsyncAsha {
    ladder: Asha,
}

impl AsyncAsha {
    /// Creates an asynchronous ASHA tuner; parameters as [`Asha::new`].
    pub fn new(num_configs: usize, eta: usize, min_resource: usize, max_resource: usize) -> Self {
        AsyncAsha {
            ladder: Asha::new(num_configs, eta, min_resource, max_resource),
        }
    }

    /// Runs an existing ladder configuration asynchronously.
    pub fn from_ladder(ladder: Asha) -> Self {
        AsyncAsha { ladder }
    }

    /// Caps the number of requests suggested per poll; see
    /// [`Asha::with_concurrency`].
    #[must_use]
    pub fn with_concurrency(mut self, max_concurrency: usize) -> Self {
        self.ladder = self.ladder.with_concurrency(max_concurrency);
        self
    }

    /// The underlying ladder configuration.
    pub fn ladder(&self) -> &Asha {
        &self.ladder
    }

    /// The rung-synchronous plan length ([`Asha::planned_evaluations`]) —
    /// the *nominal* schedule size used to calibrate DP noise, shared with
    /// the sync ladder so both variants face comparable noise. It is **not**
    /// a worst-case bound for an asynchronous campaign: promoting on partial
    /// rungs can promote trials that fall out of the final top `1/η`, so an
    /// event-driven run may perform more evaluations (hard cap: one
    /// evaluation per trial per rung, `num_configs × num_rungs`).
    pub fn planned_evaluations(&self) -> usize {
        self.ladder.planned_evaluations()
    }

    /// Hard upper bound on an asynchronous campaign's evaluations: every
    /// trial evaluated once at every rung.
    pub fn max_evaluations(&self) -> usize {
        self.ladder.num_configs() * self.ladder.num_rungs()
    }
}

impl IntoScheduler for AsyncAsha {
    type Scheduler = AshaScheduler;

    fn scheduler(&self) -> Result<AshaScheduler> {
        let mut scheduler = self.ladder.scheduler()?;
        scheduler.asynchronous = true;
        Ok(scheduler)
    }
}

impl Tuner for AsyncAsha {
    fn name(&self) -> &'static str {
        "async-asha"
    }

    fn tune(
        &self,
        space: &SearchSpace,
        objective: &mut dyn Objective,
        rng: &mut StdRng,
    ) -> Result<TuningOutcome> {
        run_scheduler(&mut self.scheduler()?, space, objective, rng)
    }
}

/// Ask/tell state of an ASHA campaign. All bookkeeping lives in ordered maps
/// keyed by trial id, so every decision is a function of *which* results have
/// arrived, never of when.
#[derive(Debug, Clone)]
pub struct AshaScheduler {
    params: Asha,
    /// Configuration of every trial seen so far.
    configs: BTreeMap<usize, HpConfig>,
    /// Reported scores per rung, keyed by trial id.
    rungs: Vec<BTreeMap<usize, f64>>,
    /// Trials already promoted out of each rung.
    promoted: Vec<BTreeSet<usize>>,
    /// Trials with an outstanding request.
    pending: BTreeSet<usize>,
    /// Fresh configurations sampled so far.
    sampled: usize,
    /// Whether the scheduler advertises per-completion re-polling.
    asynchronous: bool,
}

impl AshaScheduler {
    /// The rung index whose resource is exactly `resource`, if any.
    fn rung_for_resource(&self, resource: usize) -> Option<usize> {
        (0..self.params.num_rungs()).find(|&k| self.params.rung_resource(k) == resource)
    }

    /// All promotions the current results justify: for each non-terminal rung
    /// `k`, the unpromoted trials ranked (by score, then trial id) within the
    /// top `⌊|results at k| / η⌋`. Ordered highest rung first, best score
    /// first — a deterministic function of the reported result set.
    fn promotable(&self) -> Vec<(usize, usize)> {
        let mut out = Vec::new();
        let num_rungs = self.params.num_rungs();
        for k in (0..num_rungs.saturating_sub(1)).rev() {
            let results = &self.rungs[k];
            let top = results.len() / self.params.eta;
            if top == 0 {
                continue;
            }
            let mut ranked: Vec<(usize, f64)> =
                results.iter().map(|(&id, &score)| (id, score)).collect();
            ranked.sort_by(|a, b| a.1.total_cmp(&b.1).then(a.0.cmp(&b.0)));
            for (trial_id, _) in ranked.into_iter().take(top) {
                if !self.promoted[k].contains(&trial_id) {
                    out.push((trial_id, k));
                }
            }
        }
        out
    }
}

impl Scheduler for AshaScheduler {
    fn name(&self) -> &'static str {
        if self.asynchronous {
            "async-asha"
        } else {
            "asha"
        }
    }

    fn async_capable(&self) -> bool {
        self.asynchronous
    }

    fn suggest(&mut self, space: &SearchSpace, rng: &mut StdRng) -> Result<Vec<TrialRequest>> {
        let mut batch = Vec::new();
        for (trial_id, rung) in self.promotable() {
            if batch.len() >= self.params.max_concurrency {
                break;
            }
            let config = self.configs[&trial_id].clone();
            self.promoted[rung].insert(trial_id);
            self.pending.insert(trial_id);
            batch.push(TrialRequest {
                trial_id,
                config,
                resource: self.params.rung_resource(rung + 1),
                noise_rep: 0,
            });
        }
        while self.sampled < self.params.num_configs && batch.len() < self.params.max_concurrency {
            let trial_id = self.sampled;
            let config = space.sample(rng)?;
            self.configs.insert(trial_id, config.clone());
            self.pending.insert(trial_id);
            self.sampled += 1;
            batch.push(TrialRequest {
                trial_id,
                config,
                resource: self.params.rung_resource(0),
                noise_rep: 0,
            });
        }
        Ok(batch)
    }

    fn report(&mut self, result: &TrialResult) -> Result<()> {
        let rung =
            self.rung_for_resource(result.resource)
                .ok_or_else(|| HpoError::InvalidConfig {
                    message: format!(
                        "asha received a result at resource {} which is not a rung",
                        result.resource
                    ),
                })?;
        // Accept out-of-band results (e.g. replayed histories in tests): the
        // promotion rule only depends on the resulting score sets.
        self.configs
            .entry(result.trial_id)
            .or_insert_with(|| result.config.clone());
        self.sampled = self.sampled.max(result.trial_id + 1);
        self.rungs[rung].insert(result.trial_id, result.score);
        self.pending.remove(&result.trial_id);
        Ok(())
    }

    fn is_finished(&self) -> bool {
        self.sampled >= self.params.num_configs
            && self.pending.is_empty()
            && self.promotable().is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::objective::FunctionObjective;
    use fedmath::rng::rng_for;
    use std::collections::HashMap;

    fn space_1d() -> SearchSpace {
        SearchSpace::new().with_uniform("x", 0.0, 1.0).unwrap()
    }

    fn resource_aware_objective() -> FunctionObjective<impl FnMut(&HpConfig, usize) -> f64> {
        FunctionObjective::new(|config: &HpConfig, resource: usize| {
            let x = config.values()[0];
            (x - 0.3).abs() + 1.0 / (resource as f64 + 1.0)
        })
    }

    #[test]
    fn validation_and_accessors() {
        assert!(Asha::new(0, 3, 1, 9).scheduler().is_err());
        assert!(Asha::new(9, 1, 1, 9).scheduler().is_err());
        assert!(Asha::new(9, 3, 0, 9).scheduler().is_err());
        assert!(Asha::new(9, 3, 10, 9).scheduler().is_err());
        assert!(Asha::new(9, 3, 1, 9)
            .with_concurrency(0)
            .scheduler()
            .is_err());
        let asha = Asha::new(9, 3, 1, 9);
        assert_eq!(asha.name(), "asha");
        assert_eq!(asha.num_configs(), 9);
        assert_eq!(asha.eta(), 3);
        assert_eq!(asha.min_resource(), 1);
        assert_eq!(asha.max_resource(), 9);
        assert_eq!(asha.num_rungs(), 3);
        assert_eq!(asha.rung_resource(0), 1);
        assert_eq!(asha.rung_resource(1), 3);
        assert_eq!(asha.rung_resource(2), 9);
        // 9 + 3 + 1 evaluations if every promotion is taken.
        assert_eq!(asha.planned_evaluations(), 13);
        // Non-power ladders cap at max_resource.
        let uneven = Asha::new(4, 3, 2, 10);
        assert_eq!(uneven.num_rungs(), 3);
        assert_eq!(uneven.rung_resource(2), 10);
    }

    #[test]
    fn full_campaign_matches_sha_shape() {
        let mut rng = rng_for(0, 0);
        let mut objective = resource_aware_objective();
        let asha = Asha::new(9, 3, 1, 9);
        let outcome = asha.tune(&space_1d(), &mut objective, &mut rng).unwrap();
        // With the whole first rung in one batch, ASHA degenerates to SHA's
        // rung counts: 9 at r=1, 3 at r=3, 1 at r=9.
        let mut per_rung: HashMap<usize, usize> = HashMap::new();
        for r in outcome.records() {
            *per_rung.entry(r.resource).or_default() += 1;
        }
        assert_eq!(per_rung.get(&1), Some(&9));
        assert_eq!(per_rung.get(&3), Some(&3));
        assert_eq!(per_rung.get(&9), Some(&1));
        assert_eq!(outcome.total_resource(), 21);
    }

    #[test]
    fn bounded_concurrency_keeps_promoting() {
        let mut rng = rng_for(1, 0);
        let mut objective = resource_aware_objective();
        let asha = Asha::new(9, 3, 1, 9).with_concurrency(2);
        let outcome = asha.tune(&space_1d(), &mut objective, &mut rng).unwrap();
        // Same ladder, narrower batches: every rung still fills eventually.
        let mut per_rung: HashMap<usize, usize> = HashMap::new();
        for r in outcome.records() {
            *per_rung.entry(r.resource).or_default() += 1;
        }
        assert_eq!(per_rung.get(&1), Some(&9));
        assert!(per_rung.get(&3).copied().unwrap_or(0) >= 1);
    }

    #[test]
    fn promotions_prefer_low_scores_and_low_trial_ids() {
        let asha = Asha::new(6, 3, 1, 9);
        let mut scheduler = asha.scheduler().unwrap();
        let config = HpConfig::new(vec![0.5]);
        let result = |trial_id, score| TrialResult {
            trial_id,
            config: config.clone(),
            resource: 1,
            noise_rep: 0,
            score,
        };
        // Six rung-0 results; top third = 2 promotions; a score tie between
        // trials 4 and 5 resolves to the lower id.
        for (id, score) in [(0, 0.9), (1, 0.8), (2, 0.7), (3, 0.6), (4, 0.5), (5, 0.5)] {
            scheduler.report(&result(id, score)).unwrap();
        }
        let promotable = scheduler.promotable();
        assert_eq!(promotable, vec![(4, 0), (5, 0)]);
    }

    #[test]
    fn rejects_results_off_the_ladder() {
        let asha = Asha::new(3, 3, 1, 9);
        let mut scheduler = asha.scheduler().unwrap();
        let result = TrialResult {
            trial_id: 0,
            config: HpConfig::new(vec![0.5]),
            resource: 4,
            noise_rep: 0,
            score: 0.5,
        };
        assert!(scheduler.report(&result).is_err());
    }

    #[test]
    fn async_asha_declares_async_and_degenerates_under_a_barrier_driver() {
        let asha = Asha::new(9, 3, 1, 9);
        let async_asha = AsyncAsha::from_ladder(asha).with_concurrency(9);
        assert_eq!(async_asha.name(), "async-asha");
        assert_eq!(
            async_asha.ladder(),
            &Asha::new(9, 3, 1, 9).with_concurrency(9)
        );
        assert_eq!(async_asha.planned_evaluations(), asha.planned_evaluations());
        // The async hard cap dominates the nominal synchronous plan.
        assert_eq!(async_asha.max_evaluations(), 9 * 3);
        assert!(async_asha.max_evaluations() >= async_asha.planned_evaluations());
        let sync_scheduler = asha.scheduler().unwrap();
        let async_scheduler = async_asha.scheduler().unwrap();
        assert!(!sync_scheduler.async_capable());
        assert!(async_scheduler.async_capable());
        assert_eq!(sync_scheduler.name(), "asha");
        assert_eq!(async_scheduler.name(), "async-asha");
        // Invalid ladders are rejected through the same validation.
        assert!(AsyncAsha::new(0, 3, 1, 9).scheduler().is_err());
        // Under the sequential barrier driver the campaigns are identical:
        // asynchrony only changes how a driver may poll, never the rule.
        let mut rng = rng_for(5, 0);
        let mut objective = resource_aware_objective();
        let sync_outcome = asha.tune(&space_1d(), &mut objective, &mut rng).unwrap();
        let mut rng = rng_for(5, 0);
        let mut objective = resource_aware_objective();
        let async_outcome = AsyncAsha::from_ladder(asha)
            .tune(&space_1d(), &mut objective, &mut rng)
            .unwrap();
        assert_eq!(sync_outcome, async_outcome);
    }

    #[test]
    fn finds_good_configs() {
        let mut rng = rng_for(2, 0);
        let mut objective = resource_aware_objective();
        let asha = Asha::new(27, 3, 1, 27);
        let outcome = asha.tune(&space_1d(), &mut objective, &mut rng).unwrap();
        let best = outcome
            .best_at_max_fidelity_within_budget(usize::MAX)
            .unwrap();
        let x = best.config.values()[0];
        assert!((x - 0.3).abs() < 0.25, "best x = {x} should be near 0.3");
    }
}

#[cfg(test)]
mod proptests {
    use super::*;
    use fedmath::rng::rng_for;
    use proptest::prelude::*;
    use rand::Rng;

    /// Replays the same rung-0 result set in a permuted arrival order and
    /// asserts the next suggested batch — i.e. the promotion decision — is
    /// identical: ASHA promotions are invariant to result arrival order.
    fn promotions_for(order: &[usize], scores: &[f64], asha: Asha) -> Vec<(usize, usize)> {
        let space = SearchSpace::new().with_uniform("x", 0.0, 1.0).unwrap();
        let mut scheduler = asha.scheduler().unwrap();
        let mut rng = rng_for(11, 0);
        let batch = scheduler.suggest(&space, &mut rng).unwrap();
        assert_eq!(batch.len(), scores.len());
        for &position in order {
            let request = &batch[position];
            scheduler
                .report(&crate::scheduler::TrialResult::of(
                    request,
                    scores[request.trial_id],
                ))
                .unwrap();
        }
        // All fresh configs are sampled, so the next batch is promotions only.
        scheduler
            .suggest(&space, &mut rng)
            .unwrap()
            .into_iter()
            .map(|r| (r.trial_id, r.resource))
            .collect()
    }

    proptest! {
        #[test]
        fn prop_promotions_invariant_to_arrival_order(
            seed in any::<u64>(),
            num_configs in 3usize..20,
        ) {
            let asha = Asha::new(num_configs, 3, 1, 9);
            let mut score_rng = rng_for(seed, 0);
            let scores: Vec<f64> = (0..num_configs)
                .map(|_| score_rng.gen_range(0.0..1.0))
                .collect();
            let forward: Vec<usize> = (0..num_configs).collect();
            let mut shuffle_rng = rng_for(seed, 1);
            let shuffled =
                fedmath::rng::sample_without_replacement(&mut shuffle_rng, num_configs, num_configs)
                    .unwrap();
            let a = promotions_for(&forward, &scores, asha);
            let b = promotions_for(&shuffled, &scores, asha);
            prop_assert_eq!(&a, &b);
            // The promoted set is the top third by score.
            prop_assert_eq!(a.len(), num_configs / 3);
        }
    }
}
