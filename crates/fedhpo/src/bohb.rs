//! BOHB: Hyperband with TPE-guided configuration sampling
//! (Falkner, Klein & Hutter 2018).
//!
//! BOHB keeps Hyperband's bracket structure but replaces its uniform random
//! sampling of new configurations with proposals from a TPE model fitted on
//! the observations gathered so far. Following the original method, the model
//! is fitted on the *highest fidelity* (largest resource) that has collected
//! enough observations, and falls back to random sampling early on.

use crate::hyperband::{BracketState, Hyperband, SuccessiveHalving};
use crate::objective::Objective;
use crate::space::{HpConfig, SearchSpace};
use crate::tpe::{TpeConfig, TpeSampler};
use crate::tuner::{Tuner, TuningOutcome};
use crate::Result;
use rand::rngs::StdRng;
use std::collections::BTreeMap;

/// The BOHB tuner.
#[derive(Debug, Clone, Copy)]
pub struct Bohb {
    hyperband: Hyperband,
    tpe_config: TpeConfig,
    /// Minimum number of observations at a fidelity before the TPE model is
    /// trusted at that fidelity.
    min_observations: usize,
}

impl Bohb {
    /// Creates a BOHB tuner with default TPE settings.
    pub fn new(max_resource: usize, eta: usize, num_brackets: Option<usize>) -> Self {
        Bohb {
            hyperband: Hyperband::new(max_resource, eta, num_brackets),
            tpe_config: TpeConfig::default(),
            min_observations: 6,
        }
    }

    /// The paper's configuration: `η = 3`, 5 brackets.
    pub fn paper_default(max_rounds: usize) -> Self {
        Bohb::new(max_rounds, 3, Some(5))
    }

    /// Overrides the TPE sampler settings.
    pub fn with_tpe_config(mut self, config: TpeConfig) -> Self {
        self.tpe_config = config;
        self
    }

    /// The underlying Hyperband schedule.
    pub fn hyperband(&self) -> &Hyperband {
        &self.hyperband
    }

    /// Proposes `count` configurations using the TPE model when enough
    /// observations are available, otherwise uniform random samples.
    fn propose_configs(
        &self,
        space: &SearchSpace,
        sampler: &TpeSampler,
        observations_by_fidelity: &BTreeMap<usize, Vec<(HpConfig, f64)>>,
        count: usize,
        rng: &mut StdRng,
    ) -> Result<Vec<HpConfig>> {
        // Highest fidelity with enough observations, if any.
        let model_obs = observations_by_fidelity
            .iter()
            .rev()
            .find(|(_, obs)| obs.len() >= self.min_observations)
            .map(|(_, obs)| obs.as_slice());
        let mut configs = Vec::with_capacity(count);
        for _ in 0..count {
            let config = match model_obs {
                Some(obs) => sampler.propose(space, obs, rng)?,
                None => space.sample(rng)?,
            };
            configs.push(config);
        }
        Ok(configs)
    }
}

impl Tuner for Bohb {
    fn name(&self) -> &'static str {
        "bohb"
    }

    fn tune(
        &self,
        space: &SearchSpace,
        objective: &mut dyn Objective,
        rng: &mut StdRng,
    ) -> Result<TuningOutcome> {
        let sampler = TpeSampler::new(self.tpe_config)?;
        let mut state = BracketState::default();
        let mut observations_by_fidelity: BTreeMap<usize, Vec<(HpConfig, f64)>> = BTreeMap::new();
        let num_brackets = self.hyperband.num_brackets();
        for s in (0..num_brackets).rev() {
            let (n, r) = self.hyperband.bracket_plan(s);
            let configs =
                self.propose_configs(space, &sampler, &observations_by_fidelity, n, rng)?;
            let bracket =
                SuccessiveHalving::new(n, self.hyperband.eta(), r, self.hyperband.max_resource());
            let before = state.outcome.num_evaluations();
            bracket.run_bracket(configs, objective, &mut state)?;
            // Fold the bracket's evaluations into the fidelity-indexed pool.
            for record in &state.outcome.records()[before..] {
                observations_by_fidelity
                    .entry(record.resource)
                    .or_default()
                    .push((record.config.clone(), record.score));
            }
        }
        Ok(state.outcome)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::objective::FunctionObjective;
    use fedmath::rng::rng_for;

    fn space_1d() -> SearchSpace {
        SearchSpace::new().with_uniform("x", 0.0, 1.0).unwrap()
    }

    fn objective() -> FunctionObjective<impl FnMut(&HpConfig, usize) -> f64> {
        FunctionObjective::new(|config: &HpConfig, resource: usize| {
            let x = config.values()[0];
            (x - 0.7).abs() + 0.5 / (resource as f64 + 1.0)
        })
    }

    #[test]
    fn bohb_structure_matches_hyperband() {
        assert_eq!(Bohb::paper_default(405).hyperband().num_brackets(), 5);
        assert_eq!(Bohb::paper_default(405).hyperband().eta(), 3);
        assert_eq!(Bohb::new(27, 3, Some(3)).name(), "bohb");
    }

    #[test]
    fn bohb_runs_and_respects_resource_limits() {
        let mut rng = rng_for(0, 0);
        let mut obj = objective();
        let bohb = Bohb::new(27, 3, Some(3));
        let outcome = bohb.tune(&space_1d(), &mut obj, &mut rng).unwrap();
        assert!(outcome.num_evaluations() > 0);
        assert!(outcome.records().iter().all(|r| r.resource <= 27));
        assert!(outcome.records().iter().any(|r| r.resource == 27));
        // Same bracket structure as Hyperband, so the same total budget.
        let mut rng = rng_for(0, 0);
        let mut obj = objective();
        let hb = Hyperband::new(27, 3, Some(3));
        let hb_outcome = hb.tune(&space_1d(), &mut obj, &mut rng).unwrap();
        assert_eq!(outcome.total_resource(), hb_outcome.total_resource());
    }

    #[test]
    fn bohb_proposals_remain_valid_in_paper_space() {
        let space = SearchSpace::paper_default();
        let mut rng = rng_for(1, 0);
        let mut obj = FunctionObjective::new(|config: &HpConfig, _| {
            // Score depends on server lr distance from 1e-3 (in log space).
            (config.values()[0].log10() + 3.0).abs()
        });
        let bohb = Bohb::new(9, 3, Some(2));
        let outcome = bohb.tune(&space, &mut obj, &mut rng).unwrap();
        for record in outcome.records() {
            assert!(space.validate_config(&record.config).is_ok());
        }
    }

    #[test]
    fn bohb_eventually_concentrates_near_the_optimum() {
        // With several brackets the later proposals should cluster near the
        // optimum x = 0.7 more than uniform sampling would.
        let mut rng = rng_for(2, 0);
        let mut obj = objective();
        let bohb = Bohb::new(27, 3, Some(3)).with_tpe_config(TpeConfig {
            num_startup: 2,
            ..Default::default()
        });
        let outcome = bohb.tune(&space_1d(), &mut obj, &mut rng).unwrap();
        let n = outcome.num_evaluations();
        let late: Vec<f64> = outcome.records()[n / 2..]
            .iter()
            .map(|r| (r.config.values()[0] - 0.7).abs())
            .collect();
        let mean_late = fedmath::stats::mean(&late);
        // Uniform sampling over [0,1] has mean distance ~0.29 from 0.7.
        assert!(
            mean_late < 0.29,
            "late proposals (mean distance {mean_late}) show no concentration"
        );
    }

    #[test]
    fn propose_configs_falls_back_to_random_without_observations() {
        let space = space_1d();
        let bohb = Bohb::new(9, 3, Some(2));
        let sampler = TpeSampler::new(TpeConfig::default()).unwrap();
        let mut rng = rng_for(3, 0);
        let configs = bohb
            .propose_configs(&space, &sampler, &BTreeMap::new(), 5, &mut rng)
            .unwrap();
        assert_eq!(configs.len(), 5);
        for c in configs {
            assert!(space.validate_config(&c).is_ok());
        }
    }
}
