//! BOHB: Hyperband with TPE-guided configuration sampling
//! (Falkner, Klein & Hutter 2018).
//!
//! BOHB keeps Hyperband's bracket structure but replaces its uniform random
//! sampling of new configurations with proposals from a TPE model fitted on
//! the observations gathered so far. Following the original method, the model
//! is fitted on the *highest fidelity* (largest resource) that has collected
//! enough observations, and falls back to random sampling early on.

use crate::hyperband::{BracketScheduler, Hyperband, Proposer};
use crate::objective::Objective;
use crate::scheduler::{run_scheduler, IntoScheduler};
use crate::space::SearchSpace;
use crate::tpe::{TpeConfig, TpeSampler};
use crate::tuner::{Tuner, TuningOutcome};
use crate::Result;
use rand::rngs::StdRng;
use std::collections::BTreeMap;

/// The BOHB tuner.
#[derive(Debug, Clone, Copy)]
pub struct Bohb {
    hyperband: Hyperband,
    tpe_config: TpeConfig,
    /// Minimum number of observations at a fidelity before the TPE model is
    /// trusted at that fidelity.
    min_observations: usize,
}

impl Bohb {
    /// Creates a BOHB tuner with default TPE settings.
    pub fn new(max_resource: usize, eta: usize, num_brackets: Option<usize>) -> Self {
        Bohb {
            hyperband: Hyperband::new(max_resource, eta, num_brackets),
            tpe_config: TpeConfig::default(),
            min_observations: 6,
        }
    }

    /// The paper's configuration: `η = 3`, 5 brackets.
    pub fn paper_default(max_rounds: usize) -> Self {
        Bohb::new(max_rounds, 3, Some(5))
    }

    /// Overrides the TPE sampler settings.
    pub fn with_tpe_config(mut self, config: TpeConfig) -> Self {
        self.tpe_config = config;
        self
    }

    /// The underlying Hyperband schedule.
    pub fn hyperband(&self) -> &Hyperband {
        &self.hyperband
    }
}

impl Tuner for Bohb {
    fn name(&self) -> &'static str {
        "bohb"
    }

    fn tune(
        &self,
        space: &SearchSpace,
        objective: &mut dyn Objective,
        rng: &mut StdRng,
    ) -> Result<TuningOutcome> {
        run_scheduler(&mut self.scheduler()?, space, objective, rng)
    }
}

impl IntoScheduler for Bohb {
    type Scheduler = BracketScheduler;

    fn scheduler(&self) -> Result<BracketScheduler> {
        self.hyperband.validate()?;
        Ok(BracketScheduler::new(
            "bohb",
            self.hyperband.eta(),
            self.hyperband.max_resource(),
            self.hyperband.bracket_ladder(),
            Proposer::Tpe {
                sampler: TpeSampler::new(self.tpe_config)?,
                min_observations: self.min_observations,
                observations: BTreeMap::new(),
            },
        ))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::objective::FunctionObjective;
    use crate::space::HpConfig;
    use fedmath::rng::rng_for;

    fn space_1d() -> SearchSpace {
        SearchSpace::new().with_uniform("x", 0.0, 1.0).unwrap()
    }

    fn objective() -> FunctionObjective<impl FnMut(&HpConfig, usize) -> f64> {
        FunctionObjective::new(|config: &HpConfig, resource: usize| {
            let x = config.values()[0];
            (x - 0.7).abs() + 0.5 / (resource as f64 + 1.0)
        })
    }

    #[test]
    fn bohb_structure_matches_hyperband() {
        assert_eq!(Bohb::paper_default(405).hyperband().num_brackets(), 5);
        assert_eq!(Bohb::paper_default(405).hyperband().eta(), 3);
        assert_eq!(Bohb::new(27, 3, Some(3)).name(), "bohb");
    }

    #[test]
    fn bohb_runs_and_respects_resource_limits() {
        let mut rng = rng_for(0, 0);
        let mut obj = objective();
        let bohb = Bohb::new(27, 3, Some(3));
        let outcome = bohb.tune(&space_1d(), &mut obj, &mut rng).unwrap();
        assert!(outcome.num_evaluations() > 0);
        assert!(outcome.records().iter().all(|r| r.resource <= 27));
        assert!(outcome.records().iter().any(|r| r.resource == 27));
        // Same bracket structure as Hyperband, so the same total budget.
        let mut rng = rng_for(0, 0);
        let mut obj = objective();
        let hb = Hyperband::new(27, 3, Some(3));
        let hb_outcome = hb.tune(&space_1d(), &mut obj, &mut rng).unwrap();
        assert_eq!(outcome.total_resource(), hb_outcome.total_resource());
    }

    #[test]
    fn bohb_proposals_remain_valid_in_paper_space() {
        let space = SearchSpace::paper_default();
        let mut rng = rng_for(1, 0);
        let mut obj = FunctionObjective::new(|config: &HpConfig, _| {
            // Score depends on server lr distance from 1e-3 (in log space).
            (config.values()[0].log10() + 3.0).abs()
        });
        let bohb = Bohb::new(9, 3, Some(2));
        let outcome = bohb.tune(&space, &mut obj, &mut rng).unwrap();
        for record in outcome.records() {
            assert!(space.validate_config(&record.config).is_ok());
        }
    }

    #[test]
    fn bohb_eventually_concentrates_near_the_optimum() {
        // With several brackets the later proposals should cluster near the
        // optimum x = 0.7 more than uniform sampling would.
        let mut rng = rng_for(2, 0);
        let mut obj = objective();
        let bohb = Bohb::new(27, 3, Some(3)).with_tpe_config(TpeConfig {
            num_startup: 2,
            ..Default::default()
        });
        let outcome = bohb.tune(&space_1d(), &mut obj, &mut rng).unwrap();
        let n = outcome.num_evaluations();
        let late: Vec<f64> = outcome.records()[n / 2..]
            .iter()
            .map(|r| (r.config.values()[0] - 0.7).abs())
            .collect();
        let mean_late = fedmath::stats::mean(&late);
        // Uniform sampling over [0,1] has mean distance ~0.29 from 0.7.
        assert!(
            mean_late < 0.29,
            "late proposals (mean distance {mean_late}) show no concentration"
        );
    }

    #[test]
    fn scheduler_proposes_valid_configs_without_observations() {
        use crate::scheduler::{IntoScheduler, Scheduler};
        let space = space_1d();
        let bohb = Bohb::new(9, 3, Some(2));
        let mut scheduler = bohb.scheduler().unwrap();
        let mut rng = rng_for(3, 0);
        // Without observations the first bracket falls back to uniform
        // sampling and must still produce valid configurations.
        let batch = scheduler.suggest(&space, &mut rng).unwrap();
        assert!(!batch.is_empty());
        for request in &batch {
            assert!(space.validate_config(&request.config).is_ok());
        }
        assert!(Bohb::new(9, 1, Some(2)).scheduler().is_err());
    }
}
