//! Bootstrap analysis of random search (§3, "Evaluation").
//!
//! The paper's RS-only figures are produced by training a pool of 128
//! configurations once, then simulating many RS trials by resampling `K = 16`
//! configurations from the pool: each trial selects the configuration with
//! the best *noisy* score and reports that configuration's *true*
//! (full-validation) error. This module implements that resampling analysis
//! so the expensive training work is shared across noise settings and trials.

use crate::{HpoError, Result};
use fedmath::stats::QuartileSummary;
use rand::Rng;
use serde::{Deserialize, Serialize};

/// The outcome of a bootstrap selection analysis: the true error of the
/// configuration selected in each simulated trial.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct BootstrapOutcome {
    selected_true_scores: Vec<f64>,
}

impl BootstrapOutcome {
    /// The true score selected by each trial.
    pub fn selected_true_scores(&self) -> &[f64] {
        &self.selected_true_scores
    }

    /// Number of simulated trials.
    pub fn num_trials(&self) -> usize {
        self.selected_true_scores.len()
    }

    /// Median / quartile summary over trials — the statistic plotted in
    /// Figures 3, 4, 6, and 9.
    ///
    /// # Errors
    ///
    /// Returns an error if there are no trials.
    pub fn summary(&self) -> Result<QuartileSummary> {
        QuartileSummary::from_values(&self.selected_true_scores).map_err(HpoError::from)
    }
}

/// Simulates `num_trials` random-search runs of size `subset_size` over a
/// pre-evaluated pool of configurations.
///
/// `noisy_scores[i]` is the score the tuner *observes* for pool configuration
/// `i` (subsampled / privatized / biased evaluation) and `true_scores[i]` is
/// the full-validation error reported if that configuration is selected.
/// Each trial draws `subset_size` distinct configurations from the pool,
/// selects the one with the lowest noisy score, and records its true score.
///
/// # Errors
///
/// Returns [`HpoError::InvalidConfig`] if the score arrays are empty or have
/// different lengths, if `subset_size` is zero or exceeds the pool, or if
/// `num_trials` is zero.
pub fn bootstrap_selection(
    noisy_scores: &[f64],
    true_scores: &[f64],
    subset_size: usize,
    num_trials: usize,
    rng: &mut impl Rng,
) -> Result<BootstrapOutcome> {
    if noisy_scores.is_empty() || noisy_scores.len() != true_scores.len() {
        return Err(HpoError::InvalidConfig {
            message: format!(
                "score arrays must be non-empty and equal length (got {} and {})",
                noisy_scores.len(),
                true_scores.len()
            ),
        });
    }
    if subset_size == 0 || subset_size > noisy_scores.len() {
        return Err(HpoError::InvalidConfig {
            message: format!(
                "subset size {subset_size} must be in [1, {}]",
                noisy_scores.len()
            ),
        });
    }
    if num_trials == 0 {
        return Err(HpoError::InvalidConfig {
            message: "num_trials must be positive".into(),
        });
    }
    let mut selected = Vec::with_capacity(num_trials);
    for _ in 0..num_trials {
        let subset =
            fedmath::rng::sample_without_replacement(rng, noisy_scores.len(), subset_size)?;
        let best = subset
            .iter()
            .copied()
            .min_by(|&a, &b| {
                noisy_scores[a]
                    .partial_cmp(&noisy_scores[b])
                    .unwrap_or(std::cmp::Ordering::Equal)
            })
            .expect("subset is non-empty");
        selected.push(true_scores[best]);
    }
    Ok(BootstrapOutcome {
        selected_true_scores: selected,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use fedmath::rng::rng_for;

    #[test]
    fn validation() {
        let mut rng = rng_for(0, 0);
        assert!(bootstrap_selection(&[], &[], 1, 1, &mut rng).is_err());
        assert!(bootstrap_selection(&[1.0], &[1.0, 2.0], 1, 1, &mut rng).is_err());
        assert!(bootstrap_selection(&[1.0, 2.0], &[1.0, 2.0], 0, 1, &mut rng).is_err());
        assert!(bootstrap_selection(&[1.0, 2.0], &[1.0, 2.0], 3, 1, &mut rng).is_err());
        assert!(bootstrap_selection(&[1.0, 2.0], &[1.0, 2.0], 1, 0, &mut rng).is_err());
    }

    #[test]
    fn noiseless_selection_with_full_subset_always_picks_the_best() {
        let mut rng = rng_for(1, 0);
        let true_scores: Vec<f64> = (0..50).map(|i| i as f64 / 50.0).collect();
        // Noiseless: observed scores equal true scores; subset = full pool.
        let outcome = bootstrap_selection(&true_scores, &true_scores, 50, 20, &mut rng).unwrap();
        assert_eq!(outcome.num_trials(), 20);
        assert!(outcome.selected_true_scores().iter().all(|&s| s == 0.0));
        assert_eq!(outcome.summary().unwrap().median, 0.0);
    }

    #[test]
    fn noisy_selection_is_worse_than_noiseless_selection() {
        let mut rng = rng_for(2, 0);
        let pool = 128;
        let true_scores: Vec<f64> = (0..pool)
            .map(|i| 0.2 + 0.6 * i as f64 / pool as f64)
            .collect();
        // Heavy observation noise completely scrambles the ranking.
        let noisy_scores: Vec<f64> = true_scores
            .iter()
            .map(|&s| s + 10.0 * (rng.gen::<f64>() - 0.5))
            .collect();
        let clean = bootstrap_selection(&true_scores, &true_scores, 16, 200, &mut rng).unwrap();
        let noisy = bootstrap_selection(&noisy_scores, &true_scores, 16, 200, &mut rng).unwrap();
        let clean_median = clean.summary().unwrap().median;
        let noisy_median = noisy.summary().unwrap().median;
        assert!(
            noisy_median > clean_median + 0.05,
            "noise should hurt selection: clean {clean_median}, noisy {noisy_median}"
        );
    }

    #[test]
    fn larger_subsets_find_better_configs() {
        let mut rng = rng_for(3, 0);
        let true_scores: Vec<f64> = (0..128).map(|i| i as f64 / 128.0).collect();
        let small = bootstrap_selection(&true_scores, &true_scores, 2, 300, &mut rng).unwrap();
        let large = bootstrap_selection(&true_scores, &true_scores, 32, 300, &mut rng).unwrap();
        assert!(large.summary().unwrap().median < small.summary().unwrap().median);
    }

    #[test]
    fn deterministic_under_fixed_seed() {
        let scores: Vec<f64> = (0..20).map(|i| (i as f64).sin()).collect();
        let mut rng1 = rng_for(4, 0);
        let mut rng2 = rng_for(4, 0);
        let a = bootstrap_selection(&scores, &scores, 5, 10, &mut rng1).unwrap();
        let b = bootstrap_selection(&scores, &scores, 5, 10, &mut rng2).unwrap();
        assert_eq!(a, b);
    }
}
