//! Basic-composition privacy accounting.

use crate::laplace::PrivacyBudget;
use crate::{DpError, Result};
use serde::{Deserialize, Serialize};

/// Tracks how much of a pure-ε privacy budget has been consumed under basic
/// (sequential) composition: the total cost of a sequence of mechanisms is
/// the sum of their individual ε values (Dwork & Roth 2013).
///
/// The paper splits its total budget evenly over a known number of
/// evaluations; [`PrivacyAccountant::per_query_epsilon`] computes that split
/// and [`PrivacyAccountant::spend`] records actual consumption, refusing to
/// exceed the budget.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct PrivacyAccountant {
    budget: PrivacyBudget,
    spent: f64,
    queries: usize,
}

impl PrivacyAccountant {
    /// Creates an accountant for the given total budget.
    ///
    /// # Errors
    ///
    /// Returns [`DpError::InvalidParameter`] if a finite ε is not positive.
    pub fn new(budget: PrivacyBudget) -> Result<Self> {
        budget.validate()?;
        Ok(PrivacyAccountant {
            budget,
            spent: 0.0,
            queries: 0,
        })
    }

    /// The total budget.
    pub fn budget(&self) -> PrivacyBudget {
        self.budget
    }

    /// Total ε spent so far (always 0 for the non-private budget).
    pub fn spent(&self) -> f64 {
        self.spent
    }

    /// Number of queries recorded so far.
    pub fn queries(&self) -> usize {
        self.queries
    }

    /// Remaining budget, or `None` for the non-private setting.
    pub fn remaining(&self) -> Option<f64> {
        self.budget.epsilon().map(|e| (e - self.spent).max(0.0))
    }

    /// The per-query ε when splitting the total budget evenly across
    /// `total_queries` queries (basic composition), or `None` when
    /// non-private.
    ///
    /// # Errors
    ///
    /// Returns [`DpError::InvalidParameter`] if `total_queries == 0`.
    pub fn per_query_epsilon(&self, total_queries: usize) -> Result<Option<f64>> {
        if total_queries == 0 {
            return Err(DpError::InvalidParameter {
                message: "total_queries must be positive".into(),
            });
        }
        Ok(self.budget.epsilon().map(|e| e / total_queries as f64))
    }

    /// Records spending `epsilon` on one query.
    ///
    /// In the non-private setting this only increments the query counter.
    ///
    /// # Errors
    ///
    /// Returns [`DpError::InvalidParameter`] for a non-positive `epsilon` and
    /// [`DpError::BudgetExhausted`] if the spend would exceed the total
    /// budget (with a small tolerance for floating-point accumulation).
    pub fn spend(&mut self, epsilon: f64) -> Result<()> {
        if self.budget.is_infinite() {
            self.queries += 1;
            return Ok(());
        }
        if epsilon <= 0.0 || !epsilon.is_finite() {
            return Err(DpError::InvalidParameter {
                message: format!("spent epsilon must be positive, got {epsilon}"),
            });
        }
        let total = self.budget.epsilon().expect("finite budget");
        if self.spent + epsilon > total * (1.0 + 1e-9) {
            return Err(DpError::BudgetExhausted {
                total,
                spent: self.spent,
                requested: epsilon,
            });
        }
        self.spent += epsilon;
        self.queries += 1;
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn accountant_tracks_spending() {
        let mut acc = PrivacyAccountant::new(PrivacyBudget::Finite(1.0)).unwrap();
        assert_eq!(acc.budget(), PrivacyBudget::Finite(1.0));
        assert_eq!(acc.spent(), 0.0);
        assert_eq!(acc.remaining(), Some(1.0));
        acc.spend(0.25).unwrap();
        acc.spend(0.25).unwrap();
        assert_eq!(acc.queries(), 2);
        assert!((acc.spent() - 0.5).abs() < 1e-12);
        assert!((acc.remaining().unwrap() - 0.5).abs() < 1e-12);
    }

    #[test]
    fn accountant_refuses_to_exceed_budget() {
        let mut acc = PrivacyAccountant::new(PrivacyBudget::Finite(0.5)).unwrap();
        acc.spend(0.4).unwrap();
        let err = acc.spend(0.2).unwrap_err();
        assert!(matches!(err, DpError::BudgetExhausted { .. }));
        // Failed spends do not change the state.
        assert_eq!(acc.queries(), 1);
        assert!((acc.spent() - 0.4).abs() < 1e-12);
    }

    #[test]
    fn even_split_over_queries() {
        let acc = PrivacyAccountant::new(PrivacyBudget::Finite(16.0)).unwrap();
        assert_eq!(acc.per_query_epsilon(16).unwrap(), Some(1.0));
        assert!(acc.per_query_epsilon(0).is_err());
        let non_private = PrivacyAccountant::new(PrivacyBudget::Infinite).unwrap();
        assert_eq!(non_private.per_query_epsilon(10).unwrap(), None);
    }

    #[test]
    fn exact_budget_consumption_is_allowed() {
        let mut acc = PrivacyAccountant::new(PrivacyBudget::Finite(1.0)).unwrap();
        for _ in 0..10 {
            acc.spend(0.1).unwrap();
        }
        assert_eq!(acc.queries(), 10);
        assert!(acc.remaining().unwrap() < 1e-9);
    }

    #[test]
    fn non_private_accounting_never_exhausts() {
        let mut acc = PrivacyAccountant::new(PrivacyBudget::Infinite).unwrap();
        for _ in 0..100 {
            acc.spend(1e9).unwrap();
        }
        assert_eq!(acc.queries(), 100);
        assert_eq!(acc.spent(), 0.0);
        assert_eq!(acc.remaining(), None);
    }

    #[test]
    fn invalid_spends_rejected() {
        let mut acc = PrivacyAccountant::new(PrivacyBudget::Finite(1.0)).unwrap();
        assert!(acc.spend(0.0).is_err());
        assert!(acc.spend(-0.5).is_err());
        assert!(PrivacyAccountant::new(PrivacyBudget::Finite(0.0)).is_err());
    }
}
