//! Differential-privacy substrate for federated evaluation.
//!
//! The paper privatizes hyperparameter tuning by perturbing each
//! configuration's aggregate evaluation statistic with Laplace noise (§2.2,
//! §3.3):
//!
//! - every evaluation is an average accuracy over `|S|` sampled clients, so
//!   the sensitivity of one evaluation to any single client is `1/|S|`;
//! - with a total budget `ε` split over `M` evaluations by basic composition,
//!   each evaluation receives `ε/M` and is perturbed with
//!   `Lap(M / (ε·|S|))` noise ([`laplace::evaluation_noise_scale`]);
//! - the identities of the best configurations at each elimination round are
//!   released with the one-shot Laplace top-k mechanism of Qiao et al. 2021
//!   ([`topk::one_shot_top_k`]), using scale `2·T·k_t / (ε·|S|)`.
//!
//! [`PrivacyAccountant`] tracks how much of the budget has been consumed.
//!
//! # Example
//!
//! ```
//! use feddp::laplace::LaplaceMechanism;
//!
//! let mut rng = fedmath::rng::rng_for(0, 0);
//! let mech = LaplaceMechanism::new(1.0).unwrap();
//! let noisy = mech.privatize(0.75, &mut rng);
//! assert!(noisy.is_finite());
//! ```

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod accountant;
pub mod laplace;
pub mod topk;

pub use accountant::PrivacyAccountant;
pub use laplace::{evaluation_noise_scale, LaplaceMechanism, PrivacyBudget};
pub use topk::one_shot_top_k;

use std::fmt;

/// Errors produced by the differential-privacy mechanisms.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum DpError {
    /// A privacy parameter was invalid (non-positive ε, zero sample size, …).
    InvalidParameter {
        /// Description of the violation.
        message: String,
    },
    /// The privacy budget has been exhausted.
    BudgetExhausted {
        /// Total budget ε.
        total: f64,
        /// Amount already spent.
        spent: f64,
        /// Amount requested by the rejected operation.
        requested: f64,
    },
}

impl fmt::Display for DpError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DpError::InvalidParameter { message } => write!(f, "invalid privacy parameter: {message}"),
            DpError::BudgetExhausted { total, spent, requested } => write!(
                f,
                "privacy budget exhausted: total ε = {total}, spent = {spent}, requested = {requested}"
            ),
        }
    }
}

impl std::error::Error for DpError {}

/// Convenience alias for results returned by this crate.
pub type Result<T> = std::result::Result<T, DpError>;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn error_display() {
        let e = DpError::InvalidParameter {
            message: "epsilon".into(),
        };
        assert!(e.to_string().contains("epsilon"));
        let e = DpError::BudgetExhausted {
            total: 1.0,
            spent: 0.9,
            requested: 0.2,
        };
        assert!(e.to_string().contains("exhausted"));
        fn assert_error<E: std::error::Error + Send + Sync>() {}
        assert_error::<DpError>();
    }
}
