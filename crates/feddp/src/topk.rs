//! One-shot Laplace top-k selection (Qiao, Su & Zhang, ICML 2021).
//!
//! The paper uses this mechanism to privately release the identities of the
//! best configurations at each elimination round of an HP-tuning method: every
//! candidate's score receives one Laplace perturbation with scale
//! `2·T·k_t / (ε·|S|)` and the indices of the `k_t` largest noisy scores are
//! released (§3.3).

use crate::laplace::{sample_laplace, PrivacyBudget};
use crate::{DpError, Result};
use rand::Rng;

/// Noise scale used by the one-shot top-k mechanism at one evaluation round:
/// `2·T·k / (ε·|S|)` where `T` is the total number of evaluation rounds, `k`
/// is the number of identities released, and `|S|` the number of clients in
/// the evaluation sample. Returns 0.0 for the non-private budget.
///
/// # Errors
///
/// Returns [`DpError::InvalidParameter`] if any count is zero or a finite ε
/// is not positive.
pub fn one_shot_noise_scale(
    budget: PrivacyBudget,
    total_rounds: usize,
    k: usize,
    sample_size: usize,
) -> Result<f64> {
    budget.validate()?;
    if total_rounds == 0 || k == 0 || sample_size == 0 {
        return Err(DpError::InvalidParameter {
            message: format!(
                "total_rounds ({total_rounds}), k ({k}), and sample_size ({sample_size}) must all be positive"
            ),
        });
    }
    match budget {
        PrivacyBudget::Infinite => Ok(0.0),
        PrivacyBudget::Finite(eps) => {
            Ok(2.0 * total_rounds as f64 * k as f64 / (eps * sample_size as f64))
        }
    }
}

/// Releases the indices of the `k` largest values of `scores` after adding
/// one Laplace perturbation of the given `scale` to every score.
///
/// With `scale = 0` this reduces to exact (non-private) top-k selection.
/// The returned indices are ordered from best to worst noisy score.
///
/// # Errors
///
/// Returns [`DpError::InvalidParameter`] if `scores` is empty, `k` is zero or
/// exceeds `scores.len()`, or `scale` is negative/not finite.
pub fn one_shot_top_k(
    scores: &[f64],
    k: usize,
    scale: f64,
    rng: &mut impl Rng,
) -> Result<Vec<usize>> {
    if scores.is_empty() {
        return Err(DpError::InvalidParameter {
            message: "cannot select from an empty score list".into(),
        });
    }
    if k == 0 || k > scores.len() {
        return Err(DpError::InvalidParameter {
            message: format!("k = {k} must be in [1, {}]", scores.len()),
        });
    }
    if scale < 0.0 || !scale.is_finite() {
        return Err(DpError::InvalidParameter {
            message: format!("noise scale must be non-negative and finite, got {scale}"),
        });
    }
    let mut noisy: Vec<(f64, usize)> = scores
        .iter()
        .enumerate()
        .map(|(i, &s)| {
            let perturbed = if scale == 0.0 {
                s
            } else {
                s + sample_laplace(rng, scale)
            };
            (perturbed, i)
        })
        .collect();
    noisy.sort_by(|a, b| b.0.partial_cmp(&a.0).expect("noisy scores are finite"));
    Ok(noisy.into_iter().take(k).map(|(_, i)| i).collect())
}

#[cfg(test)]
mod tests {
    use super::*;
    use fedmath::rng::rng_for;
    use std::collections::HashSet;

    #[test]
    fn noise_scale_formula() {
        // 2 * T * k / (eps * |S|) with T = 5, k = 3, eps = 10, |S| = 6.
        let scale = one_shot_noise_scale(PrivacyBudget::Finite(10.0), 5, 3, 6).unwrap();
        assert!((scale - 0.5).abs() < 1e-12);
        assert_eq!(
            one_shot_noise_scale(PrivacyBudget::Infinite, 5, 3, 6).unwrap(),
            0.0
        );
    }

    #[test]
    fn noise_scale_validation() {
        assert!(one_shot_noise_scale(PrivacyBudget::Finite(1.0), 0, 1, 1).is_err());
        assert!(one_shot_noise_scale(PrivacyBudget::Finite(1.0), 1, 0, 1).is_err());
        assert!(one_shot_noise_scale(PrivacyBudget::Finite(1.0), 1, 1, 0).is_err());
        assert!(one_shot_noise_scale(PrivacyBudget::Finite(0.0), 1, 1, 1).is_err());
    }

    #[test]
    fn zero_scale_selects_exact_top_k() {
        let mut rng = rng_for(0, 0);
        let scores = [0.1, 0.9, 0.5, 0.7];
        let top = one_shot_top_k(&scores, 2, 0.0, &mut rng).unwrap();
        assert_eq!(top, vec![1, 3]);
        let top1 = one_shot_top_k(&scores, 1, 0.0, &mut rng).unwrap();
        assert_eq!(top1, vec![1]);
        let all = one_shot_top_k(&scores, 4, 0.0, &mut rng).unwrap();
        assert_eq!(all.len(), 4);
    }

    #[test]
    fn selection_validation() {
        let mut rng = rng_for(0, 1);
        assert!(one_shot_top_k(&[], 1, 0.0, &mut rng).is_err());
        assert!(one_shot_top_k(&[1.0], 0, 0.0, &mut rng).is_err());
        assert!(one_shot_top_k(&[1.0], 2, 0.0, &mut rng).is_err());
        assert!(one_shot_top_k(&[1.0, 2.0], 1, -1.0, &mut rng).is_err());
    }

    #[test]
    fn returned_indices_are_distinct_and_valid() {
        let mut rng = rng_for(0, 2);
        let scores: Vec<f64> = (0..20).map(|i| i as f64 / 20.0).collect();
        let top = one_shot_top_k(&scores, 7, 5.0, &mut rng).unwrap();
        assert_eq!(top.len(), 7);
        let unique: HashSet<usize> = top.iter().copied().collect();
        assert_eq!(unique.len(), 7);
        assert!(top.iter().all(|&i| i < 20));
    }

    #[test]
    fn small_noise_mostly_preserves_the_winner() {
        let mut rng = rng_for(0, 3);
        // Clear winner (index 4) with a wide margin vs. noise scale 0.01.
        let scores = [0.1, 0.2, 0.15, 0.12, 0.95];
        let mut hits = 0;
        for _ in 0..200 {
            let top = one_shot_top_k(&scores, 1, 0.01, &mut rng).unwrap();
            if top[0] == 4 {
                hits += 1;
            }
        }
        assert!(
            hits > 190,
            "winner only selected {hits}/200 times under tiny noise"
        );
    }

    #[test]
    fn large_noise_destroys_the_ranking() {
        let mut rng = rng_for(0, 4);
        // Accuracy differences of ~0.1 drowned by noise of scale 100: the
        // winner should be selected at roughly chance level (1/5).
        let scores = [0.5, 0.6, 0.55, 0.58, 0.61];
        let mut hits = 0;
        let trials = 1000;
        for _ in 0..trials {
            let top = one_shot_top_k(&scores, 1, 100.0, &mut rng).unwrap();
            if top[0] == 4 {
                hits += 1;
            }
        }
        let freq = hits as f64 / trials as f64;
        assert!(
            (freq - 0.2).abs() < 0.08,
            "expected ~chance selection under huge noise, got {freq}"
        );
    }
}

#[cfg(test)]
mod proptests {
    use super::*;
    use fedmath::rng::rng_for;
    use proptest::prelude::*;

    proptest! {
        #[test]
        fn prop_top_k_valid_for_any_scale(
            seed in any::<u64>(),
            scores in proptest::collection::vec(0.0f64..1.0, 1..40),
            scale in 0.0f64..50.0,
        ) {
            let mut rng = rng_for(seed, 0);
            let k = 1 + (seed as usize) % scores.len();
            let top = one_shot_top_k(&scores, k, scale, &mut rng).unwrap();
            prop_assert_eq!(top.len(), k);
            let unique: std::collections::HashSet<usize> = top.iter().copied().collect();
            prop_assert_eq!(unique.len(), k);
            prop_assert!(top.iter().all(|&i| i < scores.len()));
        }
    }
}
