//! The Laplace mechanism and the paper's evaluation-noise calibration.

use crate::{DpError, Result};
use rand::Rng;
use serde::{Deserialize, Serialize};

/// The privacy budget applied to federated evaluation.
///
/// `Finite(ε)` matches the paper's ε ∈ {0.1, 1, 10, 100}; `Infinite`
/// corresponds to `ε = inf`, i.e. non-private evaluation with no added noise.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize, Default)]
pub enum PrivacyBudget {
    /// Pure ε-differential privacy with the given total budget.
    Finite(f64),
    /// No privacy (no noise added).
    #[default]
    Infinite,
}

impl PrivacyBudget {
    /// Returns the finite ε, or `None` for the non-private setting.
    pub fn epsilon(&self) -> Option<f64> {
        match self {
            PrivacyBudget::Finite(e) => Some(*e),
            PrivacyBudget::Infinite => None,
        }
    }

    /// Returns `true` for the non-private setting.
    pub fn is_infinite(&self) -> bool {
        matches!(self, PrivacyBudget::Infinite)
    }

    /// Validates the budget (a finite ε must be strictly positive).
    ///
    /// # Errors
    ///
    /// Returns [`DpError::InvalidParameter`] for non-positive finite ε.
    pub fn validate(&self) -> Result<()> {
        if let PrivacyBudget::Finite(e) = self {
            if *e <= 0.0 || !e.is_finite() {
                return Err(DpError::InvalidParameter {
                    message: format!("epsilon must be positive and finite, got {e}"),
                });
            }
        }
        Ok(())
    }

    /// Human-readable label used in reports (`"0.1"`, `"inf"`, …).
    pub fn label(&self) -> String {
        match self {
            PrivacyBudget::Finite(e) => format!("{e}"),
            PrivacyBudget::Infinite => "inf".into(),
        }
    }
}

/// Samples Laplace noise with the given scale parameter `b` (mean 0).
///
/// Uses inverse-transform sampling: `X = -b · sign(u) · ln(1 - 2|u|)` with
/// `u ~ Uniform(-1/2, 1/2)`.
pub fn sample_laplace(rng: &mut impl Rng, scale: f64) -> f64 {
    let u: f64 = rng.gen_range(-0.5..0.5);
    -scale * u.signum() * (1.0 - 2.0 * u.abs()).ln()
}

/// The Laplace mechanism: adds `Lap(scale)` noise to a query answer.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LaplaceMechanism {
    scale: f64,
}

impl LaplaceMechanism {
    /// Creates a mechanism with the given noise scale `b`.
    ///
    /// # Errors
    ///
    /// Returns [`DpError::InvalidParameter`] if `scale` is negative or not
    /// finite. A scale of exactly zero is allowed and adds no noise (the
    /// non-private limit).
    pub fn new(scale: f64) -> Result<Self> {
        if scale < 0.0 || !scale.is_finite() {
            return Err(DpError::InvalidParameter {
                message: format!("laplace scale must be non-negative and finite, got {scale}"),
            });
        }
        Ok(LaplaceMechanism { scale })
    }

    /// Creates the mechanism for a query of the given `sensitivity` under
    /// per-query budget `epsilon` (scale `Δ/ε`).
    ///
    /// # Errors
    ///
    /// Returns [`DpError::InvalidParameter`] if `sensitivity < 0` or
    /// `epsilon <= 0`.
    pub fn for_query(sensitivity: f64, epsilon: f64) -> Result<Self> {
        if sensitivity < 0.0 || !sensitivity.is_finite() {
            return Err(DpError::InvalidParameter {
                message: format!("sensitivity must be non-negative, got {sensitivity}"),
            });
        }
        if epsilon <= 0.0 || !epsilon.is_finite() {
            return Err(DpError::InvalidParameter {
                message: format!("epsilon must be positive, got {epsilon}"),
            });
        }
        LaplaceMechanism::new(sensitivity / epsilon)
    }

    /// The noise scale `b`.
    pub fn scale(&self) -> f64 {
        self.scale
    }

    /// Returns `value + Lap(scale)`.
    pub fn privatize(&self, value: f64, rng: &mut impl Rng) -> f64 {
        if self.scale == 0.0 {
            value
        } else {
            value + sample_laplace(rng, self.scale)
        }
    }

    /// Privatizes a slice of values with independent noise draws.
    pub fn privatize_all(&self, values: &[f64], rng: &mut impl Rng) -> Vec<f64> {
        values.iter().map(|&v| self.privatize(v, rng)).collect()
    }
}

/// The paper's calibration of evaluation noise (§3.3): an evaluation averages
/// client accuracies in `[0, 1]` over `|S| = sample_size` clients, so its
/// sensitivity is `1/|S|`; splitting a total budget `ε` over
/// `total_evaluations = M` queries by basic composition gives per-query
/// budget `ε/M` and therefore noise scale `M / (ε·|S|)`.
///
/// Returns 0.0 (no noise) for [`PrivacyBudget::Infinite`].
///
/// # Errors
///
/// Returns [`DpError::InvalidParameter`] if `sample_size` or
/// `total_evaluations` is zero, or if a finite ε is not positive.
pub fn evaluation_noise_scale(
    budget: PrivacyBudget,
    total_evaluations: usize,
    sample_size: usize,
) -> Result<f64> {
    budget.validate()?;
    if sample_size == 0 {
        return Err(DpError::InvalidParameter {
            message: "sample size must be positive".into(),
        });
    }
    if total_evaluations == 0 {
        return Err(DpError::InvalidParameter {
            message: "total number of evaluations must be positive".into(),
        });
    }
    match budget {
        PrivacyBudget::Infinite => Ok(0.0),
        PrivacyBudget::Finite(eps) => Ok(total_evaluations as f64 / (eps * sample_size as f64)),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fedmath::rng::rng_for;

    #[test]
    fn budget_accessors() {
        assert_eq!(PrivacyBudget::Finite(1.0).epsilon(), Some(1.0));
        assert_eq!(PrivacyBudget::Infinite.epsilon(), None);
        assert!(PrivacyBudget::Infinite.is_infinite());
        assert!(!PrivacyBudget::Finite(1.0).is_infinite());
        assert_eq!(PrivacyBudget::Finite(0.1).label(), "0.1");
        assert_eq!(PrivacyBudget::Infinite.label(), "inf");
        assert_eq!(PrivacyBudget::default(), PrivacyBudget::Infinite);
    }

    #[test]
    fn budget_validation() {
        assert!(PrivacyBudget::Finite(1.0).validate().is_ok());
        assert!(PrivacyBudget::Infinite.validate().is_ok());
        assert!(PrivacyBudget::Finite(0.0).validate().is_err());
        assert!(PrivacyBudget::Finite(-1.0).validate().is_err());
        assert!(PrivacyBudget::Finite(f64::INFINITY).validate().is_err());
    }

    #[test]
    fn mechanism_validation() {
        assert!(LaplaceMechanism::new(-1.0).is_err());
        assert!(LaplaceMechanism::new(f64::NAN).is_err());
        assert!(LaplaceMechanism::new(0.0).is_ok());
        assert!(LaplaceMechanism::for_query(1.0, 0.0).is_err());
        assert!(LaplaceMechanism::for_query(-1.0, 1.0).is_err());
        let m = LaplaceMechanism::for_query(0.5, 2.0).unwrap();
        assert!((m.scale() - 0.25).abs() < 1e-12);
    }

    #[test]
    fn zero_scale_adds_no_noise() {
        let mut rng = rng_for(0, 0);
        let m = LaplaceMechanism::new(0.0).unwrap();
        assert_eq!(m.privatize(0.42, &mut rng), 0.42);
        assert_eq!(m.privatize_all(&[1.0, 2.0], &mut rng), vec![1.0, 2.0]);
    }

    #[test]
    fn laplace_noise_has_expected_spread() {
        let mut rng = rng_for(0, 1);
        let scale = 2.0;
        let n = 20_000;
        let samples: Vec<f64> = (0..n).map(|_| sample_laplace(&mut rng, scale)).collect();
        let mean = fedmath::stats::mean(&samples);
        // Laplace(b) has mean 0 and variance 2b² = 8.
        let var = fedmath::stats::variance(&samples);
        assert!(mean.abs() < 0.1, "empirical mean {mean} too far from 0");
        assert!(
            (var - 8.0).abs() < 1.0,
            "empirical variance {var} too far from 8"
        );
        // Mean absolute deviation of Laplace(b) is b.
        let mad = fedmath::stats::mean(&samples.iter().map(|s| s.abs()).collect::<Vec<_>>());
        assert!(
            (mad - scale).abs() < 0.15,
            "empirical MAD {mad} too far from {scale}"
        );
    }

    #[test]
    fn privatize_all_adds_independent_noise() {
        let mut rng = rng_for(0, 2);
        let m = LaplaceMechanism::new(1.0).unwrap();
        let noisy = m.privatize_all(&[0.0, 0.0, 0.0, 0.0], &mut rng);
        // With probability ~1 the four draws are all distinct.
        let distinct: std::collections::HashSet<u64> = noisy.iter().map(|v| v.to_bits()).collect();
        assert_eq!(distinct.len(), 4);
    }

    #[test]
    fn evaluation_noise_scale_matches_paper_formula() {
        // Lap(M / (ε |S|)): M = 16 evaluations, ε = 100, |S| = 1 client.
        let scale = evaluation_noise_scale(PrivacyBudget::Finite(100.0), 16, 1).unwrap();
        assert!((scale - 0.16).abs() < 1e-12);
        // More clients -> less noise.
        let scale_100 = evaluation_noise_scale(PrivacyBudget::Finite(100.0), 16, 100).unwrap();
        assert!(scale_100 < scale);
        assert!((scale_100 - 0.0016).abs() < 1e-12);
        // Non-private -> zero noise.
        assert_eq!(
            evaluation_noise_scale(PrivacyBudget::Infinite, 16, 1).unwrap(),
            0.0
        );
    }

    #[test]
    fn evaluation_noise_scale_validation() {
        assert!(evaluation_noise_scale(PrivacyBudget::Finite(1.0), 0, 10).is_err());
        assert!(evaluation_noise_scale(PrivacyBudget::Finite(1.0), 10, 0).is_err());
        assert!(evaluation_noise_scale(PrivacyBudget::Finite(-1.0), 10, 10).is_err());
    }

    #[test]
    fn smaller_epsilon_means_more_noise() {
        let strict = evaluation_noise_scale(PrivacyBudget::Finite(0.1), 16, 10).unwrap();
        let generous = evaluation_noise_scale(PrivacyBudget::Finite(100.0), 16, 10).unwrap();
        assert!(strict > generous * 100.0);
    }
}

#[cfg(test)]
mod proptests {
    use super::*;
    use fedmath::rng::rng_for;
    use proptest::prelude::*;

    proptest! {
        #[test]
        fn prop_noise_scale_monotone_in_sample_size(
            eps in 0.01f64..1000.0,
            evals in 1usize..1000,
            s1 in 1usize..500,
            extra in 1usize..500,
        ) {
            let small = evaluation_noise_scale(PrivacyBudget::Finite(eps), evals, s1).unwrap();
            let large = evaluation_noise_scale(PrivacyBudget::Finite(eps), evals, s1 + extra).unwrap();
            prop_assert!(large < small);
        }

        #[test]
        fn prop_privatized_value_is_finite(
            seed in any::<u64>(),
            value in -1.0f64..1.0,
            scale in 0.0f64..100.0,
        ) {
            let mut rng = rng_for(seed, 0);
            let m = LaplaceMechanism::new(scale).unwrap();
            prop_assert!(m.privatize(value, &mut rng).is_finite());
        }
    }
}
