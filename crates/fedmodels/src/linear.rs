//! Multinomial logistic (softmax) regression on dense features.

use crate::model::Model;
use crate::{ModelError, Result};
use feddata::{Example, Input};
use fedmath::Matrix;
use rand::Rng;
use rand_distr::{Distribution, Normal};

/// Softmax regression: `logits = W x + b` over dense feature vectors.
///
/// This is the simplest member of the image-classification model family and
/// the cheapest model for sanity checks; the experiments default to [`crate::Mlp`].
#[derive(Debug, Clone, PartialEq)]
pub struct SoftmaxRegression {
    weights: Matrix,
    bias: Vec<f64>,
    feature_dim: usize,
    num_classes: usize,
}

impl SoftmaxRegression {
    /// Creates a model with small random initial weights.
    pub fn new(feature_dim: usize, num_classes: usize, rng: &mut impl Rng) -> Self {
        let scale = 1.0 / (feature_dim.max(1) as f64).sqrt();
        let normal = Normal::new(0.0, scale).expect("valid std");
        let weights = Matrix::from_fn(num_classes, feature_dim, |_, _| normal.sample(rng));
        SoftmaxRegression {
            weights,
            bias: vec![0.0; num_classes],
            feature_dim,
            num_classes,
        }
    }

    /// Creates a model with all-zero parameters (deterministic baseline).
    pub fn zeros(feature_dim: usize, num_classes: usize) -> Self {
        SoftmaxRegression {
            weights: Matrix::zeros(num_classes, feature_dim),
            bias: vec![0.0; num_classes],
            feature_dim,
            num_classes,
        }
    }

    /// Input feature dimensionality.
    pub fn feature_dim(&self) -> usize {
        self.feature_dim
    }

    fn dense_input<'a>(&self, input: &'a Input) -> Result<&'a [f64]> {
        match input {
            Input::Dense(x) if x.len() == self.feature_dim => Ok(x),
            Input::Dense(x) => Err(ModelError::IncompatibleInput {
                message: format!("expected {} features, got {}", self.feature_dim, x.len()),
            }),
            Input::Token(_) => Err(ModelError::IncompatibleInput {
                message: "softmax regression expects dense inputs, got a token".into(),
            }),
        }
    }
}

impl Model for SoftmaxRegression {
    fn num_params(&self) -> usize {
        self.num_classes * self.feature_dim + self.num_classes
    }

    fn params(&self) -> Vec<f64> {
        let mut out = self.weights.as_slice().to_vec();
        out.extend_from_slice(&self.bias);
        out
    }

    fn set_params(&mut self, params: &[f64]) -> Result<()> {
        if params.len() != self.num_params() {
            return Err(ModelError::ParamLengthMismatch {
                expected: self.num_params(),
                got: params.len(),
            });
        }
        let w_len = self.num_classes * self.feature_dim;
        self.weights =
            Matrix::from_vec(self.num_classes, self.feature_dim, params[..w_len].to_vec())
                .map_err(ModelError::from)?;
        self.bias = params[w_len..].to_vec();
        Ok(())
    }

    fn num_classes(&self) -> usize {
        self.num_classes
    }

    fn logits(&self, input: &Input) -> Result<Vec<f64>> {
        let x = self.dense_input(input)?;
        let mut logits = self.weights.matvec(x).map_err(ModelError::from)?;
        for (l, b) in logits.iter_mut().zip(self.bias.iter()) {
            *l += b;
        }
        Ok(logits)
    }

    fn gradient(&self, examples: &[Example]) -> Result<Vec<f64>> {
        if examples.is_empty() {
            return Err(ModelError::EmptyBatch);
        }
        let mut grad_w = Matrix::zeros(self.num_classes, self.feature_dim);
        let mut grad_b = vec![0.0; self.num_classes];
        for e in examples {
            if e.label >= self.num_classes {
                return Err(ModelError::LabelOutOfRange {
                    label: e.label,
                    num_classes: self.num_classes,
                });
            }
            let x = self.dense_input(&e.input)?;
            let mut probs = self.logits(&e.input)?;
            fedmath::ops::softmax_inplace(&mut probs);
            for c in 0..self.num_classes {
                let dlogit = probs[c] - if c == e.label { 1.0 } else { 0.0 };
                grad_b[c] += dlogit;
                let row = grad_w.row_mut(c);
                for (d, &xd) in x.iter().enumerate() {
                    row[d] += dlogit * xd;
                }
            }
        }
        let inv_n = 1.0 / examples.len() as f64;
        let mut out = grad_w.into_vec();
        out.extend_from_slice(&grad_b);
        for g in &mut out {
            *g *= inv_n;
        }
        Ok(out)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::finite_difference_check;
    use fedmath::rng::rng_for;

    fn toy_examples() -> Vec<Example> {
        vec![
            Example::dense(vec![1.0, 0.0, -0.5], 0),
            Example::dense(vec![0.0, 1.0, 0.5], 1),
            Example::dense(vec![-1.0, -1.0, 1.0], 2),
            Example::dense(vec![0.3, 0.2, 0.1], 1),
        ]
    }

    #[test]
    fn param_round_trip() {
        let mut rng = rng_for(0, 0);
        let mut model = SoftmaxRegression::new(3, 4, &mut rng);
        assert_eq!(model.num_params(), 3 * 4 + 4);
        let p = model.params();
        assert_eq!(p.len(), model.num_params());
        let mut p2 = p.clone();
        p2[0] += 1.0;
        model.set_params(&p2).unwrap();
        assert_eq!(model.params(), p2);
        assert!(model.set_params(&p[..3]).is_err());
    }

    #[test]
    fn logits_shape_and_input_validation() {
        let model = SoftmaxRegression::zeros(3, 5);
        let logits = model.logits(&Input::Dense(vec![1.0, 2.0, 3.0])).unwrap();
        assert_eq!(logits.len(), 5);
        assert!(model.logits(&Input::Dense(vec![1.0])).is_err());
        assert!(model.logits(&Input::Token(0)).is_err());
        assert_eq!(model.feature_dim(), 3);
    }

    #[test]
    fn zero_model_has_uniform_loss() {
        let model = SoftmaxRegression::zeros(3, 4);
        let loss = model.loss(&toy_examples()[..1]).unwrap();
        assert!((loss - 4.0f64.ln()).abs() < 1e-12);
    }

    #[test]
    fn gradient_matches_finite_differences() {
        let mut rng = rng_for(0, 1);
        let model = SoftmaxRegression::new(3, 3, &mut rng);
        let diff = finite_difference_check(&model, &toy_examples(), 1e-5).unwrap();
        assert!(diff < 1e-6, "max gradient error {diff}");
    }

    #[test]
    fn gradient_validation() {
        let model = SoftmaxRegression::zeros(2, 2);
        assert!(matches!(model.gradient(&[]), Err(ModelError::EmptyBatch)));
        let bad_label = vec![Example::dense(vec![0.0, 0.0], 7)];
        assert!(model.gradient(&bad_label).is_err());
        let bad_dim = vec![Example::dense(vec![0.0], 1)];
        assert!(model.gradient(&bad_dim).is_err());
    }

    #[test]
    fn gradient_descent_reduces_loss() {
        let mut rng = rng_for(0, 2);
        let mut model = SoftmaxRegression::new(3, 3, &mut rng);
        let examples = toy_examples();
        let initial = model.loss(&examples).unwrap();
        for _ in 0..200 {
            let grad = model.gradient(&examples).unwrap();
            let mut params = model.params();
            for (p, g) in params.iter_mut().zip(grad.iter()) {
                *p -= 0.5 * g;
            }
            model.set_params(&params).unwrap();
        }
        let final_loss = model.loss(&examples).unwrap();
        assert!(
            final_loss < initial * 0.5,
            "training failed to reduce loss: {initial} -> {final_loss}"
        );
        assert_eq!(model.error_rate(&examples).unwrap(), 0.0);
    }

    #[test]
    fn new_is_reproducible_per_seed() {
        let mut rng1 = rng_for(5, 0);
        let mut rng2 = rng_for(5, 0);
        let m1 = SoftmaxRegression::new(4, 3, &mut rng1);
        let m2 = SoftmaxRegression::new(4, 3, &mut rng2);
        assert_eq!(m1.params(), m2.params());
    }
}
