//! Multinomial logistic (softmax) regression on dense features.

use crate::model::Model;
use crate::{ModelError, Result};
use feddata::{Example, Input};
use fedmath::kernel::{self, BufferPool};
use fedmath::Matrix;
use rand::Rng;
use rand_distr::{Distribution, Normal};

/// Softmax regression: `logits = W x + b` over dense feature vectors.
///
/// This is the simplest member of the image-classification model family and
/// the cheapest model for sanity checks; the experiments default to [`crate::Mlp`].
#[derive(Debug, Clone, PartialEq)]
pub struct SoftmaxRegression {
    weights: Matrix,
    bias: Vec<f64>,
    feature_dim: usize,
    num_classes: usize,
}

impl SoftmaxRegression {
    /// Creates a model with small random initial weights.
    pub fn new(feature_dim: usize, num_classes: usize, rng: &mut impl Rng) -> Self {
        let scale = 1.0 / (feature_dim.max(1) as f64).sqrt();
        let normal = Normal::new(0.0, scale).expect("valid std");
        let weights = Matrix::from_fn(num_classes, feature_dim, |_, _| normal.sample(rng));
        SoftmaxRegression {
            weights,
            bias: vec![0.0; num_classes],
            feature_dim,
            num_classes,
        }
    }

    /// Creates a model with all-zero parameters (deterministic baseline).
    pub fn zeros(feature_dim: usize, num_classes: usize) -> Self {
        SoftmaxRegression {
            weights: Matrix::zeros(num_classes, feature_dim),
            bias: vec![0.0; num_classes],
            feature_dim,
            num_classes,
        }
    }

    /// Input feature dimensionality.
    pub fn feature_dim(&self) -> usize {
        self.feature_dim
    }

    fn dense_input<'a>(&self, input: &'a Input) -> Result<&'a [f64]> {
        match input {
            Input::Dense(x) if x.len() == self.feature_dim => Ok(x),
            Input::Dense(x) => Err(ModelError::IncompatibleInput {
                message: format!("expected {} features, got {}", self.feature_dim, x.len()),
            }),
            Input::Token(_) => Err(ModelError::IncompatibleInput {
                message: "softmax regression expects dense inputs, got a token".into(),
            }),
        }
    }
}

impl Model for SoftmaxRegression {
    fn num_params(&self) -> usize {
        self.num_classes * self.feature_dim + self.num_classes
    }

    fn params(&self) -> Vec<f64> {
        let mut out = Vec::with_capacity(self.num_params());
        self.params_into(&mut out);
        out
    }

    fn params_into(&self, out: &mut Vec<f64>) {
        out.clear();
        out.reserve(self.num_params());
        out.extend_from_slice(self.weights.as_slice());
        out.extend_from_slice(&self.bias);
    }

    fn set_params(&mut self, params: &[f64]) -> Result<()> {
        if params.len() != self.num_params() {
            return Err(ModelError::ParamLengthMismatch {
                expected: self.num_params(),
                got: params.len(),
            });
        }
        let w_len = self.num_classes * self.feature_dim;
        self.weights
            .copy_from_slice(&params[..w_len])
            .map_err(ModelError::from)?;
        self.bias.copy_from_slice(&params[w_len..]);
        Ok(())
    }

    fn num_classes(&self) -> usize {
        self.num_classes
    }

    fn logits(&self, input: &Input) -> Result<Vec<f64>> {
        let x = self.dense_input(input)?;
        let mut logits = self.weights.matvec(x).map_err(ModelError::from)?;
        for (l, b) in logits.iter_mut().zip(self.bias.iter()) {
            *l += b;
        }
        Ok(logits)
    }

    fn gradient(&self, examples: &[Example]) -> Result<Vec<f64>> {
        if examples.is_empty() {
            return Err(ModelError::EmptyBatch);
        }
        let mut grad_w = Matrix::zeros(self.num_classes, self.feature_dim);
        let mut grad_b = vec![0.0; self.num_classes];
        for e in examples {
            if e.label >= self.num_classes {
                return Err(ModelError::LabelOutOfRange {
                    label: e.label,
                    num_classes: self.num_classes,
                });
            }
            let x = self.dense_input(&e.input)?;
            let mut probs = self.logits(&e.input)?;
            fedmath::ops::softmax_inplace(&mut probs);
            // Product terms fold in with `mul_add`, mirroring the fused
            // multiply-add chains of the batched `gemm_tn` so both paths
            // stay bit-identical.
            for c in 0..self.num_classes {
                let dlogit = probs[c] - if c == e.label { 1.0 } else { 0.0 };
                grad_b[c] += dlogit;
                let row = grad_w.row_mut(c);
                for (d, &xd) in x.iter().enumerate() {
                    row[d] = dlogit.mul_add(xd, row[d]);
                }
            }
        }
        let inv_n = 1.0 / examples.len() as f64;
        let mut out = grad_w.into_vec();
        out.extend_from_slice(&grad_b);
        for g in &mut out {
            *g *= inv_n;
        }
        Ok(out)
    }

    fn gradient_batch_into(
        &self,
        examples: &[Example],
        order: &[usize],
        pool: &mut BufferPool,
        out: &mut Vec<f64>,
    ) -> Result<()> {
        let batch = order.len();
        if batch == 0 {
            return Err(ModelError::EmptyBatch);
        }
        let f = self.feature_dim;
        let c = self.num_classes;
        // Validate up front so the hot loops below cannot fail.
        for &idx in order {
            let e = &examples[idx];
            if e.label >= c {
                return Err(ModelError::LabelOutOfRange {
                    label: e.label,
                    num_classes: c,
                });
            }
            self.dense_input(&e.input)?;
        }
        let mut x = pool.take(batch * f);
        for (r, &idx) in order.iter().enumerate() {
            let xe = self.dense_input(&examples[idx].input)?;
            x[r * f..(r + 1) * f].copy_from_slice(xe);
        }
        // Forward: logits = X · Wᵀ + b, sharing `dot`'s accumulation order
        // with the per-example matvec, then the fused softmax/label backward.
        let mut dlogits = pool.take(batch * c);
        kernel::gemm_nt(batch, f, c, &x, self.weights.as_slice(), &mut dlogits);
        kernel::bias_add_rows(&mut dlogits, batch, c, &self.bias);
        kernel::softmax_xent_backward(&mut dlogits, batch, c, |r| examples[order[r]].label);
        out.clear();
        out.resize(self.num_params(), 0.0);
        let w_len = c * f;
        let (gw, gb) = out.split_at_mut(w_len);
        // grad_w = dLogitsᵀ · X folds examples in batch order, exactly like
        // the per-example accumulation loop.
        kernel::gemm_tn(c, batch, f, &dlogits, &x, gw);
        kernel::col_sum_add(batch, c, &dlogits, gb);
        kernel::scale(1.0 / batch as f64, out);
        pool.put(x);
        pool.put(dlogits);
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::finite_difference_check;
    use fedmath::rng::rng_for;

    fn toy_examples() -> Vec<Example> {
        vec![
            Example::dense(vec![1.0, 0.0, -0.5], 0),
            Example::dense(vec![0.0, 1.0, 0.5], 1),
            Example::dense(vec![-1.0, -1.0, 1.0], 2),
            Example::dense(vec![0.3, 0.2, 0.1], 1),
        ]
    }

    #[test]
    fn param_round_trip() {
        let mut rng = rng_for(0, 0);
        let mut model = SoftmaxRegression::new(3, 4, &mut rng);
        assert_eq!(model.num_params(), 3 * 4 + 4);
        let p = model.params();
        assert_eq!(p.len(), model.num_params());
        let mut p2 = p.clone();
        p2[0] += 1.0;
        model.set_params(&p2).unwrap();
        assert_eq!(model.params(), p2);
        assert!(model.set_params(&p[..3]).is_err());
    }

    #[test]
    fn logits_shape_and_input_validation() {
        let model = SoftmaxRegression::zeros(3, 5);
        let logits = model.logits(&Input::Dense(vec![1.0, 2.0, 3.0])).unwrap();
        assert_eq!(logits.len(), 5);
        assert!(model.logits(&Input::Dense(vec![1.0])).is_err());
        assert!(model.logits(&Input::Token(0)).is_err());
        assert_eq!(model.feature_dim(), 3);
    }

    #[test]
    fn zero_model_has_uniform_loss() {
        let model = SoftmaxRegression::zeros(3, 4);
        let loss = model.loss(&toy_examples()[..1]).unwrap();
        assert!((loss - 4.0f64.ln()).abs() < 1e-12);
    }

    #[test]
    fn gradient_matches_finite_differences() {
        let mut rng = rng_for(0, 1);
        let model = SoftmaxRegression::new(3, 3, &mut rng);
        let diff = finite_difference_check(&model, &toy_examples(), 1e-5).unwrap();
        assert!(diff < 1e-6, "max gradient error {diff}");
    }

    #[test]
    fn gradient_validation() {
        let model = SoftmaxRegression::zeros(2, 2);
        assert!(matches!(model.gradient(&[]), Err(ModelError::EmptyBatch)));
        let bad_label = vec![Example::dense(vec![0.0, 0.0], 7)];
        assert!(model.gradient(&bad_label).is_err());
        let bad_dim = vec![Example::dense(vec![0.0], 1)];
        assert!(model.gradient(&bad_dim).is_err());
    }

    #[test]
    fn gradient_descent_reduces_loss() {
        let mut rng = rng_for(0, 2);
        let mut model = SoftmaxRegression::new(3, 3, &mut rng);
        let examples = toy_examples();
        let initial = model.loss(&examples).unwrap();
        for _ in 0..200 {
            let grad = model.gradient(&examples).unwrap();
            let mut params = model.params();
            for (p, g) in params.iter_mut().zip(grad.iter()) {
                *p -= 0.5 * g;
            }
            model.set_params(&params).unwrap();
        }
        let final_loss = model.loss(&examples).unwrap();
        assert!(
            final_loss < initial * 0.5,
            "training failed to reduce loss: {initial} -> {final_loss}"
        );
        assert_eq!(model.error_rate(&examples).unwrap(), 0.0);
    }

    #[test]
    fn batched_gradient_is_bitwise_identical_to_per_example() {
        let mut rng = rng_for(0, 3);
        let model = SoftmaxRegression::new(3, 4, &mut rng);
        let examples = toy_examples();
        // Include a non-trivial order (subset, permuted).
        for order in [vec![0, 1, 2, 3], vec![2, 0], vec![3, 1, 0]] {
            let gathered: Vec<Example> = order.iter().map(|&i| examples[i].clone()).collect();
            let reference = model.gradient(&gathered).unwrap();
            let mut pool = fedmath::kernel::BufferPool::new();
            let mut batched = Vec::new();
            model
                .gradient_batch_into(&examples, &order, &mut pool, &mut batched)
                .unwrap();
            assert_eq!(batched.len(), reference.len());
            for (i, (a, b)) in batched.iter().zip(reference.iter()).enumerate() {
                assert_eq!(a.to_bits(), b.to_bits(), "param {i}, order {order:?}");
            }
        }
    }

    #[test]
    fn batched_gradient_validation() {
        let model = SoftmaxRegression::zeros(2, 2);
        let mut pool = fedmath::kernel::BufferPool::new();
        let mut out = Vec::new();
        let examples = vec![Example::dense(vec![0.0, 0.0], 7)];
        assert!(matches!(
            model.gradient_batch_into(&examples, &[], &mut pool, &mut out),
            Err(ModelError::EmptyBatch)
        ));
        assert!(model
            .gradient_batch_into(&examples, &[0], &mut pool, &mut out)
            .is_err());
        let bad_dim = vec![Example::dense(vec![0.0], 1)];
        assert!(model
            .gradient_batch_into(&bad_dim, &[0], &mut pool, &mut out)
            .is_err());
    }

    #[test]
    fn new_is_reproducible_per_seed() {
        let mut rng1 = rng_for(5, 0);
        let mut rng2 = rng_for(5, 0);
        let m1 = SoftmaxRegression::new(4, 3, &mut rng1);
        let m2 = SoftmaxRegression::new(4, 3, &mut rng2);
        assert_eq!(m1.params(), m2.params());
    }
}
