//! Model selection for a dataset: one model family per task family.

use crate::bigram::BigramLm;
use crate::linear::SoftmaxRegression;
use crate::mlp::Mlp;
use crate::model::Model;
use crate::Result;
use feddata::{FederatedDataset, Input, Task};
use rand::Rng;
use serde::{Deserialize, Serialize};

/// Architecture recipe used to instantiate a model for a dataset.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum ModelSpec {
    /// Softmax regression on dense features.
    Softmax,
    /// One-hidden-layer ReLU MLP with the given hidden width.
    Mlp {
        /// Hidden-layer width.
        hidden_dim: usize,
    },
    /// Bigram language model with the given embedding width.
    Bigram {
        /// Embedding dimensionality.
        embed_dim: usize,
    },
}

impl ModelSpec {
    /// Default architecture for a dataset, mirroring the paper's choices:
    /// a small non-linear classifier for the image family (their 2-layer CNN)
    /// and an embedding next-token model for the text family (their LSTM).
    pub fn for_dataset(dataset: &FederatedDataset) -> Self {
        Self::for_task(dataset.task())
    }

    /// Default architecture for a task family (see
    /// [`for_dataset`](Self::for_dataset)) without needing a materialized
    /// dataset — lazy client populations only carry the task, not the data.
    pub fn for_task(task: Task) -> Self {
        match task {
            Task::DenseClassification => ModelSpec::Mlp { hidden_dim: 32 },
            Task::NextTokenPrediction => ModelSpec::Bigram { embed_dim: 16 },
        }
    }

    /// Instantiates a freshly-initialised model for `dataset`.
    pub fn build(&self, dataset: &FederatedDataset, rng: &mut impl Rng) -> AnyModel {
        self.build_with_dims(dataset.input_dim(), dataset.num_classes(), rng)
    }

    /// Instantiates a freshly-initialised model from raw dimensions:
    /// `input_dim` is the dense feature dimension (vocabulary size for token
    /// inputs) and `num_classes` the number of outputs. This is the
    /// dataset-free path used when training against a lazy client population
    /// whose clients are materialized on demand.
    pub fn build_with_dims(
        &self,
        input_dim: usize,
        num_classes: usize,
        rng: &mut impl Rng,
    ) -> AnyModel {
        match *self {
            ModelSpec::Softmax => {
                AnyModel::Softmax(SoftmaxRegression::new(input_dim, num_classes, rng))
            }
            ModelSpec::Mlp { hidden_dim } => {
                AnyModel::Mlp(Mlp::new(input_dim, hidden_dim, num_classes, rng))
            }
            ModelSpec::Bigram { embed_dim } => {
                AnyModel::Bigram(BigramLm::new(num_classes, embed_dim, rng))
            }
        }
    }
}

/// A model of any supported architecture, so that simulation code can work
/// with one concrete type while remaining architecture-agnostic.
#[derive(Debug, Clone, PartialEq)]
pub enum AnyModel {
    /// Softmax regression.
    Softmax(SoftmaxRegression),
    /// One-hidden-layer MLP.
    Mlp(Mlp),
    /// Bigram language model.
    Bigram(BigramLm),
}

macro_rules! delegate {
    ($self:expr, $m:ident => $body:expr) => {
        match $self {
            AnyModel::Softmax($m) => $body,
            AnyModel::Mlp($m) => $body,
            AnyModel::Bigram($m) => $body,
        }
    };
}

impl Model for AnyModel {
    fn num_params(&self) -> usize {
        delegate!(self, m => m.num_params())
    }

    fn params(&self) -> Vec<f64> {
        delegate!(self, m => m.params())
    }

    fn set_params(&mut self, params: &[f64]) -> Result<()> {
        delegate!(self, m => m.set_params(params))
    }

    fn num_classes(&self) -> usize {
        delegate!(self, m => m.num_classes())
    }

    fn logits(&self, input: &Input) -> Result<Vec<f64>> {
        delegate!(self, m => m.logits(input))
    }

    fn gradient(&self, examples: &[feddata::Example]) -> Result<Vec<f64>> {
        delegate!(self, m => m.gradient(examples))
    }

    fn params_into(&self, out: &mut Vec<f64>) {
        delegate!(self, m => m.params_into(out))
    }

    fn gradient_batch_into(
        &self,
        examples: &[feddata::Example],
        order: &[usize],
        pool: &mut fedmath::kernel::BufferPool,
        out: &mut Vec<f64>,
    ) -> Result<()> {
        delegate!(self, m => m.gradient_batch_into(examples, order, pool, out))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use feddata::{Benchmark, DatasetSpec, Scale};
    use fedmath::rng::rng_for;

    fn dataset(benchmark: Benchmark) -> FederatedDataset {
        DatasetSpec::benchmark(benchmark, Scale::Smoke)
            .generate(0)
            .unwrap()
    }

    #[test]
    fn default_spec_matches_task_family() {
        let image = dataset(Benchmark::Cifar10Like);
        assert_eq!(
            ModelSpec::for_dataset(&image),
            ModelSpec::Mlp { hidden_dim: 32 }
        );
        let text = dataset(Benchmark::RedditLike);
        assert_eq!(
            ModelSpec::for_dataset(&text),
            ModelSpec::Bigram { embed_dim: 16 }
        );
    }

    #[test]
    fn build_produces_models_compatible_with_the_dataset() {
        let mut rng = rng_for(0, 0);
        for &b in &Benchmark::ALL {
            let d = dataset(b);
            let spec = ModelSpec::for_dataset(&d);
            let model = spec.build(&d, &mut rng);
            assert_eq!(model.num_classes(), d.num_classes());
            // The model must evaluate every client's data without error.
            for client in d.clients(feddata::Split::Validation) {
                let metrics = model.evaluate(client.examples()).unwrap();
                assert!((0.0..=1.0).contains(&metrics.error_rate));
            }
        }
    }

    #[test]
    fn softmax_spec_builds_linear_model() {
        let mut rng = rng_for(0, 1);
        let d = dataset(Benchmark::Cifar10Like);
        let model = ModelSpec::Softmax.build(&d, &mut rng);
        assert!(matches!(model, AnyModel::Softmax(_)));
        assert_eq!(
            model.num_params(),
            d.input_dim() * d.num_classes() + d.num_classes()
        );
    }

    #[test]
    fn any_model_delegates_params() {
        let mut rng = rng_for(0, 2);
        let d = dataset(Benchmark::StackOverflowLike);
        let mut model = ModelSpec::Bigram { embed_dim: 8 }.build(&d, &mut rng);
        let p = model.params();
        assert_eq!(p.len(), model.num_params());
        model.set_params(&p).unwrap();
        assert_eq!(model.params(), p);
        assert!(model.set_params(&p[..1]).is_err());
    }

    #[test]
    fn any_model_gradient_shape() {
        let mut rng = rng_for(0, 3);
        let d = dataset(Benchmark::FemnistLike);
        let model = ModelSpec::Mlp { hidden_dim: 8 }.build(&d, &mut rng);
        let client = &d.clients(feddata::Split::Train)[0];
        let grad = model.gradient(client.examples()).unwrap();
        assert_eq!(grad.len(), model.num_params());
    }
}
