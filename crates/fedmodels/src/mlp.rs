//! One-hidden-layer ReLU network on dense features.
//!
//! Stands in for the paper's 2-layer CNN on the image-classification family
//! (see `DESIGN.md`): a non-linear model whose trainability depends strongly
//! on the learning-rate and momentum hyperparameters, which is the property
//! the HP-tuning study needs.

use crate::model::Model;
use crate::{ModelError, Result};
use feddata::{Example, Input};
use fedmath::kernel::{self, BufferPool};
use fedmath::Matrix;
use rand::Rng;
use rand_distr::{Distribution, Normal};

/// A multilayer perceptron with one ReLU hidden layer:
/// `logits = W2 * relu(W1 x + b1) + b2`.
#[derive(Debug, Clone, PartialEq)]
pub struct Mlp {
    w1: Matrix,
    b1: Vec<f64>,
    w2: Matrix,
    b2: Vec<f64>,
    feature_dim: usize,
    hidden_dim: usize,
    num_classes: usize,
}

impl Mlp {
    /// Creates an MLP with He-style random initial weights.
    pub fn new(
        feature_dim: usize,
        hidden_dim: usize,
        num_classes: usize,
        rng: &mut impl Rng,
    ) -> Self {
        let s1 = (2.0 / feature_dim.max(1) as f64).sqrt();
        let s2 = (2.0 / hidden_dim.max(1) as f64).sqrt();
        let n1 = Normal::new(0.0, s1).expect("valid std");
        let n2 = Normal::new(0.0, s2).expect("valid std");
        Mlp {
            w1: Matrix::from_fn(hidden_dim, feature_dim, |_, _| n1.sample(rng)),
            b1: vec![0.0; hidden_dim],
            w2: Matrix::from_fn(num_classes, hidden_dim, |_, _| n2.sample(rng)),
            b2: vec![0.0; num_classes],
            feature_dim,
            hidden_dim,
            num_classes,
        }
    }

    /// Input feature dimensionality.
    pub fn feature_dim(&self) -> usize {
        self.feature_dim
    }

    /// Hidden-layer width.
    pub fn hidden_dim(&self) -> usize {
        self.hidden_dim
    }

    fn dense_input<'a>(&self, input: &'a Input) -> Result<&'a [f64]> {
        match input {
            Input::Dense(x) if x.len() == self.feature_dim => Ok(x),
            Input::Dense(x) => Err(ModelError::IncompatibleInput {
                message: format!("expected {} features, got {}", self.feature_dim, x.len()),
            }),
            Input::Token(_) => Err(ModelError::IncompatibleInput {
                message: "mlp expects dense inputs, got a token".into(),
            }),
        }
    }

    /// Forward pass returning `(pre-activation, hidden activation, logits)`.
    fn forward(&self, x: &[f64]) -> Result<(Vec<f64>, Vec<f64>, Vec<f64>)> {
        let mut pre = self.w1.matvec(x).map_err(ModelError::from)?;
        for (p, b) in pre.iter_mut().zip(self.b1.iter()) {
            *p += b;
        }
        let hidden: Vec<f64> = pre.iter().map(|&v| fedmath::ops::relu(v)).collect();
        let mut logits = self.w2.matvec(&hidden).map_err(ModelError::from)?;
        for (l, b) in logits.iter_mut().zip(self.b2.iter()) {
            *l += b;
        }
        Ok((pre, hidden, logits))
    }
}

impl Model for Mlp {
    fn num_params(&self) -> usize {
        self.hidden_dim * self.feature_dim
            + self.hidden_dim
            + self.num_classes * self.hidden_dim
            + self.num_classes
    }

    fn params(&self) -> Vec<f64> {
        let mut out = Vec::with_capacity(self.num_params());
        self.params_into(&mut out);
        out
    }

    fn params_into(&self, out: &mut Vec<f64>) {
        out.clear();
        out.reserve(self.num_params());
        out.extend_from_slice(self.w1.as_slice());
        out.extend_from_slice(&self.b1);
        out.extend_from_slice(self.w2.as_slice());
        out.extend_from_slice(&self.b2);
    }

    fn set_params(&mut self, params: &[f64]) -> Result<()> {
        if params.len() != self.num_params() {
            return Err(ModelError::ParamLengthMismatch {
                expected: self.num_params(),
                got: params.len(),
            });
        }
        let mut offset = 0;
        let w1_len = self.hidden_dim * self.feature_dim;
        self.w1
            .copy_from_slice(&params[offset..offset + w1_len])
            .map_err(ModelError::from)?;
        offset += w1_len;
        self.b1
            .copy_from_slice(&params[offset..offset + self.hidden_dim]);
        offset += self.hidden_dim;
        let w2_len = self.num_classes * self.hidden_dim;
        self.w2
            .copy_from_slice(&params[offset..offset + w2_len])
            .map_err(ModelError::from)?;
        offset += w2_len;
        self.b2.copy_from_slice(&params[offset..]);
        Ok(())
    }

    fn num_classes(&self) -> usize {
        self.num_classes
    }

    fn logits(&self, input: &Input) -> Result<Vec<f64>> {
        let x = self.dense_input(input)?;
        Ok(self.forward(x)?.2)
    }

    fn gradient(&self, examples: &[Example]) -> Result<Vec<f64>> {
        if examples.is_empty() {
            return Err(ModelError::EmptyBatch);
        }
        let mut gw1 = Matrix::zeros(self.hidden_dim, self.feature_dim);
        let mut gb1 = vec![0.0; self.hidden_dim];
        let mut gw2 = Matrix::zeros(self.num_classes, self.hidden_dim);
        let mut gb2 = vec![0.0; self.num_classes];

        for e in examples {
            if e.label >= self.num_classes {
                return Err(ModelError::LabelOutOfRange {
                    label: e.label,
                    num_classes: self.num_classes,
                });
            }
            let x = self.dense_input(&e.input)?;
            let (pre, hidden, logits) = self.forward(x)?;
            let mut dlogits = logits;
            fedmath::ops::softmax_inplace(&mut dlogits);
            dlogits[e.label] -= 1.0;

            // Output layer gradients. Product terms fold in with `mul_add`,
            // mirroring the fused-multiply-add chains of the batched kernels
            // (`gemm_tn` here) so both paths stay bit-identical.
            for c in 0..self.num_classes {
                gb2[c] += dlogits[c];
                let row = gw2.row_mut(c);
                for (h, &hv) in hidden.iter().enumerate() {
                    row[h] = dlogits[c].mul_add(hv, row[h]);
                }
            }
            // Backprop into the hidden layer: ascending-class `mul_add`
            // chain, the exact per-element order of the batched `gemm`.
            for h in 0..self.hidden_dim {
                let mut dh = 0.0f64;
                for (c, &dl) in dlogits.iter().enumerate() {
                    dh = dl.mul_add(self.w2.get(c, h), dh);
                }
                dh *= fedmath::ops::relu_grad(pre[h]);
                gb1[h] += dh;
                let row = gw1.row_mut(h);
                for (d, &xd) in x.iter().enumerate() {
                    row[d] = dh.mul_add(xd, row[d]);
                }
            }
        }

        let inv_n = 1.0 / examples.len() as f64;
        let mut out = gw1.into_vec();
        out.extend_from_slice(&gb1);
        out.extend_from_slice(gw2.as_slice());
        out.extend_from_slice(&gb2);
        for g in &mut out {
            *g *= inv_n;
        }
        Ok(out)
    }

    fn gradient_batch_into(
        &self,
        examples: &[Example],
        order: &[usize],
        pool: &mut BufferPool,
        out: &mut Vec<f64>,
    ) -> Result<()> {
        let batch = order.len();
        if batch == 0 {
            return Err(ModelError::EmptyBatch);
        }
        let f = self.feature_dim;
        let h = self.hidden_dim;
        let c = self.num_classes;
        // Validate up front so the hot loops below cannot fail.
        for &idx in order {
            let e = &examples[idx];
            if e.label >= c {
                return Err(ModelError::LabelOutOfRange {
                    label: e.label,
                    num_classes: c,
                });
            }
            self.dense_input(&e.input)?;
        }
        let mut x = pool.take(batch * f);
        for (r, &idx) in order.iter().enumerate() {
            let xe = self.dense_input(&examples[idx].input)?;
            x[r * f..(r + 1) * f].copy_from_slice(xe);
        }
        // Forward: two GEMMs against Wᵀ, each output element a `dot` of two
        // contiguous rows — the same accumulation order as the per-example
        // matvec forward, so the activations are bit-identical.
        let mut pre = pool.take(batch * h);
        kernel::gemm_nt(batch, f, h, &x, self.w1.as_slice(), &mut pre);
        kernel::bias_add_rows(&mut pre, batch, h, &self.b1);
        let mut hidden = pool.take(batch * h);
        hidden.copy_from_slice(&pre);
        kernel::relu_rows(&mut hidden);
        let mut dlogits = pool.take(batch * c);
        kernel::gemm_nt(batch, h, c, &hidden, self.w2.as_slice(), &mut dlogits);
        kernel::bias_add_rows(&mut dlogits, batch, c, &self.b2);
        // Fused softmax + label subtraction, mirroring softmax_inplace per row.
        kernel::softmax_xent_backward(&mut dlogits, batch, c, |r| examples[order[r]].label);
        out.clear();
        out.resize(self.num_params(), 0.0);
        let w1_len = h * f;
        let w2_len = c * h;
        let (gw1, rest) = out.split_at_mut(w1_len);
        let (gb1, rest) = rest.split_at_mut(h);
        let (gw2, gb2) = rest.split_at_mut(w2_len);
        // Output layer: Aᵀ·B folds examples in batch order, exactly like the
        // per-example accumulation loops.
        kernel::gemm_tn(c, batch, h, &dlogits, &hidden, gw2);
        kernel::col_sum_add(batch, c, &dlogits, gb2);
        // Hidden backprop: dH = dLogits · W2 sums classes in ascending order,
        // matching the per-example sequential fold over classes.
        let mut dh = pool.take(batch * h);
        kernel::gemm(batch, c, h, &dlogits, self.w2.as_slice(), &mut dh);
        kernel::relu_backward_rows(&mut dh, &pre);
        kernel::gemm_tn(h, batch, f, &dh, &x, gw1);
        kernel::col_sum_add(batch, h, &dh, gb1);
        kernel::scale(1.0 / batch as f64, out);
        pool.put(x);
        pool.put(pre);
        pool.put(hidden);
        pool.put(dlogits);
        pool.put(dh);
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::finite_difference_check;
    use fedmath::rng::rng_for;

    fn toy_examples() -> Vec<Example> {
        vec![
            Example::dense(vec![1.0, -0.3], 0),
            Example::dense(vec![-0.5, 0.8], 1),
            Example::dense(vec![0.2, 0.2], 2),
            Example::dense(vec![-1.0, -1.0], 0),
        ]
    }

    #[test]
    fn param_count_and_round_trip() {
        let mut rng = rng_for(1, 0);
        let mut model = Mlp::new(2, 5, 3, &mut rng);
        assert_eq!(model.num_params(), 5 * 2 + 5 + 3 * 5 + 3);
        assert_eq!(model.feature_dim(), 2);
        assert_eq!(model.hidden_dim(), 5);
        assert_eq!(model.num_classes(), 3);
        let p = model.params();
        assert_eq!(p.len(), model.num_params());
        model.set_params(&p).unwrap();
        assert_eq!(model.params(), p);
        assert!(model.set_params(&p[1..]).is_err());
    }

    #[test]
    fn input_validation() {
        let mut rng = rng_for(1, 1);
        let model = Mlp::new(3, 4, 2, &mut rng);
        assert!(model.logits(&Input::Dense(vec![0.0; 3])).is_ok());
        assert!(model.logits(&Input::Dense(vec![0.0; 2])).is_err());
        assert!(model.logits(&Input::Token(1)).is_err());
    }

    #[test]
    fn gradient_matches_finite_differences() {
        let mut rng = rng_for(1, 2);
        let model = Mlp::new(2, 4, 3, &mut rng);
        let diff = finite_difference_check(&model, &toy_examples(), 1e-5).unwrap();
        assert!(diff < 1e-5, "max gradient error {diff}");
    }

    #[test]
    fn gradient_validation() {
        let mut rng = rng_for(1, 3);
        let model = Mlp::new(2, 3, 2, &mut rng);
        assert!(matches!(model.gradient(&[]), Err(ModelError::EmptyBatch)));
        assert!(model
            .gradient(&[Example::dense(vec![0.0, 0.0], 9)])
            .is_err());
    }

    #[test]
    fn gradient_descent_fits_toy_data() {
        let mut rng = rng_for(1, 4);
        let mut model = Mlp::new(2, 16, 3, &mut rng);
        let examples = toy_examples();
        let initial = model.loss(&examples).unwrap();
        for _ in 0..300 {
            let grad = model.gradient(&examples).unwrap();
            let mut params = model.params();
            for (p, g) in params.iter_mut().zip(grad.iter()) {
                *p -= 0.3 * g;
            }
            model.set_params(&params).unwrap();
        }
        let final_loss = model.loss(&examples).unwrap();
        assert!(
            final_loss < initial,
            "loss did not decrease: {initial} -> {final_loss}"
        );
        assert!(model.error_rate(&examples).unwrap() <= 0.25);
    }

    #[test]
    fn batched_gradient_is_bitwise_identical_to_per_example() {
        let mut rng = rng_for(1, 5);
        let model = Mlp::new(2, 7, 3, &mut rng);
        let examples = toy_examples();
        for order in [vec![0, 1, 2, 3], vec![3, 0], vec![1, 1, 2]] {
            let gathered: Vec<Example> = order.iter().map(|&i| examples[i].clone()).collect();
            let reference = model.gradient(&gathered).unwrap();
            let mut pool = fedmath::kernel::BufferPool::new();
            let mut batched = Vec::new();
            model
                .gradient_batch_into(&examples, &order, &mut pool, &mut batched)
                .unwrap();
            assert_eq!(batched.len(), reference.len());
            for (i, (a, b)) in batched.iter().zip(reference.iter()).enumerate() {
                assert_eq!(a.to_bits(), b.to_bits(), "param {i}, order {order:?}");
            }
        }
    }

    /// Adapter that routes `gradient` through the batched path so the shared
    /// finite-difference checker exercises `gradient_batch_into`.
    #[derive(Clone)]
    struct BatchedMlp(Mlp);

    impl Model for BatchedMlp {
        fn num_params(&self) -> usize {
            self.0.num_params()
        }
        fn params(&self) -> Vec<f64> {
            self.0.params()
        }
        fn set_params(&mut self, params: &[f64]) -> Result<()> {
            self.0.set_params(params)
        }
        fn num_classes(&self) -> usize {
            self.0.num_classes()
        }
        fn logits(&self, input: &Input) -> Result<Vec<f64>> {
            self.0.logits(input)
        }
        fn gradient(&self, examples: &[Example]) -> Result<Vec<f64>> {
            let order: Vec<usize> = (0..examples.len()).collect();
            let mut pool = fedmath::kernel::BufferPool::new();
            let mut out = Vec::new();
            self.0
                .gradient_batch_into(examples, &order, &mut pool, &mut out)?;
            Ok(out)
        }
    }

    #[test]
    fn batched_gradient_matches_finite_differences() {
        let mut rng = rng_for(1, 6);
        let model = BatchedMlp(Mlp::new(2, 4, 3, &mut rng));
        let diff = finite_difference_check(&model, &toy_examples(), 1e-5).unwrap();
        assert!(diff < 1e-5, "max batched gradient error {diff}");
    }

    #[test]
    fn batched_gradient_validation() {
        let mut rng = rng_for(1, 7);
        let model = Mlp::new(2, 3, 2, &mut rng);
        let mut pool = fedmath::kernel::BufferPool::new();
        let mut out = Vec::new();
        assert!(matches!(
            model.gradient_batch_into(&[], &[], &mut pool, &mut out),
            Err(ModelError::EmptyBatch)
        ));
        let bad_label = vec![Example::dense(vec![0.0, 0.0], 9)];
        assert!(model
            .gradient_batch_into(&bad_label, &[0], &mut pool, &mut out)
            .is_err());
        let bad_dim = vec![Example::dense(vec![0.0], 0)];
        assert!(model
            .gradient_batch_into(&bad_dim, &[0], &mut pool, &mut out)
            .is_err());
    }

    #[test]
    fn initialization_reproducible() {
        let mut a = rng_for(9, 9);
        let mut b = rng_for(9, 9);
        assert_eq!(
            Mlp::new(3, 4, 2, &mut a).params(),
            Mlp::new(3, 4, 2, &mut b).params()
        );
    }
}
