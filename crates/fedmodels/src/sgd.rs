//! Local (client-side) mini-batch SGD — `ClientOPT` in Algorithm 2.
//!
//! The client hyperparameters tuned by the paper (Appendix B) all live here:
//! learning rate, momentum, weight decay, batch size, and the number of local
//! epochs per round.

use crate::model::Model;
use crate::{ModelError, Result};
use feddata::Example;
use fedmath::kernel::BufferPool;
use rand::seq::SliceRandom;
use rand::Rng;
use serde::{Deserialize, Serialize};

/// Hyperparameters of the client-side SGD optimizer.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct LocalSgdConfig {
    /// Client learning rate (`10^x` with `x ∈ [-6, 0]` in the paper's space).
    pub learning_rate: f64,
    /// Client momentum (`[0, 0.9]` in the paper's space).
    pub momentum: f64,
    /// L2 weight decay (fixed to `5e-5` in the paper).
    pub weight_decay: f64,
    /// Mini-batch size (`{32, 64, 128}` in the paper's space).
    pub batch_size: usize,
    /// Number of local epochs per round (fixed to 1 in the paper).
    pub epochs: usize,
}

impl Default for LocalSgdConfig {
    fn default() -> Self {
        LocalSgdConfig {
            learning_rate: 0.1,
            momentum: 0.0,
            weight_decay: 5e-5,
            batch_size: 32,
            epochs: 1,
        }
    }
}

impl LocalSgdConfig {
    /// Validates the configuration.
    ///
    /// # Errors
    ///
    /// Returns [`ModelError::InvalidHyperparameter`] if any value is outside
    /// its valid range (non-positive learning rate or batch size, momentum
    /// outside `[0, 1)`, negative weight decay, or zero epochs).
    pub fn validate(&self) -> Result<()> {
        if self.learning_rate <= 0.0 || !self.learning_rate.is_finite() {
            return Err(ModelError::InvalidHyperparameter {
                message: format!("learning rate must be positive, got {}", self.learning_rate),
            });
        }
        if !(0.0..1.0).contains(&self.momentum) {
            return Err(ModelError::InvalidHyperparameter {
                message: format!("momentum must be in [0, 1), got {}", self.momentum),
            });
        }
        if self.weight_decay < 0.0 || !self.weight_decay.is_finite() {
            return Err(ModelError::InvalidHyperparameter {
                message: format!(
                    "weight decay must be non-negative, got {}",
                    self.weight_decay
                ),
            });
        }
        if self.batch_size == 0 {
            return Err(ModelError::InvalidHyperparameter {
                message: "batch size must be positive".into(),
            });
        }
        if self.epochs == 0 {
            return Err(ModelError::InvalidHyperparameter {
                message: "epochs must be positive".into(),
            });
        }
        Ok(())
    }
}

/// Reusable scratch state for [`LocalSgd::train_into`].
///
/// Holds everything a local training run needs between rounds: a cached
/// clone of the model (reused whenever the parameter count matches), the
/// [`BufferPool`] feeding the batched gradient kernels, and the parameter /
/// velocity / gradient / shuffle-order buffers. After the first round warms
/// these up, subsequent rounds through the same scratch perform zero heap
/// allocations.
#[derive(Debug)]
pub struct SgdScratch<M: Model> {
    local: Option<M>,
    pool: BufferPool,
    params: Vec<f64>,
    velocity: Vec<f64>,
    grad: Vec<f64>,
    order: Vec<usize>,
}

impl<M: Model> SgdScratch<M> {
    /// Creates an empty scratch; buffers are grown on first use.
    pub fn new() -> Self {
        SgdScratch {
            local: None,
            pool: BufferPool::new(),
            params: Vec::new(),
            velocity: Vec::new(),
            grad: Vec::new(),
            order: Vec::new(),
        }
    }

    /// Fresh-allocation count of the underlying [`BufferPool`] — stops
    /// growing once training reaches steady state.
    pub fn fresh_allocations(&self) -> usize {
        self.pool.fresh_allocations()
    }
}

impl<M: Model> Default for SgdScratch<M> {
    fn default() -> Self {
        SgdScratch::new()
    }
}

/// The client-side optimizer: runs local mini-batch SGD with momentum and
/// weight decay on one client's examples and returns the updated parameters.
#[derive(Debug, Clone)]
pub struct LocalSgd {
    config: LocalSgdConfig,
}

impl LocalSgd {
    /// Creates a local optimizer with the given configuration.
    ///
    /// # Errors
    ///
    /// Returns [`ModelError::InvalidHyperparameter`] if the configuration is
    /// invalid (see [`LocalSgdConfig::validate`]).
    pub fn new(config: LocalSgdConfig) -> Result<Self> {
        config.validate()?;
        Ok(LocalSgd { config })
    }

    /// The optimizer configuration.
    pub fn config(&self) -> &LocalSgdConfig {
        &self.config
    }

    /// Runs local training on `examples` starting from `model`'s current
    /// parameters and returns the locally-updated parameter vector
    /// (`w'_{a_i}` in Algorithm 2). The input model is not modified.
    ///
    /// # Errors
    ///
    /// Returns [`ModelError::EmptyBatch`] if `examples` is empty and
    /// propagates gradient errors.
    pub fn train<M: Model>(
        &self,
        model: &M,
        examples: &[Example],
        rng: &mut impl Rng,
    ) -> Result<Vec<f64>> {
        let mut scratch = SgdScratch::new();
        let mut out = Vec::new();
        self.train_into(model, examples, rng, &mut scratch, &mut out)?;
        Ok(out)
    }

    /// Allocation-free variant of [`train`](Self::train): runs the same local
    /// SGD (identical RNG stream, bit-identical result) but draws every
    /// temporary from `scratch` and writes the updated parameters into `out`.
    ///
    /// The simulation layer keeps a pool of scratches and threads one through
    /// each client's local steps, so steady-state rounds allocate nothing.
    ///
    /// # Errors
    ///
    /// Returns [`ModelError::EmptyBatch`] if `examples` is empty and
    /// propagates gradient errors.
    pub fn train_into<M: Model>(
        &self,
        model: &M,
        examples: &[Example],
        rng: &mut impl Rng,
        scratch: &mut SgdScratch<M>,
        out: &mut Vec<f64>,
    ) -> Result<()> {
        if examples.is_empty() {
            return Err(ModelError::EmptyBatch);
        }
        let cfg = &self.config;
        // Reuse the cached model clone when it is shape-compatible; its
        // parameters are overwritten in place before every gradient call.
        let mut local = match scratch.local.take() {
            Some(l) if l.num_params() == model.num_params() => l,
            _ => model.clone(),
        };
        model.params_into(&mut scratch.params);
        scratch.velocity.clear();
        scratch.velocity.resize(scratch.params.len(), 0.0);
        scratch.order.clear();
        scratch.order.extend(0..examples.len());

        for _ in 0..cfg.epochs {
            scratch.order.shuffle(rng);
            let mut start = 0;
            while start < scratch.order.len() {
                let end = (start + cfg.batch_size).min(scratch.order.len());
                local.set_params(&scratch.params)?;
                local.gradient_batch_into(
                    examples,
                    &scratch.order[start..end],
                    &mut scratch.pool,
                    &mut scratch.grad,
                )?;
                for i in 0..scratch.params.len() {
                    let g = scratch.grad[i] + cfg.weight_decay * scratch.params[i];
                    scratch.velocity[i] = cfg.momentum * scratch.velocity[i] + g;
                    scratch.params[i] -= cfg.learning_rate * scratch.velocity[i];
                }
                start = end;
            }
        }
        out.clear();
        out.extend_from_slice(&scratch.params);
        scratch.local = Some(local);
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::linear::SoftmaxRegression;
    use fedmath::rng::rng_for;

    fn separable_examples() -> Vec<Example> {
        let mut out = Vec::new();
        for i in 0..20 {
            let x = i as f64 / 10.0;
            out.push(Example::dense(vec![1.0 + x, 0.0], 0));
            out.push(Example::dense(vec![0.0, 1.0 + x], 1));
        }
        out
    }

    #[test]
    fn config_validation() {
        assert!(LocalSgdConfig::default().validate().is_ok());
        let bad = LocalSgdConfig {
            learning_rate: 0.0,
            ..Default::default()
        };
        assert!(bad.validate().is_err());
        let bad = LocalSgdConfig {
            momentum: 1.0,
            ..Default::default()
        };
        assert!(bad.validate().is_err());
        let bad = LocalSgdConfig {
            momentum: -0.1,
            ..Default::default()
        };
        assert!(bad.validate().is_err());
        let bad = LocalSgdConfig {
            weight_decay: -1.0,
            ..Default::default()
        };
        assert!(bad.validate().is_err());
        let bad = LocalSgdConfig {
            batch_size: 0,
            ..Default::default()
        };
        assert!(bad.validate().is_err());
        let bad = LocalSgdConfig {
            epochs: 0,
            ..Default::default()
        };
        assert!(bad.validate().is_err());
        assert!(LocalSgd::new(bad).is_err());
    }

    #[test]
    fn local_training_reduces_loss() {
        let mut rng = rng_for(0, 0);
        let model = SoftmaxRegression::new(2, 2, &mut rng);
        let examples = separable_examples();
        let sgd = LocalSgd::new(LocalSgdConfig {
            learning_rate: 0.5,
            momentum: 0.5,
            weight_decay: 5e-5,
            batch_size: 8,
            epochs: 5,
        })
        .unwrap();
        let before = model.loss(&examples).unwrap();
        let new_params = sgd.train(&model, &examples, &mut rng).unwrap();
        let mut trained = model.clone();
        trained.set_params(&new_params).unwrap();
        let after = trained.loss(&examples).unwrap();
        assert!(after < before, "loss did not improve: {before} -> {after}");
        assert!(trained.error_rate(&examples).unwrap() < 0.1);
    }

    #[test]
    fn train_does_not_modify_input_model() {
        let mut rng = rng_for(0, 1);
        let model = SoftmaxRegression::new(2, 2, &mut rng);
        let before = model.params();
        let sgd = LocalSgd::new(LocalSgdConfig::default()).unwrap();
        let _ = sgd.train(&model, &separable_examples(), &mut rng).unwrap();
        assert_eq!(model.params(), before);
    }

    #[test]
    fn empty_client_is_an_error() {
        let mut rng = rng_for(0, 2);
        let model = SoftmaxRegression::new(2, 2, &mut rng);
        let sgd = LocalSgd::new(LocalSgdConfig::default()).unwrap();
        assert!(matches!(
            sgd.train(&model, &[], &mut rng),
            Err(ModelError::EmptyBatch)
        ));
    }

    #[test]
    fn huge_learning_rate_diverges_on_overlapping_classes() {
        // The HP response surface must punish absurd learning rates — this is
        // what makes hyperparameter tuning on these models non-trivial. With
        // overlapping classes (identical features, different labels) the
        // optimum is the uniform predictor; an enormous learning rate instead
        // drives the weights to huge magnitudes and the loss far above ln(2).
        let mut rng = rng_for(0, 3);
        let model = SoftmaxRegression::new(2, 2, &mut rng);
        let mut examples = Vec::new();
        for i in 0..20 {
            let x = vec![0.5 + (i % 3) as f64 * 0.01, 0.5];
            examples.push(Example::dense(x.clone(), 0));
            examples.push(Example::dense(x, 1));
        }
        let sgd = LocalSgd::new(LocalSgdConfig {
            learning_rate: 1e4,
            batch_size: 4,
            epochs: 3,
            ..Default::default()
        })
        .unwrap();
        let params = sgd.train(&model, &examples, &mut rng).unwrap();
        let mut diverged = model.clone();
        diverged.set_params(&params).unwrap();
        let loss = diverged.loss(&examples).unwrap();
        let optimal = 2.0f64.ln();
        assert!(
            loss > 2.0 * optimal || !loss.is_finite(),
            "expected divergence with lr=1e4: optimal {optimal}, got {loss}"
        );
    }

    #[test]
    fn weight_decay_shrinks_parameters() {
        let mut rng = rng_for(0, 4);
        let model = SoftmaxRegression::new(2, 2, &mut rng);
        // Pure decay: tiny gradient influence via lr, huge decay.
        let sgd = LocalSgd::new(LocalSgdConfig {
            learning_rate: 0.1,
            momentum: 0.0,
            weight_decay: 5.0,
            batch_size: 64,
            epochs: 10,
        })
        .unwrap();
        let examples = separable_examples();
        let params = sgd.train(&model, &examples, &mut rng).unwrap();
        let norm_before: f64 = model.params().iter().map(|p| p * p).sum();
        let norm_after: f64 = params.iter().map(|p| p * p).sum();
        assert!(norm_after < norm_before);
    }

    #[test]
    fn train_into_is_bitwise_identical_to_train() {
        let mut rng = rng_for(11, 0);
        let model = SoftmaxRegression::new(2, 2, &mut rng);
        let examples = separable_examples();
        let sgd = LocalSgd::new(LocalSgdConfig {
            learning_rate: 0.2,
            momentum: 0.5,
            weight_decay: 5e-5,
            batch_size: 8,
            epochs: 3,
        })
        .unwrap();
        let mut train_rng1 = rng_for(12, 0);
        let mut train_rng2 = rng_for(12, 0);
        let p1 = sgd.train(&model, &examples, &mut train_rng1).unwrap();
        let mut scratch = SgdScratch::new();
        let mut p2 = Vec::new();
        sgd.train_into(&model, &examples, &mut train_rng2, &mut scratch, &mut p2)
            .unwrap();
        assert_eq!(p1.len(), p2.len());
        for (a, b) in p1.iter().zip(p2.iter()) {
            assert_eq!(a.to_bits(), b.to_bits());
        }
    }

    #[test]
    fn scratch_reuse_changes_nothing_and_stops_allocating() {
        let mut rng = rng_for(13, 0);
        let model = SoftmaxRegression::new(2, 2, &mut rng);
        let examples = separable_examples();
        let sgd = LocalSgd::new(LocalSgdConfig {
            batch_size: 8,
            epochs: 2,
            ..Default::default()
        })
        .unwrap();
        let mut scratch = SgdScratch::new();
        let mut warm = Vec::new();
        let mut seed_rng = rng_for(13, 1);
        sgd.train_into(&model, &examples, &mut seed_rng, &mut scratch, &mut warm)
            .unwrap();
        let allocs_after_warmup = scratch.fresh_allocations();

        // Same seed through the warm scratch: bit-identical result, and the
        // pool is already warm so no new buffers are allocated.
        let mut reused = Vec::new();
        let mut rng2 = rng_for(13, 1);
        sgd.train_into(&model, &examples, &mut rng2, &mut scratch, &mut reused)
            .unwrap();
        for (a, b) in warm.iter().zip(reused.iter()) {
            assert_eq!(a.to_bits(), b.to_bits());
        }
        assert_eq!(
            scratch.fresh_allocations(),
            allocs_after_warmup,
            "steady-state training must not allocate fresh buffers"
        );
    }

    #[test]
    fn deterministic_given_seed() {
        let mut rng1 = rng_for(7, 0);
        let mut rng2 = rng_for(7, 0);
        let model = SoftmaxRegression::new(2, 2, &mut rng1);
        let model2 = SoftmaxRegression::new(2, 2, &mut rng2);
        let sgd = LocalSgd::new(LocalSgdConfig::default()).unwrap();
        let examples = separable_examples();
        let p1 = sgd.train(&model, &examples, &mut rng1).unwrap();
        let p2 = sgd.train(&model2, &examples, &mut rng2).unwrap();
        assert_eq!(p1, p2);
    }
}
