//! Models with hand-written gradients and the local (client-side) SGD
//! optimizer used by the federated simulation.
//!
//! The paper trains a 2-layer CNN for the image datasets and a 2-layer LSTM
//! for the text datasets. Per the substitution in `DESIGN.md`, this crate
//! provides CPU-sized stand-ins with the same role in the pipeline:
//!
//! - [`SoftmaxRegression`]: multinomial logistic regression on dense features.
//! - [`Mlp`]: a one-hidden-layer ReLU network on dense features (the default
//!   for the image-classification family).
//! - [`BigramLm`]: an embedding + softmax next-token model (the default for
//!   the language-modelling family).
//!
//! All models expose their parameters as a flat `Vec<f64>` so that the server
//! optimizers in `fedsim` (FedAvg / FedAdam) can treat model updates as plain
//! vectors, exactly as `ServerOPT` does in Algorithm 2 of the paper.
//! [`LocalSgd`] implements `ClientOPT`: mini-batch SGD with momentum, weight
//! decay, and a configurable batch size and epoch count — the client
//! hyperparameters tuned in the paper's search space (Appendix B).
//!
//! # Example
//!
//! ```
//! use feddata::Example;
//! use fedmodels::{Model, SoftmaxRegression};
//!
//! let mut rng = fedmath::rng::rng_for(0, 0);
//! let model = SoftmaxRegression::new(4, 3, &mut rng);
//! let examples = vec![Example::dense(vec![1.0, 0.0, 0.0, 0.0], 0)];
//! let error = model.error_rate(&examples).unwrap();
//! assert!((0.0..=1.0).contains(&error));
//! ```

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod bigram;
pub mod factory;
pub mod linear;
pub mod metrics;
pub mod mlp;
pub mod model;
pub mod sgd;

pub use bigram::BigramLm;
pub use factory::{AnyModel, ModelSpec};
pub use linear::SoftmaxRegression;
pub use metrics::EvalMetrics;
pub use mlp::Mlp;
pub use model::Model;
pub use sgd::{LocalSgd, LocalSgdConfig, SgdScratch};

use std::fmt;

/// Errors produced by model evaluation and training.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum ModelError {
    /// An example's input did not match what the model expects
    /// (wrong feature dimension, token id out of vocabulary, dense vs token).
    IncompatibleInput {
        /// Description of the mismatch.
        message: String,
    },
    /// A label or class index was out of range for the model's output size.
    LabelOutOfRange {
        /// The offending label.
        label: usize,
        /// Number of classes the model produces.
        num_classes: usize,
    },
    /// A batch or dataset passed to the model was empty.
    EmptyBatch,
    /// A parameter vector had the wrong length.
    ParamLengthMismatch {
        /// Expected number of parameters.
        expected: usize,
        /// Provided number of parameters.
        got: usize,
    },
    /// A hyperparameter was outside its valid range.
    InvalidHyperparameter {
        /// Description of the violation.
        message: String,
    },
    /// An underlying numerical routine failed.
    Math(fedmath::MathError),
}

impl fmt::Display for ModelError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ModelError::IncompatibleInput { message } => {
                write!(f, "incompatible input: {message}")
            }
            ModelError::LabelOutOfRange { label, num_classes } => {
                write!(f, "label {label} out of range for {num_classes} classes")
            }
            ModelError::EmptyBatch => write!(f, "empty batch"),
            ModelError::ParamLengthMismatch { expected, got } => {
                write!(
                    f,
                    "parameter vector length {got} does not match expected {expected}"
                )
            }
            ModelError::InvalidHyperparameter { message } => {
                write!(f, "invalid hyperparameter: {message}")
            }
            ModelError::Math(e) => write!(f, "math error: {e}"),
        }
    }
}

impl std::error::Error for ModelError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            ModelError::Math(e) => Some(e),
            _ => None,
        }
    }
}

impl From<fedmath::MathError> for ModelError {
    fn from(e: fedmath::MathError) -> Self {
        ModelError::Math(e)
    }
}

/// Convenience alias for results returned by this crate.
pub type Result<T> = std::result::Result<T, ModelError>;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn error_display_and_source() {
        use std::error::Error;
        let e = ModelError::LabelOutOfRange {
            label: 9,
            num_classes: 5,
        };
        assert!(e.to_string().contains('9'));
        assert!(e.source().is_none());
        let e: ModelError = fedmath::MathError::EmptyInput { what: "softmax" }.into();
        assert!(e.source().is_some());
        assert!(ModelError::EmptyBatch.to_string().contains("empty"));
        let e = ModelError::ParamLengthMismatch {
            expected: 10,
            got: 4,
        };
        assert!(e.to_string().contains("10"));
        let e = ModelError::InvalidHyperparameter {
            message: "lr".into(),
        };
        assert!(e.to_string().contains("lr"));
        let e = ModelError::IncompatibleInput {
            message: "dense".into(),
        };
        assert!(e.to_string().contains("dense"));
    }
}
