//! Evaluation metrics returned by models.

use serde::{Deserialize, Serialize};

/// Loss and error-rate summary for one evaluation pass.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct EvalMetrics {
    /// Mean cross-entropy loss.
    pub loss: f64,
    /// Fraction of misclassified examples (1 - accuracy), in `[0, 1]`.
    pub error_rate: f64,
    /// Number of examples evaluated.
    pub num_examples: usize,
}

impl EvalMetrics {
    /// Accuracy (`1 - error_rate`).
    pub fn accuracy(&self) -> f64 {
        1.0 - self.error_rate
    }

    /// Error rate as a percentage in `[0, 100]`, the unit used by every
    /// figure of the paper.
    pub fn error_percent(&self) -> f64 {
        self.error_rate * 100.0
    }

    /// Combines per-client metrics into an example-weighted aggregate.
    ///
    /// Returns `None` if `metrics` is empty or contains no examples.
    pub fn weighted_aggregate(metrics: &[EvalMetrics]) -> Option<EvalMetrics> {
        let total: usize = metrics.iter().map(|m| m.num_examples).sum();
        if total == 0 {
            return None;
        }
        let mut loss = 0.0;
        let mut error = 0.0;
        for m in metrics {
            let w = m.num_examples as f64 / total as f64;
            loss += w * m.loss;
            error += w * m.error_rate;
        }
        Some(EvalMetrics {
            loss,
            error_rate: error,
            num_examples: total,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn accuracy_and_percent() {
        let m = EvalMetrics {
            loss: 1.0,
            error_rate: 0.25,
            num_examples: 4,
        };
        assert_eq!(m.accuracy(), 0.75);
        assert_eq!(m.error_percent(), 25.0);
    }

    #[test]
    fn weighted_aggregate_weights_by_examples() {
        let a = EvalMetrics {
            loss: 1.0,
            error_rate: 0.0,
            num_examples: 1,
        };
        let b = EvalMetrics {
            loss: 2.0,
            error_rate: 1.0,
            num_examples: 3,
        };
        let agg = EvalMetrics::weighted_aggregate(&[a, b]).unwrap();
        assert_eq!(agg.num_examples, 4);
        assert!((agg.error_rate - 0.75).abs() < 1e-12);
        assert!((agg.loss - 1.75).abs() < 1e-12);
    }

    #[test]
    fn weighted_aggregate_empty_is_none() {
        assert!(EvalMetrics::weighted_aggregate(&[]).is_none());
        let zero = EvalMetrics {
            loss: 0.0,
            error_rate: 0.0,
            num_examples: 0,
        };
        assert!(EvalMetrics::weighted_aggregate(&[zero]).is_none());
    }
}
