//! The [`Model`] trait: flat-parameter models with hand-written gradients.

use crate::metrics::EvalMetrics;
use crate::{ModelError, Result};
use feddata::Example;
use fedmath::kernel::BufferPool;

/// A trainable model whose parameters are exposed as a flat vector.
///
/// Exposing parameters as `Vec<f64>` lets the federated server optimizers
/// (`ServerOPT` in Algorithm 2 — FedAvg, FedAdam, …) operate on model deltas
/// as plain vectors without knowing the model architecture, exactly as
/// aggregation servers do in practice.
///
/// Implementations must be deterministic: the same parameters and examples
/// always produce the same loss, gradient, and predictions.
pub trait Model: Clone + Send + Sync {
    /// Number of scalar parameters.
    fn num_params(&self) -> usize;

    /// Copies the parameters into a flat vector of length [`num_params`](Self::num_params).
    fn params(&self) -> Vec<f64>;

    /// Overwrites the parameters from a flat vector.
    ///
    /// # Errors
    ///
    /// Returns [`ModelError::ParamLengthMismatch`] if `params.len()` differs
    /// from [`num_params`](Self::num_params).
    fn set_params(&mut self, params: &[f64]) -> Result<()>;

    /// Number of output classes (vocabulary size for next-token models).
    fn num_classes(&self) -> usize;

    /// Computes the output logits for one example input.
    ///
    /// # Errors
    ///
    /// Returns [`ModelError::IncompatibleInput`] if the input kind or
    /// dimension does not match the model.
    fn logits(&self, input: &feddata::Input) -> Result<Vec<f64>>;

    /// Mean cross-entropy gradient over `examples`, as a flat vector aligned
    /// with [`params`](Self::params).
    ///
    /// # Errors
    ///
    /// Returns [`ModelError::EmptyBatch`] for an empty batch and propagates
    /// input/label mismatches.
    fn gradient(&self, examples: &[Example]) -> Result<Vec<f64>>;

    /// Copies the parameters into `out`, reusing its storage (no allocation
    /// once `out` has capacity for [`num_params`](Self::num_params) values).
    ///
    /// The default delegates to [`params`](Self::params); implementations
    /// override it to skip the intermediate vector.
    fn params_into(&self, out: &mut Vec<f64>) {
        let p = self.params();
        out.clear();
        out.extend_from_slice(&p);
    }

    /// Mean cross-entropy gradient over the minibatch
    /// `examples[order[0]], examples[order[1]], …`, written into `out`
    /// (reusing its storage) with scratch buffers drawn from `pool`.
    ///
    /// This is the allocation-free hot-path entry point used by
    /// [`crate::LocalSgd`]: `order` is a chunk of a shuffled index
    /// permutation, so the minibatch is described without cloning examples.
    ///
    /// # Contract
    ///
    /// The result must equal [`gradient`](Self::gradient) of the gathered
    /// minibatch. The built-in models override this with batched GEMM paths
    /// whose accumulation orders mirror the per-example loops, making the
    /// equality **bitwise** (asserted in their tests); the default simply
    /// gathers the minibatch and calls [`gradient`](Self::gradient).
    ///
    /// # Errors
    ///
    /// Returns [`ModelError::EmptyBatch`] if `order` is empty and propagates
    /// input/label mismatches.
    ///
    /// # Panics
    ///
    /// May panic if an index in `order` is out of bounds for `examples`.
    fn gradient_batch_into(
        &self,
        examples: &[Example],
        order: &[usize],
        pool: &mut BufferPool,
        out: &mut Vec<f64>,
    ) -> Result<()> {
        let _ = pool;
        if order.is_empty() {
            return Err(ModelError::EmptyBatch);
        }
        let batch: Vec<Example> = order.iter().map(|&i| examples[i].clone()).collect();
        let grad = self.gradient(&batch)?;
        out.clear();
        out.extend_from_slice(&grad);
        Ok(())
    }

    /// Mean cross-entropy loss over `examples`.
    ///
    /// # Errors
    ///
    /// Returns [`ModelError::EmptyBatch`] for an empty batch and propagates
    /// input/label mismatches.
    fn loss(&self, examples: &[Example]) -> Result<f64> {
        Ok(self.evaluate(examples)?.loss)
    }

    /// Classification error rate (1 - accuracy) over `examples`.
    ///
    /// # Errors
    ///
    /// Returns [`ModelError::EmptyBatch`] for an empty batch and propagates
    /// input/label mismatches.
    fn error_rate(&self, examples: &[Example]) -> Result<f64> {
        Ok(self.evaluate(examples)?.error_rate)
    }

    /// Predicted class (argmax of the logits) for one input.
    ///
    /// # Errors
    ///
    /// Propagates [`logits`](Self::logits) errors.
    fn predict(&self, input: &feddata::Input) -> Result<usize> {
        let logits = self.logits(input)?;
        fedmath::ops::predict_class(&logits).map_err(ModelError::from)
    }

    /// Evaluates loss and error rate over `examples` in one pass.
    ///
    /// # Errors
    ///
    /// Returns [`ModelError::EmptyBatch`] for an empty batch,
    /// [`ModelError::LabelOutOfRange`] for labels outside the output range,
    /// and propagates input mismatches.
    fn evaluate(&self, examples: &[Example]) -> Result<EvalMetrics> {
        if examples.is_empty() {
            return Err(ModelError::EmptyBatch);
        }
        let mut total_loss = 0.0;
        let mut errors = 0usize;
        for e in examples {
            if e.label >= self.num_classes() {
                return Err(ModelError::LabelOutOfRange {
                    label: e.label,
                    num_classes: self.num_classes(),
                });
            }
            let logits = self.logits(&e.input)?;
            total_loss += fedmath::ops::cross_entropy_from_logits(&logits, e.label)?;
            let pred = fedmath::ops::predict_class(&logits)?;
            if pred != e.label {
                errors += 1;
            }
        }
        Ok(EvalMetrics {
            loss: total_loss / examples.len() as f64,
            error_rate: errors as f64 / examples.len() as f64,
            num_examples: examples.len(),
        })
    }
}

/// Verifies an analytic gradient against central finite differences.
///
/// Testing helper shared by the model implementations: returns the maximum
/// absolute difference between the analytic gradient and the numerical
/// estimate over all parameters.
///
/// # Errors
///
/// Propagates model evaluation errors.
pub fn finite_difference_check<M: Model>(
    model: &M,
    examples: &[Example],
    epsilon: f64,
) -> Result<f64> {
    let analytic = model.gradient(examples)?;
    let base_params = model.params();
    let mut max_diff: f64 = 0.0;
    for i in 0..base_params.len() {
        let mut plus = model.clone();
        let mut params_plus = base_params.clone();
        params_plus[i] += epsilon;
        plus.set_params(&params_plus)?;

        let mut minus = model.clone();
        let mut params_minus = base_params.clone();
        params_minus[i] -= epsilon;
        minus.set_params(&params_minus)?;

        let numerical = (plus.loss(examples)? - minus.loss(examples)?) / (2.0 * epsilon);
        max_diff = max_diff.max((numerical - analytic[i]).abs());
    }
    Ok(max_diff)
}

#[cfg(test)]
mod tests {
    use super::*;
    use feddata::Input;

    /// Minimal hand-rolled model used to test the trait's default methods:
    /// a per-class bias vector (no inputs used).
    #[derive(Debug, Clone)]
    struct BiasOnly {
        biases: Vec<f64>,
    }

    impl Model for BiasOnly {
        fn num_params(&self) -> usize {
            self.biases.len()
        }
        fn params(&self) -> Vec<f64> {
            self.biases.clone()
        }
        fn set_params(&mut self, params: &[f64]) -> Result<()> {
            if params.len() != self.biases.len() {
                return Err(ModelError::ParamLengthMismatch {
                    expected: self.biases.len(),
                    got: params.len(),
                });
            }
            self.biases = params.to_vec();
            Ok(())
        }
        fn num_classes(&self) -> usize {
            self.biases.len()
        }
        fn logits(&self, _input: &Input) -> Result<Vec<f64>> {
            Ok(self.biases.clone())
        }
        fn gradient(&self, examples: &[Example]) -> Result<Vec<f64>> {
            if examples.is_empty() {
                return Err(ModelError::EmptyBatch);
            }
            let mut grad = vec![0.0; self.biases.len()];
            for e in examples {
                let probs = fedmath::ops::softmax(&self.biases);
                for (i, p) in probs.iter().enumerate() {
                    grad[i] += p - if i == e.label { 1.0 } else { 0.0 };
                }
            }
            for g in &mut grad {
                *g /= examples.len() as f64;
            }
            Ok(grad)
        }
    }

    fn examples() -> Vec<Example> {
        vec![
            Example::dense(vec![0.0], 0),
            Example::dense(vec![0.0], 1),
            Example::dense(vec![0.0], 1),
        ]
    }

    #[test]
    fn evaluate_computes_loss_and_error() {
        let model = BiasOnly {
            biases: vec![0.0, 1.0, -1.0],
        };
        let m = model.evaluate(&examples()).unwrap();
        assert_eq!(m.num_examples, 3);
        // Predicted class is always 1 (largest bias), so one of three is wrong.
        assert!((m.error_rate - 1.0 / 3.0).abs() < 1e-12);
        assert!(m.loss > 0.0);
    }

    #[test]
    fn evaluate_rejects_empty_and_bad_labels() {
        let model = BiasOnly {
            biases: vec![0.0, 0.0],
        };
        assert!(matches!(model.evaluate(&[]), Err(ModelError::EmptyBatch)));
        let bad = vec![Example::dense(vec![0.0], 5)];
        assert!(matches!(
            model.evaluate(&bad),
            Err(ModelError::LabelOutOfRange {
                label: 5,
                num_classes: 2
            })
        ));
    }

    #[test]
    fn default_loss_and_error_delegate_to_evaluate() {
        let model = BiasOnly {
            biases: vec![0.0, 0.0],
        };
        let ex = vec![Example::dense(vec![0.0], 0)];
        assert!((model.loss(&ex).unwrap() - 2.0f64.ln()).abs() < 1e-12);
        assert!(model.error_rate(&ex).unwrap() <= 1.0);
    }

    #[test]
    fn predict_returns_argmax() {
        let model = BiasOnly {
            biases: vec![0.0, 3.0, -1.0],
        };
        assert_eq!(model.predict(&Input::Dense(vec![0.0])).unwrap(), 1);
    }

    #[test]
    fn finite_difference_agrees_for_bias_model() {
        let model = BiasOnly {
            biases: vec![0.3, -0.2, 0.1],
        };
        let diff = finite_difference_check(&model, &examples(), 1e-5).unwrap();
        assert!(diff < 1e-6, "gradient check failed with max diff {diff}");
    }
}
