//! Offline vendor shim for the `serde` API surface used by this workspace.
//!
//! Because the build environment cannot reach crates.io, this crate provides
//! a minimal value-tree serialization framework compatible at the *source*
//! level with how the workspace uses serde: `#[derive(Serialize,
//! Deserialize)]` on non-generic structs and enums, plus
//! `serde_json::to_string_pretty` over the result.
//!
//! [`Serialize`] produces a [`Value`] tree that the `serde_json` shim renders
//! as real JSON (externally-tagged enums, like upstream serde's default).
//! [`Deserialize`] reverses the mapping: derived impls reconstruct structs by
//! field-name lookup (missing fields deserialize from [`Value::Null`], so
//! `Option` fields tolerate omission) and enums from the externally-tagged
//! encoding, which together with the `serde_json` parser gives full JSON
//! round-tripping.

use std::fmt;

// Let the derive-generated `::serde::...` paths resolve inside this crate's
// own tests (the same trick upstream serde uses).
extern crate self as serde;

pub use serde_derive::{Deserialize, Serialize};

/// Deserialization helpers, mirroring `serde::de`.
pub mod de {
    /// In upstream serde, `DeserializeOwned` is the lifetime-free form of
    /// `Deserialize`; the shim's `Deserialize` has no lifetime to begin with,
    /// so the two coincide.
    pub use crate::Deserialize as DeserializeOwned;
}

/// A serialized value tree (the shim's equivalent of `serde_json::Value`).
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// JSON `null`.
    Null,
    /// A boolean.
    Bool(bool),
    /// An unsigned integer.
    U64(u64),
    /// A signed integer.
    I64(i64),
    /// A floating-point number.
    F64(f64),
    /// A string.
    Str(String),
    /// An array.
    Seq(Vec<Value>),
    /// An object with insertion-ordered keys.
    Map(Vec<(String, Value)>),
}

/// Types that can be serialized into a [`Value`] tree.
pub trait Serialize {
    /// Serializes `self` into a value tree.
    fn to_value(&self) -> Value;
}

/// Types that can be deserialized from a [`Value`] tree.
pub trait Deserialize: Sized {
    /// Attempts to reconstruct `Self` from a value tree.
    ///
    /// # Errors
    ///
    /// Returns [`DeError`] when the tree does not encode a `Self`.
    fn from_value(value: &Value) -> Result<Self, DeError>;
}

/// Support routine for derived [`Deserialize`] impls: looks `name` up in a
/// struct's entry list and deserializes it, reporting `context.name` in
/// errors. Missing fields deserialize from [`Value::Null`] so that `Option`
/// fields tolerate omission while required fields produce a clear error.
///
/// # Errors
///
/// Propagates the field's deserialization error.
#[doc(hidden)]
pub fn __field<T: Deserialize>(
    entries: &[(String, Value)],
    name: &str,
    context: &str,
) -> Result<T, DeError> {
    match entries.iter().find(|(key, _)| key == name) {
        Some((_, value)) => {
            T::from_value(value).map_err(|e| DeError::new(format!("{context}.{name}: {e}")))
        }
        None => T::from_value(&Value::Null)
            .map_err(|_| DeError::new(format!("{context}: missing field {name}"))),
    }
}

/// Deserialization error.
#[derive(Debug, Clone)]
pub struct DeError {
    message: String,
}

impl DeError {
    /// Creates an error with the given message.
    pub fn new(message: impl Into<String>) -> Self {
        DeError {
            message: message.into(),
        }
    }
}

impl fmt::Display for DeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.message)
    }
}

impl std::error::Error for DeError {}

macro_rules! impl_serialize_uint {
    ($($ty:ty),*) => {$(
        impl Serialize for $ty {
            fn to_value(&self) -> Value {
                Value::U64(*self as u64)
            }
        }
        impl Deserialize for $ty {
            fn from_value(value: &Value) -> Result<Self, DeError> {
                match value {
                    Value::U64(v) => (*v).try_into().map_err(|_| {
                        DeError::new(format!(
                            "integer {v} out of range for {}",
                            stringify!($ty)
                        ))
                    }),
                    _ => Err(DeError::new("expected unsigned integer")),
                }
            }
        }
    )*};
}
impl_serialize_uint!(u8, u16, u32, u64, usize);

macro_rules! impl_serialize_int {
    ($($ty:ty),*) => {$(
        impl Serialize for $ty {
            fn to_value(&self) -> Value {
                Value::I64(*self as i64)
            }
        }
        impl Deserialize for $ty {
            fn from_value(value: &Value) -> Result<Self, DeError> {
                let out_of_range = |v: &dyn std::fmt::Display| {
                    DeError::new(format!("integer {v} out of range for {}", stringify!($ty)))
                };
                match value {
                    Value::I64(v) => (*v).try_into().map_err(|_| out_of_range(v)),
                    Value::U64(v) => (*v).try_into().map_err(|_| out_of_range(v)),
                    _ => Err(DeError::new("expected integer")),
                }
            }
        }
    )*};
}
impl_serialize_int!(i8, i16, i32, i64, isize);

macro_rules! impl_serialize_float {
    ($($ty:ty),*) => {$(
        impl Serialize for $ty {
            fn to_value(&self) -> Value {
                Value::F64(*self as f64)
            }
        }
        impl Deserialize for $ty {
            fn from_value(value: &Value) -> Result<Self, DeError> {
                match value {
                    Value::F64(v) => Ok(*v as $ty),
                    Value::U64(v) => Ok(*v as $ty),
                    Value::I64(v) => Ok(*v as $ty),
                    _ => Err(DeError::new("expected number")),
                }
            }
        }
    )*};
}
impl_serialize_float!(f32, f64);

impl Serialize for Value {
    fn to_value(&self) -> Value {
        self.clone()
    }
}

impl Deserialize for Value {
    fn from_value(value: &Value) -> Result<Self, DeError> {
        Ok(value.clone())
    }
}

impl Serialize for bool {
    fn to_value(&self) -> Value {
        Value::Bool(*self)
    }
}

impl Deserialize for bool {
    fn from_value(value: &Value) -> Result<Self, DeError> {
        match value {
            Value::Bool(b) => Ok(*b),
            _ => Err(DeError::new("expected bool")),
        }
    }
}

impl Serialize for String {
    fn to_value(&self) -> Value {
        Value::Str(self.clone())
    }
}

impl Deserialize for String {
    fn from_value(value: &Value) -> Result<Self, DeError> {
        match value {
            Value::Str(s) => Ok(s.clone()),
            _ => Err(DeError::new("expected string")),
        }
    }
}

impl Serialize for str {
    fn to_value(&self) -> Value {
        Value::Str(self.to_string())
    }
}

impl<T: Serialize + ?Sized> Serialize for &T {
    fn to_value(&self) -> Value {
        (**self).to_value()
    }
}

impl<T: Serialize> Serialize for Vec<T> {
    fn to_value(&self) -> Value {
        Value::Seq(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Deserialize> Deserialize for Vec<T> {
    fn from_value(value: &Value) -> Result<Self, DeError> {
        match value {
            Value::Seq(items) => items.iter().map(T::from_value).collect(),
            _ => Err(DeError::new("expected sequence")),
        }
    }
}

impl<T: Serialize> Serialize for [T] {
    fn to_value(&self) -> Value {
        Value::Seq(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Serialize> Serialize for Option<T> {
    fn to_value(&self) -> Value {
        match self {
            Some(v) => v.to_value(),
            None => Value::Null,
        }
    }
}

impl<T: Deserialize> Deserialize for Option<T> {
    fn from_value(value: &Value) -> Result<Self, DeError> {
        match value {
            Value::Null => Ok(None),
            other => T::from_value(other).map(Some),
        }
    }
}

impl<A: Serialize, B: Serialize> Serialize for (A, B) {
    fn to_value(&self) -> Value {
        Value::Seq(vec![self.0.to_value(), self.1.to_value()])
    }
}

impl<A: Deserialize, B: Deserialize> Deserialize for (A, B) {
    fn from_value(value: &Value) -> Result<Self, DeError> {
        match value {
            Value::Seq(items) if items.len() == 2 => {
                Ok((A::from_value(&items[0])?, B::from_value(&items[1])?))
            }
            _ => Err(DeError::new("expected a 2-element sequence")),
        }
    }
}

impl<A: Deserialize, B: Deserialize, C: Deserialize> Deserialize for (A, B, C) {
    fn from_value(value: &Value) -> Result<Self, DeError> {
        match value {
            Value::Seq(items) if items.len() == 3 => Ok((
                A::from_value(&items[0])?,
                B::from_value(&items[1])?,
                C::from_value(&items[2])?,
            )),
            _ => Err(DeError::new("expected a 3-element sequence")),
        }
    }
}

impl<A: Serialize, B: Serialize, C: Serialize> Serialize for (A, B, C) {
    fn to_value(&self) -> Value {
        Value::Seq(vec![
            self.0.to_value(),
            self.1.to_value(),
            self.2.to_value(),
        ])
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[derive(Debug, Serialize, Deserialize)]
    struct Point {
        x: f64,
        label: String,
        tags: Vec<u64>,
    }

    #[derive(Serialize, Deserialize)]
    enum Kind {
        Unit,
        Newtype(u64),
        Pair(u64, bool),
        Named { a: f64, b: String },
    }

    #[test]
    fn derived_struct_serializes_fields_in_order() {
        let p = Point {
            x: 0.5,
            label: "hi".into(),
            tags: vec![1, 2],
        };
        let v = p.to_value();
        match v {
            Value::Map(entries) => {
                assert_eq!(entries[0].0, "x");
                assert_eq!(entries[0].1, Value::F64(0.5));
                assert_eq!(entries[1].0, "label");
                assert_eq!(entries[2].1, Value::Seq(vec![Value::U64(1), Value::U64(2)]));
            }
            other => panic!("expected map, got {other:?}"),
        }
    }

    #[test]
    fn derived_enum_uses_external_tagging() {
        assert_eq!(Kind::Unit.to_value(), Value::Str("Unit".into()));
        assert_eq!(
            Kind::Newtype(7).to_value(),
            Value::Map(vec![("Newtype".into(), Value::U64(7))])
        );
        match Kind::Pair(1, true).to_value() {
            Value::Map(entries) => {
                assert_eq!(entries[0].0, "Pair");
                assert_eq!(
                    entries[0].1,
                    Value::Seq(vec![Value::U64(1), Value::Bool(true)])
                );
            }
            other => panic!("expected map, got {other:?}"),
        }
        match (Kind::Named {
            a: 1.0,
            b: "x".into(),
        })
        .to_value()
        {
            Value::Map(entries) => match &entries[0].1 {
                Value::Map(inner) => {
                    assert_eq!(inner[0].0, "a");
                    assert_eq!(inner[1].0, "b");
                }
                other => panic!("expected inner map, got {other:?}"),
            },
            other => panic!("expected map, got {other:?}"),
        }
    }

    #[test]
    fn derived_struct_round_trips() {
        let p = Point {
            x: 0.5,
            label: "hi".into(),
            tags: vec![1, 2],
        };
        let back = Point::from_value(&p.to_value()).unwrap();
        assert_eq!(back.x, 0.5);
        assert_eq!(back.label, "hi");
        assert_eq!(back.tags, vec![1, 2]);
        // Missing required fields are a clear error; wrong shapes too.
        let err = Point::from_value(&Value::Map(vec![])).unwrap_err();
        assert!(err.to_string().contains("missing field"), "{err}");
        assert!(Point::from_value(&Value::Null).is_err());
    }

    #[derive(Debug, PartialEq, Serialize, Deserialize)]
    struct Sparse {
        required: u64,
        optional: Option<f64>,
    }

    #[test]
    fn optional_fields_tolerate_omission() {
        let sparse =
            Sparse::from_value(&Value::Map(vec![("required".into(), Value::U64(3))])).unwrap();
        assert_eq!(
            sparse,
            Sparse {
                required: 3,
                optional: None
            }
        );
    }

    #[test]
    fn derived_enum_round_trips() {
        for kind in [
            Kind::Unit,
            Kind::Newtype(7),
            Kind::Pair(1, true),
            Kind::Named {
                a: 2.5,
                b: "x".into(),
            },
        ] {
            let back = Kind::from_value(&kind.to_value()).unwrap();
            assert!(
                matches!(
                    (&kind, &back),
                    (Kind::Unit, Kind::Unit)
                        | (Kind::Newtype(_), Kind::Newtype(_))
                        | (Kind::Pair(..), Kind::Pair(..))
                        | (Kind::Named { .. }, Kind::Named { .. })
                ),
                "variant changed across the round trip"
            );
        }
        assert!(Kind::from_value(&Value::Str("Nope".into())).is_err());
        assert!(Kind::from_value(&Value::U64(1)).is_err());
    }

    #[test]
    fn narrowing_integer_conversions_are_range_checked() {
        assert_eq!(u8::from_value(&Value::U64(255)).unwrap(), 255);
        assert!(u8::from_value(&Value::U64(300)).is_err());
        assert!(i64::from_value(&Value::U64(u64::MAX)).is_err());
        assert_eq!(
            i64::from_value(&Value::U64(i64::MAX as u64)).unwrap(),
            i64::MAX
        );
        assert!(i8::from_value(&Value::I64(-200)).is_err());
        assert!(u64::from_value(&Value::U64(u64::MAX)).is_ok());
    }

    #[test]
    fn tuples_round_trip() {
        let pair = (1u64, "a".to_string());
        assert_eq!(<(u64, String)>::from_value(&pair.to_value()).unwrap(), pair);
        let triple = (1u64, 2i64, 0.5f64);
        assert_eq!(
            <(u64, i64, f64)>::from_value(&triple.to_value()).unwrap(),
            triple
        );
        assert!(<(u64, u64)>::from_value(&Value::Seq(vec![Value::U64(1)])).is_err());
    }

    #[test]
    fn option_round_trips_null() {
        let none: Option<u64> = None;
        assert_eq!(none.to_value(), Value::Null);
        assert_eq!(Option::<u64>::from_value(&Value::Null).unwrap(), None);
        assert_eq!(Option::<u64>::from_value(&Value::U64(3)).unwrap(), Some(3));
    }
}
