//! Offline vendor shim for the `serde_json` API surface used by this
//! workspace: [`to_string`] / [`to_string_pretty`] / [`to_writer`] over the
//! minimal serde's [`serde::Value`] tree, and the reverse direction —
//! [`from_str`] parses JSON text back into a value tree and reconstructs any
//! [`serde::Deserialize`] type from it. Output matches `serde_json`'s
//! formatting conventions (2-space indent, `"key": value`, externally-tagged
//! enums), and finite floats round-trip bit-exactly because Rust's shortest
//! float formatting is re-parsed to the identical `f64`.
//!
//! Hot serialization paths can avoid per-call allocations: [`to_string_into`]
//! appends to a caller-owned (reusable) `String`, [`to_writer`] streams to any
//! `std::io::Write` without building an intermediate output string, and the
//! [`write_f64`] / [`write_escaped`] primitives let callers hand-encode a
//! fixed shape with the exact same number/string formatting the tree writer
//! uses.

use serde::{Deserialize, Serialize, Value};
use std::fmt;

/// Serialization error (non-finite floats, like upstream `serde_json`).
#[derive(Debug, Clone)]
pub struct Error {
    message: String,
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.message)
    }
}

impl std::error::Error for Error {}

/// Convenience alias matching `serde_json::Result`.
pub type Result<T> = std::result::Result<T, Error>;

fn non_finite_error() -> Error {
    Error {
        message: "cannot serialize non-finite float".into(),
    }
}

fn sink_error() -> Error {
    Error {
        message: "failed to write JSON to the underlying sink".into(),
    }
}

/// Appends the JSON string literal for `s` (quotes and escapes included) to
/// any `fmt::Write` sink. All escaped bytes are ASCII, so clean runs between
/// escapes are copied in bulk.
fn escape_fmt<W: fmt::Write>(out: &mut W, s: &str) -> fmt::Result {
    out.write_char('"')?;
    let mut start = 0;
    for (i, &b) in s.as_bytes().iter().enumerate() {
        let escape = match b {
            b'"' => "\\\"",
            b'\\' => "\\\\",
            b'\n' => "\\n",
            b'\r' => "\\r",
            b'\t' => "\\t",
            b if b < 0x20 => "",
            _ => continue,
        };
        out.write_str(&s[start..i])?;
        if escape.is_empty() {
            write!(out, "\\u{:04x}", b)?;
        } else {
            out.write_str(escape)?;
        }
        start = i + 1;
    }
    out.write_str(&s[start..])?;
    out.write_char('"')
}

/// Writes `value` with the shim's float formatting: integral values render
/// with a forced `.0` (matching upstream `serde_json`), everything else uses
/// Rust's shortest round-trippable formatting.
fn f64_fmt<W: fmt::Write>(out: &mut W, value: f64) -> Result<()> {
    if !value.is_finite() {
        return Err(non_finite_error());
    }
    if value == value.trunc() && value.abs() < 1e15 {
        write!(out, "{value:.1}").map_err(|_| sink_error())
    } else {
        write!(out, "{value}").map_err(|_| sink_error())
    }
}

fn write_value_fmt<W: fmt::Write>(out: &mut W, value: &Value, indent: Option<usize>) -> Result<()> {
    let sink = |_: fmt::Error| sink_error();
    match value {
        Value::Null => out.write_str("null").map_err(sink)?,
        Value::Bool(b) => out
            .write_str(if *b { "true" } else { "false" })
            .map_err(sink)?,
        Value::U64(v) => write!(out, "{v}").map_err(sink)?,
        Value::I64(v) => write!(out, "{v}").map_err(sink)?,
        Value::F64(v) => f64_fmt(out, *v)?,
        Value::Str(s) => escape_fmt(out, s).map_err(sink)?,
        Value::Seq(items) => {
            if items.is_empty() {
                out.write_str("[]").map_err(sink)?;
                return Ok(());
            }
            out.write_char('[').map_err(sink)?;
            for (i, item) in items.iter().enumerate() {
                if i > 0 {
                    out.write_char(',').map_err(sink)?;
                }
                match indent {
                    Some(level) => {
                        indent_line(out, level + 1).map_err(sink)?;
                        write_value_fmt(out, item, Some(level + 1))?;
                    }
                    None => write_value_fmt(out, item, None)?,
                }
            }
            if let Some(level) = indent {
                indent_line(out, level).map_err(sink)?;
            }
            out.write_char(']').map_err(sink)?;
        }
        Value::Map(entries) => {
            if entries.is_empty() {
                out.write_str("{}").map_err(sink)?;
                return Ok(());
            }
            out.write_char('{').map_err(sink)?;
            for (i, (key, item)) in entries.iter().enumerate() {
                if i > 0 {
                    out.write_char(',').map_err(sink)?;
                }
                match indent {
                    Some(level) => {
                        indent_line(out, level + 1).map_err(sink)?;
                        escape_fmt(out, key).map_err(sink)?;
                        out.write_str(": ").map_err(sink)?;
                        write_value_fmt(out, item, Some(level + 1))?;
                    }
                    None => {
                        escape_fmt(out, key).map_err(sink)?;
                        out.write_char(':').map_err(sink)?;
                        write_value_fmt(out, item, None)?;
                    }
                }
            }
            if let Some(level) = indent {
                indent_line(out, level).map_err(sink)?;
            }
            out.write_char('}').map_err(sink)?;
        }
    }
    Ok(())
}

fn indent_line<W: fmt::Write>(out: &mut W, level: usize) -> fmt::Result {
    out.write_char('\n')?;
    for _ in 0..level {
        out.write_str("  ")?;
    }
    Ok(())
}

/// Adapts an `io::Write` into a `fmt::Write`, stashing the first I/O error so
/// [`to_writer`] can report it instead of the opaque `fmt::Error`.
struct IoSink<W: std::io::Write> {
    writer: W,
    error: Option<std::io::Error>,
}

impl<W: std::io::Write> fmt::Write for IoSink<W> {
    fn write_str(&mut self, s: &str) -> fmt::Result {
        self.writer.write_all(s.as_bytes()).map_err(|e| {
            self.error.get_or_insert(e);
            fmt::Error
        })
    }
}

/// Serializes `value` as compact JSON.
///
/// # Errors
///
/// Fails on non-finite floats.
pub fn to_string<T: Serialize>(value: &T) -> Result<String> {
    let mut out = String::new();
    to_string_into(&mut out, value)?;
    Ok(out)
}

/// Appends `value` as compact JSON to `out`, allocating nothing beyond what
/// `out` itself needs to grow — the reusable-buffer twin of [`to_string`].
/// The buffer is appended to, not cleared; callers reusing it across records
/// clear it themselves.
///
/// # Errors
///
/// Fails on non-finite floats.
pub fn to_string_into<T: Serialize>(out: &mut String, value: &T) -> Result<()> {
    write_value_fmt(out, &value.to_value(), None)
}

/// Serializes `value` as compact JSON directly into `writer` without building
/// an intermediate output string (upstream's `serde_json::to_writer`).
///
/// # Errors
///
/// Fails on non-finite floats and on I/O errors from `writer`.
pub fn to_writer<W: std::io::Write, T: Serialize>(writer: W, value: &T) -> Result<()> {
    let mut sink = IoSink {
        writer,
        error: None,
    };
    write_value_fmt(&mut sink, &value.to_value(), None).map_err(|e| match sink.error.take() {
        Some(io) => Error {
            message: format!("io error: {io}"),
        },
        None => e,
    })
}

/// Serializes `value` as pretty-printed JSON with a 2-space indent.
///
/// # Errors
///
/// Fails on non-finite floats.
pub fn to_string_pretty<T: Serialize>(value: &T) -> Result<String> {
    let mut out = String::new();
    write_value_fmt(&mut out, &value.to_value(), Some(0))?;
    Ok(out)
}

/// Appends the JSON encoding of `value` to `out` using the exact float
/// formatting [`to_string`] uses, so hand-rolled encoders stay byte-identical
/// to the tree writer.
///
/// # Errors
///
/// Fails on non-finite floats.
pub fn write_f64(out: &mut String, value: f64) -> Result<()> {
    f64_fmt(out, value)
}

/// Appends the JSON string literal for `s` (quotes and escapes included) to
/// `out` — the primitive behind [`to_string`]'s string rendering, exposed for
/// hand-rolled fixed-shape encoders.
pub fn write_escaped(out: &mut String, s: &str) {
    // Writing into a String is infallible.
    let _ = escape_fmt(out, s);
}

/// Serializes `value` into a [`Value`] tree (upstream's `serde_json::to_value`
/// modulo the shim's unified value type).
pub fn to_value<T: Serialize>(value: &T) -> Value {
    value.to_value()
}

/// Reconstructs a `T` from a [`Value`] tree.
///
/// # Errors
///
/// Fails when the tree does not encode a `T`.
pub fn from_value<T: Deserialize>(value: &Value) -> Result<T> {
    T::from_value(value).map_err(|e| Error {
        message: e.to_string(),
    })
}

/// Parses JSON text and reconstructs a `T` from it.
///
/// # Errors
///
/// Fails on malformed JSON, trailing content, or a tree that does not encode
/// a `T`.
pub fn from_str<T: Deserialize>(input: &str) -> Result<T> {
    from_value(&parse_str(input)?)
}

/// Parses JSON text into a [`Value`] tree.
///
/// Numbers without a fraction or exponent parse as `U64` (or `I64` when
/// negative), everything else as `F64` — mirroring how [`to_string`] renders
/// the three numeric variants, so value trees round-trip through text.
///
/// # Errors
///
/// Fails on malformed JSON or trailing content.
pub fn parse_str(input: &str) -> Result<Value> {
    let mut parser = Parser {
        bytes: input.as_bytes(),
        pos: 0,
        depth: 0,
    };
    parser.skip_whitespace();
    let value = parser.parse_value()?;
    parser.skip_whitespace();
    if parser.pos != parser.bytes.len() {
        return Err(parser.error("trailing content after the JSON value"));
    }
    Ok(value)
}

/// Maximum container nesting the parser accepts (upstream `serde_json`
/// bounds recursion the same way so malformed input returns an error instead
/// of overflowing the stack).
const MAX_PARSE_DEPTH: usize = 128;

/// A hand-rolled recursive-descent JSON parser over the input bytes.
struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
    depth: usize,
}

impl Parser<'_> {
    fn error(&self, message: &str) -> Error {
        Error {
            message: format!("{message} at byte {}", self.pos),
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn skip_whitespace(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn expect(&mut self, byte: u8) -> Result<()> {
        if self.peek() == Some(byte) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.error(&format!("expected `{}`", byte as char)))
        }
    }

    /// Consumes a literal keyword (`null`, `true`, `false`).
    fn expect_keyword(&mut self, keyword: &str) -> Result<()> {
        if self.bytes[self.pos..].starts_with(keyword.as_bytes()) {
            self.pos += keyword.len();
            Ok(())
        } else {
            Err(self.error(&format!("expected `{keyword}`")))
        }
    }

    fn parse_value(&mut self) -> Result<Value> {
        match self.peek() {
            Some(b'n') => self.expect_keyword("null").map(|()| Value::Null),
            Some(b't') => self.expect_keyword("true").map(|()| Value::Bool(true)),
            Some(b'f') => self.expect_keyword("false").map(|()| Value::Bool(false)),
            Some(b'"') => self.parse_string().map(Value::Str),
            Some(b'[') => self.parse_array(),
            Some(b'{') => self.parse_object(),
            Some(b'-' | b'0'..=b'9') => self.parse_number(),
            _ => Err(self.error("expected a JSON value")),
        }
    }

    fn enter(&mut self) -> Result<()> {
        self.depth += 1;
        if self.depth > MAX_PARSE_DEPTH {
            return Err(self.error("nesting exceeds the maximum parse depth"));
        }
        Ok(())
    }

    fn parse_array(&mut self) -> Result<Value> {
        self.enter()?;
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_whitespace();
        if self.peek() == Some(b']') {
            self.pos += 1;
            self.depth -= 1;
            return Ok(Value::Seq(items));
        }
        loop {
            self.skip_whitespace();
            items.push(self.parse_value()?);
            self.skip_whitespace();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    self.depth -= 1;
                    return Ok(Value::Seq(items));
                }
                _ => return Err(self.error("expected `,` or `]` in array")),
            }
        }
    }

    fn parse_object(&mut self) -> Result<Value> {
        self.enter()?;
        self.expect(b'{')?;
        let mut entries = Vec::new();
        self.skip_whitespace();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            self.depth -= 1;
            return Ok(Value::Map(entries));
        }
        loop {
            self.skip_whitespace();
            let key = self.parse_string()?;
            self.skip_whitespace();
            self.expect(b':')?;
            self.skip_whitespace();
            let value = self.parse_value()?;
            entries.push((key, value));
            self.skip_whitespace();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    self.depth -= 1;
                    return Ok(Value::Map(entries));
                }
                _ => return Err(self.error("expected `,` or `}` in object")),
            }
        }
    }

    fn parse_hex4(&mut self) -> Result<u16> {
        let end = self.pos + 4;
        let digits = self
            .bytes
            .get(self.pos..end)
            .and_then(|s| std::str::from_utf8(s).ok())
            .ok_or_else(|| self.error("truncated \\u escape"))?;
        let code = u16::from_str_radix(digits, 16).map_err(|_| self.error("invalid \\u escape"))?;
        self.pos = end;
        Ok(code)
    }

    fn parse_string(&mut self) -> Result<String> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            let start = self.pos;
            while matches!(self.peek(), Some(c) if c != b'"' && c != b'\\' && c >= 0x20) {
                self.pos += 1;
            }
            out.push_str(
                std::str::from_utf8(&self.bytes[start..self.pos])
                    .map_err(|_| self.error("invalid UTF-8 in string"))?,
            );
            match self.peek() {
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        Some(b'b') => out.push('\u{0008}'),
                        Some(b'f') => out.push('\u{000C}'),
                        Some(b'u') => {
                            self.pos += 1;
                            let high = self.parse_hex4()?;
                            let c = if (0xD800..0xDC00).contains(&high) {
                                // Surrogate pair: a second \uXXXX must follow.
                                self.expect(b'\\')?;
                                self.expect(b'u')?;
                                let low = self.parse_hex4()?;
                                let combined = 0x10000
                                    + ((u32::from(high) - 0xD800) << 10)
                                    + (u32::from(low).wrapping_sub(0xDC00));
                                char::from_u32(combined)
                                    .ok_or_else(|| self.error("invalid surrogate pair"))?
                            } else {
                                char::from_u32(u32::from(high))
                                    .ok_or_else(|| self.error("invalid \\u escape"))?
                            };
                            out.push(c);
                            continue;
                        }
                        _ => return Err(self.error("invalid escape sequence")),
                    }
                    self.pos += 1;
                }
                _ => return Err(self.error("unterminated string")),
            }
        }
    }

    fn parse_number(&mut self) -> Result<Value> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        let mut fractional = false;
        while let Some(c) = self.peek() {
            match c {
                b'0'..=b'9' => self.pos += 1,
                b'.' | b'e' | b'E' | b'+' | b'-' => {
                    fractional = true;
                    self.pos += 1;
                }
                _ => break,
            }
        }
        let text =
            std::str::from_utf8(&self.bytes[start..self.pos]).expect("number bytes are ASCII");
        if !fractional {
            // Integer: keep the exact variant `to_string` would have written.
            if let Some(rest) = text.strip_prefix('-') {
                if rest.parse::<u64>().is_ok() {
                    if let Ok(v) = text.parse::<i64>() {
                        return Ok(Value::I64(v));
                    }
                }
            } else if let Ok(v) = text.parse::<u64>() {
                return Ok(Value::U64(v));
            }
        }
        text.parse::<f64>()
            .map(Value::F64)
            .map_err(|_| self.error("invalid number"))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    struct Report;

    impl Serialize for Report {
        fn to_value(&self) -> Value {
            Value::Map(vec![
                ("id".into(), Value::Str("fig3".into())),
                (
                    "points".into(),
                    Value::Seq(vec![Value::F64(0.5), Value::U64(2)]),
                ),
                ("empty".into(), Value::Seq(vec![])),
                ("note".into(), Value::Null),
            ])
        }
    }

    #[test]
    fn pretty_output_matches_serde_json_conventions() {
        let json = to_string_pretty(&Report).unwrap();
        assert!(json.contains("\"id\": \"fig3\""));
        assert!(json.starts_with("{\n  \"id\""));
        assert!(json.contains("\"empty\": []"));
        assert!(json.ends_with('}'));
    }

    #[test]
    fn compact_output_has_no_whitespace() {
        let json = to_string(&Report).unwrap();
        assert!(json.contains("\"id\":\"fig3\""));
        assert!(!json.contains('\n'));
    }

    #[test]
    fn floats_render_like_serde_json() {
        assert_eq!(to_string(&1.0f64).unwrap(), "1.0");
        assert_eq!(to_string(&0.5f64).unwrap(), "0.5");
        assert_eq!(to_string(&3usize).unwrap(), "3");
        assert!(to_string(&f64::NAN).is_err());
    }

    #[test]
    fn strings_are_escaped() {
        assert_eq!(to_string(&"a\"b\n".to_string()).unwrap(), "\"a\\\"b\\n\"");
        assert_eq!(
            to_string(&"ctrl\u{0001}é".to_string()).unwrap(),
            "\"ctrl\\u0001é\""
        );
    }

    #[test]
    fn to_writer_and_to_string_into_match_to_string() {
        let value = Report.to_value();
        let expected = to_string(&value).unwrap();
        // Streaming into an io::Write produces the same bytes.
        let mut bytes = Vec::new();
        to_writer(&mut bytes, &value).unwrap();
        assert_eq!(String::from_utf8(bytes).unwrap(), expected);
        // Appending into a reused String produces the same bytes, twice over.
        let mut buf = String::from("prefix:");
        to_string_into(&mut buf, &value).unwrap();
        assert_eq!(buf, format!("prefix:{expected}"));
        buf.clear();
        to_string_into(&mut buf, &value).unwrap();
        assert_eq!(buf, expected);
        // Non-finite floats fail every entry point the same way.
        assert!(to_writer(&mut Vec::new(), &f64::NAN).is_err());
        assert!(to_string_into(&mut String::new(), &f64::NAN).is_err());
    }

    #[test]
    fn to_writer_surfaces_io_errors() {
        struct Broken;
        impl std::io::Write for Broken {
            fn write(&mut self, _: &[u8]) -> std::io::Result<usize> {
                Err(std::io::Error::other("disk full"))
            }
            fn flush(&mut self) -> std::io::Result<()> {
                Ok(())
            }
        }
        let err = to_writer(Broken, &Report.to_value()).unwrap_err();
        assert!(err.to_string().contains("disk full"), "{err}");
    }

    #[test]
    fn primitive_writers_match_the_tree_writer() {
        for v in [1.0, 0.5, -0.0, 1e-300, 5e15, f64::MAX] {
            let mut buf = String::new();
            write_f64(&mut buf, v).unwrap();
            assert_eq!(buf, to_string(&v).unwrap(), "{v}");
        }
        assert!(write_f64(&mut String::new(), f64::INFINITY).is_err());
        for s in ["plain", "a\"b\\c\n\r\t", "ctrl\u{0002}", "uni — é"] {
            let mut buf = String::new();
            write_escaped(&mut buf, s);
            assert_eq!(buf, to_string(&s.to_string()).unwrap(), "{s:?}");
        }
    }

    #[test]
    fn parser_round_trips_value_trees() {
        let value = Report.to_value();
        let json = to_string(&value).unwrap();
        assert_eq!(parse_str(&json).unwrap(), value);
        let pretty = to_string_pretty(&value).unwrap();
        assert_eq!(parse_str(&pretty).unwrap(), value);
    }

    #[test]
    fn parser_classifies_numbers_like_the_writer() {
        assert_eq!(parse_str("3").unwrap(), Value::U64(3));
        assert_eq!(parse_str("-3").unwrap(), Value::I64(-3));
        assert_eq!(parse_str("3.5").unwrap(), Value::F64(3.5));
        assert_eq!(parse_str("1.0").unwrap(), Value::F64(1.0));
        assert_eq!(parse_str("1e3").unwrap(), Value::F64(1000.0));
        assert_eq!(
            parse_str("18446744073709551615").unwrap(),
            Value::U64(u64::MAX)
        );
        // i64 underflow falls back to the float it actually is.
        assert!(matches!(
            parse_str("-18446744073709551615").unwrap(),
            Value::F64(_)
        ));
    }

    #[test]
    fn finite_floats_round_trip_bit_exactly() {
        for v in [0.1, 1.0 / 3.0, 1e-300, -0.0f64, 5e15, f64::MAX] {
            let json = to_string(&v).unwrap();
            let back: f64 = from_str(&json).unwrap();
            assert_eq!(back.to_bits(), v.to_bits(), "{json}");
        }
    }

    #[test]
    fn parser_handles_strings_and_escapes() {
        assert_eq!(
            parse_str("\"a\\\"b\\n\\u0041\\u00e9\"").unwrap(),
            Value::Str("a\"b\nAé".into())
        );
        // Surrogate pair for 𝄞 (U+1D11E).
        assert_eq!(
            parse_str("\"\\ud834\\udd1e\"").unwrap(),
            Value::Str("𝄞".into())
        );
        let unicode = "héllo — ≤ ümlaut".to_string();
        let back: String = from_str(&to_string(&unicode).unwrap()).unwrap();
        assert_eq!(back, unicode);
    }

    #[test]
    fn parser_rejects_malformed_input() {
        for bad in [
            "", "{", "[1,", "{\"a\":}", "truth", "\"open", "1 2", "{'a':1}", "nul", "\"\\q\"",
            "[1 2]",
        ] {
            assert!(parse_str(bad).is_err(), "accepted {bad:?}");
        }
    }

    #[test]
    fn parser_bounds_nesting_depth() {
        // Pathological nesting must error, not overflow the stack.
        let deep = "[".repeat(100_000);
        let err = parse_str(&deep).unwrap_err();
        assert!(err.to_string().contains("parse depth"), "{err}");
        // Nesting at the limit still parses.
        let ok = format!("{}1{}", "[".repeat(128), "]".repeat(128));
        assert!(parse_str(&ok).is_ok());
        assert!(parse_str(&format!("{}1{}", "[".repeat(129), "]".repeat(129))).is_err());
    }

    #[test]
    fn from_str_reconstructs_types() {
        let v: Vec<f64> = from_str("[1.5, 2.5]").unwrap();
        assert_eq!(v, vec![1.5, 2.5]);
        let opt: Option<u64> = from_str("null").unwrap();
        assert_eq!(opt, None);
        assert!(from_str::<Vec<u64>>("{\"a\":1}").is_err());
    }
}
