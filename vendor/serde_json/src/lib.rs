//! Offline vendor shim for the `serde_json` API surface used by this
//! workspace: [`to_string`] and [`to_string_pretty`] over the minimal serde's
//! [`serde::Value`] tree. Output matches `serde_json`'s formatting
//! conventions (2-space indent, `"key": value`, externally-tagged enums).

use serde::{Serialize, Value};
use std::fmt;

/// Serialization error (non-finite floats, like upstream `serde_json`).
#[derive(Debug, Clone)]
pub struct Error {
    message: String,
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.message)
    }
}

impl std::error::Error for Error {}

/// Convenience alias matching `serde_json::Result`.
pub type Result<T> = std::result::Result<T, Error>;

fn escape_into(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

fn format_f64(value: f64) -> Result<String> {
    if !value.is_finite() {
        return Err(Error {
            message: "cannot serialize non-finite float".into(),
        });
    }
    if value == value.trunc() && value.abs() < 1e15 {
        Ok(format!("{value:.1}"))
    } else {
        Ok(format!("{value}"))
    }
}

fn write_value(out: &mut String, value: &Value, indent: Option<usize>) -> Result<()> {
    match value {
        Value::Null => out.push_str("null"),
        Value::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
        Value::U64(v) => out.push_str(&v.to_string()),
        Value::I64(v) => out.push_str(&v.to_string()),
        Value::F64(v) => out.push_str(&format_f64(*v)?),
        Value::Str(s) => escape_into(out, s),
        Value::Seq(items) => {
            if items.is_empty() {
                out.push_str("[]");
                return Ok(());
            }
            out.push('[');
            for (i, item) in items.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                match indent {
                    Some(level) => {
                        out.push('\n');
                        out.push_str(&"  ".repeat(level + 1));
                        write_value(out, item, Some(level + 1))?;
                    }
                    None => write_value(out, item, None)?,
                }
            }
            if let Some(level) = indent {
                out.push('\n');
                out.push_str(&"  ".repeat(level));
            }
            out.push(']');
        }
        Value::Map(entries) => {
            if entries.is_empty() {
                out.push_str("{}");
                return Ok(());
            }
            out.push('{');
            for (i, (key, item)) in entries.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                match indent {
                    Some(level) => {
                        out.push('\n');
                        out.push_str(&"  ".repeat(level + 1));
                        escape_into(out, key);
                        out.push_str(": ");
                        write_value(out, item, Some(level + 1))?;
                    }
                    None => {
                        escape_into(out, key);
                        out.push(':');
                        write_value(out, item, None)?;
                    }
                }
            }
            if let Some(level) = indent {
                out.push('\n');
                out.push_str(&"  ".repeat(level));
            }
            out.push('}');
        }
    }
    Ok(())
}

/// Serializes `value` as compact JSON.
///
/// # Errors
///
/// Fails on non-finite floats.
pub fn to_string<T: Serialize>(value: &T) -> Result<String> {
    let mut out = String::new();
    write_value(&mut out, &value.to_value(), None)?;
    Ok(out)
}

/// Serializes `value` as pretty-printed JSON with a 2-space indent.
///
/// # Errors
///
/// Fails on non-finite floats.
pub fn to_string_pretty<T: Serialize>(value: &T) -> Result<String> {
    let mut out = String::new();
    write_value(&mut out, &value.to_value(), Some(0))?;
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    struct Report;

    impl Serialize for Report {
        fn to_value(&self) -> Value {
            Value::Map(vec![
                ("id".into(), Value::Str("fig3".into())),
                (
                    "points".into(),
                    Value::Seq(vec![Value::F64(0.5), Value::U64(2)]),
                ),
                ("empty".into(), Value::Seq(vec![])),
                ("note".into(), Value::Null),
            ])
        }
    }

    #[test]
    fn pretty_output_matches_serde_json_conventions() {
        let json = to_string_pretty(&Report).unwrap();
        assert!(json.contains("\"id\": \"fig3\""));
        assert!(json.starts_with("{\n  \"id\""));
        assert!(json.contains("\"empty\": []"));
        assert!(json.ends_with('}'));
    }

    #[test]
    fn compact_output_has_no_whitespace() {
        let json = to_string(&Report).unwrap();
        assert!(json.contains("\"id\":\"fig3\""));
        assert!(!json.contains('\n'));
    }

    #[test]
    fn floats_render_like_serde_json() {
        assert_eq!(to_string(&1.0f64).unwrap(), "1.0");
        assert_eq!(to_string(&0.5f64).unwrap(), "0.5");
        assert_eq!(to_string(&3usize).unwrap(), "3");
        assert!(to_string(&f64::NAN).is_err());
    }

    #[test]
    fn strings_are_escaped() {
        assert_eq!(to_string(&"a\"b\n".to_string()).unwrap(), "\"a\\\"b\\n\"");
    }
}
