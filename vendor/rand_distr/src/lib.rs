//! Offline vendor shim for the `rand_distr` 0.4 API surface used by this
//! workspace: [`Normal`], [`LogNormal`], and [`Gamma`], all over `f64`.
//!
//! Sampling algorithms: Box-Muller for the normal (no cached second draw, so
//! cloned distributions stay independent of sampling history) and
//! Marsaglia-Tsang for the gamma (with the Ahrens-Dieter boost for shape < 1).

pub use rand::distributions::Distribution;
use rand::RngCore;
use std::fmt;

/// Error returned by distribution constructors with invalid parameters.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DistributionError {
    what: &'static str,
}

impl fmt::Display for DistributionError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "invalid distribution parameter: {}", self.what)
    }
}

impl std::error::Error for DistributionError {}

/// Alias matching `rand_distr::NormalError`.
pub type NormalError = DistributionError;
/// Alias matching `rand_distr::GammaError`.
pub type GammaError = DistributionError;

#[inline]
fn unit_open<R: RngCore + ?Sized>(rng: &mut R) -> f64 {
    // Uniform on (0, 1): reject 0 so logarithms stay finite.
    loop {
        let u = (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64);
        if u > 0.0 {
            return u;
        }
    }
}

#[inline]
fn standard_normal<R: RngCore + ?Sized>(rng: &mut R) -> f64 {
    // Box-Muller; only the cosine branch is used so each sample consumes a
    // fixed two uniforms regardless of history.
    let u1 = unit_open(rng);
    let u2 = unit_open(rng);
    (-2.0 * u1.ln()).sqrt() * (std::f64::consts::TAU * u2).cos()
}

/// The normal (Gaussian) distribution `N(mean, std_dev^2)`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Normal {
    mean: f64,
    std_dev: f64,
}

impl Normal {
    /// Creates a normal distribution.
    ///
    /// # Errors
    ///
    /// Fails when `std_dev` is negative or not finite.
    pub fn new(mean: f64, std_dev: f64) -> Result<Self, NormalError> {
        if !std_dev.is_finite() || std_dev < 0.0 || !mean.is_finite() {
            return Err(DistributionError {
                what: "normal std_dev/mean",
            });
        }
        Ok(Normal { mean, std_dev })
    }
}

impl Distribution<f64> for Normal {
    fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> f64 {
        self.mean + self.std_dev * standard_normal(rng)
    }
}

/// The log-normal distribution: `exp(N(mu, sigma^2))`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LogNormal {
    norm: Normal,
}

impl LogNormal {
    /// Creates a log-normal distribution from the underlying normal's
    /// parameters.
    ///
    /// # Errors
    ///
    /// Fails when `sigma` is negative or not finite.
    pub fn new(mu: f64, sigma: f64) -> Result<Self, DistributionError> {
        Ok(LogNormal {
            norm: Normal::new(mu, sigma)?,
        })
    }
}

impl Distribution<f64> for LogNormal {
    fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> f64 {
        self.norm.sample(rng).exp()
    }
}

/// The gamma distribution with shape `alpha` and scale `theta`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Gamma {
    shape: f64,
    scale: f64,
}

impl Gamma {
    /// Creates a gamma distribution.
    ///
    /// # Errors
    ///
    /// Fails when `shape` or `scale` is non-positive or not finite.
    pub fn new(shape: f64, scale: f64) -> Result<Self, GammaError> {
        if !shape.is_finite() || shape <= 0.0 {
            return Err(DistributionError {
                what: "gamma shape",
            });
        }
        if !scale.is_finite() || scale <= 0.0 {
            return Err(DistributionError {
                what: "gamma scale",
            });
        }
        Ok(Gamma { shape, scale })
    }

    fn sample_shape_ge_one<R: RngCore + ?Sized>(shape: f64, rng: &mut R) -> f64 {
        // Marsaglia & Tsang (2000).
        let d = shape - 1.0 / 3.0;
        let c = 1.0 / (9.0 * d).sqrt();
        loop {
            let x = standard_normal(rng);
            let v = (1.0 + c * x).powi(3);
            if v <= 0.0 {
                continue;
            }
            let u = unit_open(rng);
            if u < 1.0 - 0.0331 * x.powi(4) {
                return d * v;
            }
            if u.ln() < 0.5 * x * x + d * (1.0 - v + v.ln()) {
                return d * v;
            }
        }
    }
}

impl Distribution<f64> for Gamma {
    fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> f64 {
        let value = if self.shape >= 1.0 {
            Self::sample_shape_ge_one(self.shape, rng)
        } else {
            // Ahrens-Dieter boost: Gamma(a) = Gamma(a + 1) * U^(1/a).
            let g = Self::sample_shape_ge_one(self.shape + 1.0, rng);
            g * unit_open(rng).powf(1.0 / self.shape)
        };
        value * self.scale
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn moments(samples: &[f64]) -> (f64, f64) {
        let n = samples.len() as f64;
        let mean = samples.iter().sum::<f64>() / n;
        let var = samples.iter().map(|x| (x - mean).powi(2)).sum::<f64>() / n;
        (mean, var)
    }

    #[test]
    fn normal_moments_match() {
        let mut rng = StdRng::seed_from_u64(0);
        let d = Normal::new(2.0, 3.0).unwrap();
        let samples: Vec<f64> = (0..20_000).map(|_| d.sample(&mut rng)).collect();
        let (mean, var) = moments(&samples);
        assert!((mean - 2.0).abs() < 0.1, "mean {mean}");
        assert!((var - 9.0).abs() < 0.5, "var {var}");
    }

    #[test]
    fn lognormal_is_positive() {
        let mut rng = StdRng::seed_from_u64(1);
        let d = LogNormal::new(0.0, 1.0).unwrap();
        for _ in 0..1000 {
            assert!(d.sample(&mut rng) > 0.0);
        }
    }

    #[test]
    fn gamma_moments_match() {
        let mut rng = StdRng::seed_from_u64(2);
        let d = Gamma::new(2.5, 2.0).unwrap();
        let samples: Vec<f64> = (0..20_000).map(|_| d.sample(&mut rng)).collect();
        let (mean, var) = moments(&samples);
        // Gamma(k, theta): mean = k*theta = 5, var = k*theta^2 = 10.
        assert!((mean - 5.0).abs() < 0.15, "mean {mean}");
        assert!((var - 10.0).abs() < 0.8, "var {var}");
    }

    #[test]
    fn gamma_small_shape_is_positive() {
        let mut rng = StdRng::seed_from_u64(3);
        let d = Gamma::new(0.3, 1.0).unwrap();
        for _ in 0..1000 {
            let v = d.sample(&mut rng);
            assert!(v > 0.0 && v.is_finite());
        }
    }

    #[test]
    fn constructors_reject_bad_parameters() {
        assert!(Normal::new(0.0, -1.0).is_err());
        assert!(Normal::new(f64::NAN, 1.0).is_err());
        assert!(Gamma::new(0.0, 1.0).is_err());
        assert!(Gamma::new(1.0, 0.0).is_err());
        assert!(LogNormal::new(0.0, f64::INFINITY).is_err());
        assert!(Normal::new(0.0, -1.0)
            .unwrap_err()
            .to_string()
            .contains("std_dev"));
    }
}
