//! Sequence-related helpers: shuffling and random selection from slices.

use crate::distributions::SampleUniform;
use crate::RngCore;

/// Random operations on slices.
pub trait SliceRandom {
    /// The element type.
    type Item;

    /// Shuffles the slice in place (Fisher-Yates).
    fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R);

    /// Shuffles the first `amount` elements of the slice into random order,
    /// drawing them uniformly without replacement from the whole slice.
    /// Returns `(shuffled_prefix, rest)`.
    fn partial_shuffle<R: RngCore + ?Sized>(
        &mut self,
        rng: &mut R,
        amount: usize,
    ) -> (&mut [Self::Item], &mut [Self::Item]);

    /// Returns one uniformly-chosen element, or `None` if the slice is empty.
    fn choose<R: RngCore + ?Sized>(&self, rng: &mut R) -> Option<&Self::Item>;
}

impl<T> SliceRandom for [T] {
    type Item = T;

    fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R) {
        for i in (1..self.len()).rev() {
            let j = usize::sample_between(rng, 0, i, true);
            self.swap(i, j);
        }
    }

    fn partial_shuffle<R: RngCore + ?Sized>(
        &mut self,
        rng: &mut R,
        amount: usize,
    ) -> (&mut [T], &mut [T]) {
        let amount = amount.min(self.len());
        for i in 0..amount {
            let j = usize::sample_between(rng, i, self.len(), false);
            self.swap(i, j);
        }
        self.split_at_mut(amount)
    }

    fn choose<R: RngCore + ?Sized>(&self, rng: &mut R) -> Option<&T> {
        if self.is_empty() {
            None
        } else {
            self.get(usize::sample_between(rng, 0, self.len(), false))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rngs::StdRng;
    use crate::SeedableRng;
    use std::collections::HashSet;

    #[test]
    fn shuffle_is_a_permutation() {
        let mut rng = StdRng::seed_from_u64(0);
        let mut v: Vec<usize> = (0..50).collect();
        v.shuffle(&mut rng);
        let set: HashSet<usize> = v.iter().copied().collect();
        assert_eq!(set.len(), 50);
        assert_ne!(v, (0..50).collect::<Vec<_>>());
    }

    #[test]
    fn partial_shuffle_returns_distinct_prefix() {
        let mut rng = StdRng::seed_from_u64(1);
        let mut v: Vec<usize> = (0..100).collect();
        let (prefix, rest) = v.partial_shuffle(&mut rng, 10);
        assert_eq!(prefix.len(), 10);
        assert_eq!(rest.len(), 90);
        let set: HashSet<usize> = prefix.iter().copied().collect();
        assert_eq!(set.len(), 10);
    }

    #[test]
    fn choose_handles_empty_and_full() {
        let mut rng = StdRng::seed_from_u64(2);
        let empty: [u8; 0] = [];
        assert!(empty.choose(&mut rng).is_none());
        let v = [7u8];
        assert_eq!(v.choose(&mut rng), Some(&7));
    }
}
