//! Distributions and uniform range sampling.

use crate::RngCore;
use std::ops::{Range, RangeInclusive};

/// A distribution over values of type `T`.
pub trait Distribution<T> {
    /// Draws one value.
    fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> T;
}

impl<T, D: Distribution<T> + ?Sized> Distribution<T> for &D {
    fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> T {
        (**self).sample(rng)
    }
}

/// The standard distribution: uniform over the full integer range, `[0, 1)`
/// for floats, and fair for booleans.
#[derive(Debug, Clone, Copy, Default)]
pub struct Standard;

/// A uniform `f64` in `[0, 1)` with 53 bits of precision.
#[inline]
pub(crate) fn unit_f64<R: RngCore + ?Sized>(rng: &mut R) -> f64 {
    (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
}

/// A uniform `f32` in `[0, 1)` with 24 bits of precision.
#[inline]
pub(crate) fn unit_f32<R: RngCore + ?Sized>(rng: &mut R) -> f32 {
    (rng.next_u32() >> 8) as f32 * (1.0 / (1u32 << 24) as f32)
}

macro_rules! impl_standard_uint {
    ($($ty:ty),*) => {$(
        impl Distribution<$ty> for Standard {
            fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> $ty {
                rng.next_u64() as $ty
            }
        }
    )*};
}
impl_standard_uint!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Distribution<f64> for Standard {
    fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> f64 {
        unit_f64(rng)
    }
}

impl Distribution<f32> for Standard {
    fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> f32 {
        unit_f32(rng)
    }
}

impl Distribution<bool> for Standard {
    fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> bool {
        rng.next_u64() & 1 == 1
    }
}

/// Types that support uniform sampling from a low/high pair.
pub trait SampleUniform: Sized {
    /// Uniform draw from `[low, high)` (`high` inclusive when `inclusive`).
    fn sample_between<R: RngCore + ?Sized>(
        rng: &mut R,
        low: Self,
        high: Self,
        inclusive: bool,
    ) -> Self;
}

macro_rules! impl_sample_uniform_int {
    ($($ty:ty),*) => {$(
        impl SampleUniform for $ty {
            fn sample_between<R: RngCore + ?Sized>(
                rng: &mut R,
                low: Self,
                high: Self,
                inclusive: bool,
            ) -> Self {
                let span = if inclusive {
                    (high as i128 - low as i128 + 1) as u128
                } else {
                    (high as i128 - low as i128) as u128
                };
                assert!(span > 0, "cannot sample from empty range");
                // Modulo reduction: the bias is at most span / 2^64, which is
                // negligible for the range sizes used in this workspace.
                let draw = (rng.next_u64() as u128) % span;
                (low as i128 + draw as i128) as $ty
            }
        }
    )*};
}
impl_sample_uniform_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! impl_sample_uniform_float {
    ($ty:ty, $unit:path) => {
        impl SampleUniform for $ty {
            fn sample_between<R: RngCore + ?Sized>(
                rng: &mut R,
                low: Self,
                high: Self,
                inclusive: bool,
            ) -> Self {
                if inclusive {
                    // `low..=high`: both endpoints are valid results.
                    assert!(low <= high, "cannot sample from empty range");
                    if low == high {
                        return low;
                    }
                    let v = low + $unit(rng) * (high - low);
                    return if v > high { high } else { v };
                }
                assert!(low < high, "cannot sample from empty range");
                // Rejection keeps the draw strictly below `high` even when
                // rounding in `low + u * (high - low)` would land on it.
                loop {
                    let u = $unit(rng);
                    let v = low + u * (high - low);
                    if v < high {
                        return v;
                    }
                }
            }
        }
    };
}
impl_sample_uniform_float!(f64, unit_f64);
impl_sample_uniform_float!(f32, unit_f32);

/// Ranges usable with [`crate::Rng::gen_range`].
pub trait SampleRange<T> {
    /// Draws one value from the range.
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

impl<T: SampleUniform> SampleRange<T> for Range<T> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        T::sample_between(rng, self.start, self.end, false)
    }
}

impl<T: SampleUniform + Clone> SampleRange<T> for RangeInclusive<T> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        let (low, high) = self.into_inner();
        T::sample_between(rng, low, high, true)
    }
}

#[cfg(test)]
mod tests {
    use crate::rngs::StdRng;
    use crate::{Rng, SeedableRng};

    #[test]
    fn inclusive_range_hits_both_endpoints() {
        let mut rng = StdRng::seed_from_u64(3);
        let mut saw_low = false;
        let mut saw_high = false;
        for _ in 0..200 {
            match rng.gen_range(0usize..=1) {
                0 => saw_low = true,
                1 => saw_high = true,
                _ => unreachable!(),
            }
        }
        assert!(saw_low && saw_high);
    }

    #[test]
    fn inclusive_float_range_matches_rand_api() {
        let mut rng = StdRng::seed_from_u64(5);
        // Degenerate inclusive range is valid in rand 0.8 and returns the endpoint.
        assert_eq!(rng.gen_range(1.0f64..=1.0), 1.0);
        for _ in 0..1000 {
            let v: f64 = rng.gen_range(0.25..=0.75);
            assert!((0.25..=0.75).contains(&v));
        }
    }

    #[test]
    fn tiny_positive_float_range_is_positive() {
        let mut rng = StdRng::seed_from_u64(4);
        for _ in 0..1000 {
            let u: f64 = rng.gen_range(f64::MIN_POSITIVE..1.0);
            assert!(u > 0.0 && u < 1.0);
            assert!(u.ln().is_finite());
        }
    }
}
