//! Concrete generators.

use crate::{RngCore, SeedableRng};

/// The workspace's standard deterministic generator: xoshiro256++ seeded via
/// SplitMix64 (Blackman & Vigna). Not bit-compatible with upstream `rand`'s
/// `StdRng`, but deterministic, portable, and statistically strong.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct StdRng {
    s: [u64; 4],
}

#[inline]
fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

impl SeedableRng for StdRng {
    fn seed_from_u64(seed: u64) -> Self {
        let mut state = seed;
        let mut s = [0u64; 4];
        for word in &mut s {
            *word = splitmix64(&mut state);
        }
        // xoshiro256++ must not start from the all-zero state.
        if s == [0, 0, 0, 0] {
            s[0] = 0x9E37_79B9_7F4A_7C15;
        }
        StdRng { s }
    }
}

impl RngCore for StdRng {
    #[inline]
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }

    #[inline]
    fn next_u64(&mut self) -> u64 {
        let s = &mut self.s;
        let result = s[0].wrapping_add(s[3]).rotate_left(23).wrapping_add(s[0]);
        let t = s[1] << 17;
        s[2] ^= s[0];
        s[3] ^= s[1];
        s[1] ^= s[2];
        s[0] ^= s[3];
        s[2] ^= t;
        s[3] = s[3].rotate_left(45);
        result
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zero_seed_is_not_degenerate() {
        let mut rng = StdRng::seed_from_u64(0);
        let values: Vec<u64> = (0..4).map(|_| rng.next_u64()).collect();
        assert!(values.iter().any(|&v| v != 0));
        assert_ne!(values[0], values[1]);
    }
}
