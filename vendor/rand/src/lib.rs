//! Offline vendor shim for the `rand` 0.8 API surface used by this workspace.
//!
//! The build environment has no network access to crates.io, so the workspace
//! vendors a minimal, self-contained implementation of the `rand` items it
//! actually uses: the [`RngCore`]/[`Rng`]/[`SeedableRng`] traits, the
//! [`rngs::StdRng`] generator (implemented as xoshiro256++ seeded through
//! SplitMix64 — deterministic and portable, though *not* bit-compatible with
//! upstream `rand`'s ChaCha12-based `StdRng`), uniform range sampling, the
//! [`distributions::Standard`] distribution, and the slice helpers in [`seq`].
//!
//! Everything here is deterministic given a seed, which is the property the
//! reproduction actually relies on; statistical quality is more than adequate
//! for the simulation workloads (xoshiro256++ passes BigCrush).

pub mod distributions;
pub mod rngs;
pub mod seq;

pub use distributions::{Distribution, Standard};

/// The core of a random number generator: a source of random words.
pub trait RngCore {
    /// Returns the next random `u32`.
    fn next_u32(&mut self) -> u32;
    /// Returns the next random `u64`.
    fn next_u64(&mut self) -> u64;
    /// Fills `dest` with random bytes.
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        let mut chunks = dest.chunks_exact_mut(8);
        for chunk in &mut chunks {
            chunk.copy_from_slice(&self.next_u64().to_le_bytes());
        }
        let rem = chunks.into_remainder();
        if !rem.is_empty() {
            let word = self.next_u64().to_le_bytes();
            rem.copy_from_slice(&word[..rem.len()]);
        }
    }
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u32(&mut self) -> u32 {
        (**self).next_u32()
    }
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        (**self).fill_bytes(dest)
    }
}

impl<R: RngCore + ?Sized> RngCore for Box<R> {
    fn next_u32(&mut self) -> u32 {
        (**self).next_u32()
    }
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        (**self).fill_bytes(dest)
    }
}

/// User-facing random value generation, blanket-implemented for every
/// [`RngCore`].
pub trait Rng: RngCore {
    /// Samples a value of type `T` from the [`Standard`] distribution.
    fn gen<T>(&mut self) -> T
    where
        Standard: Distribution<T>,
        Self: Sized,
    {
        Standard.sample(self)
    }

    /// Samples a value uniformly from the given range.
    ///
    /// # Panics
    ///
    /// Panics if the range is empty.
    fn gen_range<T, R>(&mut self, range: R) -> T
    where
        T: distributions::SampleUniform,
        R: distributions::SampleRange<T>,
        Self: Sized,
    {
        range.sample_single(self)
    }

    /// Returns `true` with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        distributions::unit_f64(self) < p
    }

    /// Samples from an explicit distribution.
    fn sample<T, D: Distribution<T>>(&mut self, distr: D) -> T
    where
        Self: Sized,
    {
        distr.sample(self)
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// A generator that can be instantiated from a `u64` seed.
pub trait SeedableRng: Sized {
    /// Creates a generator deterministically from `seed`.
    fn seed_from_u64(seed: u64) -> Self;
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rngs::StdRng;

    #[test]
    fn std_rng_is_deterministic() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        let mut c = StdRng::seed_from_u64(43);
        assert_ne!(StdRng::seed_from_u64(42).next_u64(), c.next_u64());
    }

    #[test]
    fn gen_range_stays_in_bounds() {
        let mut rng = StdRng::seed_from_u64(0);
        for _ in 0..1000 {
            let v: usize = rng.gen_range(3..17);
            assert!((3..17).contains(&v));
            let f: f64 = rng.gen_range(-0.5..0.5);
            assert!((-0.5..0.5).contains(&f));
            let i: usize = rng.gen_range(2..=4);
            assert!((2..=4).contains(&i));
        }
    }

    #[test]
    fn unit_floats_cover_unit_interval() {
        let mut rng = StdRng::seed_from_u64(1);
        let mut sum = 0.0;
        let n = 10_000;
        for _ in 0..n {
            let u: f64 = rng.gen();
            assert!((0.0..1.0).contains(&u));
            sum += u;
        }
        let mean = sum / n as f64;
        assert!((mean - 0.5).abs() < 0.02, "mean of U[0,1) was {mean}");
    }

    #[test]
    fn dyn_rng_core_is_usable() {
        fn takes_impl(rng: &mut impl Rng) -> u64 {
            rng.next_u64()
        }
        let mut rng = StdRng::seed_from_u64(5);
        let dyn_rng: &mut dyn RngCore = &mut rng;
        let _ = takes_impl(&mut &mut *dyn_rng);
    }

    #[test]
    fn fill_bytes_fills_everything() {
        let mut rng = StdRng::seed_from_u64(9);
        let mut buf = [0u8; 13];
        rng.fill_bytes(&mut buf);
        assert!(buf.iter().any(|&b| b != 0));
    }
}
