//! Offline vendor shim for the `criterion` API surface used by this
//! workspace: [`Criterion`], [`BenchmarkGroup`], [`Bencher::iter`], and the
//! [`criterion_group!`]/[`criterion_main!`] macros.
//!
//! Measurement is a simple wall-clock protocol — one warm-up iteration, then
//! `sample_size` timed iterations — reporting min/mean/max per benchmark.
//! That is deliberately cruder than upstream criterion (no outlier analysis,
//! no HTML reports) but sufficient to track relative throughput, which is
//! what the workspace's perf trajectory needs. Passing `--test` (as
//! `cargo test --benches` does) runs each benchmark exactly once.

use std::time::{Duration, Instant};

/// Re-export of [`std::hint::black_box`], matching `criterion::black_box`.
pub use std::hint::black_box;

/// Top-level benchmark driver.
pub struct Criterion {
    default_sample_size: usize,
    test_mode: bool,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion {
            default_sample_size: 10,
            test_mode: false,
        }
    }
}

impl Criterion {
    /// Applies command-line configuration (`--test` → run each benchmark
    /// once; a positional filter argument is accepted but ignored).
    #[must_use]
    pub fn configure_from_args(mut self) -> Self {
        self.test_mode = std::env::args().any(|a| a == "--test");
        self
    }

    /// Starts a named group of benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.into(),
            sample_size: self.default_sample_size,
            criterion: self,
        }
    }

    /// Runs a standalone benchmark.
    pub fn bench_function<F>(&mut self, id: impl std::fmt::Display, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let sample_size = self.default_sample_size;
        let test_mode = self.test_mode;
        run_benchmark(&id.to_string(), sample_size, test_mode, f);
        self
    }
}

/// A named group of related benchmarks sharing a sample size.
pub struct BenchmarkGroup<'a> {
    name: String,
    sample_size: usize,
    criterion: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    /// Sets the number of timed iterations per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(1);
        self
    }

    /// Sets the target measurement time. Accepted for API compatibility; the
    /// shim's measurement count is controlled by [`sample_size`](Self::sample_size).
    pub fn measurement_time(&mut self, _time: Duration) -> &mut Self {
        self
    }

    /// Runs one benchmark within the group.
    pub fn bench_function<F>(&mut self, id: impl std::fmt::Display, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let full = format!("{}/{}", self.name, id);
        run_benchmark(&full, self.sample_size, self.criterion.test_mode, f);
        self
    }

    /// Finishes the group.
    pub fn finish(self) {}
}

/// Times closures handed to it by a benchmark function.
pub struct Bencher {
    samples: Vec<Duration>,
    iterations: usize,
}

impl Bencher {
    /// Measures `f`, running it once per configured sample.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        // Warm-up draw, not recorded.
        black_box(f());
        for _ in 0..self.iterations {
            let start = Instant::now();
            black_box(f());
            self.samples.push(start.elapsed());
        }
    }
}

fn run_benchmark<F: FnMut(&mut Bencher)>(id: &str, sample_size: usize, test_mode: bool, mut f: F) {
    let iterations = if test_mode { 1 } else { sample_size };
    let mut bencher = Bencher {
        samples: Vec::new(),
        iterations,
    };
    f(&mut bencher);
    if bencher.samples.is_empty() {
        println!("bench {id}: no samples recorded");
        return;
    }
    let total: Duration = bencher.samples.iter().sum();
    let mean = total / bencher.samples.len() as u32;
    let min = bencher.samples.iter().min().expect("non-empty");
    let max = bencher.samples.iter().max().expect("non-empty");
    println!(
        "bench {id}: [{} {} {}] ({} samples)",
        format_duration(*min),
        format_duration(mean),
        format_duration(*max),
        bencher.samples.len()
    );
}

fn format_duration(d: Duration) -> String {
    let nanos = d.as_nanos();
    if nanos < 1_000 {
        format!("{nanos} ns")
    } else if nanos < 1_000_000 {
        format!("{:.2} µs", nanos as f64 / 1_000.0)
    } else if nanos < 1_000_000_000 {
        format!("{:.2} ms", nanos as f64 / 1_000_000.0)
    } else {
        format!("{:.2} s", nanos as f64 / 1_000_000_000.0)
    }
}

/// Declares a group of benchmark functions.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        fn $group() {
            let mut criterion = $crate::Criterion::default().configure_from_args();
            $( $target(&mut criterion); )+
        }
    };
}

/// Declares the benchmark binary's entry point.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn group_and_function_run_closures() {
        let mut c = Criterion::default();
        let mut runs = 0usize;
        {
            let mut group = c.benchmark_group("shim");
            group.sample_size(3).bench_function("counted", |b| {
                b.iter(|| {
                    runs += 1;
                });
            });
            group.finish();
        }
        // 1 warm-up + 3 samples.
        assert_eq!(runs, 4);
        let mut direct = 0usize;
        c.bench_function("direct", |b| b.iter(|| direct += 1));
        assert_eq!(direct, 11);
    }

    #[test]
    fn duration_formatting_scales() {
        assert!(format_duration(Duration::from_nanos(10)).contains("ns"));
        assert!(format_duration(Duration::from_micros(10)).contains("µs"));
        assert!(format_duration(Duration::from_millis(10)).contains("ms"));
        assert!(format_duration(Duration::from_secs(10)).contains("s"));
    }
}
