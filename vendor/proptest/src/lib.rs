//! Offline vendor shim for the `proptest` API surface used by this workspace.
//!
//! Provides the [`proptest!`] macro family, [`Strategy`] implementations for
//! numeric ranges, [`any`] for full-range primitives, and
//! [`collection::vec`]. Test inputs are drawn from a deterministic generator
//! seeded by the test's name, so failures reproduce across runs. Unlike
//! upstream proptest there is no shrinking: a failing case panics with the
//! values interpolated into the assertion message.

use std::fmt;
use std::marker::PhantomData;
use std::ops::{Range, RangeInclusive};

/// Outcome of a single generated test case.
#[derive(Debug)]
pub enum TestCaseError {
    /// The case was rejected by `prop_assume!` — try another input.
    Reject,
    /// An assertion failed.
    Fail(String),
}

/// Controls how many cases each property runs.
#[derive(Debug, Clone, Copy)]
pub struct ProptestConfig {
    /// Number of accepted cases required for the property to pass.
    pub cases: u32,
}

impl ProptestConfig {
    /// A configuration running `cases` cases.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 64 }
    }
}

/// Deterministic input generator (SplitMix64).
#[derive(Debug, Clone)]
pub struct Gen {
    state: u64,
}

impl Gen {
    /// Creates a generator seeded from a test name, so every test gets a
    /// distinct but reproducible stream.
    pub fn deterministic(name: &str) -> Self {
        let mut state = 0xcbf2_9ce4_8422_2325u64;
        for b in name.bytes() {
            state ^= b as u64;
            state = state.wrapping_mul(0x0000_0100_0000_01B3);
        }
        Gen { state }
    }

    /// Next raw 64-bit draw.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Uniform `f64` in `[0, 1)`.
    pub fn unit_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

/// A strategy for generating values of one type.
pub trait Strategy {
    /// The generated type.
    type Value;
    /// Draws one value.
    fn sample(&self, gen: &mut Gen) -> Self::Value;
}

impl<S: Strategy + ?Sized> Strategy for &S {
    type Value = S::Value;
    fn sample(&self, gen: &mut Gen) -> Self::Value {
        (**self).sample(gen)
    }
}

macro_rules! impl_range_strategy_int {
    ($($ty:ty),*) => {$(
        impl Strategy for Range<$ty> {
            type Value = $ty;
            fn sample(&self, gen: &mut Gen) -> $ty {
                assert!(self.start < self.end, "empty range strategy");
                let span = (self.end as i128 - self.start as i128) as u128;
                (self.start as i128 + ((gen.next_u64() as u128) % span) as i128) as $ty
            }
        }
        impl Strategy for RangeInclusive<$ty> {
            type Value = $ty;
            fn sample(&self, gen: &mut Gen) -> $ty {
                let (low, high) = (*self.start(), *self.end());
                assert!(low <= high, "empty range strategy");
                let span = (high as i128 - low as i128 + 1) as u128;
                (low as i128 + ((gen.next_u64() as u128) % span) as i128) as $ty
            }
        }
    )*};
}
impl_range_strategy_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! impl_range_strategy_float {
    ($($ty:ty),*) => {$(
        impl Strategy for Range<$ty> {
            type Value = $ty;
            fn sample(&self, gen: &mut Gen) -> $ty {
                assert!(self.start < self.end, "empty range strategy");
                loop {
                    let v = self.start + (gen.unit_f64() as $ty) * (self.end - self.start);
                    if v < self.end {
                        return v;
                    }
                }
            }
        }
    )*};
}
impl_range_strategy_float!(f32, f64);

/// Strategy returned by [`any`].
pub struct Any<T> {
    _marker: PhantomData<T>,
}

/// Full-range strategy for primitive types.
pub fn any<T: Arbitrary>() -> Any<T> {
    Any {
        _marker: PhantomData,
    }
}

/// Types with a canonical full-range strategy.
pub trait Arbitrary: Sized {
    /// Draws an arbitrary value.
    fn arbitrary(gen: &mut Gen) -> Self;
}

macro_rules! impl_arbitrary_int {
    ($($ty:ty),*) => {$(
        impl Arbitrary for $ty {
            fn arbitrary(gen: &mut Gen) -> Self {
                gen.next_u64() as $ty
            }
        }
    )*};
}
impl_arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Arbitrary for bool {
    fn arbitrary(gen: &mut Gen) -> Self {
        gen.next_u64() & 1 == 1
    }
}

impl Arbitrary for f64 {
    fn arbitrary(gen: &mut Gen) -> Self {
        // Finite full-range doubles; upstream proptest also generates
        // non-finite values, but the workspace's properties assume finite.
        let v = f64::from_bits(gen.next_u64());
        if v.is_finite() {
            v
        } else {
            gen.unit_f64() * 2.0 - 1.0
        }
    }
}

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;
    fn sample(&self, gen: &mut Gen) -> T {
        T::arbitrary(gen)
    }
}

/// Collection strategies.
pub mod collection {
    use super::{Gen, Strategy};
    use std::ops::Range;

    /// Strategy producing `Vec`s with lengths drawn from `size`.
    pub struct VecStrategy<S> {
        element: S,
        size: Range<usize>,
    }

    /// Generates vectors whose elements come from `element` and whose length
    /// is uniform over `size`.
    pub fn vec<S: Strategy>(element: S, size: Range<usize>) -> VecStrategy<S> {
        VecStrategy { element, size }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn sample(&self, gen: &mut Gen) -> Vec<S::Value> {
            let len = Strategy::sample(&self.size, gen);
            (0..len).map(|_| self.element.sample(gen)).collect()
        }
    }
}

/// Everything a `proptest!` test body needs.
pub mod prelude {
    pub use crate::collection;
    pub use crate::{
        any, prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, proptest, Arbitrary,
        ProptestConfig, Strategy, TestCaseError,
    };
}

/// Displays a generated value for failure messages.
pub fn format_case<T: fmt::Debug>(name: &str, value: &T) -> String {
    format!("{name} = {value:?}")
}

/// Property-test entry point; see the module docs.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl! { config = ($cfg); $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl! { config = ($crate::ProptestConfig::default()); $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    (config = ($cfg:expr); $( $(#[$meta:meta])* fn $name:ident ( $($arg:ident in $strat:expr),* $(,)? ) $body:block )*) => {
        $(
            $(#[$meta])*
            fn $name() {
                let __config: $crate::ProptestConfig = $cfg;
                let mut __gen = $crate::Gen::deterministic(concat!(module_path!(), "::", stringify!($name)));
                let mut __accepted: u32 = 0;
                let mut __attempts: u32 = 0;
                let __max_attempts = __config.cases.saturating_mul(20).max(100);
                while __accepted < __config.cases {
                    __attempts += 1;
                    if __attempts > __max_attempts {
                        panic!(
                            "proptest shim: `{}` rejected too many cases ({} accepted of {} required)",
                            stringify!($name), __accepted, __config.cases
                        );
                    }
                    $(let $arg = $crate::Strategy::sample(&($strat), &mut __gen);)*
                    let __case = (|| -> ::std::result::Result<(), $crate::TestCaseError> {
                        $body
                        Ok(())
                    })();
                    match __case {
                        Ok(()) => __accepted += 1,
                        Err($crate::TestCaseError::Reject) => continue,
                        Err($crate::TestCaseError::Fail(__msg)) => {
                            panic!(
                                "proptest shim: `{}` failed: {}\n  inputs: {}",
                                stringify!($name),
                                __msg,
                                [$($crate::format_case(stringify!($arg), &$arg)),*].join(", ")
                            );
                        }
                    }
                }
            }
        )*
    };
}

/// Rejects the current case unless `cond` holds.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr $(,)?) => {
        if !($cond) {
            return Err($crate::TestCaseError::Reject);
        }
    };
}

/// Asserts `cond`, failing the current case with the stringified condition.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr $(,)?) => {
        if !($cond) {
            return Err($crate::TestCaseError::Fail(format!(
                "assertion failed: {}",
                stringify!($cond)
            )));
        }
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !($cond) {
            return Err($crate::TestCaseError::Fail(format!($($fmt)+)));
        }
    };
}

/// Asserts equality, failing the current case with both values.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let __l = $left;
        let __r = $right;
        if !(__l == __r) {
            return Err($crate::TestCaseError::Fail(format!(
                "assertion failed: `{:?}` == `{:?}`",
                __l, __r
            )));
        }
    }};
}

/// Asserts inequality, failing the current case with both values.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let __l = $left;
        let __r = $right;
        if __l == __r {
            return Err($crate::TestCaseError::Fail(format!(
                "assertion failed: `{:?}` != `{:?}`",
                __l, __r
            )));
        }
    }};
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #[test]
        fn addition_commutes(a in 0u64..1000, b in 0u64..1000) {
            prop_assert_eq!(a + b, b + a);
        }

        #[test]
        fn vectors_respect_length_bounds(v in collection::vec(0.0f64..1.0, 2..50)) {
            prop_assert!((2..50).contains(&v.len()));
            prop_assert!(v.iter().all(|&x| (0.0..1.0).contains(&x)));
        }

        #[test]
        fn assume_filters_inputs(n in any::<u64>()) {
            prop_assume!(n.is_multiple_of(2));
            prop_assert!(n.is_multiple_of(2));
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(8))]

        #[test]
        fn config_form_parses(seed in 0u64..10) {
            prop_assert!(seed < 10);
        }
    }

    #[test]
    #[should_panic(expected = "failed")]
    fn failing_property_panics() {
        // No `#[test]` on the inner fn: it is driven manually so the panic
        // can be asserted by the enclosing test.
        proptest! {
            fn inner(n in 0u64..10) {
                prop_assert!(n > 100, "n was {}", n);
            }
        }
        inner();
    }
}
