//! Offline vendor shim for `serde_derive`.
//!
//! Implements `#[derive(Serialize)]` and `#[derive(Deserialize)]` against the
//! workspace's minimal `serde` (value-tree based, see `vendor/serde`). The
//! parser is hand-written over `proc_macro::TokenStream` — no `syn`/`quote`,
//! because the build environment has no network access — and supports exactly
//! the shapes this workspace uses: non-generic braced structs and non-generic
//! enums with unit, tuple, and struct variants.
//!
//! `Serialize` produces a real value tree (rendered to JSON by the
//! `serde_json` shim). `Deserialize` reconstructs the type from the same
//! value tree: struct fields are looked up by name (absent fields
//! deserialize from `Value::Null`, so `Option` fields tolerate omission) and
//! enums follow serde's externally-tagged encoding. Together with the
//! `serde_json` parser this gives the workspace full JSON round-tripping —
//! the `fedstore` trial ledger depends on it.

use proc_macro::{Delimiter, TokenStream, TokenTree};

enum VariantShape {
    Unit,
    Tuple(usize),
    Struct(Vec<String>),
}

enum Shape {
    Struct(Vec<String>),
    Enum(Vec<(String, VariantShape)>),
}

fn is_punct(tt: &TokenTree, ch: char) -> bool {
    matches!(tt, TokenTree::Punct(p) if p.as_char() == ch)
}

/// Splits the comma-separated segments of a group body, tracking angle-bracket
/// depth so commas inside generic arguments (`HashMap<usize, Run>`) do not
/// split a segment.
fn split_top_level(tokens: &[TokenTree]) -> Vec<Vec<TokenTree>> {
    let mut segments = Vec::new();
    let mut current = Vec::new();
    let mut angle_depth = 0i32;
    for tt in tokens {
        if let TokenTree::Punct(p) = tt {
            match p.as_char() {
                '<' => angle_depth += 1,
                '>' => angle_depth -= 1,
                ',' if angle_depth == 0 => {
                    segments.push(std::mem::take(&mut current));
                    continue;
                }
                _ => {}
            }
        }
        current.push(tt.clone());
    }
    if !current.is_empty() {
        segments.push(current);
    }
    segments
}

/// Strips leading attributes (`#[...]`) and visibility (`pub`, `pub(...)`)
/// from one segment, returning the remaining tokens.
fn strip_attrs_and_vis(segment: &[TokenTree]) -> Vec<TokenTree> {
    let mut rest = Vec::new();
    let mut i = 0;
    while i < segment.len() {
        if is_punct(&segment[i], '#') {
            i += 2; // '#' and the bracket group
            continue;
        }
        if let TokenTree::Ident(id) = &segment[i] {
            if id.to_string() == "pub" {
                i += 1;
                if let Some(TokenTree::Group(g)) = segment.get(i) {
                    if g.delimiter() == Delimiter::Parenthesis {
                        i += 1;
                    }
                }
                continue;
            }
        }
        rest.push(segment[i].clone());
        i += 1;
    }
    rest
}

/// Parses `name: Type` field segments into field names.
fn parse_named_fields(body: TokenStream) -> Vec<String> {
    let tokens: Vec<TokenTree> = body.into_iter().collect();
    split_top_level(&tokens)
        .into_iter()
        .filter_map(|segment| {
            let seg = strip_attrs_and_vis(&segment);
            match seg.first() {
                Some(TokenTree::Ident(id)) => Some(id.to_string()),
                _ => None,
            }
        })
        .collect()
}

fn parse_variants(body: TokenStream) -> Vec<(String, VariantShape)> {
    let tokens: Vec<TokenTree> = body.into_iter().collect();
    split_top_level(&tokens)
        .into_iter()
        .filter_map(|segment| {
            let seg = strip_attrs_and_vis(&segment);
            let name = match seg.first() {
                Some(TokenTree::Ident(id)) => id.to_string(),
                _ => return None,
            };
            let shape = match seg.get(1) {
                Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                    let inner: Vec<TokenTree> = g.stream().into_iter().collect();
                    VariantShape::Tuple(split_top_level(&inner).len())
                }
                Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                    VariantShape::Struct(parse_named_fields(g.stream()))
                }
                _ => VariantShape::Unit,
            };
            Some((name, shape))
        })
        .collect()
}

/// Parses the derive input into the type name and its shape.
fn parse_input(input: TokenStream) -> Result<(String, Shape), String> {
    let tokens: Vec<TokenTree> = input.into_iter().collect();
    let mut i = 0;
    while i < tokens.len() {
        if is_punct(&tokens[i], '#') {
            i += 2;
            continue;
        }
        if let TokenTree::Ident(id) = &tokens[i] {
            match id.to_string().as_str() {
                "pub" => {
                    i += 1;
                    if let Some(TokenTree::Group(g)) = tokens.get(i) {
                        if g.delimiter() == Delimiter::Parenthesis {
                            i += 1;
                        }
                    }
                    continue;
                }
                kind @ ("struct" | "enum") => {
                    let name = match tokens.get(i + 1) {
                        Some(TokenTree::Ident(n)) => n.to_string(),
                        _ => return Err("expected a type name".into()),
                    };
                    if tokens.get(i + 2).is_some_and(|t| is_punct(t, '<')) {
                        return Err(format!(
                            "the offline serde shim cannot derive for generic type `{name}`"
                        ));
                    }
                    let body = tokens[i + 2..].iter().find_map(|t| match t {
                        TokenTree::Group(g) if g.delimiter() == Delimiter::Brace => {
                            Some(g.stream())
                        }
                        _ => None,
                    });
                    let body = match body {
                        Some(b) => b,
                        None => {
                            return Err(format!(
                                "the offline serde shim cannot derive for `{name}`: only braced structs and enums are supported"
                            ))
                        }
                    };
                    let shape = if kind == "struct" {
                        Shape::Struct(parse_named_fields(body))
                    } else {
                        Shape::Enum(parse_variants(body))
                    };
                    return Ok((name, shape));
                }
                _ => {}
            }
        }
        i += 1;
    }
    Err("expected `struct` or `enum`".into())
}

fn compile_error(message: &str) -> TokenStream {
    format!("compile_error!({message:?});").parse().unwrap()
}

#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    let (name, shape) = match parse_input(input) {
        Ok(parsed) => parsed,
        Err(e) => return compile_error(&e),
    };
    let body = match &shape {
        Shape::Struct(fields) => {
            let entries: Vec<String> = fields
                .iter()
                .map(|f| {
                    format!(
                        "(::std::string::String::from({f:?}), ::serde::Serialize::to_value(&self.{f}))"
                    )
                })
                .collect();
            format!("::serde::Value::Map(::std::vec![{}])", entries.join(", "))
        }
        Shape::Enum(variants) => {
            let arms: Vec<String> = variants
                .iter()
                .map(|(v, vs)| match vs {
                    VariantShape::Unit => format!(
                        "{name}::{v} => ::serde::Value::Str(::std::string::String::from({v:?}))"
                    ),
                    VariantShape::Tuple(n) => {
                        let binders: Vec<String> = (0..*n).map(|k| format!("__f{k}")).collect();
                        let value = if *n == 1 {
                            "::serde::Serialize::to_value(__f0)".to_string()
                        } else {
                            let items: Vec<String> = binders
                                .iter()
                                .map(|b| format!("::serde::Serialize::to_value({b})"))
                                .collect();
                            format!("::serde::Value::Seq(::std::vec![{}])", items.join(", "))
                        };
                        format!(
                            "{name}::{v}({}) => ::serde::Value::Map(::std::vec![(::std::string::String::from({v:?}), {value})])",
                            binders.join(", ")
                        )
                    }
                    VariantShape::Struct(fields) => {
                        let entries: Vec<String> = fields
                            .iter()
                            .map(|f| {
                                format!(
                                    "(::std::string::String::from({f:?}), ::serde::Serialize::to_value({f}))"
                                )
                            })
                            .collect();
                        format!(
                            "{name}::{v} {{ {} }} => ::serde::Value::Map(::std::vec![(::std::string::String::from({v:?}), ::serde::Value::Map(::std::vec![{}]))])",
                            fields.join(", "),
                            entries.join(", ")
                        )
                    }
                })
                .collect();
            format!("match self {{ {} }}", arms.join(", "))
        }
    };
    format!(
        "impl ::serde::Serialize for {name} {{\n\
             fn to_value(&self) -> ::serde::Value {{ {body} }}\n\
         }}"
    )
    .parse()
    .unwrap()
}

/// Generates the struct-body initialiser `field: ::serde::__field(...)` list
/// for named fields, looking each up by name in a `Value::Map`.
fn named_field_inits(fields: &[String], context: &str) -> String {
    fields
        .iter()
        .map(|f| format!("{f}: ::serde::__field(__entries, {f:?}, {context:?})?"))
        .collect::<Vec<String>>()
        .join(", ")
}

#[proc_macro_derive(Deserialize, attributes(serde))]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    let (name, shape) = match parse_input(input) {
        Ok(parsed) => parsed,
        Err(e) => return compile_error(&e),
    };
    let body = match &shape {
        Shape::Struct(fields) => format!(
            "match __value {{\n\
                 ::serde::Value::Map(__entries) => Ok({name} {{ {inits} }}),\n\
                 _ => Err(::serde::DeError::new(\"expected a map for struct {name}\")),\n\
             }}",
            inits = named_field_inits(fields, &name),
        ),
        Shape::Enum(variants) => {
            // Externally tagged: unit variants are strings, the rest are
            // single-entry maps from the variant name to its payload.
            let unit_arms: Vec<String> = variants
                .iter()
                .filter(|(_, vs)| matches!(vs, VariantShape::Unit))
                .map(|(v, _)| format!("{v:?} => Ok({name}::{v})"))
                .collect();
            let tagged_arms: Vec<String> = variants
                .iter()
                .filter_map(|(v, vs)| match vs {
                    VariantShape::Unit => None,
                    VariantShape::Tuple(1) => Some(format!(
                        "{v:?} => Ok({name}::{v}(::serde::Deserialize::from_value(__inner)?))"
                    )),
                    VariantShape::Tuple(n) => {
                        let items: Vec<String> = (0..*n)
                            .map(|k| {
                                format!("::serde::Deserialize::from_value(&__items[{k}])?")
                            })
                            .collect();
                        Some(format!(
                            "{v:?} => match __inner {{\n\
                                 ::serde::Value::Seq(__items) if __items.len() == {n} => \
                                     Ok({name}::{v}({items})),\n\
                                 _ => Err(::serde::DeError::new(\
                                     \"expected a {n}-element sequence for variant {name}::{v}\")),\n\
                             }}",
                            items = items.join(", "),
                        ))
                    }
                    VariantShape::Struct(fields) => Some(format!(
                        "{v:?} => match __inner {{\n\
                             ::serde::Value::Map(__entries) => Ok({name}::{v} {{ {inits} }}),\n\
                             _ => Err(::serde::DeError::new(\
                                 \"expected a map for variant {name}::{v}\")),\n\
                         }}",
                        inits = named_field_inits(fields, &format!("{name}::{v}")),
                    )),
                })
                .collect();
            format!(
                "match __value {{\n\
                     ::serde::Value::Str(__tag) => match __tag.as_str() {{\n\
                         {unit_arms}\n\
                         __other => Err(::serde::DeError::new(::std::format!(\n\
                             \"unknown unit variant {{__other}} for enum {name}\"))),\n\
                     }},\n\
                     ::serde::Value::Map(__entries) if __entries.len() == 1 => {{\n\
                         let (__tag, __inner) = &__entries[0];\n\
                         match __tag.as_str() {{\n\
                             {tagged_arms}\n\
                             __other => Err(::serde::DeError::new(::std::format!(\n\
                                 \"unknown variant {{__other}} for enum {name}\"))),\n\
                         }}\n\
                     }}\n\
                     _ => Err(::serde::DeError::new(\
                         \"expected a string or single-entry map for enum {name}\")),\n\
                 }}",
                unit_arms = if unit_arms.is_empty() {
                    String::new()
                } else {
                    format!("{},", unit_arms.join(", "))
                },
                tagged_arms = if tagged_arms.is_empty() {
                    String::new()
                } else {
                    format!("{},", tagged_arms.join(", "))
                },
            )
        }
    };
    format!(
        "impl ::serde::Deserialize for {name} {{\n\
             fn from_value(__value: &::serde::Value) -> ::std::result::Result<Self, ::serde::DeError> {{\n\
                 {body}\n\
             }}\n\
         }}"
    )
    .parse()
    .unwrap()
}
