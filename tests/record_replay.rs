//! The `fedstore` acceptance contract: recording a live campaign, replaying
//! it through the tabular surrogate, and resuming an interrupted campaign
//! are all **bit-identical** to the live run.

use fedtune::feddata::Benchmark;
use fedtune::fedhpo::{IntoScheduler, TuningOutcome};
use fedtune::fedmath::rng::derive_seed;
use fedtune::fedstore::{
    campaign_provenance, record_method_comparison, replay_method_comparison, RecordingObjective,
    TabularObjective, TrialStore,
};
use fedtune::fedtune_core::experiments::methods::{paper_noise_settings, TuningMethod};
use fedtune::fedtune_core::{
    run_scheduled, run_scheduled_for, BatchFederatedObjective, BenchmarkContext, ExecutionPolicy,
    ExperimentScale, NoiseConfig, TrialRunner,
};

fn method_slate() -> [TuningMethod; 3] {
    [
        TuningMethod::RandomSearch,
        TuningMethod::Hyperband,
        TuningMethod::AshaReEval,
    ]
}

#[test]
fn recorded_and_replayed_comparisons_match_the_live_run_bitwise() {
    let scale = ExperimentScale::smoke();
    let methods = method_slate();
    let settings = paper_noise_settings();
    let seed = 11;

    let live = fedtune::fedtune_core::experiments::methods::run_method_comparison_scheduled(
        ExecutionPolicy::parallel(),
        Benchmark::Cifar10Like,
        &scale,
        &methods,
        &settings,
        seed,
    )
    .unwrap();

    // Recording the same campaign produces the same comparison and fills the
    // ledger.
    let mut store = TrialStore::in_memory();
    let recorded = record_method_comparison(
        ExecutionPolicy::parallel(),
        Benchmark::Cifar10Like,
        &scale,
        &methods,
        &settings,
        seed,
        &mut store,
    )
    .unwrap();
    assert_eq!(live, recorded);
    assert!(!store.is_empty());

    // Replaying against the table reproduces logs, selection, and scores —
    // bit for bit, with no simulation.
    let replayed = replay_method_comparison(
        &store,
        Benchmark::Cifar10Like,
        &scale,
        &methods,
        &settings,
        seed,
    )
    .unwrap();
    assert_eq!(live, replayed);
    for (a, b) in live.runs.iter().zip(&replayed.runs) {
        assert_eq!(a.method, b.method);
        for (x, y) in a.log.iter().zip(&b.log) {
            assert_eq!(x.noisy_score.to_bits(), y.noisy_score.to_bits());
            assert_eq!(x.true_error.to_bits(), y.true_error.to_bits());
            assert_eq!(x.cumulative_rounds, y.cumulative_rounds);
        }
        let budget = scale.total_budget;
        assert_eq!(
            a.selected_true_error_within(budget).map(f64::to_bits),
            b.selected_true_error_within(budget).map(f64::to_bits),
            "{} selection diverged",
            a.method
        );
    }
}

/// One ASHA+re-evaluation campaign, recorded into `store`, interruptible
/// after `max_batches` scheduler cycles. Returns the outcome and whether the
/// schedule finished.
fn drive_campaign(
    ctx: &BenchmarkContext,
    scale: &ExperimentScale,
    policy: ExecutionPolicy,
    seed: u64,
    store: &mut TrialStore,
    max_batches: Option<usize>,
) -> (TuningOutcome, bool) {
    let method = TuningMethod::AshaReEval;
    let mut scheduler = method.scheduler(scale).unwrap();
    let planned = method.planned_evaluations(scale);
    let mut objective = BatchFederatedObjective::new(
        ctx,
        NoiseConfig::paper_noisy(),
        planned,
        derive_seed(seed, 0),
    )
    .unwrap()
    .with_batch_runner(TrialRunner::new(policy));
    let mut recording = RecordingObjective::new(
        &mut objective,
        ctx.space(),
        campaign_provenance(ctx.benchmark(), scale, seed, "noisy"),
        store,
    );
    let mut rng = fedtune::fedmath::rng::rng_for(seed, 1);
    run_scheduled_for(
        scheduler.as_mut(),
        ctx.space(),
        &mut recording,
        &mut rng,
        max_batches,
    )
    .unwrap()
}

#[test]
fn interrupted_resume_is_bit_identical_across_seeds_and_thread_counts() {
    let scale = ExperimentScale::smoke();
    for seed in [0u64, 1, 2] {
        let ctx = BenchmarkContext::new(Benchmark::Cifar10Like, &scale, seed).unwrap();
        // The reference: one uninterrupted sequential run.
        let mut reference_store = TrialStore::in_memory();
        let (reference, finished) = drive_campaign(
            &ctx,
            &scale,
            ExecutionPolicy::Sequential,
            seed,
            &mut reference_store,
            None,
        );
        assert!(finished);
        for threads in [1usize, 2, 4] {
            let policy = ExecutionPolicy::parallel_with(threads);
            // Interrupt after the first scheduler batch ...
            let mut store = TrialStore::in_memory();
            let (prefix, finished) =
                drive_campaign(&ctx, &scale, policy, seed, &mut store, Some(1));
            assert!(!finished, "smoke ASHA+RE has more than one batch");
            assert!(!store.is_empty());
            assert_eq!(
                reference.records()[..prefix.num_evaluations()],
                *prefix.records()
            );
            // ... then resume from scratch against the same store: the
            // recorded prefix is served from the ledger and the campaign
            // completes bit-identically to the uninterrupted run.
            let (resumed, finished) = drive_campaign(&ctx, &scale, policy, seed, &mut store, None);
            assert!(finished);
            assert_eq!(
                reference, resumed,
                "seed {seed}, {threads} threads: resume diverged"
            );
            for (a, b) in reference.records().iter().zip(resumed.records()) {
                assert_eq!(a.score.to_bits(), b.score.to_bits());
            }
            // The resumed ledger holds exactly the reference campaign.
            assert_eq!(store.len(), reference_store.len());
            for (a, b) in reference_store.records().iter().zip(store.records()) {
                assert_eq!(a.config, b.config);
                assert_eq!(a.noisy_score.to_bits(), b.noisy_score.to_bits());
                assert_eq!(a.true_error.to_bits(), b.true_error.to_bits());
            }
        }
    }
}

#[test]
fn binary_and_jsonl_replays_are_bit_identical_across_seeds_and_threads() {
    // Record each campaign straight into a binary segment ledger, bridge it
    // to JSONL with export_jsonl, then replay from fresh reopens of *both*
    // backends under every thread count: the storage format and the
    // parallelism must both be invisible in the bits.
    let scale = ExperimentScale::smoke();
    let base = std::env::temp_dir().join(format!("fedstore_backend_replay_{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&base);
    std::fs::create_dir_all(&base).unwrap();
    for seed in [0u64, 1, 2] {
        let ctx = BenchmarkContext::new(Benchmark::Cifar10Like, &scale, seed).unwrap();
        let seg_dir = base.join(format!("segments_{seed}"));
        let mut seg_store = TrialStore::open_segments(&seg_dir).unwrap();
        let (reference, finished) = drive_campaign(
            &ctx,
            &scale,
            ExecutionPolicy::Sequential,
            seed,
            &mut seg_store,
            None,
        );
        assert!(finished);
        let jsonl_path = base.join(format!("ledger_{seed}.jsonl"));
        seg_store.export_jsonl(&jsonl_path).unwrap();
        drop(seg_store);

        for threads in [1usize, 2, 4] {
            let policy = ExecutionPolicy::parallel_with(threads);
            // A fresh reopen streams the ledger back into the index; the
            // recorded campaign is then served entirely from it.
            let mut from_segments = TrialStore::open_segments(&seg_dir).unwrap();
            let (seg_outcome, finished) =
                drive_campaign(&ctx, &scale, policy, seed, &mut from_segments, None);
            assert!(finished);
            let mut from_jsonl = TrialStore::open(&jsonl_path).unwrap();
            let (jsonl_outcome, finished) =
                drive_campaign(&ctx, &scale, policy, seed, &mut from_jsonl, None);
            assert!(finished);
            assert_eq!(
                seg_outcome, reference,
                "seed {seed}, {threads} threads: segment replay diverged"
            );
            assert_eq!(
                jsonl_outcome, reference,
                "seed {seed}, {threads} threads: JSONL replay diverged"
            );
            for (a, b) in seg_outcome.records().iter().zip(jsonl_outcome.records()) {
                assert_eq!(a.score.to_bits(), b.score.to_bits());
            }
            // The two ledgers themselves hold bit-identical records.
            assert_eq!(from_segments.len(), from_jsonl.len());
            for (a, b) in from_segments.records().iter().zip(from_jsonl.records()) {
                assert_eq!(a.config, b.config);
                assert_eq!(a.noisy_score.to_bits(), b.noisy_score.to_bits());
                assert_eq!(a.true_error.to_bits(), b.true_error.to_bits());
                assert_eq!(a.sim_time.to_bits(), b.sim_time.to_bits());
                assert_eq!(a.provenance, b.provenance);
            }
        }
    }
    let _ = std::fs::remove_dir_all(&base);
}

#[test]
fn file_backed_ledger_resumes_across_processes() {
    // The same interrupt/resume flow, but with the ledger on disk and the
    // store re-opened in between — modelling a crash and restart.
    let scale = ExperimentScale::smoke();
    let seed = 5;
    let ctx = BenchmarkContext::new(Benchmark::Cifar10Like, &scale, seed).unwrap();
    let mut reference_store = TrialStore::in_memory();
    let (reference, _) = drive_campaign(
        &ctx,
        &scale,
        ExecutionPolicy::Sequential,
        seed,
        &mut reference_store,
        None,
    );

    let path = std::env::temp_dir().join(format!("fedstore_resume_{}.jsonl", std::process::id()));
    let _ = std::fs::remove_file(&path);
    {
        let mut store = TrialStore::open(&path).unwrap();
        let (_, finished) = drive_campaign(
            &ctx,
            &scale,
            ExecutionPolicy::Sequential,
            seed,
            &mut store,
            Some(1),
        );
        assert!(!finished);
    }
    let mut store = TrialStore::open(&path).unwrap();
    assert!(!store.is_empty());
    let (resumed, finished) = drive_campaign(
        &ctx,
        &scale,
        ExecutionPolicy::Sequential,
        seed,
        &mut store,
        None,
    );
    assert!(finished);
    assert_eq!(reference, resumed);
    assert_eq!(store.len(), reference_store.len());
    std::fs::remove_file(&path).unwrap();
}

#[test]
fn tabular_surrogate_drives_every_extended_method() {
    // Record the full extended slate once, then re-drive each method's
    // scheduler directly against a TabularObjective — the fig08-style sweep
    // a recorded table exists for.
    let scale = ExperimentScale::smoke();
    let settings = paper_noise_settings();
    let seed = 21;
    let mut store = TrialStore::in_memory();
    let recorded = record_method_comparison(
        ExecutionPolicy::parallel(),
        Benchmark::Cifar10Like,
        &scale,
        &TuningMethod::EXTENDED,
        &settings,
        seed,
        &mut store,
    )
    .unwrap();
    let replayed = replay_method_comparison(
        &store,
        Benchmark::Cifar10Like,
        &scale,
        &TuningMethod::EXTENDED,
        &settings,
        seed,
    )
    .unwrap();
    assert_eq!(recorded, replayed);
    assert_eq!(replayed.runs.len(), 6 * 2 * scale.method_trials);
    // And the reports built on top agree.
    assert_eq!(
        recorded.to_online_report().unwrap().to_table(),
        replayed.to_online_report().unwrap().to_table()
    );

    // Replicate resampling: a fresh re-evaluation schedule with a different
    // resample seed still replays (drawing from recorded replicates) even
    // though its exact replicate indices were never recorded.
    // The recorded ASHA ladder at smoke scale: 12 configs, eta 3, rungs at
    // 2 and 6 rounds (mirrors `TuningMethod::asha`).
    let asha = fedtune::fedhpo::Asha::new(
        scale.num_configs * scale.eta,
        scale.eta,
        2,
        scale.rounds_per_config,
    );
    let policy = fedtune::fedhpo::ReEvaluation::new(asha, 2, 5);
    let mut scheduler = policy.scheduler().unwrap();
    let space = fedtune::fedhpo::SearchSpace::paper_default();
    let mut tabular = TabularObjective::new(&store, &space).with_resample_seed(99);
    // Unit 8 of the recorded grid is ASHA (method index 4) under the
    // noiseless setting, trial 0: methods are enumerated method-major with
    // 2 settings x method_trials trials each.
    let unit_index = 4 * 2 * scale.method_trials;
    let tree = fedtune::fedmath::SeedTree::new(derive_seed(seed, 7));
    let mut rng = tree.child(unit_index as u64).child(1).rng();
    let outcome = run_scheduled(&mut scheduler, &space, &mut tabular, &mut rng).unwrap();
    assert!(outcome.num_evaluations() > 0);
    assert!(tabular.resampled() > 0, "extra replicates should resample");
    assert!(tabular.exact_hits() > 0);
}
