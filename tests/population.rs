//! Acceptance tests of the `fedpop` population substrate: O(cohort) memory
//! at million-client scale, availability windows that move with simulated
//! time, and the monotone subsampling-noise story end to end.

use feddata::Benchmark;
use fedmodels::ModelSpec;
use fedpop::{
    train_on_population, AvailabilityModel, CachedPopulation, ClientCache, CohortSampler,
    Population, PopulationSpec, PopulationSummary, SyntheticPopulation,
};
use fedsim::clock::VirtualClock;
use fedsim::{ExecutionPolicy, FederatedTrainer, TrainerConfig};
use fedtune_core::experiments::population::{run_population_noise_with, PopulationExperimentScale};
use fedtune_core::TrialRunner;

#[test]
fn million_client_campaign_stays_cohort_bounded() {
    // The headline acceptance: a campaign over a 1,000,000-client population
    // with peak resident clients bounded by cohort size + cache capacity.
    let population = SyntheticPopulation::new(
        PopulationSpec::benchmark(Benchmark::RedditLike, 1_000_000),
        13,
    )
    .unwrap();
    assert_eq!(population.num_clients(), 1_000_000);
    let cohort = 16;
    let cache_capacity = 48;
    let cache = ClientCache::new(cache_capacity);
    let source = CachedPopulation::new(&population, &cache);
    let config = TrainerConfig {
        clients_per_round: cohort,
        ..Default::default()
    }
    .with_execution(ExecutionPolicy::parallel_with(4));
    let mut run = FederatedTrainer::new(config)
        .unwrap()
        .start_with_dims(
            population.input_dim(),
            population.num_classes(),
            ModelSpec::for_task(population.task()),
            2,
        )
        .unwrap();
    let mut clock = VirtualClock::new();
    let report = train_on_population(
        &mut run,
        &source,
        CohortSampler::Uniform,
        cohort,
        10,
        60.0,
        &mut clock,
    )
    .unwrap();
    assert_eq!(report.rounds, 10);
    assert_eq!(run.rounds_completed(), 10);
    // The `cohort + cache capacity` residency bound follows from its two
    // measured components, each asserted against its configured cap: the
    // sampler never returns more ids than requested, and the cache's
    // eviction loop never lets the map outgrow its capacity.
    assert!(report.max_cohort <= cohort);
    let stats = cache.stats();
    assert!(stats.peak_resident <= cache_capacity);
    assert!(report.peak_resident_clients(stats.peak_resident) <= cohort + cache_capacity);
    // The campaign only ever touched a vanishing fraction of the population.
    assert!(stats.misses <= (report.total_participants as u64) + stats.evictions);
    assert!(stats.misses < 1_000);
}

#[test]
fn sparse_ids_materialize_without_neighbours() {
    let population = SyntheticPopulation::new(
        PopulationSpec::benchmark(Benchmark::StackOverflowLike, 1_000_000),
        4,
    )
    .unwrap();
    // Touch a handful of far-apart clients: ids at the extremes of the id
    // space materialize directly, each with at least one example.
    for id in [0u64, 1, 499_999, 999_998, 999_999] {
        let client = population.materialize(id).unwrap();
        assert_eq!(client.id() as u64, id);
        assert!(client.num_examples() >= 1);
        assert_eq!(
            client.num_examples(),
            population.client_size(id).unwrap(),
            "metadata and shard disagree for client {id}"
        );
    }
    assert!(population.materialize(1_000_000).is_err());
}

#[test]
fn diurnal_windows_shift_cohorts_with_simulated_time() {
    let spec = PopulationSpec::benchmark(Benchmark::Cifar10Like, 50_000)
        .with_availability(AvailabilityModel::diurnal(0.35));
    let population = SyntheticPopulation::new(spec, 21).unwrap();
    // The same RNG state at two times half a day apart selects different
    // (but valid) cohorts: the window moved across the population.
    let morning = CohortSampler::Available
        .sample(&population, &mut fedmath::rng::rng_for(0, 0), 48, 0.0)
        .unwrap();
    let evening = CohortSampler::Available
        .sample(&population, &mut fedmath::rng::rng_for(0, 0), 48, 43_200.0)
        .unwrap();
    assert!(!morning.is_empty());
    assert!(!evening.is_empty());
    assert!(morning.iter().all(|&id| population.available(id, 0.0)));
    assert!(evening.iter().all(|&id| population.available(id, 43_200.0)));
    assert_ne!(morning, evening, "the availability window never moved");
    // The probe summary sees partial coverage at every time of day.
    let summary = PopulationSummary::probe(&population, 2_000).unwrap();
    for &(_, fraction) in &summary.availability_coverage {
        assert!(
            fraction > 0.2 && fraction < 0.5,
            "coverage {fraction} inconsistent with a 35% window"
        );
    }
}

#[test]
fn noise_story_holds_under_the_parallel_runner() {
    // The CI gate at test scale: variance shrinks and rank fidelity grows
    // monotonically with the cohort size, through the parallel engine.
    let mut scale = PopulationExperimentScale::smoke();
    scale.populations = vec![10_000];
    let result = run_population_noise_with(
        &TrialRunner::new(ExecutionPolicy::parallel_with(4)),
        Benchmark::Cifar10Like,
        &scale,
        3,
    )
    .unwrap();
    assert!(
        result.is_monotone(1e-9),
        "noise curves not monotone: {:#?}",
        result.sweeps[0].points
    );
    let sweep = &result.sweeps[0];
    let first = sweep.points.first().unwrap();
    let last = sweep.points.last().unwrap();
    assert!(last.noise_variance < first.noise_variance / 2.0);
    assert!(last.spearman > first.spearman);
}
