//! End-to-end tests of the fedserve tuning service daemon: multi-tenant
//! bit-identity, the unix-socket protocol path, and crash-restart from the
//! ledgers alone.
//!
//! The contract under test is the service-level determinism promise
//! (`DESIGN.md`, "Tuning service"): hosting a campaign in the daemon — with
//! co-tenants, fair-share admission, a shared real-thread pool, even a kill
//! and restart in the middle — may move wall-clock time, but never a single
//! bit of the campaign's selections or virtual timeline.
//!
//! To re-baseline the pins after a conscious numerics change, run
//! `cargo test --release --test service -- --nocapture` and copy the
//! printed `actual:` lines over the `GOLDEN_*` constants.

use fedserve::{
    CampaignLimits, CampaignSpec, CampaignState, CampaignStatus, Client, CostSpec, DimSpec,
    ObjectiveSpec, SchedulerSpec, Selection, Service, ServiceConfig, UnixServeListener,
};
use fedtune_core::{run_event_driven_concurrent, EventDrivenOutcome, VirtualExecution};
use std::path::PathBuf;
use std::sync::Arc;
use std::time::Duration;

/// Service-level golden pins: `(name, evaluations, best trial, score bits,
/// sim_elapsed bits)` for the two tenant campaigns of the daemon tests.
const GOLDEN_ALPHA: (u64, usize, u64, u64) = (19, 7, 0x3fd244caf1d2a73c, 0x406d1d48e6ac78b3); // score 0.2854487763930711, sim_elapsed 232.91514905629955
const GOLDEN_BETA: (u64, usize, u64, u64) = (10, 2, 0x3fbcd49ae6e50b78, 0x4072800000000000); // score 0.11261909615590848, sim_elapsed 296

fn unique_root(tag: &str) -> PathBuf {
    let root = std::env::temp_dir().join(format!("fedserve_test_{tag}_{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&root);
    root
}

/// Campaign "alpha": async ASHA under heavy-tailed stragglers.
fn alpha_spec(latency_scale: f64) -> CampaignSpec {
    CampaignSpec {
        name: "alpha".to_string(),
        seed: 11,
        space: vec![
            DimSpec::Uniform {
                name: "x".to_string(),
                low: 0.0,
                high: 1.0,
            },
            DimSpec::LogUniform {
                name: "lr".to_string(),
                low: 1e-3,
                high: 1.0,
            },
        ],
        scheduler: SchedulerSpec::AsyncAsha {
            trials: 12,
            eta: 3,
            min_resource: 1,
            max_resource: 9,
        },
        objective: ObjectiveSpec::Analytic {
            target: 0.3,
            noise_sd: 0.15,
            latency_scale,
            fail_trial: None,
            panic_trial: None,
        },
        cost: CostSpec::HeavyTailedClients {
            clients: 40,
            per_round: 4,
            seed: 5,
        },
        workers: 4,
        sim_budget: None,
        limits: CampaignLimits::default(),
    }
}

/// Campaign "beta": random search with a different seed and cost model.
fn beta_spec(latency_scale: f64) -> CampaignSpec {
    CampaignSpec {
        name: "beta".to_string(),
        seed: 23,
        space: vec![DimSpec::Uniform {
            name: "x".to_string(),
            low: 0.0,
            high: 1.0,
        }],
        scheduler: SchedulerSpec::RandomSearch {
            trials: 10,
            resource: 6,
        },
        objective: ObjectiveSpec::Analytic {
            target: 0.55,
            noise_sd: 0.05,
            latency_scale,
            fail_trial: None,
            panic_trial: None,
        },
        cost: CostSpec::PerRound {
            round_seconds: 12.0,
            eval_seconds: 2.0,
        },
        workers: 3,
        sim_budget: None,
        limits: CampaignLimits::default(),
    }
}

/// The reference run: the same campaign straight through the library
/// executor (`run_event_driven_concurrent`), no service anywhere.
fn standalone(spec: &CampaignSpec, threads: usize) -> EventDrivenOutcome {
    let space = spec.build_space().unwrap();
    let mut scheduler = spec.build_scheduler().unwrap();
    let mut rng = fedmath::rng::rng_for(spec.seed, 0);
    let mut sim = VirtualExecution::new(spec.workers, spec.cost.build());
    if let Some(budget) = spec.sim_budget {
        sim = sim.with_sim_budget(budget);
    }
    let mut objective = fedserve::build_objective(spec, fedstore::TrialStore::in_memory()).unwrap();
    let outcome = run_event_driven_concurrent(
        scheduler.as_mut(),
        &space,
        &mut objective,
        &mut rng,
        &sim,
        threads,
    )
    .unwrap();
    assert!(outcome.finished);
    outcome
}

fn print_actual(name: &str, status: &CampaignStatus) {
    let selection = status.selection.as_ref().expect("settled with selection");
    println!(
        "actual {name}: ({}, {}, 0x{:016x}, 0x{:016x}), // score {}, sim_elapsed {}",
        status.evaluations,
        selection.trial_id,
        selection.score.to_bits(),
        status.sim_elapsed.to_bits(),
        selection.score,
        status.sim_elapsed,
    );
}

fn assert_matches_standalone(status: &CampaignStatus, reference: &EventDrivenOutcome) {
    assert_eq!(status.state, CampaignState::Completed, "{}", status.name);
    assert_eq!(
        status.sim_elapsed.to_bits(),
        reference.sim_elapsed.to_bits(),
        "{}: sim_elapsed diverged from the standalone run",
        status.name
    );
    assert_eq!(
        status.evaluations,
        reference.outcome.num_evaluations() as u64,
        "{}",
        status.name
    );
    let best = reference.outcome.best().expect("standalone selected");
    let selection = status.selection.as_ref().expect("service selected");
    assert_eq!(selection.trial_id, best.trial_id, "{}", status.name);
    assert_eq!(
        selection.score.to_bits(),
        best.score.to_bits(),
        "{}: selection score diverged from the standalone run",
        status.name
    );
    assert_eq!(
        selection.sim_time.to_bits(),
        best.sim_time.to_bits(),
        "{}",
        status.name
    );
    assert_eq!(
        selection.config,
        best.config.values().to_vec(),
        "{}: selected configuration diverged",
        status.name
    );
}

fn assert_pin(name: &str, status: &CampaignStatus, pin: (u64, usize, u64, u64)) {
    let (evaluations, best_trial, score_bits, elapsed_bits) = pin;
    let selection = status.selection.as_ref().expect("settled with selection");
    assert_eq!(status.evaluations, evaluations, "{name}: schedule changed");
    assert_eq!(
        selection.trial_id, best_trial,
        "{name}: winning configuration changed"
    );
    assert_eq!(
        selection.score.to_bits(),
        score_bits,
        "{name}: winning score drifted: got {} (0x{:016x})",
        selection.score,
        selection.score.to_bits(),
    );
    assert_eq!(
        status.sim_elapsed.to_bits(),
        elapsed_bits,
        "{name}: virtual timeline drifted: got {} (0x{:016x})",
        status.sim_elapsed,
        status.sim_elapsed.to_bits(),
    );
}

/// Two campaigns with different schedulers, seeds, and cost models share
/// one daemon over an 8-thread pool: each must reproduce, bit for bit, its
/// own standalone `run_event_driven_concurrent` run and the committed pins.
#[test]
fn two_tenant_daemon_reproduces_standalone_bits() {
    let alpha_ref = standalone(&alpha_spec(0.0), 8);
    let beta_ref = standalone(&beta_spec(0.0), 8);

    let root = unique_root("two_tenant");
    let service = Service::open(
        &root,
        ServiceConfig {
            threads: 8,
            global_in_flight: 8,
        },
    )
    .unwrap();
    service.submit(alpha_spec(0.0)).unwrap();
    service.submit(beta_spec(0.0)).unwrap();
    let alpha = service.wait("alpha", Duration::from_secs(120)).unwrap();
    let beta = service.wait("beta", Duration::from_secs(120)).unwrap();
    service.shutdown();

    // Print both actuals before asserting, so a drift still shows the full
    // re-baselining table.
    print_actual("GOLDEN_ALPHA", &alpha);
    print_actual("GOLDEN_BETA", &beta);

    assert_matches_standalone(&alpha, &alpha_ref);
    assert_matches_standalone(&beta, &beta_ref);
    assert_pin("alpha", &alpha, GOLDEN_ALPHA);
    assert_pin("beta", &beta, GOLDEN_BETA);

    // Everything ran live (fresh ledgers, no replay).
    assert_eq!(alpha.ledger_hits, 0);
    assert_eq!(alpha.ledger_misses, alpha.evaluations);

    let _ = std::fs::remove_dir_all(&root);
}

/// The full protocol path: daemon on a unix socket, campaigns submitted and
/// awaited through the client library, malformed frames answered with
/// structured errors without dropping the connection.
#[test]
fn unix_socket_daemon_end_to_end() {
    let root = unique_root("unix");
    let socket = root.join("fedserve.sock");
    std::fs::create_dir_all(&root).unwrap();

    let service = Service::open(
        &root,
        ServiceConfig {
            threads: 4,
            global_in_flight: 4,
        },
    )
    .unwrap();
    let mut listener = UnixServeListener::bind(&socket).unwrap();
    let serving = {
        let service = Arc::clone(&service);
        std::thread::spawn(move || service.serve(&mut listener))
    };

    let mut client = Client::connect_unix(&socket).unwrap();
    client.ping().unwrap();

    // Submit both tenants over the wire and wait for them.
    assert_eq!(client.submit(alpha_spec(0.0)).unwrap(), "alpha");
    assert_eq!(client.submit(beta_spec(0.0)).unwrap(), "beta");
    let alpha = client.wait("alpha", 120_000).unwrap();
    let beta = client.wait("beta", 120_000).unwrap();
    assert_eq!(alpha.state, CampaignState::Completed);
    assert_eq!(beta.state, CampaignState::Completed);
    // The socket changes nothing: same pins as the in-process test.
    assert_pin("alpha", &alpha, GOLDEN_ALPHA);
    assert_pin("beta", &beta, GOLDEN_BETA);

    // Structured errors, not dropped connections.
    match client.submit(alpha_spec(0.0)) {
        Err(fedserve::ServeError::Remote { code, .. }) => {
            assert_eq!(code, fedserve::ErrorCode::Duplicate);
        }
        other => panic!("duplicate submit: {other:?}"),
    }
    match client.status(Some("nonexistent")) {
        Err(fedserve::ServeError::Remote { code, .. }) => {
            assert_eq!(code, fedserve::ErrorCode::Unknown);
        }
        other => panic!("unknown campaign: {other:?}"),
    }

    // A garbage payload in a well-formed frame gets an error response and
    // the connection keeps working.
    {
        use std::io::Write;
        let mut raw = std::os::unix::net::UnixStream::connect(&socket).unwrap();
        raw.write_all(&fedserve::encode_frame(b"this is not json"))
            .unwrap();
        raw.flush().unwrap();
        let reply: fedserve::Response = fedserve::proto::read_message(&mut raw).unwrap().unwrap();
        match reply {
            fedserve::Response::Error { code, .. } => {
                assert_eq!(code, fedserve::ErrorCode::BadRequest);
            }
            other => panic!("garbage frame: {other:?}"),
        }
        // Same connection, valid request: still alive.
        fedserve::proto::write_message(&mut raw, &fedserve::Request::Ping).unwrap();
        let reply: fedserve::Response = fedserve::proto::read_message(&mut raw).unwrap().unwrap();
        assert!(matches!(reply, fedserve::Response::Pong));

        // An oversized frame is answered, then the server hangs up.
        let mut huge = Vec::new();
        huge.extend_from_slice(&fedserve::MAGIC);
        huge.extend_from_slice(&(fedserve::MAX_FRAME as u32 + 1).to_le_bytes());
        raw.write_all(&huge).unwrap();
        raw.flush().unwrap();
        let reply: fedserve::Response = fedserve::proto::read_message(&mut raw).unwrap().unwrap();
        match reply {
            fedserve::Response::Error { code, .. } => {
                assert_eq!(code, fedserve::ErrorCode::Oversized);
            }
            other => panic!("oversized frame: {other:?}"),
        }
        match fedserve::proto::read_message::<fedserve::Response>(&mut raw) {
            Ok(None) | Err(_) => {} // server closed the stream
            Ok(Some(other)) => panic!("expected hangup, got {other:?}"),
        }
    }

    // Metrics merge service and campaign registries.
    let metrics = client.metrics().unwrap();
    let submitted = metrics
        .counters
        .iter()
        .find(|c| c.name == "serve.campaigns_submitted")
        .expect("service counter present");
    assert_eq!(submitted.value, 2);

    client.shutdown().unwrap();
    serving.join().unwrap().unwrap();
    let _ = std::fs::remove_dir_all(&root);
}

/// Polls until the named campaign has committed at least `target`
/// evaluations (or settled), so a kill lands mid-run, not before it.
fn wait_for_progress(service: &Service, name: &str, target: u64) {
    for _ in 0..2000 {
        let status = service.status(Some(name)).unwrap().remove(0);
        if status.evaluations >= target || status.state.is_settled() {
            return;
        }
        std::thread::sleep(Duration::from_millis(5));
    }
    panic!("{name} never reached {target} evaluations");
}

/// Kill-and-restart bit identity, across three seeds: a daemon killed
/// mid-campaign (simulated crash — only spec + ledger survive) and
/// reopened from the same root must finish with selections and virtual
/// timelines bit-identical to a never-interrupted run, replaying the
/// committed prefix from the ledger instead of re-evaluating it.
#[test]
fn kill_and_restart_resumes_bit_identically() {
    for seed in [31u64, 32, 33] {
        // Slow the campaign down just enough that the kill lands mid-run.
        let mut spec = alpha_spec(0.002);
        spec.name = format!("crash-{seed}");
        spec.seed = seed;
        let mut reference_spec = spec.clone();
        reference_spec.objective = ObjectiveSpec::Analytic {
            target: 0.3,
            noise_sd: 0.15,
            latency_scale: 0.0,
            fail_trial: None,
            panic_trial: None,
        };
        let reference = standalone(&reference_spec, 8);

        let root = unique_root(&format!("crash_{seed}"));
        let config = ServiceConfig {
            threads: 4,
            global_in_flight: 4,
        };

        // First life: submit, let it commit a few evaluations, crash.
        let interrupted = {
            let service = Service::open(&root, config).unwrap();
            service.submit(spec.clone()).unwrap();
            wait_for_progress(&service, &spec.name, 4);
            service.kill();
            let status = service.status(Some(&spec.name)).unwrap().remove(0);
            drop(service);
            status
        };
        assert!(
            !interrupted.state.is_terminal(),
            "seed {seed}: a killed campaign must stay resumable, got {:?}",
            interrupted.state
        );
        assert!(
            !root
                .join("campaigns")
                .join(&spec.name)
                .join("DONE.json")
                .exists(),
            "seed {seed}: crash must not leave a terminal marker"
        );

        // Second life: reopen the same root. Recovery respawns the driver,
        // which replays the ledger prefix and continues.
        let service = Service::open(&root, config).unwrap();
        let resumed = service.wait(&spec.name, Duration::from_secs(120)).unwrap();
        service.shutdown();

        assert_eq!(resumed.state, CampaignState::Completed, "seed {seed}");
        assert!(
            resumed.ledger_hits > 0,
            "seed {seed}: the restart must replay committed work, not redo it"
        );
        assert_eq!(
            resumed.ledger_hits + resumed.ledger_misses,
            resumed.evaluations,
            "seed {seed}"
        );
        assert_eq!(
            resumed.sim_elapsed.to_bits(),
            reference.sim_elapsed.to_bits(),
            "seed {seed}: sim_elapsed diverged after crash-restart"
        );
        let best = reference.outcome.best().unwrap();
        let selection = resumed.selection.as_ref().unwrap();
        assert_eq!(selection.trial_id, best.trial_id, "seed {seed}");
        assert_eq!(
            selection.score.to_bits(),
            best.score.to_bits(),
            "seed {seed}: selection diverged after crash-restart"
        );

        // Third life: reopening a terminal campaign only reports it.
        let service = Service::open(&root, config).unwrap();
        let reloaded = service.status(Some(&spec.name)).unwrap().remove(0);
        assert_eq!(reloaded.state, CampaignState::Completed, "seed {seed}");
        assert_eq!(
            reloaded.selection.as_ref().unwrap().score.to_bits(),
            selection.score.to_bits(),
            "seed {seed}: DONE.json round-trip changed the selection"
        );
        service.shutdown();
        let _ = std::fs::remove_dir_all(&root);
    }
}

/// Graceful shutdown mid-campaign suspends (not fails) the tenant, and a
/// reopened service finishes it with the uninterrupted bits.
#[test]
fn graceful_shutdown_suspends_and_resumes() {
    let mut spec = beta_spec(0.004);
    spec.name = "suspended".to_string();
    let mut reference_spec = spec.clone();
    reference_spec.objective = ObjectiveSpec::Analytic {
        target: 0.55,
        noise_sd: 0.05,
        latency_scale: 0.0,
        fail_trial: None,
        panic_trial: None,
    };
    let reference = standalone(&reference_spec, 8);

    let root = unique_root("suspend");
    let config = ServiceConfig {
        threads: 3,
        global_in_flight: 3,
    };
    {
        let service = Service::open(&root, config).unwrap();
        service.submit(spec.clone()).unwrap();
        wait_for_progress(&service, &spec.name, 2);
        service.shutdown();
        let status = service.status(Some(&spec.name)).unwrap().remove(0);
        // Either it finished before the shutdown drained, or it suspended;
        // both must resume/report cleanly below.
        assert!(status.state.is_settled());
    }
    let service = Service::open(&root, config).unwrap();
    let finished = service.wait(&spec.name, Duration::from_secs(120)).unwrap();
    service.shutdown();
    assert_eq!(finished.state, CampaignState::Completed);
    assert_eq!(
        finished.sim_elapsed.to_bits(),
        reference.sim_elapsed.to_bits(),
        "sim_elapsed diverged across suspend/resume"
    );
    let best = reference.outcome.best().unwrap();
    assert_eq!(
        finished.selection.as_ref().unwrap().score.to_bits(),
        best.score.to_bits(),
        "selection diverged across suspend/resume"
    );
    let _ = std::fs::remove_dir_all(&root);
}

/// A panicking tenant fails alone: its co-tenant completes with clean bits
/// on the same pool and gate.
#[test]
fn a_panicking_tenant_does_not_touch_its_neighbor() {
    let reference = standalone(&beta_spec(0.0), 8);

    let root = unique_root("panic_isolation");
    let service = Service::open(
        &root,
        ServiceConfig {
            threads: 4,
            global_in_flight: 4,
        },
    )
    .unwrap();
    let mut rigged = alpha_spec(0.0);
    rigged.name = "rigged".to_string();
    rigged.objective = ObjectiveSpec::Analytic {
        target: 0.3,
        noise_sd: 0.15,
        latency_scale: 0.0,
        fail_trial: None,
        panic_trial: Some(3),
    };
    service.submit(rigged).unwrap();
    service.submit(beta_spec(0.0)).unwrap();
    let rigged = service.wait("rigged", Duration::from_secs(120)).unwrap();
    let beta = service.wait("beta", Duration::from_secs(120)).unwrap();
    service.shutdown();

    assert_eq!(rigged.state, CampaignState::Failed);
    assert!(rigged.error.is_some());
    assert_matches_standalone(&beta, &reference);

    let _ = std::fs::remove_dir_all(&root);
}

/// The spec → selection record survives the JSON wire format bit-exactly.
#[test]
fn selection_json_round_trip_is_bit_exact() {
    let selection = Selection {
        trial_id: 7,
        config: vec![0.123_456_789_012_345_68, 1e-300],
        score: 0.1 + 0.2, // famously not 0.3
        resource: 9,
        sim_time: 12345.6789,
    };
    let json = serde_json::to_string(&selection).unwrap();
    let back: Selection = serde_json::from_str(&json).unwrap();
    assert_eq!(back.score.to_bits(), selection.score.to_bits());
    assert_eq!(back.sim_time.to_bits(), selection.sim_time.to_bits());
    for (a, b) in back.config.iter().zip(&selection.config) {
        assert_eq!(a.to_bits(), b.to_bits());
    }
}
