//! Cross-policy determinism: the parallel execution engine must produce
//! **bit-identical** results to sequential execution, at every layer of the
//! stack, across seeds and thread counts.
//!
//! This is the contract that makes the `ExecutionPolicy` knob safe to flip in
//! production: parallelism may only change wall-clock time, never a single
//! bit of a model parameter or an experiment statistic.

use feddata::{Benchmark, DatasetSpec, Scale};
use fedmodels::{Model, ModelSpec};
use fedpop::{
    train_on_population, CachedPopulation, ClientCache, CohortSampler, Population, PopulationSpec,
    SyntheticPopulation,
};
use fedsim::clock::VirtualClock;
use fedsim::{ExecutionPolicy, FederatedTrainer, TrainerConfig};
use fedtune_core::experiments::methods::{
    paper_noise_settings, run_method_comparison_scheduled, run_method_comparison_with, TuningMethod,
};
use fedtune_core::experiments::stragglers::straggler_cost_model;
use fedtune_core::experiments::subsampling::run_subsampling_sweep_with;
use fedtune_core::{
    run_event_driven, run_event_driven_concurrent, run_event_driven_traced,
    BatchFederatedObjective, BenchmarkContext, ConfigPool, EventDrivenOutcome, ExperimentScale,
    NoiseConfig, ObjectiveLogEntry, TrialRunner, VirtualExecution,
};

const SEEDS: [u64; 3] = [0, 7, 42];
const THREAD_COUNTS: [usize; 3] = [2, 3, 8];

fn assert_bits_equal(label: &str, a: &[f64], b: &[f64]) {
    assert_eq!(a.len(), b.len(), "{label}: length mismatch");
    for (i, (x, y)) in a.iter().zip(b.iter()).enumerate() {
        assert_eq!(
            x.to_bits(),
            y.to_bits(),
            "{label}: parameter {i} differs ({x} vs {y})"
        );
    }
}

#[test]
fn training_run_is_bit_identical_across_policies() {
    let dataset = DatasetSpec::benchmark(Benchmark::Cifar10Like, Scale::Smoke)
        .generate(1)
        .unwrap();
    for &seed in &SEEDS {
        let sequential_config = TrainerConfig {
            clients_per_round: 7,
            ..Default::default()
        };
        let sequential = FederatedTrainer::new(sequential_config)
            .unwrap()
            .train(&dataset, ModelSpec::Mlp { hidden_dim: 8 }, 8, seed)
            .unwrap();
        for &threads in &THREAD_COUNTS {
            let parallel_config =
                sequential_config.with_execution(ExecutionPolicy::parallel_with(threads));
            let parallel = FederatedTrainer::new(parallel_config)
                .unwrap()
                .train(&dataset, ModelSpec::Mlp { hidden_dim: 8 }, 8, seed)
                .unwrap();
            assert_bits_equal(
                &format!("seed {seed}, {threads} threads"),
                &sequential.model().params(),
                &parallel.model().params(),
            );
        }
    }
}

#[test]
fn kernel_sized_training_run_is_bit_identical_across_policies() {
    // Same contract as above, but at shapes that drive the fedmath kernels
    // through their full blocking machinery: hidden_dim 64 spans four
    // 16-column register tiles in `gemm`/`gemm_tn`, and an explicit
    // batch_size of 32 exercises both full minibatch GEMMs and the smaller
    // final chunk of each client's shard. Parallelism must stay invisible
    // even when every hot-path kernel is engaged.
    let dataset = DatasetSpec::benchmark(Benchmark::Cifar10Like, Scale::Smoke)
        .generate(4)
        .unwrap();
    let mut hyperparams = fedsim::FederatedHyperparams::default();
    hyperparams.client.batch_size = 32;
    for &seed in &SEEDS {
        let sequential_config = TrainerConfig {
            clients_per_round: 5,
            hyperparams,
            ..Default::default()
        };
        let sequential = FederatedTrainer::new(sequential_config)
            .unwrap()
            .train(&dataset, ModelSpec::Mlp { hidden_dim: 64 }, 4, seed)
            .unwrap();
        for &threads in &THREAD_COUNTS {
            let parallel_config =
                sequential_config.with_execution(ExecutionPolicy::parallel_with(threads));
            let parallel = FederatedTrainer::new(parallel_config)
                .unwrap()
                .train(&dataset, ModelSpec::Mlp { hidden_dim: 64 }, 4, seed)
                .unwrap();
            assert_bits_equal(
                &format!("kernel-sized run, seed {seed}, {threads} threads"),
                &sequential.model().params(),
                &parallel.model().params(),
            );
        }
    }
}

#[test]
fn incremental_parallel_training_matches_one_shot_sequential() {
    // Resuming a run under one policy must land on the same model as a fresh
    // run under the other: round seeds are positional, not consumed.
    let dataset = DatasetSpec::benchmark(Benchmark::FemnistLike, Scale::Smoke)
        .generate(2)
        .unwrap();
    for &seed in &SEEDS {
        let one_shot = FederatedTrainer::new(TrainerConfig::default())
            .unwrap()
            .train(&dataset, ModelSpec::Softmax, 6, seed)
            .unwrap();
        let config = TrainerConfig::default().with_execution(ExecutionPolicy::parallel_with(4));
        let mut resumed = FederatedTrainer::new(config)
            .unwrap()
            .start(&dataset, ModelSpec::Softmax, seed)
            .unwrap();
        resumed.run_rounds(&dataset, 2).unwrap();
        resumed.run_rounds(&dataset, 4).unwrap();
        assert_bits_equal(
            &format!("seed {seed}"),
            &one_shot.model().params(),
            &resumed.model().params(),
        );
    }
}

#[test]
fn config_pool_training_is_bit_identical_across_policies() {
    let scale = ExperimentScale::smoke();
    for &seed in &SEEDS {
        let ctx = BenchmarkContext::new(Benchmark::Cifar10Like, &scale, seed).unwrap();
        let sequential =
            ConfigPool::train_with(&ctx, scale.pool_size, seed, &TrialRunner::sequential())
                .unwrap();
        for &threads in &THREAD_COUNTS {
            let runner = TrialRunner::new(ExecutionPolicy::parallel_with(threads));
            let parallel = ConfigPool::train_with(&ctx, scale.pool_size, seed, &runner).unwrap();
            assert_eq!(sequential.len(), parallel.len());
            assert_bits_equal(
                &format!("pool errors, seed {seed}, {threads} threads"),
                &sequential.true_errors(),
                &parallel.true_errors(),
            );
            for (a, b) in sequential.entries().iter().zip(parallel.entries()) {
                assert_eq!(a.config, b.config, "seed {seed}, {threads} threads");
                assert_bits_equal(
                    &format!("pooled model {}, seed {seed}", a.index),
                    &a.model.params(),
                    &b.model.params(),
                );
            }
        }
    }
}

#[test]
fn subsampling_experiment_is_bit_identical_across_policies() {
    // A full experiment runner end to end: pool training plus the Fig. 3
    // bootstrap sweep.
    let scale = ExperimentScale::smoke();
    for &seed in &SEEDS {
        let sequential = run_subsampling_sweep_with(
            &TrialRunner::sequential(),
            Benchmark::Cifar10Like,
            &scale,
            seed,
        )
        .unwrap();
        let parallel = run_subsampling_sweep_with(
            &TrialRunner::new(ExecutionPolicy::parallel_with(4)),
            Benchmark::Cifar10Like,
            &scale,
            seed,
        )
        .unwrap();
        assert_eq!(sequential, parallel, "seed {seed}");
    }
}

#[test]
fn method_comparison_is_bit_identical_across_policies() {
    // The live-training campaign (RS/TPE/HB/BOHB × noise settings × trials)
    // through the engine: heavier, so one seed and one thread count.
    let scale = ExperimentScale::smoke();
    let noise_settings = paper_noise_settings();
    let sequential = run_method_comparison_with(
        &TrialRunner::sequential(),
        Benchmark::Cifar10Like,
        &scale,
        &noise_settings,
        3,
    )
    .unwrap();
    let parallel = run_method_comparison_with(
        &TrialRunner::new(ExecutionPolicy::parallel_with(4)),
        Benchmark::Cifar10Like,
        &scale,
        &noise_settings,
        3,
    )
    .unwrap();
    assert_eq!(sequential, parallel);
}

#[test]
fn scheduled_campaigns_are_bit_identical_across_policies() {
    // The ask/tell scheduler driver: ASHA and the re-evaluation policy fan
    // whole batches out across threads, with per-request positional noise.
    // Parallel batch execution must reproduce sequential execution bit for
    // bit across seeds and forced thread counts.
    let scale = ExperimentScale::smoke();
    let noise_settings = paper_noise_settings();
    let methods = [TuningMethod::Asha, TuningMethod::AshaReEval];
    for &seed in &SEEDS {
        let sequential = run_method_comparison_scheduled(
            ExecutionPolicy::Sequential,
            Benchmark::Cifar10Like,
            &scale,
            &methods,
            &noise_settings,
            seed,
        )
        .unwrap();
        for &threads in &THREAD_COUNTS {
            let parallel = run_method_comparison_scheduled(
                ExecutionPolicy::parallel_with(threads),
                Benchmark::Cifar10Like,
                &scale,
                &methods,
                &noise_settings,
                seed,
            )
            .unwrap();
            assert_eq!(sequential, parallel, "seed {seed}, {threads} threads");
        }
    }
}

#[test]
fn scheduled_extended_comparison_is_bit_identical_across_policies() {
    // The full Fig. 8-style comparison (all six methods) through the batch
    // driver: heavier, so one seed and one thread count.
    let scale = ExperimentScale::smoke();
    let noise_settings = paper_noise_settings();
    let sequential = run_method_comparison_scheduled(
        ExecutionPolicy::Sequential,
        Benchmark::Cifar10Like,
        &scale,
        &TuningMethod::EXTENDED,
        &noise_settings,
        11,
    )
    .unwrap();
    let parallel = run_method_comparison_scheduled(
        ExecutionPolicy::parallel_with(4),
        Benchmark::Cifar10Like,
        &scale,
        &TuningMethod::EXTENDED,
        &noise_settings,
        11,
    )
    .unwrap();
    assert_eq!(sequential, parallel);
}

/// One async-ASHA campaign through the event-driven executor with
/// heavy-tailed simulated client runtimes, batches fanned out under
/// `policy` and (optionally) observed by `trace`. Returns the outcome
/// (records in virtual completion order, stamped with sim times) and the
/// objective log.
fn event_driven_campaign(
    ctx: &BenchmarkContext,
    scale: &ExperimentScale,
    policy: ExecutionPolicy,
    seed: u64,
    trace: Option<&fedtrace::Trace>,
) -> (EventDrivenOutcome, Vec<ObjectiveLogEntry>) {
    let method = TuningMethod::AsyncAsha;
    let mut scheduler = method.scheduler(scale).unwrap();
    let planned = method.planned_evaluations(scale);
    let mut objective = BatchFederatedObjective::new(
        ctx,
        NoiseConfig::paper_noisy(),
        planned,
        fedmath::rng::derive_seed(seed, 0),
    )
    .unwrap()
    .with_batch_runner(TrialRunner::new(policy));
    let mut rng = fedmath::rng::rng_for(seed, 1);
    let sim = VirtualExecution::new(3, straggler_cost_model(scale, seed));
    let outcome = run_event_driven_traced(
        scheduler.as_mut(),
        ctx.space(),
        &mut objective,
        &mut rng,
        &sim,
        trace,
    )
    .unwrap();
    (outcome, objective.into_log())
}

#[test]
fn event_driven_campaigns_are_bit_identical_across_policies() {
    // The tentpole contract: the event-driven executor's entire result —
    // scores, completion order, and every virtual timestamp — is a pure
    // function of the schedule and cost model, so real thread counts change
    // nothing. Three seeds × three forced thread counts against the
    // sequential reference.
    let scale = ExperimentScale::smoke();
    for &seed in &SEEDS {
        let ctx = BenchmarkContext::new(Benchmark::Cifar10Like, &scale, seed).unwrap();
        let (sequential, sequential_log) =
            event_driven_campaign(&ctx, &scale, ExecutionPolicy::Sequential, seed, None);
        assert!(sequential.finished);
        assert!(sequential.sim_elapsed > 0.0);
        for &threads in &THREAD_COUNTS {
            let (parallel, parallel_log) = event_driven_campaign(
                &ctx,
                &scale,
                ExecutionPolicy::parallel_with(threads),
                seed,
                None,
            );
            assert_eq!(
                sequential, parallel,
                "seed {seed}, {threads} threads: event-driven outcome diverged"
            );
            assert_eq!(
                sequential_log, parallel_log,
                "seed {seed}, {threads} threads"
            );
            for (a, b) in sequential
                .outcome
                .records()
                .iter()
                .zip(parallel.outcome.records())
            {
                assert_eq!(a.score.to_bits(), b.score.to_bits());
                assert_eq!(a.sim_time.to_bits(), b.sim_time.to_bits());
            }
            assert_eq!(
                sequential.sim_elapsed.to_bits(),
                parallel.sim_elapsed.to_bits()
            );
        }
    }
}

#[test]
fn concurrent_executor_matches_blocking_driver_bit_for_bit() {
    // The real-parallelism contract: evaluating every in-flight virtual
    // trial concurrently on real threads may change wall-clock time only.
    // Outcome, virtual timeline, and campaign log are bit-identical to the
    // blocking sequential driver at 1, 4, and 8 real threads, across seeds.
    let scale = ExperimentScale::smoke();
    for &seed in &SEEDS {
        let ctx = BenchmarkContext::new(Benchmark::Cifar10Like, &scale, seed).unwrap();
        let (blocking, blocking_log) =
            event_driven_campaign(&ctx, &scale, ExecutionPolicy::Sequential, seed, None);
        assert!(blocking.finished);
        for threads in [1usize, 4, 8] {
            let method = TuningMethod::AsyncAsha;
            let mut scheduler = method.scheduler(&scale).unwrap();
            let mut objective = BatchFederatedObjective::new(
                &ctx,
                NoiseConfig::paper_noisy(),
                method.planned_evaluations(&scale),
                fedmath::rng::derive_seed(seed, 0),
            )
            .unwrap();
            let mut rng = fedmath::rng::rng_for(seed, 1);
            let sim = VirtualExecution::new(3, straggler_cost_model(&scale, seed));
            let concurrent = run_event_driven_concurrent(
                scheduler.as_mut(),
                ctx.space(),
                &mut objective,
                &mut rng,
                &sim,
                threads,
            )
            .unwrap();
            assert_eq!(
                blocking, concurrent,
                "seed {seed}, {threads} threads: concurrent outcome diverged"
            );
            for (a, b) in blocking
                .outcome
                .records()
                .iter()
                .zip(concurrent.outcome.records())
            {
                assert_eq!(a.score.to_bits(), b.score.to_bits());
                assert_eq!(a.sim_time.to_bits(), b.sim_time.to_bits());
            }
            assert_eq!(
                blocking.sim_elapsed.to_bits(),
                concurrent.sim_elapsed.to_bits()
            );
            // The campaign log commits in dispatch order on both drivers.
            assert_eq!(
                blocking_log,
                objective.into_log(),
                "seed {seed}, {threads} threads"
            );
        }
    }
}

#[test]
fn tracing_is_accounting_never_semantics() {
    // The fedtrace contract: attaching a trace — metrics registered,
    // counters incremented, journal events recorded — must not move a
    // single bit of the campaign result, across seeds and thread counts.
    // The traced run's Chrome timeline export must also be byte-identical
    // to one rendered from the untraced run's spans, because the timeline
    // is part of the outcome, not a tracing side effect.
    let scale = ExperimentScale::smoke();
    for &seed in &SEEDS {
        let ctx = BenchmarkContext::new(Benchmark::Cifar10Like, &scale, seed).unwrap();
        let (untraced, untraced_log) =
            event_driven_campaign(&ctx, &scale, ExecutionPolicy::Sequential, seed, None);
        for &threads in &THREAD_COUNTS {
            let trace = fedtrace::Trace::new();
            let (traced, traced_log) = event_driven_campaign(
                &ctx,
                &scale,
                ExecutionPolicy::parallel_with(threads),
                seed,
                Some(&trace),
            );
            assert_eq!(
                untraced, traced,
                "seed {seed}, {threads} threads: tracing moved the outcome"
            );
            assert_eq!(untraced_log, traced_log, "seed {seed}, {threads} threads");
            let track = |spans: &[fedtrace::TrialSpan]| {
                fedtrace::virtual_timeline_json(&[fedtrace::TimelineTrack::new(
                    "async-asha",
                    spans.to_vec(),
                )])
            };
            assert_eq!(
                track(&untraced.timeline),
                track(&traced.timeline),
                "seed {seed}, {threads} threads: Chrome export diverged"
            );
            // The trace really was on: the driver registered and fed its
            // metrics and journaled the campaign boundaries.
            let snapshot = trace.snapshot();
            let dispatched = snapshot.counter("async-asha.dispatched").unwrap_or(0);
            assert_eq!(dispatched, untraced.outcome.num_evaluations() as u64);
            assert!(snapshot.counter("async-asha.suggests").unwrap_or(0) > 0);
            assert!(!trace.journal().is_empty());
        }
    }
}

#[test]
fn recorded_async_campaign_replays_with_identical_virtual_timeline() {
    // Record an async event-driven campaign into the fedstore ledger, then
    // replay it from the table alone: same completion order, same virtual
    // timestamps, same sim_elapsed — bit for bit.
    let scale = ExperimentScale::smoke();
    let seed = 4;
    let ctx = BenchmarkContext::new(Benchmark::Cifar10Like, &scale, seed).unwrap();
    let method = TuningMethod::AsyncAsha;
    let planned = method.planned_evaluations(&scale);
    let sim = VirtualExecution::new(3, straggler_cost_model(&scale, seed));
    let mut store = fedstore::TrialStore::in_memory();

    // Live, recorded.
    let mut scheduler = method.scheduler(&scale).unwrap();
    let mut inner = BatchFederatedObjective::new(
        &ctx,
        NoiseConfig::paper_noisy(),
        planned,
        fedmath::rng::derive_seed(seed, 0),
    )
    .unwrap()
    .with_batch_runner(TrialRunner::parallel());
    let mut recording = fedstore::RecordingObjective::new(
        &mut inner,
        ctx.space(),
        fedstore::campaign_provenance(Benchmark::Cifar10Like, &scale, seed, "noisy"),
        &mut store,
    );
    let mut rng = fedmath::rng::rng_for(seed, 1);
    let live = run_event_driven(
        scheduler.as_mut(),
        ctx.space(),
        &mut recording,
        &mut rng,
        &sim,
    )
    .unwrap();
    let live_log = recording.into_log();
    assert!(live.finished);
    assert!(!store.is_empty());
    // The ledger carries the virtual stamps of the recording campaign.
    assert!(store.records().iter().all(|r| r.sim_time > 0.0));

    // Replayed from the ledger alone: no dataset, no training.
    let mut scheduler = method.scheduler(&scale).unwrap();
    let mut tabular = fedstore::TabularObjective::new(&store, ctx.space());
    let mut rng = fedmath::rng::rng_for(seed, 1);
    let replayed = run_event_driven(
        scheduler.as_mut(),
        ctx.space(),
        &mut tabular,
        &mut rng,
        &sim,
    )
    .unwrap();
    assert_eq!(tabular.exact_hits(), live.outcome.num_evaluations());
    assert_eq!(tabular.resampled(), 0);
    let replay_log = tabular.into_log();
    assert_eq!(live, replayed, "replayed virtual timeline diverged");
    assert_eq!(live.sim_elapsed.to_bits(), replayed.sim_elapsed.to_bits());
    for (a, b) in live
        .outcome
        .records()
        .iter()
        .zip(replayed.outcome.records())
    {
        assert_eq!(a.trial_id, b.trial_id);
        assert_eq!(a.resource, b.resource);
        assert_eq!(a.score.to_bits(), b.score.to_bits());
        assert_eq!(a.sim_time.to_bits(), b.sim_time.to_bits());
    }
    assert_eq!(live_log, replay_log);

    // The exported Chrome trace of the virtual timeline is a pure function
    // of the span bits, so record and replay render byte-identical JSON.
    let chrome = |spans: &[fedtrace::TrialSpan]| {
        fedtrace::virtual_timeline_json(&[fedtrace::TimelineTrack::new(
            "async-asha record/replay",
            spans.to_vec(),
        )])
    };
    let live_json = chrome(&live.timeline);
    assert!(!live.timeline.is_empty());
    assert_eq!(
        live_json,
        chrome(&replayed.timeline),
        "record and replay must export byte-identical Chrome traces"
    );
    fedbench::trace::validate_chrome_trace(&live_json).expect("export passes the schema check");
}

/// One population-backed campaign: train against a lazy 20k-client
/// population with the given execution policy and cache capacity, returning
/// the final model parameters.
fn population_campaign(policy: ExecutionPolicy, cache_capacity: usize, seed: u64) -> Vec<f64> {
    let population =
        SyntheticPopulation::new(PopulationSpec::benchmark(Benchmark::FemnistLike, 20_000), 9)
            .unwrap();
    let cache = ClientCache::new(cache_capacity);
    let source = CachedPopulation::new(&population, &cache);
    let config = TrainerConfig {
        clients_per_round: 11,
        ..Default::default()
    }
    .with_execution(policy);
    let mut run = FederatedTrainer::new(config)
        .unwrap()
        .start_with_dims(
            population.input_dim(),
            population.num_classes(),
            ModelSpec::Mlp { hidden_dim: 8 },
            seed,
        )
        .unwrap();
    let mut clock = VirtualClock::new();
    let report = train_on_population(
        &mut run,
        &source,
        CohortSampler::SizeWeighted,
        11,
        6,
        60.0,
        &mut clock,
    )
    .unwrap();
    assert_eq!(report.rounds, 6);
    assert!(cache.stats().peak_resident <= cache_capacity);
    run.model().params()
}

#[test]
fn population_training_is_bit_identical_across_policies() {
    // The fedpop contract: cohort training over a lazy population — ids
    // sampled per round, shards materialized on demand through a shared
    // cache — is a pure function of the seed. Real thread counts and cache
    // capacities change nothing.
    for &seed in &SEEDS {
        let sequential = population_campaign(ExecutionPolicy::Sequential, 32, seed);
        for &threads in &THREAD_COUNTS {
            let parallel = population_campaign(ExecutionPolicy::parallel_with(threads), 32, seed);
            assert_bits_equal(
                &format!("population campaign, seed {seed}, {threads} threads"),
                &sequential,
                &parallel,
            );
        }
        // Cache policy is accounting, never semantics.
        let uncached = population_campaign(ExecutionPolicy::parallel_with(4), 0, seed);
        assert_bits_equal(
            &format!("population campaign, seed {seed}, uncached"),
            &sequential,
            &uncached,
        );
    }
}

#[test]
fn population_noise_experiment_is_bit_identical_across_policies() {
    // The acceptance contract of experiments::population: the whole sweep —
    // trained models, true-probe scores, noisy cohort scores, Spearman
    // curves — reproduces bit-for-bit across execution policies.
    use fedtune_core::experiments::population::{
        run_population_noise_with, PopulationExperimentScale,
    };
    let scale = PopulationExperimentScale::smoke();
    for &seed in &SEEDS {
        let sequential = run_population_noise_with(
            &TrialRunner::sequential(),
            Benchmark::Cifar10Like,
            &scale,
            seed,
        )
        .unwrap();
        for &threads in &THREAD_COUNTS {
            let parallel = run_population_noise_with(
                &TrialRunner::new(ExecutionPolicy::parallel_with(threads)),
                Benchmark::Cifar10Like,
                &scale,
                seed,
            )
            .unwrap();
            assert_eq!(
                sequential.sweeps.len(),
                parallel.sweeps.len(),
                "seed {seed}, {threads} threads"
            );
            for (a, b) in sequential.sweeps.iter().zip(parallel.sweeps.iter()) {
                assert_bits_equal(
                    &format!("true errors, seed {seed}, {threads} threads"),
                    &a.true_errors,
                    &b.true_errors,
                );
                for (pa, pb) in a.points.iter().zip(b.points.iter()) {
                    assert_eq!(pa.cohort_size, pb.cohort_size);
                    assert_eq!(pa.noise_variance.to_bits(), pb.noise_variance.to_bits());
                    assert_eq!(pa.spearman.to_bits(), pb.spearman.to_bits());
                    assert_bits_equal(
                        &format!("spearman per repeat, seed {seed}"),
                        &pa.spearman_per_repeat,
                        &pb.spearman_per_repeat,
                    );
                }
            }
        }
    }
}

#[test]
fn evaluation_is_identical_across_policies() {
    let dataset = DatasetSpec::benchmark(Benchmark::Cifar10Like, Scale::Smoke)
        .generate(3)
        .unwrap();
    let run = FederatedTrainer::new(TrainerConfig::default())
        .unwrap()
        .train(&dataset, ModelSpec::Softmax, 3, 5)
        .unwrap();
    let sequential = fedsim::evaluation::evaluate_full_with(
        &ExecutionPolicy::Sequential,
        run.model(),
        &dataset,
        feddata::Split::Validation,
        fedsim::WeightingScheme::ByExamples,
    )
    .unwrap();
    for &threads in &THREAD_COUNTS {
        let parallel = fedsim::evaluation::evaluate_full_with(
            &ExecutionPolicy::parallel_with(threads),
            run.model(),
            &dataset,
            feddata::Split::Validation,
            fedsim::WeightingScheme::ByExamples,
        )
        .unwrap();
        assert_eq!(sequential, parallel, "{threads} threads");
    }
}
