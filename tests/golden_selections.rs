//! Golden-seed selection regression tests: pin the end-to-end numeric
//! trajectory of the tuning stack — which configuration each campaign
//! selects, and the exact bits of its score — at fixed seeds.
//!
//! The kernel layer promises that optimizations never change results (see
//! `DESIGN.md`, "Kernel layer & buffer pool"). These tests make that promise
//! falsifiable end to end: any change to an accumulation order, a fused
//! operation, or an RNG stream shows up here as a failed bit comparison, and
//! updating the constants becomes an explicit, reviewable re-baselining in
//! the diff rather than a silent drift.
//!
//! To re-baseline after a *conscious* numerics change, run
//! `cargo test --release --test golden_selections -- --nocapture` and copy
//! the printed `actual:` lines over the `GOLDEN_*` tables.

use feddata::Benchmark;
use fedsim::ExecutionPolicy;
use fedtune_core::experiments::methods::{
    paper_noise_settings, run_method_comparison_scheduled, TuningMethod,
};
use fedtune_core::experiments::stragglers::straggler_cost_model;
use fedtune_core::{
    run_event_driven, run_event_driven_concurrent, BatchFederatedObjective, BenchmarkContext,
    ExperimentScale, NoiseConfig, VirtualExecution,
};

/// One pinned scheduled run: `(noise_label, trial, log_len, selected-true-error bits)`.
type ScheduledGolden = (&'static str, usize, usize, u64);

/// ASHA through the ask/tell scheduler at seed 3, smoke scale, both paper
/// noise settings × 2 trials. `log_len` pins the evaluation schedule;
/// the final element pins the bits of the true error of the configuration
/// the tuner selects at the full round budget.
const GOLDEN_SCHEDULED_ASHA: [ScheduledGolden; 4] = [
    ("noiseless", 0, 16, 0x3fe8a2126ad1f4f3), // selected true error 0.7697841726618705
    ("noiseless", 1, 16, 0x3fe568fa798dd01d), // selected true error 0.6690647482014388
    ("noisy", 0, 16, 0x3fe79a0ded975c13),     // selected true error 0.7375554695562435
    ("noisy", 1, 16, 0x3feafb79255d37fb),     // selected true error 0.8431974153297682
];

const SCHEDULED_SEED: u64 = 3;

#[test]
fn scheduled_asha_selections_are_pinned() {
    let scale = ExperimentScale::smoke();
    let noise_settings = paper_noise_settings();
    let comparison = run_method_comparison_scheduled(
        ExecutionPolicy::Sequential,
        Benchmark::Cifar10Like,
        &scale,
        &[TuningMethod::Asha],
        &noise_settings,
        SCHEDULED_SEED,
    )
    .unwrap();
    let budget = *comparison.budget_grid.last().unwrap();
    assert_eq!(comparison.runs.len(), GOLDEN_SCHEDULED_ASHA.len());
    // Print every actual before asserting, so a drift in run 0 still shows
    // the full re-baselining table.
    for run in &comparison.runs {
        let selected = run
            .selected_true_error_within(budget)
            .expect("campaign evaluated at least one configuration");
        println!(
            "actual: (\"{}\", {}, {}, 0x{:016x}), // selected true error {}",
            run.noise_label,
            run.trial,
            run.log.len(),
            selected.to_bits(),
            selected,
        );
    }
    for (run, &(noise_label, trial, log_len, bits)) in
        comparison.runs.iter().zip(GOLDEN_SCHEDULED_ASHA.iter())
    {
        let selected = run
            .selected_true_error_within(budget)
            .expect("campaign evaluated at least one configuration");
        assert_eq!(run.method, "ASHA");
        assert_eq!(run.noise_label, noise_label);
        assert_eq!(run.trial, trial);
        assert_eq!(run.log.len(), log_len, "evaluation schedule changed");
        assert_eq!(
            selected.to_bits(),
            bits,
            "selected true error drifted: got {selected} (0x{:016x})",
            selected.to_bits(),
        );
    }
}

#[test]
fn segment_backed_record_replay_reproduces_the_pinned_bits() {
    // The same pinned campaign, but recorded through the binary segment
    // ledger and replayed from a fresh reopen: the storage engine — framing,
    // provenance interning, recovery scan, index rebuild — must be invisible
    // in the selection bits.
    use fedstore::{record_method_comparison, replay_method_comparison, TrialStore};
    let scale = ExperimentScale::smoke();
    let noise_settings = paper_noise_settings();
    let dir = std::env::temp_dir().join(format!("fedtune_golden_segments_{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    let recorded = {
        let mut store = TrialStore::open_segments(&dir).unwrap();
        record_method_comparison(
            ExecutionPolicy::Sequential,
            Benchmark::Cifar10Like,
            &scale,
            &[TuningMethod::Asha],
            &noise_settings,
            SCHEDULED_SEED,
            &mut store,
        )
        .unwrap()
    };
    let store = TrialStore::open_segments(&dir).unwrap();
    assert!(!store.is_empty());
    let replayed = replay_method_comparison(
        &store,
        Benchmark::Cifar10Like,
        &scale,
        &[TuningMethod::Asha],
        &noise_settings,
        SCHEDULED_SEED,
    )
    .unwrap();
    assert_eq!(recorded, replayed);
    let budget = *replayed.budget_grid.last().unwrap();
    for (run, &(noise_label, trial, log_len, bits)) in
        replayed.runs.iter().zip(GOLDEN_SCHEDULED_ASHA.iter())
    {
        let selected = run
            .selected_true_error_within(budget)
            .expect("campaign evaluated at least one configuration");
        assert_eq!(run.noise_label, noise_label);
        assert_eq!(run.trial, trial);
        assert_eq!(run.log.len(), log_len, "evaluation schedule changed");
        assert_eq!(
            selected.to_bits(),
            bits,
            "segment-backed replay drifted from the pin: got {selected} (0x{:016x})",
            selected.to_bits(),
        );
    }
    let _ = std::fs::remove_dir_all(&dir);
}

const EVENT_DRIVEN_SEED: u64 = 5;

/// Async ASHA through the event-driven executor at seed 5: pins the number
/// of completed evaluations, the winning trial and the exact bits of its
/// score and of the campaign's virtual elapsed time.
// best score 0.49957875035429833, sim_elapsed 319.327323397931
const GOLDEN_EVENT_DRIVEN: (usize, usize, u64, u64) =
    (16, 1, 0x3fdff91926a316b0, 0x4073f53cb7759545);

#[test]
fn event_driven_async_asha_selection_is_pinned() {
    let scale = ExperimentScale::smoke();
    let seed = EVENT_DRIVEN_SEED;
    let ctx = BenchmarkContext::new(Benchmark::Cifar10Like, &scale, seed).unwrap();
    let method = TuningMethod::AsyncAsha;
    let mut scheduler = method.scheduler(&scale).unwrap();
    let mut objective = BatchFederatedObjective::new(
        &ctx,
        NoiseConfig::paper_noisy(),
        method.planned_evaluations(&scale),
        fedmath::rng::derive_seed(seed, 0),
    )
    .unwrap();
    let mut rng = fedmath::rng::rng_for(seed, 1);
    let sim = VirtualExecution::new(3, straggler_cost_model(&scale, seed));
    let result = run_event_driven(
        scheduler.as_mut(),
        ctx.space(),
        &mut objective,
        &mut rng,
        &sim,
    )
    .unwrap();
    assert!(result.finished);
    let records = result.outcome.records();
    let best = records
        .iter()
        .min_by(|a, b| a.score.total_cmp(&b.score))
        .expect("at least one completed evaluation");
    println!(
        "actual: ({}, {}, 0x{:016x}, 0x{:016x}), // best score {}, sim_elapsed {}",
        records.len(),
        best.trial_id,
        best.score.to_bits(),
        result.sim_elapsed.to_bits(),
        best.score,
        result.sim_elapsed,
    );
    let (num_records, best_trial, score_bits, elapsed_bits) = GOLDEN_EVENT_DRIVEN;
    assert_eq!(records.len(), num_records, "evaluation count changed");
    assert_eq!(best.trial_id, best_trial, "winning configuration changed");
    assert_eq!(
        best.score.to_bits(),
        score_bits,
        "winning score drifted: got {} (0x{:016x})",
        best.score,
        best.score.to_bits(),
    );
    assert_eq!(
        result.sim_elapsed.to_bits(),
        elapsed_bits,
        "virtual timeline drifted: got {} (0x{:016x})",
        result.sim_elapsed,
        result.sim_elapsed.to_bits(),
    );
}

#[test]
fn concurrent_executor_reproduces_the_event_driven_pins() {
    // The same pinned campaign through the cross-trial concurrent driver:
    // real threads must be invisible in the golden bits. Runs at one thread,
    // eight threads, and whatever FEDTUNE_THREADS asks for (the CI
    // executor-smoke job sets 8), so an env override can never move a pin.
    let scale = ExperimentScale::smoke();
    let seed = EVENT_DRIVEN_SEED;
    let ctx = BenchmarkContext::new(Benchmark::Cifar10Like, &scale, seed).unwrap();
    let method = TuningMethod::AsyncAsha;
    let env_threads = ExecutionPolicy::from_env().pool_threads();
    for threads in [1usize, 8, env_threads] {
        let mut scheduler = method.scheduler(&scale).unwrap();
        let mut objective = BatchFederatedObjective::new(
            &ctx,
            NoiseConfig::paper_noisy(),
            method.planned_evaluations(&scale),
            fedmath::rng::derive_seed(seed, 0),
        )
        .unwrap();
        let mut rng = fedmath::rng::rng_for(seed, 1);
        let sim = VirtualExecution::new(3, straggler_cost_model(&scale, seed));
        let result = run_event_driven_concurrent(
            scheduler.as_mut(),
            ctx.space(),
            &mut objective,
            &mut rng,
            &sim,
            threads,
        )
        .unwrap();
        assert!(result.finished, "{threads} threads");
        let records = result.outcome.records();
        let best = records
            .iter()
            .min_by(|a, b| a.score.total_cmp(&b.score))
            .expect("at least one completed evaluation");
        let (num_records, best_trial, score_bits, elapsed_bits) = GOLDEN_EVENT_DRIVEN;
        assert_eq!(records.len(), num_records, "{threads} threads");
        assert_eq!(best.trial_id, best_trial, "{threads} threads");
        assert_eq!(
            best.score.to_bits(),
            score_bits,
            "{threads} threads: winning score drifted: got {} (0x{:016x})",
            best.score,
            best.score.to_bits(),
        );
        assert_eq!(
            result.sim_elapsed.to_bits(),
            elapsed_bits,
            "{threads} threads: virtual timeline drifted: got {} (0x{:016x})",
            result.sim_elapsed,
            result.sim_elapsed.to_bits(),
        );
    }
}
