//! Determinism guarantees: every stochastic component of the stack is keyed
//! by explicit seeds, so identical seeds must give identical results across
//! the whole pipeline.

use feddata::{Benchmark, DatasetSpec, Scale};
use fedhpo::{RandomSearch, Tuner};
use fedtune::fedtune_core::{
    BenchmarkContext, ConfigPool, ExperimentScale, FederatedObjective, NoiseConfig,
};

#[test]
fn dataset_generation_is_deterministic() {
    for &benchmark in &Benchmark::ALL {
        let spec = DatasetSpec::benchmark(benchmark, Scale::Smoke);
        assert_eq!(spec.generate(123).unwrap(), spec.generate(123).unwrap());
    }
}

#[test]
fn pool_training_is_deterministic_and_seed_sensitive() {
    let scale = ExperimentScale::smoke();
    let ctx = BenchmarkContext::new(Benchmark::Cifar10Like, &scale, 0).unwrap();
    let a = ConfigPool::train_sized(&ctx, 3, 5).unwrap();
    let b = ConfigPool::train_sized(&ctx, 3, 5).unwrap();
    assert_eq!(a.true_errors(), b.true_errors());
    let c = ConfigPool::train_sized(&ctx, 3, 6).unwrap();
    assert_ne!(a.true_errors(), c.true_errors());
}

#[test]
fn noisy_tuning_runs_are_deterministic() {
    let scale = ExperimentScale::smoke();
    let ctx = BenchmarkContext::new(Benchmark::FemnistLike, &scale, 1).unwrap();
    let run = |seed: u64| {
        let mut objective =
            FederatedObjective::new(&ctx, NoiseConfig::paper_noisy(), 4, seed).unwrap();
        let mut rng = fedmath::rng::rng_for(seed, 0);
        RandomSearch::new(4, 3)
            .tune(ctx.space(), &mut objective, &mut rng)
            .unwrap();
        objective.into_log()
    };
    assert_eq!(run(9), run(9));
    assert_ne!(run(9), run(10));
}

#[test]
fn experiment_reports_are_deterministic() {
    use fedtune::fedtune_core::experiments::subsampling::run_subsampling_sweep;
    let scale = ExperimentScale::smoke();
    let a = run_subsampling_sweep(Benchmark::Cifar10Like, &scale, 2).unwrap();
    let b = run_subsampling_sweep(Benchmark::Cifar10Like, &scale, 2).unwrap();
    assert_eq!(a, b);
}
