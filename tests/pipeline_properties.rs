//! Property-based tests spanning the whole stack: any configuration sampled
//! from the paper's search space must flow through hyperparameter mapping,
//! federated training, and noisy evaluation without violating invariants.

use feddata::{Benchmark, DatasetSpec, Scale, Split};
use fedhpo::SearchSpace;
use fedproxy::hyperparams_from_config;
use fedsim::evaluation::evaluate_full;
use fedsim::{FederatedTrainer, TrainerConfig, WeightingScheme};
use fedtune_core::{noisy_error, NoiseConfig};
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    /// Every sampled configuration maps to hyperparameters the trainer
    /// accepts, trains for a couple of rounds, and produces a full-validation
    /// error inside [0, 1].
    #[test]
    fn prop_sampled_configs_train_and_evaluate(seed in 0u64..1_000) {
        let space = SearchSpace::paper_default();
        let mut rng = fedmath::rng::rng_for(seed, 0);
        let config = space.sample(&mut rng).unwrap();
        let hyperparams = hyperparams_from_config(&space, &config).unwrap();

        let dataset = DatasetSpec::benchmark(Benchmark::Cifar10Like, Scale::Smoke)
            .generate(seed)
            .unwrap();
        let trainer = FederatedTrainer::new(TrainerConfig {
            clients_per_round: 5,
            hyperparams,
            weighting: WeightingScheme::ByExamples,
            ..Default::default()
        })
        .unwrap();
        let run = trainer
            .train(&dataset, fedmodels::ModelSpec::Mlp { hidden_dim: 8 }, 2, seed)
            .unwrap();
        let eval = evaluate_full(run.model(), &dataset, Split::Validation, WeightingScheme::ByExamples);
        // A wildly diverging configuration can produce non-finite logits; in
        // that case evaluation may fail, which is acceptable. When it
        // succeeds, the error must be a valid rate.
        if let Ok(eval) = eval {
            let err = eval.weighted_error().unwrap();
            prop_assert!((0.0..=1.0).contains(&err));

            // Noiseless "noisy" evaluation must reproduce the true error, and
            // subsampled evaluation must stay a valid rate.
            let mut eval_rng = fedmath::rng::rng_for(seed, 1);
            let clean = noisy_error(&eval, &NoiseConfig::noiseless(), 16, &mut eval_rng).unwrap();
            prop_assert!((clean - err).abs() < 1e-12);
            let sub = noisy_error(&eval, &NoiseConfig::subsampled(0.3), 16, &mut eval_rng).unwrap();
            prop_assert!((0.0..=1.0).contains(&sub));
        }
    }

    /// The subsample-rate grid always starts at a single client, ends at the
    /// full population, and is strictly increasing, for any population size.
    #[test]
    fn prop_rate_grid_well_formed(population in 1usize..5_000) {
        let grid = fedtune_core::experiments::subsample_rate_grid(population);
        prop_assert!(!grid.is_empty());
        prop_assert!((grid[0] - 1.0 / population as f64).abs() < 1e-12);
        prop_assert!((grid.last().unwrap() - 1.0).abs() < 1e-12);
        for w in grid.windows(2) {
            prop_assert!(w[0] < w[1]);
        }
    }

    /// Privacy accounting never exceeds its budget when the per-query split
    /// is used for every query.
    #[test]
    fn prop_accountant_even_split_never_exhausts(
        epsilon in 0.01f64..100.0,
        queries in 1usize..200,
    ) {
        let mut acc = feddp::PrivacyAccountant::new(feddp::PrivacyBudget::Finite(epsilon)).unwrap();
        let per_query = acc.per_query_epsilon(queries).unwrap().unwrap();
        for _ in 0..queries {
            acc.spend(per_query).unwrap();
        }
        prop_assert_eq!(acc.queries(), queries);
        prop_assert!(acc.remaining().unwrap() >= -1e-9);
    }
}
