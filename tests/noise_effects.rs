//! Behavioural tests for the paper's qualitative observations: the *shape*
//! of the results must hold at test scale even if absolute numbers differ
//! from the paper.

use feddata::Benchmark;
use feddp::PrivacyBudget;
use fedtune::fedtune_core::experiments::{simulated_rs_trials, subsample_rate_grid};
use fedtune::fedtune_core::{BenchmarkContext, ConfigPool, ExperimentScale, NoiseConfig};

/// A slightly larger pool than the smoke scale so selection effects are
/// visible above sampling noise, while staying fast enough for CI.
fn pool_and_ctx() -> (BenchmarkContext, ConfigPool) {
    let mut scale = ExperimentScale::smoke();
    scale.pool_size = 24;
    scale.rounds_per_config = 12;
    scale.total_budget = scale.pool_size * scale.rounds_per_config;
    let ctx = BenchmarkContext::new(Benchmark::Cifar10Like, &scale, 0).unwrap();
    let pool = ConfigPool::train(&ctx, 1).unwrap();
    (ctx, pool)
}

#[test]
fn observation1_subsampling_hurts_selection() {
    let (_ctx, pool) = pool_and_ctx();
    let trials = 200;
    let single =
        simulated_rs_trials(&pool, &NoiseConfig::subsampled(0.1), 8, 8, trials, 3).unwrap();
    let full = simulated_rs_trials(&pool, &NoiseConfig::noiseless(), 8, 8, trials, 3).unwrap();
    let mean_single = fedmath::stats::mean(&single);
    let mean_full = fedmath::stats::mean(&full);
    assert!(
        mean_single >= mean_full - 1e-9,
        "single-client selection ({mean_single}) should not beat full evaluation ({mean_full})"
    );
}

#[test]
fn observation5_stricter_privacy_degrades_selection() {
    let (ctx, pool) = pool_and_ctx();
    let rate = 3.0 / ctx.dataset().num_val_clients() as f64;
    let trials = 200;
    let strict = simulated_rs_trials(
        &pool,
        &NoiseConfig::subsampled(rate).with_privacy(PrivacyBudget::Finite(0.1)),
        8,
        8,
        trials,
        4,
    )
    .unwrap();
    let non_private = simulated_rs_trials(
        &pool,
        &NoiseConfig::subsampled(rate).with_privacy(PrivacyBudget::Infinite),
        8,
        8,
        trials,
        4,
    )
    .unwrap();
    let mean_strict = fedmath::stats::mean(&strict);
    let mean_free = fedmath::stats::mean(&non_private);
    assert!(
        mean_strict > mean_free,
        "epsilon = 0.1 selection ({mean_strict}) should be worse than non-private ({mean_free})"
    );
    // Strict privacy with a tiny sample should be close to random selection,
    // whose expected error is the pool's mean error.
    let pool_mean = fedmath::stats::mean(&pool.true_errors());
    assert!(
        (mean_strict - pool_mean).abs() < 0.15,
        "strict-DP selection ({mean_strict}) should approach random choice ({pool_mean})"
    );
}

#[test]
fn more_clients_recover_selection_quality() {
    // Observation 1, second half: sampling enough clients recovers most of
    // the loss. Median selected error must be non-increasing (within a small
    // tolerance) as the subsample rate grows.
    let (ctx, pool) = pool_and_ctx();
    let population = ctx.dataset().num_val_clients();
    let mut medians = Vec::new();
    for rate in subsample_rate_grid(population) {
        let errors =
            simulated_rs_trials(&pool, &NoiseConfig::subsampled(rate), 8, 8, 150, 5).unwrap();
        medians.push(fedmath::stats::median(&errors).unwrap());
    }
    let first = medians[0];
    let last = *medians.last().unwrap();
    assert!(
        last <= first + 1e-9,
        "full evaluation ({last}) should select no worse than a single client ({first})"
    );
}

#[test]
fn systems_bias_with_heterogeneity_is_harmful_or_neutral() {
    let (ctx, pool) = pool_and_ctx();
    let rate = 1.0 / ctx.dataset().num_val_clients() as f64;
    let trials = 200;
    let unbiased =
        simulated_rs_trials(&pool, &NoiseConfig::subsampled(rate), 8, 8, trials, 6).unwrap();
    let biased = simulated_rs_trials(
        &pool,
        &NoiseConfig::subsampled(rate).with_systems_bias(3.0),
        8,
        8,
        trials,
        6,
    )
    .unwrap();
    let mean_unbiased = fedmath::stats::mean(&unbiased);
    let mean_biased = fedmath::stats::mean(&biased);
    assert!(
        mean_biased >= mean_unbiased - 0.05,
        "biased sampling ({mean_biased}) should not improve selection vs unbiased ({mean_unbiased})"
    );
}
