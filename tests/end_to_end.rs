//! Cross-crate integration tests: full pipelines from dataset generation
//! through federated training, noisy evaluation, and hyperparameter tuning.

use feddata::{Benchmark, Split};
use fedhpo::{Hyperband, RandomSearch, Tpe, Tuner};
use fedtune::fedproxy::OneShotProxy;
use fedtune::fedtune_core::experiments::methods::{paper_noise_settings, run_method_comparison};
use fedtune::fedtune_core::experiments::subsampling::run_subsampling_sweep;
use fedtune::fedtune_core::experiments::table1::DatasetTable;
use fedtune::fedtune_core::{
    BenchmarkContext, ConfigPool, ExperimentScale, FederatedObjective, NoiseConfig,
};

fn smoke() -> ExperimentScale {
    ExperimentScale::smoke()
}

#[test]
fn dataset_table_covers_every_benchmark() {
    let table = DatasetTable::generate(&smoke(), 0).unwrap();
    assert_eq!(table.rows.len(), 4);
    for row in &table.rows {
        assert!(row.examples.total > 0);
        assert!(row.examples.min <= row.examples.max);
    }
}

#[test]
fn full_tuning_pipeline_with_each_tuner() {
    let scale = smoke();
    let ctx = BenchmarkContext::new(Benchmark::FemnistLike, &scale, 1).unwrap();

    let tuners: Vec<Box<dyn Tuner>> = vec![
        Box::new(RandomSearch::new(3, 4)),
        Box::new(Tpe::new(3, 4)),
        Box::new(Hyperband::new(4, 3, Some(2))),
    ];
    for tuner in tuners {
        let mut objective =
            FederatedObjective::new(&ctx, NoiseConfig::subsampled(0.3), 8, 2).unwrap();
        let mut rng = fedmath::rng::rng_for(3, 0);
        let outcome = tuner.tune(ctx.space(), &mut objective, &mut rng).unwrap();
        assert!(
            outcome.num_evaluations() > 0,
            "{} produced no evaluations",
            tuner.name()
        );
        assert!(!objective.log().is_empty());
        // Every logged evaluation must carry a valid true error.
        for entry in objective.log() {
            assert!((0.0..=1.0).contains(&entry.true_error));
        }
        // The tuner's own budget accounting must match the objective's.
        assert_eq!(outcome.total_resource(), objective.cumulative_rounds());
    }
}

#[test]
fn pool_based_and_live_objectives_agree_on_the_noiseless_truth() {
    // The pooled analysis and a live objective both report full-validation
    // error; for the same configuration and seed they must agree exactly.
    let scale = smoke();
    let ctx = BenchmarkContext::new(Benchmark::Cifar10Like, &scale, 4).unwrap();
    let pool = ConfigPool::train_sized(&ctx, 2, 99).unwrap();
    for entry in pool.entries() {
        let recheck = fedsim::evaluation::evaluate_full(
            &entry.model,
            ctx.dataset(),
            Split::Validation,
            fedsim::WeightingScheme::ByExamples,
        )
        .unwrap()
        .weighted_error()
        .unwrap();
        assert!((recheck - entry.full_error).abs() < 1e-12);
    }
}

#[test]
fn subsampling_sweep_runs_for_text_benchmark() {
    let sweep = run_subsampling_sweep(Benchmark::RedditLike, &smoke(), 5).unwrap();
    assert!(!sweep.points.is_empty());
    // Error percentages stay in range.
    for p in &sweep.points {
        assert!(p.summary.median >= 0.0 && p.summary.median <= 100.0);
    }
}

#[test]
fn method_comparison_produces_bars_for_all_methods() {
    let scale = smoke();
    let comparison =
        run_method_comparison(Benchmark::Cifar10Like, &scale, &paper_noise_settings(), 6).unwrap();
    let bars = comparison.bars_at(scale.total_budget).unwrap();
    let names: Vec<&str> = bars.iter().map(|b| b.name.as_str()).collect();
    for method in ["RS", "TPE", "HB", "BOHB"] {
        assert!(
            names.iter().any(|n| n.starts_with(method)),
            "missing bars for {method}: {names:?}"
        );
    }
}

#[test]
fn proxy_pipeline_transfers_between_task_families() {
    let scale = smoke();
    let client = BenchmarkContext::new(Benchmark::StackOverflowLike, &scale, 7).unwrap();
    let proxy = BenchmarkContext::new(Benchmark::RedditLike, &scale, 7).unwrap();
    let outcome = OneShotProxy::new(3)
        .run(
            proxy.dataset(),
            &proxy.config_runner(),
            client.dataset(),
            &client.config_runner(),
            1,
        )
        .unwrap();
    assert!((0.0..=1.0).contains(&outcome.client_error));
    assert_eq!(outcome.all_proxy_errors.len(), 3);
}
