//! Noise mitigation beyond the paper's proxy-data proposal: random search
//! with repeated (averaged) noisy evaluations, the "sample more" trick the
//! paper's related-work section attributes to centralized noisy HPO.
//!
//! Repeating evaluations costs extra evaluation rounds and privacy budget but
//! no training rounds, so it is a cheap knob to compare against plain RS.
//!
//! ```text
//! cargo run --release --example noise_mitigation
//! ```

use feddata::Benchmark;
use fedhpo::{RandomSearch, RepeatedRandomSearch, Tuner};
use fedtune::fedtune_core::{BenchmarkContext, ExperimentScale, FederatedObjective, NoiseConfig};

fn run_tuner(
    ctx: &BenchmarkContext,
    tuner: &dyn Tuner,
    noise: NoiseConfig,
    evaluations: usize,
    seed: u64,
) -> Result<f64, Box<dyn std::error::Error>> {
    let mut objective = FederatedObjective::new(ctx, noise, evaluations, seed)?;
    let mut rng = fedmath::rng::rng_for(seed, 17);
    tuner.tune(ctx.space(), &mut objective, &mut rng)?;
    Ok(objective
        .selected_true_error_within(usize::MAX)
        .expect("at least one evaluation"))
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let scale = ExperimentScale::smoke();
    let ctx = BenchmarkContext::new(Benchmark::Cifar10Like, &scale, 21)?;
    // Heavier-than-headline noise so the mitigation has something to mitigate:
    // a single-client subsample per evaluation, non-private.
    let noise = NoiseConfig::subsampled(1.0 / ctx.dataset().num_val_clients() as f64);
    let repeats = 8;
    let trials = 3;

    println!(
        "single-client evaluation on {} — true error of the selected configuration\n",
        ctx.dataset().name()
    );
    let mut plain_errors = Vec::new();
    let mut repeated_errors = Vec::new();
    for trial in 0..trials {
        let seed = 100 + trial;
        let plain = run_tuner(
            &ctx,
            &RandomSearch::new(scale.num_configs, scale.rounds_per_config),
            noise,
            scale.num_configs,
            seed,
        )?;
        let repeated = run_tuner(
            &ctx,
            &RepeatedRandomSearch::new(scale.num_configs, scale.rounds_per_config, repeats),
            noise,
            scale.num_configs * repeats,
            seed,
        )?;
        println!(
            "trial {trial}: plain RS = {:>5.1}%   RS with {repeats} averaged evaluations = {:>5.1}%",
            plain * 100.0,
            repeated * 100.0
        );
        plain_errors.push(plain);
        repeated_errors.push(repeated);
    }
    println!(
        "\nmean over {trials} trials: plain RS = {:.1}%, repeated RS = {:.1}%",
        fedmath::stats::mean(&plain_errors) * 100.0,
        fedmath::stats::mean(&repeated_errors) * 100.0
    );
    println!("Averaging repeated noisy evaluations usually recovers part of the loss caused by");
    println!(
        "client subsampling, at the cost of extra evaluation traffic (and, under DP, budget)."
    );
    Ok(())
}
