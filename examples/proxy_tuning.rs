//! One-shot proxy tuning (§4 of the paper): tune hyperparameters on a public
//! proxy dataset and deploy only the single best configuration on the client
//! federation, side-stepping noisy federated evaluation entirely.
//!
//! ```text
//! cargo run --release --example proxy_tuning
//! ```

use feddata::Benchmark;
use fedtune::fedproxy::OneShotProxy;
use fedtune::fedtune_core::{BenchmarkContext, ExperimentScale};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let scale = ExperimentScale::smoke();

    // Client task: CIFAR10-like federation. Proxy candidates: the other three
    // benchmarks (FEMNIST-like shares the task family and should transfer best).
    let client = BenchmarkContext::new(Benchmark::Cifar10Like, &scale, 3)?;
    let proxies = [
        Benchmark::FemnistLike,
        Benchmark::StackOverflowLike,
        Benchmark::RedditLike,
    ];

    let pipeline = OneShotProxy::new(scale.num_configs);
    println!("client dataset: {}\n", client.dataset().name());
    for proxy_benchmark in proxies {
        let proxy = BenchmarkContext::new(proxy_benchmark, &scale, 3)?;
        let outcome = pipeline.run(
            proxy.dataset(),
            &proxy.config_runner(),
            client.dataset(),
            &client.config_runner(),
            11,
        )?;
        println!(
            "proxy {:<22} -> client error {:>6.1}%  (proxy error {:>6.1}%)",
            outcome.proxy_dataset,
            outcome.client_error * 100.0,
            outcome.proxy_error * 100.0
        );
    }
    println!("\nA same-family proxy (femnist-like) usually yields the best client error,");
    println!("matching Fig. 11 of the paper.");
    Ok(())
}
