//! Record once, sweep methods against the table: builds a trial ledger from
//! one live recorded campaign, then re-runs every extended tuning method
//! against the tabular surrogate and reports the live-vs-replay wall-clock
//! speedup.
//!
//! ```text
//! cargo run --release --example surrogate_sweep
//! ```

use fedtune::feddata::Benchmark;
use fedtune::fedstore::{record_method_comparison, replay_method_comparison, TrialStore};
use fedtune::fedtune_core::experiments::methods::{paper_noise_settings, TuningMethod};
use fedtune::fedtune_core::{ExecutionPolicy, ExperimentScale};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // Smoke scale keeps the recording under a minute; the replay side is
    // effectively free at any scale.
    let scale = ExperimentScale::smoke();
    let settings = paper_noise_settings();
    let methods = TuningMethod::EXTENDED;
    let mut summary = fedbench::BenchSummary::new("surrogate_sweep");
    let campaigns = (methods.len() * settings.len() * scale.method_trials) as u64;

    let mut store = TrialStore::in_memory();
    let live = summary.time("record_live_campaigns", campaigns, || {
        record_method_comparison(
            ExecutionPolicy::from_env(),
            Benchmark::Cifar10Like,
            &scale,
            &methods,
            &settings,
            0,
            &mut store,
        )
    })?;
    let live_seconds = summary.entries[0].wall_seconds;
    println!(
        "recorded {} evaluations from {} live campaigns in {:.2}s",
        store.len(),
        live.runs.len(),
        live_seconds
    );

    let replayed = summary.time("replay_from_table", campaigns, || {
        replay_method_comparison(
            &store,
            Benchmark::Cifar10Like,
            &scale,
            &methods,
            &settings,
            0,
        )
    })?;
    let replay_seconds = summary.entries[1].wall_seconds;

    assert_eq!(
        live, replayed,
        "tabular replay must reproduce the live campaigns bit-for-bit"
    );
    println!("\nper-method selection (true error at full budget), live == replay:");
    let budget = scale.total_budget;
    for method in &methods {
        for (label, _) in &settings {
            let selected = replayed
                .runs
                .iter()
                .filter(|r| r.method == method.name() && &r.noise_label == label)
                .filter_map(|r| r.selected_true_error_within(budget))
                .collect::<Vec<f64>>();
            let mean = selected.iter().sum::<f64>() / selected.len().max(1) as f64;
            println!("  {:8} ({label:9}): {:.2}%", method.name(), mean * 100.0);
        }
    }
    println!(
        "\nlive {live_seconds:.2}s vs replay {replay_seconds:.3}s => {:.0}x speedup",
        live_seconds / replay_seconds.max(1e-9)
    );
    println!("A recorded table turns method sweeps from simulation-bound into tuner-bound.");
    summary.write_if_enabled();
    Ok(())
}
