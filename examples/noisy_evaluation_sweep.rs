//! Reproduces the shape of Fig. 3 and Fig. 9 on one benchmark: how client
//! subsampling and differential privacy degrade random search.
//!
//! ```text
//! cargo run --release --example noisy_evaluation_sweep
//! ```
//!
//! With `FEDTUNE_BENCH_JSON=1` the run writes
//! `BENCH_noisy_evaluation_sweep.json` so the perf trajectory of the two
//! sweeps is tracked alongside the bench harness.

use feddata::Benchmark;
use fedtune::fedtune_core::experiments::privacy::{privacy_report, run_privacy_sweep};
use fedtune::fedtune_core::experiments::subsampling::{
    run_subsampling_sweep_with, subsampling_report,
};
use fedtune::fedtune_core::{ExecutionPolicy, ExperimentScale, TrialRunner};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // The smoke scale finishes in seconds; switch to
    // `ExperimentScale::default_scale()` for the EXPERIMENTS.md numbers.
    let scale = ExperimentScale::smoke();
    let benchmark = Benchmark::Cifar10Like;
    let mut summary = fedbench::BenchSummary::new("noisy_evaluation_sweep");

    // FEDTUNE_THREADS overrides the trial fan-out; results are identical.
    let runner = TrialRunner::new(ExecutionPolicy::from_env());
    println!("== Client subsampling (Fig. 3 shape) ==");
    let sweep = summary.time("subsampling_sweep", scale.bootstrap_trials as u64, || {
        run_subsampling_sweep_with(&runner, benchmark, &scale, 0)
    })?;
    println!("{}", subsampling_report(&[sweep]).to_table());

    println!("== Differential privacy (Fig. 9 shape) ==");
    let privacy = summary.time("privacy_sweep", scale.bootstrap_trials as u64, || {
        run_privacy_sweep(benchmark, &scale, 0)
    })?;
    println!("{}", privacy_report(&[privacy]).to_table());

    println!("Reading the tables: medians rise as the subsample shrinks and as epsilon decreases.");
    summary.write_if_enabled();
    Ok(())
}
