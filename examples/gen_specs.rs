fn main() {
    let asha = fedserve::CampaignSpec {
        name: "quick-asha".to_string(),
        seed: 11,
        space: vec![
            fedserve::DimSpec::Uniform {
                name: "x".to_string(),
                low: 0.0,
                high: 1.0,
            },
            fedserve::DimSpec::LogUniform {
                name: "lr".to_string(),
                low: 1e-3,
                high: 1.0,
            },
        ],
        scheduler: fedserve::SchedulerSpec::AsyncAsha {
            trials: 12,
            eta: 3,
            min_resource: 1,
            max_resource: 9,
        },
        objective: fedserve::ObjectiveSpec::Analytic {
            target: 0.3,
            noise_sd: 0.15,
            latency_scale: 0.0,
            fail_trial: None,
            panic_trial: None,
        },
        cost: fedserve::CostSpec::HeavyTailedClients {
            clients: 40,
            per_round: 4,
            seed: 5,
        },
        workers: 4,
        sim_budget: None,
        limits: fedserve::CampaignLimits::default(),
    };
    let mut random = asha.clone();
    random.name = "quick-random".to_string();
    random.seed = 23;
    random.scheduler = fedserve::SchedulerSpec::RandomSearch {
        trials: 10,
        resource: 6,
    };
    random.cost = fedserve::CostSpec::PerRound {
        round_seconds: 12.0,
        eval_seconds: 2.0,
    };
    random.workers = 3;
    let mut slow = asha.clone();
    slow.name = "quick-slow".to_string();
    slow.seed = 31;
    slow.objective = fedserve::ObjectiveSpec::Analytic {
        target: 0.3,
        noise_sd: 0.15,
        latency_scale: 0.01,
        fail_trial: None,
        panic_trial: None,
    };
    for (file, spec) in [
        ("quick-asha", &asha),
        ("quick-random", &random),
        ("quick-slow", &slow),
    ] {
        std::fs::write(
            format!("examples/specs/{file}.json"),
            serde_json::to_string_pretty(spec).unwrap() + "\n",
        )
        .unwrap();
    }
    println!("wrote examples/specs/{{quick-asha,quick-random,quick-slow}}.json");
}
