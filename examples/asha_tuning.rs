//! ASHA through the batched ask/tell scheduler: a live federated tuning
//! campaign whose rungs fan out across every core, plus the noise-aware
//! re-evaluation mitigation on top.
//!
//! ```text
//! cargo run --release --example asha_tuning
//! ```
//!
//! With `FEDTUNE_BENCH_JSON=1` the run writes `BENCH_asha_tuning.json` so
//! both campaigns' wall-clock is tracked alongside the bench harness.
//! `FEDTUNE_THREADS` overrides the batch fan-out (1 = sequential, N = N
//! threads, 0/unset = all cores).

use feddata::Benchmark;
use fedhpo::{Asha, IntoScheduler, ReEvaluation};
use fedtune::fedtune_core::{
    run_scheduled, BatchFederatedObjective, BenchmarkContext, ExecutionPolicy, ExperimentScale,
    NoiseConfig, TrialRunner,
};
use fedtune::{fedhpo, fedmath};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let scale = ExperimentScale::smoke();
    let ctx = BenchmarkContext::new(Benchmark::Cifar10Like, &scale, 0)?;
    let noise = NoiseConfig::paper_noisy();
    let mut summary = fedbench::BenchSummary::new("asha_tuning");

    // An ASHA ladder: 12 configurations, eta = 3, rungs at 2 and 6 rounds.
    let asha = Asha::new(12, 3, 2, scale.rounds_per_config);
    println!(
        "ASHA: {} configs, {} rungs, <= {} evaluations",
        asha.num_configs(),
        asha.num_rungs(),
        asha.planned_evaluations()
    );

    // Plain ASHA under noisy evaluation. Every suggested batch (a whole
    // rung) trains in parallel; results are bit-identical to sequential.
    let mut scheduler = asha.scheduler()?;
    let mut objective = BatchFederatedObjective::new(&ctx, noise, asha.planned_evaluations(), 1)?
        .with_batch_runner(TrialRunner::new(ExecutionPolicy::from_env()));
    let mut rng = fedmath::rng::rng_for(1, 0);
    let outcome = summary.time("asha_parallel", asha.planned_evaluations() as u64, || {
        run_scheduled(&mut scheduler, ctx.space(), &mut objective, &mut rng)
    })?;
    let selected = objective
        .selected_true_error_within(usize::MAX)
        .expect("asha evaluated something");
    println!(
        "ASHA        : {} evaluations, {} rounds, selected config true error {:.2}%",
        outcome.num_evaluations(),
        outcome.total_resource(),
        selected * 100.0
    );

    // The same ladder wrapped in the re-evaluation mitigation: the top-3
    // survivors get 3 fresh noise draws each, and selection averages them.
    let policy = ReEvaluation::new(asha, 3, 3);
    let mut scheduler = policy.scheduler()?;
    let planned = asha.planned_evaluations() + 9;
    let mut objective = BatchFederatedObjective::new(&ctx, noise, planned, 1)?
        .with_batch_runner(TrialRunner::new(ExecutionPolicy::from_env()));
    let mut rng = fedmath::rng::rng_for(1, 0);
    let outcome = summary.time("asha_reeval_parallel", planned as u64, || {
        run_scheduled(&mut scheduler, ctx.space(), &mut objective, &mut rng)
    })?;
    let selected = objective
        .selected_true_error_within(usize::MAX)
        .expect("asha+re evaluated something");
    let reevals = outcome
        .records()
        .iter()
        .filter(|r| r.noise_rep >= 1)
        .count();
    println!(
        "ASHA + re-ev: {} evaluations ({} fresh re-draws), {} rounds, selected true error {:.2}%",
        outcome.num_evaluations(),
        reevals,
        outcome.total_resource(),
        selected * 100.0
    );
    println!("Re-evaluation costs no extra training rounds: the survivors' runs already");
    println!("sit at the top-rung fidelity; only fresh noisy evaluations are drawn.");
    summary.write_if_enabled();
    Ok(())
}
