//! Quickstart: tune FedAdam hyperparameters on a synthetic federated dataset
//! with random search, first with clean evaluation and then with the noisy
//! evaluation a real cross-device system would provide.
//!
//! Run with:
//!
//! ```text
//! cargo run --release --example quickstart
//! ```

use feddata::Benchmark;
use fedhpo::{RandomSearch, Tuner};
use fedtune::fedtune_core::{BenchmarkContext, ExperimentScale, FederatedObjective, NoiseConfig};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // A CPU-sized CIFAR10-like federation: ~220 clients with Dirichlet(0.1)
    // label skew, an MLP classifier, and the paper's Appendix B search space.
    let scale = ExperimentScale::smoke();
    let ctx = BenchmarkContext::new(Benchmark::Cifar10Like, &scale, 7)?;
    println!(
        "dataset: {} ({} train clients, {} validation clients)",
        ctx.dataset().name(),
        ctx.dataset().num_train_clients(),
        ctx.dataset().num_val_clients()
    );

    let tuner = RandomSearch::new(scale.num_configs, scale.rounds_per_config);

    // 1. Tune with clean (full-population) evaluation.
    let mut clean_objective =
        FederatedObjective::new(&ctx, NoiseConfig::noiseless(), scale.num_configs, 1)?;
    let mut rng = fedmath::rng::rng_for(7, 0);
    tuner.tune(ctx.space(), &mut clean_objective, &mut rng)?;
    let clean_error = clean_objective
        .selected_true_error_within(usize::MAX)
        .expect("at least one evaluation");

    // 2. Tune with the paper's noisy evaluation: 1% of validation clients per
    //    evaluation and epsilon = 100 differential privacy.
    let mut noisy_objective =
        FederatedObjective::new(&ctx, NoiseConfig::paper_noisy(), scale.num_configs, 1)?;
    let mut rng = fedmath::rng::rng_for(7, 1);
    tuner.tune(ctx.space(), &mut noisy_objective, &mut rng)?;
    let noisy_error = noisy_objective
        .selected_true_error_within(usize::MAX)
        .expect("at least one evaluation");

    println!(
        "random search, clean evaluation : {:.1}% full validation error",
        clean_error * 100.0
    );
    println!(
        "random search, noisy evaluation : {:.1}% full validation error",
        noisy_error * 100.0
    );
    println!(
        "(noisy evaluation typically selects a worse configuration — the paper's core finding)"
    );
    Ok(())
}
