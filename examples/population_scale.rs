//! A tuning campaign over a **1,000,000-client** lazy population.
//!
//! The population never exists in memory: clients are materialized on
//! demand as pure functions of `(population seed, id)`, so the campaign's
//! peak client residency is bounded by `cohort size + cache capacity` —
//! asserted in-process at the end of the run. The campaign itself is the
//! paper's workflow at production scale: train a grid of configurations
//! against the population (sample cohort → materialize → train → drop),
//! score each on an evaluation cohort, select the winner, and check it
//! against a deterministic reference probe.
//!
//! ```text
//! cargo run --release --example population_scale
//! ```
//!
//! `FEDPOP_CLIENTS` overrides the population size (default 1,000,000).
//! With `FEDTUNE_BENCH_JSON=1` the run writes `BENCH_population_scale.json`
//! including `peak_resident_clients` and `cache_hit_rate`. `FEDTUNE_THREADS`
//! overrides the config fan-out (1 = sequential, 0/unset = all cores).

use fedtune::fedpop::{
    train_on_population, CachedPopulation, ClientCache, CohortSampler, Population, PopulationSpec,
    PopulationSummary, SyntheticPopulation,
};
use fedtune::fedsim::clock::VirtualClock;
use fedtune::fedsim::{FederatedTrainer, TrainerConfig, WeightingScheme};
use fedtune::fedtune_core::experiments::population::{cohort_error, config_grid};
use fedtune::fedtune_core::TrialRunner;
use fedtune::{feddata, fedmath, fedmodels, fedtrace};

use feddata::Benchmark;
use fedmodels::ModelSpec;

const TRAIN_COHORT: usize = 20;
const EVAL_COHORT: usize = 128;
const TRAIN_ROUNDS: usize = 40;
const NUM_CONFIGS: usize = 6;
const CACHE_CAPACITY: usize = 128;

fn population_size() -> u64 {
    std::env::var("FEDPOP_CLIENTS")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(1_000_000)
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let n = population_size();
    let mut summary = fedbench::BenchSummary::new("population_scale");
    let spec = PopulationSpec::benchmark(Benchmark::RedditLike, n);
    let population = SyntheticPopulation::new(spec, 42)?;
    println!(
        "population: {} clients ({}), defined implicitly — nothing materialized yet",
        population.num_clients(),
        population.spec().name,
    );
    println!(
        "{}",
        PopulationSummary::probe(&population, 4_096)?.to_text()
    );

    let cache = ClientCache::new(CACHE_CAPACITY);
    let source = CachedPopulation::new(&population, &cache);
    let runner = TrialRunner::from_env();
    let model_spec = ModelSpec::for_task(population.task());

    // The experiment's configuration grid: client LR log-spaced across two
    // decades (shared with experiments::population).
    let configs = config_grid(NUM_CONFIGS);

    // Train every configuration against the million-client population.
    // Per-trial execution is sequential (trials fan out instead), and both
    // training and evaluation stream clients one at a time, so each of the
    // NUM_CONFIGS concurrent trials holds at most one client beyond the
    // shared cache at any instant.
    let (models, reports): (Vec<_>, Vec<_>) = summary
        .time("train_configs", (NUM_CONFIGS * TRAIN_ROUNDS) as u64, || {
            runner.run_trials(7, configs.len(), |trial| {
                let config = TrainerConfig {
                    clients_per_round: TRAIN_COHORT,
                    hyperparams: configs[trial.index()],
                    weighting: WeightingScheme::ByExamples,
                    execution: fedtune::fedsim::ExecutionPolicy::Sequential,
                };
                let mut run = FederatedTrainer::new(config)?.start_with_dims(
                    population.input_dim(),
                    population.num_classes(),
                    model_spec,
                    trial.seed(0),
                )?;
                let mut clock = VirtualClock::new();
                let report = train_on_population(
                    &mut run,
                    &source,
                    CohortSampler::Uniform,
                    TRAIN_COHORT,
                    TRAIN_ROUNDS,
                    60.0,
                    &mut clock,
                )
                .map_err(fedtune::fedsim::SimError::from)?;
                Ok((run.into_model(), report))
            })
        })?
        .into_iter()
        .unzip();
    let max_train_cohort = reports.iter().map(|r| r.max_cohort).max().unwrap_or(0);

    // Score each configuration on an evaluation cohort and pick the winner.
    // The cohort streams through cohort_error: materialize → score → drop.
    let scores: Vec<f64> = summary.time("evaluate_configs", NUM_CONFIGS as u64, || {
        runner.run_trials(11, models.len(), |trial| {
            let mut rng = trial.rng(0);
            let cohort = CohortSampler::Uniform
                .sample(&population, &mut rng, EVAL_COHORT, 0.0)
                .map_err(fedtune::fedsim::SimError::from)?;
            cohort_error(
                &models[trial.index()],
                cohort.into_iter().map(|id| {
                    fedtune::fedsim::training::CohortSource::materialize(&source, id)
                        .map_err(fedtune::fedtune_core::CoreError::from)
                }),
            )
        })
    })?;
    let best = scores
        .iter()
        .enumerate()
        .min_by(|a, b| a.1.total_cmp(b.1))
        .expect("non-empty grid")
        .0;
    for (i, (hp, score)) in configs.iter().zip(&scores).enumerate() {
        println!(
            "  config {i}: client lr {:>7.4} -> cohort error {:.2}%{}",
            hp.client.learning_rate,
            score * 100.0,
            if i == best { "  <- selected" } else { "" }
        );
    }

    // The in-process memory-bound assertions of the acceptance criteria.
    // Clients only live in two places — streamed through a trial (one at a
    // time, at most NUM_CONFIGS concurrent trials) and the cache — so peak
    // residency is `min(NUM_CONFIGS, threads) + cache residents`, well under
    // the `cohort size + cache capacity` bound. Each assert checks a
    // *measured* quantity against a configuration knob, so a sampler that
    // over-returns ids or a cache whose eviction stops bounding the map
    // trips it.
    let stats = cache.stats();
    let in_flight_bound = runner.policy().effective_threads(NUM_CONFIGS);
    let peak_resident = in_flight_bound + stats.peak_resident;
    assert!(
        max_train_cohort <= TRAIN_COHORT,
        "a sampler returned more ids than the requested cohort: {max_train_cohort}"
    );
    assert!(
        stats.peak_resident <= CACHE_CAPACITY,
        "cache exceeded its capacity: {} > {CACHE_CAPACITY}",
        stats.peak_resident
    );
    assert!(
        peak_resident <= EVAL_COHORT.max(TRAIN_COHORT) + CACHE_CAPACITY,
        "peak residency {peak_resident} exceeds the cohort + cache bound"
    );
    println!(
        "\npeak resident clients: {peak_resident} ({in_flight_bound} streaming trials + cache {}) \
         out of a population of {n} — {:.6}% resident",
        stats.peak_resident,
        100.0 * peak_resident as f64 / n as f64
    );
    // Publish the cache accounting as `pop.cache.*` gauges and print the
    // summary line from the registry snapshot, not the raw struct.
    stats.publish(fedtrace::global().registry(), "pop.cache");
    let snapshot = fedtrace::global().snapshot();
    let gauge = |name: &str| snapshot.gauge(name).map(|g| g.value).unwrap_or(0.0);
    println!(
        "cache: {} hits / {} misses (hit rate {:.1}%), {} evictions",
        gauge("pop.cache.hits"),
        gauge("pop.cache.misses"),
        gauge("pop.cache.hit_rate") * 100.0,
        gauge("pop.cache.evictions")
    );

    // Materialization throughput: how fast cold clients synthesize.
    let throughput_probe = 2_000.min(n as usize);
    let start = std::time::Instant::now();
    let mut materialized_examples = 0usize;
    let mut rng = fedmath::rng::rng_for(99, 0);
    let ids = fedmath::rng::sample_ids_without_replacement(&mut rng, n, throughput_probe)?;
    for id in ids {
        materialized_examples += population.materialize(id)?.num_examples();
    }
    let elapsed = start.elapsed().as_secs_f64();
    summary.push("materialize_cold", elapsed, throughput_probe as u64);
    println!(
        "materialization: {throughput_probe} cold clients ({materialized_examples} examples) \
         in {elapsed:.3}s = {:.0} clients/s",
        throughput_probe as f64 / elapsed
    );

    summary.record_population(peak_resident as u64, stats.hit_rate());
    summary.write_if_enabled();
    Ok(())
}
