//! Compares RS, TPE, Hyperband, and BOHB under noiseless vs. noisy federated
//! evaluation (the shape of Fig. 8 / Fig. 15 / Fig. 16).
//!
//! ```text
//! cargo run --release --example method_comparison
//! ```
//!
//! With `FEDTUNE_BENCH_JSON=1` the run writes `BENCH_method_comparison.json`
//! so the campaign's wall-clock is tracked alongside the bench harness.

use feddata::Benchmark;
use fedtune::fedtune_core::experiments::methods::{
    paper_noise_settings, run_method_comparison_with,
};
use fedtune::fedtune_core::{ExecutionPolicy, ExperimentScale, TrialRunner};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // Smoke scale keeps this example under a minute; use
    // `ExperimentScale::default_scale()` to regenerate the EXPERIMENTS.md rows.
    let scale = ExperimentScale::smoke();
    let mut summary = fedbench::BenchSummary::new("method_comparison");
    let campaigns = (4 * 2 * scale.method_trials) as u64;
    // FEDTUNE_THREADS overrides the trial fan-out (1 = sequential, N = N
    // threads, 0/unset = all cores); results are bit-identical either way.
    let runner = TrialRunner::new(ExecutionPolicy::from_env());
    let comparison = summary.time("live_method_comparison", campaigns, || {
        run_method_comparison_with(
            &runner,
            Benchmark::Cifar10Like,
            &scale,
            &paper_noise_settings(),
            5,
        )
    })?;

    println!("{}", comparison.to_online_report()?.to_table());
    let one_third = scale.total_budget / 3;
    println!(
        "{}",
        comparison
            .to_bars_report("fig15", one_third.max(1))?
            .to_table()
    );
    println!(
        "{}",
        comparison
            .to_bars_report("fig16", scale.total_budget)?
            .to_table()
    );
    println!("Under noise, the early-stopping methods (HB, BOHB) typically lose their edge");
    println!("over plain random search — the paper's Observation 6.");
    summary.write_if_enabled();
    Ok(())
}
