//! Recording a **1,000,000-trial** campaign to the binary segment ledger,
//! streaming it back, surviving corruption, and compacting — the fedstore
//! v2 crash-safety story end to end.
//!
//! The run has four acts:
//!
//! 1. **Record**: a raw [`fedstore::SegmentWriter`] appends a million
//!    trials with group commit (one `sync_data` per 64Ki records), then a
//!    streaming replay reads every CRC-framed record back. Neither side
//!    holds the ledger in memory — peak RSS growth is asserted to stay far
//!    below the ledger's on-disk size.
//! 2. **Corrupt**: one byte of the newest segment is flipped in place,
//!    simulating a bit rot or torn write.
//! 3. **Recover**: [`fedstore::TrialStore::open_segments`] reopens the
//!    directory, truncates the ledger back to the last valid frame, and
//!    keeps accepting appends; a second reopen proves recovery converged.
//! 4. **Compact**: the surviving ledger is rewritten tombstone-free and
//!    every record is preserved.
//!
//! The final accounting — records appended, bytes written, group commits,
//! syncs, recovery truncations, compaction swaps — is read back from the
//! global `fedtrace` metrics registry the store reports into, not from
//! hand-rolled counters. With `FEDTUNE_TRACE=1` the run also exports
//! `trace-ledger_scale-wall.json`, a Chrome trace of the four acts' real
//! durations.
//!
//! ```text
//! cargo run --release --example ledger_scale
//! ```
//!
//! `FEDSTORE_TRIALS` overrides the trial count (default 1,000,000).

use fedtune::fedstore::{
    segment, ConfigKey, Durability, Provenance, SegmentConfig, SegmentWriter, TrialRecord,
    TrialStore,
};
use fedtune::fedtrace;
use std::time::Instant;

/// One `sync_data` per this many appended records.
const COMMIT_EVERY: u64 = 1 << 16;

/// The record→replay cycle must not grow the process by more than this,
/// regardless of the trial count (the ledger itself is ~50 MiB per million
/// trials).
const RSS_CAP_KB: u64 = 64 * 1024;

/// Generous wall-clock bound for CI: the cycle takes ~1 s in release.
const TIME_BOUND_SECS: f64 = 120.0;

fn trial_count() -> u64 {
    std::env::var("FEDSTORE_TRIALS")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(1_000_000)
}

fn trial(i: u64, provenance: &Provenance) -> TrialRecord {
    let x = (i % 1_000_000) as f64 * 1e-6;
    TrialRecord {
        config: ConfigKey::from_canonical_values(&[x, (i / 1_000_000) as f64])
            .expect("finite values"),
        resource: 1 + (i % 50) as usize,
        rep: 0,
        noisy_score: x * 0.5 + 0.1,
        true_error: x * 0.5,
        sim_time: x,
        provenance: provenance.clone(),
    }
}

type DynResult<T> = Result<T, Box<dyn std::error::Error>>;

fn main() -> DynResult<()> {
    let n = trial_count();
    let dir = std::env::temp_dir().join("fedtune_ledger_scale_example");
    let _ = std::fs::remove_dir_all(&dir);
    let provenance = Provenance {
        benchmark: "cifar10-like".into(),
        scale: "example".into(),
        seed: 42,
        noise: "noisy".into(),
    };
    let config = SegmentConfig {
        durability: Durability::EveryN(COMMIT_EVERY),
        ..SegmentConfig::default()
    };
    let started = Instant::now();
    let rss_before = fedbench::peak_rss_kb();
    let profile = fedtrace::WallProfile::new();

    // Act 1: record n trials with group commit, then stream them all back.
    let t = Instant::now();
    let ledger_bytes = profile.time("act 1: record", || -> DynResult<u64> {
        let mut writer = SegmentWriter::open(&dir, config)?;
        for i in 0..n {
            writer.append_unsynced(&trial(i, &provenance))?;
            if writer.unsynced() >= COMMIT_EVERY {
                writer.group_commit()?;
            }
        }
        writer.flush()?;
        Ok(writer.bytes_appended())
    })?;
    let ingest_secs = t.elapsed().as_secs_f64();

    let t = Instant::now();
    let mut replayed = 0u64;
    profile.time("act 1: replay", || {
        segment::for_each_record(&dir, |_| {
            replayed += 1;
            Ok(())
        })
    })?;
    let replay_secs = t.elapsed().as_secs_f64();
    assert_eq!(replayed, n, "streaming replay must see every trial");
    println!(
        "recorded {n} trials ({:.1} MiB, {:.1} B/trial) in {ingest_secs:.2}s, \
         replayed in {replay_secs:.2}s",
        ledger_bytes as f64 / (1 << 20) as f64,
        ledger_bytes as f64 / n as f64,
    );
    if let (Some(before), Some(after)) = (rss_before, fedbench::peak_rss_kb()) {
        let grew = after.saturating_sub(before);
        assert!(
            grew < RSS_CAP_KB,
            "record→replay grew peak RSS by {grew} KiB (cap {RSS_CAP_KB} KiB)"
        );
        println!("peak RSS growth over the cycle: {grew} KiB — bounded, not ledger-sized");
    }

    // Act 2: flip one byte three quarters of the way into the newest
    // segment. Every byte past the header belongs to some CRC-framed
    // record, so this always lands inside a frame.
    profile.time("act 2: corrupt", || -> DynResult<()> {
        let (_, newest) = segment::list_segments(&dir)?
            .into_iter()
            .next_back()
            .expect("ledger has segments");
        let mut bytes = std::fs::read(&newest)?;
        let target = (bytes.len() * 3 / 4).max(9);
        bytes[target] ^= 0x40;
        std::fs::write(&newest, &bytes)?;
        println!(
            "flipped one bit at byte {target} of {}",
            newest.file_name().unwrap().to_string_lossy()
        );
        Ok(())
    })?;

    // Act 3: reopen. Recovery truncates at the corrupt frame and the store
    // stays writable; a second reopen sees the exact same ledger.
    let t = Instant::now();
    let recovered = profile.time("act 3: recover", || -> DynResult<u64> {
        let mut store = TrialStore::open_segments(&dir)?;
        let recovered = store.len() as u64;
        assert!(recovered > 0, "recovery must keep the valid prefix");
        assert!(recovered < n, "corruption must cost at least one record");
        let extra = trial(n + 1, &provenance);
        assert!(
            store.insert(extra.clone())?,
            "recovered store accepts appends"
        );
        store.flush()?;
        drop(store);
        let store = TrialStore::open_segments(&dir)?;
        assert_eq!(
            store.len() as u64,
            recovered + 1,
            "second reopen must converge on the recovered ledger plus the append"
        );
        Ok(recovered)
    })?;
    println!(
        "reopened after corruption in {:.2}s: {recovered} of {n} trials survive",
        t.elapsed().as_secs_f64()
    );

    // Act 4: compact the survivors into a tombstone-free snapshot.
    profile.time("act 4: compact", || -> DynResult<()> {
        let mut store = TrialStore::open_segments(&dir)?;
        let report = store.compact()?;
        assert_eq!(report.records as u64, recovered + 1);
        assert_eq!(store.len() as u64, recovered + 1);
        println!(
            "compacted {} records: {} -> {} segments, {:.1} -> {:.1} MiB",
            report.records,
            report.segments_before,
            report.segments_after,
            report.bytes_before as f64 / (1 << 20) as f64,
            report.bytes_after as f64 / (1 << 20) as f64,
        );
        Ok(())
    })?;

    // The run's ledger accounting, read back from the metrics registry the
    // store reports into rather than hand-rolled counters.
    let snapshot = fedtrace::global().snapshot();
    let counter = |name: &str| snapshot.counter(name).unwrap_or(0);
    println!("\nledger accounting (global fedtrace registry):");
    println!(
        "  records appended        {:>12}",
        counter("store.records_appended")
    );
    println!(
        "  bytes written           {:>12}",
        counter("store.bytes_written")
    );
    println!(
        "  group commits           {:>12}",
        counter("store.group_commits")
    );
    println!("  syncs                   {:>12}", counter("store.syncs"));
    println!(
        "  records replayed        {:>12}",
        counter("store.records_replayed")
    );
    println!(
        "  recovery truncated      {:>12} B over {} dropped segment(s)",
        counter("store.recovery_truncated_bytes"),
        counter("store.recovery_dropped_segments"),
    );
    println!(
        "  compaction swaps        {:>12}",
        counter("store.compaction_swaps")
    );
    if let Some(sync) = snapshot.histogram("store.sync_micros") {
        println!(
            "  sync latency            {:>12.0} µs mean ({} syncs, max {} µs)",
            sync.mean(),
            sync.count,
            sync.max,
        );
    }
    assert!(counter("store.records_appended") >= n);
    assert_eq!(counter("store.records_replayed"), n);
    assert!(counter("store.recovery_truncated_bytes") > 0);
    assert_eq!(counter("store.compaction_swaps"), 1);

    if fedtrace::env_enabled() {
        std::fs::write("trace-ledger_scale-wall.json", profile.to_chrome_json())?;
        println!(
            "wrote trace-ledger_scale-wall.json ({} slices)",
            profile.len()
        );
    }

    let total = started.elapsed().as_secs_f64();
    assert!(
        total < TIME_BOUND_SECS,
        "ledger_scale took {total:.1}s (bound {TIME_BOUND_SECS}s)"
    );
    println!("total wall clock: {total:.2}s");
    let _ = std::fs::remove_dir_all(&dir);
    Ok(())
}
