//! The population-scale subsampling-noise experiment: evaluation-noise
//! variance and Spearman rank fidelity as functions of the evaluation
//! cohort size `K`, over lazily-materialized populations.
//!
//! ```text
//! cargo run --release --example population_noise
//! ```
//!
//! Defaults to the CI smoke scale (`N = 100 000`); set
//! `FEDPOP_SCALE=paper` for the full `N ∈ {1e3, 1e5, 1e6}` story or
//! `FEDPOP_SCALE=smoke` for the tiny unit-test scale. The run **asserts**
//! that noise variance decreases and rank correlation increases
//! monotonically with the cohort size — the paper's §3.1 claim — and exits
//! non-zero otherwise. With `FEDTUNE_BENCH_JSON=1` it writes
//! `BENCH_population_noise.json` including cache accounting.

use fedtune::feddata::Benchmark;
use fedtune::fedtune_core::experiments::population::{
    run_population_noise, PopulationExperimentScale,
};

fn scale_from_env() -> PopulationExperimentScale {
    match std::env::var("FEDPOP_SCALE").as_deref() {
        Ok("paper") => PopulationExperimentScale::paper_story(),
        Ok("smoke") => PopulationExperimentScale::smoke(),
        _ => PopulationExperimentScale::ci_smoke(),
    }
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let scale = scale_from_env();
    let mut summary = fedbench::BenchSummary::new("population_noise");
    println!(
        "population noise sweep: N in {:?}, K in {:?}, {} configs x {} repeats",
        scale.populations, scale.cohort_sizes, scale.num_configs, scale.repeats
    );
    let cells: u64 =
        (scale.populations.len() * scale.cohort_sizes.len() * scale.num_configs * scale.repeats)
            as u64;
    let result = summary.time("population_noise_sweep", cells, || {
        run_population_noise(Benchmark::Cifar10Like, &scale, 0)
    })?;
    println!("{}", result.to_report().to_table());

    let mut peak_resident = 0u64;
    let mut hit_rate = 0.0f64;
    for sweep in &result.sweeps {
        peak_resident = peak_resident.max(sweep.cache_peak_resident as u64);
        hit_rate = hit_rate.max(sweep.cache_hit_rate);
    }
    summary.record_population(peak_resident, hit_rate);
    summary.write_if_enabled();

    // The CI gate: more evaluation clients => strictly less noise and
    // strictly better rank fidelity, within every population size.
    assert!(
        result.is_monotone(1e-9),
        "noise curves are not monotone in the cohort size: {result:#?}"
    );
    for sweep in &result.sweeps {
        let first = sweep.points.first().expect("non-empty grid");
        let last = sweep.points.last().expect("non-empty grid");
        assert!(
            last.noise_variance < first.noise_variance,
            "N={}: variance did not shrink ({} -> {})",
            sweep.population,
            first.noise_variance,
            last.noise_variance
        );
        assert!(
            last.spearman > first.spearman,
            "N={}: rank correlation did not improve ({} -> {})",
            sweep.population,
            first.spearman,
            last.spearman
        );
        println!(
            "N={}: variance {:.3e} -> {:.3e}, spearman {:.3} -> {:.3}  OK",
            sweep.population,
            first.noise_variance,
            last.noise_variance,
            first.spearman,
            last.spearman
        );
    }
    println!("monotone noise/rank curves verified");
    Ok(())
}
